(* Benchmark and reproduction harness.

   Regenerates every table and figure of the paper's evaluation from the
   synthetic workload, prints paper-reported values next to measured ones,
   runs the ablations called out in DESIGN.md, and finishes with bechamel
   micro-benchmarks of the pipeline's hot operations.

   Usage: main.exe [--quick]
     --quick   run on a 10% workload and shorter micro-benchmarks. *)

module Workload = Leakdetect_android.Workload
module Trace_stats = Leakdetect_android.Trace_stats
module Device = Leakdetect_android.Device
module Ad_module = Leakdetect_android.Ad_module
module Pipeline = Leakdetect_core.Pipeline
module Metrics = Leakdetect_core.Metrics
module Distance = Leakdetect_core.Distance
module Siggen = Leakdetect_core.Siggen
module Signature = Leakdetect_core.Signature
module Detector = Leakdetect_core.Detector
module Sensitive = Leakdetect_core.Sensitive
module Baseline = Leakdetect_baseline.Baseline
module Agglomerative = Leakdetect_cluster.Agglomerative
module Cluster = Leakdetect_cluster.Cluster
module Compressor = Leakdetect_compress.Compressor
module Table = Leakdetect_util.Table
module Prng = Leakdetect_util.Prng
module Sample = Leakdetect_util.Sample
module Packet = Leakdetect_http.Packet

let quick = Array.exists (fun a -> a = "--quick") Sys.argv
let scale = if quick then 0.1 else 1.0

let section title =
  Printf.printf "\n==================================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "==================================================================\n%!"

let pct x = Printf.sprintf "%.1f" (100. *. x)
let pct2 x = Printf.sprintf "%.2f" (100. *. x)

(* Machine-readable results accumulated across sections, written to
   bench_results.json at the end. *)
let json_sections : (string * Leakdetect_util.Json.t) list ref = ref []
let record_json name value = json_sections := (name, value) :: !json_sections

let metrics_json (m : Metrics.t) =
  Leakdetect_util.Json.(
    Obj
      [ ("n", Int m.Metrics.counts.Metrics.n);
        ("tp", Float m.Metrics.true_positive);
        ("fn", Float m.Metrics.false_negative);
        ("fp", Float m.Metrics.false_positive);
        ("sensitive_total", Int m.Metrics.counts.Metrics.sensitive_total);
        ("sensitive_detected", Int m.Metrics.counts.Metrics.sensitive_detected);
        ("normal_total", Int m.Metrics.counts.Metrics.normal_total);
        ("normal_detected", Int m.Metrics.counts.Metrics.normal_detected) ])

(* ------------------------------------------------------------------ *)
(* Dataset                                                             *)
(* ------------------------------------------------------------------ *)

let dataset =
  Printf.printf "generating workload (seed 42, scale %.2f)...\n%!" scale;
  let t0 = Unix.gettimeofday () in
  let ds = Workload.generate ~seed:42 ~scale () in
  Printf.printf "generated %d packets from %d apps in %.1fs\n%!"
    (Array.length ds.Workload.records)
    (Array.length ds.Workload.apps)
    (Unix.gettimeofday () -. t0);
  ds

let suspicious, normal = Workload.split dataset

(* ------------------------------------------------------------------ *)
(* Table I                                                             *)
(* ------------------------------------------------------------------ *)

let table1 () =
  section "TABLE I — permission combinations (paper vs measured)";
  let paper =
    [ ("X - - -", 302); ("X - X -", 329); ("X X X -", 153); ("X X - -", 148);
      ("X X X X", 23) ]
  in
  let measured = Trace_stats.table1 dataset in
  let row_of (pattern, count) =
    let m =
      List.find_opt (fun r -> r.Trace_stats.pattern = pattern) measured
    in
    [ pattern; string_of_int count;
      (match m with Some r -> string_of_int r.Trace_stats.count | None -> "0") ]
  in
  let extra =
    List.filter
      (fun r -> not (List.mem_assoc r.Trace_stats.pattern paper))
      measured
    |> List.map (fun r ->
           [ r.Trace_stats.pattern ^ " (unlisted)"; "-"; string_of_int r.Trace_stats.count ])
  in
  print_string
    (Table.render
       ~title:"columns: INTERNET LOCATION PHONE_STATE CONTACTS"
       ~columns:[ ("combination", Table.Left); ("paper", Table.Right); ("measured", Table.Right) ]
       (List.map row_of paper @ extra));
  let d = Trace_stats.dangerous dataset in
  Printf.printf
    "\ndangerous combinations (INTERNET + sensitive permission): %d apps (%.0f%%)\n"
    d.Trace_stats.dangerous_apps
    (100. *. float_of_int d.Trace_stats.dangerous_apps /. 1188.);
  Printf.printf "apps observed leaking: %d, of which %d hold no dangerous combination\n"
    d.Trace_stats.leaking_apps d.Trace_stats.leaking_without_dangerous;
  Printf.printf
    "(Android ID and carrier need no permission — permission auditing alone misses these)\n"

(* ------------------------------------------------------------------ *)
(* Table II                                                            *)
(* ------------------------------------------------------------------ *)

let paper_table2 =
  [ ("doubleclick.net", 5786, 407); ("admob.com", 1299, 401);
    ("google-analytics.com", 3098, 353); ("gstatic.com", 1387, 333);
    ("google.com", 3604, 308); ("yahoo.co.jp", 1756, 287);
    ("ggpht.com", 940, 281); ("googlesyndication.com", 938, 244);
    ("ad-maker.info", 3391, 195); ("nend.net", 1368, 192);
    ("mydas.mobi", 332, 164); ("amoad.com", 583, 116); ("flurry.com", 335, 119);
    ("microad.jp", 868, 103); ("adwhirl.com", 548, 102);
    ("i-mobile.co.jp", 3729, 100); ("adlantis.jp", 237, 98);
    ("naver.jp", 3390, 82); ("adimg.net", 315, 72); ("mbga.jp", 1048, 63);
    ("rakuten.co.jp", 502, 56); ("fc2.com", 163, 52); ("medibaad.com", 1162, 49);
    ("mediba.jp", 427, 48); ("mobclix.com", 260, 48); ("gree.jp", 228, 45) ]

let table2 () =
  section "TABLE II — HTTP packet destinations (paper vs measured)";
  let measured = Trace_stats.table2 dataset in
  let lookup domain = List.find_opt (fun r -> r.Trace_stats.domain = domain) measured in
  let rows =
    List.map
      (fun (domain, pkts, apps) ->
        match lookup domain with
        | Some r ->
          [ domain; string_of_int pkts; string_of_int r.Trace_stats.packets;
            string_of_int apps; string_of_int r.Trace_stats.apps ]
        | None -> [ domain; string_of_int pkts; "0"; string_of_int apps; "0" ])
      paper_table2
  in
  print_string
    (Table.render
       ~columns:
         [ ("destination", Table.Left); ("pkts(paper)", Table.Right);
           ("pkts(ours)", Table.Right); ("apps(paper)", Table.Right);
           ("apps(ours)", Table.Right) ]
       rows);
  let total, sens, norm = Trace_stats.totals dataset in
  Printf.printf "\ntrace totals: paper 107859 packets (23309 sensitive / 84550 normal)\n";
  Printf.printf "              ours  %6d packets (%5d sensitive / %5d normal)\n" total sens norm

(* ------------------------------------------------------------------ *)
(* Table III                                                           *)
(* ------------------------------------------------------------------ *)

let paper_table3 =
  [ (Sensitive.Android_id, 7590, 21, 75); (Sensitive.Android_id_md5, 10058, 433, 21);
    (Sensitive.Android_id_sha1, 1247, 47, 12); (Sensitive.Carrier, 2095, 135, 44);
    (Sensitive.Imei, 3331, 171, 94); (Sensitive.Imei_md5, 692, 59, 15);
    (Sensitive.Imei_sha1, 1062, 51, 13); (Sensitive.Imsi, 655, 16, 22);
    (Sensitive.Sim_serial, 369, 13, 18) ]

let table3 () =
  section "TABLE III — sensitive information on the wire (paper vs measured)";
  let measured = Trace_stats.table3 dataset in
  let rows =
    List.map
      (fun (kind, p_pkts, p_apps, p_dsts) ->
        let m = List.find (fun r -> r.Trace_stats.kind = kind) measured in
        [ Sensitive.paper_name kind;
          string_of_int p_pkts; string_of_int m.Trace_stats.packets;
          string_of_int p_apps; string_of_int m.Trace_stats.apps;
          string_of_int p_dsts; string_of_int m.Trace_stats.destinations ])
      paper_table3
  in
  print_string
    (Table.render
       ~columns:
         [ ("kind", Table.Left); ("pkts(paper)", Table.Right); ("pkts(ours)", Table.Right);
           ("apps(paper)", Table.Right); ("apps(ours)", Table.Right);
           ("dsts(paper)", Table.Right); ("dsts(ours)", Table.Right) ]
       rows)

(* ------------------------------------------------------------------ *)
(* Figure 2                                                            *)
(* ------------------------------------------------------------------ *)

let figure2 () =
  section "FIGURE 2 — destinations per application (paper vs measured)";
  let f2 = Trace_stats.figure2 dataset in
  let frac n = Printf.sprintf "%.1f%%" (100. *. float_of_int n /. float_of_int f2.Trace_stats.total_apps) in
  print_string
    (Table.render
       ~columns:[ ("statistic", Table.Left); ("paper", Table.Right); ("measured", Table.Right) ]
       [
         [ "apps with traffic"; "1188"; string_of_int f2.Trace_stats.total_apps ];
         [ "exactly 1 destination"; "81 (7%)";
           Printf.sprintf "%d (%s)" f2.Trace_stats.one_destination (frac f2.Trace_stats.one_destination) ];
         [ "<= 10 destinations"; "885 (74%)";
           Printf.sprintf "%d (%s)" f2.Trace_stats.within_10 (frac f2.Trace_stats.within_10) ];
         [ "<= 16 destinations"; "1006 (90%)";
           Printf.sprintf "%d (%s)" f2.Trace_stats.within_16 (frac f2.Trace_stats.within_16) ];
         [ "mean destinations"; "7.9"; Printf.sprintf "%.1f" f2.Trace_stats.mean ];
         [ "max destinations"; "84"; string_of_int f2.Trace_stats.max ];
       ]);
  (* cumulative distribution series, decile-ish points *)
  let counts = Trace_stats.destinations_per_app dataset in
  let cdf = Leakdetect_util.Stats.cdf counts in
  Printf.printf "\ncumulative frequency series (destinations -> fraction of apps):\n";
  List.iter
    (fun (p : Leakdetect_util.Stats.cdf_point) ->
      if List.mem p.Leakdetect_util.Stats.value [ 1; 2; 4; 6; 8; 10; 13; 16; 20; 30; 50; 84 ]
      then
        Printf.printf "  <= %2d destinations: %5.1f%%\n" p.Leakdetect_util.Stats.value
          (100. *. p.Leakdetect_util.Stats.fraction))
    cdf

(* ------------------------------------------------------------------ *)
(* Figure 4 — the headline experiment                                  *)
(* ------------------------------------------------------------------ *)

let paper_figure4 =
  (* Values stated in Sec. V-B (intermediate points read off Figure 4). *)
  [ (100, (85.0, 15.0, 0.3)); (200, (90.0, 8.0, 0.9)); (300, (92.0, 7.0, 1.3));
    (400, (93.0, 6.0, 1.8)); (500, (94.0, 5.0, 2.3)) ]

let figure4 () =
  section "FIGURE 4 — detection rate vs sample size N (paper vs measured)";
  let seeds = if quick then [ 1001 ] else [ 1001; 1002; 1003 ] in
  Printf.printf
    "suspicious=%d normal=%d; signatures from a uniform sample of N suspicious packets\n"
    (Array.length suspicious) (Array.length normal);
  Printf.printf "measured values averaged over %d sample draws\n\n%!" (List.length seeds);
  let rows =
    List.map
      (fun (n, (p_tp, p_fn, p_fp)) ->
        let t0 = Unix.gettimeofday () in
        let outcomes =
          List.map
            (fun seed ->
              Pipeline.run ~rng:(Prng.create (seed + n)) ~n ~suspicious ~normal ())
            seeds
        in
        let avg f =
          List.fold_left (fun acc o -> acc +. f o.Pipeline.metrics) 0. outcomes
          /. float_of_int (List.length outcomes)
        in
        let tp = avg (fun m -> m.Metrics.true_positive) in
        let fn = avg (fun m -> m.Metrics.false_negative) in
        let fp = avg (fun m -> m.Metrics.false_positive) in
        let sigs =
          List.fold_left (fun acc o -> acc + List.length o.Pipeline.signatures) 0 outcomes
          / List.length outcomes
        in
        Printf.printf "  N=%-3d done in %.1fs (~%d signatures per draw)\n%!" n
          (Unix.gettimeofday () -. t0) sigs;
        record_json
          (Printf.sprintf "figure4_n%d" n)
          Leakdetect_util.Json.(
            Obj
              [ ("n", Int n); ("tp_mean", Float tp); ("fn_mean", Float fn);
                ("fp_mean", Float fp); ("signatures_mean", Int sigs);
                ("paper_tp", Float (p_tp /. 100.)); ("paper_fn", Float (p_fn /. 100.));
                ("paper_fp", Float (p_fp /. 100.));
                ("draws", List (List.map (fun o -> metrics_json o.Pipeline.metrics) outcomes)) ]);
        [ string_of_int n;
          Printf.sprintf "%.1f" p_tp; pct tp;
          Printf.sprintf "%.1f" p_fn; pct fn;
          Printf.sprintf "%.1f" p_fp; pct2 fp ])
      paper_figure4
  in
  print_newline ();
  print_string
    (Table.render
       ~columns:
         [ ("N", Table.Right); ("TP%(paper)", Table.Right); ("TP%(ours)", Table.Right);
           ("FN%(paper)", Table.Right); ("FN%(ours)", Table.Right);
           ("FP%(paper)", Table.Right); ("FP%(ours)", Table.Right) ]
       rows)

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)
(* ------------------------------------------------------------------ *)

let ablation_n = 300

let metrics_row name (m : Metrics.t) extra =
  [ name; pct m.Metrics.true_positive; pct m.Metrics.false_negative;
    pct2 m.Metrics.false_positive; extra ]

let ablation_distance () =
  section
    (Printf.sprintf "ABLATION — distance components at N=%d (Sec. VI discussion)" ablation_n);
  let run name ?(content_metric = Distance.Ncd) components =
    let config = { Pipeline.default_config with Pipeline.components; content_metric } in
    let o = Pipeline.run ~config ~rng:(Prng.create 7) ~n:ablation_n ~suspicious ~normal () in
    metrics_row name o.Pipeline.metrics (string_of_int (List.length o.Pipeline.signatures))
  in
  print_string
    (Table.render
       ~columns:
         [ ("distance", Table.Left); ("TP%", Table.Right); ("FN%", Table.Right);
           ("FP%", Table.Right); ("#sigs", Table.Right) ]
       [
         run "combined, NCD (paper)" Distance.all_components;
         run "combined, trigram cosine" ~content_metric:Distance.Trigram
           Distance.all_components;
         run "destination-only" Distance.destination_only;
         run "content-only, NCD" Distance.content_only;
         run "content-only, trigram" ~content_metric:Distance.Trigram
           Distance.content_only;
       ])

let ablation_linkage () =
  section (Printf.sprintf "ABLATION — linkage at N=%d" ablation_n);
  (* Cophenetic correlation on a common sub-sample quantifies how well each
     linkage's dendrogram preserves the packet distances. *)
  let coph_sample = Sample.without_replacement (Prng.create 7) 120 suspicious in
  let coph_matrix = Distance.matrix (Distance.create ()) coph_sample in
  let run name linkage =
    let config =
      { Pipeline.default_config with
        Pipeline.siggen =
          { Siggen.default with Siggen.algorithm = Cluster.Agglomerative linkage } }
    in
    let o = Pipeline.run ~config ~rng:(Prng.create 7) ~n:ablation_n ~suspicious ~normal () in
    let coph =
      match Leakdetect_cluster.Agglomerative.cluster ~linkage coph_matrix with
      | Some tree ->
        Printf.sprintf "%.3f" (Leakdetect_cluster.Cophenetic.correlation coph_matrix tree)
      | None -> "n/a"
    in
    metrics_row name o.Pipeline.metrics coph
  in
  print_string
    (Table.render
       ~columns:
         [ ("linkage", Table.Left); ("TP%", Table.Right); ("FN%", Table.Right);
           ("FP%", Table.Right); ("cophenetic r", Table.Right) ]
       [
         run "group-average (paper)" Agglomerative.Group_average;
         run "single" Agglomerative.Single;
         run "complete" Agglomerative.Complete;
       ])

let ablation_cut () =
  section (Printf.sprintf "ABLATION — dendrogram cut policy at N=%d" ablation_n);
  let run name cut =
    let config =
      { Pipeline.default_config with
        Pipeline.siggen = { Siggen.default with Siggen.cut } }
    in
    let o = Pipeline.run ~config ~rng:(Prng.create 7) ~n:ablation_n ~suspicious ~normal () in
    metrics_row name o.Pipeline.metrics (string_of_int (List.length o.Pipeline.signatures))
  in
  print_string
    (Table.render
       ~columns:
         [ ("cut policy", Table.Left); ("TP%", Table.Right); ("FN%", Table.Right);
           ("FP%", Table.Right); ("#sigs", Table.Right) ]
       [
         run "threshold (auto, default)" Siggen.Auto;
         run "every merge (literal Sec. IV-E)" Siggen.Every_merge;
         run "fixed count (N/8)" (Siggen.Count (ablation_n / 8));
         run "fixed count (N/4)" (Siggen.Count (ablation_n / 4));
       ])

let ablation_compressor () =
  section (Printf.sprintf "ABLATION — NCD compressor at N=%d" ablation_n);
  let run name compressor =
    let config = { Pipeline.default_config with Pipeline.compressor } in
    let o = Pipeline.run ~config ~rng:(Prng.create 7) ~n:ablation_n ~suspicious ~normal () in
    metrics_row name o.Pipeline.metrics (string_of_int (List.length o.Pipeline.signatures))
  in
  print_string
    (Table.render
       ~columns:
         [ ("compressor", Table.Left); ("TP%", Table.Right); ("FN%", Table.Right);
           ("FP%", Table.Right); ("#sigs", Table.Right) ]
       [
         run "lz77 (default)" Compressor.Lz77;
         run "lzw" Compressor.Lzw;
         run "huffman (order-0)" Compressor.Huffman;
       ])

let baselines () =
  section (Printf.sprintf "BASELINES at N=%d" ablation_n);
  let rng = Prng.create 7 in
  let sample = Sample.without_replacement rng ablation_n suspicious in
  let pipeline =
    Pipeline.run ~rng:(Prng.create 7) ~n:ablation_n ~suspicious ~normal ()
  in
  let exact = Baseline.exact ~sample ~suspicious ~normal in
  let substr = Baseline.sample_substring ~sample ~suspicious ~normal in
  let random =
    Baseline.random_cluster ~rng:(Prng.create 8) ~sample ~suspicious ~normal ()
  in
  let hamsa =
    Leakdetect_baseline.Hamsa.evaluate ~rng:(Prng.create 7) ~n:ablation_n ~suspicious
      ~normal ()
  in
  print_string
    (Table.render
       ~columns:
         [ ("method", Table.Left); ("TP%", Table.Right); ("FN%", Table.Right);
           ("FP%", Table.Right); ("", Table.Left) ]
       [
         metrics_row "paper pipeline" pipeline.Pipeline.metrics "";
         metrics_row "hamsa greedy (S&P'06)" hamsa "";
         metrics_row "random clusters" random "";
         metrics_row "sample substring" substr "";
         metrics_row "exact match" exact "";
       ])

let ablation_clusterer () =
  section (Printf.sprintf "ABLATION — clustering algorithm at N=%d" ablation_n);
  let rng = Prng.create 7 in
  let sample = Sample.without_replacement rng ablation_n suspicious in
  let n = Array.length sample in
  let dist = Distance.create () in
  let matrix = Distance.matrix dist sample in
  let clusters_of_indices idx_lists =
    List.map (fun members -> List.map (fun i -> sample.(i)) members) idx_lists
  in
  let eval name idx_lists =
    let m =
      Baseline.partition_metrics ~n ~clusters:(clusters_of_indices idx_lists)
        ~suspicious ~normal ()
    in
    metrics_row name m (string_of_int (List.length idx_lists))
  in
  let hierarchical =
    match Leakdetect_cluster.Agglomerative.cluster matrix with
    | Some tree ->
      Leakdetect_cluster.Dendrogram.cut
        ~threshold:(0.25 *. Distance.max_possible dist) tree
      |> List.map Leakdetect_cluster.Dendrogram.members
    | None -> []
  in
  let kmedoids =
    Leakdetect_cluster.Kmedoids.clusters
      (Leakdetect_cluster.Kmedoids.cluster ~rng ~k:(max 1 (n / 10)) matrix)
  in
  let dbscan_r =
    Leakdetect_cluster.Dbscan.cluster ~eps:(0.25 *. Distance.max_possible dist)
      ~min_points:2 matrix
  in
  let dbscan =
    dbscan_r.Leakdetect_cluster.Dbscan.clusters
    @ List.map (fun i -> [ i ]) dbscan_r.Leakdetect_cluster.Dbscan.noise
  in
  print_string
    (Table.render
       ~columns:
         [ ("clusterer", Table.Left); ("TP%", Table.Right); ("FN%", Table.Right);
           ("FP%", Table.Right); ("#clusters", Table.Right) ]
       [
         eval "hierarchical group-average (paper)" hierarchical;
         eval "k-medoids (k = N/10)" kmedoids;
         eval "dbscan (eps = cut threshold)" dbscan;
       ])

let cross_device () =
  section "EXTENSION — cross-device signature transfer";
  Printf.printf
    "signatures embed the training device's identifier values; applying them to a\n\
     different handset's trace isolates how much device-independent structure\n\
     (module skeletons) they carry.\n\n";
  let o = Pipeline.run ~rng:(Prng.create 7) ~n:ablation_n ~suspicious ~normal () in
  let detector = Detector.create o.Pipeline.signatures in
  let other = Workload.generate ~seed:4242 ~scale:(Float.min scale 0.25) () in
  let o_susp, o_norm = Workload.split other in
  let m =
    Metrics.compute
      {
        Metrics.n = 0;
        sensitive_total = Array.length o_susp;
        sensitive_detected = Detector.count_detected detector o_susp;
        normal_total = Array.length o_norm;
        normal_detected = Detector.count_detected detector o_norm;
      }
  in
  print_string
    (Table.render
       ~columns:
         [ ("evaluation trace", Table.Left); ("TP%", Table.Right); ("FN%", Table.Right);
           ("FP%", Table.Right) ]
       [
         (let m0 = o.Pipeline.metrics in
          [ "same device (training trace)"; pct m0.Metrics.true_positive;
            pct m0.Metrics.false_negative; pct2 m0.Metrics.false_positive ]);
         [ "different device (seed 4242)"; pct m.Metrics.true_positive;
           pct m.Metrics.false_negative; pct2 m.Metrics.false_positive ];
       ]);
  Printf.printf
    "\n(the drop is the value-token share; what survives is the module-skeleton share)\n"

(* ------------------------------------------------------------------ *)
(* Extensions (Sec. VI future work / discussion)                       *)
(* ------------------------------------------------------------------ *)

let extension_registry () =
  section
    (Printf.sprintf
       "EXTENSION — WHOIS-verified destination distance at N=%d (Sec. VI)" ablation_n);
  let registry = Ad_module.registry () in
  Printf.printf "registry: %d allocations across %d organizations\n\n"
    (Leakdetect_net.Registry.size registry)
    (List.length (Leakdetect_net.Registry.organizations registry));
  let run name registry =
    let config = { Pipeline.default_config with Pipeline.registry } in
    let o = Pipeline.run ~config ~rng:(Prng.create 7) ~n:ablation_n ~suspicious ~normal () in
    metrics_row name o.Pipeline.metrics (string_of_int (List.length o.Pipeline.signatures))
  in
  print_string
    (Table.render
       ~columns:
         [ ("d_ip source", Table.Left); ("TP%", Table.Right); ("FN%", Table.Right);
           ("FP%", Table.Right); ("#sigs", Table.Right) ]
       [
         run "prefix heuristic (paper)" None;
         run "registry-verified" (Some registry);
       ])

let extension_bayes () =
  section
    (Printf.sprintf
       "EXTENSION — probabilistic (Bayes) signatures at N=%d (paper future work)"
       ablation_n);
  let conj =
    Pipeline.run ~rng:(Prng.create 7) ~n:ablation_n ~suspicious ~normal ()
  in
  let bayes =
    Leakdetect_core.Bayes.run ~rng:(Prng.create 7) ~n:ablation_n ~suspicious ~normal ()
  in
  print_string
    (Table.render
       ~columns:
         [ ("signature type", Table.Left); ("TP%", Table.Right); ("FN%", Table.Right);
           ("FP%", Table.Right); ("detail", Table.Left) ]
       [
         metrics_row "conjunction (paper)" conj.Pipeline.metrics
           (Printf.sprintf "%d signatures" (List.length conj.Pipeline.signatures));
         metrics_row "bayes (weighted tokens)" bayes.Leakdetect_core.Bayes.metrics
           (Printf.sprintf "%d weighted tokens, threshold %.2f"
              bayes.Leakdetect_core.Bayes.n_tokens
              bayes.Leakdetect_core.Bayes.signature_.Leakdetect_core.Bayes.threshold);
       ])

let extension_bayes_roc () =
  section
    (Printf.sprintf
       "EXTENSION — Bayes threshold sweep at N=%d (training-FP target vs outcome)"
       ablation_n);
  let rows =
    List.map
      (fun target_fp ->
        let o =
          Leakdetect_core.Bayes.run ~target_fp ~rng:(Prng.create 7) ~n:ablation_n
            ~suspicious ~normal ()
        in
        let m = o.Leakdetect_core.Bayes.metrics in
        [ Printf.sprintf "%.3f" target_fp;
          pct m.Metrics.true_positive; pct2 m.Metrics.false_positive;
          Printf.sprintf "%.2f" o.Leakdetect_core.Bayes.signature_.Leakdetect_core.Bayes.threshold ])
      [ 0.0; 0.005; 0.02; 0.05 ]
  in
  print_string
    (Table.render
       ~columns:
         [ ("target FP", Table.Right); ("TP%", Table.Right); ("FP%", Table.Right);
           ("threshold", Table.Right) ]
       rows)

let extension_obfuscated () =
  section "EXTENSION — fixed-key obfuscated module (Sec. VI claim)";
  let module Obfuscation = Leakdetect_android.Obfuscation in
  let rng = Prng.create 55 in
  let device = dataset.Workload.device in
  let package i = Printf.sprintf "jp.co.crypt%02d" (i mod 30) in
  let scale_count base = max 20 (int_of_float (float_of_int base *. scale)) in
  let leaks =
    Array.init (scale_count 600) (fun i ->
        Obfuscation.leak_packet rng device ~package:(package i))
  in
  let beacons =
    Array.init (scale_count 300) (fun i ->
        Obfuscation.beacon_packet rng device ~package:(package i))
  in
  Printf.printf
    "a module XOR-encrypts its report (IMEI, SIM serial, Android ID) with one\n\
     key shared across applications; %d leak packets, %d heartbeats.\n\n"
    (Array.length leaks) (Array.length beacons);
  let pc_hits =
    Array.fold_left
      (fun acc p ->
        if Leakdetect_core.Payload_check.is_sensitive dataset.Workload.payload_check p
        then acc + 1
        else acc)
      0 leaks
  in
  Printf.printf "payload check (plaintext needles):   %d / %d leak packets flagged\n"
    pc_hits (Array.length leaks);
  (* The analyst adds the reverse-engineered leaks to the suspicious pool
     and regenerates signatures; the clustering finds the invariant
     ciphertext prefix. *)
  let suspicious' = Array.append suspicious leaks in
  let normal' = Array.append normal beacons in
  let o = Pipeline.run ~rng:(Prng.create 56) ~n:ablation_n ~suspicious:suspicious' ~normal:normal' () in
  let detector = Detector.create o.Pipeline.signatures in
  Printf.printf "signature pipeline (N=%d):           %d / %d leak packets flagged\n"
    ablation_n
    (Detector.count_detected detector leaks)
    (Array.length leaks);
  Printf.printf "false alarms on the module's heartbeats: %d / %d\n"
    (Detector.count_detected detector beacons)
    (Array.length beacons);
  Printf.printf "whole-trace metrics with the obfuscated module included: %s\n"
    (Format.asprintf "%a" Metrics.pp o.Pipeline.metrics)

(* ------------------------------------------------------------------ *)
(* Micro-benchmarks (bechamel)                                         *)
(* ------------------------------------------------------------------ *)

let micro_benchmarks () =
  section "MICRO-BENCHMARKS (bechamel, monotonic clock)";
  let open Bechamel in
  let device = dataset.Workload.device in
  let p1 = suspicious.(0) and p2 = suspicious.(Array.length suspicious / 2) in
  let content = Packet.content_string p1 in
  let dist = Distance.create () in
  let sample = Sample.without_replacement (Prng.create 3) 30 suspicious in
  let small_sample = Sample.without_replacement (Prng.create 3) 25 suspicious in
  let gen = Siggen.generate (Distance.create ()) small_sample in
  let detector = Detector.create gen.Siggen.signatures in
  let tests =
    [
      Test.make ~name:"md5_digest_64B" (Staged.stage (fun () -> Leakdetect_crypto.Md5.hex content));
      Test.make ~name:"sha1_digest_64B" (Staged.stage (fun () -> Leakdetect_crypto.Sha1.hex content));
      Test.make ~name:"lz77_compress_content"
        (Staged.stage (fun () -> Leakdetect_compress.Lz77.compressed_length_bits content));
      Test.make ~name:"ncd_pair"
        (Staged.stage (fun () ->
             let cache = Compressor.Cache.create Compressor.Lz77 in
             Compressor.Cache.ncd cache
               (Packet.content_string p1) (Packet.content_string p2)));
      Test.make ~name:"d_pkt_pair" (Staged.stage (fun () -> Distance.d_pkt dist p1 p2));
      Test.make ~name:"edit_distance_hosts"
        (Staged.stage (fun () ->
             Leakdetect_text.Edit_distance.distance "googleads.g.doubleclick.net"
               "pagead2.googlesyndication.com"));
      Test.make ~name:"detector_match_packet"
        (Staged.stage (fun () -> Detector.detects detector p1));
      Test.make ~name:"cluster_30pkts"
        (Staged.stage (fun () ->
             let d = Distance.create () in
             let m = Distance.matrix d sample in
             Agglomerative.cluster m));
      Test.make ~name:"device_create"
        (Staged.stage (fun () -> Device.create (Prng.create 1)));
      Test.make ~name:"render_ad_packet"
        (Staged.stage
           (let rng = Prng.create 2 in
            let ctx =
              {
                Ad_module.package = "jp.co.bench";
                permissions =
                  { Leakdetect_android.Permissions.internet = true; location = true;
                    phone_state = true; contacts = true };
                counter = ref 0;
              }
            in
            let family = List.hd Ad_module.catalog in
            fun () -> Ad_module.render rng device ctx family));
    ]
  in
  let quota = if quick then 0.25 else 1.0 in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) ~kde:(Some 1000) () in
  let instance = Toolkit.Instance.monotonic_clock in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let rows =
    List.map
      (fun test ->
        let results = Benchmark.all cfg [ instance ] test in
        let analyzed = Analyze.all ols instance results in
        Hashtbl.fold
          (fun name result acc ->
            let estimate =
              match Analyze.OLS.estimates result with
              | Some [ e ] -> Printf.sprintf "%.0f" e
              | _ -> "n/a"
            in
            [ name; estimate ] :: acc)
          analyzed [])
      tests
    |> List.concat
    |> List.sort compare
  in
  print_string
    (Table.render
       ~columns:[ ("operation", Table.Left); ("ns/run", Table.Right) ]
       rows)

let write_json () =
  let doc =
    Leakdetect_util.Json.(
      Obj
        (("scale", Float scale)
        :: ("total_packets", Int (Array.length dataset.Workload.records))
        :: ("suspicious", Int (Array.length suspicious))
        :: ("normal", Int (Array.length normal))
        :: List.rev !json_sections))
  in
  let oc = open_out "bench_results.json" in
  output_string oc (Leakdetect_util.Json.to_string_pretty doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "\nwrote bench_results.json\n"

let () =
  table1 ();
  table2 ();
  table3 ();
  figure2 ();
  figure4 ();
  ablation_distance ();
  ablation_linkage ();
  ablation_cut ();
  ablation_compressor ();
  ablation_clusterer ();
  baselines ();
  cross_device ();
  extension_registry ();
  extension_bayes ();
  extension_bayes_roc ();
  extension_obfuscated ();
  micro_benchmarks ();
  write_json ();
  print_newline ()
