(* Clustering-scale benchmark: exact O(N^2) backend vs the minhash/LSH
   sketch prefilter.

   For each sample size N the sketch backend is run end to end (bucketing,
   per-bucket NCD matrices, clustering, signature extraction) and its
   wall-clock, bucket statistics, NCD pair counts and detection recall over
   the whole suspicious corpus are recorded.  The exact backend is measured
   the same way up to --exact-cap (default 500, the paper's ceiling — exact
   N=5000 alone would take hours); past the cap its cost is reported as an
   extrapolation from the measured per-pair rate, clearly labelled.

   Gates (exit 1 on failure):
     - quality: at N = min(ns) the sketch backend's recall must be >= the
       exact backend's recall on the same sample;
     - work: at every N >= 5000 the sketch backend must avoid at least
       --gate-avoided percent (default 90) of the exact pair computations.

   Usage: bench_cluster_scale.exe [--quick] [--jobs N] [--exact-cap N]
                                  [--gate-avoided PCT] [--out FILE]
     --quick         N in {500, 5000} on a scale-0.25 workload (CI smoke)
     default         N in {500, 5000, 50000} on a scale-2.5 workload
     --jobs N        pool width for every phase (default 1)
     --exact-cap N   largest N where exact is measured rather than
                     extrapolated (default 500)
     --gate-avoided  minimum percentage of pairs avoided at N >= 5000
     --out FILE      output path (default BENCH_cluster_scale.json) *)

module Json = Leakdetect_util.Json
module Prng = Leakdetect_util.Prng
module Sample = Leakdetect_util.Sample
module Workload = Leakdetect_android.Workload
module Pipeline = Leakdetect_core.Pipeline
module Distance = Leakdetect_core.Distance
module Siggen = Leakdetect_core.Siggen
module Clustering = Leakdetect_core.Clustering
module Detector = Leakdetect_core.Detector
module Sketch = Leakdetect_sketch.Sketch
module Pool = Leakdetect_parallel.Pool

let quick = Array.exists (fun a -> a = "--quick") Sys.argv

let arg_value name parse ~default =
  let rec find i =
    if i + 1 >= Array.length Sys.argv then default
    else if Sys.argv.(i) = name then
      match parse Sys.argv.(i + 1) with
      | Some v -> v
      | None -> failwith (Printf.sprintf "bench_cluster_scale: bad value for %s" name)
    else find (i + 1)
  in
  find 0

let jobs =
  arg_value "--jobs" ~default:1 (fun s ->
      match int_of_string_opt s with Some n when n >= 1 -> Some n | _ -> None)

let exact_cap =
  arg_value "--exact-cap" ~default:500 (fun s ->
      match int_of_string_opt s with Some n when n >= 1 -> Some n | _ -> None)

let gate_avoided =
  arg_value "--gate-avoided" ~default:90. (fun s ->
      match float_of_string_opt s with Some x when x >= 0. -> Some x | _ -> None)

let out_file = arg_value "--out" ~default:"BENCH_cluster_scale.json" (fun s -> Some s)

let sketch_params =
  let pos name ~default =
    arg_value name ~default (fun s ->
        match int_of_string_opt s with Some n when n >= 1 -> Some n | _ -> None)
  in
  let p =
    {
      Sketch.default with
      Sketch.shingle_len = pos "--shingle-len" ~default:Sketch.default.Sketch.shingle_len;
      bands = pos "--lsh-bands" ~default:Sketch.default.Sketch.bands;
      rows = pos "--lsh-rows" ~default:Sketch.default.Sketch.rows;
      max_bucket = pos "--max-bucket" ~default:Sketch.default.Sketch.max_bucket;
    }
  in
  (match Sketch.validate p with
  | Ok () -> ()
  | Error msg -> failwith ("bench_cluster_scale: " ^ msg));
  p

let ns = if quick then [ 500; 5000 ] else [ 500; 5000; 50000 ]
let scale = if quick then 0.25 else 2.5

let failures = ref 0

let check name ok =
  Printf.printf "  gate: %s: %s\n%!" name (if ok then "ok" else "FAILED");
  if not ok then incr failures

let time f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  (v, Unix.gettimeofday () -. t0)

let dataset =
  Printf.printf "workload: seed 42, scale %.2f (jobs %d)...\n%!" scale jobs;
  let ds, s = time (fun () -> Workload.generate ~seed:42 ~scale ()) in
  Printf.printf "generated %d packets in %.1fs\n%!" (Array.length ds.Workload.records) s;
  ds

let suspicious, _normal = Workload.split dataset

let () =
  Printf.printf "suspicious corpus: %d packets\n%!" (Array.length suspicious);
  if Array.length suspicious < List.fold_left max 0 ns then
    Printf.printf "note: largest N clamps to the corpus size\n%!"

let pool = Pool.warm jobs
let pairs n = n * (n - 1) / 2

(* Recall over the whole suspicious corpus — the quality the prefilter must
   not lose.  False positives are the sweep's business (see `leakdetect
   evaluate`); this bench isolates what bucketing can break. *)
let recall_of signatures =
  let d = Detector.create signatures in
  float_of_int (Detector.count_detected ?pool d suspicious)
  /. float_of_int (max 1 (Array.length suspicious))

let sketch_config =
  Pipeline.Config.(
    default
    |> with_clustering (Clustering.Sketch sketch_params)
    |> with_pool pool)

let exact_config = Pipeline.Config.(default |> with_pool pool)

type measured = {
  n : int;
  seconds : float;
  clusters : int;
  signatures : int;
  recall : float;
  stats : Clustering.stats;
}

let run_backend config sample =
  let dist = Distance.create () in
  let gen, seconds = time (fun () -> Siggen.generate ~config dist sample) in
  let stats =
    match gen.Siggen.stats with
    | Some s -> s
    | None -> failwith "bench_cluster_scale: non-empty sample without stats"
  in
  {
    n = Array.length sample;
    seconds;
    clusters = List.length gen.Siggen.clusters;
    signatures = List.length gen.Siggen.signatures;
    recall = recall_of gen.Siggen.signatures;
    stats;
  }

let avoided_pct (s : Clustering.stats) =
  if s.Clustering.total_pairs = 0 then 0.
  else
    100.
    *. float_of_int (s.Clustering.total_pairs - s.Clustering.exact_pairs)
    /. float_of_int s.Clustering.total_pairs

let measured_json m =
  Json.Obj
    [ ("seconds", Json.Float m.seconds);
      ("clusters", Json.Int m.clusters);
      ("signatures", Json.Int m.signatures);
      ("recall", Json.Float m.recall);
      ("buckets", Json.Int m.stats.Clustering.buckets);
      ("largest_bucket", Json.Int m.stats.Clustering.largest_bucket);
      ("exact_pairs", Json.Int m.stats.Clustering.exact_pairs);
      ("total_pairs", Json.Int m.stats.Clustering.total_pairs);
      ("pairs_avoided_pct", Json.Float (avoided_pct m.stats)) ]

let sections = ref []
let record name v = sections := (name, v) :: !sections

(* Per-pair exact rate measured at the largest N <= exact_cap, for honest
   extrapolation labels on the Ns where exact is infeasible. *)
let per_pair_seconds = ref None

let bench_n n =
  let sample = Sample.without_replacement (Prng.create (11 + n)) n suspicious in
  let n = Array.length sample in
  Printf.printf "\n-- N=%d --\n%!" n;
  let sk = run_backend sketch_config sample in
  Printf.printf
    "  sketch: %8.2fs  %4d buckets (largest %4d)  %9d of %10d pairs (%.2f%% avoided)\n%!"
    sk.seconds sk.stats.Clustering.buckets sk.stats.Clustering.largest_bucket
    sk.stats.Clustering.exact_pairs sk.stats.Clustering.total_pairs (avoided_pct sk.stats);
  Printf.printf "  sketch: %d clusters -> %d signatures, recall %.4f\n%!" sk.clusters
    sk.signatures sk.recall;
  let exact_json, exact_measured =
    if n <= exact_cap then begin
      let ex = run_backend exact_config sample in
      per_pair_seconds := Some (ex.seconds /. float_of_int (max 1 (pairs n)));
      Printf.printf "  exact:  %8.2fs  %38s %10d pairs\n%!" ex.seconds "" (pairs n);
      Printf.printf "  exact:  %d clusters -> %d signatures, recall %.4f\n%!" ex.clusters
        ex.signatures ex.recall;
      Printf.printf "  speedup vs exact: %.2fx\n%!" (ex.seconds /. sk.seconds);
      (Json.Obj (("estimated", Json.Bool false) :: [ ("measured", measured_json ex) ]), Some ex)
    end
    else begin
      let est =
        match !per_pair_seconds with
        | Some r -> r *. float_of_int (pairs n)
        | None -> nan
      in
      Printf.printf
        "  exact:  not measured (N > %d); %d pairs, ~%.0fs extrapolated from measured rate\n%!"
        exact_cap (pairs n) est;
      ( Json.Obj
          [ ("estimated", Json.Bool true); ("pairs", Json.Int (pairs n));
            ("extrapolated_seconds", Json.Float est) ],
        None )
    end
  in
  record (Printf.sprintf "n%d" n)
    (Json.Obj
       [ ("n", Json.Int n); ("sketch", measured_json sk); ("exact", exact_json) ]);
  (n, sk, exact_measured)

let () =
  let results = List.map bench_n ns in
  Printf.printf "\n-- gates --\n%!";
  List.iter
    (fun (n, sk, exact) ->
      (match exact with
      | Some ex when n = List.fold_left min max_int ns ->
        check
          (Printf.sprintf "recall parity at N=%d (sketch %.4f >= exact %.4f)" n sk.recall
             ex.recall)
          (sk.recall >= ex.recall)
      | _ -> ());
      if n >= 5000 then
        check
          (Printf.sprintf "pairs avoided at N=%d (%.2f%% >= %.0f%%)" n (avoided_pct sk.stats)
             gate_avoided)
          (avoided_pct sk.stats >= gate_avoided))
    results;
  let doc =
    Json.Obj
      (("quick", Json.Bool quick)
      :: ("scale", Json.Float scale)
      :: ("jobs", Json.Int jobs)
      :: ("exact_cap", Json.Int exact_cap)
      :: ("suspicious_corpus", Json.Int (Array.length suspicious))
      :: ("sketch_params",
          Json.Obj
            [ ("shingle_len", Json.Int sketch_params.Sketch.shingle_len);
              ("hashes", Json.Int sketch_params.Sketch.hashes);
              ("bands", Json.Int sketch_params.Sketch.bands);
              ("rows", Json.Int sketch_params.Sketch.rows);
              ("max_bucket", Json.Int sketch_params.Sketch.max_bucket);
              ("threshold", Json.Float (Sketch.threshold sketch_params)) ])
      :: ("gate_failures", Json.Int !failures)
      :: List.rev !sections)
  in
  let oc = open_out out_file in
  output_string oc (Json.to_string_pretty doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "\nwrote %s\n" out_file;
  if !failures > 0 then begin
    Printf.printf "FAILED: %d gate failure(s)\n" !failures;
    exit 1
  end
