(* Distribution-tier benchmark: journaled publish throughput on the
   authority, delta-vs-snapshot sync cost as the fleet lags further
   behind, and recovery time as the journal grows.

   The delta/snapshot comparison is the one the design hangs on: a
   client [lag] versions behind pays for [lag] changelog entries over
   the wire instead of the whole set, so sync cost should track the lag,
   not the set size — until the lag crosses the compaction horizon and
   the full download returns.

   Emits BENCH_distrib.json so runs can be diffed.

   Usage: bench_distrib.exe [--quick]   (--quick shrinks every axis) *)

module Json = Leakdetect_util.Json
module Signature = Leakdetect_core.Signature
module Signature_io = Leakdetect_core.Signature_io
module Authority = Leakdetect_distrib.Authority
module Delta_client = Leakdetect_distrib.Delta_client
module Relay = Leakdetect_distrib.Relay
module Topology = Leakdetect_distrib.Topology

let quick = Array.exists (fun a -> a = "--quick") Sys.argv

let fresh_dir () =
  let f = Filename.temp_file "ld_bench_distrib" "" in
  Sys.remove f;
  Sys.mkdir f 0o700;
  f

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let time f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  (v, Unix.gettimeofday () -. t0)

let sig_of i =
  Signature.make ~id:i ~mode:Signature.Conjunction ~cluster_size:3
    [ "leak"; Printf.sprintf "tok%06d" i;
      Printf.sprintf "imei=3550219301%05d" i ]

(* Grow a set one signature per version: version v has signatures 1..v. *)
let set_at v = List.init v (fun i -> sig_of (i + 1))

let bench_publish n =
  let dir = fresh_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let auth =
        match Authority.open_ ~dir () with
        | Ok (t, _) -> t
        | Error e -> failwith e
      in
      let (), publish_s =
        time (fun () ->
            for v = 1 to n do
              ignore (Authority.publish auth ~tenant:"bench" (set_at v))
            done)
      in
      let wal_bytes = Authority.wal_size auth in
      Authority.close auth;
      let (auth', rep), replay_s =
        time (fun () ->
            match Authority.open_ ~dir () with
            | Ok v -> v
            | Error e -> failwith e)
      in
      assert (rep.Authority.replayed = n);
      assert (Authority.version auth' ~tenant:"bench" = n);
      let (), compact_s = time (fun () -> Authority.compact auth') in
      Authority.close auth';
      Printf.printf
        "%6d publishes: journal %7.1f ms (%8.0f chg/s), replay %7.1f ms, compact %5.1f ms, wal %8d B\n%!"
        n (1000. *. publish_s)
        (float_of_int n /. publish_s)
        (1000. *. replay_s) (1000. *. compact_s) wal_bytes;
      Json.Obj
        [ ("publishes", Json.Int n);
          ("wal_bytes", Json.Int wal_bytes);
          ("publish_s", Json.Float publish_s);
          ("publish_changes_per_s", Json.Float (float_of_int n /. publish_s));
          ("replay_s", Json.Float replay_s);
          ("compact_s", Json.Float compact_s) ])

(* One authority at head [versions]; clients parked [lag] versions behind
   sync [rounds] times each.  Compares wire bytes and time for delta sync
   against the same clients forced to full downloads. *)
let bench_sync ~versions ~rounds lag =
  let auth = Authority.create () in
  for v = 1 to versions do
    ignore (Authority.publish auth ~tenant:"bench" (set_at v))
  done;
  let transport = Authority.wire_transport auth in
  let counting_transport bytes raw =
    bytes := !bytes + String.length raw;
    match transport raw with
    | Ok response ->
      bytes := !bytes + String.length response;
      Ok response
    | Error _ as e -> e
  in
  (* Park a fresh client at [versions - lag] by syncing it against a
     truncated twin of the authority; the timed part is the catch-up. *)
  let park () =
    let c = Delta_client.create ~seed:1 ~tenant:"bench" () in
    let twin = Authority.create () in
    ignore (Authority.publish twin ~tenant:"bench" (set_at (versions - lag)));
    (match
       (Delta_client.sync c ~transport:(Authority.wire_transport twin))
         .Leakdetect_monitor.Signature_client.outcome
     with
    | Leakdetect_monitor.Signature_client.Updated _ -> ()
    | _ -> failwith "parking sync must update");
    c
  in
  let measure ~full =
    let clients = List.init rounds (fun _ -> park ()) in
    let bytes = ref 0 and deltas = ref 0 and snapshots = ref 0 in
    let (), s =
      time (fun () ->
          List.iter
            (fun c ->
              let transport raw =
                let raw =
                  if full then
                    (* Ask for the snapshot explicitly. *)
                    match String.index_opt raw ' ' with
                    | Some i -> (
                      match String.index_from_opt raw (i + 1) ' ' with
                      | Some j ->
                        String.sub raw 0 j ^ "&full=1"
                        ^ String.sub raw j (String.length raw - j)
                      | None -> raw)
                    | None -> raw
                  else raw
                in
                counting_transport bytes raw
              in
              let before = Delta_client.counters c in
              match
                (Delta_client.sync c ~transport)
                  .Leakdetect_monitor.Signature_client.outcome
              with
              | Leakdetect_monitor.Signature_client.Updated _ ->
                let k = Delta_client.counters c in
                if k.Delta_client.delta_updates > before.Delta_client.delta_updates
                then incr deltas
                else incr snapshots
              | _ -> failwith "catch-up sync must update")
            clients)
    in
    (!bytes, s, !deltas, !snapshots)
  in
  let d_bytes, d_s, d_deltas, _ = measure ~full:false in
  let f_bytes, f_s, _, f_snapshots = measure ~full:true in
  Printf.printf
    "lag %5d of %d: delta %8d B %7.2f ms (%d delta)   full %9d B %7.2f ms (%d snapshot)   bytes saved %4.1fx\n%!"
    lag versions d_bytes (1000. *. d_s) d_deltas f_bytes (1000. *. f_s)
    f_snapshots
    (float_of_int f_bytes /. float_of_int (max 1 d_bytes));
  Json.Obj
    [ ("lag", Json.Int lag);
      ("delta_bytes", Json.Int d_bytes);
      ("delta_s", Json.Float d_s);
      ("full_bytes", Json.Int f_bytes);
      ("full_s", Json.Float f_s);
      ( "bytes_saved_ratio",
        Json.Float (float_of_int f_bytes /. float_of_int (max 1 d_bytes)) ) ]

(* Ranged repair vs resnapshot: fork a synced relay mirror inside its
   newest digest interval and let anti-entropy heal it.  The repair
   should pay for one digest plus a one-interval suffix, not the whole
   canonical set — the gap that justifies the digest endpoint.  Exits
   non-zero if the repair is not strictly cheaper than the rebuild it
   replaces. *)
let bench_repair ~versions =
  let auth = Authority.create () in
  Authority.publish auth ~tenant:"bench" (set_at versions) |> ignore;
  let transport = Authority.wire_transport auth in
  let relay = Relay.create ~seed:7 ~id:"bench-relay" ~tenants:[ "bench" ] () in
  Relay.sync_tenant relay ~tenant:"bench" ~transport |> ignore;
  let snapshot_cost =
    (* What a resnapshot of this tenant records: the canonical body. *)
    String.length
      (String.concat "\n"
         (List.map Signature_io.to_line
            (Authority.signatures auth ~tenant:"bench")))
  in
  Relay.inject_fork relay ~tenant:"bench";
  let (), s =
    time (fun () -> Relay.sync_tenant relay ~tenant:"bench" ~transport |> ignore)
  in
  let c = Relay.counters relay in
  let healed = c.Relay.repairs = 1 && c.Relay.resnapshots = 0 in
  Printf.printf
    "fork at head of %4d versions: repair %6d B %6.2f ms vs resnapshot %8d B (%4.1fx cheaper)%s\n%!"
    versions c.Relay.repair_bytes (1000. *. s) snapshot_cost
    (float_of_int snapshot_cost /. float_of_int (max 1 c.Relay.repair_bytes))
    (if healed then "" else "  [FAILED: resnapshot fallback]");
  if (not healed) || c.Relay.repair_bytes >= snapshot_cost then begin
    Printf.eprintf
      "bench_repair: ranged repair did not beat resnapshot (%d repairs, %d resnapshots, %d B vs %d B)\n"
      c.Relay.repairs c.Relay.resnapshots c.Relay.repair_bytes snapshot_cost;
    exit 1
  end;
  Json.Obj
    [ ("versions", Json.Int versions);
      ("repairs", Json.Int c.Relay.repairs);
      ("repair_bytes", Json.Int c.Relay.repair_bytes);
      ("resnapshot_bytes", Json.Int snapshot_cost);
      ("repair_s", Json.Float s);
      ( "bytes_saved_ratio",
        Json.Float
          (float_of_int snapshot_cost
          /. float_of_int (max 1 c.Relay.repair_bytes)) ) ]

(* Relay offload: run the multi-node topology soak and report what share
   of client sync traffic the relay tier absorbed — the number the
   horizontal tier exists to move. *)
let bench_offload ~clients ~ticks =
  let dir = fresh_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let config =
        { Topology.default_config with Topology.clients; ticks }
      in
      let report, s = time (fun () -> Topology.run ~dir config) in
      Printf.printf
        "%4d clients x %4d ticks: offload %5.1f%% (%d relay / %d origin requests), %d escalations, %.1f ms\n%!"
        clients ticks
        (report.Topology.offload *. 100.)
        report.Topology.relay_requests report.Topology.origin_requests
        report.Topology.escalations (1000. *. s);
      Json.Obj
        [ ("clients", Json.Int clients);
          ("ticks", Json.Int ticks);
          ("relay_requests", Json.Int report.Topology.relay_requests);
          ("origin_requests", Json.Int report.Topology.origin_requests);
          ("offload", Json.Float report.Topology.offload);
          ("escalations", Json.Int report.Topology.escalations);
          ("ok", Json.Bool (Topology.ok report));
          ("run_s", Json.Float s) ])

let () =
  Printf.printf "distribution tier benchmark (%s)\n%!"
    (if quick then "quick" else "full");
  let publish_sizes = if quick then [ 200; 500 ] else [ 200; 1_000; 3_000 ] in
  let versions = if quick then 400 else 2_000 in
  let rounds = if quick then 20 else 50 in
  let lags = [ 1; 10; 100 ] in
  Printf.printf "-- journaled publish / replay / compact --\n%!";
  let publish_rows = List.map bench_publish publish_sizes in
  Printf.printf "-- sync cost vs lag (head at %d versions, %d clients each) --\n%!"
    versions rounds;
  let sync_rows = List.map (bench_sync ~versions ~rounds) lags in
  Printf.printf "-- ranged repair vs resnapshot (forked relay mirror) --\n%!";
  let repair_rows =
    List.map
      (fun v -> bench_repair ~versions:v)
      (if quick then [ 200 ] else [ 200; 1_000 ])
  in
  Printf.printf "-- relay offload (topology soak) --\n%!";
  let offload_row =
    if quick then bench_offload ~clients:60 ~ticks:800
    else bench_offload ~clients:250 ~ticks:2_000
  in
  let doc =
    Json.Obj
      [ ("bench", Json.String "distrib");
        ("quick", Json.Bool quick);
        ("publish", Json.List publish_rows);
        ("sync_vs_lag", Json.List sync_rows);
        ("repair_vs_resnapshot", Json.List repair_rows);
        ("relay_offload", offload_row) ]
  in
  let oc = open_out "BENCH_distrib.json" in
  output_string oc (Json.to_string_pretty doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote BENCH_distrib.json\n"
