(* Multicore pipeline benchmark.

   Measures the parallelized phases — distance-matrix build, whole-trace
   detection, streaming (fragment-fed) detection, end-to-end signature
   generation — at several job counts on a deterministic synthetic
   workload, verifies that every parallel result is identical to the
   sequential one (exact float equality on matrices, byte equality on
   serialized signatures, equal detection bitmaps and metrics), and
   writes BENCH_pipeline.json.

   Every benched phase draws its pool from [Pool.warm], so domain spin-up
   is paid once per job count for the whole process — the bench measures
   steady-state phase cost, exactly what a long-lived CLI process pays.

   Exits non-zero if any parallel output diverges from jobs=1, so CI can
   run it as a correctness gate as well as a perf probe.

   Usage: bench_pipeline.exe [--quick] [--jobs N] [--gate-speedup X]
                             [--throughput-out FILE]
     --quick              tiny workload and sample sizes (CI smoke)
     --jobs N             highest job count to bench (default 4); the
                          benched set is 1, 2, 4, ... doubling up to N
     --gate-speedup X     fail unless the largest-N end-to-end run at the
                          highest job count reached X× over jobs=1; the
                          gate is skipped (with a note) when the machine
                          has fewer hardware domains than the highest job
                          count, where the speedup is physically capped
     --throughput-out F   also write the streaming-throughput section to
                          F as a standalone JSON artifact *)

module Json = Leakdetect_util.Json
module Prng = Leakdetect_util.Prng
module Sample = Leakdetect_util.Sample
module Workload = Leakdetect_android.Workload
module Pipeline = Leakdetect_core.Pipeline
module Distance = Leakdetect_core.Distance
module Siggen = Leakdetect_core.Siggen
module Detector = Leakdetect_core.Detector
module Signature_io = Leakdetect_core.Signature_io
module Metrics = Leakdetect_core.Metrics
module Compressor = Leakdetect_compress.Compressor
module Dist_matrix = Leakdetect_cluster.Dist_matrix
module Pool = Leakdetect_parallel.Pool
module Obs = Leakdetect_obs.Obs
module Normalize = Leakdetect_normalize.Normalize
module Packet = Leakdetect_http.Packet

let quick = Array.exists (fun a -> a = "--quick") Sys.argv

let arg_value name parse ~default =
  let rec find i =
    if i + 1 >= Array.length Sys.argv then default
    else if Sys.argv.(i) = name then
      match parse Sys.argv.(i + 1) with
      | Some v -> v
      | None -> failwith (Printf.sprintf "bench_pipeline: bad value for %s" name)
    else find (i + 1)
  in
  find 0

let max_jobs =
  arg_value "--jobs" ~default:4 (fun s ->
      match int_of_string_opt s with Some n when n >= 1 -> Some n | _ -> None)

let gate_speedup =
  arg_value "--gate-speedup" ~default:None (fun s ->
      match float_of_string_opt s with Some x when x > 0. -> Some (Some x) | _ -> None)

let throughput_out =
  arg_value "--throughput-out" ~default:None (fun s -> Some (Some s))

let job_counts =
  let rec doubling j acc = if j >= max_jobs then List.rev (max_jobs :: acc) else doubling (2 * j) (j :: acc) in
  doubling 1 []

let scale = if quick then 0.02 else 0.25
let matrix_ns = if quick then [ 40; 80 ] else [ 100; 300; 500 ]
let e2e_ns = if quick then [ 40 ] else [ 100; 300; 500 ]

let divergences = ref 0

let check name ok =
  if not ok then begin
    incr divergences;
    Printf.printf "DIVERGENCE: %s\n%!" name
  end

let time f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  (v, Unix.gettimeofday () -. t0)

let matrices_equal a b =
  Dist_matrix.size a = Dist_matrix.size b
  && begin
    let n = Dist_matrix.size a in
    let ok = ref true in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        if Dist_matrix.get a i j <> Dist_matrix.get b i j then ok := false
      done
    done;
    !ok
  end

let serialize_signatures sigs = String.concat "\n" (List.map Signature_io.to_line sigs)

let dataset =
  Printf.printf "workload: seed 42, scale %.2f...\n%!" scale;
  let ds, s = time (fun () -> Workload.generate ~seed:42 ~scale ()) in
  Printf.printf "generated %d packets in %.1fs (benching jobs = %s; recommended domains here: %d)\n%!"
    (Array.length ds.Workload.records) s
    (String.concat ", " (List.map string_of_int job_counts))
    (Pool.recommended_jobs ());
  ds

let suspicious, normal = Workload.split dataset
let all_packets = Workload.packets dataset

(* One signature set shared by the detection, streaming and allocation
   sections, so their numbers are comparable. *)
let detector =
  let sample_n = if quick then 40 else 300 in
  let sample = Sample.without_replacement (Prng.create 7) sample_n suspicious in
  let gen = Siggen.generate (Distance.create ()) sample in
  Detector.create gen.Siggen.signatures

let sections : (string * Json.t) list ref = ref []
let record name v = sections := (name, v) :: !sections

(* Largest-N end-to-end speedup at the highest job count, for --gate-speedup. *)
let e2e_gate : (int * float) option ref = ref None

(* --- distance matrix ---------------------------------------------------- *)

let bench_matrix () =
  Printf.printf "\n-- distance matrix build --\n%!";
  List.iter
    (fun n ->
      let sample = Sample.without_replacement (Prng.create 7) n suspicious in
      let n = Array.length sample in
      let reference = ref None in
      let seq_seconds = ref nan in
      let rows =
        List.map
          (fun jobs ->
            let dist = Distance.create () in
            let pool = Pool.warm jobs in
            let m, seconds = time (fun () -> Distance.matrix ?pool dist sample) in
            (match !reference with
            | None ->
              reference := Some m;
              seq_seconds := seconds
            | Some r -> check (Printf.sprintf "matrix N=%d jobs=%d" n jobs) (matrices_equal r m));
            let speedup = !seq_seconds /. seconds in
            let st = Compressor.Cache.stats (Distance.ncd_cache dist) in
            Printf.printf
              "  N=%-4d jobs=%d  %7.3fs  speedup %4.2fx  (singleton %d hit / %d miss, pair %d hit / %d miss, frozen %d)\n%!"
              n jobs seconds speedup st.Compressor.Cache.hits st.Compressor.Cache.misses
              st.Compressor.Cache.pair_hits st.Compressor.Cache.pair_misses
              st.Compressor.Cache.frozen_misses;
            Json.Obj
              [ ("jobs", Json.Int jobs); ("seconds", Json.Float seconds);
                ("speedup_vs_jobs1", Json.Float speedup);
                ("cache_hits", Json.Int st.Compressor.Cache.hits);
                ("cache_misses", Json.Int st.Compressor.Cache.misses);
                ("pair_hits", Json.Int st.Compressor.Cache.pair_hits);
                ("pair_misses", Json.Int st.Compressor.Cache.pair_misses);
                ("frozen_misses", Json.Int st.Compressor.Cache.frozen_misses) ])
          job_counts
      in
      record (Printf.sprintf "matrix_n%d" n) (Json.Obj [ ("n", Json.Int n); ("runs", Json.List rows) ]))
    matrix_ns

(* --- whole-trace detection ---------------------------------------------- *)

let bench_detection () =
  Printf.printf "\n-- whole-trace detection (%d packets) --\n%!" (Array.length all_packets);
  Printf.printf "  signature set: %d signatures\n%!" (Detector.signature_count detector);
  let reference = ref None in
  let seq_seconds = ref nan in
  let rows =
    List.map
      (fun jobs ->
        let pool = Pool.warm jobs in
        let bitmap, seconds =
          time (fun () -> Detector.detect_bitmap ?pool detector all_packets)
        in
        (match !reference with
        | None ->
          reference := Some bitmap;
          seq_seconds := seconds
        | Some r -> check (Printf.sprintf "detection bitmap jobs=%d" jobs) (r = bitmap));
        let speedup = !seq_seconds /. seconds in
        let throughput = float_of_int (Array.length all_packets) /. seconds in
        Printf.printf "  jobs=%d  %7.3fs  %9.0f packets/s  speedup %4.2fx\n%!" jobs seconds
          throughput speedup;
        Json.Obj
          [ ("jobs", Json.Int jobs); ("seconds", Json.Float seconds);
            ("packets_per_sec", Json.Float throughput);
            ("speedup_vs_jobs1", Json.Float speedup) ])
      job_counts
  in
  record "detection"
    (Json.Obj
       [ ("packets", Json.Int (Array.length all_packets));
         ("signatures", Json.Int (Detector.signature_count detector));
         ("runs", Json.List rows) ])

(* --- streaming detection ------------------------------------------------- *)

(* RFC 7230 chunked framing of [s] with an irregular chunk width, so the
   fragment seams land at awkward offsets. *)
let chunk_encode s =
  let buf = Buffer.create (String.length s + 64) in
  let off = ref 0 in
  let w = ref 5 in
  while !off < String.length s do
    let l = min !w (String.length s - !off) in
    Buffer.add_string buf (Printf.sprintf "%x\r\n" l);
    Buffer.add_substring buf s !off l;
    Buffer.add_string buf "\r\n";
    off := !off + l;
    w := 1 + ((!w * 3) mod 11)
  done;
  Buffer.add_string buf "0\r\n\r\n";
  Buffer.contents buf

let bench_streaming () =
  Printf.printf "\n-- streaming detection (fragment-fed flows, batch throughput) --\n%!";
  (* Flow equivalence: feed every packet as its canonical content stream,
     the body split into tiny fragments (width cycling 1..7) or framed as a
     chunked transfer coding, and require the verdict to equal whole-packet
     detection.  This is the reassembly-free path the monitor runs. *)
  let stream = Detector.Stream.create detector in
  let flow = Detector.Stream.open_flow stream in
  let frag_mismatch = ref 0 and chunk_mismatch = ref 0 in
  let feed_fragments i s =
    let w = 1 + (i mod 7) in
    let len = String.length s in
    let off = ref 0 in
    while !off < len do
      let l = min w (len - !off) in
      Detector.Stream.feed flow ~off:!off ~len:l s;
      off := !off + l
    done
  in
  let verify_seconds = ref 0. in
  let () =
    let _, seconds =
      time (fun () ->
          Array.iteri
            (fun i (p : Packet.t) ->
              let c = p.Packet.content in
              let expect = Detector.detects detector p in
              feed_fragments i c.Packet.request_line;
              Detector.Stream.feed flow "\n";
              feed_fragments i c.Packet.cookie;
              Detector.Stream.feed flow "\n";
              feed_fragments i c.Packet.body;
              if Detector.Stream.close flow <> None <> expect then incr frag_mismatch;
              Detector.Stream.feed flow c.Packet.request_line;
              Detector.Stream.feed flow "\n";
              Detector.Stream.feed flow c.Packet.cookie;
              Detector.Stream.feed flow "\n";
              (match Detector.Stream.feed_chunked flow (chunk_encode c.Packet.body) with
              | Ok _ -> ()
              | Error _ -> incr chunk_mismatch);
              if Detector.Stream.close flow <> None <> expect then incr chunk_mismatch)
            all_packets)
    in
    verify_seconds := seconds
  in
  check "streaming fragment-fed flow = whole-packet detect" (!frag_mismatch = 0);
  check "streaming chunked-fed flow = whole-packet detect" (!chunk_mismatch = 0);
  Printf.printf "  flow equivalence: %d packets x 2 framings in %.3fs (%d mismatches)\n%!"
    (Array.length all_packets) !verify_seconds (!frag_mismatch + !chunk_mismatch);
  (* Batch throughput: packets/sec and MiB/s through Detector.Stream at each
     job count, against the sequential bitmap. *)
  let reference = ref None in
  let seq_seconds = ref nan in
  let rows =
    List.map
      (fun jobs ->
        let pool = Pool.warm jobs in
        let stream = Detector.Stream.create ?pool detector in
        let bitmap, seconds = time (fun () -> Detector.Stream.detect_batch stream all_packets) in
        (match !reference with
        | None ->
          reference := Some bitmap;
          seq_seconds := seconds
        | Some r -> check (Printf.sprintf "streaming batch bitmap jobs=%d" jobs) (r = bitmap));
        let st = Detector.Stream.stats stream in
        let speedup = !seq_seconds /. seconds in
        let pps = float_of_int st.Detector.Stream.packets /. seconds in
        let mibps = float_of_int st.Detector.Stream.bytes /. seconds /. 1048576. in
        Printf.printf "  jobs=%d  %7.3fs  %9.0f packets/s  %7.1f MiB/s  speedup %4.2fx\n%!"
          jobs seconds pps mibps speedup;
        Json.Obj
          [ ("jobs", Json.Int jobs); ("seconds", Json.Float seconds);
            ("packets_per_sec", Json.Float pps); ("mib_per_sec", Json.Float mibps);
            ("bytes", Json.Int st.Detector.Stream.bytes);
            ("hits", Json.Int st.Detector.Stream.hits);
            ("speedup_vs_jobs1", Json.Float speedup) ])
      job_counts
  in
  let section =
    Json.Obj
      [ ("packets", Json.Int (Array.length all_packets));
        ("signatures", Json.Int (Detector.signature_count detector));
        ("flow_equivalence_mismatches", Json.Int (!frag_mismatch + !chunk_mismatch));
        ("runs", Json.List rows) ]
  in
  record "streaming" section;
  section

(* --- detection allocation ------------------------------------------------ *)

let bench_allocation () =
  Printf.printf "\n-- detection allocation (per-packet scratch vs reused scratch) --\n%!";
  let naive () =
    (* The convenience API: a fresh matched-set and matcher state per
       packet — what the sequential path allocated before scratch reuse. *)
    Array.fold_left
      (fun acc p -> if Detector.detects detector p then acc + 1 else acc)
      0 all_packets
  in
  let reused () = Detector.count_detected detector all_packets in
  ignore (naive ());
  ignore (reused ());
  let a0 = Gc.allocated_bytes () in
  let c_naive = naive () in
  let a1 = Gc.allocated_bytes () in
  let c_reused = reused () in
  let a2 = Gc.allocated_bytes () in
  let naive_bytes = a1 -. a0 and reused_bytes = a2 -. a1 in
  check "allocation: naive and scratch-reusing counts agree" (c_naive = c_reused);
  check "allocation: scratch reuse allocates less than per-packet"
    (reused_bytes < naive_bytes);
  let per_packet b = b /. float_of_int (Array.length all_packets) in
  Printf.printf
    "  per-packet: %10.0f B  reused scratch: %7.0f B  (%.1fx less, %d packets)\n%!"
    (per_packet naive_bytes) (per_packet reused_bytes)
    (naive_bytes /. Float.max 1. reused_bytes)
    (Array.length all_packets);
  record "detection_allocation"
    (Json.Obj
       [ ("packets", Json.Int (Array.length all_packets));
         ("naive_bytes", Json.Float naive_bytes);
         ("reused_scratch_bytes", Json.Float reused_bytes);
         ("naive_bytes_per_packet", Json.Float (per_packet naive_bytes));
         ("reused_bytes_per_packet", Json.Float (per_packet reused_bytes)) ])

(* --- end to end ---------------------------------------------------------- *)

let bench_end_to_end () =
  Printf.printf "\n-- end-to-end pipeline (sample -> cluster -> sign -> detect) --\n%!";
  List.iter
    (fun n ->
      let reference = ref None in
      let seq_seconds = ref nan in
      let rows =
        List.map
          (fun jobs ->
            let pool = Pool.warm jobs in
            let outcome, seconds =
              time (fun () ->
                  Pipeline.run ?pool ~rng:(Prng.create (7 + n)) ~n ~suspicious ~normal ())
            in
            let sigs = serialize_signatures outcome.Pipeline.signatures in
            (match !reference with
            | None ->
              reference := Some (sigs, outcome.Pipeline.metrics);
              seq_seconds := seconds
            | Some (ref_sigs, ref_metrics) ->
              check (Printf.sprintf "e2e signatures N=%d jobs=%d" n jobs) (ref_sigs = sigs);
              check
                (Printf.sprintf "e2e metrics N=%d jobs=%d" n jobs)
                (compare ref_metrics outcome.Pipeline.metrics = 0));
            let speedup = !seq_seconds /. seconds in
            if jobs = max_jobs then e2e_gate := Some (n, speedup);
            Printf.printf "  N=%-4d jobs=%d  %7.3fs  speedup %4.2fx  (%d signatures, TP %.1f%%)\n%!"
              n jobs seconds speedup
              (List.length outcome.Pipeline.signatures)
              (100. *. outcome.Pipeline.metrics.Metrics.true_positive);
            Json.Obj
              [ ("jobs", Json.Int jobs); ("seconds", Json.Float seconds);
                ("speedup_vs_jobs1", Json.Float speedup);
                ("signatures", Json.Int (List.length outcome.Pipeline.signatures));
                ("tp", Json.Float outcome.Pipeline.metrics.Metrics.true_positive);
                ("fp", Json.Float outcome.Pipeline.metrics.Metrics.false_positive) ])
          job_counts
      in
      record (Printf.sprintf "end_to_end_n%d" n)
        (Json.Obj [ ("n", Json.Int n); ("runs", Json.List rows) ]))
    e2e_ns

(* --- observability overhead ---------------------------------------------- *)

let bench_obs_overhead () =
  Printf.printf "\n-- observability overhead (noop vs active registry) --\n%!";
  let n = if quick then 40 else 300 in
  let run obs =
    Pipeline.run
      ~config:(Pipeline.Config.with_obs obs Pipeline.Config.default)
      ~rng:(Prng.create (7 + n)) ~n ~suspicious ~normal ()
  in
  (* Warm-up so allocator state doesn't favour whichever variant runs second. *)
  ignore (run Obs.noop);
  let noop_outcome, noop_seconds = time (fun () -> run Obs.noop) in
  let obs = Obs.create () in
  let active_outcome, active_seconds = time (fun () -> run obs) in
  check "obs-active signatures identical to noop"
    (serialize_signatures noop_outcome.Pipeline.signatures
    = serialize_signatures active_outcome.Pipeline.signatures);
  check "obs-active metrics identical to noop"
    (compare noop_outcome.Pipeline.metrics active_outcome.Pipeline.metrics = 0);
  check "obs-active run recorded"
    (Obs.Counter.value (Obs.counter obs "leakdetect_pipeline_runs_total") = 1);
  let overhead_pct = 100. *. (active_seconds -. noop_seconds) /. noop_seconds in
  Printf.printf "  N=%-4d noop %7.3fs  active %7.3fs  overhead %+.2f%%\n%!" n
    noop_seconds active_seconds overhead_pct;
  record "obs_overhead"
    (Json.Obj
       [ ("n", Json.Int n); ("noop_seconds", Json.Float noop_seconds);
         ("active_seconds", Json.Float active_seconds);
         ("overhead_pct", Json.Float overhead_pct) ])

(* --- normalization overhead and off-gate identity ------------------------ *)

let bench_normalize_overhead () =
  Printf.printf "\n-- canonicalization lattice (off-gate identity, enabled cost) --\n%!";
  let n = if quick then 40 else 300 in
  let run config = Pipeline.run ~config ~rng:(Prng.create (7 + n)) ~n ~suspicious ~normal () in
  ignore (run Pipeline.Config.default);
  let off_outcome, off_seconds = time (fun () -> run Pipeline.Config.default) in
  let explicit_off =
    run (Pipeline.Config.with_normalize None Pipeline.Config.default)
  in
  let normalize = Normalize.create () in
  let on_outcome, on_seconds =
    time (fun () ->
        run (Pipeline.Config.with_normalize (Some normalize) Pipeline.Config.default))
  in
  check "normalize-off explicit None identical to default"
    (serialize_signatures off_outcome.Pipeline.signatures
     = serialize_signatures explicit_off.Pipeline.signatures
    && compare off_outcome.Pipeline.metrics explicit_off.Pipeline.metrics = 0);
  check "normalize-on signatures identical to off"
    (serialize_signatures off_outcome.Pipeline.signatures
    = serialize_signatures on_outcome.Pipeline.signatures);
  (* On clean (never re-encoded) traffic the lattice may only add matches,
     never lose one: recall must not drop with normalization enabled. *)
  check "normalize-on recall >= off"
    (on_outcome.Pipeline.metrics.Metrics.true_positive
    >= off_outcome.Pipeline.metrics.Metrics.true_positive);
  let overhead_pct = 100. *. (on_seconds -. off_seconds) /. off_seconds in
  Printf.printf "  N=%-4d off %7.3fs  on %7.3fs  overhead %+.2f%%\n%!" n off_seconds
    on_seconds overhead_pct;
  record "normalize_overhead"
    (Json.Obj
       [ ("n", Json.Int n); ("off_seconds", Json.Float off_seconds);
         ("on_seconds", Json.Float on_seconds);
         ("overhead_pct", Json.Float overhead_pct) ])

let () =
  bench_matrix ();
  bench_detection ();
  let streaming_section = bench_streaming () in
  bench_allocation ();
  bench_end_to_end ();
  bench_obs_overhead ();
  bench_normalize_overhead ();
  let doc =
    Json.Obj
      (("quick", Json.Bool quick)
      :: ("scale", Json.Float scale)
      :: ("job_counts", Json.List (List.map (fun j -> Json.Int j) job_counts))
      :: ("recommended_domains", Json.Int (Pool.recommended_jobs ()))
      :: ("total_packets", Json.Int (Array.length all_packets))
      :: ("divergences", Json.Int !divergences)
      :: List.rev !sections)
  in
  let oc = open_out "BENCH_pipeline.json" in
  output_string oc (Json.to_string_pretty doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "\nwrote BENCH_pipeline.json\n";
  (match throughput_out with
  | None -> ()
  | Some file ->
    let oc = open_out file in
    output_string oc
      (Json.to_string_pretty
         (Json.Obj
            [ ("recommended_domains", Json.Int (Pool.recommended_jobs ()));
              ("streaming", streaming_section) ]));
    output_char oc '\n';
    close_out oc;
    Printf.printf "wrote %s\n" file);
  let gate_failed =
    match gate_speedup with
    | None -> false
    | Some floor ->
      if Pool.recommended_jobs () < max_jobs then begin
        Printf.printf
          "speedup gate skipped: %d hardware domain(s) < %d benched jobs (speedup physically capped)\n"
          (Pool.recommended_jobs ()) max_jobs;
        false
      end
      else begin
        match !e2e_gate with
        | None ->
          Printf.printf "speedup gate FAILED: no end-to-end run at jobs=%d measured\n" max_jobs;
          true
        | Some (n, speedup) ->
          Printf.printf "speedup gate: e2e N=%d jobs=%d reached %.2fx (floor %.2fx): %s\n" n
            max_jobs speedup floor
            (if speedup >= floor then "ok" else "FAILED");
          speedup < floor
      end
  in
  if !divergences > 0 then begin
    Printf.printf "FAILED: %d parallel/sequential divergence(s)\n" !divergences;
    exit 1
  end
  else Printf.printf "all parallel outputs identical to sequential\n";
  if gate_failed then exit 1
