(* Multicore pipeline benchmark.

   Measures the three parallelized phases — distance-matrix build,
   whole-trace detection, end-to-end signature generation — at several
   job counts on a deterministic synthetic workload, verifies that every
   parallel result is identical to the sequential one (exact float
   equality on matrices, byte equality on serialized signatures, equal
   detection bitmaps and metrics), and writes BENCH_pipeline.json.

   Exits non-zero if any parallel output diverges from jobs=1, so CI can
   run it as a correctness gate as well as a perf probe.

   Usage: bench_pipeline.exe [--quick] [--jobs N]
     --quick    tiny workload and sample sizes (CI smoke)
     --jobs N   highest job count to bench (default 4); the benched set
                is 1, 2, 4, ... doubling up to N. *)

module Json = Leakdetect_util.Json
module Prng = Leakdetect_util.Prng
module Sample = Leakdetect_util.Sample
module Workload = Leakdetect_android.Workload
module Pipeline = Leakdetect_core.Pipeline
module Distance = Leakdetect_core.Distance
module Siggen = Leakdetect_core.Siggen
module Detector = Leakdetect_core.Detector
module Signature_io = Leakdetect_core.Signature_io
module Metrics = Leakdetect_core.Metrics
module Compressor = Leakdetect_compress.Compressor
module Dist_matrix = Leakdetect_cluster.Dist_matrix
module Pool = Leakdetect_parallel.Pool
module Obs = Leakdetect_obs.Obs
module Normalize = Leakdetect_normalize.Normalize

let quick = Array.exists (fun a -> a = "--quick") Sys.argv

let max_jobs =
  let rec find i =
    if i + 1 >= Array.length Sys.argv then 4
    else if Sys.argv.(i) = "--jobs" then
      match int_of_string_opt Sys.argv.(i + 1) with
      | Some n when n >= 1 -> n
      | _ -> failwith "bench_pipeline: --jobs expects a positive integer"
    else find (i + 1)
  in
  find 0

let job_counts =
  let rec doubling j acc = if j >= max_jobs then List.rev (max_jobs :: acc) else doubling (2 * j) (j :: acc) in
  doubling 1 []

let scale = if quick then 0.02 else 0.25
let matrix_ns = if quick then [ 40; 80 ] else [ 100; 300; 500 ]
let e2e_ns = if quick then [ 40 ] else [ 100; 300; 500 ]

let divergences = ref 0

let check name ok =
  if not ok then begin
    incr divergences;
    Printf.printf "DIVERGENCE: %s\n%!" name
  end

let time f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  (v, Unix.gettimeofday () -. t0)

let matrices_equal a b =
  Dist_matrix.size a = Dist_matrix.size b
  && begin
    let n = Dist_matrix.size a in
    let ok = ref true in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        if Dist_matrix.get a i j <> Dist_matrix.get b i j then ok := false
      done
    done;
    !ok
  end

let serialize_signatures sigs = String.concat "\n" (List.map Signature_io.to_line sigs)

let dataset =
  Printf.printf "workload: seed 42, scale %.2f...\n%!" scale;
  let ds, s = time (fun () -> Workload.generate ~seed:42 ~scale ()) in
  Printf.printf "generated %d packets in %.1fs (benching jobs = %s; recommended domains here: %d)\n%!"
    (Array.length ds.Workload.records) s
    (String.concat ", " (List.map string_of_int job_counts))
    (Pool.recommended_jobs ());
  ds

let suspicious, normal = Workload.split dataset
let all_packets = Workload.packets dataset

let sections : (string * Json.t) list ref = ref []
let record name v = sections := (name, v) :: !sections

(* --- distance matrix ---------------------------------------------------- *)

let bench_matrix () =
  Printf.printf "\n-- distance matrix build --\n%!";
  List.iter
    (fun n ->
      let sample = Sample.without_replacement (Prng.create 7) n suspicious in
      let n = Array.length sample in
      let reference = ref None in
      let seq_seconds = ref nan in
      let rows =
        List.map
          (fun jobs ->
            let dist = Distance.create () in
            let m, seconds =
              Pool.with_pool jobs (fun pool ->
                  time (fun () -> Distance.matrix ?pool dist sample))
            in
            (match !reference with
            | None ->
              reference := Some m;
              seq_seconds := seconds
            | Some r -> check (Printf.sprintf "matrix N=%d jobs=%d" n jobs) (matrices_equal r m));
            let speedup = !seq_seconds /. seconds in
            let st = Compressor.Cache.stats (Distance.ncd_cache dist) in
            Printf.printf
              "  N=%-4d jobs=%d  %7.3fs  speedup %4.2fx  (singleton %d hit / %d miss, pair %d hit / %d miss, frozen %d)\n%!"
              n jobs seconds speedup st.Compressor.Cache.hits st.Compressor.Cache.misses
              st.Compressor.Cache.pair_hits st.Compressor.Cache.pair_misses
              st.Compressor.Cache.frozen_misses;
            Json.Obj
              [ ("jobs", Json.Int jobs); ("seconds", Json.Float seconds);
                ("speedup_vs_jobs1", Json.Float speedup);
                ("cache_hits", Json.Int st.Compressor.Cache.hits);
                ("cache_misses", Json.Int st.Compressor.Cache.misses);
                ("pair_hits", Json.Int st.Compressor.Cache.pair_hits);
                ("pair_misses", Json.Int st.Compressor.Cache.pair_misses);
                ("frozen_misses", Json.Int st.Compressor.Cache.frozen_misses) ])
          job_counts
      in
      record (Printf.sprintf "matrix_n%d" n) (Json.Obj [ ("n", Json.Int n); ("runs", Json.List rows) ]))
    matrix_ns

(* --- whole-trace detection ---------------------------------------------- *)

let bench_detection () =
  Printf.printf "\n-- whole-trace detection (%d packets) --\n%!" (Array.length all_packets);
  let sample_n = if quick then 40 else 300 in
  let sample = Sample.without_replacement (Prng.create 7) sample_n suspicious in
  let gen = Siggen.generate (Distance.create ()) sample in
  let detector = Detector.create gen.Siggen.signatures in
  Printf.printf "  signature set: %d signatures\n%!" (List.length gen.Siggen.signatures);
  let reference = ref None in
  let seq_seconds = ref nan in
  let rows =
    List.map
      (fun jobs ->
        let bitmap, seconds =
          Pool.with_pool jobs (fun pool ->
              time (fun () -> Detector.detect_bitmap ?pool detector all_packets))
        in
        (match !reference with
        | None ->
          reference := Some bitmap;
          seq_seconds := seconds
        | Some r -> check (Printf.sprintf "detection bitmap jobs=%d" jobs) (r = bitmap));
        let speedup = !seq_seconds /. seconds in
        let throughput = float_of_int (Array.length all_packets) /. seconds in
        Printf.printf "  jobs=%d  %7.3fs  %9.0f packets/s  speedup %4.2fx\n%!" jobs seconds
          throughput speedup;
        Json.Obj
          [ ("jobs", Json.Int jobs); ("seconds", Json.Float seconds);
            ("packets_per_sec", Json.Float throughput);
            ("speedup_vs_jobs1", Json.Float speedup) ])
      job_counts
  in
  record "detection"
    (Json.Obj
       [ ("packets", Json.Int (Array.length all_packets));
         ("signatures", Json.Int (List.length gen.Siggen.signatures));
         ("runs", Json.List rows) ])

(* --- end to end ---------------------------------------------------------- *)

let bench_end_to_end () =
  Printf.printf "\n-- end-to-end pipeline (sample -> cluster -> sign -> detect) --\n%!";
  List.iter
    (fun n ->
      let reference = ref None in
      let seq_seconds = ref nan in
      let rows =
        List.map
          (fun jobs ->
            let outcome, seconds =
              Pool.with_pool jobs (fun pool ->
                  time (fun () ->
                      Pipeline.run ?pool ~rng:(Prng.create (7 + n)) ~n ~suspicious ~normal ()))
            in
            let sigs = serialize_signatures outcome.Pipeline.signatures in
            (match !reference with
            | None ->
              reference := Some (sigs, outcome.Pipeline.metrics);
              seq_seconds := seconds
            | Some (ref_sigs, ref_metrics) ->
              check (Printf.sprintf "e2e signatures N=%d jobs=%d" n jobs) (ref_sigs = sigs);
              check
                (Printf.sprintf "e2e metrics N=%d jobs=%d" n jobs)
                (compare ref_metrics outcome.Pipeline.metrics = 0));
            let speedup = !seq_seconds /. seconds in
            Printf.printf "  N=%-4d jobs=%d  %7.3fs  speedup %4.2fx  (%d signatures, TP %.1f%%)\n%!"
              n jobs seconds speedup
              (List.length outcome.Pipeline.signatures)
              (100. *. outcome.Pipeline.metrics.Metrics.true_positive);
            Json.Obj
              [ ("jobs", Json.Int jobs); ("seconds", Json.Float seconds);
                ("speedup_vs_jobs1", Json.Float speedup);
                ("signatures", Json.Int (List.length outcome.Pipeline.signatures));
                ("tp", Json.Float outcome.Pipeline.metrics.Metrics.true_positive);
                ("fp", Json.Float outcome.Pipeline.metrics.Metrics.false_positive) ])
          job_counts
      in
      record (Printf.sprintf "end_to_end_n%d" n)
        (Json.Obj [ ("n", Json.Int n); ("runs", Json.List rows) ]))
    e2e_ns

(* --- observability overhead ---------------------------------------------- *)

let bench_obs_overhead () =
  Printf.printf "\n-- observability overhead (noop vs active registry) --\n%!";
  let n = if quick then 40 else 300 in
  let run obs =
    Pipeline.run
      ~config:(Pipeline.Config.with_obs obs Pipeline.Config.default)
      ~rng:(Prng.create (7 + n)) ~n ~suspicious ~normal ()
  in
  (* Warm-up so allocator state doesn't favour whichever variant runs second. *)
  ignore (run Obs.noop);
  let noop_outcome, noop_seconds = time (fun () -> run Obs.noop) in
  let obs = Obs.create () in
  let active_outcome, active_seconds = time (fun () -> run obs) in
  check "obs-active signatures identical to noop"
    (serialize_signatures noop_outcome.Pipeline.signatures
    = serialize_signatures active_outcome.Pipeline.signatures);
  check "obs-active metrics identical to noop"
    (compare noop_outcome.Pipeline.metrics active_outcome.Pipeline.metrics = 0);
  check "obs-active run recorded"
    (Obs.Counter.value (Obs.counter obs "leakdetect_pipeline_runs_total") = 1);
  let overhead_pct = 100. *. (active_seconds -. noop_seconds) /. noop_seconds in
  Printf.printf "  N=%-4d noop %7.3fs  active %7.3fs  overhead %+.2f%%\n%!" n
    noop_seconds active_seconds overhead_pct;
  record "obs_overhead"
    (Json.Obj
       [ ("n", Json.Int n); ("noop_seconds", Json.Float noop_seconds);
         ("active_seconds", Json.Float active_seconds);
         ("overhead_pct", Json.Float overhead_pct) ])

(* --- normalization overhead and off-gate identity ------------------------ *)

let bench_normalize_overhead () =
  Printf.printf "\n-- canonicalization lattice (off-gate identity, enabled cost) --\n%!";
  let n = if quick then 40 else 300 in
  let run config = Pipeline.run ~config ~rng:(Prng.create (7 + n)) ~n ~suspicious ~normal () in
  ignore (run Pipeline.Config.default);
  let off_outcome, off_seconds = time (fun () -> run Pipeline.Config.default) in
  let explicit_off =
    run (Pipeline.Config.with_normalize None Pipeline.Config.default)
  in
  let normalize = Normalize.create () in
  let on_outcome, on_seconds =
    time (fun () ->
        run (Pipeline.Config.with_normalize (Some normalize) Pipeline.Config.default))
  in
  check "normalize-off explicit None identical to default"
    (serialize_signatures off_outcome.Pipeline.signatures
     = serialize_signatures explicit_off.Pipeline.signatures
    && compare off_outcome.Pipeline.metrics explicit_off.Pipeline.metrics = 0);
  check "normalize-on signatures identical to off"
    (serialize_signatures off_outcome.Pipeline.signatures
    = serialize_signatures on_outcome.Pipeline.signatures);
  (* On clean (never re-encoded) traffic the lattice may only add matches,
     never lose one: recall must not drop with normalization enabled. *)
  check "normalize-on recall >= off"
    (on_outcome.Pipeline.metrics.Metrics.true_positive
    >= off_outcome.Pipeline.metrics.Metrics.true_positive);
  let overhead_pct = 100. *. (on_seconds -. off_seconds) /. off_seconds in
  Printf.printf "  N=%-4d off %7.3fs  on %7.3fs  overhead %+.2f%%\n%!" n off_seconds
    on_seconds overhead_pct;
  record "normalize_overhead"
    (Json.Obj
       [ ("n", Json.Int n); ("off_seconds", Json.Float off_seconds);
         ("on_seconds", Json.Float on_seconds);
         ("overhead_pct", Json.Float overhead_pct) ])

let () =
  bench_matrix ();
  bench_detection ();
  bench_end_to_end ();
  bench_obs_overhead ();
  bench_normalize_overhead ();
  let doc =
    Json.Obj
      (("quick", Json.Bool quick)
      :: ("scale", Json.Float scale)
      :: ("job_counts", Json.List (List.map (fun j -> Json.Int j) job_counts))
      :: ("recommended_domains", Json.Int (Pool.recommended_jobs ()))
      :: ("total_packets", Json.Int (Array.length all_packets))
      :: ("divergences", Json.Int !divergences)
      :: List.rev !sections)
  in
  let oc = open_out "BENCH_pipeline.json" in
  output_string oc (Json.to_string_pretty doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "\nwrote BENCH_pipeline.json\n";
  if !divergences > 0 then begin
    Printf.printf "FAILED: %d parallel/sequential divergence(s)\n" !divergences;
    exit 1
  end
  else Printf.printf "all parallel outputs identical to sequential\n"
