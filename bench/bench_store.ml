(* Durability-layer benchmark: WAL append throughput, recovery (replay)
   time as the log grows, and snapshot/compaction cost.

   Emits BENCH_store.json next to the working directory so runs can be
   diffed.  Kept deliberately small — the point is the scaling shape
   (replay linear in log length, append cost flat), not absolute numbers.

   Usage: bench_store.exe [--quick]   (--quick caps the log at 5k records) *)

module Json = Leakdetect_util.Json
module Signature = Leakdetect_core.Signature
module Store = Leakdetect_store.Store
module Wal = Leakdetect_store.Wal

let quick = Array.exists (fun a -> a = "--quick") Sys.argv

let fresh_dir () =
  let f = Filename.temp_file "ld_bench_store" "" in
  Sys.remove f;
  Sys.mkdir f 0o700;
  f

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let time f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  (v, Unix.gettimeofday () -. t0)

(* A representative entry: a publish of a handful of realistic signatures,
   versions ticking up so every replay entry actually applies. *)
let signatures =
  [ Signature.make ~id:0 ~mode:Signature.Conjunction ~cluster_size:4
      [ "imei=355021930123456"; "loc=35.609,139.743" ];
    Signature.make ~id:1 ~mode:Signature.Ordered ~cluster_size:3
      [ "GET"; "/ad/track"; "android_id=9774d56d682e549c" ];
    Signature.make ~id:2 ~mode:Signature.Conjunction ~cluster_size:2
      [ "mac=00:11:22:33:44:55"; "operator=44010" ] ]

let entry v = Store.Publish { version = v; signatures }

let bench_one n =
  let dir = fresh_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let store, _ =
        match Store.open_ ~dir () with Ok v -> v | Error e -> failwith e
      in
      let (), append_s =
        time (fun () ->
            for v = 1 to n do
              Store.log store (entry v)
            done)
      in
      let wal_bytes = Store.wal_size store in
      Store.close store;
      let recovered, replay_s =
        time (fun () ->
            match Store.open_ ~dir () with Ok v -> v | Error e -> failwith e)
      in
      let store', report = recovered in
      assert (report.Store.replayed = n);
      assert ((Store.state store').Store.server_version = n);
      let (), compact_s = time (fun () -> Store.compact store') in
      Store.close store';
      (* Recovery from the snapshot alone (empty log). *)
      let recovered2, snap_open_s =
        time (fun () ->
            match Store.open_ ~dir () with Ok v -> v | Error e -> failwith e)
      in
      let store'', report2 = recovered2 in
      assert (report2.Store.snapshot = Store.Loaded);
      Store.close store'';
      Printf.printf
        "%6d records: append %7.1f ms (%8.0f rec/s), replay %7.1f ms, compact %5.1f ms, snapshot-open %5.1f ms, wal %7d B\n%!"
        n (1000. *. append_s)
        (float_of_int n /. append_s)
        (1000. *. replay_s) (1000. *. compact_s) (1000. *. snap_open_s)
        wal_bytes;
      Json.Obj
        [ ("records", Json.Int n);
          ("wal_bytes", Json.Int wal_bytes);
          ("append_s", Json.Float append_s);
          ("append_records_per_s", Json.Float (float_of_int n /. append_s));
          ("replay_s", Json.Float replay_s);
          ("compact_s", Json.Float compact_s);
          ("snapshot_open_s", Json.Float snap_open_s) ])

let () =
  let sizes = if quick then [ 1_000; 5_000 ] else [ 1_000; 5_000; 20_000 ] in
  Printf.printf "store durability benchmark (%s)\n%!"
    (if quick then "quick" else "full");
  let rows = List.map bench_one sizes in
  let doc =
    Json.Obj
      [ ("bench", Json.String "store");
        ("quick", Json.Bool quick);
        ("wal_magic", Json.String Wal.magic);
        ("sizes", Json.List rows) ]
  in
  let oc = open_out "BENCH_store.json" in
  output_string oc (Json.to_string_pretty doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote BENCH_store.json\n"
