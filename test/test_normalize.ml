(* Tests for Leakdetect_normalize: the bounded canonicalization lattice. *)

module Normalize = Leakdetect_normalize.Normalize
module Base64 = Leakdetect_util.Base64
module Hex = Leakdetect_util.Hex
module Url = Leakdetect_net.Url

let qtest = QCheck_alcotest.to_alcotest

let texts_of ?budgets ?steps s =
  let t = Normalize.create ?budgets ?steps () in
  Normalize.texts t s

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec loop i = i + n <= h && (String.sub hay i n = needle || loop (i + 1)) in
  n = 0 || loop 0

let any_view_contains ?budgets ?steps ~needle s =
  List.exists (contains ~needle) (texts_of ?budgets ?steps s)

(* --- single steps -------------------------------------------------------- *)

let test_percent_view () =
  let s = "GET /p?imei=%33%35%36%39%38%37 HTTP/1.1" in
  Alcotest.(check bool) "percent view restores" true
    (any_view_contains ~needle:"imei=356987" s)

let test_plus_form_view () =
  let s = "q=hello+world&id=%34%32" in
  Alcotest.(check bool) "form view decodes + and %XX" true
    (any_view_contains ~needle:"hello world" s);
  Alcotest.(check bool) "percent strict keeps + literal" true
    (any_view_contains ~needle:"hello+world&id=42" s)

let test_base64_run_view () =
  let secret = "imei=356938035643809&x=1" in
  let s = "POST /r\nsid=1\nv=2&d=" ^ Base64.encode secret in
  Alcotest.(check bool) "base64 run decodes in place" true
    (any_view_contains ~needle:"d=imei=356938035643809" s)

let test_base64url_run_view () =
  let secret = "aid=9774d56d682e549c!!" in
  let s = "v=2&d=" ^ Base64.encode_url secret in
  Alcotest.(check bool) "base64url run decodes in place" true
    (any_view_contains ~needle:"d=aid=9774d56d682e549c" s)

let test_hex_run_view () =
  let secret = "356938035643809" in
  let s = "id=" ^ Hex.encode secret in
  Alcotest.(check bool) "hex run decodes in place" true
    (any_view_contains ~needle:("id=" ^ secret) s)

let test_case_fold_digest_only () =
  let digest = String.uppercase_ascii "9b74c9897bac770ffc029102a200c5de" in
  let s = "GET /t?h=" ^ digest ^ " HTTP/1.1" in
  Alcotest.(check bool) "digest folded" true
    (any_view_contains ~needle:"9b74c9897bac770ffc029102a200c5de" s);
  (* Boilerplate case must survive in every view that folded the digest. *)
  List.iter
    (fun text ->
      if contains ~needle:"9b74c9897bac770ffc029102a200c5de" text then
        Alcotest.(check bool) "GET survives folding" true (contains ~needle:"GET" text))
    (texts_of s)

let test_chunked_view () =
  let body = "7\r\nimei=35\r\n8\r\n69380356\r\n5\r\n43809\r\n0\r\n" in
  let s = "POST /r HTTP/1.1\nsid=1\n" ^ body in
  Alcotest.(check bool) "chunked body reassembled" true
    (any_view_contains ~needle:"imei=356938035643809" s)

let test_layered_percent_base64 () =
  let secret = "imei=356938035643809&x=1" in
  let b64 = Base64.encode secret in
  let buf = Buffer.create 64 in
  String.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%%%02X" (Char.code c))) b64;
  let s = "v=2&d=" ^ Buffer.contents buf in
  Alcotest.(check bool) "depth-2 percent+base64 recovered" true
    (any_view_contains ~needle:"imei=356938035643809" s)

(* --- budgets and bombs --------------------------------------------------- *)

let lattice_of ?budgets s =
  let t = Normalize.create ?budgets () in
  Normalize.lattice t s

let total_derived_bytes l =
  List.fold_left
    (fun acc (v : Normalize.view) -> acc + String.length v.Normalize.text)
    0 l.Normalize.derived

let test_depth_budget () =
  (* base64^4 of a long secret: strictly deeper than the depth-3 budget. *)
  let s = ref (String.make 64 'a') in
  for _ = 1 to 4 do
    s := Base64.encode !s
  done;
  let budgets = { Normalize.default_budgets with Normalize.max_depth = 2 } in
  let l = lattice_of ~budgets ("d=" ^ !s) in
  List.iter
    (fun (v : Normalize.view) ->
      Alcotest.(check bool) "no view deeper than budget" true
        (List.length v.Normalize.steps <= 2))
    l.Normalize.derived

let test_views_budget_fails_closed () =
  let budgets = { Normalize.default_budgets with Normalize.max_views = 2 } in
  let l = lattice_of ~budgets "a=%41%42&b=68656c6c6f20776f726c6421&c=aGVsbG8gd29ybGQhIQ" in
  Alcotest.(check bool) "at most max_views views" true
    (List.length l.Normalize.derived <= 2);
  Alcotest.(check bool) "exhaustion reported" true
    (List.exists
       (function Normalize.Views_exhausted _ -> true | _ -> false)
       l.Normalize.errors)

let test_bytes_budget_fails_closed () =
  (* A decode bomb: a big base64 blob whose every decoded view stays large.
     The byte budget must stop the lattice, keep what fits, and say so. *)
  let blob = Base64.encode (String.init 4096 (fun i -> Char.chr (32 + (i mod 90)))) in
  let budgets = { Normalize.default_budgets with Normalize.max_total_bytes = 1024 } in
  let l = lattice_of ~budgets ("d=" ^ blob) in
  Alcotest.(check bool) "derived bytes bounded" true (total_derived_bytes l <= 1024);
  Alcotest.(check bool) "byte exhaustion reported" true
    (List.exists
       (function Normalize.Bytes_exhausted _ -> true | _ -> false)
       l.Normalize.errors)

let test_view_bytes_budget () =
  let blob = Base64.encode (String.make 2048 'x') in
  let budgets = { Normalize.default_budgets with Normalize.max_view_bytes = 256 } in
  let l = lattice_of ~budgets ("d=" ^ blob) in
  List.iter
    (fun (v : Normalize.view) ->
      Alcotest.(check bool) "no oversized view" true
        (String.length v.Normalize.text <= 256))
    l.Normalize.derived;
  Alcotest.(check bool) "oversize reported" true
    (List.exists
       (function Normalize.View_too_large _ -> true | _ -> false)
       l.Normalize.errors)

let test_invalid_budgets_rejected () =
  Alcotest.check_raises "non-positive depth"
    (Invalid_argument "Normalize.create: budgets must be positive") (fun () ->
      ignore
        (Normalize.create
           ~budgets:{ Normalize.default_budgets with Normalize.max_depth = 0 }
           ()));
  Alcotest.check_raises "empty steps"
    (Invalid_argument "Normalize.create: empty step list") (fun () ->
      ignore (Normalize.create ~steps:[] ()))

let test_step_names_roundtrip () =
  List.iter
    (fun step ->
      match Normalize.step_of_name (Normalize.step_name step) with
      | Some s -> Alcotest.(check bool) "roundtrip" true (s = step)
      | None -> Alcotest.failf "step name %s does not parse" (Normalize.step_name step))
    Normalize.all_steps

(* --- properties ---------------------------------------------------------- *)

let printable = QCheck.string_of_size QCheck.Gen.(0 -- 200)

let prop_lattice_bounded =
  QCheck.Test.make ~name:"lattice respects every budget on arbitrary input"
    ~count:300 printable (fun s ->
      let l = lattice_of s in
      let b = Normalize.default_budgets in
      List.length l.Normalize.derived <= b.Normalize.max_views
      && total_derived_bytes l <= b.Normalize.max_total_bytes
      && List.for_all
           (fun (v : Normalize.view) ->
             List.length v.Normalize.steps <= b.Normalize.max_depth)
           l.Normalize.derived)

let prop_views_distinct =
  QCheck.Test.make ~name:"derived views are distinct from root and each other"
    ~count:300 printable (fun s ->
      let l = lattice_of s in
      let texts = l.Normalize.root :: List.map (fun (v : Normalize.view) -> v.Normalize.text) l.Normalize.derived in
      List.length texts = List.length (List.sort_uniq compare texts))

let prop_fixpoint_idempotent =
  (* Expanding any derived view again yields nothing not already reachable:
     a view that is a fixpoint has no derived children of its own. *)
  QCheck.Test.make ~name:"fixpoint views expand to nothing" ~count:100 printable
    (fun s ->
      let t = Normalize.create () in
      let l = Normalize.lattice t s in
      List.for_all
        (fun (v : Normalize.view) ->
          (not (Normalize.is_fixpoint t v.Normalize.text))
          || (Normalize.lattice t v.Normalize.text).Normalize.derived = [])
        l.Normalize.derived)

let prop_percent_roundtrip =
  QCheck.Test.make ~name:"percent_decode_strict inverts full escaping" ~count:300
    printable (fun s ->
      let buf = Buffer.create (String.length s * 3) in
      String.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%%%02X" (Char.code c))) s;
      Url.percent_decode_strict (Buffer.contents buf) = Some s)

let prop_lenient_passthrough =
  QCheck.Test.make ~name:"percent_decode_lenient never fails" ~count:300 printable
    (fun s ->
      let decoded, _n = Url.percent_decode_lenient s in
      String.length decoded <= String.length s)

let suite =
  [
    ( "normalize.steps",
      [
        Alcotest.test_case "percent view" `Quick test_percent_view;
        Alcotest.test_case "form + decoding" `Quick test_plus_form_view;
        Alcotest.test_case "base64 run splice" `Quick test_base64_run_view;
        Alcotest.test_case "base64url run splice" `Quick test_base64url_run_view;
        Alcotest.test_case "hex run splice" `Quick test_hex_run_view;
        Alcotest.test_case "case fold digests only" `Quick test_case_fold_digest_only;
        Alcotest.test_case "chunked reassembly" `Quick test_chunked_view;
        Alcotest.test_case "percent+base64 layering" `Quick test_layered_percent_base64;
        Alcotest.test_case "step names roundtrip" `Quick test_step_names_roundtrip;
      ] );
    ( "normalize.budgets",
      [
        Alcotest.test_case "depth budget" `Quick test_depth_budget;
        Alcotest.test_case "views budget fails closed" `Quick test_views_budget_fails_closed;
        Alcotest.test_case "bytes budget fails closed" `Quick test_bytes_budget_fails_closed;
        Alcotest.test_case "view size budget" `Quick test_view_bytes_budget;
        Alcotest.test_case "invalid budgets rejected" `Quick test_invalid_budgets_rejected;
        qtest prop_lattice_bounded;
        qtest prop_views_distinct;
        qtest prop_fixpoint_idempotent;
        qtest prop_percent_roundtrip;
        qtest prop_lenient_passthrough;
      ] );
  ]
