(* Tests for the durable store (Leakdetect_store): WAL framing and
   salvage, snapshot atomicity, recovery replay, crash-point sweeps and
   the qcheck never-an-unwritten-record property. *)

module Crc32 = Leakdetect_util.Crc32
module Fault = Leakdetect_fault.Fault
module Wal = Leakdetect_store.Wal
module Snapshot = Leakdetect_store.Snapshot
module Store = Leakdetect_store.Store
module Signature = Leakdetect_core.Signature
module Signature_client = Leakdetect_monitor.Signature_client
module Signature_server = Leakdetect_monitor.Signature_server

let qtest = QCheck_alcotest.to_alcotest

(* --- scratch directories --- *)

let fresh_dir () =
  let f = Filename.temp_file "ld_store_test" "" in
  Sys.remove f;
  Sys.mkdir f 0o700;
  f

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let with_dir f =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let slurp path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let spit path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let sigs_a =
  [ Signature.make ~id:0 ~mode:Signature.Conjunction ~cluster_size:3
      [ "imei=355021930123456"; "loc=35.6" ];
    Signature.make ~id:1 ~mode:Signature.Ordered ~cluster_size:2
      [ "GET"; "/track"; "android_id=9774d56d682e549c" ] ]

let sigs_b =
  [ Signature.make ~id:2 ~mode:Signature.Conjunction ~cluster_size:5
      [ "mac=00:11:22:33:44:55" ] ]

(* --- WAL --- *)

let test_wal_roundtrip () =
  with_dir (fun dir ->
      let path = Filename.concat dir "wal.log" in
      let payloads = [ "alpha"; ""; "beta\ngamma"; String.make 300 '\x00' ] in
      let w = Wal.create path in
      List.iter (Wal.append w) payloads;
      let size = Wal.size w in
      Wal.close w;
      Alcotest.(check int) "size tracks file" size
        (String.length (slurp path));
      match Wal.read path with
      | Error e -> Alcotest.fail e
      | Ok (got, tail) ->
        Alcotest.(check (list string)) "payloads back" payloads got;
        Alcotest.(check string) "clean tail" "clean" (Wal.tail_to_string tail))

let test_wal_open_append_extends () =
  with_dir (fun dir ->
      let path = Filename.concat dir "wal.log" in
      let w = Wal.create path in
      Wal.append w "one";
      Wal.close w;
      (match Wal.open_append path with
      | Error e -> Alcotest.fail e
      | Ok w ->
        Wal.append w "two";
        Wal.close w);
      match Wal.read path with
      | Error e -> Alcotest.fail e
      | Ok (got, _) ->
        Alcotest.(check (list string)) "both records" [ "one"; "two" ] got)

(* Every possible crash point of a small log: salvage must be exactly the
   records whose frames fit inside the cut, and the tail must be clean
   exactly on record boundaries. *)
let test_wal_crash_point_sweep () =
  let payloads = [ "a"; "bb"; "ccc"; ""; "dddd" ] in
  let image =
    Wal.magic ^ String.concat "" (List.map Wal.frame payloads)
  in
  let boundaries =
    (* Byte offset at which each record ends, in order. *)
    let off = ref (String.length Wal.magic) in
    List.map
      (fun p ->
        off := !off + String.length (Wal.frame p);
        !off)
      payloads
  in
  for cut = 0 to String.length image do
    let prefix = String.sub image 0 cut in
    match Wal.read_string prefix with
    | Error e -> Alcotest.failf "cut %d: %s" cut e
    | Ok (got, tail) ->
      let expected =
        List.filteri (fun i _ -> List.nth boundaries i <= cut) payloads
      in
      Alcotest.(check (list string))
        (Printf.sprintf "cut %d salvages committed prefix" cut)
        expected got;
      let on_boundary =
        cut = String.length Wal.magic || List.mem cut boundaries
      in
      Alcotest.(check bool)
        (Printf.sprintf "cut %d tail cleanliness" cut)
        on_boundary (tail = Wal.Clean)
  done

let test_wal_bitflip_truncates () =
  let payloads = [ "first"; "second"; "third" ] in
  let image = Wal.magic ^ String.concat "" (List.map Wal.frame payloads) in
  (* Flip a bit inside the second record's payload. *)
  let second_off = String.length Wal.magic + String.length (Wal.frame "first") in
  let b = Bytes.of_string image in
  let i = second_off + 8 in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x40));
  match Wal.read_string (Bytes.to_string b) with
  | Error e -> Alcotest.fail e
  | Ok (got, tail) ->
    Alcotest.(check (list string)) "only the intact prefix" [ "first" ] got;
    (match tail with
    | Wal.Torn { offset; _ } ->
      Alcotest.(check int) "torn at the damaged record" second_off offset
    | Wal.Clean -> Alcotest.fail "bit flip must tear the tail")

let test_wal_implausible_length () =
  let image = Wal.magic ^ Wal.frame "ok" in
  let bogus = Bytes.make 8 '\xff' in
  match Wal.read_string (image ^ Bytes.to_string bogus) with
  | Error e -> Alcotest.fail e
  | Ok (got, tail) ->
    Alcotest.(check (list string)) "prefix kept" [ "ok" ] got;
    (match tail with
    | Wal.Torn { reason; _ } ->
      Alcotest.(check bool) "length flagged" true
        (String.length reason > 0)
    | Wal.Clean -> Alcotest.fail "implausible length must tear")

let test_wal_truncated_header () =
  (match Wal.read_string (String.sub Wal.magic 0 3) with
  | Ok ([], Wal.Torn { offset = 0; _ }) -> ()
  | Ok _ -> Alcotest.fail "truncated header must salvage the empty log"
  | Error e -> Alcotest.failf "truncated header must not be fatal: %s" e);
  match Wal.read_string "NOTALOG!" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "wrong magic must be fatal"

let test_wal_repair_then_append () =
  with_dir (fun dir ->
      let path = Filename.concat dir "wal.log" in
      let image =
        Wal.magic ^ Wal.frame "keep1" ^ Wal.frame "keep2"
        ^ String.sub (Wal.frame "lost") 0 5
      in
      spit path image;
      (match Wal.repair path with
      | Ok (Wal.Torn _) -> ()
      | Ok Wal.Clean -> Alcotest.fail "repair must report the torn tail"
      | Error e -> Alcotest.fail e);
      (* Idempotent: a second repair finds nothing to cut. *)
      (match Wal.repair path with
      | Ok Wal.Clean -> ()
      | Ok (Wal.Torn _) -> Alcotest.fail "second repair must be clean"
      | Error e -> Alcotest.fail e);
      (match Wal.open_append path with
      | Error e -> Alcotest.fail e
      | Ok w ->
        Wal.append w "after";
        Wal.close w);
      match Wal.read path with
      | Error e -> Alcotest.fail e
      | Ok (got, tail) ->
        Alcotest.(check (list string))
          "clean prefix survives, appends extend it"
          [ "keep1"; "keep2"; "after" ] got;
        Alcotest.(check bool) "clean" true (tail = Wal.Clean))

(* --- snapshot --- *)

let test_snapshot_roundtrip () =
  with_dir (fun dir ->
      let path = Filename.concat dir "snapshot" in
      (match Snapshot.read path with
      | Ok None -> ()
      | _ -> Alcotest.fail "absent snapshot reads as None");
      Snapshot.write path "hello snapshot";
      (match Snapshot.read path with
      | Ok (Some p) -> Alcotest.(check string) "payload back" "hello snapshot" p
      | _ -> Alcotest.fail "snapshot must read back");
      (* Overwrite is atomic-by-rename; the new payload replaces the old. *)
      Snapshot.write path "v2";
      (match Snapshot.read path with
      | Ok (Some p) -> Alcotest.(check string) "replaced" "v2" p
      | _ -> Alcotest.fail "second snapshot must read back");
      Alcotest.(check bool) "no temp file left" false
        (Sys.file_exists (path ^ ".tmp")))

let test_snapshot_corruption_detected () =
  with_dir (fun dir ->
      let path = Filename.concat dir "snapshot" in
      Snapshot.write path "payload to damage";
      let image = slurp path in
      let b = Bytes.of_string image in
      let i = String.length image - 1 in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 1));
      spit path (Bytes.to_string b);
      (match Snapshot.read path with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "flipped byte must fail the checksum");
      spit path (String.sub image 0 10);
      (match Snapshot.read path with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "truncated snapshot must be an error");
      spit path "XXXXXXXX";
      match Snapshot.read path with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "bad header must be an error")

(* --- store: codec and apply --- *)

let roundtrip_entry e =
  match Store.entry_of_payload (Store.entry_to_payload e) with
  | Ok e' ->
    Alcotest.(check string) "payload-stable roundtrip"
      (Store.entry_to_payload e) (Store.entry_to_payload e')
  | Error err -> Alcotest.fail err

let test_entry_codec () =
  roundtrip_entry (Store.Publish { version = 3; signatures = sigs_a });
  roundtrip_entry (Store.Sync { version = 7; signatures = sigs_b });
  roundtrip_entry (Store.Publish { version = 1; signatures = [] });
  roundtrip_entry (Store.Health Signature_client.Degraded);
  (match Store.entry_of_payload "health\nconfused" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown health must not decode");
  (match Store.entry_of_payload "publish\n-2" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "negative version must not decode");
  match Store.entry_of_payload "mystery\n1" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown tag must not decode"

let test_state_codec () =
  let s =
    List.fold_left Store.apply Store.empty_state
      [ Store.Publish { version = 4; signatures = sigs_a };
        Store.Sync { version = 4; signatures = sigs_a };
        Store.Health Signature_client.Stale ]
  in
  match Store.state_of_string (Store.state_to_string s) with
  | Ok s' -> Alcotest.(check bool) "state roundtrip" true (Store.state_equal s s')
  | Error e -> Alcotest.fail e

let test_apply_idempotent () =
  let e = Store.Publish { version = 2; signatures = sigs_a } in
  let s1 = Store.apply Store.empty_state e in
  (* A duplicated tail record (torn rewrite) replays the same entry. *)
  Alcotest.(check bool) "duplicate replay is a no-op" true
    (Store.apply s1 e == s1);
  (* An older version can never move the state backwards. *)
  let old = Store.Publish { version = 1; signatures = sigs_b } in
  Alcotest.(check bool) "stale version is a no-op" true
    (Store.apply s1 old == s1);
  let h = Store.Health Signature_client.Degraded in
  let s2 = Store.apply s1 h in
  Alcotest.(check bool) "health transition applies" true (s2 != s1);
  Alcotest.(check bool) "re-entering the same health is a no-op" true
    (Store.apply s2 h == s2)

(* --- store: open / log / recover --- *)

let log_some store =
  Store.log store (Store.Publish { version = 1; signatures = sigs_a });
  Store.log store (Store.Sync { version = 1; signatures = sigs_a });
  Store.log store (Store.Health Signature_client.Degraded);
  Store.log store (Store.Publish { version = 2; signatures = sigs_b })

let test_store_reopen () =
  with_dir (fun dir ->
      let store, report =
        match Store.open_ ~dir () with Ok v -> v | Error e -> Alcotest.fail e
      in
      Alcotest.(check bool) "fresh dir has no snapshot" true
        (report.Store.snapshot = Store.Absent);
      log_some store;
      let live = Store.state store in
      Store.close store;
      let store', report' =
        match Store.open_ ~dir () with Ok v -> v | Error e -> Alcotest.fail e
      in
      Alcotest.(check int) "all entries replayed" 4 report'.Store.replayed;
      Alcotest.(check int) "nothing undecodable" 0 report'.Store.undecodable;
      Alcotest.(check bool) "tail clean" true (report'.Store.tail = Wal.Clean);
      Alcotest.(check bool) "state survives the restart" true
        (Store.state_equal live (Store.state store'));
      Store.close store')

let test_store_compact_reopen () =
  with_dir (fun dir ->
      let store, _ =
        match Store.open_ ~dir () with Ok v -> v | Error e -> Alcotest.fail e
      in
      log_some store;
      let live = Store.state store in
      Store.compact store;
      Alcotest.(check int) "compaction resets the log"
        (String.length Wal.magic) (Store.wal_size store);
      Store.close store;
      let store', report =
        match Store.open_ ~dir () with Ok v -> v | Error e -> Alcotest.fail e
      in
      Alcotest.(check bool) "snapshot loaded" true
        (report.Store.snapshot = Store.Loaded);
      Alcotest.(check int) "no log left to replay" 0 report.Store.replayed;
      Alcotest.(check bool) "state preserved across compaction" true
        (Store.state_equal live (Store.state store'));
      Store.close store')

(* The crash window inside [compact]: the snapshot has been renamed into
   place but the old log was not yet reset.  Replaying the stale log over
   the newer snapshot must be a pile of no-ops. *)
let test_store_compact_crash_window () =
  with_dir (fun dir ->
      let store, _ =
        match Store.open_ ~dir () with Ok v -> v | Error e -> Alcotest.fail e
      in
      log_some store;
      let live = Store.state store in
      Snapshot.write (Store.snapshot_path ~dir) (Store.state_to_string live);
      Store.close store;
      (* Old wal.log still holds all four entries. *)
      let store', report =
        match Store.open_ ~dir () with Ok v -> v | Error e -> Alcotest.fail e
      in
      Alcotest.(check bool) "snapshot loaded" true
        (report.Store.snapshot = Store.Loaded);
      Alcotest.(check int) "stale replays are no-ops" report.Store.replayed
        report.Store.stale;
      Alcotest.(check bool) "state not double-applied" true
        (Store.state_equal live (Store.state store'));
      Store.close store')

let test_store_corrupt_snapshot_falls_back () =
  with_dir (fun dir ->
      let store, _ =
        match Store.open_ ~dir () with Ok v -> v | Error e -> Alcotest.fail e
      in
      log_some store;
      Store.compact store;
      (* Log one more entry after compaction, then damage the snapshot. *)
      Store.log store (Store.Publish { version = 3; signatures = sigs_a });
      Store.close store;
      spit (Store.snapshot_path ~dir) "garbage, not a snapshot";
      let store', report =
        match Store.open_ ~dir () with Ok v -> v | Error e -> Alcotest.fail e
      in
      (match report.Store.snapshot with
      | Store.Corrupt _ -> ()
      | _ -> Alcotest.fail "damaged snapshot must be reported as corrupt");
      (* Only the post-compaction entry is in the log, so the recovered
         state is the best the WAL alone can offer: version 3 server set. *)
      Alcotest.(check int) "post-compaction entry replayed" 1
        report.Store.replayed;
      Alcotest.(check int) "server version from WAL" 3
        (Store.state store').Store.server_version;
      Store.close store')

let test_store_torn_tail_truncated () =
  with_dir (fun dir ->
      let store, _ =
        match Store.open_ ~dir () with Ok v -> v | Error e -> Alcotest.fail e
      in
      log_some store;
      let live = Store.state store in
      Store.close store;
      let wal = Store.wal_path ~dir in
      let image = slurp wal in
      spit wal (image ^ "torn garbage that is not a full frame");
      let store', report =
        match Store.open_ ~dir () with Ok v -> v | Error e -> Alcotest.fail e
      in
      (match report.Store.tail with
      | Wal.Torn _ -> ()
      | Wal.Clean -> Alcotest.fail "garbage tail must be reported torn");
      Alcotest.(check bool) "committed entries survive" true
        (Store.state_equal live (Store.state store'));
      (* The repair rewrote the log: reopening is clean and appends work. *)
      Store.log store' (Store.Health Signature_client.Healthy);
      Store.close store';
      let store'', report'' =
        match Store.open_ ~dir () with Ok v -> v | Error e -> Alcotest.fail e
      in
      Alcotest.(check bool) "clean after repair" true
        (report''.Store.tail = Wal.Clean);
      Alcotest.(check string) "post-repair append survives" "healthy"
        (Signature_client.health_to_string
           (Store.state store'').Store.client_health);
      Store.close store'')

let test_store_restore_endpoints () =
  with_dir (fun dir ->
      let store, _ =
        match Store.open_ ~dir () with Ok v -> v | Error e -> Alcotest.fail e
      in
      let server = Signature_server.create () in
      let (_ : int) = Signature_server.publish server sigs_a in
      Store.record_publish store server;
      let client = Signature_client.create () in
      (match
         (Signature_client.sync client ~fetch:(Signature_server.fetch server))
           .Signature_client.outcome
       with
      | Signature_client.Updated _ -> ()
      | _ -> Alcotest.fail "loss-free sync must update");
      Store.record_sync store client;
      Store.close store;
      let store', _ =
        match Store.open_ ~dir () with Ok v -> v | Error e -> Alcotest.fail e
      in
      let server' = Store.restore_server store' in
      Alcotest.(check int) "server version restored"
        (Signature_server.current_version server)
        (Signature_server.current_version server');
      let client' = Store.restore_client store' in
      Alcotest.(check int) "client version restored"
        (Signature_client.version client)
        (Signature_client.version client');
      Alcotest.(check string) "client signatures byte-identical"
        (String.concat "\n"
           (List.map Leakdetect_core.Signature_io.to_line
              (Signature_client.signatures client)))
        (String.concat "\n"
           (List.map Leakdetect_core.Signature_io.to_line
              (Signature_client.signatures client')));
      Alcotest.(check string) "health restored"
        (Signature_client.health_to_string (Signature_client.health client))
        (Signature_client.health_to_string (Signature_client.health client'));
      Store.close store')

(* --- properties --- *)

(* Crash at any offset never yields a record that was not written, and
   what it does yield is a prefix of the append sequence. *)
let prop_crash_salvages_prefix =
  QCheck.Test.make ~name:"crash salvage is a prefix of written records"
    ~count:300
    QCheck.(
      pair
        (small_list (string_of_size Gen.(0 -- 40)))
        (float_bound_inclusive 1.0))
    (fun (payloads, cut_frac) ->
      let image =
        Wal.magic ^ String.concat "" (List.map Wal.frame payloads)
      in
      let cut =
        int_of_float (cut_frac *. float_of_int (String.length image))
      in
      match Wal.read_string (String.sub image 0 cut) with
      | Error _ -> false
      | Ok (got, _) ->
        let rec is_prefix got written =
          match (got, written) with
          | [], _ -> true
          | g :: gs, w :: ws -> g = w && is_prefix gs ws
          | _ :: _, [] -> false
        in
        is_prefix got payloads)

(* Rate-0 fault plans are strict identities on log bytes. *)
let prop_rate0_log_identity =
  QCheck.Test.make ~name:"rate-0 plan never touches log bytes" ~count:200
    QCheck.(string_of_size Gen.(0 -- 200))
    (fun s ->
      let plan = Fault.create ~seed:11 Fault.none in
      Fault.torn_write plan ~protect:8 ~tail_start:(String.length s / 2) s = s
      && Fault.crash_point plan ~len:(String.length s) = None
      && Fault.total plan = 0)

let suite =
  [ ( "store.wal",
      [ Alcotest.test_case "roundtrip" `Quick test_wal_roundtrip;
        Alcotest.test_case "open_append extends" `Quick
          test_wal_open_append_extends;
        Alcotest.test_case "crash-point sweep" `Quick test_wal_crash_point_sweep;
        Alcotest.test_case "bit flip truncates" `Quick test_wal_bitflip_truncates;
        Alcotest.test_case "implausible length" `Quick
          test_wal_implausible_length;
        Alcotest.test_case "truncated header" `Quick test_wal_truncated_header;
        Alcotest.test_case "repair then append" `Quick
          test_wal_repair_then_append;
        qtest prop_crash_salvages_prefix ] );
    ( "store.snapshot",
      [ Alcotest.test_case "roundtrip" `Quick test_snapshot_roundtrip;
        Alcotest.test_case "corruption detected" `Quick
          test_snapshot_corruption_detected ] );
    ( "store.store",
      [ Alcotest.test_case "entry codec" `Quick test_entry_codec;
        Alcotest.test_case "state codec" `Quick test_state_codec;
        Alcotest.test_case "apply idempotent" `Quick test_apply_idempotent;
        Alcotest.test_case "reopen replays" `Quick test_store_reopen;
        Alcotest.test_case "compact + reopen" `Quick test_store_compact_reopen;
        Alcotest.test_case "compact crash window" `Quick
          test_store_compact_crash_window;
        Alcotest.test_case "corrupt snapshot falls back" `Quick
          test_store_corrupt_snapshot_falls_back;
        Alcotest.test_case "torn tail truncated" `Quick
          test_store_torn_tail_truncated;
        Alcotest.test_case "restore endpoints" `Quick
          test_store_restore_endpoints;
        qtest prop_rate0_log_identity ] ) ]
