(* Tests for Leakdetect_sketch: shingling, minhash signatures, banded LSH
   bucketing and the composed prefilter. *)

open Leakdetect_sketch
module Prng = Leakdetect_util.Prng
module Pool = Leakdetect_parallel.Pool

let qtest = QCheck_alcotest.to_alcotest

(* --- Shingle --- *)

let test_shingle_basic () =
  let s = Shingle.set ~n:4 "abcdefgh" in
  Alcotest.(check int) "five 4-gram windows" 5 (Array.length s);
  let sorted = Array.copy s in
  Array.sort compare sorted;
  Alcotest.(check bool) "sorted" true (s = sorted);
  Alcotest.(check int) "empty string has empty set" 0 (Array.length (Shingle.set ""));
  Alcotest.(check int) "short string is one shingle" 1 (Array.length (Shingle.set ~n:8 "abc"));
  Alcotest.(check int) "repetition dedups" 1 (Array.length (Shingle.set ~n:1 "aaaaaa"));
  Alcotest.check_raises "n = 0 rejected" (Invalid_argument "Shingle.set: n must be >= 1")
    (fun () -> ignore (Shingle.set ~n:0 "abc"))

let test_shingle_jaccard () =
  let a = Shingle.set "the quick brown fox jumps over the lazy dog" in
  Alcotest.(check (float 1e-9)) "self similarity" 1. (Shingle.jaccard a a);
  Alcotest.(check (float 1e-9)) "both empty" 1. (Shingle.jaccard [||] [||]);
  Alcotest.(check (float 1e-9)) "empty vs non-empty" 0. (Shingle.jaccard a [||]);
  let b = Shingle.set "completely unrelated payload 0123456789xyzw" in
  Alcotest.(check bool) "disjoint strings near 0" true (Shingle.jaccard a b < 0.05);
  Alcotest.(check (float 1e-9)) "symmetric" (Shingle.jaccard a b) (Shingle.jaccard b a)

(* Two synthetic shingle sets with an exactly known overlap: A = [0, na),
   B = [na - overlap, na - overlap + nb).  Elements are injected through
   an affine map so they look like hash values rather than tiny ints. *)
let overlap_sets na nb overlap =
  let inject i = (i * 2654435761) land 0x3fffffffffffff in
  let a = Array.init na inject in
  let b = Array.init nb (fun i -> inject (na - overlap + i)) in
  Array.sort compare a;
  Array.sort compare b;
  (a, b)

(* --- Minhash --- *)

let test_minhash_identical_and_empty () =
  let mh = Minhash.create ~hashes:64 ~seed:1 in
  let a, _ = overlap_sets 50 1 0 in
  Alcotest.(check (float 1e-9)) "identical sets estimate 1" 1.
    (Minhash.estimate (Minhash.signature mh a) (Minhash.signature mh a));
  let empty = Minhash.signature mh [||] in
  Alcotest.(check (float 1e-9)) "two empty sets estimate 1" 1.
    (Minhash.estimate empty empty);
  Alcotest.(check bool) "empty slots are the sentinel" true
    (Array.for_all (Int64.equal Minhash.empty_slot) empty);
  Alcotest.(check (float 1e-9)) "empty vs non-empty estimate 0" 0.
    (Minhash.estimate empty (Minhash.signature mh a))

let test_minhash_deterministic () =
  let a, b = overlap_sets 40 40 20 in
  let s1 = Minhash.signature (Minhash.create ~hashes:128 ~seed:7) a in
  let s2 = Minhash.signature (Minhash.create ~hashes:128 ~seed:7) a in
  Alcotest.(check bool) "same seed, same signature" true (s1 = s2);
  let s3 = Minhash.signature (Minhash.create ~hashes:128 ~seed:8) b in
  Alcotest.(check bool) "independent of another set" true (Array.length s3 = 128)

(* Satellite property: the minhash estimate lands within a few standard
   errors of the exact Jaccard.  With 256 hashes the standard error is at
   most sqrt(0.25/256) ~ 0.031, so 0.2 is beyond 6 sigma — effectively
   never flaky, while still catching any bias or indexing bug. *)
let prop_minhash_close_to_jaccard =
  QCheck.Test.make ~count:60 ~name:"minhash estimate ~ exact jaccard"
    QCheck.(triple (int_range 1 120) (int_range 1 120) (int_range 0 1000))
    (fun (na, nb, salt) ->
      let overlap = salt mod (1 + min na nb) in
      let a, b = overlap_sets na nb overlap in
      let exact = Shingle.jaccard a b in
      let mh = Minhash.create ~hashes:256 ~seed:salt in
      let est = Minhash.estimate (Minhash.signature mh a) (Minhash.signature mh b) in
      Float.abs (est -. exact) <= 0.2)

(* --- Lsh --- *)

let prop_lsh_partition =
  QCheck.Test.make ~count:50 ~name:"lsh buckets partition the index space"
    QCheck.(pair (int_range 0 40) (int_range 0 1000))
    (fun (n, seed) ->
      let rng = Prng.create seed in
      let mh = Minhash.create ~hashes:16 ~seed in
      let sigs =
        Array.init n (fun _ ->
            let size = 1 + Prng.int rng 30 in
            let set = Array.init size (fun _ -> Prng.bits30 rng) in
            Array.sort compare set;
            Minhash.signature mh set)
      in
      let buckets = Lsh.buckets ~bands:4 ~rows:4 sigs in
      let seen = Array.make n 0 in
      List.iter (List.iter (fun i -> seen.(i) <- seen.(i) + 1)) buckets;
      Array.for_all (fun c -> c = 1) seen
      && List.for_all (fun b -> List.sort compare b = b) buckets)

let test_lsh_identical_collide () =
  let mh = Minhash.create ~hashes:16 ~seed:3 in
  let a, b = overlap_sets 30 25 0 in
  let sa = Minhash.signature mh a and sb = Minhash.signature mh b in
  (* Identical signatures always share every band; disjoint sets share a
     band only by accident of 64-bit minima, which does not happen. *)
  let buckets = Lsh.buckets ~bands:4 ~rows:4 [| sa; sb; sa; sa |] in
  Alcotest.(check (list (list int))) "identical items in one bucket, first-member order"
    [ [ 0; 2; 3 ]; [ 1 ] ] buckets

let test_lsh_probability () =
  Alcotest.(check (float 1e-9)) "certain at s=1" 1.
    (Lsh.collision_probability ~bands:32 ~rows:4 1.);
  Alcotest.(check (float 1e-9)) "impossible at s=0" 0.
    (Lsh.collision_probability ~bands:32 ~rows:4 0.);
  Alcotest.(check bool) "monotone in s" true
    (Lsh.collision_probability ~bands:32 ~rows:4 0.3
    < Lsh.collision_probability ~bands:32 ~rows:4 0.7);
  let t = Lsh.threshold ~bands:32 ~rows:4 in
  Alcotest.(check bool) "threshold in (0,1)" true (t > 0. && t < 1.);
  let p = Lsh.collision_probability ~bands:32 ~rows:4 t in
  Alcotest.(check bool) "threshold sits mid-curve" true (p > 0.2 && p < 0.9)

(* --- Sketch --- *)

let test_sketch_validate () =
  Alcotest.(check bool) "default valid" true (Sketch.validate Sketch.default = Ok ());
  let bad f = Sketch.validate f <> Ok () in
  Alcotest.(check bool) "bands*rows > hashes" true
    (bad { Sketch.default with Sketch.hashes = 8; bands = 4; rows = 4 });
  Alcotest.(check bool) "zero shingle" true (bad { Sketch.default with Sketch.shingle_len = 0 });
  Alcotest.(check bool) "max_bucket 1" true (bad { Sketch.default with Sketch.max_bucket = 1 });
  Alcotest.check_raises "bucket rejects invalid params"
    (Invalid_argument "Sketch: bands * rows must not exceed hashes") (fun () ->
      ignore
        (Sketch.bucket { Sketch.default with Sketch.hashes = 4 } [| "a" |]))

let payload kind i =
  match kind with
  | `A -> Printf.sprintf "GET /ad/sdk/img?aid=jp.co.a%d&imei=355021930123456&size=320x50" (i mod 3)
  | `B -> Printf.sprintf "ak=k%d&u=77c7d1a2b3c4d5e6f708192a3b4c5d6e7f809101&v=FL_2.2" (i mod 3)

let test_sketch_buckets_groups () =
  let payloads =
    Array.init 12 (fun i -> if i < 6 then payload `A i else payload `B i)
  in
  let buckets = Sketch.bucket Sketch.default payloads in
  (* Near-duplicate families collide; the two families are shingle-disjoint
     enough that no band joins them. *)
  Alcotest.(check (list (list int))) "two family buckets"
    [ [ 0; 1; 2; 3; 4; 5 ]; [ 6; 7; 8; 9; 10; 11 ] ]
    buckets

let test_sketch_max_bucket_split () =
  let payloads = Array.make 10 (payload `A 0) in
  let buckets =
    Sketch.bucket { Sketch.default with Sketch.max_bucket = 4 } payloads
  in
  Alcotest.(check (list (list int))) "deterministic consecutive slices"
    [ [ 0; 1; 2; 3 ]; [ 4; 5; 6; 7 ]; [ 8; 9 ] ]
    buckets

let prop_sketch_jobs_equivalence =
  QCheck.Test.make ~count:10 ~name:"sketch bucketing identical at jobs=1 and jobs=4"
    QCheck.(pair (int_range 0 60) (int_range 0 1000))
    (fun (n, seed) ->
      let rng = Prng.create seed in
      let payloads =
        Array.init n (fun i ->
            match Prng.int rng 3 with
            | 0 -> payload `A i
            | 1 -> payload `B i
            | _ -> Printf.sprintf "unique-%d-%d" (Prng.bits30 rng) i)
      in
      let sequential = Sketch.bucket Sketch.default payloads in
      Pool.with_pool 4 (fun pool ->
          let parallel = Sketch.bucket ?pool Sketch.default payloads in
          sequential = parallel))

let suite =
  [
    ( "sketch.shingle",
      [
        Alcotest.test_case "basics" `Quick test_shingle_basic;
        Alcotest.test_case "jaccard" `Quick test_shingle_jaccard;
      ] );
    ( "sketch.minhash",
      [
        Alcotest.test_case "identical and empty" `Quick test_minhash_identical_and_empty;
        Alcotest.test_case "deterministic" `Quick test_minhash_deterministic;
        qtest prop_minhash_close_to_jaccard;
      ] );
    ( "sketch.lsh",
      [
        Alcotest.test_case "identical collide" `Quick test_lsh_identical_collide;
        Alcotest.test_case "collision probability" `Quick test_lsh_probability;
        qtest prop_lsh_partition;
      ] );
    ( "sketch.params",
      [
        Alcotest.test_case "validate" `Quick test_sketch_validate;
        Alcotest.test_case "buckets near-duplicate families" `Quick test_sketch_buckets_groups;
        Alcotest.test_case "max_bucket splits" `Quick test_sketch_max_bucket_split;
        qtest prop_sketch_jobs_equivalence;
      ] );
  ]
