(* Tests for Leakdetect_monitor: policy store and the Figure 3(b)
   information-flow-control application. *)

open Leakdetect_monitor
module Signature = Leakdetect_core.Signature
module Packet = Leakdetect_http.Packet

let mk ?(rline = "GET /benign HTTP/1.1") () =
  Packet.v
    ~ip:(Leakdetect_net.Ipv4.of_int 1000)
    ~port:80 ~host:"h.jp" ~request_line:rline ~cookie:"" ~body:""

let leak_packet () = mk ~rline:"GET /ad?imei=355021930123456 HTTP/1.1" ()

let signatures =
  [ Signature.make ~id:0 ~mode:Signature.Conjunction ~cluster_size:2 [ "imei=355021930123456" ] ]

(* --- Policy --- *)

let test_policy_defaults () =
  let p = Policy.create () in
  let r = Policy.rule_for p ~app_id:7 in
  Alcotest.(check string) "sensitive prompts" "prompt" (Policy.action_to_string r.Policy.on_sensitive);
  Alcotest.(check string) "benign allowed" "allow" (Policy.action_to_string r.Policy.on_benign)

let test_policy_set_remove () =
  let p = Policy.create () in
  Policy.set_rule p ~app_id:3 { Policy.on_sensitive = Policy.Block; on_benign = Policy.Allow };
  Alcotest.(check (list int)) "listed" [ 3 ] (Policy.app_ids p);
  Alcotest.(check bool) "applied" true
    ((Policy.rule_for p ~app_id:3).Policy.on_sensitive = Policy.Block);
  Policy.remove_rule p ~app_id:3;
  Alcotest.(check (list int)) "removed" [] (Policy.app_ids p);
  Alcotest.(check bool) "back to default" true
    ((Policy.rule_for p ~app_id:3).Policy.on_sensitive = Policy.Prompt)

(* --- Flow control --- *)

let test_flow_benign_allowed () =
  let m = Flow_control.create signatures in
  Alcotest.(check string) "benign passes" "allowed"
    (Flow_control.decision_to_string (Flow_control.process m ~app_id:1 (mk ())))

let test_flow_sensitive_prompts_denied_by_default () =
  let m = Flow_control.create signatures in
  Alcotest.(check string) "default prompt denies" "prompted:stopped"
    (Flow_control.decision_to_string (Flow_control.process m ~app_id:1 (leak_packet ())))

let test_flow_prompt_callback () =
  let asked = ref 0 in
  let m =
    Flow_control.create
      ~on_prompt:(fun ~app_id:_ _p _m ->
        incr asked;
        true)
      signatures
  in
  Alcotest.(check string) "user approves" "prompted:sent"
    (Flow_control.decision_to_string (Flow_control.process m ~app_id:1 (leak_packet ())));
  Alcotest.(check int) "callback invoked once" 1 !asked

let test_flow_block_rule () =
  let policy = Policy.create () in
  Policy.set_rule policy ~app_id:5
    { Policy.on_sensitive = Policy.Block; on_benign = Policy.Allow };
  let m = Flow_control.create ~policy signatures in
  Alcotest.(check string) "blocked" "blocked"
    (Flow_control.decision_to_string (Flow_control.process m ~app_id:5 (leak_packet ())));
  Alcotest.(check string) "other app still prompts" "prompted:stopped"
    (Flow_control.decision_to_string (Flow_control.process m ~app_id:6 (leak_packet ())))

let test_flow_log_and_stats () =
  let m = Flow_control.create signatures in
  ignore (Flow_control.process m ~app_id:1 (mk ()));
  ignore (Flow_control.process m ~app_id:2 (leak_packet ()));
  ignore (Flow_control.process m ~app_id:1 (mk ()));
  let log = Flow_control.log m in
  Alcotest.(check int) "three events" 3 (List.length log);
  Alcotest.(check (list int)) "sequence numbers" [ 0; 1; 2 ]
    (List.map (fun e -> e.Flow_control.seq) log);
  let matched =
    List.filter (fun e -> Option.is_some e.Flow_control.matched) log
  in
  Alcotest.(check int) "one match" 1 (List.length matched);
  let allowed, blocked, prompted = Flow_control.stats m in
  Alcotest.(check (list int)) "stats" [ 2; 0; 1 ] [ allowed; blocked; prompted ]

let test_flow_reconcile () =
  (* Without a registry the log recount is the only cross-check. *)
  let m = Flow_control.create signatures in
  ignore (Flow_control.process m ~app_id:1 (mk ()));
  Alcotest.(check bool) "reconciles without obs" true
    (Flow_control.reconcile m = Ok ());
  (* With an active registry the obs counters join the comparison and the
     three tallies of the same decision stream must agree. *)
  let obs = Leakdetect_obs.Obs.create () in
  let m = Flow_control.create ~obs signatures in
  ignore (Flow_control.process m ~app_id:1 (mk ()));
  ignore (Flow_control.process m ~app_id:2 (leak_packet ()));
  ignore (Flow_control.process m ~app_id:1 (mk ()));
  (match Flow_control.reconcile m with
  | Ok () -> ()
  | Error e -> Alcotest.failf "reconcile: %s" e);
  let count decision =
    Leakdetect_obs.Obs.Counter.value
      (Leakdetect_obs.Obs.counter obs
         ~labels:[ ("decision", decision) ]
         "leakdetect_monitor_decisions_total")
  in
  Alcotest.(check (list int)) "obs counters mirror stats" [ 2; 0; 1 ]
    [ count "allowed"; count "blocked"; count "prompted" ];
  (* An out-of-band bump to the obs family is exactly the disagreement
     reconcile exists to catch. *)
  Leakdetect_obs.Obs.Counter.inc
    (Leakdetect_obs.Obs.counter obs
       ~labels:[ ("decision", "blocked") ]
       "leakdetect_monitor_decisions_total");
  Alcotest.(check bool) "drift detected" true
    (Result.is_error (Flow_control.reconcile m))

let test_flow_signature_update () =
  let m = Flow_control.create [] in
  Alcotest.(check string) "no signatures, everything passes" "allowed"
    (Flow_control.decision_to_string (Flow_control.process m ~app_id:1 (leak_packet ())));
  Flow_control.update_signatures m signatures;
  Alcotest.(check string) "after fetch, leak caught" "prompted:stopped"
    (Flow_control.decision_to_string (Flow_control.process m ~app_id:1 (leak_packet ())))

let test_signature_match_view () =
  let s = List.hd signatures in
  let v = Signature_match.of_signature s in
  Alcotest.(check int) "id" 0 v.Signature_match.signature_id;
  Alcotest.(check int) "tokens" 1 (List.length v.Signature_match.tokens);
  Alcotest.(check int) "cluster" 2 v.Signature_match.cluster_size

(* --- Policy persistence --- *)

let test_policy_save_load () =
  let p = Policy.create () in
  Policy.set_rule p ~app_id:3 { Policy.on_sensitive = Policy.Block; on_benign = Policy.Allow };
  Policy.set_rule p ~app_id:9 { Policy.on_sensitive = Policy.Allow; on_benign = Policy.Allow };
  let path = Filename.temp_file "leakdetect_policy" ".tsv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Policy.save p path;
      match Policy.load path with
      | Error e -> Alcotest.failf "load: %s" e
      | Ok loaded ->
        Alcotest.(check (list int)) "app ids" [ 3; 9 ] (Policy.app_ids loaded);
        Alcotest.(check bool) "rule preserved" true
          ((Policy.rule_for loaded ~app_id:3).Policy.on_sensitive = Policy.Block);
        Alcotest.(check bool) "default preserved" true
          ((Policy.rule_for loaded ~app_id:999).Policy.on_sensitive = Policy.Prompt))

let test_policy_load_errors () =
  let check_error content expected_substring =
    let path = Filename.temp_file "leakdetect_policy_bad" ".tsv" in
    Fun.protect
      ~finally:(fun () -> Sys.remove path)
      (fun () ->
        let oc = open_out path in
        output_string oc content;
        close_out oc;
        match Policy.load path with
        | Ok _ -> Alcotest.failf "expected error for %S" content
        | Error e ->
          Alcotest.(check bool)
            (Printf.sprintf "error mentions %s" expected_substring)
            true
            (Leakdetect_text.Search.contains ~needle:expected_substring e))
  in
  check_error "" "missing default";
  check_error "3\tblock\tallow\n" "default rule first";
  check_error "default\tblock\tallow\ndefault\tallow\tallow\n" "duplicate";
  check_error "default\tblock\tallow\nx\tblock\tallow\n" "bad app id"

(* --- Prompt budget --- *)

let test_prompt_budget () =
  (* App 1 consumes two answers, app 2 one; any further prompt fails. *)
  let answers = ref [ true; false; true ] in
  let on_prompt ~app_id:_ _p _m =
    match !answers with
    | a :: rest ->
      answers := rest;
      a
    | [] -> Alcotest.fail "prompted beyond budget"
  in
  let m = Flow_control.create ~prompt_budget:2 ~on_prompt signatures in
  (* First two leaks prompt; third applies the sticky last answer (false). *)
  Alcotest.(check string) "first" "prompted:sent"
    (Flow_control.decision_to_string (Flow_control.process m ~app_id:1 (leak_packet ())));
  Alcotest.(check string) "second" "prompted:stopped"
    (Flow_control.decision_to_string (Flow_control.process m ~app_id:1 (leak_packet ())));
  Alcotest.(check string) "third silently blocked" "blocked"
    (Flow_control.decision_to_string (Flow_control.process m ~app_id:1 (leak_packet ())));
  Alcotest.(check int) "two prompts recorded" 2 (Flow_control.prompts_for m ~app_id:1);
  (* Another app has its own budget. *)
  let d = Flow_control.process m ~app_id:2 (leak_packet ()) in
  Alcotest.(check bool) "other app still prompts" true
    (match d with Flow_control.Prompted _ -> true | _ -> false)

let test_prompt_budget_sticky_allow () =
  let m =
    Flow_control.create ~prompt_budget:1
      ~on_prompt:(fun ~app_id:_ _ _ -> true)
      signatures
  in
  ignore (Flow_control.process m ~app_id:7 (leak_packet ()));
  Alcotest.(check string) "sticky allow" "allowed"
    (Flow_control.decision_to_string (Flow_control.process m ~app_id:7 (leak_packet ())))

(* --- Report --- *)

let test_report_per_app () =
  let m = Flow_control.create signatures in
  ignore (Flow_control.process m ~app_id:1 (mk ()));
  ignore (Flow_control.process m ~app_id:1 (leak_packet ()));
  ignore (Flow_control.process m ~app_id:2 (leak_packet ()));
  ignore (Flow_control.process m ~app_id:2 (leak_packet ()));
  ignore (Flow_control.process m ~app_id:3 (mk ()));
  let summaries = Report.per_app m in
  Alcotest.(check int) "three apps" 3 (List.length summaries);
  let top = List.hd summaries in
  Alcotest.(check int) "most suspicious first" 2 top.Report.app_id;
  Alcotest.(check int) "flagged count" 2 top.Report.flagged;
  Alcotest.(check int) "prompted count" 2 top.Report.prompted;
  Alcotest.(check (list string)) "destinations" [ "h.jp" ] top.Report.destinations;
  Alcotest.(check (list int)) "signature ids" [ 0 ] top.Report.signature_ids;
  let clean = List.find (fun s -> s.Report.app_id = 3) summaries in
  Alcotest.(check int) "clean app unflagged" 0 clean.Report.flagged

let test_report_render () =
  let m = Flow_control.create signatures in
  ignore (Flow_control.process m ~app_id:9 (leak_packet ()));
  let out = Report.render m in
  Alcotest.(check bool) "mentions app" true
    (Leakdetect_text.Search.contains ~needle:"9" out);
  Alcotest.(check bool) "has header" true
    (Leakdetect_text.Search.contains ~needle:"Most suspicious" out)

let test_report_limit () =
  let m = Flow_control.create signatures in
  for app_id = 0 to 9 do
    ignore (Flow_control.process m ~app_id (leak_packet ()))
  done;
  Alcotest.(check int) "limit respected" 4 (List.length (Report.most_suspicious ~limit:4 m))

(* --- Signature_server --- *)

let test_server_fetch_cycle () =
  let server = Signature_server.create () in
  Alcotest.(check int) "initial version" 0 (Signature_server.current_version server);
  (* Device checks before anything is published: up to date. *)
  (match Signature_server.fetch server ~since:0 with
  | Ok (Signature_client.Up_to_date _) -> ()
  | _ -> Alcotest.fail "expected up-to-date");
  let v1 = Signature_server.publish server signatures in
  Alcotest.(check int) "published v1" 1 v1;
  (match Signature_server.fetch server ~since:0 with
  | Ok (Signature_client.Set { version = v; signatures = sigs }) ->
    Alcotest.(check int) "fetched version" 1 v;
    Alcotest.(check int) "signature count" (List.length signatures) (List.length sigs);
    Alcotest.(check (list string)) "tokens preserved"
      (List.concat_map (fun s -> s.Signature.tokens) signatures)
      (List.concat_map (fun s -> s.Signature.tokens) sigs)
  | Ok (Signature_client.Up_to_date _) -> Alcotest.fail "expected update"
  | Error e -> Alcotest.failf "fetch: %s" e);
  (match Signature_server.fetch server ~since:1 with
  | Ok (Signature_client.Up_to_date { observed }) ->
    Alcotest.(check (option int)) "304 carries the version" (Some 1) observed
  | _ -> Alcotest.fail "expected 304 path")

(* Satellite regressions: identical publishes must not bump the version,
   and the 304 version header must let a lagging client measure its gap. *)
let test_publish_identical_is_noop () =
  let server = Signature_server.create () in
  let v1 = Signature_server.publish server signatures in
  Alcotest.(check int) "first publish" 1 v1;
  let v_same = Signature_server.publish server signatures in
  Alcotest.(check int) "identical publish keeps version" 1 v_same;
  (* A client already at v1 must not be told to re-download. *)
  (match Signature_server.fetch server ~since:1 with
  | Ok (Signature_client.Up_to_date _) -> ()
  | _ -> Alcotest.fail "expected 304 after no-op publish");
  let changed =
    signatures
    @ [ Signature.make ~id:7 ~mode:Signature.Conjunction ~cluster_size:1
          [ "imsi=240080000000017" ] ]
  in
  Alcotest.(check int) "real change still bumps" 2
    (Signature_server.publish server changed);
  (* Empty is a real state too: first publish of [] moves 0 -> 1. *)
  let empty_server = Signature_server.create () in
  Alcotest.(check int) "first empty publish bumps" 1
    (Signature_server.publish empty_server []);
  Alcotest.(check int) "repeated empty publish is a no-op" 1
    (Signature_server.publish empty_server [])

let test_client_records_gap_from_304 () =
  let server = Signature_server.create () in
  ignore (Signature_server.publish server signatures);
  let client = Signature_client.create () in
  ignore (Signature_client.sync client ~fetch:(Signature_server.fetch server));
  Alcotest.(check int) "client at v1" 1 (Signature_client.version client);
  (* A 304 whose header shows a version ahead of ours records the gap
     without a body fetch.  (A real server would 200 here; the point is
     the client believes the header, not the body.) *)
  let fetch ~since:_ =
    Ok (Signature_client.Up_to_date { observed = Some 4 })
  in
  (match (Signature_client.sync client ~fetch).Signature_client.outcome with
  | Signature_client.Unchanged -> ()
  | _ -> Alcotest.fail "expected Unchanged");
  Alcotest.(check int) "gap recorded from 304 header" 3
    (Signature_client.staleness client).Signature_client.version_gap;
  Alcotest.(check int) "set untouched" 1
    (List.length (Signature_client.signatures client))

let test_server_http_statuses () =
  let server = Signature_server.create () in
  ignore (Signature_server.publish server signatures);
  let get target =
    (Signature_server.handle server
       (Leakdetect_http.Request.make Leakdetect_http.Request.GET target))
      .Leakdetect_http.Response.status
  in
  Alcotest.(check int) "fresh fetch" 200 (get "/signatures?since=0");
  Alcotest.(check int) "up to date" 304 (get "/signatures?since=1");
  Alcotest.(check int) "bad since" 400 (get "/signatures?since=abc");
  Alcotest.(check int) "unknown path" 404 (get "/other");
  let post =
    Signature_server.handle server
      (Leakdetect_http.Request.make Leakdetect_http.Request.POST "/signatures")
  in
  Alcotest.(check int) "wrong method" 405 post.Leakdetect_http.Response.status;
  Alcotest.(check (option string)) "allow header" (Some "GET")
    (Leakdetect_http.Headers.get post.Leakdetect_http.Response.headers "Allow")

let test_server_drives_monitor () =
  (* Full loop: publish, device fetches, monitor starts catching leaks. *)
  let server = Signature_server.create () in
  let monitor = Flow_control.create [] in
  Alcotest.(check string) "before fetch, leak passes" "allowed"
    (Flow_control.decision_to_string (Flow_control.process monitor ~app_id:1 (leak_packet ())));
  ignore (Signature_server.publish server signatures);
  (match Signature_server.fetch server ~since:0 with
  | Ok (Signature_client.Set { signatures = sigs; _ }) ->
    Flow_control.update_signatures monitor sigs
  | _ -> Alcotest.fail "fetch failed");
  Alcotest.(check string) "after fetch, leak prompts" "prompted:stopped"
    (Flow_control.decision_to_string (Flow_control.process monitor ~app_id:1 (leak_packet ())))

let suite =
  [
    ( "monitor.policy",
      [
        Alcotest.test_case "defaults" `Quick test_policy_defaults;
        Alcotest.test_case "set/remove" `Quick test_policy_set_remove;
        Alcotest.test_case "save/load" `Quick test_policy_save_load;
        Alcotest.test_case "load errors" `Quick test_policy_load_errors;
      ] );
    ( "monitor.prompt_budget",
      [
        Alcotest.test_case "budget enforced" `Quick test_prompt_budget;
        Alcotest.test_case "sticky allow" `Quick test_prompt_budget_sticky_allow;
      ] );
    ( "monitor.report",
      [
        Alcotest.test_case "per app" `Quick test_report_per_app;
        Alcotest.test_case "render" `Quick test_report_render;
        Alcotest.test_case "limit" `Quick test_report_limit;
      ] );
    ( "monitor.signature_server",
      [
        Alcotest.test_case "fetch cycle" `Quick test_server_fetch_cycle;
        Alcotest.test_case "identical publish is a no-op" `Quick
          test_publish_identical_is_noop;
        Alcotest.test_case "304 version gap" `Quick test_client_records_gap_from_304;
        Alcotest.test_case "http statuses" `Quick test_server_http_statuses;
        Alcotest.test_case "drives the monitor" `Quick test_server_drives_monitor;
      ] );
    ( "monitor.flow_control",
      [
        Alcotest.test_case "benign allowed" `Quick test_flow_benign_allowed;
        Alcotest.test_case "sensitive prompts (deny default)" `Quick
          test_flow_sensitive_prompts_denied_by_default;
        Alcotest.test_case "prompt callback" `Quick test_flow_prompt_callback;
        Alcotest.test_case "block rule" `Quick test_flow_block_rule;
        Alcotest.test_case "log and stats" `Quick test_flow_log_and_stats;
        Alcotest.test_case "stats reconcile" `Quick test_flow_reconcile;
        Alcotest.test_case "signature update" `Quick test_flow_signature_update;
        Alcotest.test_case "match view" `Quick test_signature_match_view;
      ] );
  ]
