(* Tests for the fault-injection subsystem (Leakdetect_fault), the
   resilient signature client, the flow-control fail modes and the
   hardened parsers they exercise. *)

open Leakdetect_monitor
module Fault = Leakdetect_fault.Fault
module Headers = Leakdetect_http.Headers
module Packet = Leakdetect_http.Packet
module Request = Leakdetect_http.Request
module Response = Leakdetect_http.Response
module Trace = Leakdetect_http.Trace
module Trace_binary = Leakdetect_http.Trace_binary
module Trace_compressed = Leakdetect_http.Trace_compressed
module Wire = Leakdetect_http.Wire
module Signature = Leakdetect_core.Signature

let qtest = QCheck_alcotest.to_alcotest

let signatures =
  [ Signature.make ~id:0 ~mode:Signature.Conjunction ~cluster_size:2
      [ "imei=355021930123456" ] ]

let mk ?(rline = "GET /benign HTTP/1.1") () =
  Packet.v
    ~ip:(Leakdetect_net.Ipv4.of_int 1000)
    ~port:80 ~host:"h.jp" ~request_line:rline ~cookie:"" ~body:""

let leak_packet () = mk ~rline:"GET /ad?imei=355021930123456 HTTP/1.1" ()

(* --- Fault plans --- *)

let test_fault_rate0_identity () =
  let plan = Fault.create ~seed:7 Fault.none in
  let payload = "GET /ad?imei=1234 HTTP/1.1\r\n\r\n" in
  Alcotest.(check string) "corrupt_string identity" payload
    (Fault.corrupt_string plan payload);
  Alcotest.(check (list int)) "stream identity" [ 1; 2; 3 ]
    (Fault.apply_stream plan [ 1; 2; 3 ]);
  (match Fault.server_fate plan with
  | Fault.Respond -> ()
  | _ -> Alcotest.fail "rate 0 must respond normally");
  Alcotest.(check int) "no events" 0 (Fault.total plan)

let test_fault_determinism () =
  let run () =
    let plan = Fault.create ~seed:99 Fault.default in
    let outputs = List.init 50 (fun i -> Fault.corrupt_string plan (String.make 40 (Char.chr (65 + (i mod 26))))) in
    let stream = Fault.apply_stream plan (List.init 50 Fun.id) in
    (outputs, stream, List.map (fun (e : Fault.event) -> (e.Fault.kind, e.Fault.detail)) (Fault.events plan))
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "same fault schedule" true (a = b)

let test_fault_corrupt_always_changes () =
  let plan =
    Fault.create ~seed:3 { Fault.none with Fault.corrupt_rate = 1.0; corrupt_bytes = 2 }
  in
  let payload = String.make 64 'a' in
  for _ = 1 to 20 do
    Alcotest.(check bool) "corrupted payload differs" true
      (Fault.corrupt_string plan payload <> payload)
  done;
  Alcotest.(check int) "every hit recorded" 20 (Fault.count plan Fault.Corrupt)

let test_fault_truncate () =
  let plan = Fault.create ~seed:5 { Fault.none with Fault.truncate_rate = 1.0 } in
  let payload = String.make 32 'x' in
  let out = Fault.corrupt_string plan payload in
  Alcotest.(check bool) "shorter" true (String.length out < 32);
  Alcotest.(check int) "recorded" 1 (Fault.count plan Fault.Truncate)

let test_fault_stream_drop_duplicate () =
  let drop_all = Fault.create ~seed:1 { Fault.none with Fault.drop_rate = 1.0 } in
  Alcotest.(check (list int)) "all dropped" [] (Fault.apply_stream drop_all [ 1; 2; 3 ]);
  Alcotest.(check int) "drops recorded" 3 (Fault.count drop_all Fault.Drop);
  let dup_all = Fault.create ~seed:1 { Fault.none with Fault.duplicate_rate = 1.0 } in
  Alcotest.(check (list int)) "all doubled" [ 1; 1; 2; 2 ]
    (Fault.apply_stream dup_all [ 1; 2 ])

let test_fault_server_fate () =
  let fail_all = Fault.create ~seed:2 { Fault.none with Fault.server_error_rate = 1.0 } in
  (match Fault.server_fate fail_all with
  | Fault.Fail 503 -> ()
  | _ -> Alcotest.fail "expected transient 503");
  let delay_all =
    Fault.create ~seed:2 { Fault.none with Fault.delay_rate = 1.0; max_delay = 4 }
  in
  (match Fault.server_fate delay_all with
  | Fault.Respond_delayed t -> Alcotest.(check bool) "1..4 ticks" true (t >= 1 && t <= 4)
  | _ -> Alcotest.fail "expected delay");
  let summary = Fault.summary fail_all in
  Alcotest.(check int) "summary covers all kinds" (List.length Fault.all_kinds)
    (List.length summary)

(* --- Storage faults: crash points and torn writes --- *)

let test_fault_crash_point () =
  let plan = Fault.create ~seed:4 { Fault.none with Fault.crash_rate = 1.0 } in
  for _ = 1 to 50 do
    match Fault.crash_point plan ~len:64 with
    | Some n -> Alcotest.(check bool) "0 <= n < len" true (n >= 0 && n < 64)
    | None -> Alcotest.fail "rate 1 must always crash"
  done;
  Alcotest.(check int) "every crash recorded" 50 (Fault.count plan Fault.Crash);
  Alcotest.(check bool) "len 0 never crashes" true
    (Fault.crash_point plan ~len:0 = None);
  let quiet = Fault.create ~seed:4 Fault.none in
  for _ = 1 to 50 do
    Alcotest.(check bool) "rate 0 completes every write" true
      (Fault.crash_point quiet ~len:64 = None)
  done;
  Alcotest.(check int) "rate 0 records nothing" 0 (Fault.total quiet);
  (* Same seed, same crash schedule. *)
  let a = Fault.create ~seed:77 { Fault.none with Fault.crash_rate = 0.5 } in
  let b = Fault.create ~seed:77 { Fault.none with Fault.crash_rate = 0.5 } in
  let run p = List.init 40 (fun _ -> Fault.crash_point p ~len:100) in
  Alcotest.(check bool) "deterministic" true (run a = run b)

let test_fault_torn_write () =
  let plan = Fault.create ~seed:9 { Fault.none with Fault.torn_write_rate = 1.0 } in
  let header = "LDWAL001" in
  let image = header ^ String.make 40 'r' ^ String.make 12 't' in
  let protect = String.length header in
  let tail_start = String.length image - 12 in
  let flips = ref 0 and dups = ref 0 in
  for _ = 1 to 40 do
    let out = Fault.torn_write plan ~protect ~tail_start image in
    if String.length out = String.length image then begin
      (* Bit-flip branch: exactly one byte differs, never in the header. *)
      let diffs = ref [] in
      String.iteri (fun i c -> if c <> image.[i] then diffs := i :: !diffs) out;
      (match !diffs with
      | [ i ] ->
        incr flips;
        Alcotest.(check bool) "flip spares the header" true (i >= protect)
      | _ -> Alcotest.fail "flip must change exactly one byte")
    end
    else begin
      (* Duplication branch: the tail record is appended verbatim. *)
      incr dups;
      Alcotest.(check string) "image prefix intact" image
        (String.sub out 0 (String.length image));
      Alcotest.(check string) "tail duplicated"
        (String.sub image tail_start 12)
        (String.sub out (String.length image) 12)
    end
  done;
  Alcotest.(check bool) "both damage modes exercised" true (!flips > 0 && !dups > 0);
  Alcotest.(check int) "every tear recorded" 40 (Fault.count plan Fault.Torn_write);
  (* Identity cases: nothing past the protected header, and rate 0. *)
  Alcotest.(check string) "header-only image untouched" header
    (Fault.torn_write plan ~protect ~tail_start:protect header);
  let quiet = Fault.create ~seed:9 Fault.none in
  Alcotest.(check string) "rate 0 is identity" image
    (Fault.torn_write quiet ~protect ~tail_start image);
  Alcotest.(check int) "rate 0 records nothing" 0 (Fault.total quiet)

(* --- Hardened wire parsers --- *)

let test_wire_limits () =
  let mk_raw headers = "GET / HTTP/1.1\r\n" ^ headers ^ "\r\n" in
  let many =
    String.concat "" (List.init 100 (fun i -> Printf.sprintf "H%d: v\r\n" i))
  in
  (match Wire.parse (mk_raw many) with
  | Error (Wire.Too_many_headers n) -> Alcotest.(check int) "count reported" 100 n
  | _ -> Alcotest.fail "expected Too_many_headers");
  let long_line = "X: " ^ String.make 5000 'a' ^ "\r\n" in
  (match Wire.parse (mk_raw long_line) with
  | Error (Wire.Header_line_too_long _) -> ()
  | _ -> Alcotest.fail "expected Header_line_too_long");
  let tight = { Wire.default_limits with Wire.max_body = 4 } in
  (match Wire.parse ~limits:tight "POST /p HTTP/1.1\r\n\r\n12345" with
  | Error (Wire.Body_too_large 5) -> ()
  | _ -> Alcotest.fail "expected Body_too_large");
  match Wire.parse (mk_raw "Host: h.jp\r\n") with
  | Ok r -> Alcotest.(check (option string)) "normal request passes" (Some "h.jp") (Request.host r)
  | Error e -> Alcotest.failf "default limits rejected normal request: %s" (Wire.error_to_string e)

let test_response_limits () =
  let many =
    "HTTP/1.1 200 OK\r\n"
    ^ String.concat "" (List.init 100 (fun i -> Printf.sprintf "H%d: v\r\n" i))
    ^ "\r\n"
  in
  (match Response.parse many with
  | Error (Wire.Too_many_headers _) -> ()
  | _ -> Alcotest.fail "expected Too_many_headers");
  let tight = { Wire.default_limits with Wire.max_body = 2 } in
  match Response.parse ~limits:tight "HTTP/1.1 200 OK\r\n\r\nabc" with
  | Error (Wire.Body_too_large 3) -> ()
  | _ -> Alcotest.fail "expected Body_too_large"

let prop_wire_roundtrip_survives_rate0 =
  let path_gen = QCheck.Gen.(string_size ~gen:(map Char.chr (int_range 97 122)) (1 -- 20)) in
  let body_gen = QCheck.Gen.(string_size ~gen:(map Char.chr (int_range 32 126)) (0 -- 60)) in
  QCheck.Test.make ~name:"Wire.parse ∘ Wire.print survives rate-0 fault corruption"
    ~count:200
    (QCheck.make (QCheck.Gen.pair path_gen body_gen))
    (fun (path, body) ->
      let plan = Fault.create ~seed:11 Fault.none in
      let r =
        Request.make
          ~headers:(Headers.of_list [ ("Host", "h.jp") ])
          ~body Request.POST ("/" ^ path)
      in
      match Wire.parse (Fault.corrupt_string plan (Wire.print r)) with
      | Ok parsed ->
        Request.request_line parsed = Request.request_line r
        && parsed.Request.body = body
      | Error _ -> false)

(* --- Lenient trace readers --- *)

let write_file path contents =
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc

let sample_records () =
  List.init 7 (fun i ->
      {
        Trace.packet =
          Packet.v ~ip:(Leakdetect_net.Ipv4.of_int (i * 99991)) ~port:(80 + i)
            ~host:(Printf.sprintf "h%d.example.jp" i)
            ~request_line:(Printf.sprintf "GET /p/%d HTTP/1.1" i)
            ~cookie:"" ~body:"";
        app_id = i;
        labels = [];
      })

let test_trace_skip_mode () =
  let records = sample_records () in
  let good = List.map Trace.record_to_line records in
  let lines =
    [ List.nth good 0; "garbage line"; List.nth good 1; "another\tbad";
      List.nth good 2 ]
  in
  let path = Filename.temp_file "leakdetect_skip" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      write_file path (String.concat "\n" lines ^ "\n");
      (match Trace.load path with
      | Error e ->
        Alcotest.(check bool) "fail mode reports line 2" true
          (Leakdetect_text.Search.contains ~needle:"line 2" e)
      | Ok _ -> Alcotest.fail "fail mode must error");
      match Trace.load ~on_error:`Skip path with
      | Error e -> Alcotest.failf "skip mode failed: %s" e
      | Ok (loaded, skips) ->
        Alcotest.(check int) "recovered good records" 3 (List.length loaded);
        Alcotest.(check int) "skipped count" 2 skips.Trace.skipped;
        Alcotest.(check (list int)) "skipped line numbers" [ 2; 4 ]
          (List.map fst skips.Trace.sample))

let test_binary_skip_salvages_prefix () =
  let records = sample_records () in
  let encoded = Trace_binary.encode records in
  (* Dropping the tail desyncs the last record; Skip salvages the prefix. *)
  let truncated = String.sub encoded 0 (String.length encoded - 3) in
  (match Trace_binary.decode ~on_error:`Skip truncated with
  | Error e -> Alcotest.failf "skip mode failed: %s" e
  | Ok (loaded, skips) ->
    Alcotest.(check int) "salvaged all but last" 6 (List.length loaded);
    Alcotest.(check bool) "skip recorded" true (skips.Trace.skipped >= 1));
  (* A flipped length byte early on loses everything, but without raising. *)
  let flipped = Bytes.of_string encoded in
  Bytes.set flipped 19 '\xff';
  (match Trace_binary.decode ~on_error:`Skip (Bytes.to_string flipped) with
  | Ok (loaded, skips) ->
    Alcotest.(check bool) "salvage is a prefix" true (List.length loaded < 7);
    Alcotest.(check bool) "losses counted" true
      (skips.Trace.skipped + List.length loaded >= 7)
  | Error _ -> ());
  (* Header damage is fatal in both modes. *)
  (match Trace_binary.decode ~on_error:`Skip ("XXXX" ^ String.sub encoded 4 (String.length encoded - 4)) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage magic must error");
  match Trace_binary.decode ~on_error:`Fail truncated with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "fail mode must error on truncation"

let test_compressed_corruption_no_raise () =
  let encoded = Trace_compressed.encode (sample_records ()) in
  let no_raise s =
    match Trace_compressed.decode ~on_error:`Skip s with Ok _ | Error _ -> ()
  in
  no_raise "NOPE";
  no_raise "";
  no_raise (String.sub encoded 0 (String.length encoded - 5));
  let flipped = Bytes.of_string encoded in
  Bytes.set flipped (Bytes.length flipped / 2)
    (Char.chr (Char.code (Bytes.get flipped (Bytes.length flipped / 2)) lxor 0x55));
  no_raise (Bytes.to_string flipped);
  match Trace_compressed.decode (String.sub encoded 0 2) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "short input must error"

(* --- Signature client --- *)

let test_client_happy_path () =
  let server = Signature_server.create () in
  ignore (Signature_server.publish server signatures);
  let client = Signature_client.create () in
  let report = Signature_client.sync client ~fetch:(Signature_server.fetch server) in
  (match report.Signature_client.outcome with
  | Signature_client.Updated 1 -> ()
  | _ -> Alcotest.fail "expected Updated 1");
  Alcotest.(check int) "one attempt" 1 report.Signature_client.attempts;
  Alcotest.(check int) "no backoff" 0 report.Signature_client.waited;
  Alcotest.(check int) "version" 1 (Signature_client.version client);
  Alcotest.(check int) "signatures installed" 1
    (List.length (Signature_client.signatures client));
  let again = Signature_client.sync client ~fetch:(Signature_server.fetch server) in
  match again.Signature_client.outcome with
  | Signature_client.Unchanged -> ()
  | _ -> Alcotest.fail "expected Unchanged"

let test_client_retries_with_backoff () =
  let server = Signature_server.create () in
  ignore (Signature_server.publish server signatures);
  let calls = ref 0 in
  let fetch ~since =
    incr calls;
    if !calls <= 2 then Error "transient server error 503"
    else Signature_server.fetch server ~since
  in
  let config =
    { Signature_client.default_config with
      Signature_client.base_backoff = 1;
      max_backoff = 8;
      jitter = 0;
    }
  in
  let client = Signature_client.create ~config () in
  let report = Signature_client.sync client ~fetch in
  (match report.Signature_client.outcome with
  | Signature_client.Updated 1 -> ()
  | _ -> Alcotest.fail "expected recovery");
  Alcotest.(check int) "three attempts" 3 report.Signature_client.attempts;
  (* Failed attempts 1 and 2 wait 1 and 2 ticks (no jitter). *)
  Alcotest.(check int) "exponential backoff" 3 report.Signature_client.waited;
  Alcotest.(check string) "healthy after recovery" "healthy"
    (Signature_client.health_to_string (Signature_client.health client));
  Alcotest.(check int) "failed attempts tracked" 2
    (Signature_client.staleness client).Signature_client.failed_attempts

let test_client_health_state_machine () =
  let config =
    { Signature_client.default_config with
      Signature_client.max_attempts = 2;
      jitter = 0;
      stale_after = 2;
    }
  in
  let client = Signature_client.create ~config () in
  let broken ~since:_ = Error "no route to server" in
  (* Seed a last-known-good set first. *)
  let server = Signature_server.create () in
  ignore (Signature_server.publish server signatures);
  ignore (Signature_client.sync client ~fetch:(Signature_server.fetch server));
  Alcotest.(check string) "healthy" "healthy"
    (Signature_client.health_to_string (Signature_client.health client));
  let r1 = Signature_client.sync client ~fetch:broken in
  (match r1.Signature_client.outcome with
  | Signature_client.Failed _ -> ()
  | _ -> Alcotest.fail "expected Failed");
  Alcotest.(check int) "budget respected" 2 r1.Signature_client.attempts;
  Alcotest.(check string) "degraded after one failed sync" "degraded"
    (Signature_client.health_to_string (Signature_client.health client));
  ignore (Signature_client.sync client ~fetch:broken);
  Alcotest.(check string) "stale after two" "stale"
    (Signature_client.health_to_string (Signature_client.health client));
  Alcotest.(check int) "last-known-good kept" 1
    (List.length (Signature_client.signatures client));
  Alcotest.(check int) "still at v1" 1 (Signature_client.version client);
  Alcotest.(check bool) "last error kept" true
    (Signature_client.last_error client = Some "no route to server");
  (* Recovery: the next good sync returns to Healthy and records the gap.
     (The sets must actually differ — identical publishes no longer bump
     the version.) *)
  let grown n =
    signatures
    @ List.init n (fun i ->
          Signature.make ~id:(10 + i) ~mode:Signature.Conjunction
            ~cluster_size:1
            [ Printf.sprintf "imsi=24008%09d" i ])
  in
  ignore (Signature_server.publish server (grown 1));
  ignore (Signature_server.publish server (grown 2));
  ignore (Signature_client.sync client ~fetch:(Signature_server.fetch server));
  Alcotest.(check string) "healthy again" "healthy"
    (Signature_client.health_to_string (Signature_client.health client));
  let st = Signature_client.staleness client in
  Alcotest.(check int) "failed syncs reset" 0 st.Signature_client.failed_syncs;
  Alcotest.(check int) "version gap recorded" 1 st.Signature_client.version_gap;
  Alcotest.(check int) "caught up" 3 (Signature_client.version client)

let test_fetch_content_length_check () =
  let transport _raw =
    Ok "HTTP/1.1 200 OK\r\nX-Signature-Version: 1\r\nContent-Length: 999\r\n\r\nabc"
  in
  match Signature_server.fetch_via ~transport ~since:0 with
  | Error e ->
    Alcotest.(check bool) "mentions mismatch" true
      (Leakdetect_text.Search.contains ~needle:"content-length mismatch" e)
  | Ok _ -> Alcotest.fail "expected content-length error"

(* --- backoff jitter bounds, both modes --- *)

(* Run one sync against a dead server and return the total waited ticks:
   with [max_attempts = n] the client sleeps after failed attempts
   1..n-1, so [waited] is the sum of n-1 backoff draws. *)
let waited_of ~mode ~seed ~attempts ~base ~max_b ~jitter =
  let config =
    { Signature_client.default_config with
      Signature_client.max_attempts = attempts;
      base_backoff = base;
      max_backoff = max_b;
      jitter;
      jitter_mode = mode;
    }
  in
  let client = Signature_client.create ~config ~seed () in
  let report = Signature_client.sync client ~fetch:(fun ~since:_ -> Error "down") in
  (match report.Signature_client.outcome with
  | Signature_client.Failed _ -> ()
  | _ -> Alcotest.fail "dead server must fail the sync");
  report.Signature_client.waited

let jitter_gen =
  QCheck.make
    ~print:(fun (seed, (attempts, (base, (max_b, jitter)))) ->
      Printf.sprintf "seed %d, %d attempts, base %d, max %d, jitter %d" seed
        attempts base max_b jitter)
    QCheck.Gen.(
      pair (int_range 0 9999)
        (pair (int_range 2 6)
           (pair (int_range 1 5) (pair (int_range 1 40) (int_range 0 5)))))

let prop_equal_jitter_bounds =
  QCheck.Test.make ~name:"equal jitter stays within its envelope" ~count:300
    jitter_gen
    (fun (seed, (attempts, (base, (max_b, jitter)))) ->
      let waited =
        waited_of ~mode:Signature_client.Equal ~seed ~attempts ~base ~max_b
          ~jitter
      in
      (* Wait k is min(max_b, base * 2^(k-1)) plus uniform(0, jitter). *)
      let floor_sum = ref 0 in
      for k = 1 to attempts - 1 do
        floor_sum := !floor_sum + min max_b (base lsl (k - 1))
      done;
      waited >= !floor_sum && waited <= !floor_sum + ((attempts - 1) * jitter))

let prop_decorrelated_jitter_bounds =
  QCheck.Test.make
    ~name:"decorrelated jitter stays within its widening envelope" ~count:300
    jitter_gen
    (fun (seed, (attempts, (base, (max_b, jitter)))) ->
      let waited =
        waited_of ~mode:Signature_client.Decorrelated ~seed ~attempts ~base
          ~max_b ~jitter
      in
      (* Wait k is uniform(base, min(max_b, 3 * wait_{k-1})), so the walk's
         upper envelope triples from base and the floor is flat. *)
      let lo = max 1 base in
      let ub_sum = ref 0 and ub = ref base in
      for _ = 1 to attempts - 1 do
        ub := max lo (min max_b (!ub * 3));
        ub_sum := !ub_sum + !ub
      done;
      waited >= (attempts - 1) * lo && waited <= !ub_sum)

(* --- Flow control fail modes --- *)

let test_flow_fail_closed_when_stale () =
  let m = Flow_control.create ~fail_mode:Flow_control.Fail_closed signatures in
  Alcotest.(check string) "healthy: benign passes" "allowed"
    (Flow_control.decision_to_string (Flow_control.process m ~app_id:1 (mk ())));
  Flow_control.set_health m Signature_client.Stale;
  Alcotest.(check string) "stale: benign blocked" "blocked"
    (Flow_control.decision_to_string (Flow_control.process m ~app_id:1 (mk ())));
  Alcotest.(check string) "stale: leak blocked" "blocked"
    (Flow_control.decision_to_string (Flow_control.process m ~app_id:1 (leak_packet ())));
  Flow_control.set_health m Signature_client.Healthy;
  Alcotest.(check string) "recovered: benign passes again" "allowed"
    (Flow_control.decision_to_string (Flow_control.process m ~app_id:1 (mk ())));
  let allowed, blocked, _ = Flow_control.stats m in
  Alcotest.(check (list int)) "stats track fail-closed blocks" [ 2; 2 ]
    [ allowed; blocked ]

let test_flow_fail_open_when_stale () =
  let m = Flow_control.create ~fail_mode:Flow_control.Fail_open signatures in
  Flow_control.set_health m Signature_client.Stale;
  Alcotest.(check string) "stale: benign still passes" "allowed"
    (Flow_control.decision_to_string (Flow_control.process m ~app_id:1 (mk ())));
  Alcotest.(check string) "stale: last-known-good still enforced" "prompted:stopped"
    (Flow_control.decision_to_string (Flow_control.process m ~app_id:1 (leak_packet ())));
  Alcotest.(check string) "degraded never trips fail-closed" "allowed"
    (Flow_control.decision_to_string
       (let m' = Flow_control.create ~fail_mode:Flow_control.Fail_closed signatures in
        Flow_control.set_health m' Signature_client.Degraded;
        Flow_control.process m' ~app_id:1 (mk ())))

(* --- End-to-end mini-soak (library-level chaos) --- *)

let test_chaos_sync_converges () =
  (* 10% corruption + 20% transient errors on the wire; the client must
     still converge to the server's latest version. *)
  let server = Signature_server.create () in
  let plan =
    Fault.create ~seed:42
      { Fault.none with Fault.corrupt_rate = 0.1; corrupt_bytes = 3; server_error_rate = 0.2 }
  in
  let transport raw =
    match Fault.server_fate plan with
    | Fault.Fail status -> Error (Printf.sprintf "transient server error %d" status)
    | Fault.Respond | Fault.Respond_delayed _ -> (
      match Signature_server.wire_transport server (Fault.corrupt_string plan raw) with
      | Ok response -> Ok (Fault.corrupt_string plan response)
      | Error _ as e -> e)
  in
  let fetch = Signature_server.fetch_via ~transport in
  let client = Signature_client.create ~seed:1 () in
  for round = 1 to 5 do
    let set =
      signatures
      @ List.init round (fun i ->
            Signature.make ~id:(10 + i) ~mode:Signature.Conjunction
              ~cluster_size:1
              [ Printf.sprintf "imsi=24008%09d" i ])
    in
    ignore (Signature_server.publish server set);
    ignore (Signature_client.sync client ~fetch)
  done;
  let extra = ref 0 in
  while
    Signature_client.version client < Signature_server.current_version server
    && !extra < 50
  do
    incr extra;
    ignore (Signature_client.sync client ~fetch)
  done;
  Alcotest.(check int) "converged to latest version"
    (Signature_server.current_version server)
    (Signature_client.version client);
  Alcotest.(check bool) "faults actually fired" true (Fault.total plan > 0)

let test_chaos_ingest_recovers () =
  let records =
    List.concat (List.init 30 (fun _ -> sample_records ()))
  in
  let plan = Fault.create ~seed:17 { Fault.default with Fault.drop_rate = 0.05 } in
  let delivered = Fault.apply_stream plan records in
  let lines = List.map (fun r -> Fault.corrupt_string plan (Trace.record_to_line r)) delivered in
  let path = Filename.temp_file "leakdetect_chaos_test" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      write_file path (String.concat "\n" lines ^ "\n");
      match Trace.load ~on_error:`Skip path with
      | Error e -> Alcotest.failf "lenient load failed: %s" e
      | Ok (recovered, skips) ->
        let damaged = Fault.count plan Fault.Corrupt + Fault.count plan Fault.Truncate in
        Alcotest.(check bool) "recovers at least the intact fraction" true
          (List.length recovered >= List.length delivered - damaged);
        Alcotest.(check int) "recovered + skipped = delivered"
          (List.length delivered)
          (List.length recovered + skips.Trace.skipped))

let suite =
  [
    ( "fault.plan",
      [
        Alcotest.test_case "rate 0 is identity" `Quick test_fault_rate0_identity;
        Alcotest.test_case "deterministic schedule" `Quick test_fault_determinism;
        Alcotest.test_case "corruption changes bytes" `Quick test_fault_corrupt_always_changes;
        Alcotest.test_case "truncation" `Quick test_fault_truncate;
        Alcotest.test_case "drop/duplicate" `Quick test_fault_stream_drop_duplicate;
        Alcotest.test_case "server fate" `Quick test_fault_server_fate;
        Alcotest.test_case "crash points" `Quick test_fault_crash_point;
        Alcotest.test_case "torn writes" `Quick test_fault_torn_write;
      ] );
    ( "fault.parsers",
      [
        Alcotest.test_case "wire limits" `Quick test_wire_limits;
        Alcotest.test_case "response limits" `Quick test_response_limits;
        qtest prop_wire_roundtrip_survives_rate0;
        Alcotest.test_case "trace skip mode" `Quick test_trace_skip_mode;
        Alcotest.test_case "binary skip salvages prefix" `Quick test_binary_skip_salvages_prefix;
        Alcotest.test_case "compressed corruption" `Quick test_compressed_corruption_no_raise;
      ] );
    ( "fault.signature_client",
      [
        Alcotest.test_case "happy path" `Quick test_client_happy_path;
        Alcotest.test_case "retry with backoff" `Quick test_client_retries_with_backoff;
        Alcotest.test_case "health state machine" `Quick test_client_health_state_machine;
        Alcotest.test_case "content-length check" `Quick test_fetch_content_length_check;
        qtest prop_equal_jitter_bounds;
        qtest prop_decorrelated_jitter_bounds;
      ] );
    ( "fault.flow_control",
      [
        Alcotest.test_case "fail-closed when stale" `Quick test_flow_fail_closed_when_stale;
        Alcotest.test_case "fail-open when stale" `Quick test_flow_fail_open_when_stale;
      ] );
    ( "fault.chaos",
      [
        Alcotest.test_case "sync converges under faults" `Quick test_chaos_sync_converges;
        Alcotest.test_case "ingest recovers intact fraction" `Quick test_chaos_ingest_recovers;
      ] );
  ]
