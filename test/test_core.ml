(* Tests for Leakdetect_core: the paper's distances, payload check,
   signatures, generation, detection and evaluation metrics. *)

module Distance = Leakdetect_core.Distance
module Payload_check = Leakdetect_core.Payload_check
module Sensitive = Leakdetect_core.Sensitive
module Signature = Leakdetect_core.Signature
module Siggen = Leakdetect_core.Siggen
module Detector = Leakdetect_core.Detector
module Metrics = Leakdetect_core.Metrics
module Pipeline = Leakdetect_core.Pipeline
module Packet = Leakdetect_http.Packet
module Ipv4 = Leakdetect_net.Ipv4

let qtest = QCheck_alcotest.to_alcotest

let mk ?(ip = "74.125.1.2") ?(port = 80) ?(host = "r.admob.com")
    ?(rline = "GET /ad HTTP/1.1") ?(cookie = "") ?(body = "") () =
  Packet.v ~ip:(Option.get (Ipv4.of_string ip)) ~port ~host ~request_line:rline
    ~cookie ~body

(* --- Sensitive --- *)

let test_sensitive_names () =
  List.iter
    (fun k ->
      Alcotest.(check bool) (Sensitive.to_string k) true
        (Sensitive.of_string (Sensitive.to_string k) = Some k))
    Sensitive.all;
  Alcotest.(check int) "nine kinds (Table III rows)" 9 (List.length Sensitive.all);
  Alcotest.(check bool) "unknown" true (Sensitive.of_string "nope" = None);
  Alcotest.(check string) "paper name" "IMEI (Device ID)" (Sensitive.paper_name Sensitive.Imei)

(* --- Distance --- *)

let test_d_ip () =
  let ip s = Option.get (Ipv4.of_string s) in
  Alcotest.(check (float 1e-9)) "identical addresses are distance 0" 0.
    (Distance.d_ip (ip "8.8.8.8") (ip "8.8.8.8"));
  Alcotest.(check (float 1e-9)) "opposite first bit is distance 1" 1.
    (Distance.d_ip (ip "128.0.0.0") (ip "0.0.0.0"));
  Alcotest.(check (float 1e-9)) "same /24" 0.25
    (Distance.d_ip (ip "10.0.0.1") (ip "10.0.0.129"))

let test_d_port () =
  Alcotest.(check (float 1e-9)) "equal" 0. (Distance.d_port 80 80);
  Alcotest.(check (float 1e-9)) "different" 1. (Distance.d_port 80 443)

let test_d_host () =
  Alcotest.(check (float 1e-9)) "identical" 0. (Distance.d_host "a.jp" "a.jp");
  Alcotest.(check bool) "related below unrelated" true
    (Distance.d_host "r.admob.com" "mm.admob.com"
    < Distance.d_host "r.admob.com" "sh.medibaad.com")

let test_d_dst_components () =
  let ctx = Distance.create () in
  let p1 = mk () in
  let p2 = mk ~ip:"74.125.1.2" ~host:"r.admob.com" () in
  Alcotest.(check (float 1e-9)) "same destination" 0. (Distance.d_dst ctx p1 p2);
  let p3 = mk ~ip:"203.104.5.5" ~port:8080 ~host:"r.ad-maker.info" () in
  let d = Distance.d_dst ctx p1 p3 in
  Alcotest.(check bool) "different destination positive" true (d > 1.);
  Alcotest.(check bool) "bounded by 3" true (d <= 3.)

let test_destination_only_ignores_content () =
  let ctx = Distance.create ~components:Distance.destination_only () in
  let p1 = mk ~rline:"GET /a HTTP/1.1" () in
  let p2 = mk ~rline:"GET /completely/different?x=1 HTTP/1.1" () in
  Alcotest.(check (float 1e-9)) "content ignored" 0. (Distance.d_pkt ctx p1 p2)

let test_content_only_ignores_destination () =
  let ctx = Distance.create ~components:Distance.content_only () in
  let p1 = mk ~ip:"1.2.3.4" ~host:"a.jp" () in
  let p2 = mk ~ip:"200.9.9.9" ~host:"z.example.com" () in
  Alcotest.(check (float 1e-9)) "identical content, distance 0"
    (Distance.d_pkt ctx p1 p1) (Distance.d_pkt ctx p1 p2)

let test_d_pkt_discrimination () =
  let ctx = Distance.create () in
  let a1 =
    mk ~ip:"203.104.5.5" ~host:"r.ad-maker.info"
      ~rline:"GET /ad/sdk/img?aid=jp.co.a&imei=355021930123456&size=320x50 HTTP/1.1" ()
  in
  let a2 =
    mk ~ip:"203.104.5.9" ~host:"img.ad-maker.info"
      ~rline:"GET /ad/sdk/img?aid=jp.co.b&imei=355021930123456&size=320x50 HTTP/1.1" ()
  in
  let b =
    mk ~ip:"74.6.1.1" ~host:"data.flurry.com" ~rline:"POST /aap.do HTTP/1.1"
      ~body:"ak=aabb&u=9f8e7d" ()
  in
  Alcotest.(check bool) "same module close, other module far" true
    (Distance.d_pkt ctx a1 a2 < Distance.d_pkt ctx a1 b)

let test_trigram_metric_option () =
  let ncd_ctx = Distance.create () in
  let tri_ctx = Distance.create ~content_metric:Distance.Trigram () in
  let p1 = mk ~rline:"GET /ad?imei=355021930123456&size=320x50 HTTP/1.1" () in
  let p2 = mk ~rline:"GET /ad?imei=355021930123456&size=320x50&y=2 HTTP/1.1" () in
  let p3 = mk ~host:"data.flurry.com" ~rline:"POST /aap.do HTTP/1.1" () in
  (* Both metrics must order same-module below cross-module. *)
  Alcotest.(check bool) "ncd ordering" true
    (Distance.d_pkt ncd_ctx p1 p2 < Distance.d_pkt ncd_ctx p1 p3);
  Alcotest.(check bool) "trigram ordering" true
    (Distance.d_pkt tri_ctx p1 p2 < Distance.d_pkt tri_ctx p1 p3);
  (* And they are genuinely different metrics. *)
  Alcotest.(check bool) "metrics differ" true
    (Distance.d_header ncd_ctx p1 p2 <> Distance.d_header tri_ctx p1 p2)

let test_max_possible () =
  Alcotest.(check (float 1e-9)) "all components" 6.
    (Distance.max_possible (Distance.create ()));
  Alcotest.(check (float 1e-9)) "destination only" 3.
    (Distance.max_possible (Distance.create ~components:Distance.destination_only ()))

let prop_d_pkt_symmetric =
  let gen = QCheck.Gen.(pair (string_size (0 -- 40)) (string_size (0 -- 40))) in
  QCheck.Test.make ~name:"d_pkt is symmetric" ~count:100 (QCheck.make gen)
    (fun (s1, s2) ->
      let ctx = Distance.create () in
      let p1 = mk ~rline:("GET /" ^ String.escaped s1 ^ " HTTP/1.1") () in
      let p2 = mk ~host:"mm.admob.com" ~rline:("GET /" ^ String.escaped s2 ^ " HTTP/1.1") () in
      Float.abs (Distance.d_pkt ctx p1 p2 -. Distance.d_pkt ctx p2 p1) < 1e-9)

let test_matrix_builder () =
  let ctx = Distance.create () in
  let packets = [| mk (); mk ~host:"mm.admob.com" (); mk ~host:"data.flurry.com" () |] in
  let m = Distance.matrix ctx packets in
  Alcotest.(check int) "size" 3 (Leakdetect_cluster.Dist_matrix.size m);
  Alcotest.(check (float 1e-9)) "symmetric storage"
    (Leakdetect_cluster.Dist_matrix.get m 0 2)
    (Leakdetect_cluster.Dist_matrix.get m 2 0)

(* --- Payload_check --- *)

let needles =
  [
    (Sensitive.Imei, "355021930123456");
    (Sensitive.Android_id, "9774d56d682e549c");
    (Sensitive.Carrier, "NTTdocomo");
  ]

let test_payload_scan () =
  let check = Payload_check.create needles in
  let hit = mk ~rline:"GET /ad?imei=355021930123456&c=NTTdocomo HTTP/1.1" () in
  Alcotest.(check (list string)) "two kinds found"
    [ "carrier"; "imei" ]
    (List.map Sensitive.to_string (Payload_check.scan check hit));
  let miss = mk ~rline:"GET /benign?x=1 HTTP/1.1" () in
  Alcotest.(check (list string)) "nothing" [] (List.map Sensitive.to_string (Payload_check.scan check miss));
  Alcotest.(check bool) "is_sensitive" true (Payload_check.is_sensitive check hit);
  Alcotest.(check bool) "not sensitive" false (Payload_check.is_sensitive check miss)

let test_payload_scan_in_cookie_and_body () =
  let check = Payload_check.create needles in
  let in_cookie = mk ~cookie:"uid=9774d56d682e549c" () in
  let in_body = mk ~body:"imei=355021930123456" () in
  Alcotest.(check bool) "cookie scanned" true (Payload_check.is_sensitive check in_cookie);
  Alcotest.(check bool) "body scanned" true (Payload_check.is_sensitive check in_body)

let test_payload_split () =
  let check = Payload_check.create needles in
  let s = mk ~rline:"GET /x?imei=355021930123456 HTTP/1.1" () in
  let n = mk () in
  let suspicious, normal = Payload_check.split check [| s; n; s |] in
  Alcotest.(check int) "suspicious" 2 (Array.length suspicious);
  Alcotest.(check int) "normal" 1 (Array.length normal)

let test_payload_empty_needle () =
  Alcotest.check_raises "empty needle"
    (Invalid_argument "Payload_check.create: empty needle") (fun () ->
      ignore (Payload_check.create [ (Sensitive.Imei, "") ]))

let percent_encode s =
  String.concat ""
    (List.map (fun c -> Printf.sprintf "%%%02X" (Char.code c))
       (List.init (String.length s) (String.get s)))

let test_payload_digest_case () =
  let digest = "9b74c9897bac770ffc029102a200c5de" in
  let check = Payload_check.create [ (Sensitive.Imei, digest) ] in
  let upper = mk ~rline:("GET /t?h=" ^ String.uppercase_ascii digest ^ " HTTP/1.1") () in
  Alcotest.(check bool) "digest needle matches either case" true
    (Payload_check.is_sensitive check upper);
  (match Payload_check.scan_verdicts check upper with
  | [ { Payload_check.via = Payload_check.Folded; _ } ] -> ()
  | _ -> Alcotest.fail "expected one Folded verdict");
  (* Raw identifiers stay byte-exact: a case difference is a different value. *)
  let check_raw = Payload_check.create [ (Sensitive.Carrier, "NTTdocomo") ] in
  let lower = mk ~rline:"GET /t?c=nttdocomo HTTP/1.1" () in
  Alcotest.(check bool) "raw identifier stays byte-exact" false
    (Payload_check.is_sensitive check_raw lower)

let test_payload_normalize_recovers () =
  let imei = "355021930123456" in
  let check = Payload_check.create [ (Sensitive.Imei, imei) ] in
  let p = mk ~rline:("GET /x?d=" ^ percent_encode imei ^ " HTTP/1.1") () in
  Alcotest.(check bool) "legacy scan misses the re-encoded leak" false
    (Payload_check.is_sensitive check p);
  let normalize = Leakdetect_normalize.Normalize.create () in
  Alcotest.(check bool) "lattice scan recovers it" true
    (Payload_check.is_sensitive ~normalize check p);
  match Payload_check.scan_verdicts ~normalize check p with
  | [ { Payload_check.via = Payload_check.View steps; _ } ] ->
    Alcotest.(check bool) "verdict names the decode chain" true
      (steps <> []
      && Leakdetect_text.Search.contains ~needle:"percent"
           (Payload_check.via_to_string (Payload_check.View steps)))
  | _ -> Alcotest.fail "expected one View verdict"

(* --- Signature --- *)

let test_signature_make_validation () =
  Alcotest.check_raises "no tokens" (Invalid_argument "Signature.make: no tokens")
    (fun () ->
      ignore (Signature.make ~id:0 ~mode:Signature.Conjunction ~cluster_size:1 []));
  Alcotest.check_raises "empty token" (Invalid_argument "Signature.make: empty token")
    (fun () ->
      ignore (Signature.make ~id:0 ~mode:Signature.Conjunction ~cluster_size:1 [ "a"; "" ]))

let test_signature_matching () =
  let s =
    Signature.make ~id:0 ~mode:Signature.Conjunction ~cluster_size:2
      [ "imei="; "&size=320x50" ]
  in
  let c = Signature.compile s in
  Alcotest.(check bool) "match" true
    (Signature.matches c (mk ~rline:"GET /x?imei=1&size=320x50 HTTP/1.1" ()));
  Alcotest.(check bool) "order irrelevant for conjunction" true
    (Signature.matches c (mk ~rline:"GET /x?a=b&size=320x50&imei=1 HTTP/1.1" ()));
  Alcotest.(check bool) "miss" false (Signature.matches c (mk ()))

let test_signature_ordered () =
  let s = Signature.make ~id:0 ~mode:Signature.Ordered ~cluster_size:2 [ "aa"; "bb" ] in
  let c = Signature.compile s in
  Alcotest.(check bool) "in order" true (Signature.matches_content c "xxaaybbz");
  Alcotest.(check bool) "out of order" false (Signature.matches_content c "bb_aa")

let test_signature_ordered_overlap () =
  let s = Signature.make ~id:0 ~mode:Signature.Ordered ~cluster_size:1 [ "ab"; "bc" ] in
  let c = Signature.compile s in
  (* "abc": "ab" ends at 2, "bc" starts at 1 — overlapping, must not match. *)
  Alcotest.(check bool) "overlapping occurrences rejected" false
    (Signature.matches_content c "abc");
  Alcotest.(check bool) "disjoint occurrences accepted" true
    (Signature.matches_content c "ab_bc")

let test_boilerplate () =
  Alcotest.(check bool) "GET prefix" true (Signature.is_boilerplate_token "GET /");
  Alcotest.(check bool) "version" true (Signature.is_boilerplate_token " HTTP/1.1");
  Alcotest.(check bool) "identifier value is specific" false
    (Signature.is_boilerplate_token "355021930123456");
  Alcotest.(check bool) "param name with value is specific" false
    (Signature.is_boilerplate_token "imei=355021930123456")

let test_specificity () =
  let s =
    Signature.make ~id:0 ~mode:Signature.Conjunction ~cluster_size:2
      [ "GET /"; " HTTP/1.1"; "udid=9774d56d682e549c" ]
  in
  Alcotest.(check int) "only the identifier token counts" 21 (Signature.specificity s)

(* --- Siggen + Detector --- *)

(* Two clearly separated groups of packets, plus enough repetition for
   tokens to emerge. *)
let group_a i =
  mk ~ip:"203.104.5.5" ~host:"r.ad-maker.info"
    ~rline:
      (Printf.sprintf
         "GET /ad/sdk/img?aid=jp.co.a%d&imei=355021930123456&size=320x50 HTTP/1.1" i)
    ()

let group_b i =
  mk ~ip:"74.6.33.1" ~host:"data.flurry.com" ~rline:"POST /aap.do HTTP/1.1"
    ~body:(Printf.sprintf "ak=k%d&u=77c7d1a2b3c4d5e6f708192a3b4c5d6e7f809101&v=FL_2.2" i)
    ()

let test_siggen_two_groups () =
  let sample = Array.init 12 (fun i -> if i < 6 then group_a i else group_b i) in
  let dist = Distance.create () in
  let result = Siggen.generate dist sample in
  Alcotest.(check bool) "at least two clusters" true (List.length result.Siggen.clusters >= 2);
  Alcotest.(check bool) "signatures produced" true (result.Siggen.signatures <> []);
  (* Soundness: every signature matches all packets of its own cluster. *)
  List.iter2
    (fun signature members ->
      let c = Signature.compile signature in
      List.iter
        (fun i ->
          Alcotest.(check bool) "matches own cluster" true (Signature.matches c sample.(i)))
        members)
    result.Siggen.signatures
    (List.filteri (fun i _ -> i < List.length result.Siggen.signatures) result.Siggen.clusters)

let test_siggen_empty_sample () =
  let dist = Distance.create () in
  let r = Siggen.generate dist [||] in
  Alcotest.(check int) "no signatures" 0 (List.length r.Siggen.signatures);
  Alcotest.(check bool) "no dendrogram" true (r.Siggen.dendrogram = None)

let test_siggen_cut_count () =
  let sample = Array.init 8 (fun i -> if i < 4 then group_a i else group_b i) in
  let dist = Distance.create () in
  let config = Pipeline.Config.(default |> with_cut (Count 4)) in
  let r = Siggen.generate ~config dist sample in
  Alcotest.(check bool) "at least 4 clusters" true (List.length r.Siggen.clusters >= 4)

let test_siggen_every_merge () =
  let sample = Array.init 10 (fun i -> if i < 5 then group_a i else group_b i) in
  let dist = Distance.create () in
  let auto = Siggen.generate dist sample in
  let every =
    Siggen.generate
      ~config:Pipeline.Config.(default |> with_cut Every_merge)
      dist sample
  in
  (* Every internal node is a candidate: n-1 clusters for n packets. *)
  Alcotest.(check int) "n-1 candidate clusters" 9 (List.length every.Siggen.clusters);
  Alcotest.(check bool) "at least as many signatures as the cut" true
    (List.length every.Siggen.signatures >= List.length auto.Siggen.signatures);
  (* Deduplication: no two signatures share a token list. *)
  let token_lists = List.map (fun s -> s.Signature.tokens) every.Siggen.signatures in
  Alcotest.(check int) "token lists unique" (List.length token_lists)
    (List.length (List.sort_uniq compare token_lists))

let test_siggen_rejects_degenerate () =
  (* Packets sharing only protocol boilerplate must be rejected. *)
  let p1 = mk ~host:"a.example.jp" ~rline:"GET /qqqq HTTP/1.1" () in
  let p2 = mk ~host:"a.example.jp" ~rline:"GET /zzzz HTTP/1.1" () in
  let dist = Distance.create () in
  let config = Pipeline.Config.(default |> with_cut (Threshold 10.)) in
  let r = Siggen.generate ~config dist [| p1; p2 |] in
  Alcotest.(check (list string)) "no signature survives" []
    (List.concat_map (fun s -> s.Signature.tokens) r.Siggen.signatures);
  Alcotest.(check int) "rejection counted" 1 r.Siggen.rejected

(* --- Siggen clustering backends --- *)

module Clustering = Leakdetect_core.Clustering
module Cluster = Leakdetect_cluster.Cluster
module Sketch = Leakdetect_sketch.Sketch

let sketch_config = Pipeline.Config.(default |> with_clustering (Clustering.Sketch Sketch.default))

let sig_essence (r : Siggen.result) =
  List.map (fun s -> (s.Signature.id, s.Signature.tokens)) r.Siggen.signatures

let test_siggen_sketch_single_bucket_identical () =
  (* Identical payloads always share every LSH band, so the sketch backend
     degenerates to one bucket and must reproduce the exact backend byte
     for byte. *)
  let sample = Array.make 8 (group_a 0) in
  let dist () = Distance.create () in
  let exact = Siggen.generate (dist ()) sample in
  let sketch = Siggen.generate ~config:sketch_config (dist ()) sample in
  Alcotest.(check bool) "same signatures" true (sig_essence exact = sig_essence sketch);
  Alcotest.(check bool) "same clusters" true (exact.Siggen.clusters = sketch.Siggen.clusters);
  Alcotest.(check bool) "same dendrogram" true
    (exact.Siggen.dendrogram = sketch.Siggen.dendrogram);
  match sketch.Siggen.stats with
  | Some s ->
    Alcotest.(check string) "backend recorded" "sketch" s.Clustering.backend;
    Alcotest.(check int) "one bucket" 1 s.Clustering.buckets
  | None -> Alcotest.fail "stats expected"

let test_siggen_sketch_two_groups_parity () =
  let sample = Array.init 12 (fun i -> if i < 6 then group_a i else group_b i) in
  let dist () = Distance.create () in
  let exact = Siggen.generate (dist ()) sample in
  let sketch = Siggen.generate ~config:sketch_config (dist ()) sample in
  (* The two near-duplicate families land in separate buckets, so the
     sketch run skips every cross-family NCD pair yet recovers the same
     signature set: recall parity with a fraction of the exact work. *)
  Alcotest.(check bool) "same signatures as exact" true
    (sig_essence exact = sig_essence sketch);
  match sketch.Siggen.stats with
  | Some s ->
    Alcotest.(check int) "two buckets" 2 s.Clustering.buckets;
    Alcotest.(check int) "total pairs is C(12,2)" 66 s.Clustering.total_pairs;
    Alcotest.(check int) "only within-bucket pairs computed" 30 s.Clustering.exact_pairs
  | None -> Alcotest.fail "stats expected"

let test_siggen_sketch_jobs_equivalence () =
  let sample = Array.init 16 (fun i -> if i mod 2 = 0 then group_a i else group_b i) in
  let sequential = Siggen.generate ~config:sketch_config (Distance.create ()) sample in
  let parallel =
    Leakdetect_parallel.Pool.with_pool 4 (fun pool ->
        Siggen.generate
          ~config:(Pipeline.Config.with_pool pool sketch_config)
          (Distance.create ()) sample)
  in
  Alcotest.(check bool) "signatures identical at jobs=4" true
    (sig_essence sequential = sig_essence parallel);
  Alcotest.(check bool) "clusters identical at jobs=4" true
    (sequential.Siggen.clusters = parallel.Siggen.clusters);
  Alcotest.(check bool) "dendrogram identical at jobs=4" true
    (sequential.Siggen.dendrogram = parallel.Siggen.dendrogram)

let test_siggen_partitional_algorithm () =
  let sample = Array.init 10 (fun i -> if i < 5 then group_a i else group_b i) in
  let config =
    Pipeline.Config.(default |> with_algorithm (Cluster.Kmedoids { k = 2; seed = 3 }))
  in
  let r = Siggen.generate ~config (Distance.create ()) sample in
  Alcotest.(check bool) "no dendrogram for a partition" true (r.Siggen.dendrogram = None);
  Alcotest.(check int) "k clusters" 2 (List.length r.Siggen.clusters);
  Alcotest.(check bool) "signatures produced" true (r.Siggen.signatures <> [])

let test_detector_basics () =
  let s1 = Signature.make ~id:0 ~mode:Signature.Conjunction ~cluster_size:1 [ "imei=355" ] in
  let s2 = Signature.make ~id:1 ~mode:Signature.Conjunction ~cluster_size:1 [ "aap.do" ] in
  let d = Detector.create [ s1; s2 ] in
  Alcotest.(check int) "count" 2 (Detector.signature_count d);
  let pa = group_a 0 and pb = group_b 0 and pn = mk () in
  Alcotest.(check (option int)) "first match id" (Some 0)
    (Option.map (fun s -> s.Signature.id) (Detector.first_match d pa));
  Alcotest.(check (option int)) "second signature" (Some 1)
    (Option.map (fun s -> s.Signature.id) (Detector.first_match d pb));
  Alcotest.(check bool) "miss" false (Detector.detects d pn);
  Alcotest.(check int) "count detected" 2 (Detector.count_detected d [| pa; pb; pn |]);
  Alcotest.(check (array bool)) "bitmap" [| true; true; false |]
    (Detector.detect_bitmap d [| pa; pb; pn |])

let test_detector_all_matches () =
  let s1 = Signature.make ~id:0 ~mode:Signature.Conjunction ~cluster_size:1 [ "imei" ] in
  let s2 = Signature.make ~id:1 ~mode:Signature.Conjunction ~cluster_size:1 [ "320x50" ] in
  let d = Detector.create [ s1; s2 ] in
  Alcotest.(check int) "both match" 2 (List.length (Detector.all_matches d (group_a 1)))

let test_detector_normalize_reencoded () =
  let token = "imei=355021930123456" in
  let d =
    Detector.create
      [ Signature.make ~id:0 ~mode:Signature.Conjunction ~cluster_size:1 [ token ] ]
  in
  let p = mk ~rline:("GET /x?d=" ^ percent_encode token ^ " HTTP/1.1") () in
  Alcotest.(check bool) "raw scan misses" false (Detector.detects d p);
  let normalize = Leakdetect_normalize.Normalize.create () in
  Alcotest.(check bool) "lattice scan hits" true (Detector.detects ~normalize d p);
  (match Detector.first_match_normalized ~normalize d p with
  | Some (_, steps) ->
    Alcotest.(check bool) "attributed to a derived view" true (steps <> [])
  | None -> Alcotest.fail "expected a match");
  (* An unencoded hit is attributed to the raw content even with the
     lattice enabled. *)
  let clean = mk ~rline:("GET /x?" ^ token ^ " HTTP/1.1") () in
  match Detector.first_match_normalized ~normalize d clean with
  | Some (_, []) -> ()
  | Some (_, _) -> Alcotest.fail "raw hit attributed to a view"
  | None -> Alcotest.fail "expected a raw match"

(* --- Metrics --- *)

(* --- Detector.Stream: fragment-fed flows --- *)

(* Feed one packet through a flow as its canonical content stream, the
   fields split into [width]-byte fragments. *)
let feed_packet_split flow ~width (p : Packet.t) =
  let feed_split s =
    let len = String.length s in
    let off = ref 0 in
    while !off < len do
      let l = min width (len - !off) in
      Detector.Stream.feed flow ~off:!off ~len:l s;
      off := !off + l
    done
  in
  let c = p.Packet.content in
  feed_split c.Packet.request_line;
  Detector.Stream.feed flow "\n";
  feed_split c.Packet.cookie;
  Detector.Stream.feed flow "\n";
  feed_split c.Packet.body

(* RFC 7230 chunked framing with the given chunk width, so seams fall mid-token. *)
let chunk_encode ~width s =
  let buf = Buffer.create (String.length s + 32) in
  let off = ref 0 in
  while !off < String.length s do
    let l = min width (String.length s - !off) in
    Buffer.add_string buf (Printf.sprintf "%x\r\n" l);
    Buffer.add_substring buf s !off l;
    Buffer.add_string buf "\r\n";
    off := !off + l
  done;
  Buffer.add_string buf "0\r\n\r\n";
  Buffer.contents buf

let test_stream_flow_matches_across_seams () =
  let d =
    Detector.create
      [ Signature.make ~id:0 ~mode:Signature.Conjunction ~cluster_size:1
          [ "imei=355021930123456" ] ]
  in
  let stream = Detector.Stream.create d in
  let flow = Detector.Stream.open_flow stream in
  let hit = group_a 0 and miss = mk () in
  (* 1-byte fragments: the token spans every seam. *)
  feed_packet_split flow ~width:1 hit;
  (match Detector.Stream.close flow with
  | Some s -> Alcotest.(check int) "token split across every seam still hits" 0 s.Signature.id
  | None -> Alcotest.fail "expected a match from fragment-fed flow");
  (* The flow resets itself: the next packet starts clean. *)
  feed_packet_split flow ~width:3 miss;
  Alcotest.(check bool) "clean packet after reuse misses" true
    (Detector.Stream.close flow = None);
  let st = Detector.Stream.stats stream in
  Alcotest.(check int) "packets counted" 2 st.Detector.Stream.packets;
  Alcotest.(check int) "hits counted" 1 st.Detector.Stream.hits;
  Alcotest.(check bool) "bytes counted" true (st.Detector.Stream.bytes > 0)

let test_stream_chunked_body () =
  let d =
    Detector.create
      [ Signature.make ~id:0 ~mode:Signature.Conjunction ~cluster_size:1
          [ "ak=k0"; "FL_2.2" ] ]
  in
  let stream = Detector.Stream.create d in
  let flow = Detector.Stream.open_flow stream in
  let p = group_b 0 in
  let c = p.Packet.content in
  Detector.Stream.feed flow c.Packet.request_line;
  Detector.Stream.feed flow "\n";
  Detector.Stream.feed flow c.Packet.cookie;
  Detector.Stream.feed flow "\n";
  (* Frame the body as a chunked transfer coding with 2-byte chunks: both
     tokens span chunk seams and must still match without reassembly. *)
  (match Detector.Stream.feed_chunked flow (chunk_encode ~width:2 c.Packet.body) with
  | Ok total -> Alcotest.(check int) "decoded length" (String.length c.Packet.body) total
  | Error e -> Alcotest.fail (Leakdetect_http.Wire.error_to_string e));
  Alcotest.(check bool) "chunk-seam-spanning tokens match" true
    (Detector.Stream.close flow <> None);
  (* A malformed framing is the wire parser's error, through the same path. *)
  (match Detector.Stream.feed_chunked flow "zz\r\nxx\r\n0\r\n\r\n" with
  | Ok _ -> Alcotest.fail "bad chunk-size line must be rejected"
  | Error _ -> ());
  ignore (Detector.Stream.close flow)

let test_stream_detect_batch_equals_bitmap () =
  let sample = Array.init 12 (fun i -> if i < 6 then group_a i else group_b i) in
  let gen = Siggen.generate (Distance.create ()) sample in
  let d = Detector.create gen.Siggen.signatures in
  let packets = Array.init 40 (fun i ->
      if i mod 3 = 0 then group_a i else if i mod 3 = 1 then group_b i else mk ())
  in
  let stream = Detector.Stream.create d in
  let batch = Detector.Stream.detect_batch stream packets in
  Alcotest.(check (array bool)) "batch equals detect_bitmap"
    (Detector.detect_bitmap d packets) batch;
  let st = Detector.Stream.stats stream in
  Alcotest.(check int) "batch packets counted" 40 st.Detector.Stream.packets;
  Alcotest.(check int) "batch hits = bitmap hits"
    (Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 batch)
    st.Detector.Stream.hits

let prop_stream_split_equals_detect =
  (* Any fragment split of any packet — including chunked body framing —
     gives the same verdict as whole-packet detection. *)
  let gen =
    QCheck.Gen.(
      let field = string_size ~gen:(oneofl [ 'a'; 'k'; '0'; '='; '&' ]) (0 -- 25) in
      pair (pair (1 -- 7) (1 -- 5)) (pair field field))
  in
  let sample = Array.init 12 (fun i -> if i < 6 then group_a i else group_b i) in
  let siggen = Siggen.generate (Distance.create ()) sample in
  let d = Detector.create siggen.Siggen.signatures in
  let stream = Detector.Stream.create d in
  let flow = Detector.Stream.open_flow stream in
  QCheck.Test.make ~name:"stream flow over any split = whole-packet detect" ~count:200
    (QCheck.make gen)
    (fun ((width, chunk_width), (cookie, body)) ->
      let p = if body = "" then group_a width else group_b width in
      let p =
        mk ~host:p.Packet.dst.Packet.host ~rline:p.Packet.content.Packet.request_line
          ~cookie ~body:(p.Packet.content.Packet.body ^ body) ()
      in
      let expect = Detector.detects d p in
      feed_packet_split flow ~width p;
      let frag_verdict = Detector.Stream.close flow <> None in
      let c = p.Packet.content in
      Detector.Stream.feed flow c.Packet.request_line;
      Detector.Stream.feed flow "\n";
      Detector.Stream.feed flow c.Packet.cookie;
      Detector.Stream.feed flow "\n";
      let chunk_ok =
        match
          Detector.Stream.feed_chunked flow (chunk_encode ~width:chunk_width c.Packet.body)
        with
        | Ok total -> total = String.length c.Packet.body
        | Error _ -> false
      in
      let chunk_verdict = Detector.Stream.close flow <> None in
      frag_verdict = expect && chunk_verdict = expect && chunk_ok)

let test_metrics_paper_formulas () =
  let m =
    Metrics.compute
      {
        Metrics.n = 100;
        sensitive_total = 1100;
        sensitive_detected = 850;
        normal_total = 5100;
        normal_detected = 50;
      }
  in
  Alcotest.(check (float 1e-9)) "TP = (850-100)/(1100-100)" 0.75 m.Metrics.true_positive;
  Alcotest.(check (float 1e-9)) "FN = 250/1000" 0.25 m.Metrics.false_negative;
  Alcotest.(check (float 1e-9)) "FP = 50/5000" 0.01 m.Metrics.false_positive

let test_metrics_tp_fn_complementary () =
  let m =
    Metrics.compute
      {
        Metrics.n = 10;
        sensitive_total = 200;
        sensitive_detected = 150;
        normal_total = 300;
        normal_detected = 3;
      }
  in
  Alcotest.(check (float 1e-9)) "TP + FN = 1" 1. (m.Metrics.true_positive +. m.Metrics.false_negative)

let test_metrics_validation () =
  let bad () =
    ignore
      (Metrics.compute
         {
           Metrics.n = 10;
           sensitive_total = 5;
           sensitive_detected = 2;
           normal_total = 10;
           normal_detected = 0;
         })
  in
  Alcotest.check_raises "n > total" (Invalid_argument "Metrics.compute: inconsistent counts") bad

let test_metrics_row () =
  let m =
    Metrics.compute
      { Metrics.n = 0; sensitive_total = 10; sensitive_detected = 10;
        normal_total = 10; normal_detected = 0 }
  in
  Alcotest.(check (list string)) "row" [ "0"; "100.0"; "0.0"; "0.00" ] (Metrics.to_row m)

(* --- Pipeline --- *)

let test_pipeline_end_to_end () =
  let suspicious = Array.init 40 (fun i -> if i mod 2 = 0 then group_a i else group_b i) in
  let normal = Array.init 60 (fun i -> mk ~rline:(Printf.sprintf "GET /benign/%d HTTP/1.1" i) ()) in
  let rng = Leakdetect_util.Prng.create 99 in
  let o = Pipeline.run ~rng ~n:20 ~suspicious ~normal () in
  Alcotest.(check int) "sample size" 20 o.Pipeline.sample_size;
  Alcotest.(check bool) "high TP on clean split" true
    (o.Pipeline.metrics.Metrics.true_positive > 0.9);
  Alcotest.(check bool) "low FP" true (o.Pipeline.metrics.Metrics.false_positive < 0.1)

let test_pipeline_caps_n () =
  let suspicious = Array.init 5 group_a in
  let normal = [| mk () |] in
  let rng = Leakdetect_util.Prng.create 3 in
  let o = Pipeline.run ~rng ~n:50 ~suspicious ~normal () in
  Alcotest.(check int) "capped at population" 5 o.Pipeline.sample_size

let prop_pipeline_counts_consistent =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"pipeline counts are internally consistent" ~count:10
       QCheck.(int_range 4 20)
       (fun n ->
         let suspicious =
           Array.init 30 (fun i -> if i mod 2 = 0 then group_a i else group_b i)
         in
         let normal =
           Array.init 30 (fun i -> mk ~rline:(Printf.sprintf "GET /c/%d HTTP/1.1" i) ())
         in
         let rng = Leakdetect_util.Prng.create n in
         let o = Pipeline.run ~rng ~n ~suspicious ~normal () in
         let c = o.Pipeline.metrics.Metrics.counts in
         c.Metrics.n = o.Pipeline.sample_size
         && c.Metrics.sensitive_detected <= c.Metrics.sensitive_total
         && c.Metrics.normal_detected <= c.Metrics.normal_total
         && List.length o.Pipeline.signatures <= List.length o.Pipeline.signatures
            + o.Pipeline.rejected_clusters))

let test_pipeline_normalize_off_identity () =
  (* The [normalize] knob defaults to off, and off must be byte-identical
     to the legacy pipeline: same signatures, same metrics, whether the
     field is left at its default or set to [None] explicitly. *)
  let suspicious =
    Array.init 40 (fun i -> if i mod 2 = 0 then group_a i else group_b i)
  in
  let normal =
    Array.init 60 (fun i -> mk ~rline:(Printf.sprintf "GET /benign/%d HTTP/1.1" i) ())
  in
  let run config =
    Pipeline.run ~config ~rng:(Leakdetect_util.Prng.create 99) ~n:20 ~suspicious
      ~normal ()
  in
  let sig_strings o =
    List.map (Format.asprintf "%a" Signature.pp) o.Pipeline.signatures
  in
  let default = run Pipeline.default_config in
  let explicit = run (Pipeline.Config.with_normalize None Pipeline.default_config) in
  Alcotest.(check (list string)) "same signatures" (sig_strings default)
    (sig_strings explicit);
  Alcotest.(check bool) "same metrics" true
    (default.Pipeline.metrics = explicit.Pipeline.metrics);
  (* Turning the lattice on may only add detections: signature generation
     is untouched and recall is monotone. *)
  let normalize = Leakdetect_normalize.Normalize.create () in
  let on = run (Pipeline.Config.with_normalize (Some normalize) Pipeline.default_config) in
  Alcotest.(check (list string)) "lattice leaves signatures alone"
    (sig_strings default) (sig_strings on);
  Alcotest.(check bool) "recall monotone under the lattice" true
    (on.Pipeline.metrics.Metrics.true_positive
    >= default.Pipeline.metrics.Metrics.true_positive)

let test_pipeline_sweep () =
  let suspicious = Array.init 30 (fun i -> if i mod 2 = 0 then group_a i else group_b i) in
  let normal = Array.init 30 (fun i -> mk ~rline:(Printf.sprintf "GET /b/%d HTTP/1.1" i) ()) in
  let rng = Leakdetect_util.Prng.create 5 in
  let outcomes = Pipeline.sweep ~rng ~ns:[ 5; 10; 15 ] ~suspicious ~normal () in
  Alcotest.(check (list int)) "one outcome per N" [ 5; 10; 15 ]
    (List.map (fun o -> o.Pipeline.sample_size) outcomes)

let suite =
  [
    ( "core.sensitive",
      [ Alcotest.test_case "names roundtrip" `Quick test_sensitive_names ] );
    ( "core.distance",
      [
        Alcotest.test_case "d_ip" `Quick test_d_ip;
        Alcotest.test_case "d_port" `Quick test_d_port;
        Alcotest.test_case "d_host" `Quick test_d_host;
        Alcotest.test_case "d_dst" `Quick test_d_dst_components;
        Alcotest.test_case "destination-only ablation" `Quick test_destination_only_ignores_content;
        Alcotest.test_case "content-only ablation" `Quick test_content_only_ignores_destination;
        Alcotest.test_case "module discrimination" `Quick test_d_pkt_discrimination;
        Alcotest.test_case "trigram metric option" `Quick test_trigram_metric_option;
        Alcotest.test_case "max_possible" `Quick test_max_possible;
        Alcotest.test_case "matrix builder" `Quick test_matrix_builder;
        qtest prop_d_pkt_symmetric;
      ] );
    ( "core.payload_check",
      [
        Alcotest.test_case "scan" `Quick test_payload_scan;
        Alcotest.test_case "cookie and body scanned" `Quick test_payload_scan_in_cookie_and_body;
        Alcotest.test_case "split" `Quick test_payload_split;
        Alcotest.test_case "empty needle rejected" `Quick test_payload_empty_needle;
        Alcotest.test_case "digest case folding" `Quick test_payload_digest_case;
        Alcotest.test_case "normalize recovers re-encoded leak" `Quick
          test_payload_normalize_recovers;
      ] );
    ( "core.signature",
      [
        Alcotest.test_case "make validation" `Quick test_signature_make_validation;
        Alcotest.test_case "conjunction matching" `Quick test_signature_matching;
        Alcotest.test_case "ordered matching" `Quick test_signature_ordered;
        Alcotest.test_case "ordered overlap" `Quick test_signature_ordered_overlap;
        Alcotest.test_case "boilerplate" `Quick test_boilerplate;
        Alcotest.test_case "specificity" `Quick test_specificity;
      ] );
    ( "core.siggen",
      [
        Alcotest.test_case "two groups" `Quick test_siggen_two_groups;
        Alcotest.test_case "empty sample" `Quick test_siggen_empty_sample;
        Alcotest.test_case "cut by count" `Quick test_siggen_cut_count;
        Alcotest.test_case "every merge" `Quick test_siggen_every_merge;
        Alcotest.test_case "rejects degenerate" `Quick test_siggen_rejects_degenerate;
        Alcotest.test_case "sketch single bucket identical" `Quick
          test_siggen_sketch_single_bucket_identical;
        Alcotest.test_case "sketch two-group parity" `Quick
          test_siggen_sketch_two_groups_parity;
        Alcotest.test_case "sketch jobs equivalence" `Quick
          test_siggen_sketch_jobs_equivalence;
        Alcotest.test_case "partitional algorithm" `Quick test_siggen_partitional_algorithm;
      ] );
    ( "core.detector",
      [
        Alcotest.test_case "basics" `Quick test_detector_basics;
        Alcotest.test_case "all matches" `Quick test_detector_all_matches;
        Alcotest.test_case "stream: matches across fragment seams" `Quick
          test_stream_flow_matches_across_seams;
        Alcotest.test_case "stream: chunked body without reassembly" `Quick
          test_stream_chunked_body;
        Alcotest.test_case "stream: detect_batch equals bitmap" `Quick
          test_stream_detect_batch_equals_bitmap;
        qtest prop_stream_split_equals_detect;
        Alcotest.test_case "normalized detection" `Quick
          test_detector_normalize_reencoded;
      ] );
    ( "core.metrics",
      [
        Alcotest.test_case "paper formulas" `Quick test_metrics_paper_formulas;
        Alcotest.test_case "TP+FN=1" `Quick test_metrics_tp_fn_complementary;
        Alcotest.test_case "validation" `Quick test_metrics_validation;
        Alcotest.test_case "table row" `Quick test_metrics_row;
      ] );
    ( "core.pipeline",
      [
        Alcotest.test_case "end to end" `Quick test_pipeline_end_to_end;
        Alcotest.test_case "caps N" `Quick test_pipeline_caps_n;
        Alcotest.test_case "normalize off is byte-identical" `Quick
          test_pipeline_normalize_off_identity;
        Alcotest.test_case "sweep" `Quick test_pipeline_sweep;
        prop_pipeline_counts_consistent;
      ] );
  ]
