(* Tests for Leakdetect_http: headers, cookies, requests, wire codec,
   packets, trace serialization. *)

open Leakdetect_http

let qtest = QCheck_alcotest.to_alcotest

(* --- Headers --- *)

let test_headers_case_insensitive () =
  let h = Headers.of_list [ ("Host", "a.example"); ("Cookie", "k=v") ] in
  Alcotest.(check (option string)) "exact" (Some "a.example") (Headers.get h "Host");
  Alcotest.(check (option string)) "lower" (Some "a.example") (Headers.get h "host");
  Alcotest.(check (option string)) "upper" (Some "k=v") (Headers.get h "COOKIE");
  Alcotest.(check bool) "mem" true (Headers.mem h "hOsT");
  Alcotest.(check (option string)) "absent" None (Headers.get h "Accept")

let test_headers_order_preserved () =
  let h = Headers.empty in
  let h = Headers.add h "B" "2" in
  let h = Headers.add h "A" "1" in
  Alcotest.(check (list (pair string string))) "insertion order"
    [ ("B", "2"); ("A", "1") ]
    (Headers.to_list h)

let test_headers_replace_remove () =
  let h = Headers.of_list [ ("X", "1"); ("Y", "2"); ("x", "3") ] in
  let r = Headers.replace h "x" "9" in
  Alcotest.(check (list string)) "replace collapses duplicates" [ "9" ] (Headers.get_all r "X");
  let d = Headers.remove h "X" in
  Alcotest.(check int) "remove drops all spellings" 1 (Headers.length d);
  let added = Headers.replace Headers.empty "New" "v" in
  Alcotest.(check (option string)) "replace on absent adds" (Some "v") (Headers.get added "new")

(* --- Cookie --- *)

let test_cookie_parse () =
  Alcotest.(check (list (pair string string))) "two pairs"
    [ ("a", "1"); ("b", "2") ]
    (Cookie.parse "a=1; b=2");
  Alcotest.(check (list (pair string string))) "flag without value" [ ("secure", "") ]
    (Cookie.parse "secure");
  Alcotest.(check (list (pair string string))) "empty" [] (Cookie.parse "");
  Alcotest.(check (option string)) "get" (Some "2") (Cookie.get "a=1; b=2" "b")

let test_cookie_roundtrip () =
  let pairs = [ ("session", "abc123"); ("uid", "42") ] in
  Alcotest.(check (list (pair string string))) "roundtrip" pairs
    (Cookie.parse (Cookie.to_string pairs))

(* --- Request + Wire --- *)

let sample_request () =
  Request.make
    ~headers:(Headers.of_list [ ("Host", "r.admob.com"); ("Cookie", "s=1") ])
    ~body:"" Request.GET "/ad?x=1&y=2"

let test_request_accessors () =
  let r = sample_request () in
  Alcotest.(check string) "request line" "GET /ad?x=1&y=2 HTTP/1.1" (Request.request_line r);
  Alcotest.(check string) "cookie" "s=1" (Request.cookie r);
  Alcotest.(check (option string)) "host" (Some "r.admob.com") (Request.host r);
  Alcotest.(check (list (pair string string))) "query" [ ("x", "1"); ("y", "2") ]
    (Request.query_params r)

let test_wire_print () =
  let out = Wire.print (sample_request ()) in
  Alcotest.(check bool) "request line first" true
    (String.length out > 24 && String.sub out 0 24 = "GET /ad?x=1&y=2 HTTP/1.1");
  Alcotest.(check bool) "blank line" true
    (Leakdetect_text.Search.contains ~needle:"\r\n\r\n" out)

let test_wire_content_length () =
  let r = Request.make ~body:"a=1" Request.POST "/submit" in
  let out = Wire.print r in
  Alcotest.(check bool) "adds content-length" true
    (Leakdetect_text.Search.contains ~needle:"Content-Length: 3" out)

let test_wire_parse_roundtrip () =
  let r =
    Request.make
      ~headers:(Headers.of_list [ ("Host", "x.jp"); ("User-Agent", "t/1.0") ])
      ~body:"k=v&l=w" Request.POST "/path"
  in
  match Wire.parse (Wire.print r) with
  | Error e -> Alcotest.failf "parse failed: %s" (Wire.error_to_string e)
  | Ok parsed ->
    Alcotest.(check string) "method+target" (Request.request_line r) (Request.request_line parsed);
    Alcotest.(check string) "body" r.Request.body parsed.Request.body;
    Alcotest.(check (option string)) "host kept" (Some "x.jp") (Request.host parsed)

let test_wire_parse_errors () =
  let is_err s = match Wire.parse s with Error _ -> true | Ok _ -> false in
  Alcotest.(check bool) "empty" true (is_err "");
  Alcotest.(check bool) "bad method" true (is_err "PUT / HTTP/1.1\r\n\r\n");
  Alcotest.(check bool) "bad request line" true (is_err "GEThello\r\n\r\n");
  Alcotest.(check bool) "bad header" true (is_err "GET / HTTP/1.1\r\nnocolon\r\n\r\n")

let test_wire_parse_body_with_separator () =
  (* A body containing CRLFCRLF must survive. *)
  let r = Request.make ~body:"x\r\n\r\ny" Request.POST "/p" in
  match Wire.parse (Wire.print r) with
  | Ok parsed -> Alcotest.(check string) "body intact" "x\r\n\r\ny" parsed.Request.body
  | Error e -> Alcotest.failf "parse failed: %s" (Wire.error_to_string e)

let chunked_raw ?(te = "chunked") body =
  "POST /upload HTTP/1.1\r\nHost: x.jp\r\nTransfer-Encoding: " ^ te ^ "\r\n\r\n"
  ^ body

let test_wire_chunked_reassembly () =
  let raw = chunked_raw "5\r\nhello\r\n6;ext=1\r\n world\r\n0\r\n\r\n" in
  match Wire.parse raw with
  | Error e -> Alcotest.failf "parse failed: %s" (Wire.error_to_string e)
  | Ok parsed ->
    Alcotest.(check string) "body reassembled" "hello world" parsed.Request.body;
    Alcotest.(check (option string)) "transfer-encoding consumed" None
      (Headers.get parsed.Request.headers "Transfer-Encoding");
    Alcotest.(check (option string)) "content-length rewritten" (Some "11")
      (Headers.get parsed.Request.headers "Content-Length")

let test_wire_chunked_trailers_ignored () =
  let raw = chunked_raw "3\r\nabc\r\n0\r\nX-Trailer: 1\r\n\r\n" in
  match Wire.parse raw with
  | Error e -> Alcotest.failf "parse failed: %s" (Wire.error_to_string e)
  | Ok parsed -> Alcotest.(check string) "body" "abc" parsed.Request.body

let test_wire_chunked_last_coding_only () =
  (* Transfer-Encoding: gzip means the body is not chunk-framed; it must
     pass through untouched. *)
  let raw = chunked_raw ~te:"gzip" "not-chunks" in
  match Wire.parse raw with
  | Error e -> Alcotest.failf "parse failed: %s" (Wire.error_to_string e)
  | Ok parsed ->
    Alcotest.(check string) "body untouched" "not-chunks" parsed.Request.body;
    Alcotest.(check (option string)) "header kept" (Some "gzip")
      (Headers.get parsed.Request.headers "Transfer-Encoding")

let test_wire_chunked_malformed () =
  let is_syntax s =
    match Wire.parse s with Error (Wire.Syntax _) -> true | _ -> false
  in
  Alcotest.(check bool) "bad chunk-size line" true
    (is_syntax (chunked_raw "zz\r\nhello\r\n0\r\n\r\n"));
  Alcotest.(check bool) "truncated chunk data" true
    (is_syntax (chunked_raw "5\r\nhel"));
  Alcotest.(check bool) "missing terminator" true
    (is_syntax (chunked_raw "3\r\nabcXX0\r\n\r\n"));
  Alcotest.(check bool) "no final chunk" true (is_syntax (chunked_raw "3\r\nabc\r\n"))

let test_wire_chunked_max_body () =
  (* The limit binds the reassembled body, not the framed wire form: four
     5-byte chunks decode to 20 bytes against a 16-byte budget, even though
     any single chunk fits. *)
  let limits = { Wire.default_limits with Wire.max_body = 16 } in
  let body =
    String.concat "" (List.init 4 (fun _ -> "5\r\naaaaa\r\n")) ^ "0\r\n\r\n"
  in
  (match Wire.parse ~limits (chunked_raw body) with
  | Error (Wire.Body_too_large n) ->
    Alcotest.(check bool) "reports decoded size" true (n > 16)
  | Ok _ | Error _ -> Alcotest.fail "expected Body_too_large");
  (* A lying chunk size must not bypass the budget either. *)
  match Wire.parse ~limits (chunked_raw "ffffff\r\nshort\r\n0\r\n\r\n") with
  | Error (Wire.Body_too_large _) -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected Body_too_large for huge declared size"

(* --- Packet --- *)

let sample_packet () =
  Packet.v
    ~ip:(Option.get (Leakdetect_net.Ipv4.of_string "74.125.1.2"))
    ~port:80 ~host:"r.admob.com" ~request_line:"GET /ad HTTP/1.1" ~cookie:"s=1"
    ~body:""

let test_packet_content_string () =
  let p = sample_packet () in
  Alcotest.(check string) "joined with newlines" "GET /ad HTTP/1.1\ns=1\n"
    (Packet.content_string p)

let test_packet_make_from_request () =
  let dst =
    { Packet.ip = Option.get (Leakdetect_net.Ipv4.of_string "1.2.3.4"); port = 80; host = "h.jp" }
  in
  let p = Packet.make ~dst ~request:(sample_request ()) in
  Alcotest.(check string) "request line" "GET /ad?x=1&y=2 HTTP/1.1"
    p.Packet.content.Packet.request_line;
  Alcotest.(check string) "cookie pulled from headers" "s=1" p.Packet.content.Packet.cookie

let test_packet_compare_dst () =
  let d ip port host =
    { Packet.ip = Option.get (Leakdetect_net.Ipv4.of_string ip); port; host }
  in
  Alcotest.(check bool) "equal" true (Packet.compare_dst (d "1.1.1.1" 80 "a") (d "1.1.1.1" 80 "a") = 0);
  Alcotest.(check bool) "ip dominates" true (Packet.compare_dst (d "1.1.1.1" 99 "z") (d "2.1.1.1" 80 "a") < 0)

(* --- Trace --- *)

let test_trace_escape_roundtrip () =
  let tricky = "a\tb\nc\\d\re" in
  Alcotest.(check (option string)) "roundtrip" (Some tricky)
    (Trace.unescape_field (Trace.escape_field tricky))

let prop_trace_line_roundtrip =
  let field_gen = QCheck.Gen.(string_size ~gen:(map Char.chr (int_range 32 126)) (0 -- 40)) in
  QCheck.Test.make ~name:"trace record line roundtrip" ~count:300
    (QCheck.make QCheck.Gen.(triple field_gen field_gen (int_bound 5000)))
    (fun (rline, body, app_id) ->
      let record =
        {
          Trace.packet =
            Packet.v
              ~ip:(Leakdetect_net.Ipv4.of_int 12345)
              ~port:80 ~host:"h.example.jp" ~request_line:rline ~cookie:"c=1"
              ~body;
          app_id;
          labels = [ "imei"; "carrier" ];
        }
      in
      match Trace.record_of_line (Trace.record_to_line record) with
      | Ok r ->
        r.Trace.app_id = record.Trace.app_id
        && r.Trace.labels = record.Trace.labels
        && Packet.content_string r.Trace.packet = Packet.content_string record.Trace.packet
      | Error _ -> false)

let test_trace_bad_lines () =
  let is_err l = match Trace.record_of_line l with Error _ -> true | Ok _ -> false in
  Alcotest.(check bool) "wrong arity" true (is_err "a\tb");
  Alcotest.(check bool) "bad ip" true (is_err "1\tnotip\t80\th\trl\tc\tb\t");
  Alcotest.(check bool) "bad port" true (is_err "1\t1.2.3.4\tx\th\trl\tc\tb\t");
  Alcotest.(check bool) "bad app id" true (is_err "x\t1.2.3.4\t80\th\trl\tc\tb\t")

let test_trace_save_load () =
  let records =
    List.init 5 (fun i ->
        {
          Trace.packet =
            Packet.v ~ip:(Leakdetect_net.Ipv4.of_int (i * 1000)) ~port:80
              ~host:(Printf.sprintf "h%d.jp" i)
              ~request_line:(Printf.sprintf "GET /%d HTTP/1.1" i)
              ~cookie:"" ~body:(if i mod 2 = 0 then "x\ty" else "");
          app_id = i;
          labels = (if i = 0 then [ "imei" ] else []);
        })
  in
  let path = Filename.temp_file "leakdetect_test" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Trace.save path records;
      match Trace.load path with
      | Error e -> Alcotest.failf "load failed: %s" e
      | Ok (loaded, _) ->
        Alcotest.(check int) "count" 5 (List.length loaded);
        List.iter2
          (fun a b ->
            Alcotest.(check string) "content"
              (Packet.content_string a.Trace.packet)
              (Packet.content_string b.Trace.packet);
            Alcotest.(check (list string)) "labels" a.Trace.labels b.Trace.labels)
          records loaded)

(* --- Trace_binary --- *)

let sample_records () =
  List.init 7 (fun i ->
      {
        Trace.packet =
          Packet.v ~ip:(Leakdetect_net.Ipv4.of_int (i * 99991)) ~port:(80 + i)
            ~host:(Printf.sprintf "h%d.example.jp" i)
            ~request_line:(Printf.sprintf "GET /p/%d?x=%d HTTP/1.1" i (i * i))
            ~cookie:(if i mod 2 = 0 then Printf.sprintf "s=%d" i else "")
            ~body:(if i mod 3 = 0 then String.make i '\xff' else "");
        app_id = i * 13;
        labels = (if i = 2 then [ "imei"; "carrier" ] else []);
      })

let test_binary_roundtrip () =
  let records = sample_records () in
  match Trace_binary.decode (Trace_binary.encode records) with
  | Error e -> Alcotest.failf "decode: %s" e
  | Ok (loaded, _) ->
    Alcotest.(check int) "count" (List.length records) (List.length loaded);
    List.iter2
      (fun a b ->
        Alcotest.(check int) "app id" a.Trace.app_id b.Trace.app_id;
        Alcotest.(check (list string)) "labels" a.Trace.labels b.Trace.labels;
        Alcotest.(check string) "content"
          (Packet.content_string a.Trace.packet)
          (Packet.content_string b.Trace.packet);
        Alcotest.(check int) "port" a.Trace.packet.Packet.dst.Packet.port
          b.Trace.packet.Packet.dst.Packet.port)
      records loaded

let test_binary_file_roundtrip () =
  let records = sample_records () in
  let path = Filename.temp_file "leakdetect_bin" ".ldtb" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Trace_binary.save path records;
      match Trace_binary.load path with
      | Error e -> Alcotest.failf "load: %s" e
      | Ok (loaded, _) -> Alcotest.(check int) "count" 7 (List.length loaded))

let test_binary_corruption () =
  let encoded = Trace_binary.encode (sample_records ()) in
  let is_err s = match Trace_binary.decode s with Error _ -> true | Ok _ -> false in
  Alcotest.(check bool) "truncated" true
    (is_err (String.sub encoded 0 (String.length encoded - 3)));
  Alcotest.(check bool) "bad magic" true (is_err ("XXXX" ^ String.sub encoded 4 (String.length encoded - 4)));
  Alcotest.(check bool) "trailing garbage" true (is_err (encoded ^ "z"));
  Alcotest.(check bool) "empty" true (is_err "")

let test_binary_empty_list () =
  match Trace_binary.decode (Trace_binary.encode []) with
  | Ok ([], _) -> ()
  | Ok _ -> Alcotest.fail "expected empty"
  | Error e -> Alcotest.failf "decode: %s" e

let prop_binary_roundtrip =
  let field = QCheck.Gen.(string_size ~gen:(map Char.chr (int_range 0 255)) (0 -- 30)) in
  QCheck.Test.make ~name:"binary trace roundtrip (arbitrary bytes)" ~count:200
    (QCheck.make QCheck.Gen.(triple field field (int_bound 100000)))
    (fun (host_raw, body, app_id) ->
      let record =
        {
          Trace.packet =
            Packet.v ~ip:(Leakdetect_net.Ipv4.of_int 77) ~port:80
              ~host:host_raw ~request_line:"GET / HTTP/1.1" ~cookie:"" ~body;
          app_id;
          labels = [ "imsi" ];
        }
      in
      match Trace_binary.decode (Trace_binary.encode [ record ]) with
      | Ok ([ r ], _) ->
        r.Trace.app_id = app_id
        && Packet.content_string r.Trace.packet = Packet.content_string record.Trace.packet
        && r.Trace.packet.Packet.dst.Packet.host = host_raw
      | _ -> false)

let test_trace_fold_streaming () =
  let records =
    List.init 10 (fun i ->
        {
          Trace.packet =
            Packet.v ~ip:(Leakdetect_net.Ipv4.of_int i) ~port:80 ~host:"h.jp"
              ~request_line:"GET / HTTP/1.1" ~cookie:"" ~body:"";
          app_id = i;
          labels = (if i mod 2 = 0 then [ "imei" ] else []);
        })
  in
  let path = Filename.temp_file "leakdetect_fold" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Trace.save path records;
      (match Trace.fold path ~init:0 ~f:(fun acc r -> acc + r.Trace.app_id) with
      | Ok (sum, skips) ->
        Alcotest.(check int) "fold sums app ids" 45 sum;
        Alcotest.(check int) "nothing skipped" 0 skips.Trace.skipped
      | Error e -> Alcotest.failf "fold: %s" e);
      let count = ref 0 in
      (match Trace.iter path ~f:(fun r -> if r.Trace.labels <> [] then incr count) with
      | Ok _ -> Alcotest.(check int) "iter counts sensitive" 5 !count
      | Error e -> Alcotest.failf "iter: %s" e))

let test_trace_fold_stops_on_error () =
  let path = Filename.temp_file "leakdetect_foldbad" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "not a record\n";
      close_out oc;
      match Trace.fold path ~init:0 ~f:(fun acc _ -> acc + 1) with
      | Ok _ -> Alcotest.fail "expected error"
      | Error e ->
        Alcotest.(check bool) "line number reported" true
          (Leakdetect_text.Search.contains ~needle:"line 1" e))

(* --- Response --- *)

let test_response_print_parse () =
  let r =
    Response.make
      ~headers:(Headers.of_list [ ("X-Signature-Version", "3") ])
      ~body:"0\tconjunction\t2\ttok" 200
  in
  Alcotest.(check string) "status line" "HTTP/1.1 200 OK" (Response.status_line r);
  match Response.parse (Response.print r) with
  | Error e -> Alcotest.failf "parse: %s" (Wire.error_to_string e)
  | Ok parsed ->
    Alcotest.(check int) "status" 200 parsed.Response.status;
    Alcotest.(check (option string)) "header kept" (Some "3")
      (Headers.get parsed.Response.headers "x-signature-version");
    Alcotest.(check string) "body" r.Response.body parsed.Response.body;
    Alcotest.(check bool) "content-length added" true
      (Headers.mem parsed.Response.headers "Content-Length")

let test_response_reasons () =
  Alcotest.(check string) "304" "Not Modified" (Response.reason_for 304);
  Alcotest.(check string) "unknown" "Unknown" (Response.reason_for 299)

let test_response_parse_errors () =
  let is_err s = match Response.parse s with Error _ -> true | Ok _ -> false in
  Alcotest.(check bool) "empty" true (is_err "");
  Alcotest.(check bool) "bad code" true (is_err "HTTP/1.1 abc OK\r\n\r\n");
  Alcotest.(check bool) "bad header" true (is_err "HTTP/1.1 200 OK\r\nnocolon\r\n\r\n")

(* --- Trace_compressed --- *)

let test_compressed_roundtrip () =
  let records = sample_records () in
  match Trace_compressed.decode (Trace_compressed.encode records) with
  | Error e -> Alcotest.failf "decode: %s" e
  | Ok (loaded, _) ->
    Alcotest.(check int) "count" (List.length records) (List.length loaded);
    List.iter2
      (fun a b ->
        Alcotest.(check string) "content"
          (Packet.content_string a.Trace.packet)
          (Packet.content_string b.Trace.packet))
      records loaded

let test_compressed_file_and_size () =
  (* Repetitive records compress well under the in-repo LZ77. *)
  let records =
    List.init 300 (fun i ->
        {
          Trace.packet =
            Packet.v ~ip:(Leakdetect_net.Ipv4.of_int 1234) ~port:80
              ~host:"r.ad-maker.info"
              ~request_line:
                (Printf.sprintf
                   "GET /ad/sdk/img?aid=jp.co.app%d&imei=355021930123456&size=320x50 HTTP/1.1"
                   i)
              ~cookie:"" ~body:"";
          app_id = i;
          labels = [ "imei" ];
        })
  in
  let plain = Trace_binary.encode records in
  let packed = Trace_compressed.encode records in
  Alcotest.(check bool) "compresses at least 3x" true
    (String.length packed * 3 < String.length plain);
  let path = Filename.temp_file "leakdetect_z" ".ldtz" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Trace_compressed.save path records;
      match Trace_compressed.load path with
      | Ok (loaded, _) -> Alcotest.(check int) "file roundtrip" 300 (List.length loaded)
      | Error e -> Alcotest.failf "load: %s" e)

let test_compressed_corruption () =
  let is_err s = match Trace_compressed.decode s with Error _ -> true | Ok _ -> false in
  Alcotest.(check bool) "bad magic" true (is_err "NOPE1234");
  Alcotest.(check bool) "empty" true (is_err "");
  let ok = Trace_compressed.encode (sample_records ()) in
  Alcotest.(check bool) "truncated payload" true
    (is_err (String.sub ok 0 (String.length ok - 5)))

let suite =
  [
    ( "http.headers",
      [
        Alcotest.test_case "case insensitive" `Quick test_headers_case_insensitive;
        Alcotest.test_case "order preserved" `Quick test_headers_order_preserved;
        Alcotest.test_case "replace/remove" `Quick test_headers_replace_remove;
      ] );
    ( "http.cookie",
      [
        Alcotest.test_case "parse" `Quick test_cookie_parse;
        Alcotest.test_case "roundtrip" `Quick test_cookie_roundtrip;
      ] );
    ( "http.wire",
      [
        Alcotest.test_case "request accessors" `Quick test_request_accessors;
        Alcotest.test_case "print" `Quick test_wire_print;
        Alcotest.test_case "content-length" `Quick test_wire_content_length;
        Alcotest.test_case "parse roundtrip" `Quick test_wire_parse_roundtrip;
        Alcotest.test_case "parse errors" `Quick test_wire_parse_errors;
        Alcotest.test_case "body with CRLFCRLF" `Quick test_wire_parse_body_with_separator;
        Alcotest.test_case "chunked reassembly" `Quick test_wire_chunked_reassembly;
        Alcotest.test_case "chunked trailers ignored" `Quick
          test_wire_chunked_trailers_ignored;
        Alcotest.test_case "chunked last coding only" `Quick
          test_wire_chunked_last_coding_only;
        Alcotest.test_case "chunked malformed" `Quick test_wire_chunked_malformed;
        Alcotest.test_case "chunked max_body" `Quick test_wire_chunked_max_body;
      ] );
    ( "http.packet",
      [
        Alcotest.test_case "content string" `Quick test_packet_content_string;
        Alcotest.test_case "make from request" `Quick test_packet_make_from_request;
        Alcotest.test_case "compare destinations" `Quick test_packet_compare_dst;
      ] );
    ( "http.trace",
      [
        Alcotest.test_case "escape roundtrip" `Quick test_trace_escape_roundtrip;
        Alcotest.test_case "bad lines" `Quick test_trace_bad_lines;
        Alcotest.test_case "save/load" `Quick test_trace_save_load;
        Alcotest.test_case "streaming fold/iter" `Quick test_trace_fold_streaming;
        Alcotest.test_case "fold stops on error" `Quick test_trace_fold_stops_on_error;
        qtest prop_trace_line_roundtrip;
      ] );
    ( "http.response",
      [
        Alcotest.test_case "print/parse" `Quick test_response_print_parse;
        Alcotest.test_case "reasons" `Quick test_response_reasons;
        Alcotest.test_case "parse errors" `Quick test_response_parse_errors;
      ] );
    ( "http.trace_compressed",
      [
        Alcotest.test_case "roundtrip" `Quick test_compressed_roundtrip;
        Alcotest.test_case "file + compression ratio" `Quick test_compressed_file_and_size;
        Alcotest.test_case "corruption" `Quick test_compressed_corruption;
      ] );
    ( "http.trace_binary",
      [
        Alcotest.test_case "roundtrip" `Quick test_binary_roundtrip;
        Alcotest.test_case "file roundtrip" `Quick test_binary_file_roundtrip;
        Alcotest.test_case "corruption detected" `Quick test_binary_corruption;
        Alcotest.test_case "empty list" `Quick test_binary_empty_list;
        qtest prop_binary_roundtrip;
      ] );
  ]
