(* Tests for Leakdetect_text: search, edit distance, LCS, token extraction. *)

open Leakdetect_text

let qtest = QCheck_alcotest.to_alcotest

(* --- Search --- *)

let naive_index ~needle hay =
  let n = String.length hay and m = String.length needle in
  if m = 0 then Some 0
  else
    let rec loop i =
      if i + m > n then None
      else if String.sub hay i m = needle then Some i
      else loop (i + 1)
    in
    loop 0

let test_search_basic () =
  Alcotest.(check (option int)) "found" (Some 2) (Search.index ~needle:"cd" "abcdcd");
  Alcotest.(check (option int)) "absent" None (Search.index ~needle:"xy" "abcd");
  Alcotest.(check (option int)) "from" (Some 4) (Search.index ~from:3 ~needle:"cd" "abcdcd");
  Alcotest.(check (option int)) "empty needle" (Some 1) (Search.index ~from:1 ~needle:"" "ab");
  Alcotest.(check (option int)) "needle at end" (Some 4) (Search.index ~needle:"ef" "abcdef")

let test_search_overlapping () =
  Alcotest.(check int) "non-overlapping count" 2 (Search.count_occurrences ~needle:"aa" "aaaa");
  Alcotest.(check int) "zero" 0 (Search.count_occurrences ~needle:"zz" "aaaa");
  Alcotest.(check int) "empty needle" 0 (Search.count_occurrences ~needle:"" "aaaa")

let test_failure_function () =
  Alcotest.(check (array int)) "aabaa" [| 0; 1; 0; 1; 2 |] (Search.failure_function "aabaa");
  Alcotest.(check (array int)) "abcd" [| 0; 0; 0; 0 |] (Search.failure_function "abcd")

let prop_search_matches_naive =
  let gen =
    QCheck.Gen.(
      pair
        (string_size ~gen:(oneofl [ 'a'; 'b'; 'c' ]) (0 -- 8))
        (string_size ~gen:(oneofl [ 'a'; 'b'; 'c' ]) (0 -- 40)))
  in
  QCheck.Test.make ~name:"KMP agrees with naive search" ~count:2000
    (QCheck.make gen) (fun (needle, hay) ->
      Search.index ~needle hay = naive_index ~needle hay)

let test_compiled_reuse () =
  let c = Search.compile "ab" in
  Alcotest.(check bool) "hit" true (Search.matches c "xxab");
  Alcotest.(check bool) "miss" false (Search.matches c "xxa");
  Alcotest.(check string) "needle kept" "ab" (Search.compiled_needle c)

(* --- Edit distance --- *)

let test_edit_known () =
  Alcotest.(check int) "kitten/sitting" 3 (Edit_distance.distance "kitten" "sitting");
  Alcotest.(check int) "identical" 0 (Edit_distance.distance "abc" "abc");
  Alcotest.(check int) "to empty" 3 (Edit_distance.distance "abc" "");
  Alcotest.(check int) "insert" 1 (Edit_distance.distance "abc" "abdc")

let test_edit_normalized () =
  Alcotest.(check (float 1e-9)) "both empty" 0. (Edit_distance.normalized "" "");
  Alcotest.(check (float 1e-9)) "disjoint" 1. (Edit_distance.normalized "aaa" "bbb");
  let v = Edit_distance.normalized "admob.com" "admob.org" in
  Alcotest.(check bool) "similar hosts close" true (v > 0. && v < 0.5)

let prop_edit_symmetry =
  let gen = QCheck.Gen.(pair (string_size (0 -- 20)) (string_size (0 -- 20))) in
  QCheck.Test.make ~name:"edit distance symmetry" ~count:500 (QCheck.make gen)
    (fun (a, b) -> Edit_distance.distance a b = Edit_distance.distance b a)

let prop_edit_identity =
  QCheck.Test.make ~name:"edit distance identity" ~count:300
    QCheck.(string_of_size Gen.(0 -- 30))
    (fun s -> Edit_distance.distance s s = 0)

let prop_edit_triangle =
  let g = QCheck.Gen.string_size ~gen:(QCheck.Gen.oneofl [ 'a'; 'b' ]) QCheck.Gen.(0 -- 12) in
  QCheck.Test.make ~name:"edit distance triangle inequality" ~count:500
    (QCheck.make QCheck.Gen.(triple g g g))
    (fun (a, b, c) ->
      Edit_distance.distance a c
      <= Edit_distance.distance a b + Edit_distance.distance b c)

let prop_edit_bounded_agrees =
  let g = QCheck.Gen.string_size ~gen:(QCheck.Gen.oneofl [ 'a'; 'b'; 'c' ]) QCheck.Gen.(0 -- 15) in
  QCheck.Test.make ~name:"banded distance agrees under cutoff" ~count:500
    (QCheck.make QCheck.Gen.(pair g g))
    (fun (a, b) ->
      let full = Edit_distance.distance a b in
      match Edit_distance.distance_bounded ~cutoff:20 a b with
      | Some d -> d = full
      | None -> full > 20)

let test_edit_bounded_cutoff () =
  Alcotest.(check (option int)) "within cutoff" (Some 3)
    (Edit_distance.distance_bounded ~cutoff:3 "kitten" "sitting");
  Alcotest.(check (option int)) "beyond cutoff" None
    (Edit_distance.distance_bounded ~cutoff:2 "kitten" "sitting")

(* --- Lcs --- *)

let test_lcs_pair () =
  (match Lcs.pair "xabcy" "zabcw" with
  | Some (i, j, len) ->
    Alcotest.(check string) "substring a" "abc" (String.sub "xabcy" i len);
    Alcotest.(check int) "pos b" 1 j
  | None -> Alcotest.fail "expected a common substring");
  Alcotest.(check (option (triple int int int))) "disjoint" None (Lcs.pair "abc" "xyz");
  Alcotest.(check string) "pair_string" "abc" (Lcs.pair_string "xabcy" "abc")

let brute_lcs_of_set strings =
  match strings with
  | [] -> ""
  | first :: rest ->
    let best = ref "" in
    let n = String.length first in
    for i = 0 to n - 1 do
      for len = 1 to n - i do
        let cand = String.sub first i len in
        if
          len > String.length !best
          && List.for_all (fun s -> Search.contains ~needle:cand s) rest
        then best := cand
      done
    done;
    !best

let prop_lcs_set_matches_brute =
  let g = QCheck.Gen.string_size ~gen:(QCheck.Gen.oneofl [ 'a'; 'b' ]) QCheck.Gen.(1 -- 12) in
  QCheck.Test.make ~name:"set LCS length agrees with brute force" ~count:300
    (QCheck.make QCheck.Gen.(list_size (1 -- 4) g))
    (fun strings ->
      String.length (Lcs.of_set strings)
      = String.length (brute_lcs_of_set strings))

let prop_lcs_set_is_common =
  let g = QCheck.Gen.string_size ~gen:(QCheck.Gen.oneofl [ 'a'; 'b'; 'c' ]) QCheck.Gen.(1 -- 20) in
  QCheck.Test.make ~name:"set LCS occurs in every string" ~count:300
    (QCheck.make QCheck.Gen.(list_size (1 -- 5) g))
    (fun strings ->
      let t = Lcs.of_set strings in
      t = "" || List.for_all (fun s -> Search.contains ~needle:t s) strings)

let test_lcs_set_cases () =
  Alcotest.(check string) "empty list" "" (Lcs.of_set []);
  Alcotest.(check string) "contains empty string" "" (Lcs.of_set [ "abc"; "" ]);
  Alcotest.(check string) "single" "abc" (Lcs.of_set [ "abc" ]);
  Alcotest.(check int) "three strings" 4
    (String.length (Lcs.of_set [ "xx_imei=123_a"; "yy_imei=123"; "_imei=123zz" ]) |> fun l ->
     if l >= 4 then 4 else l)

(* --- Suffix_automaton --- *)

let test_sa_substrings () =
  let sa = Suffix_automaton.build "abcbc" in
  List.iter
    (fun (s, expected) ->
      Alcotest.(check bool) (Printf.sprintf "%S" s) expected
        (Suffix_automaton.is_substring sa s))
    [ ("", true); ("a", true); ("bcbc", true); ("abcbc", true); ("cb", true);
      ("ca", false); ("abcbcb", false); ("d", false) ]

let test_sa_distinct_count () =
  (* "abcbc": substrings a,b,c,ab,bc,cb,abc,bcb,cbc,abcb,bcbc,abcbc = 12. *)
  Alcotest.(check int) "abcbc" 12
    (Suffix_automaton.count_distinct_substrings (Suffix_automaton.build "abcbc"));
  Alcotest.(check int) "aaaa" 4
    (Suffix_automaton.count_distinct_substrings (Suffix_automaton.build "aaaa"));
  Alcotest.(check int) "empty" 0
    (Suffix_automaton.count_distinct_substrings (Suffix_automaton.build ""))

let brute_distinct_count s =
  let seen = Hashtbl.create 64 in
  let n = String.length s in
  for i = 0 to n - 1 do
    for len = 1 to n - i do
      Hashtbl.replace seen (String.sub s i len) ()
    done
  done;
  Hashtbl.length seen

let prop_sa_distinct_matches_brute =
  let g = QCheck.Gen.string_size ~gen:(QCheck.Gen.oneofl [ 'a'; 'b'; 'c' ]) QCheck.Gen.(0 -- 14) in
  QCheck.Test.make ~name:"distinct substring count matches brute force" ~count:300
    (QCheck.make g) (fun s ->
      Suffix_automaton.count_distinct_substrings (Suffix_automaton.build s)
      = brute_distinct_count s)

let prop_sa_is_substring =
  let g = QCheck.Gen.string_size ~gen:(QCheck.Gen.oneofl [ 'a'; 'b' ]) QCheck.Gen.(0 -- 20) in
  QCheck.Test.make ~name:"is_substring agrees with search" ~count:500
    (QCheck.make QCheck.Gen.(pair g (string_size ~gen:(oneofl [ 'a'; 'b' ]) (0 -- 6))))
    (fun (hay, needle) ->
      Suffix_automaton.is_substring (Suffix_automaton.build hay) needle
      = Search.contains ~needle hay)

let prop_sa_lcs_matches_dp =
  let g = QCheck.Gen.string_size ~gen:(QCheck.Gen.oneofl [ 'a'; 'b'; 'c' ]) QCheck.Gen.(0 -- 25) in
  QCheck.Test.make ~name:"automaton LCS length matches DP" ~count:500
    (QCheck.make QCheck.Gen.(pair g g))
    (fun (a, b) ->
      let dp_len = match Lcs.pair a b with None -> 0 | Some (_, _, l) -> l in
      let s = Lcs.pair_string a b in
      String.length s = dp_len
      && (s = "" || (Search.contains ~needle:s a && Search.contains ~needle:s b)))

(* --- Trigram --- *)

let test_trigram_profile () =
  Alcotest.(check int) "abcd has 2 trigrams" 2 (Trigram.cardinality (Trigram.profile "abcd"));
  Alcotest.(check int) "aaaa has 1 distinct" 1 (Trigram.cardinality (Trigram.profile "aaaa"));
  Alcotest.(check int) "short string empty" 0 (Trigram.cardinality (Trigram.profile "ab"))

let test_trigram_distance_cases () =
  Alcotest.(check (float 1e-9)) "identical" 0. (Trigram.cosine_distance "abcdef" "abcdef");
  Alcotest.(check (float 1e-9)) "disjoint" 1. (Trigram.cosine_distance "aaaa" "bbbb");
  Alcotest.(check (float 1e-9)) "both empty" 0. (Trigram.cosine_distance "a" "b");
  Alcotest.(check (float 1e-9)) "one empty" 1. (Trigram.cosine_distance "a" "abcd")

let test_trigram_discrimination () =
  let a1 = "GET /ad?imei=355021930123456&size=320x50 HTTP/1.1" in
  let a2 = "GET /ad?imei=355021930123456&size=320x50&x=9 HTTP/1.1" in
  let b = "POST /aap.do HTTP/1.1" in
  Alcotest.(check bool) "similar below dissimilar" true
    (Trigram.cosine_distance a1 a2 < Trigram.cosine_distance a1 b)

let prop_trigram_bounds_and_symmetry =
  let g = QCheck.Gen.string_size QCheck.Gen.(0 -- 50) in
  QCheck.Test.make ~name:"trigram distance symmetric in [0,1]" ~count:300
    (QCheck.make QCheck.Gen.(pair g g))
    (fun (x, y) ->
      let d = Trigram.cosine_distance x y in
      d >= 0. && d <= 1. && Float.abs (d -. Trigram.cosine_distance y x) < 1e-12)

let test_trigram_cache_agrees () =
  let cache = Trigram.Cache.create () in
  let x = "GET /one HTTP/1.1" and y = "GET /two HTTP/1.1" in
  Alcotest.(check (float 1e-12)) "cache = direct"
    (Trigram.cosine_distance x y)
    (Trigram.Cache.distance cache x y);
  (* second call exercises the cached path *)
  Alcotest.(check (float 1e-12)) "stable" (Trigram.Cache.distance cache x y)
    (Trigram.Cache.distance cache x y)

(* --- Tokens --- *)

let test_tokens_extract_simple () =
  let tokens = Tokens.extract [ "GET /ad?imei=111&x=aa"; "GET /ad?imei=111&x=bb" ] in
  Alcotest.(check bool) "nonempty" true (tokens <> []);
  List.iter
    (fun t ->
      Alcotest.(check bool) "token in first" true
        (Search.contains ~needle:t "GET /ad?imei=111&x=aa"))
    tokens

let test_tokens_single_string () =
  Alcotest.(check (list string)) "whole string" [ "abcdef" ] (Tokens.extract [ "abcdef" ])

let test_tokens_empty () =
  Alcotest.(check (list string)) "no input" [] (Tokens.extract []);
  Alcotest.(check (list string)) "nothing shared" []
    (Tokens.extract [ "aaaa"; "bbbb" ])

let test_tokens_min_len () =
  Alcotest.(check (list string)) "short tokens dropped" []
    (Tokens.extract ~min_len:5 [ "xxab"; "yyab" ])

let prop_tokens_all_match =
  let g =
    QCheck.Gen.string_size ~gen:(QCheck.Gen.oneofl [ 'a'; 'b'; 'c'; '=' ]) QCheck.Gen.(1 -- 25)
  in
  QCheck.Test.make ~name:"every extracted token set matches its sources" ~count:200
    (QCheck.make QCheck.Gen.(list_size (1 -- 4) g))
    (fun strings ->
      let tokens = Tokens.extract strings in
      List.for_all (fun s -> Tokens.matches_all ~tokens s) strings)

let prop_tokens_ordered_match =
  let g =
    QCheck.Gen.string_size ~gen:(QCheck.Gen.oneofl [ 'a'; 'b'; 'c' ]) QCheck.Gen.(1 -- 20)
  in
  QCheck.Test.make ~name:"extracted tokens match sources in order" ~count:200
    (QCheck.make QCheck.Gen.(list_size (1 -- 4) g))
    (fun strings ->
      let tokens = Tokens.extract strings in
      List.for_all (fun s -> Tokens.matches_ordered ~tokens s) strings)

(* --- Aho_corasick --- *)

let test_ac_basic () =
  let ac = Aho_corasick.build [ "he"; "she"; "his"; "hers" ] in
  Alcotest.(check int) "pattern count" 4 (Aho_corasick.pattern_count ac);
  let m = Aho_corasick.matched_set ac "ushers" in
  Alcotest.(check (array bool)) "ushers matches he/she/hers" [| true; true; false; true |] m;
  Alcotest.(check bool) "any" true (Aho_corasick.matches_any ac "ushers");
  Alcotest.(check bool) "none" false (Aho_corasick.matches_any ac "zzz")

let test_ac_positions () =
  let ac = Aho_corasick.build [ "ab"; "b" ] in
  let hits = ref [] in
  Aho_corasick.iter_matches ac "abb" (fun id pos -> hits := (id, pos) :: !hits);
  let sorted = List.sort compare !hits in
  Alcotest.(check (list (pair int int))) "occurrences with end positions"
    [ (0, 2); (1, 2); (1, 3) ] sorted

let test_ac_duplicates_and_overlap () =
  let ac = Aho_corasick.build [ "aa"; "aa" ] in
  let m = Aho_corasick.matched_set ac "aaa" in
  Alcotest.(check (array bool)) "duplicate patterns both report" [| true; true |] m

let test_ac_empty_pattern () =
  Alcotest.check_raises "empty pattern"
    (Invalid_argument "Aho_corasick.build: empty pattern") (fun () ->
      ignore (Aho_corasick.build [ "a"; "" ]))

let prop_ac_agrees_with_kmp =
  let pat_gen = QCheck.Gen.(string_size ~gen:(oneofl [ 'a'; 'b'; 'c' ]) (1 -- 5)) in
  let text_gen = QCheck.Gen.(string_size ~gen:(oneofl [ 'a'; 'b'; 'c' ]) (0 -- 60)) in
  QCheck.Test.make ~name:"aho-corasick agrees with per-pattern KMP" ~count:500
    (QCheck.make QCheck.Gen.(pair (list_size (1 -- 8) pat_gen) text_gen))
    (fun (patterns, text) ->
      let ac = Aho_corasick.build patterns in
      let m = Aho_corasick.matched_set ac text in
      List.for_all2
        (fun pattern found -> Search.contains ~needle:pattern text = found)
        patterns (Array.to_list m))

(* --- resumable streaming scan --- *)

let test_ac_stream_boundary_spanning () =
  let ac = Aho_corasick.build [ "abc"; "bcd" ] in
  let st = Aho_corasick.Stream.create () in
  let hits = ref [] in
  let f id pos = hits := (id, pos) :: !hits in
  (* One byte per fragment: every match spans a fragment boundary. *)
  Aho_corasick.Stream.feed ac st "a" f;
  Aho_corasick.Stream.feed ac st "b" f;
  Aho_corasick.Stream.feed ac st "c" f;
  Aho_corasick.Stream.feed ac st "d" f;
  Alcotest.(check (list (pair int int))) "matches across 1-byte fragments"
    [ (0, 3); (1, 4) ]
    (List.sort compare !hits);
  Alcotest.(check int) "consumed counts all fragments" 4
    (Aho_corasick.Stream.consumed st);
  (* Reset gives a fresh scan: a dangling prefix must not leak over. *)
  Aho_corasick.Stream.reset st;
  let hits2 = ref [] in
  Aho_corasick.Stream.feed ac st "c" (fun id pos -> hits2 := (id, pos) :: !hits2);
  Aho_corasick.Stream.feed ac st "d" (fun id pos -> hits2 := (id, pos) :: !hits2);
  Alcotest.(check (list (pair int int))) "no carry-over after reset" [] !hits2

let test_ac_stream_slices () =
  let ac = Aho_corasick.build [ "her" ] in
  let st = Aho_corasick.Stream.create () in
  let seen = Array.make 1 false in
  let buf = "xxhexxrxx" in
  (* Feed the slices "he" and "r" of a larger caller-owned buffer. *)
  Aho_corasick.Stream.feed_into ac st seen ~off:2 ~len:2 buf;
  Aho_corasick.Stream.feed_into ac st seen ~off:6 ~len:1 buf;
  Alcotest.(check bool) "slice-fed fragments match" true seen.(0);
  Alcotest.check_raises "out-of-bounds slice rejected"
    (Invalid_argument "Aho_corasick.Stream.feed_into: slice out of bounds")
    (fun () -> Aho_corasick.Stream.feed_into ac st seen ~off:8 ~len:4 buf)

let prop_ac_stream_equals_whole =
  (* Feeding arbitrary fragment splits is exactly scanning the
     concatenation: same matched set, same end positions. *)
  let gen =
    QCheck.Gen.(
      pair
        (list_size (1 -- 6) (string_size ~gen:(oneofl [ 'a'; 'b'; 'c' ]) (1 -- 4)))
        (list_size (0 -- 8) (string_size ~gen:(oneofl [ 'a'; 'b'; 'c' ]) (0 -- 12))))
  in
  QCheck.Test.make ~name:"stream feed over any split = whole-text scan" ~count:500
    (QCheck.make gen) (fun (patterns, fragments) ->
      let ac = Aho_corasick.build patterns in
      let text = String.concat "" fragments in
      let whole = ref [] in
      Aho_corasick.iter_matches ac text (fun id pos -> whole := (id, pos) :: !whole);
      let streamed = ref [] in
      let st = Aho_corasick.Stream.create () in
      List.iter
        (fun frag ->
          Aho_corasick.Stream.feed ac st frag (fun id pos ->
              streamed := (id, pos) :: !streamed))
        fragments;
      List.sort compare !whole = List.sort compare !streamed
      && Aho_corasick.Stream.consumed st = String.length text)

let test_matches_ordered_vs_all () =
  (* "ab" then "cd" in order in "abcd" but not in "cdab". *)
  Alcotest.(check bool) "ordered yes" true (Tokens.matches_ordered ~tokens:[ "ab"; "cd" ] "abcd");
  Alcotest.(check bool) "ordered no" false (Tokens.matches_ordered ~tokens:[ "ab"; "cd" ] "cdab");
  Alcotest.(check bool) "conjunction yes" true (Tokens.matches_all ~tokens:[ "ab"; "cd" ] "cdab")

let suite =
  [
    ( "text.search",
      [
        Alcotest.test_case "basic" `Quick test_search_basic;
        Alcotest.test_case "count occurrences" `Quick test_search_overlapping;
        Alcotest.test_case "failure function" `Quick test_failure_function;
        Alcotest.test_case "compiled reuse" `Quick test_compiled_reuse;
        qtest prop_search_matches_naive;
      ] );
    ( "text.edit_distance",
      [
        Alcotest.test_case "known values" `Quick test_edit_known;
        Alcotest.test_case "normalized" `Quick test_edit_normalized;
        Alcotest.test_case "bounded cutoff" `Quick test_edit_bounded_cutoff;
        qtest prop_edit_symmetry;
        qtest prop_edit_identity;
        qtest prop_edit_triangle;
        qtest prop_edit_bounded_agrees;
      ] );
    ( "text.lcs",
      [
        Alcotest.test_case "pair" `Quick test_lcs_pair;
        Alcotest.test_case "set edge cases" `Quick test_lcs_set_cases;
        qtest prop_lcs_set_matches_brute;
        qtest prop_lcs_set_is_common;
      ] );
    ( "text.trigram",
      [
        Alcotest.test_case "profile" `Quick test_trigram_profile;
        Alcotest.test_case "distance cases" `Quick test_trigram_distance_cases;
        Alcotest.test_case "discrimination" `Quick test_trigram_discrimination;
        Alcotest.test_case "cache agrees" `Quick test_trigram_cache_agrees;
        qtest prop_trigram_bounds_and_symmetry;
      ] );
    ( "text.suffix_automaton",
      [
        Alcotest.test_case "substrings" `Quick test_sa_substrings;
        Alcotest.test_case "distinct count" `Quick test_sa_distinct_count;
        qtest prop_sa_distinct_matches_brute;
        qtest prop_sa_is_substring;
        qtest prop_sa_lcs_matches_dp;
      ] );
    ( "text.tokens",
      [
        Alcotest.test_case "extract simple" `Quick test_tokens_extract_simple;
        Alcotest.test_case "single string" `Quick test_tokens_single_string;
        Alcotest.test_case "degenerate inputs" `Quick test_tokens_empty;
        Alcotest.test_case "min length filter" `Quick test_tokens_min_len;
        Alcotest.test_case "ordered vs conjunction" `Quick test_matches_ordered_vs_all;
        qtest prop_tokens_all_match;
        qtest prop_tokens_ordered_match;
      ] );
    ( "text.aho_corasick",
      [
        Alcotest.test_case "basic" `Quick test_ac_basic;
        Alcotest.test_case "match positions" `Quick test_ac_positions;
        Alcotest.test_case "duplicates" `Quick test_ac_duplicates_and_overlap;
        Alcotest.test_case "empty pattern" `Quick test_ac_empty_pattern;
        qtest prop_ac_agrees_with_kmp;
        Alcotest.test_case "stream: boundary-spanning matches" `Quick
          test_ac_stream_boundary_spanning;
        Alcotest.test_case "stream: slice feeding" `Quick test_ac_stream_slices;
        qtest prop_ac_stream_equals_whole;
      ] );
  ]
