(* End-to-end integration tests: workload -> payload check -> clustering ->
   signatures -> detection -> metrics, plus the monitor consuming the
   generated signatures — the whole Figure 3 loop on a scaled dataset. *)

module Workload = Leakdetect_android.Workload
module Pipeline = Leakdetect_core.Pipeline
module Metrics = Leakdetect_core.Metrics
module Siggen = Leakdetect_core.Siggen
module Signature = Leakdetect_core.Signature
module Distance = Leakdetect_core.Distance
module Payload_check = Leakdetect_core.Payload_check
module Prng = Leakdetect_util.Prng

let dataset = lazy (Workload.generate ~seed:77 ~scale:0.05 ())

let test_payload_check_agrees_with_labels () =
  (* The manual suspicious/normal separation of Sec. V-A is reproduced by
     the payload check itself. *)
  let ds = Lazy.force dataset in
  let packets = Workload.packets ds in
  let by_check, _ = Payload_check.split ds.Workload.payload_check packets in
  let by_label, _ = Workload.split ds in
  Alcotest.(check int) "same suspicious count" (Array.length by_label) (Array.length by_check)

let test_figure4_shape () =
  (* The headline claim: TP rises with N while FN falls; FP stays small.
     Run the paper's sweep on a 5% workload. *)
  let ds = Lazy.force dataset in
  let suspicious, normal = Workload.split ds in
  let rng = Prng.create 4 in
  let outcomes = Pipeline.sweep ~rng ~ns:[ 50; 300 ] ~suspicious ~normal () in
  match outcomes with
  | [ small; large ] ->
    Alcotest.(check bool) "TP improves with N" true
      (large.Pipeline.metrics.Metrics.true_positive
      >= small.Pipeline.metrics.Metrics.true_positive -. 0.02);
    Alcotest.(check bool) "TP above 80% at N=300" true
      (large.Pipeline.metrics.Metrics.true_positive > 0.8);
    Alcotest.(check bool) "FP below 10%" true
      (large.Pipeline.metrics.Metrics.false_positive < 0.10)
  | _ -> Alcotest.fail "expected two outcomes"

let test_signatures_sound_on_sample () =
  (* Every generated signature matches every member of its cluster. *)
  let ds = Lazy.force dataset in
  let suspicious, _ = Workload.split ds in
  let rng = Prng.create 9 in
  let sample = Leakdetect_util.Sample.without_replacement rng 150 suspicious in
  let dist = Distance.create () in
  let result = Siggen.generate dist sample in
  let sigs = Array.of_list result.Siggen.signatures in
  (* Signatures are numbered in cut order over accepted clusters; walk the
     clusters and check the accepted ones in order. *)
  let sig_idx = ref 0 in
  List.iter
    (fun members ->
      if !sig_idx < Array.length sigs then begin
        let s = sigs.(!sig_idx) in
        if s.Signature.cluster_size = List.length members then begin
          let c = Signature.compile s in
          let all_match =
            List.for_all (fun i -> Signature.matches c sample.(i)) members
          in
          if all_match then incr sig_idx
        end
      end)
    result.Siggen.clusters;
  Alcotest.(check int) "every signature mapped to a matching cluster"
    (Array.length sigs) !sig_idx

let test_ablation_ordering () =
  (* Distance ablation (paper Sec. VI discussion): with the same sample,
     the combined distance must detect at least as much as the content-only
     variant (destination locality is what groups per-module forms), and no
     variant may blow up on false positives. *)
  let ds = Lazy.force dataset in
  let suspicious, normal = Workload.split ds in
  let run components seed =
    let config =
      { Pipeline.default_config with Pipeline.components }
    in
    Pipeline.run ~config ~rng:(Prng.create seed) ~n:200 ~suspicious ~normal ()
  in
  let combined = run Distance.all_components 1 in
  let content_only = run Distance.content_only 1 in
  let dest_only = run Distance.destination_only 1 in
  Alcotest.(check bool) "combined TP reasonable" true
    (combined.Pipeline.metrics.Metrics.true_positive > 0.7);
  Alcotest.(check bool) "combined at least as good as content-only" true
    (combined.Pipeline.metrics.Metrics.true_positive
    >= content_only.Pipeline.metrics.Metrics.true_positive -. 0.02);
  List.iter
    (fun o ->
      Alcotest.(check bool) "FP bounded" true
        (o.Pipeline.metrics.Metrics.false_positive < 0.10))
    [ combined; content_only; dest_only ]

let test_monitor_consumes_pipeline_signatures () =
  (* Close the loop of Figure 3: signatures from the server side drive the
     on-device monitor. *)
  let ds = Lazy.force dataset in
  let suspicious, normal = Workload.split ds in
  let rng = Prng.create 31 in
  let outcome = Pipeline.run ~rng ~n:200 ~suspicious ~normal () in
  let monitor = Leakdetect_monitor.Flow_control.create outcome.Pipeline.signatures in
  let prompted = ref 0 and allowed = ref 0 in
  Array.iteri
    (fun i p ->
      if i < 500 then
        match Leakdetect_monitor.Flow_control.process monitor ~app_id:0 p with
        | Leakdetect_monitor.Flow_control.Prompted _ -> incr prompted
        | Leakdetect_monitor.Flow_control.Allowed -> incr allowed
        | Leakdetect_monitor.Flow_control.Blocked -> ())
    suspicious;
  Alcotest.(check bool) "most sensitive packets prompt" true (!prompted > 350);
  let benign_prompted = ref 0 in
  Array.iteri
    (fun i p ->
      if i < 500 then
        match Leakdetect_monitor.Flow_control.process monitor ~app_id:0 p with
        | Leakdetect_monitor.Flow_control.Prompted _ -> incr benign_prompted
        | _ -> ())
    normal;
  Alcotest.(check bool) "few benign packets prompt" true (!benign_prompted < 50)

let test_trace_roundtrip_through_disk () =
  (* Save the generated trace, load it back, and verify the suspicious
     split is unchanged — the serialization carries everything the
     pipeline needs. *)
  let ds = Workload.generate ~seed:13 ~scale:0.01 () in
  let path = Filename.temp_file "leakdetect_integration" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Leakdetect_http.Trace.save path (Array.to_list ds.Workload.records);
      match Leakdetect_http.Trace.load path with
      | Error e -> Alcotest.failf "load failed: %s" e
      | Ok (records, _) ->
        Alcotest.(check int) "record count" (Array.length ds.Workload.records)
          (List.length records);
        let sensitive_loaded =
          List.length (List.filter (fun r -> r.Leakdetect_http.Trace.labels <> []) records)
        in
        Alcotest.(check int) "sensitive preserved" (Workload.sensitive_count ds)
          sensitive_loaded)

let suite =
  [
    ( "integration",
      [
        Alcotest.test_case "payload check = ground truth" `Quick
          test_payload_check_agrees_with_labels;
        Alcotest.test_case "figure 4 shape" `Slow test_figure4_shape;
        Alcotest.test_case "signature soundness on sample" `Slow test_signatures_sound_on_sample;
        Alcotest.test_case "distance ablation ordering" `Slow test_ablation_ordering;
        Alcotest.test_case "monitor consumes signatures" `Slow
          test_monitor_consumes_pipeline_signatures;
        Alcotest.test_case "trace disk roundtrip" `Quick test_trace_roundtrip_through_disk;
      ] );
  ]
