(* Tests for Leakdetect_adversary: mutator catalogue and replay harness. *)

module Mutator = Leakdetect_adversary.Mutator
module Harness = Leakdetect_adversary.Harness
module Normalize = Leakdetect_normalize.Normalize
module Detector = Leakdetect_core.Detector
module Payload_check = Leakdetect_core.Payload_check
module Packet = Leakdetect_http.Packet
module Json = Leakdetect_util.Json
module Prng = Leakdetect_util.Prng

let imei = "356938035643809"

let leak_packet =
  Packet.v
    ~ip:(Leakdetect_net.Ipv4.of_octets 10 0 0 1)
    ~port:80 ~host:"ads.example.com"
    ~request_line:(Printf.sprintf "GET /track?imei=%s&v=2 HTTP/1.1" imei)
    ~cookie:"sid=abc123" ~body:(Printf.sprintf "uid=%s&extra=1" imei)

let test_catalogue_names_unique () =
  let names = Mutator.names () in
  Alcotest.(check int) "no duplicate names" (List.length names)
    (List.length (List.sort_uniq compare names));
  List.iter
    (fun n ->
      match Mutator.by_name n with
      | Some m -> Alcotest.(check string) "by_name finds itself" n m.Mutator.name
      | None -> Alcotest.failf "mutator %s not found by name" n)
    names;
  Alcotest.(check bool) "unknown name" true (Mutator.by_name "nope" = None)

let test_mutators_deterministic () =
  List.iter
    (fun (m : Mutator.t) ->
      let a = m.Mutator.apply (Prng.create 7) leak_packet in
      let b = m.Mutator.apply (Prng.create 7) leak_packet in
      Alcotest.(check string)
        (m.Mutator.name ^ " deterministic")
        (Packet.content_string a) (Packet.content_string b))
    Mutator.all

let test_mutators_keep_destination () =
  List.iter
    (fun (m : Mutator.t) ->
      let p = m.Mutator.apply (Prng.create 7) leak_packet in
      Alcotest.(check bool)
        (m.Mutator.name ^ " keeps destination")
        true
        (Packet.compare_dst p.Packet.dst leak_packet.Packet.dst = 0))
    Mutator.all

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec loop i = i + n <= h && (String.sub hay i n = needle || loop (i + 1)) in
  n = 0 || loop 0

(* Every decodable mutation must (a) remove the raw identifier and (b) be
   reversible through the lattice: the payload check finds the identifier
   again in some derived view. *)
let body_leak_packet =
  (* The chunked mutator only reframes the body, so give it a packet whose
     identifier lives there alone. *)
  Packet.v
    ~ip:(Leakdetect_net.Ipv4.of_octets 10 0 0 1)
    ~port:80 ~host:"ads.example.com" ~request_line:"POST /track HTTP/1.1"
    ~cookie:"sid=abc123"
    ~body:(Printf.sprintf "uid=%s&extra=1" imei)

let test_decodable_mutations_reversible () =
  let check_pc = Payload_check.create [ (Leakdetect_core.Sensitive.Imei, imei) ] in
  let normalize = Normalize.create () in
  List.iter
    (fun (m : Mutator.t) ->
      if m.Mutator.class_ = Mutator.Decodable && m.Mutator.name <> "case" then begin
        let fixture =
          if m.Mutator.name = "chunked" then body_leak_packet else leak_packet
        in
        let p = m.Mutator.apply (Prng.create 7) fixture in
        Alcotest.(check bool)
          (m.Mutator.name ^ " hides the raw identifier")
          false
          (contains ~needle:imei (Packet.content_string p));
        Alcotest.(check bool)
          (m.Mutator.name ^ " recovered through the lattice")
          true
          (Payload_check.is_sensitive ~normalize check_pc p)
      end)
    Mutator.all

(* The case mutator needs a digest-bearing packet: raw identifiers are
   digits (caseless), so it only moves hex-digest values. *)
let test_case_mutation_on_digest () =
  let digest = "9b74c9897bac770ffc029102a200c5de" in
  let p =
    Packet.v
      ~ip:(Leakdetect_net.Ipv4.of_octets 10 0 0 2)
      ~port:80 ~host:"ads.example.com"
      ~request_line:("GET /t?h=" ^ digest ^ " HTTP/1.1")
      ~cookie:"" ~body:""
  in
  let m = Option.get (Mutator.by_name "case") in
  let mutated = m.Mutator.apply (Prng.create 7) p in
  Alcotest.(check bool) "digest uppercased" false
    (contains ~needle:digest (Packet.content_string mutated));
  let check_pc = Payload_check.create [ (Leakdetect_core.Sensitive.Imei, digest) ] in
  Alcotest.(check bool) "folded digest still classified" true
    (Payload_check.is_sensitive check_pc mutated)

let test_noise_preserves_detection () =
  let detector =
    Detector.create
      [ Leakdetect_core.Signature.make ~id:0 ~mode:Leakdetect_core.Signature.Conjunction
          ~cluster_size:2 [ "imei="; "/track?" ] ]
  in
  let m = Option.get (Mutator.by_name "noise") in
  let mutated = m.Mutator.apply (Prng.create 7) leak_packet in
  Alcotest.(check bool) "noise does not break raw detection" true
    (Detector.detects detector mutated)

(* --- harness ------------------------------------------------------------- *)

(* One tiny end-to-end harness run shared by the assertions below. *)
let report =
  lazy
    (Harness.run
       ~mutators:
         (List.filter
            (fun (m : Mutator.t) ->
              List.mem m.Mutator.name [ "percent"; "base64"; "noise" ])
            Mutator.all)
       ~rates:[ 1.0 ] ~seed:11 ~scale:0.01 ~sample_n:60 ())

let find_cell r name =
  List.find (fun (c : Harness.cell) -> c.Harness.mutator = name) r.Harness.cells

let test_harness_shapes () =
  let r = Lazy.force report in
  Alcotest.(check int) "one cell per mutator and rate" 3 (List.length r.Harness.cells);
  Alcotest.(check bool) "leaks present" true (r.Harness.n_leak > 0);
  Alcotest.(check bool) "signatures generated" true (r.Harness.n_signatures > 0);
  List.iter
    (fun (c : Harness.cell) ->
      Alcotest.(check bool) "every leak mutated at rate 1" true
        (c.Harness.mutated = r.Harness.n_leak))
    r.Harness.cells

let test_harness_normalization_recovers () =
  let r = Lazy.force report in
  let percent = find_cell r "percent" in
  Alcotest.(check bool) "percent kills raw recall" true
    (percent.Harness.raw_recall < r.Harness.clean_recall /. 2.);
  Alcotest.(check bool) "normalization restores recall" true
    (percent.Harness.normalized_recall >= r.Harness.clean_recall -. 0.02);
  let noise = find_cell r "noise" in
  Alcotest.(check bool) "noise leaves raw recall" true
    (noise.Harness.raw_recall >= r.Harness.clean_recall -. 0.02)

let test_harness_fp_does_not_explode () =
  let r = Lazy.force report in
  List.iter
    (fun (c : Harness.cell) ->
      Alcotest.(check bool)
        (c.Harness.mutator ^ " normalized FP bounded by clean FP")
        true
        (c.Harness.normalized_fp <= r.Harness.clean_fp))
    r.Harness.cells

let test_harness_deterministic () =
  let one () =
    Harness.run
      ~mutators:
        (List.filter (fun (m : Mutator.t) -> m.Mutator.name = "percent") Mutator.all)
      ~rates:[ 0.5 ] ~seed:3 ~scale:0.005 ~sample_n:40 ()
  in
  let a = one () and b = one () in
  Alcotest.(check string) "same seed, same JSON report"
    (Json.to_string (Harness.to_json a))
    (Json.to_string (Harness.to_json b))

let test_report_json_and_render () =
  let r = Lazy.force report in
  let json = Json.to_string (Harness.to_json r) in
  Alcotest.(check bool) "json has floor_recall" true
    (contains ~needle:"floor_recall" json);
  Alcotest.(check bool) "render mentions every mutator" true
    (List.for_all
       (fun (c : Harness.cell) ->
         contains ~needle:c.Harness.mutator (Harness.render r))
       r.Harness.cells);
  Alcotest.(check bool) "floor over decodable only" true
    (Harness.floor_recall r
    = List.fold_left
        (fun acc (c : Harness.cell) ->
          if c.Harness.class_ = Mutator.Decodable then min acc c.Harness.normalized_recall
          else acc)
        1.0 r.Harness.cells)

let suite =
  [
    ( "adversary.mutator",
      [
        Alcotest.test_case "catalogue names unique" `Quick test_catalogue_names_unique;
        Alcotest.test_case "deterministic" `Quick test_mutators_deterministic;
        Alcotest.test_case "destination preserved" `Quick test_mutators_keep_destination;
        Alcotest.test_case "decodable mutations reversible" `Quick
          test_decodable_mutations_reversible;
        Alcotest.test_case "case mutation on digest" `Quick test_case_mutation_on_digest;
        Alcotest.test_case "noise preserves detection" `Quick
          test_noise_preserves_detection;
      ] );
    ( "adversary.harness",
      [
        Alcotest.test_case "report shape" `Quick test_harness_shapes;
        Alcotest.test_case "normalization recovers recall" `Quick
          test_harness_normalization_recovers;
        Alcotest.test_case "normalized FP bounded" `Quick test_harness_fp_does_not_explode;
        Alcotest.test_case "deterministic report" `Quick test_harness_deterministic;
        Alcotest.test_case "json and render" `Quick test_report_json_and_render;
      ] );
  ]
