(* Tests for Leakdetect_util: PRNG, sampling, hex, strings, stats, tables. *)

open Leakdetect_util

let qtest = QCheck_alcotest.to_alcotest

(* --- Prng --- *)

let test_prng_determinism () =
  let a = Prng.create 123 and b = Prng.create 123 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.int64 a) (Prng.int64 b)
  done

let test_prng_seed_sensitivity () =
  let a = Prng.create 1 and b = Prng.create 2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if not (Int64.equal (Prng.int64 a) (Prng.int64 b)) then differs := true
  done;
  Alcotest.(check bool) "different seeds differ" true !differs

let test_prng_copy_independent () =
  let a = Prng.create 9 in
  let b = Prng.copy a in
  let va = Prng.int64 a in
  let vb = Prng.int64 b in
  Alcotest.(check int64) "copy continues from same state" va vb;
  (* advancing one does not affect the other *)
  let _ = Prng.int64 a in
  let _ = Prng.int64 a in
  let v1 = Prng.int64 b and v2 = Prng.int64 b in
  Alcotest.(check bool) "independent streams" false (Int64.equal v1 v2 && false)

let test_prng_split () =
  let a = Prng.create 5 in
  let b = Prng.split a in
  let xs = List.init 20 (fun _ -> Prng.int64 a) in
  let ys = List.init 20 (fun _ -> Prng.int64 b) in
  Alcotest.(check bool) "split streams differ" false (xs = ys)

let test_prng_int_bounds () =
  let rng = Prng.create 77 in
  for _ = 1 to 10_000 do
    let v = Prng.int rng 7 in
    if v < 0 || v >= 7 then Alcotest.fail "out of bounds"
  done

let test_prng_int_invalid () =
  let rng = Prng.create 1 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int rng 0))

let test_prng_int_in () =
  let rng = Prng.create 4 in
  for _ = 1 to 1000 do
    let v = Prng.int_in rng (-3) 3 in
    if v < -3 || v > 3 then Alcotest.fail "int_in out of range"
  done

let test_prng_float_unit () =
  let rng = Prng.create 8 in
  for _ = 1 to 1000 do
    let f = Prng.float rng in
    if f < 0. || f >= 1. then Alcotest.fail "float out of [0,1)"
  done

let test_prng_uniformity () =
  (* Rough chi-square-free check: each of 10 buckets within 3x expected. *)
  let rng = Prng.create 3 in
  let buckets = Array.make 10 0 in
  let n = 50_000 in
  for _ = 1 to n do
    let b = Prng.int rng 10 in
    buckets.(b) <- buckets.(b) + 1
  done;
  Array.iter
    (fun c ->
      if c < n / 20 || c > n / 5 then
        Alcotest.failf "bucket badly unbalanced: %d" c)
    buckets

let test_prng_pick () =
  let rng = Prng.create 2 in
  let arr = [| "a"; "b"; "c" |] in
  for _ = 1 to 100 do
    let v = Prng.pick rng arr in
    Alcotest.(check bool) "member" true (Array.exists (String.equal v) arr)
  done;
  Alcotest.check_raises "empty array" (Invalid_argument "Prng.pick: empty array")
    (fun () -> ignore (Prng.pick rng [||]))

(* --- Sample --- *)

let test_shuffle_permutation () =
  let rng = Prng.create 11 in
  let arr = Array.init 50 Fun.id in
  Sample.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same multiset" (Array.init 50 Fun.id) sorted

let test_without_replacement_distinct () =
  let rng = Prng.create 12 in
  let arr = Array.init 100 Fun.id in
  let s = Sample.without_replacement rng 30 arr in
  Alcotest.(check int) "size" 30 (Array.length s);
  let seen = Hashtbl.create 30 in
  Array.iter
    (fun x ->
      if Hashtbl.mem seen x then Alcotest.fail "duplicate";
      Hashtbl.add seen x ())
    s

let test_without_replacement_overdraw () =
  let rng = Prng.create 13 in
  let s = Sample.without_replacement rng 10 [| 1; 2; 3 |] in
  let sorted = Array.copy s in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "whole set" [| 1; 2; 3 |] sorted

let test_weighted_index () =
  let rng = Prng.create 14 in
  let counts = Array.make 3 0 in
  for _ = 1 to 30_000 do
    let i = Sample.weighted_index rng [| 1.; 2.; 7. |] in
    counts.(i) <- counts.(i) + 1
  done;
  Alcotest.(check bool) "heaviest wins" true (counts.(2) > counts.(1) && counts.(1) > counts.(0));
  let frac2 = float_of_int counts.(2) /. 30_000. in
  Alcotest.(check bool) "rough proportion" true (frac2 > 0.6 && frac2 < 0.8)

let test_zipf_range () =
  let rng = Prng.create 15 in
  for _ = 1 to 1000 do
    let r = Sample.zipf rng ~n:20 ~s:1.1 in
    if r < 1 || r > 20 then Alcotest.fail "zipf out of range"
  done

let test_poisson_mean () =
  let rng = Prng.create 16 in
  let n = 20_000 in
  let total = ref 0 in
  for _ = 1 to n do
    total := !total + Sample.poisson rng 5.0
  done;
  let mean = float_of_int !total /. float_of_int n in
  Alcotest.(check bool) "mean near 5" true (mean > 4.8 && mean < 5.2)

let test_gaussian_moments () =
  let rng = Prng.create 17 in
  let n = 50_000 in
  let sum = ref 0. and sumsq = ref 0. in
  for _ = 1 to n do
    let g = Sample.gaussian rng in
    sum := !sum +. g;
    sumsq := !sumsq +. (g *. g)
  done;
  let mean = !sum /. float_of_int n in
  let var = (!sumsq /. float_of_int n) -. (mean *. mean) in
  Alcotest.(check bool) "mean near 0" true (Float.abs mean < 0.03);
  Alcotest.(check bool) "variance near 1" true (Float.abs (var -. 1.) < 0.05)

(* --- Hex --- *)

let test_hex_known () =
  Alcotest.(check string) "encode" "68656c6c6f" (Hex.encode "hello");
  Alcotest.(check (option string)) "decode" (Some "hello") (Hex.decode "68656c6c6f");
  Alcotest.(check (option string)) "decode upper" (Some "hello") (Hex.decode "68656C6C6F")

let test_hex_invalid () =
  Alcotest.(check (option string)) "odd length" None (Hex.decode "abc");
  Alcotest.(check (option string)) "bad digit" None (Hex.decode "zz");
  Alcotest.(check bool) "is_hex no" false (Hex.is_hex "xyz");
  Alcotest.(check bool) "is_hex empty" false (Hex.is_hex "");
  Alcotest.(check bool) "is_hex yes" true (Hex.is_hex "0aF9")

let prop_hex_roundtrip =
  QCheck.Test.make ~name:"hex roundtrip" ~count:500
    QCheck.(string_of_size Gen.(0 -- 64))
    (fun s -> Hex.decode (Hex.encode s) = Some s)

(* --- Base64 --- *)

let test_base64_known () =
  List.iter
    (fun (plain, padded) ->
      Alcotest.(check string) ("encode " ^ plain) padded (Base64.encode plain);
      Alcotest.(check (option string)) ("decode " ^ padded) (Some plain)
        (Base64.decode padded))
    (* RFC 4648 §10 test vectors. *)
    [ ("", ""); ("f", "Zg=="); ("fo", "Zm8="); ("foo", "Zm9v");
      ("foob", "Zm9vYg=="); ("fooba", "Zm9vYmE="); ("foobar", "Zm9vYmFy") ]

let test_base64_unpadded () =
  Alcotest.(check (option string)) "one byte" (Some "f") (Base64.decode "Zg");
  Alcotest.(check (option string)) "two bytes" (Some "fo") (Base64.decode "Zm8");
  Alcotest.(check (option string)) "three bytes" (Some "foo") (Base64.decode "Zm9v")

let test_base64_url_safe () =
  (* 0xfb 0xef 0xff encodes to "++//" standard, "--__" URL-safe. *)
  let s = "\xfb\xef\xff" in
  Alcotest.(check string) "url alphabet, no padding" "--__--__"
    (Base64.encode_url (s ^ s));
  Alcotest.(check (option string)) "url decode" (Some (s ^ s))
    (Base64.decode "--__--__");
  Alcotest.(check (option string)) "std decode" (Some (s ^ s))
    (Base64.decode "++//++//")

let test_base64_rejects () =
  Alcotest.(check (option string)) "mixed alphabets" None (Base64.decode "+AA_");
  Alcotest.(check (option string)) "bad character" None (Base64.decode "Zm9*");
  Alcotest.(check (option string)) "length 1 mod 4" None (Base64.decode "Z");
  Alcotest.(check (option string)) "interior padding" None (Base64.decode "Zg==Zg==");
  Alcotest.(check (option string)) "padding only" None (Base64.decode "==")

let prop_base64_roundtrip =
  QCheck.Test.make ~name:"base64 roundtrip (padded)" ~count:500
    QCheck.(string_of_size Gen.(0 -- 64))
    (fun s -> Base64.decode (Base64.encode s) = Some s)

let prop_base64url_roundtrip =
  QCheck.Test.make ~name:"base64url roundtrip (unpadded)" ~count:500
    QCheck.(string_of_size Gen.(0 -- 64))
    (fun s -> Base64.decode (Base64.encode_url s) = Some s)

(* --- Strutil --- *)

let test_split_on_string () =
  Alcotest.(check (list string)) "basic" [ "a"; "b"; "c" ]
    (Strutil.split_on_string ~sep:"--" "a--b--c");
  Alcotest.(check (list string)) "edges" [ ""; "x"; "" ]
    (Strutil.split_on_string ~sep:"," ",x,");
  Alcotest.(check (list string)) "no sep" [ "abc" ]
    (Strutil.split_on_string ~sep:"|" "abc");
  Alcotest.(check (list string)) "empty input" [ "" ]
    (Strutil.split_on_string ~sep:"|" "")

let test_chop () =
  Alcotest.(check (option string)) "prefix" (Some "bar") (Strutil.chop_prefix ~prefix:"foo" "foobar");
  Alcotest.(check (option string)) "no prefix" None (Strutil.chop_prefix ~prefix:"x" "foobar");
  Alcotest.(check (option string)) "suffix" (Some "foo") (Strutil.chop_suffix ~suffix:"bar" "foobar");
  Alcotest.(check (option string)) "no suffix" None (Strutil.chop_suffix ~suffix:"x" "foobar")

let test_trim_take_repeat () =
  Alcotest.(check string) "trim" "x y" (Strutil.trim_spaces "  \tx y \t ");
  Alcotest.(check string) "take" "ab" (Strutil.take 2 "abcd");
  Alcotest.(check string) "take over" "ab" (Strutil.take 9 "ab");
  Alcotest.(check string) "repeat" "ababab" (Strutil.repeat "ab" 3);
  Alcotest.(check string) "repeat zero" "" (Strutil.repeat "ab" 0)

let test_common_prefix_len () =
  Alcotest.(check int) "shared" 3 (Strutil.common_prefix_len "abcX" "abcY");
  Alcotest.(check int) "none" 0 (Strutil.common_prefix_len "a" "b");
  Alcotest.(check int) "one empty" 0 (Strutil.common_prefix_len "" "b")

let test_truncate_middle () =
  Alcotest.(check string) "short unchanged" "abc" (Strutil.truncate_middle 10 "abc");
  let t = Strutil.truncate_middle 9 "abcdefghijklmnop" in
  Alcotest.(check int) "width respected" 9 (String.length t);
  Alcotest.(check bool) "has ellipsis" true
    (Leakdetect_text.Search.contains ~needle:"..." t)

(* --- Stats --- *)

let test_stats_mean () =
  Alcotest.(check (float 1e-9)) "mean" 2.5 (Stats.mean [| 1.; 2.; 3.; 4. |]);
  Alcotest.(check (float 1e-9)) "empty" 0. (Stats.mean [||])

let test_stats_percentile () =
  let xs = [| 5.; 1.; 3.; 2.; 4. |] in
  Alcotest.(check (float 1e-9)) "median" 3. (Stats.percentile xs 50.);
  Alcotest.(check (float 1e-9)) "p100" 5. (Stats.percentile xs 100.)

let test_stats_cdf () =
  let pts = Stats.cdf [| 1; 1; 2; 5 |] in
  let last = List.nth pts (List.length pts - 1) in
  Alcotest.(check int) "distinct values" 3 (List.length pts);
  Alcotest.(check int) "cumulative total" 4 last.Stats.cumulative;
  Alcotest.(check (float 1e-9)) "final fraction" 1. last.Stats.fraction

let test_stats_fraction_le () =
  Alcotest.(check (float 1e-9)) "half" 0.5 (Stats.fraction_le [| 1; 2; 3; 4 |] 2)

(* --- Table / Csv --- *)

let test_table_render () =
  let out =
    Table.render ~title:"T"
      ~columns:[ ("name", Table.Left); ("count", Table.Right) ]
      [ [ "a"; "1" ]; [ "bb"; "22" ] ]
  in
  Alcotest.(check bool) "has title" true (Leakdetect_text.Search.contains ~needle:"T\n" out);
  Alcotest.(check bool) "has rule" true (Leakdetect_text.Search.contains ~needle:"----" out);
  Alcotest.(check bool) "right aligned" true (Leakdetect_text.Search.contains ~needle:" 1" out)

let test_table_ragged_rows () =
  let out =
    Table.render ~columns:[ ("a", Table.Left); ("b", Table.Left) ]
      [ [ "only" ]; [ "x"; "y"; "z" ] ]
  in
  Alcotest.(check bool) "renders" true (String.length out > 0);
  Alcotest.(check bool) "extra cell dropped" false
    (Leakdetect_text.Search.contains ~needle:"z" out)

let test_csv () =
  Alcotest.(check string) "plain" "a,b" (Csv.line [ "a"; "b" ]);
  Alcotest.(check string) "quoted comma" "\"a,b\",c" (Csv.line [ "a,b"; "c" ]);
  Alcotest.(check string) "quote doubling" "\"a\"\"b\"" (Csv.line [ "a\"b" ]);
  let doc = Csv.render ~header:[ "h1"; "h2" ] [ [ "1"; "2" ] ] in
  Alcotest.(check string) "document" "h1,h2\n1,2\n" doc

(* --- Json --- *)

let test_json_scalars () =
  let open Json in
  Alcotest.(check string) "null" "null" (to_string Null);
  Alcotest.(check string) "bool" "true" (to_string (Bool true));
  Alcotest.(check string) "int" "42" (to_string (Int 42));
  Alcotest.(check string) "float keeps point" "1.5" (to_string (Float 1.5));
  Alcotest.(check string) "whole float marked" "2.0" (to_string (Float 2.));
  Alcotest.(check string) "nan is null" "null" (to_string (Float Float.nan))

let test_json_escaping () =
  let open Json in
  Alcotest.(check string) "quotes" {|"a\"b"|} (to_string (String "a\"b"));
  Alcotest.(check string) "newline" {|"a\nb"|} (to_string (String "a\nb"));
  Alcotest.(check string) "control" "\"\\u0001\"" (to_string (String "\x01"))

let test_json_structures () =
  let open Json in
  Alcotest.(check string) "list" "[1,2]" (to_string (List [ Int 1; Int 2 ]));
  Alcotest.(check string) "empty obj" "{}" (to_string (Obj []));
  Alcotest.(check string) "object" {|{"k":[true]}|}
    (to_string (Obj [ ("k", List [ Bool true ]) ]));
  let pretty = to_string_pretty (Obj [ ("a", Int 1); ("b", List [ Int 2 ]) ]) in
  Alcotest.(check bool) "pretty has newlines" true (String.contains pretty '\n')

(* --- Crc32 --- *)

(* Known-answer vectors for CRC-32/IEEE (the "check" value of the catalog
   entry plus two classics). *)
let test_crc32_known_answers () =
  Alcotest.(check int) "empty" 0 (Crc32.string "");
  Alcotest.(check int) "123456789" 0xCBF43926 (Crc32.string "123456789");
  Alcotest.(check int) "quick brown fox" 0x414FA339
    (Crc32.string "The quick brown fox jumps over the lazy dog");
  Alcotest.(check string) "hex formatting" "cbf43926"
    (Crc32.to_hex (Crc32.string "123456789"))

let test_crc32_incremental () =
  let s = "The quick brown fox jumps over the lazy dog" in
  let chunked =
    Crc32.value
      (Crc32.update (Crc32.update (Crc32.update Crc32.init ~pos:0 ~len:10 s) ~pos:10 ~len:20 s)
         ~pos:30 ~len:(String.length s - 30) s)
  in
  Alcotest.(check int) "chunked = one-shot" (Crc32.string s) chunked;
  Alcotest.(check int) "bytes = string" (Crc32.string s)
    (Crc32.bytes (Bytes.of_string s));
  Alcotest.(check int) "bytes slice"
    (Crc32.string (String.sub s 4 9))
    (Crc32.bytes ~pos:4 ~len:9 (Bytes.of_string s));
  Alcotest.(check int) "value init = 0" 0 (Crc32.value Crc32.init)

let test_crc32_slice_bounds () =
  let raises f =
    match f () with
    | exception Invalid_argument _ -> true
    | (_ : Crc32.t) -> false
  in
  Alcotest.(check bool) "pos past end" true
    (raises (fun () -> Crc32.update Crc32.init ~pos:5 ~len:1 "abc"));
  Alcotest.(check bool) "negative len" true
    (raises (fun () -> Crc32.update Crc32.init ~pos:0 ~len:(-1) "abc"))

let prop_crc32_append_homomorphism =
  QCheck.Test.make ~name:"crc32 chunking is order-preserving" ~count:300
    QCheck.(pair (string_of_size Gen.(0 -- 64)) (string_of_size Gen.(0 -- 64)))
    (fun (a, b) ->
      Crc32.string (a ^ b) = Crc32.value (Crc32.update (Crc32.update Crc32.init a) b))

let suite =
  [
    ( "util.crc32",
      [
        Alcotest.test_case "known answers" `Quick test_crc32_known_answers;
        Alcotest.test_case "incremental" `Quick test_crc32_incremental;
        Alcotest.test_case "slice bounds" `Quick test_crc32_slice_bounds;
        qtest prop_crc32_append_homomorphism;
      ] );
    ( "util.json",
      [
        Alcotest.test_case "scalars" `Quick test_json_scalars;
        Alcotest.test_case "escaping" `Quick test_json_escaping;
        Alcotest.test_case "structures" `Quick test_json_structures;
      ] );
    ( "util.prng",
      [
        Alcotest.test_case "determinism" `Quick test_prng_determinism;
        Alcotest.test_case "seed sensitivity" `Quick test_prng_seed_sensitivity;
        Alcotest.test_case "copy" `Quick test_prng_copy_independent;
        Alcotest.test_case "split" `Quick test_prng_split;
        Alcotest.test_case "int bounds" `Quick test_prng_int_bounds;
        Alcotest.test_case "int invalid" `Quick test_prng_int_invalid;
        Alcotest.test_case "int_in range" `Quick test_prng_int_in;
        Alcotest.test_case "float unit interval" `Quick test_prng_float_unit;
        Alcotest.test_case "uniformity" `Quick test_prng_uniformity;
        Alcotest.test_case "pick" `Quick test_prng_pick;
      ] );
    ( "util.sample",
      [
        Alcotest.test_case "shuffle permutation" `Quick test_shuffle_permutation;
        Alcotest.test_case "without_replacement distinct" `Quick test_without_replacement_distinct;
        Alcotest.test_case "without_replacement overdraw" `Quick test_without_replacement_overdraw;
        Alcotest.test_case "weighted_index proportions" `Quick test_weighted_index;
        Alcotest.test_case "zipf range" `Quick test_zipf_range;
        Alcotest.test_case "poisson mean" `Quick test_poisson_mean;
        Alcotest.test_case "gaussian moments" `Quick test_gaussian_moments;
      ] );
    ( "util.hex",
      [
        Alcotest.test_case "known vectors" `Quick test_hex_known;
        Alcotest.test_case "invalid inputs" `Quick test_hex_invalid;
        qtest prop_hex_roundtrip;
      ] );
    ( "util.base64",
      [
        Alcotest.test_case "rfc 4648 vectors" `Quick test_base64_known;
        Alcotest.test_case "unpadded decode" `Quick test_base64_unpadded;
        Alcotest.test_case "url-safe alphabet" `Quick test_base64_url_safe;
        Alcotest.test_case "rejects" `Quick test_base64_rejects;
        qtest prop_base64_roundtrip;
        qtest prop_base64url_roundtrip;
      ] );
    ( "util.strutil",
      [
        Alcotest.test_case "split_on_string" `Quick test_split_on_string;
        Alcotest.test_case "chop prefix/suffix" `Quick test_chop;
        Alcotest.test_case "trim/take/repeat" `Quick test_trim_take_repeat;
        Alcotest.test_case "common_prefix_len" `Quick test_common_prefix_len;
        Alcotest.test_case "truncate_middle" `Quick test_truncate_middle;
      ] );
    ( "util.stats",
      [
        Alcotest.test_case "mean" `Quick test_stats_mean;
        Alcotest.test_case "percentile" `Quick test_stats_percentile;
        Alcotest.test_case "cdf" `Quick test_stats_cdf;
        Alcotest.test_case "fraction_le" `Quick test_stats_fraction_le;
      ] );
    ( "util.table",
      [
        Alcotest.test_case "render" `Quick test_table_render;
        Alcotest.test_case "ragged rows" `Quick test_table_ragged_rows;
        Alcotest.test_case "csv" `Quick test_csv;
      ] );
  ]
