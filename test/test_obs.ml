(* Tests for Leakdetect_obs: counter/gauge/histogram semantics, span
   nesting, the Prometheus text exposition (golden strings: escaping, label
   ordering, cumulative histogram buckets, family sorting), and a qcheck
   property asserting that running the pipeline with an active registry
   changes nothing about its outputs. *)

module Obs = Leakdetect_obs.Obs
module Pipeline = Leakdetect_core.Pipeline
module Signature_io = Leakdetect_core.Signature_io
module Metrics = Leakdetect_core.Metrics
module Packet = Leakdetect_http.Packet
module Ipv4 = Leakdetect_net.Ipv4
module Prng = Leakdetect_util.Prng

let qtest = QCheck_alcotest.to_alcotest

(* --- scalar metrics --- *)

let test_counter_semantics () =
  let obs = Obs.create () in
  let c = Obs.counter obs "requests_total" in
  Alcotest.(check int) "starts at 0" 0 (Obs.Counter.value c);
  Obs.Counter.inc c;
  Obs.Counter.add c 4;
  Alcotest.(check int) "inc + add" 5 (Obs.Counter.value c);
  let c' = Obs.counter obs "requests_total" in
  Obs.Counter.inc c';
  Alcotest.(check int) "re-interned handle shares the cell" 6 (Obs.Counter.value c);
  Alcotest.check_raises "negative add rejected"
    (Invalid_argument "Obs.Counter.add: negative increment") (fun () ->
      Obs.Counter.add c (-1))

let test_counter_labels_distinct_series () =
  let obs = Obs.create () in
  let a = Obs.counter obs ~labels:[ ("code", "200") ] "http_total" in
  let b = Obs.counter obs ~labels:[ ("code", "404") ] "http_total" in
  Obs.Counter.add a 3;
  Obs.Counter.inc b;
  Alcotest.(check int) "series a" 3 (Obs.Counter.value a);
  Alcotest.(check int) "series b" 1 (Obs.Counter.value b)

let test_gauge_semantics () =
  let obs = Obs.create () in
  let g = Obs.gauge obs "wal_bytes" in
  Obs.Gauge.set g 42;
  Obs.Gauge.set g 7;
  Alcotest.(check int) "last set wins" 7 (Obs.Gauge.value g)

let test_kind_clash_rejected () =
  let obs = Obs.create () in
  ignore (Obs.counter obs "family");
  Alcotest.check_raises "same name, different kind"
    (Invalid_argument "Obs: family already registered as a counter, not a gauge")
    (fun () -> ignore (Obs.gauge obs "family"))

let test_histogram_buckets () =
  let obs = Obs.create () in
  let h = Obs.histogram obs ~buckets:[ 1.; 10.; 100. ] "sizes" in
  List.iter (Obs.Histogram.observe h) [ 0.5; 5.; 5.; 50.; 5000. ];
  Alcotest.(check int) "count" 5 (Obs.Histogram.count h);
  Alcotest.(check (float 1e-9)) "sum" 5060.5 (Obs.Histogram.sum h);
  match Obs.samples obs with
  | [ { Obs.value = Obs.Histogram_value { buckets; sum; count }; _ } ] ->
    Alcotest.(check (list (pair (float 0.) int)))
      "per-bucket (non-cumulative) counts"
      [ (1., 1); (10., 2); (100., 1) ]
      buckets;
    Alcotest.(check int) "sample count" 5 count;
    Alcotest.(check (float 1e-9)) "sample sum" 5060.5 sum
  | _ -> Alcotest.fail "expected exactly one histogram sample"

(* --- noop registry --- *)

let test_noop_inert () =
  Alcotest.(check bool) "is_noop" true (Obs.is_noop Obs.noop);
  Alcotest.(check bool) "created registry is active" false
    (Obs.is_noop (Obs.create ()));
  let c = Obs.counter Obs.noop "anything" in
  Obs.Counter.inc c;
  Obs.Counter.add c 10;
  Alcotest.(check int) "noop counter stays 0" 0 (Obs.Counter.value c);
  let g = Obs.gauge Obs.noop "g" in
  Obs.Gauge.set g 5;
  Alcotest.(check int) "noop gauge stays 0" 0 (Obs.Gauge.value g);
  let h = Obs.histogram Obs.noop ~buckets:[ 1. ] "h" in
  Obs.Histogram.observe h 3.;
  Alcotest.(check int) "noop histogram stays empty" 0 (Obs.Histogram.count h);
  let r = Obs.with_span Obs.noop "x" (fun () -> 41 + 1) in
  Alcotest.(check int) "with_span is just the body" 42 r;
  Alcotest.(check (list reject)) "no spans recorded" [] (Obs.root_spans Obs.noop);
  Alcotest.(check string) "empty exposition" "" (Obs.to_prometheus Obs.noop)

(* --- spans --- *)

let test_span_nesting () =
  let obs = Obs.create () in
  let r =
    Obs.with_span obs "parent" (fun () ->
        Obs.with_span obs "child1" (fun () -> ());
        Obs.with_span obs "child2" (fun () -> ());
        "result")
  in
  Alcotest.(check string) "body value returned" "result" r;
  Obs.with_span obs "second_root" (fun () -> ());
  match Obs.root_spans obs with
  | [ parent; second ] ->
    Alcotest.(check string) "first root" "parent" (Obs.Span.name parent);
    Alcotest.(check string) "roots oldest first" "second_root"
      (Obs.Span.name second);
    Alcotest.(check (list string))
      "children oldest first" [ "child1"; "child2" ]
      (List.map Obs.Span.name (Obs.Span.children parent));
    let child_total =
      List.fold_left
        (fun acc c -> acc + Obs.Span.duration_ns c)
        0 (Obs.Span.children parent)
    in
    Alcotest.(check bool) "parent covers its children" true
      (Obs.Span.duration_ns parent >= child_total);
    Alcotest.(check bool) "durations non-negative" true
      (Obs.Span.duration_ns parent >= 0)
  | spans -> Alcotest.fail (Printf.sprintf "expected 2 roots, got %d" (List.length spans))

let test_span_survives_raise () =
  let obs = Obs.create () in
  (try Obs.with_span obs "outer" (fun () -> failwith "boom") with Failure _ -> ());
  match Obs.root_spans obs with
  | [ s ] -> Alcotest.(check string) "span closed on raise" "outer" (Obs.Span.name s)
  | _ -> Alcotest.fail "raising body must still record its span"

let test_reset_spans () =
  let obs = Obs.create () in
  Obs.Counter.inc (Obs.counter obs "kept_total");
  Obs.with_span obs "gone" (fun () -> ());
  Obs.reset_spans obs;
  Alcotest.(check (list reject)) "spans dropped" [] (Obs.root_spans obs);
  Alcotest.(check int) "metrics untouched" 1
    (Obs.Counter.value (Obs.counter obs "kept_total"))

let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec at i = i + n <= h && (String.sub haystack i n = needle || at (i + 1)) in
  n = 0 || at 0

let test_span_render () =
  let obs = Obs.create () in
  Obs.with_span obs "outer" (fun () -> Obs.with_span obs "inner" (fun () -> ()));
  let rendered = Obs.Span.render (List.hd (Obs.root_spans obs)) in
  Alcotest.(check bool) "mentions outer" true (contains ~needle:"outer" rendered);
  Alcotest.(check bool) "mentions inner" true (contains ~needle:"inner" rendered)

(* --- Prometheus exposition goldens --- *)

let test_exposition_golden_scalars () =
  let obs = Obs.create () in
  (* Registered out of sorted order on purpose: families must sort by name,
     series within a family by label set. *)
  Obs.Gauge.set (Obs.gauge obs ~help:"Current version." "zz_version") 3;
  Obs.Counter.add
    (Obs.counter obs ~help:"Requests served." ~labels:[ ("code", "404") ]
       "aa_requests_total")
    2;
  Obs.Counter.add (Obs.counter obs ~labels:[ ("code", "200") ] "aa_requests_total") 5;
  Alcotest.(check string) "sorted families and series"
    ("# HELP aa_requests_total Requests served.\n"
    ^ "# TYPE aa_requests_total counter\n"
    ^ "aa_requests_total{code=\"200\"} 5\n"
    ^ "aa_requests_total{code=\"404\"} 2\n"
    ^ "# HELP zz_version Current version.\n"
    ^ "# TYPE zz_version gauge\n"
    ^ "zz_version 3\n")
    (Obs.to_prometheus obs)

let test_exposition_label_escaping_and_order () =
  let obs = Obs.create () in
  Obs.Counter.inc
    (Obs.counter obs
       ~labels:[ ("zeta", "plain"); ("alpha", "a\\b\"c\nd") ]
       "esc_total");
  Alcotest.(check string) "labels sorted by name, values escaped"
    ("# TYPE esc_total counter\n"
    ^ "esc_total{alpha=\"a\\\\b\\\"c\\nd\",zeta=\"plain\"} 1\n")
    (Obs.to_prometheus obs)

let test_exposition_help_escaping () =
  let obs = Obs.create () in
  Obs.Counter.inc (Obs.counter obs ~help:"line one\nback\\slash" "help_total");
  Alcotest.(check string) "help newline and backslash escaped"
    ("# HELP help_total line one\\nback\\\\slash\n"
    ^ "# TYPE help_total counter\n" ^ "help_total 1\n")
    (Obs.to_prometheus obs)

let test_exposition_histogram_cumulative () =
  let obs = Obs.create () in
  let h =
    Obs.histogram obs ~help:"Payload sizes." ~labels:[ ("dir", "in") ]
      ~buckets:[ 0.5; 2.; 8. ] "bytes"
  in
  List.iter (Obs.Histogram.observe h) [ 0.1; 1.; 1.5; 4.; 100. ];
  Alcotest.(check string) "cumulative buckets, +Inf, _sum, _count"
    ("# HELP bytes Payload sizes.\n"
    ^ "# TYPE bytes histogram\n"
    ^ "bytes_bucket{dir=\"in\",le=\"0.5\"} 1\n"
    ^ "bytes_bucket{dir=\"in\",le=\"2\"} 3\n"
    ^ "bytes_bucket{dir=\"in\",le=\"8\"} 4\n"
    ^ "bytes_bucket{dir=\"in\",le=\"+Inf\"} 5\n"
    ^ "bytes_sum{dir=\"in\"} 106.6\n"
    ^ "bytes_count{dir=\"in\"} 5\n")
    (Obs.to_prometheus obs)

(* --- pipeline transparency: instrumentation must not change outputs --- *)

let mk ?(ip = "74.125.1.2") ?(port = 80) ?(host = "r.admob.com")
    ?(rline = "GET /ad HTTP/1.1") ?(cookie = "") ?(body = "") () =
  Packet.v ~ip:(Option.get (Ipv4.of_string ip)) ~port ~host ~request_line:rline
    ~cookie ~body

let packet_gen =
  QCheck.Gen.(
    let field = string_size ~gen:(char_range 'a' 'z') (0 -- 25) in
    map
      (fun (host, (rline, (cookie, body))) ->
        mk
          ~host:(if host = "" then "h.example.com" else host ^ ".example.com")
          ~rline:("GET /" ^ rline ^ "?imei=355021930123456 HTTP/1.1")
          ~cookie ~body ())
      (pair field (pair field (pair field field))))

let packets_gen n_min n_max =
  QCheck.Gen.(map Array.of_list (list_size (n_min -- n_max) packet_gen))

let outcome_fingerprint (o : Pipeline.outcome) =
  String.concat "|"
    (Printf.sprintf "n=%d clusters=%d rejected=%d tp=%.9f fn=%.9f fp=%.9f"
       o.Pipeline.sample_size o.Pipeline.n_clusters o.Pipeline.rejected_clusters
       o.Pipeline.metrics.Metrics.true_positive
       o.Pipeline.metrics.Metrics.false_negative
       o.Pipeline.metrics.Metrics.false_positive
    :: List.map Signature_io.to_line o.Pipeline.signatures)

let prop_active_registry_is_transparent =
  QCheck.Test.make ~name:"Pipeline.run identical under noop vs active registry"
    ~count:10
    (QCheck.make (QCheck.Gen.pair (packets_gen 4 16) (packets_gen 2 10)))
    (fun (suspicious, normal) ->
      let run obs =
        Pipeline.run
          ~config:(Pipeline.Config.with_obs obs Pipeline.Config.default)
          ~rng:(Prng.create 7) ~n:8 ~suspicious ~normal ()
      in
      let noop = run Obs.noop in
      let active_obs = Obs.create () in
      let active = run active_obs in
      (* The active run must have observed something... *)
      Obs.Counter.value
        (Obs.counter active_obs "leakdetect_pipeline_runs_total")
      = 1
      (* ...without perturbing any output byte. *)
      && outcome_fingerprint noop = outcome_fingerprint active)

let suite =
  [
    ( "obs",
      [
        Alcotest.test_case "counter semantics" `Quick test_counter_semantics;
        Alcotest.test_case "counter label series" `Quick
          test_counter_labels_distinct_series;
        Alcotest.test_case "gauge semantics" `Quick test_gauge_semantics;
        Alcotest.test_case "kind clash rejected" `Quick test_kind_clash_rejected;
        Alcotest.test_case "histogram buckets" `Quick test_histogram_buckets;
        Alcotest.test_case "noop registry inert" `Quick test_noop_inert;
        Alcotest.test_case "span nesting" `Quick test_span_nesting;
        Alcotest.test_case "span survives raise" `Quick test_span_survives_raise;
        Alcotest.test_case "reset spans" `Quick test_reset_spans;
        Alcotest.test_case "span render" `Quick test_span_render;
        Alcotest.test_case "exposition: scalars sorted" `Quick
          test_exposition_golden_scalars;
        Alcotest.test_case "exposition: label escaping + order" `Quick
          test_exposition_label_escaping_and_order;
        Alcotest.test_case "exposition: help escaping" `Quick
          test_exposition_help_escaping;
        Alcotest.test_case "exposition: histogram cumulative" `Quick
          test_exposition_histogram_cumulative;
        qtest prop_active_registry_is_transparent;
      ] );
  ]
