(* Tests for Leakdetect_compress: bit I/O, the three compressors, and the
   NCD cache the packet-content distance is built on. *)

open Leakdetect_compress

let qtest = QCheck_alcotest.to_alcotest

(* --- Bitio --- *)

let test_bitio_basic () =
  let w = Bitio.Writer.create () in
  Bitio.Writer.add_bits w 0b101 3;
  Bitio.Writer.add_bits w 0xff 8;
  Alcotest.(check int) "bit length" 11 (Bitio.Writer.bit_length w);
  let r = Bitio.Reader.of_string (Bitio.Writer.contents w) in
  Alcotest.(check int) "first field" 0b101 (Bitio.Reader.read_bits r 3);
  Alcotest.(check int) "second field" 0xff (Bitio.Reader.read_bits r 8)

let test_bitio_end_of_input () =
  let r = Bitio.Reader.of_string "" in
  Alcotest.check_raises "end of input" Bitio.Reader.End_of_input (fun () ->
      ignore (Bitio.Reader.read_bit r))

let prop_bitio_roundtrip =
  let field = QCheck.Gen.(pair (int_bound 0xffff) (int_range 1 16)) in
  QCheck.Test.make ~name:"bit fields round-trip" ~count:300
    (QCheck.make QCheck.Gen.(list_size (1 -- 20) field))
    (fun fields ->
      let fields = List.map (fun (v, w) -> (v land ((1 lsl w) - 1), w)) fields in
      let w = Bitio.Writer.create () in
      List.iter (fun (v, width) -> Bitio.Writer.add_bits w v width) fields;
      let r = Bitio.Reader.of_string (Bitio.Writer.contents w) in
      List.for_all (fun (v, width) -> Bitio.Reader.read_bits r width = v) fields)

(* --- Round-trips --- *)

let ascii_gen = QCheck.Gen.(string_size ~gen:(map Char.chr (int_range 32 126)) (0 -- 600))
let binary_gen = QCheck.Gen.(string_size ~gen:(map Char.chr (int_range 0 255)) (0 -- 400))

let roundtrip_prop name algo gen =
  QCheck.Test.make ~name ~count:200 (QCheck.make gen) (fun s ->
      Compressor.decompress algo (Compressor.compress algo s) = s)

let prop_lz77_ascii = roundtrip_prop "lz77 round-trip (ascii)" Compressor.Lz77 ascii_gen
let prop_lz77_binary = roundtrip_prop "lz77 round-trip (binary)" Compressor.Lz77 binary_gen
let prop_lzw_ascii = roundtrip_prop "lzw round-trip (ascii)" Compressor.Lzw ascii_gen
let prop_lzw_binary = roundtrip_prop "lzw round-trip (binary)" Compressor.Lzw binary_gen
let prop_huffman_ascii = roundtrip_prop "huffman round-trip (ascii)" Compressor.Huffman ascii_gen
let prop_huffman_binary = roundtrip_prop "huffman round-trip (binary)" Compressor.Huffman binary_gen

let test_roundtrip_edge_cases () =
  let cases =
    [
      "";
      "a";
      "aa";
      String.make 10_000 'z';
      Leakdetect_util.Strutil.repeat "abc" 3000;
      String.init 2000 (fun i -> Char.chr (i mod 256));
      "GET /ad?imei=355021930123456&carrier=NTTdocomo HTTP/1.1";
    ]
  in
  List.iter
    (fun algo ->
      List.iter
        (fun s ->
          Alcotest.(check string)
            (Printf.sprintf "%s len=%d" (Compressor.name algo) (String.length s))
            s
            (Compressor.decompress algo (Compressor.compress algo s)))
        cases)
    Compressor.all

let test_lz77_window_boundary () =
  (* Repetitions just inside and just outside the 32 KiB window: the first
     must be representable as a match, the second must not — both must
     round-trip. *)
  let pattern = "SENTINEL-0123456789-SENTINEL" in
  let inside =
    pattern ^ String.make (Lz77.window_size - String.length pattern - 7) 'x' ^ pattern
  in
  let outside = pattern ^ String.make (Lz77.window_size + 64) 'y' ^ pattern in
  Alcotest.(check string) "inside window" inside (Lz77.decompress (Lz77.compress inside));
  Alcotest.(check string) "outside window" outside (Lz77.decompress (Lz77.compress outside));
  Alcotest.(check bool) "in-window repetition compresses better" true
    (Lz77.compressed_length_bits inside
    < Lz77.compressed_length_bits inside + 8 * String.length pattern)

let test_lz77_max_match_runs () =
  (* Runs longer than max_match force chained match tokens. *)
  List.iter
    (fun n ->
      let s = String.make n 'q' in
      Alcotest.(check string) (Printf.sprintf "run of %d" n) s
        (Lz77.decompress (Lz77.compress s)))
    [ Lz77.max_match; Lz77.max_match + 1; (2 * Lz77.max_match) + 3; 5000 ]

let test_lz77_overlapping_match () =
  (* "abab..." uses a distance-2 match copied forward over itself. *)
  let s = Leakdetect_util.Strutil.repeat "ab" 500 in
  Alcotest.(check string) "overlap copy" s (Lz77.decompress (Lz77.compress s));
  Alcotest.(check bool) "compresses hard" true
    (Lz77.compressed_length_bits s < (8 * String.length s) / 10)

let test_lzw_dictionary_reset () =
  (* Enough distinct material to overflow the 16-bit dictionary. *)
  let big =
    String.concat ""
      (List.init 30_000 (fun i -> Printf.sprintf "%x|" (i * 2654435761)))
  in
  Alcotest.(check int) "long input round-trips" (String.length big)
    (String.length (Lzw.decompress (Lzw.compress big)))

let test_compression_effectiveness () =
  (* Repetitive input must compress well under the dictionary coders. *)
  let s = Leakdetect_util.Strutil.repeat "banana-phone!" 200 in
  let raw_bits = 8 * String.length s in
  Alcotest.(check bool) "lz77 compresses" true (Lz77.compressed_length_bits s < raw_bits / 5);
  Alcotest.(check bool) "lzw compresses" true (Lzw.compressed_length_bits s < raw_bits / 2);
  Alcotest.(check bool) "huffman compresses a little" true
    (Huffman.compressed_length_bits s < raw_bits)

let prop_length_bits_consistent =
  QCheck.Test.make ~name:"declared bit length bounds actual bytes" ~count:200
    (QCheck.make ascii_gen) (fun s ->
      List.for_all
        (fun algo ->
          let bits = Compressor.length_bits algo s in
          let bytes = String.length (Compressor.compress algo s) in
          (* contents pads to the next byte *)
          bytes = (bits + 7) / 8)
        Compressor.all)

let test_corrupt_stream () =
  (* Truncation must raise, not loop or return garbage silently. *)
  let c = Lz77.compress "hello hello hello hello" in
  let truncated = String.sub c 0 (String.length c - 2) in
  Alcotest.check_raises "truncated lz77"
    (Invalid_argument "Lz77.decompress: truncated stream") (fun () ->
      ignore (Lz77.decompress truncated));
  let lzw = Lzw.compress "the quick brown fox jumps over the lazy dog" in
  Alcotest.check_raises "truncated lzw"
    (Invalid_argument "Lzw.decompress: truncated stream") (fun () ->
      ignore (Lzw.decompress (String.sub lzw 0 (String.length lzw - 3))));
  let huff = Huffman.compress "the quick brown fox" in
  Alcotest.check_raises "truncated huffman"
    (Invalid_argument "Huffman.decompress: truncated stream") (fun () ->
      ignore (Huffman.decompress (String.sub huff 0 (String.length huff - 2))))

let test_huffman_code_lengths () =
  let lengths = Huffman.code_lengths "aaaabbbcc" in
  Alcotest.(check bool) "frequent symbol gets shortest code" true
    (lengths.(Char.code 'a') <= lengths.(Char.code 'b'));
  Alcotest.(check int) "absent symbol has no code" 0 lengths.(Char.code 'z');
  let single = Huffman.code_lengths "aaaa" in
  Alcotest.(check int) "single-symbol alphabet gets 1 bit" 1 single.(Char.code 'a')

(* --- NCD --- *)

let test_ncd_range_and_identity () =
  let cache = Compressor.Cache.create Compressor.Lz77 in
  let ncd = Compressor.Cache.ncd cache in
  Alcotest.(check (float 1e-9)) "empty strings" 0. (ncd "" "");
  let self = ncd "abcabcabc" "abcabcabc" in
  Alcotest.(check bool) "self distance small" true (self < 0.3);
  let x = "GET /ads?android_id=3b2f&fmt=json" in
  let y = "completely unrelated PQRSTUVWXYZ 0987654321 zzz" in
  Alcotest.(check bool) "unrelated distance large" true (ncd x y > 0.5)

let prop_ncd_bounds =
  QCheck.Test.make ~name:"ncd stays in [0,1]" ~count:200
    (QCheck.make QCheck.Gen.(pair ascii_gen ascii_gen))
    (fun (x, y) ->
      let cache = Compressor.Cache.create Compressor.Lz77 in
      let d = Compressor.Cache.ncd cache x y in
      d >= 0. && d <= 1.)

let test_ncd_discrimination () =
  (* Same-module packets must be closer than cross-module packets —
     the property the whole clustering step relies on. *)
  let cache = Compressor.Cache.create Compressor.Lz77 in
  let a1 = "GET /ad/sdk/img?aid=jp.co.app1&imei=355021930123456&size=320x50 HTTP/1.1" in
  let a2 = "GET /ad/sdk/img?aid=jp.co.app2&imei=355021930123456&size=320x50 HTTP/1.1" in
  let b = "POST /aap.do HTTP/1.1" in
  let within = Compressor.Cache.ncd cache a1 a2 in
  let across = Compressor.Cache.ncd cache a1 b in
  Alcotest.(check bool) "within < across" true (within < across)

let test_cache_stats () =
  let cache = Compressor.Cache.create Compressor.Lzw in
  ignore (Compressor.Cache.length_bits cache "abc");
  ignore (Compressor.Cache.length_bits cache "abc");
  ignore (Compressor.Cache.length_bits cache "def");
  let st = Compressor.Cache.stats cache in
  Alcotest.(check int) "hits" 1 st.Compressor.Cache.hits;
  Alcotest.(check int) "misses" 2 st.Compressor.Cache.misses

let test_pair_cache_stats () =
  let cache = Compressor.Cache.create Compressor.Lz77 in
  let x = "GET /ad/sdk?imei=355021930123456" and y = "POST /track HTTP/1.1" in
  ignore (Compressor.Cache.ncd cache x y);
  ignore (Compressor.Cache.ncd cache y x);
  (* order-insensitive: same canonical pair *)
  ignore (Compressor.Cache.ncd cache x y);
  let st = Compressor.Cache.stats cache in
  Alcotest.(check int) "pair misses" 1 st.Compressor.Cache.pair_misses;
  Alcotest.(check int) "pair hits" 2 st.Compressor.Cache.pair_hits;
  Alcotest.(check int) "pair entries" 1 (Compressor.Cache.pair_size cache)

let test_pair_cache_bounded () =
  let cache = Compressor.Cache.create ~pair_capacity:2 Compressor.Lz77 in
  let s i = Printf.sprintf "payload-%d-%s" i (String.make 10 'x') in
  for i = 0 to 5 do
    ignore (Compressor.Cache.ncd cache (s i) (s (i + 100)))
  done;
  Alcotest.(check int) "capacity respected" 2 (Compressor.Cache.pair_size cache);
  (* Uncached pairs still produce correct, identical distances. *)
  let d1 = Compressor.Cache.ncd cache (s 5) (s 105) in
  let d2 = Compressor.Cache.ncd cache (s 5) (s 105) in
  Alcotest.(check (float 0.)) "identical without caching" d1 d2

let test_compressor_names () =
  List.iter
    (fun algo ->
      Alcotest.(check (option string))
        (Compressor.name algo) (Some (Compressor.name algo))
        (Option.map Compressor.name (Compressor.of_name (Compressor.name algo))))
    Compressor.all;
  Alcotest.(check bool) "unknown name" true (Compressor.of_name "zstd" = None)

let suite =
  [
    ( "compress.bitio",
      [
        Alcotest.test_case "basic fields" `Quick test_bitio_basic;
        Alcotest.test_case "end of input" `Quick test_bitio_end_of_input;
        qtest prop_bitio_roundtrip;
      ] );
    ( "compress.roundtrip",
      [
        Alcotest.test_case "edge cases (all algos)" `Quick test_roundtrip_edge_cases;
        Alcotest.test_case "lz77 window boundary" `Quick test_lz77_window_boundary;
        Alcotest.test_case "lz77 max-match runs" `Quick test_lz77_max_match_runs;
        Alcotest.test_case "lz77 overlapping match" `Quick test_lz77_overlapping_match;
        Alcotest.test_case "lzw dictionary reset" `Quick test_lzw_dictionary_reset;
        Alcotest.test_case "effectiveness" `Quick test_compression_effectiveness;
        Alcotest.test_case "corrupt stream" `Quick test_corrupt_stream;
        Alcotest.test_case "huffman code lengths" `Quick test_huffman_code_lengths;
        qtest prop_lz77_ascii;
        qtest prop_lz77_binary;
        qtest prop_lzw_ascii;
        qtest prop_lzw_binary;
        qtest prop_huffman_ascii;
        qtest prop_huffman_binary;
        qtest prop_length_bits_consistent;
      ] );
    ( "compress.ncd",
      [
        Alcotest.test_case "range and identity" `Quick test_ncd_range_and_identity;
        Alcotest.test_case "discrimination" `Quick test_ncd_discrimination;
        Alcotest.test_case "cache stats" `Quick test_cache_stats;
        Alcotest.test_case "pair cache stats" `Quick test_pair_cache_stats;
        Alcotest.test_case "pair cache bounded" `Quick test_pair_cache_bounded;
        Alcotest.test_case "algorithm names" `Quick test_compressor_names;
        qtest prop_ncd_bounds;
      ] );
  ]
