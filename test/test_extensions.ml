(* Tests for the Sec. VI extensions: Base64, the WHOIS-like registry and
   registry-verified distance, signature persistence, obfuscated-traffic
   support and probabilistic (Bayes) signatures. *)

module Base64 = Leakdetect_util.Base64
module Registry = Leakdetect_net.Registry
module Ipv4 = Leakdetect_net.Ipv4
module Distance = Leakdetect_core.Distance
module Signature = Leakdetect_core.Signature
module Signature_io = Leakdetect_core.Signature_io
module Bayes = Leakdetect_core.Bayes
module Obfuscation = Leakdetect_android.Obfuscation
module Device = Leakdetect_android.Device
module Packet = Leakdetect_http.Packet
module Prng = Leakdetect_util.Prng

let qtest = QCheck_alcotest.to_alcotest

(* --- Base64 --- *)

let test_base64_vectors () =
  (* RFC 4648 test vectors. *)
  let cases =
    [ ("", ""); ("f", "Zg=="); ("fo", "Zm8="); ("foo", "Zm9v"); ("foob", "Zm9vYg==");
      ("fooba", "Zm9vYmE="); ("foobar", "Zm9vYmFy") ]
  in
  List.iter
    (fun (plain, encoded) ->
      Alcotest.(check string) ("encode " ^ plain) encoded (Base64.encode plain);
      Alcotest.(check (option string)) ("decode " ^ encoded) (Some plain)
        (Base64.decode encoded))
    cases

let test_base64_invalid () =
  Alcotest.(check (option string)) "bad length" None (Base64.decode "Zg=");
  Alcotest.(check (option string)) "bad char" None (Base64.decode "Zm9?");
  Alcotest.(check (option string)) "early padding" None (Base64.decode "Zg==Zm9v")

let prop_base64_roundtrip =
  QCheck.Test.make ~name:"base64 roundtrip" ~count:500
    QCheck.(string_of_size Gen.(0 -- 100))
    (fun s -> Base64.decode (Base64.encode s) = Some s)

(* --- Registry --- *)

let ip s = Option.get (Ipv4.of_string s)

let sample_registry () =
  Registry.empty
  |> fun r ->
  Registry.register r ~org:"google" ~base:(ip "74.125.0.0") ~prefix:16
  |> fun r ->
  Registry.register r ~org:"admaker" ~base:(ip "203.104.0.0") ~prefix:16
  |> fun r -> Registry.register r ~org:"special" ~base:(ip "74.125.7.0") ~prefix:24

let test_registry_lookup () =
  let r = sample_registry () in
  Alcotest.(check (option string)) "in /16" (Some "google") (Registry.lookup r (ip "74.125.3.9"));
  Alcotest.(check (option string)) "longest prefix wins" (Some "special")
    (Registry.lookup r (ip "74.125.7.200"));
  Alcotest.(check (option string)) "unknown" None (Registry.lookup r (ip "8.8.8.8"));
  Alcotest.(check int) "size" 3 (Registry.size r);
  Alcotest.(check (list string)) "organizations" [ "admaker"; "google"; "special" ]
    (Registry.organizations r)

let test_registry_same_org () =
  let r = sample_registry () in
  Alcotest.(check (option bool)) "same" (Some true)
    (Registry.same_organization r (ip "74.125.1.1") (ip "74.125.2.2"));
  Alcotest.(check (option bool)) "different" (Some false)
    (Registry.same_organization r (ip "74.125.1.1") (ip "203.104.9.9"));
  Alcotest.(check (option bool)) "unknown" None
    (Registry.same_organization r (ip "74.125.1.1") (ip "9.9.9.9"))

let test_registry_override () =
  let r = Registry.register Registry.empty ~org:"a" ~base:(ip "10.0.0.0") ~prefix:8 in
  let r = Registry.register r ~org:"b" ~base:(ip "10.3.0.0") ~prefix:8 in
  (* same block (/8 mask of both is 10.0.0.0), later registration wins *)
  Alcotest.(check (option string)) "override" (Some "b") (Registry.lookup r (ip "10.250.0.1"));
  Alcotest.(check int) "no duplicate rows" 1 (Registry.size r)

let test_registry_distance () =
  let r = sample_registry () in
  (* Adjacent /24s, different owners: the case the paper worries about. *)
  let a = ip "10.0.0.255" and b = ip "10.0.1.0" in
  Alcotest.(check bool) "prefix heuristic calls them close" true (Distance.d_ip a b < 0.5);
  let r2 = Registry.register r ~org:"owner-a" ~base:(ip "10.0.0.0") ~prefix:24 in
  let r2 = Registry.register r2 ~org:"other" ~base:(ip "10.0.1.0") ~prefix:24 in
  Alcotest.(check (float 1e-9)) "registry corrects to maximal distance" 1.
    (Distance.d_ip_registry r2 a b);
  Alcotest.(check (float 1e-9)) "same owner snaps to zero" 0.
    (Distance.d_ip_registry r2 (ip "74.125.0.1") (ip "74.125.200.9"));
  Alcotest.(check (float 1e-9)) "unknown falls back to heuristic"
    (Distance.d_ip (ip "1.2.3.4") (ip "1.2.3.5"))
    (Distance.d_ip_registry r2 (ip "1.2.3.4") (ip "1.2.3.5"))

let test_ad_module_registry () =
  let r = Leakdetect_android.Ad_module.registry () in
  Alcotest.(check bool) "covers the catalog" true
    (Registry.size r >= 20);
  let f = Option.get (Leakdetect_android.Ad_module.find "ad-maker.info") in
  let host = f.Leakdetect_android.Ad_module.hosts.(0) in
  Alcotest.(check (option string)) "family hosts resolve to family org"
    (Some "ad-maker.info")
    (Registry.lookup r (Leakdetect_android.Ad_module.host_ip f host))

(* --- Signature_io --- *)

let test_signature_io_roundtrip () =
  let s =
    Signature.make ~id:3 ~mode:Signature.Conjunction ~cluster_size:7
      [ "imei=3550"; "tab\there"; "newline\nthere" ]
  in
  match Signature_io.of_line (Signature_io.to_line s) with
  | Error e ->
    Alcotest.failf "roundtrip failed: %s" (Leakdetect_util.Leak_error.to_string e)
  | Ok s' ->
    Alcotest.(check int) "id" s.Signature.id s'.Signature.id;
    Alcotest.(check int) "cluster" s.Signature.cluster_size s'.Signature.cluster_size;
    Alcotest.(check (list string)) "tokens" s.Signature.tokens s'.Signature.tokens

let test_signature_io_file () =
  let sigs =
    [
      Signature.make ~id:0 ~mode:Signature.Conjunction ~cluster_size:2 [ "a"; "b" ];
      Signature.make ~id:1 ~mode:Signature.Ordered ~cluster_size:5 [ "x=1" ];
    ]
  in
  let path = Filename.temp_file "leakdetect_sig" ".tsv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Signature_io.save path sigs;
      match Signature_io.load path with
      | Error e -> Alcotest.failf "load: %s" e
      | Ok (loaded, skips) ->
        Alcotest.(check int) "count" 2 (List.length loaded);
        Alcotest.(check int) "no skips in fail mode" 0
          skips.Leakdetect_http.Trace.skipped;
        Alcotest.(check bool) "mode preserved" true
          ((List.nth loaded 1).Signature.mode = Signature.Ordered))

let test_signature_io_errors () =
  let is_err l = match Signature_io.of_line l with Error _ -> true | Ok _ -> false in
  Alcotest.(check bool) "too few fields" true (is_err "1\tconjunction\t2");
  Alcotest.(check bool) "bad mode" true (is_err "1\tboth\t2\ttok");
  Alcotest.(check bool) "bad id" true (is_err "x\tconjunction\t2\ttok")

let test_signature_io_skip_mode () =
  let sigs =
    List.init 3 (fun i ->
        Signature.make ~id:i ~mode:Signature.Conjunction ~cluster_size:2
          [ Printf.sprintf "tok%d" i ])
  in
  let good = List.map Signature_io.to_line sigs in
  let lines =
    [ List.nth good 0; "not a signature"; List.nth good 1; "x\tbad\tline\ttok";
      List.nth good 2 ]
  in
  let path = Filename.temp_file "leakdetect_sig_skip" ".tsv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc (String.concat "\n" lines ^ "\n");
      close_out oc;
      (match Signature_io.load path with
      | Error e ->
        Alcotest.(check bool) "fail mode reports line 2" true
          (Leakdetect_text.Search.contains ~needle:"line 2" e)
      | Ok _ -> Alcotest.fail "fail mode must error");
      match Signature_io.load ~on_error:`Skip path with
      | Error e -> Alcotest.failf "skip mode failed: %s" e
      | Ok (loaded, skips) ->
        Alcotest.(check int) "salvaged good signatures" 3 (List.length loaded);
        Alcotest.(check int) "skip count" 2 skips.Leakdetect_http.Trace.skipped;
        Alcotest.(check (list int)) "skipped line numbers" [ 2; 4 ]
          (List.map fst skips.Leakdetect_http.Trace.sample))

(* --- Obfuscation --- *)

let device = Device.create (Prng.create 1)

let test_xor_involution () =
  let s = "imei=123456789&x=1" in
  Alcotest.(check string) "xor twice is identity" s (Obfuscation.xor_crypt (Obfuscation.xor_crypt s))

let test_obfuscation_hides_identifiers () =
  let rng = Prng.create 2 in
  let p = Obfuscation.leak_packet rng device ~package:"jp.co.x" in
  let content = Packet.content_string p in
  List.iter
    (fun kind ->
      let needle = Device.value device kind in
      Alcotest.(check bool)
        (Leakdetect_core.Sensitive.to_string kind ^ " hidden")
        false
        (Leakdetect_text.Search.contains ~needle content))
    Obfuscation.leaked_kinds;
  (* but the payload is recoverable with the module's key *)
  match Obfuscation.decode_leak p with
  | None -> Alcotest.fail "decode failed"
  | Some plain ->
    Alcotest.(check bool) "imei recovered" true
      (Leakdetect_text.Search.contains ~needle:device.Device.imei plain)

let test_obfuscation_invariant_prefix () =
  (* Fixed key + fixed identifiers => constant ciphertext prefix across
     packets and apps: the property the signatures exploit. *)
  let rng = Prng.create 3 in
  let p1 = Obfuscation.leak_packet rng device ~package:"jp.co.a" in
  let p2 = Obfuscation.leak_packet rng device ~package:"jp.co.b" in
  let b1 = p1.Packet.content.Packet.body and b2 = p2.Packet.content.Packet.body in
  let common = Leakdetect_util.Strutil.common_prefix_len b1 b2 in
  Alcotest.(check bool) "long shared ciphertext prefix" true (common > 60);
  Alcotest.(check bool) "but not identical packets" true (b1 <> b2)

let test_obfuscation_beacon_differs () =
  let rng = Prng.create 4 in
  let leak = Obfuscation.leak_packet rng device ~package:"jp.co.a" in
  let beacon = Obfuscation.beacon_packet rng device ~package:"jp.co.a" in
  Alcotest.(check string) "same host" leak.Packet.dst.Packet.host beacon.Packet.dst.Packet.host;
  Alcotest.(check bool) "beacon carries no ciphertext blob" false
    (Leakdetect_text.Search.contains ~needle:"d=" beacon.Packet.content.Packet.body)

let test_obfuscated_leaks_cluster_and_detect () =
  (* End-to-end version of the Sec. VI claim on a small pool. *)
  let rng = Prng.create 5 in
  let leaks = Array.init 30 (fun i ->
      Obfuscation.leak_packet rng device ~package:(Printf.sprintf "jp.co.app%d" (i mod 5)))
  in
  let dist = Distance.create () in
  let result = Leakdetect_core.Siggen.generate dist leaks in
  Alcotest.(check bool) "signatures emerge from ciphertext" true
    (result.Leakdetect_core.Siggen.signatures <> []);
  let detector = Leakdetect_core.Detector.create result.Leakdetect_core.Siggen.signatures in
  let fresh =
    Array.init 20 (fun i ->
        Obfuscation.leak_packet rng device ~package:(Printf.sprintf "jp.co.new%d" i))
  in
  Alcotest.(check int) "all fresh leaks detected" 20
    (Leakdetect_core.Detector.count_detected detector fresh);
  let beacons =
    Array.init 20 (fun i ->
        Obfuscation.beacon_packet rng device ~package:(Printf.sprintf "jp.co.new%d" i))
  in
  Alcotest.(check int) "beacons stay clean" 0
    (Leakdetect_core.Detector.count_detected detector beacons)

(* --- Bayes --- *)

let mk ?(host = "r.ad-maker.info") rline =
  Packet.v
    ~ip:(Option.get (Ipv4.of_string "203.104.5.5"))
    ~port:80 ~host ~request_line:rline ~cookie:"" ~body:""

let leak i =
  mk (Printf.sprintf "GET /ad?imei=355021930123456&app=a%d&size=320x50 HTTP/1.1" i)

let benign i = mk ~host:"api.example.jp" (Printf.sprintf "GET /feed/%d?lang=ja HTTP/1.1" i)

let test_bayes_train_basic () =
  let suspicious = Array.init 20 leak in
  let benign = Array.init 40 benign in
  let t =
    Bayes.train ~tokens:[ "imei=355021930123456"; "lang=ja"; "GET /" ] ~suspicious ~benign ()
  in
  (* the identifier token is suspicious-only: positive weight; lang=ja is
     benign-only: filtered out. *)
  let tokens = List.map (fun s -> s.Bayes.token) t.Bayes.tokens in
  Alcotest.(check bool) "identifier kept" true (List.mem "imei=355021930123456" tokens);
  Alcotest.(check bool) "benign marker dropped" false (List.mem "lang=ja" tokens);
  let c = Bayes.compile t in
  Alcotest.(check int) "all leaks flagged" 20 (Bayes.count_detected c suspicious);
  Alcotest.(check int) "no benign flagged" 0 (Bayes.count_detected c benign)

let test_bayes_threshold_respects_target () =
  (* Tokens present in some benign traffic: threshold must rise to keep the
     training false-positive rate within target. *)
  let suspicious = Array.init 30 leak in
  let benign =
    Array.init 100 (fun i ->
        if i < 10 then mk ~host:"api.example.jp" "GET /ad?size=320x50 HTTP/1.1"
        else benign i)
  in
  let t =
    Bayes.train ~target_fp:0.05 ~tokens:[ "size=320x50"; "imei=355021930123456" ]
      ~suspicious ~benign ()
  in
  let c = Bayes.compile t in
  let fp = Bayes.count_detected c benign in
  Alcotest.(check bool) "training FP within target" true (fp <= 5)

let test_bayes_empty_inputs () =
  Alcotest.check_raises "empty suspicious"
    (Invalid_argument "Bayes.train: empty training sample") (fun () ->
      ignore (Bayes.train ~tokens:[ "x" ] ~suspicious:[||] ~benign:[| benign 1 |] ()))

let test_bayes_candidate_tokens () =
  let cluster = [ leak 1; leak 2; leak 3 ] in
  let tokens = Bayes.candidate_tokens [ cluster ] in
  Alcotest.(check bool) "nonempty" true (tokens <> []);
  Alcotest.(check bool) "no boilerplate" true
    (List.for_all (fun t -> not (Signature.is_boilerplate_token t)) tokens);
  (* dedup across clusters *)
  let twice = Bayes.candidate_tokens [ cluster; cluster ] in
  Alcotest.(check int) "deduplicated" (List.length tokens) (List.length twice)

let test_bayes_run_end_to_end () =
  let ds = Leakdetect_android.Workload.generate ~seed:3 ~scale:0.03 () in
  let suspicious, normal = Leakdetect_android.Workload.split ds in
  let o = Bayes.run ~rng:(Prng.create 9) ~n:150 ~suspicious ~normal () in
  Alcotest.(check bool) "decent TP" true
    (o.Bayes.metrics.Leakdetect_core.Metrics.true_positive > 0.6);
  Alcotest.(check bool) "bounded FP" true
    (o.Bayes.metrics.Leakdetect_core.Metrics.false_positive < 0.10);
  Alcotest.(check bool) "tokens learned" true (o.Bayes.n_tokens > 0)

let suite =
  [
    ( "ext.base64",
      [
        Alcotest.test_case "RFC vectors" `Quick test_base64_vectors;
        Alcotest.test_case "invalid input" `Quick test_base64_invalid;
        qtest prop_base64_roundtrip;
      ] );
    ( "ext.registry",
      [
        Alcotest.test_case "lookup" `Quick test_registry_lookup;
        Alcotest.test_case "same organization" `Quick test_registry_same_org;
        Alcotest.test_case "override" `Quick test_registry_override;
        Alcotest.test_case "registry-verified distance" `Quick test_registry_distance;
        Alcotest.test_case "ad-module registry" `Quick test_ad_module_registry;
      ] );
    ( "ext.signature_io",
      [
        Alcotest.test_case "line roundtrip" `Quick test_signature_io_roundtrip;
        Alcotest.test_case "file roundtrip" `Quick test_signature_io_file;
        Alcotest.test_case "errors" `Quick test_signature_io_errors;
        Alcotest.test_case "skip mode salvages" `Quick test_signature_io_skip_mode;
      ] );
    ( "ext.obfuscation",
      [
        Alcotest.test_case "xor involution" `Quick test_xor_involution;
        Alcotest.test_case "identifiers hidden" `Quick test_obfuscation_hides_identifiers;
        Alcotest.test_case "invariant ciphertext prefix" `Quick test_obfuscation_invariant_prefix;
        Alcotest.test_case "beacon differs" `Quick test_obfuscation_beacon_differs;
        Alcotest.test_case "cluster and detect" `Quick test_obfuscated_leaks_cluster_and_detect;
      ] );
    ( "ext.bayes",
      [
        Alcotest.test_case "train basic" `Quick test_bayes_train_basic;
        Alcotest.test_case "threshold respects target" `Quick test_bayes_threshold_respects_target;
        Alcotest.test_case "empty inputs" `Quick test_bayes_empty_inputs;
        Alcotest.test_case "candidate tokens" `Quick test_bayes_candidate_tokens;
        Alcotest.test_case "end to end" `Slow test_bayes_run_end_to_end;
      ] );
  ]
