(* Tests for Leakdetect_cluster: distance matrix, dendrogram, agglomerative
   clustering with the paper's group-average linkage. *)

open Leakdetect_cluster

let qtest = QCheck_alcotest.to_alcotest

(* --- Dist_matrix --- *)

let test_matrix_basic () =
  let m = Dist_matrix.create 4 in
  Dist_matrix.set m 0 3 2.5;
  Alcotest.(check (float 1e-9)) "get" 2.5 (Dist_matrix.get m 0 3);
  Alcotest.(check (float 1e-9)) "symmetric" 2.5 (Dist_matrix.get m 3 0);
  Alcotest.(check (float 1e-9)) "diagonal" 0. (Dist_matrix.get m 2 2);
  Alcotest.(check int) "size" 4 (Dist_matrix.size m)

let test_matrix_build () =
  let m = Dist_matrix.build 5 (fun i j -> float_of_int (i + j)) in
  Alcotest.(check (float 1e-9)) "value" 7. (Dist_matrix.get m 3 4);
  Alcotest.(check (float 1e-9)) "max" 7. (Dist_matrix.max_value m);
  Alcotest.(check bool) "mean positive" true (Dist_matrix.mean_value m > 0.)

let test_matrix_errors () =
  let m = Dist_matrix.create 3 in
  Alcotest.check_raises "diagonal set"
    (Invalid_argument "Dist_matrix.set: diagonal is fixed at zero") (fun () ->
      Dist_matrix.set m 1 1 1.);
  Alcotest.check_raises "out of range"
    (Invalid_argument "Dist_matrix: index out of range") (fun () ->
      ignore (Dist_matrix.get m 0 5))

let test_matrix_empty () =
  let m = Dist_matrix.create 0 in
  Alcotest.(check (float 1e-9)) "max of empty" 0. (Dist_matrix.max_value m);
  Alcotest.(check (float 1e-9)) "mean of empty" 0. (Dist_matrix.mean_value m)

(* --- Dendrogram --- *)

let sample_tree () =
  (* ((0 1)@1.0 (2 3)@2.0)@4.0 *)
  let a = Dendrogram.node (Dendrogram.Leaf 0) (Dendrogram.Leaf 1) 1.0 in
  let b = Dendrogram.node (Dendrogram.Leaf 2) (Dendrogram.Leaf 3) 2.0 in
  Dendrogram.node a b 4.0

let test_dendrogram_members () =
  let t = sample_tree () in
  Alcotest.(check (list int)) "members sorted" [ 0; 1; 2; 3 ] (Dendrogram.members t);
  Alcotest.(check int) "size" 4 (Dendrogram.size t);
  Alcotest.(check (float 1e-9)) "height" 4.0 (Dendrogram.height t)

let test_dendrogram_cut () =
  let t = sample_tree () in
  let clusters threshold =
    List.map Dendrogram.members (Dendrogram.cut ~threshold t)
  in
  Alcotest.(check (list (list int))) "cut below everything"
    [ [ 0 ]; [ 1 ]; [ 2 ]; [ 3 ] ] (clusters 0.5);
  Alcotest.(check (list (list int))) "cut between"
    [ [ 0; 1 ]; [ 2 ]; [ 3 ] ] (clusters 1.5);
  Alcotest.(check (list (list int))) "cut keeps both pairs"
    [ [ 0; 1 ]; [ 2; 3 ] ] (clusters 3.0);
  Alcotest.(check (list (list int))) "cut above root" [ [ 0; 1; 2; 3 ] ] (clusters 5.0)

let test_dendrogram_cut_into () =
  let t = sample_tree () in
  Alcotest.(check int) "k=1" 1 (List.length (Dendrogram.cut_into 1 t));
  Alcotest.(check int) "k=2" 2 (List.length (Dendrogram.cut_into 2 t));
  Alcotest.(check int) "k=4" 4 (List.length (Dendrogram.cut_into 4 t));
  (* over-asking stops at leaves *)
  Alcotest.(check int) "k=10" 4 (List.length (Dendrogram.cut_into 10 t))

let test_dendrogram_heights () =
  Alcotest.(check (list (float 1e-9))) "pre-order" [ 4.0; 1.0; 2.0 ]
    (Dendrogram.heights (sample_tree ()))

let test_dendrogram_newick () =
  Alcotest.(check string) "tree"
    "((0:1,1:1):3,(2:2,3:2):2);"
    (Dendrogram.to_newick (sample_tree ()));
  Alcotest.(check string) "single leaf" "0;" (Dendrogram.to_newick (Dendrogram.Leaf 0));
  Alcotest.(check string) "labels"
    "((a:1,b:1):3,(c:2,d:2):2);"
    (Dendrogram.to_newick
       ~label:(fun i -> String.make 1 (Char.chr (Char.code 'a' + i)))
       (sample_tree ()))

(* --- Agglomerative --- *)

(* Hand-checked example: 1-D points 0, 1, 5 under absolute distance.
   UPGMA: merge {0},{1} at 1.0; then d({0,1},{5}) = (5+4)/2 = 4.5. *)
let test_upgma_hand_computed () =
  let points = [| 0.; 1.; 5. |] in
  let m = Dist_matrix.build 3 (fun i j -> Float.abs (points.(i) -. points.(j))) in
  match Agglomerative.cluster m with
  | None -> Alcotest.fail "no tree"
  | Some tree ->
    Alcotest.(check (float 1e-9)) "root height" 4.5 (Dendrogram.height tree);
    (match tree with
    | Dendrogram.Node { left; right; _ } ->
      let sub = if Dendrogram.size left = 2 then left else right in
      Alcotest.(check (list int)) "first merge" [ 0; 1 ] (Dendrogram.members sub);
      Alcotest.(check (float 1e-9)) "first height" 1.0 (Dendrogram.height sub)
    | Dendrogram.Leaf _ -> Alcotest.fail "root is a leaf")

let test_linkage_differs () =
  (* Points 0,1,5,6: single links {0,1} to {5,6} at 4; complete at 6;
     group average at 5. *)
  let points = [| 0.; 1.; 5.; 6. |] in
  let m = Dist_matrix.build 4 (fun i j -> Float.abs (points.(i) -. points.(j))) in
  let root_height linkage =
    Dendrogram.height (Option.get (Agglomerative.cluster ~linkage m))
  in
  Alcotest.(check (float 1e-9)) "single" 4. (root_height Agglomerative.Single);
  Alcotest.(check (float 1e-9)) "complete" 6. (root_height Agglomerative.Complete);
  Alcotest.(check (float 1e-9)) "group average" 5. (root_height Agglomerative.Group_average)

let test_cluster_edge_cases () =
  Alcotest.(check bool) "empty" true (Agglomerative.cluster (Dist_matrix.create 0) = None);
  (match Agglomerative.cluster (Dist_matrix.create 1) with
  | Some (Dendrogram.Leaf 0) -> ()
  | _ -> Alcotest.fail "singleton should be Leaf 0");
  match Agglomerative.cluster (Dist_matrix.create 2) with
  | Some t -> Alcotest.(check int) "two points" 2 (Dendrogram.size t)
  | None -> Alcotest.fail "two points should cluster"

let random_matrix rng n =
  Dist_matrix.build n (fun _ _ -> Leakdetect_util.Prng.float rng)

let prop_leaves_preserved =
  QCheck.Test.make ~name:"clustering preserves all leaves" ~count:100
    QCheck.(int_range 1 25)
    (fun n ->
      let rng = Leakdetect_util.Prng.create n in
      match Agglomerative.cluster (random_matrix rng n) with
      | None -> false
      | Some tree -> Dendrogram.members tree = List.init n Fun.id)

let prop_merge_count =
  QCheck.Test.make ~name:"n items make n-1 merges" ~count:50
    QCheck.(int_range 2 20)
    (fun n ->
      let rng = Leakdetect_util.Prng.create (n * 7) in
      List.length (Agglomerative.merge_sequence (random_matrix rng n)) = n - 1)

let prop_group_average_monotone =
  (* Group-average linkage is reducible, so merge heights never decrease. *)
  QCheck.Test.make ~name:"group-average merge heights are monotone" ~count:100
    QCheck.(int_range 2 20)
    (fun n ->
      let rng = Leakdetect_util.Prng.create (n * 13) in
      let merges = Agglomerative.merge_sequence (random_matrix rng n) in
      let heights = List.map (fun (_, _, h) -> h) merges in
      let rec nondecreasing = function
        | a :: (b :: _ as rest) -> a <= b +. 1e-9 && nondecreasing rest
        | _ -> true
      in
      nondecreasing heights)

let prop_single_below_complete =
  QCheck.Test.make ~name:"single-link root <= complete-link root" ~count:100
    QCheck.(int_range 2 18)
    (fun n ->
      let rng = Leakdetect_util.Prng.create (n * 31) in
      let m = random_matrix rng n in
      let h linkage = Dendrogram.height (Option.get (Agglomerative.cluster ~linkage m)) in
      h Agglomerative.Single <= h Agglomerative.Complete +. 1e-9)

(* --- Nn_chain --- *)

let sorted_heights tree =
  List.sort compare (Dendrogram.heights tree)

let test_nn_chain_hand_case () =
  let points = [| 0.; 1.; 5. |] in
  let m = Dist_matrix.build 3 (fun i j -> Float.abs (points.(i) -. points.(j))) in
  match Nn_chain.cluster m with
  | None -> Alcotest.fail "no tree"
  | Some tree ->
    Alcotest.(check (float 1e-9)) "root height" 4.5 (Dendrogram.height tree);
    Alcotest.(check (list int)) "leaves" [ 0; 1; 2 ] (Dendrogram.members tree)

let test_nn_chain_edge_cases () =
  Alcotest.(check bool) "empty" true (Nn_chain.cluster (Dist_matrix.create 0) = None);
  (match Nn_chain.cluster (Dist_matrix.create 1) with
  | Some (Dendrogram.Leaf 0) -> ()
  | _ -> Alcotest.fail "singleton");
  match Nn_chain.cluster (Dist_matrix.create 2) with
  | Some t -> Alcotest.(check int) "pair" 2 (Dendrogram.size t)
  | None -> Alcotest.fail "pair"

let prop_nn_chain_matches_naive linkage name =
  QCheck.Test.make ~name ~count:80
    QCheck.(int_range 2 22)
    (fun n ->
      let rng = Leakdetect_util.Prng.create (n * 97) in
      let m = random_matrix rng n in
      let naive = Option.get (Agglomerative.cluster ~linkage m) in
      let chain = Option.get (Nn_chain.cluster ~linkage m) in
      Dendrogram.members chain = List.init n Fun.id
      && List.for_all2
           (fun a b -> Float.abs (a -. b) < 1e-6)
           (sorted_heights naive) (sorted_heights chain))

let prop_nn_chain_average =
  prop_nn_chain_matches_naive Agglomerative.Group_average
    "nn-chain = naive merge heights (group-average)"

let prop_nn_chain_single =
  prop_nn_chain_matches_naive Agglomerative.Single
    "nn-chain = naive merge heights (single)"

let prop_nn_chain_complete =
  prop_nn_chain_matches_naive Agglomerative.Complete
    "nn-chain = naive merge heights (complete)"

(* --- Kmedoids --- *)

let two_blob_matrix () =
  (* Points 0,1,2 near zero; 3,4,5 near ten. *)
  let points = [| 0.; 0.5; 1.0; 10.; 10.5; 11. |] in
  Dist_matrix.build 6 (fun i j -> Float.abs (points.(i) -. points.(j)))

let test_kmedoids_two_blobs () =
  let rng = Leakdetect_util.Prng.create 1 in
  let r = Kmedoids.cluster ~rng ~k:2 (two_blob_matrix ()) in
  let groups = Kmedoids.clusters r in
  Alcotest.(check int) "two clusters" 2 (List.length groups);
  let sorted = List.sort compare groups in
  Alcotest.(check (list (list int))) "blob separation" [ [ 0; 1; 2 ]; [ 3; 4; 5 ] ] sorted;
  Alcotest.(check bool) "cost positive and small" true (r.Kmedoids.cost < 3.)

let test_kmedoids_k_clamped () =
  let rng = Leakdetect_util.Prng.create 2 in
  let m = Dist_matrix.build 3 (fun i j -> float_of_int (abs (i - j))) in
  let r = Kmedoids.cluster ~rng ~k:10 m in
  Alcotest.(check int) "k clamped to n" 3 (Array.length r.Kmedoids.medoids);
  Alcotest.(check (float 1e-9)) "zero cost when k = n" 0. r.Kmedoids.cost

let test_kmedoids_errors () =
  let rng = Leakdetect_util.Prng.create 3 in
  Alcotest.check_raises "k too small" (Invalid_argument "Kmedoids.cluster: k must be >= 1")
    (fun () -> ignore (Kmedoids.cluster ~rng ~k:0 (Dist_matrix.create 3)));
  Alcotest.check_raises "empty" (Invalid_argument "Kmedoids.cluster: empty matrix")
    (fun () -> ignore (Kmedoids.cluster ~rng ~k:1 (Dist_matrix.create 0)))

let prop_kmedoids_partition =
  QCheck.Test.make ~name:"kmedoids assignment is a partition" ~count:60
    QCheck.(pair (int_range 1 5) (int_range 1 18))
    (fun (k, n) ->
      let rng = Leakdetect_util.Prng.create ((k * 31) + n) in
      let m = random_matrix rng n in
      let r = Kmedoids.cluster ~rng ~k m in
      let members = List.concat (Kmedoids.clusters r) in
      List.sort compare members = List.init n Fun.id)

(* --- Dbscan --- *)

let test_dbscan_two_blobs () =
  let r = Dbscan.cluster ~eps:1.0 ~min_points:2 (two_blob_matrix ()) in
  Alcotest.(check (list (list int))) "blobs found"
    [ [ 0; 1; 2 ]; [ 3; 4; 5 ] ]
    (List.sort compare r.Dbscan.clusters);
  Alcotest.(check (list int)) "no noise" [] r.Dbscan.noise

let test_dbscan_noise () =
  (* An isolated point between the blobs becomes noise. *)
  let points = [| 0.; 0.5; 5.; 10.; 10.5 |] in
  let m = Dist_matrix.build 5 (fun i j -> Float.abs (points.(i) -. points.(j))) in
  let r = Dbscan.cluster ~eps:1.0 ~min_points:2 m in
  Alcotest.(check (list int)) "middle point is noise" [ 2 ] r.Dbscan.noise;
  Alcotest.(check int) "two clusters" 2 (List.length r.Dbscan.clusters)

let test_dbscan_all_noise () =
  let m = Dist_matrix.build 4 (fun _ _ -> 100.) in
  let r = Dbscan.cluster ~eps:1.0 ~min_points:2 m in
  Alcotest.(check (list (list int))) "no clusters" [] r.Dbscan.clusters;
  Alcotest.(check (list int)) "everything noise" [ 0; 1; 2; 3 ] r.Dbscan.noise

let test_dbscan_single_cluster () =
  let m = Dist_matrix.build 5 (fun _ _ -> 0.1) in
  let r = Dbscan.cluster ~eps:1.0 ~min_points:3 m in
  Alcotest.(check (list (list int))) "one cluster of all" [ [ 0; 1; 2; 3; 4 ] ]
    r.Dbscan.clusters

let prop_dbscan_partition =
  QCheck.Test.make ~name:"dbscan clusters + noise partition the items" ~count:80
    QCheck.(int_range 1 20)
    (fun n ->
      let rng = Leakdetect_util.Prng.create (n * 53) in
      let m = random_matrix rng n in
      let r = Dbscan.cluster ~eps:0.4 ~min_points:2 m in
      let members = List.concat r.Dbscan.clusters @ r.Dbscan.noise in
      List.sort compare members = List.init n Fun.id)

(* --- Cophenetic --- *)

let test_cophenetic_matrix () =
  let m = Cophenetic.matrix (sample_tree ()) in
  Alcotest.(check (float 1e-9)) "within first pair" 1.0 (Dist_matrix.get m 0 1);
  Alcotest.(check (float 1e-9)) "within second pair" 2.0 (Dist_matrix.get m 2 3);
  Alcotest.(check (float 1e-9)) "across" 4.0 (Dist_matrix.get m 0 3);
  Alcotest.(check (float 1e-9)) "across other" 4.0 (Dist_matrix.get m 1 2)

let test_cophenetic_self_correlation () =
  (* Correlating a tree against its own cophenetic matrix is exactly 1. *)
  let rng = Leakdetect_util.Prng.create 5 in
  let m = random_matrix rng 10 in
  let tree = Option.get (Agglomerative.cluster m) in
  let coph = Cophenetic.matrix tree in
  Alcotest.(check (float 1e-9)) "self correlation" 1. (Cophenetic.correlation coph tree)

let test_cophenetic_correlation_bounds () =
  let rng = Leakdetect_util.Prng.create 8 in
  for n = 3 to 12 do
    let m = random_matrix rng n in
    let tree = Option.get (Agglomerative.cluster m) in
    let c = Cophenetic.correlation m tree in
    if c < -1.0000001 || c > 1.0000001 then Alcotest.failf "correlation out of range: %f" c
  done

let test_cophenetic_bad_leaves () =
  let tree = Dendrogram.node (Dendrogram.Leaf 3) (Dendrogram.Leaf 7) 1. in
  Alcotest.check_raises "non-contiguous leaves"
    (Invalid_argument "Cophenetic.matrix: leaves must be 0..n-1") (fun () ->
      ignore (Cophenetic.matrix tree))

let test_linkage_names () =
  List.iter
    (fun l ->
      Alcotest.(check bool)
        (Agglomerative.linkage_name l) true
        (Agglomerative.linkage_of_name (Agglomerative.linkage_name l) = Some l))
    [ Agglomerative.Group_average; Agglomerative.Single; Agglomerative.Complete ];
  Alcotest.(check bool) "upgma alias" true
    (Agglomerative.linkage_of_name "upgma" = Some Agglomerative.Group_average)

(* --- Cluster (unified entry point) --- *)

let prop_run_matches_agglomerative =
  QCheck.Test.make ~count:40 ~name:"Cluster.run dispatches to Agglomerative verbatim"
    QCheck.(pair (int_range 1 24) (int_range 0 1000))
    (fun (n, seed) ->
      let m = random_matrix (Leakdetect_util.Prng.create seed) n in
      match (Cluster.run (Cluster.Agglomerative Agglomerative.Single) m,
             Agglomerative.cluster ~linkage:Agglomerative.Single m) with
      | Cluster.Hierarchy a, Some b -> a = b
      | _ -> false)

let prop_run_flat_clusters_partition =
  QCheck.Test.make ~count:40 ~name:"Cluster.flat_clusters partitions every algorithm"
    QCheck.(pair (int_range 1 20) (int_range 0 1000))
    (fun (n, seed) ->
      let m = random_matrix (Leakdetect_util.Prng.create seed) n in
      let covers algorithm threshold =
        let flat = Cluster.flat_clusters ~threshold (Cluster.run algorithm m) in
        List.sort compare (List.concat flat) = List.init n Fun.id
      in
      covers (Cluster.Agglomerative Agglomerative.Group_average) 0.4
      && covers (Cluster.Nn_chain Agglomerative.Complete) infinity
      && covers (Cluster.Kmedoids { k = 1 + (seed mod 4); seed }) infinity
      && covers (Cluster.Dbscan { eps = 0.3; min_points = 2 }) infinity)

let test_run_kmedoids_by_value () =
  let m = random_matrix (Leakdetect_util.Prng.create 5) 12 in
  let a = Cluster.run (Cluster.Kmedoids { k = 3; seed = 11 }) m in
  let b = Cluster.run (Cluster.Kmedoids { k = 3; seed = 11 }) m in
  Alcotest.(check bool) "same seed, same partition" true (a = b);
  match a with
  | Cluster.Partition { clusters; noise } ->
    Alcotest.(check int) "no noise from kmedoids" 0 (List.length noise);
    Alcotest.(check int) "three clusters" 3 (List.length clusters)
  | _ -> Alcotest.fail "expected a partition"

let test_run_empty_and_names () =
  Alcotest.(check bool) "empty matrix" true
    (Cluster.run Cluster.default (Dist_matrix.create 0) = Cluster.Empty);
  Alcotest.(check string) "default name" "agglomerative-group-average"
    (Cluster.name Cluster.default);
  Alcotest.(check bool) "hierarchical split" true
    (Cluster.is_hierarchical (Cluster.Nn_chain Agglomerative.Single)
    && not (Cluster.is_hierarchical (Cluster.Dbscan { eps = 1.; min_points = 2 })))

let test_run_dbscan_noise_singletons () =
  (* Two tight pairs plus one far outlier: flat_clusters must keep the
     outlier as a singleton, not drop it. *)
  let coords = [| 0.0; 0.05; 1.0; 1.05; 5.0 |] in
  let m = Dist_matrix.build 5 (fun i j -> Float.abs (coords.(i) -. coords.(j))) in
  let flat =
    Cluster.flat_clusters (Cluster.run (Cluster.Dbscan { eps = 0.2; min_points = 2 }) m)
  in
  Alcotest.(check (list (list int))) "noise appended as singleton"
    [ [ 0; 1 ]; [ 2; 3 ]; [ 4 ] ]
    (List.sort compare flat)

let suite =
  [
    ( "cluster.matrix",
      [
        Alcotest.test_case "basic" `Quick test_matrix_basic;
        Alcotest.test_case "build" `Quick test_matrix_build;
        Alcotest.test_case "errors" `Quick test_matrix_errors;
        Alcotest.test_case "empty" `Quick test_matrix_empty;
      ] );
    ( "cluster.dendrogram",
      [
        Alcotest.test_case "members/size/height" `Quick test_dendrogram_members;
        Alcotest.test_case "cut" `Quick test_dendrogram_cut;
        Alcotest.test_case "cut_into" `Quick test_dendrogram_cut_into;
        Alcotest.test_case "heights" `Quick test_dendrogram_heights;
        Alcotest.test_case "newick" `Quick test_dendrogram_newick;
      ] );
    ( "cluster.agglomerative",
      [
        Alcotest.test_case "UPGMA hand-computed" `Quick test_upgma_hand_computed;
        Alcotest.test_case "linkages differ as expected" `Quick test_linkage_differs;
        Alcotest.test_case "edge cases" `Quick test_cluster_edge_cases;
        Alcotest.test_case "linkage names" `Quick test_linkage_names;
        qtest prop_leaves_preserved;
        qtest prop_merge_count;
        qtest prop_group_average_monotone;
        qtest prop_single_below_complete;
      ] );
    ( "cluster.nn_chain",
      [
        Alcotest.test_case "hand case" `Quick test_nn_chain_hand_case;
        Alcotest.test_case "edge cases" `Quick test_nn_chain_edge_cases;
        qtest prop_nn_chain_average;
        qtest prop_nn_chain_single;
        qtest prop_nn_chain_complete;
      ] );
    ( "cluster.kmedoids",
      [
        Alcotest.test_case "two blobs" `Quick test_kmedoids_two_blobs;
        Alcotest.test_case "k clamped" `Quick test_kmedoids_k_clamped;
        Alcotest.test_case "errors" `Quick test_kmedoids_errors;
        qtest prop_kmedoids_partition;
      ] );
    ( "cluster.dbscan",
      [
        Alcotest.test_case "two blobs" `Quick test_dbscan_two_blobs;
        Alcotest.test_case "noise" `Quick test_dbscan_noise;
        Alcotest.test_case "all noise" `Quick test_dbscan_all_noise;
        Alcotest.test_case "single cluster" `Quick test_dbscan_single_cluster;
        qtest prop_dbscan_partition;
      ] );
    ( "cluster.run",
      [
        Alcotest.test_case "kmedoids by value" `Quick test_run_kmedoids_by_value;
        Alcotest.test_case "empty + names" `Quick test_run_empty_and_names;
        Alcotest.test_case "dbscan noise singletons" `Quick test_run_dbscan_noise_singletons;
        qtest prop_run_matches_agglomerative;
        qtest prop_run_flat_clusters_partition;
      ] );
    ( "cluster.cophenetic",
      [
        Alcotest.test_case "matrix" `Quick test_cophenetic_matrix;
        Alcotest.test_case "self correlation" `Quick test_cophenetic_self_correlation;
        Alcotest.test_case "correlation bounds" `Quick test_cophenetic_correlation_bounds;
        Alcotest.test_case "bad leaves" `Quick test_cophenetic_bad_leaves;
      ] );
  ]
