(* Single alcotest runner over every library's suite. *)

let () =
  Alcotest.run "leakdetect"
    (Test_util.suite @ Test_text.suite @ Test_crypto.suite @ Test_compress.suite
   @ Test_net.suite @ Test_http.suite @ Test_cluster.suite @ Test_sketch.suite
   @ Test_core.suite
   @ Test_android.suite @ Test_monitor.suite @ Test_baseline.suite
   @ Test_extensions.suite @ Test_fault.suite @ Test_store.suite
   @ Test_parallel.suite @ Test_obs.suite @ Test_normalize.suite
   @ Test_adversary.suite @ Test_distrib.suite @ Test_integration.suite)
