(* Tests for Leakdetect_parallel: the domain pool itself, the cache
   freezing/shadow protocol it relies on, and qcheck properties asserting
   the parallel pipeline phases are bit-identical to sequential. *)

module Pool = Leakdetect_parallel.Pool
module Compressor = Leakdetect_compress.Compressor
module Trigram = Leakdetect_text.Trigram
module Distance = Leakdetect_core.Distance
module Detector = Leakdetect_core.Detector
module Siggen = Leakdetect_core.Siggen
module Dist_matrix = Leakdetect_cluster.Dist_matrix
module Packet = Leakdetect_http.Packet
module Ipv4 = Leakdetect_net.Ipv4

let qtest = QCheck_alcotest.to_alcotest

let mk ?(ip = "74.125.1.2") ?(port = 80) ?(host = "r.admob.com")
    ?(rline = "GET /ad HTTP/1.1") ?(cookie = "") ?(body = "") () =
  Packet.v ~ip:(Option.get (Ipv4.of_string ip)) ~port ~host ~request_line:rline
    ~cookie ~body

(* --- pool primitives --- *)

let test_parallel_for_covers_all () =
  Pool.with_pool 4 (fun pool ->
      let n = 1000 in
      let hits = Array.make n 0 in
      Pool.parallel_for ~pool ~chunk:7 n (fun i -> hits.(i) <- hits.(i) + 1);
      Alcotest.(check bool) "every index exactly once" true
        (Array.for_all (fun c -> c = 1) hits))

let test_parallel_for_sequential_fallback () =
  let n = 100 in
  let hits = Array.make n 0 in
  Pool.parallel_for ~pool:None n (fun i -> hits.(i) <- hits.(i) + 1);
  Alcotest.(check bool) "pool:None covers all indices" true
    (Array.for_all (fun c -> c = 1) hits)

let test_with_pool_sizes () =
  Pool.with_pool 1 (fun pool ->
      Alcotest.(check bool) "jobs=1 gives no pool" true (pool = None));
  Pool.with_pool 3 (fun pool ->
      match pool with
      | None -> Alcotest.fail "jobs=3 should give a pool"
      | Some p -> Alcotest.(check int) "pool size" 3 (Pool.size p))

let test_parallel_map_array_matches_sequential () =
  Pool.with_pool 4 (fun pool ->
      let a = Array.init 513 (fun i -> i * 3) in
      let expect = Array.map (fun x -> (x * x) + 1) a in
      let got = Pool.parallel_map_array ~pool (fun x -> (x * x) + 1) a in
      Alcotest.(check bool) "map identical" true (expect = got);
      let got_init = Pool.parallel_init ~pool 513 (fun i -> (i * 2) - 5) in
      Alcotest.(check bool) "init identical" true
        (Array.init 513 (fun i -> (i * 2) - 5) = got_init))

let test_parallel_for_with_scratch () =
  Pool.with_pool 4 (fun pool ->
      let inits = Atomic.make 0 in
      let n = 400 in
      let out = Array.make n 0 in
      Pool.parallel_for_with ~pool ~chunk:3
        ~init:(fun () ->
          Atomic.incr inits;
          Buffer.create 16)
        n
        (fun buf i ->
          Buffer.clear buf;
          Buffer.add_string buf (string_of_int i);
          out.(i) <- int_of_string (Buffer.contents buf));
      Alcotest.(check bool) "scratch results correct" true
        (Array.for_all (fun v -> v >= 0) out && out.(7) = 7 && out.(399) = 399);
      let k = Atomic.get inits in
      Alcotest.(check bool) "at most one init per domain" true (k >= 1 && k <= 4))

let test_exception_propagates_and_pool_survives () =
  Pool.with_pool 4 (fun pool ->
      (try
         Pool.parallel_for ~pool 100 (fun i -> if i = 41 then failwith "boom");
         Alcotest.fail "expected exception"
       with Failure m -> Alcotest.(check string) "first exception re-raised" "boom" m);
      (* The pool must remain usable after a failed job. *)
      let total = Atomic.make 0 in
      Pool.parallel_for ~pool 100 (fun i -> ignore (Atomic.fetch_and_add total i));
      Alcotest.(check int) "pool alive after failure" 4950 (Atomic.get total))

let test_guided_claims_are_coarse () =
  Pool.with_pool 4 (fun pool ->
      let p = Option.get pool in
      let n = 1000 in
      let hits = Array.make n 0 in
      Pool.parallel_for ~pool n (fun i -> hits.(i) <- hits.(i) + 1);
      Alcotest.(check bool) "guided covers all indices" true
        (Array.for_all (fun c -> c = 1) hits);
      let guided = Pool.last_claims p in
      (* Every guided claim takes at least [chunk_floor] indices, so the
         claim count is bounded by n/floor plus CAS-race slack — versus one
         claim per index with the old fine-grained counter. *)
      Alcotest.(check bool)
        (Printf.sprintf "guided claims coarse (%d for n=%d)" guided n)
        true
        (guided >= 1 && guided <= (n / Pool.chunk_floor) + 4);
      (* An explicit chunk:1 is the old per-index behavior the guided mode
         replaces: ~n claim operations for the same loop. *)
      Pool.parallel_for ~pool ~chunk:1 n ignore;
      Alcotest.(check bool) "chunk:1 claims per index" true
        (Pool.last_claims p >= n / 2);
      Alcotest.(check bool) "guided is at least 4x coarser" true
        (guided * 4 <= n);
      (* Below two floors there is nothing to overlap: the job runs on the
         caller with zero claim traffic. *)
      Pool.parallel_for ~pool ((2 * Pool.chunk_floor) - 1) ignore;
      Alcotest.(check int) "tiny n runs sequentially, no claims" 0
        (Pool.last_claims p))

let test_warm_pool_reused () =
  Alcotest.(check bool) "warm jobs=1 is sequential" true (Pool.warm 1 = None);
  let a = Option.get (Pool.warm 3) in
  Alcotest.(check int) "warm pool size" 3 (Pool.size a);
  let b = Option.get (Pool.warm 3) in
  Alcotest.(check bool) "same physical pool across calls" true (a == b);
  let c = Option.get (Pool.warm 2) in
  Alcotest.(check bool) "distinct size gives distinct pool" true (a != c);
  (* Still a working pool, and usable repeatedly. *)
  let total = Atomic.make 0 in
  Pool.parallel_for ~pool:(Some a) 100 (fun i -> ignore (Atomic.fetch_and_add total i));
  Alcotest.(check int) "warm pool executes" 4950 (Atomic.get total);
  (* After an explicit registry shutdown, warm must hand out a fresh pool
     rather than the closed one. *)
  Pool.shutdown_warm ();
  let d = Option.get (Pool.warm 3) in
  Alcotest.(check bool) "fresh pool after shutdown_warm" true (a != d);
  Atomic.set total 0;
  Pool.parallel_for ~pool:(Some d) 100 (fun i -> ignore (Atomic.fetch_and_add total i));
  Alcotest.(check int) "fresh warm pool executes" 4950 (Atomic.get total)

let test_shutdown_idempotent () =
  let p = Pool.create 2 in
  Pool.shutdown p;
  Pool.shutdown p;
  (try
     Pool.parallel_for ~pool:(Some p) 10 ignore;
     Alcotest.fail "expected Invalid_argument after shutdown"
   with Invalid_argument _ -> ())

(* --- cache freezing and shadows --- *)

let test_frozen_compressor_cache_degrades () =
  let c = Compressor.Cache.create Compressor.Lz77 in
  ignore (Compressor.Cache.length_bits c "warm");
  Compressor.Cache.freeze c;
  let before = Compressor.Cache.size c in
  let direct = Compressor.length_bits Compressor.Lz77 "cold-string" in
  Alcotest.(check int) "frozen miss computes the same value" direct
    (Compressor.Cache.length_bits c "cold-string");
  Alcotest.(check int) "frozen miss does not grow the table" before
    (Compressor.Cache.size c);
  let st = Compressor.Cache.stats c in
  Alcotest.(check bool) "frozen miss counted" true
    (st.Compressor.Cache.frozen_misses >= 1);
  (try
     Compressor.Cache.preload c "x" 5;
     Alcotest.fail "preload on frozen cache must raise"
   with Invalid_argument _ -> ());
  Compressor.Cache.thaw c;
  ignore (Compressor.Cache.length_bits c "cold-string");
  Alcotest.(check int) "thawed cache caches again" (before + 1)
    (Compressor.Cache.size c)

let test_frozen_trigram_cache_degrades () =
  let c = Trigram.Cache.create () in
  ignore (Trigram.Cache.distance c "abcabc" "abcxyz");
  Trigram.Cache.freeze c;
  let before = Trigram.Cache.size c in
  let d = Trigram.Cache.distance c "fresh-string-one" "fresh-string-two" in
  Alcotest.(check (float 1e-9)) "frozen distance equals direct" d
    (Trigram.cosine_distance "fresh-string-one" "fresh-string-two");
  Alcotest.(check int) "no growth while frozen" before (Trigram.Cache.size c);
  Alcotest.(check bool) "frozen misses counted" true (Trigram.Cache.frozen_misses c >= 2);
  (try
     Trigram.Cache.preload c "x";
     Alcotest.fail "preload on frozen trigram cache must raise"
   with Invalid_argument _ -> ())

let test_shadow_cache () =
  let parent = Compressor.Cache.create Compressor.Lz77 in
  (try
     ignore (Compressor.Cache.shadow parent);
     Alcotest.fail "shadow of unfrozen parent must raise"
   with Invalid_argument _ -> ());
  ignore (Compressor.Cache.length_bits parent "shared-string");
  ignore (Compressor.Cache.ncd parent "aaaa" "aaab");
  Compressor.Cache.freeze parent;
  let parent_size = Compressor.Cache.size parent in
  let parent_pairs = Compressor.Cache.pair_size parent in
  let sh = Compressor.Cache.shadow parent in
  (* Reads through to the frozen parent... *)
  Alcotest.(check int) "shadow reads parent singleton"
    (Compressor.length_bits Compressor.Lz77 "shared-string")
    (Compressor.Cache.length_bits sh "shared-string");
  Alcotest.(check (float 1e-9)) "shadow ncd equals parent ncd"
    (Compressor.Cache.ncd parent "aaaa" "aaab")
    (Compressor.Cache.ncd sh "aaaa" "aaab");
  (* ...caches private misses locally, never touching the parent. *)
  ignore (Compressor.Cache.ncd sh "private-x" "private-y");
  Alcotest.(check bool) "shadow caches its own misses" true
    (Compressor.Cache.size sh > 0 && Compressor.Cache.pair_size sh > 0);
  Alcotest.(check int) "parent singleton table untouched" parent_size
    (Compressor.Cache.size parent);
  Alcotest.(check int) "parent pair table untouched" parent_pairs
    (Compressor.Cache.pair_size parent);
  Alcotest.(check int) "no frozen misses via shadow on warm keys" 0
    (Compressor.Cache.stats parent).Compressor.Cache.frozen_misses

(* --- parallel/sequential equivalence properties --- *)

let packet_gen =
  QCheck.Gen.(
    let field = string_size ~gen:(char_range 'a' 'z') (0 -- 30) in
    let ip =
      map
        (fun (a, b) -> Printf.sprintf "%d.%d.1.2" (10 + (a mod 200)) (b mod 250))
        (pair small_nat small_nat)
    in
    map
      (fun (ip, (host, (rline, (cookie, body)))) ->
        mk ~ip
          ~host:(if host = "" then "h.example.com" else host ^ ".example.com")
          ~rline:("GET /" ^ rline ^ " HTTP/1.1")
          ~cookie ~body ())
      (pair ip (pair field (pair field (pair field field)))))

let packets_gen n_min n_max =
  QCheck.Gen.(map Array.of_list (list_size (n_min -- n_max) packet_gen))

let matrices_equal a b =
  Dist_matrix.size a = Dist_matrix.size b
  && begin
    let n = Dist_matrix.size a in
    let ok = ref true in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        if Dist_matrix.get a i j <> Dist_matrix.get b i j then ok := false
      done
    done;
    !ok
  end

let prop_matrix_jobs_equivalence =
  QCheck.Test.make ~name:"Distance.matrix identical at jobs=1 vs jobs=4" ~count:15
    (QCheck.make (packets_gen 2 12)) (fun packets ->
      let seq = Distance.matrix (Distance.create ()) packets in
      let par =
        Pool.with_pool 4 (fun pool -> Distance.matrix ?pool (Distance.create ()) packets)
      in
      matrices_equal seq par)

let prop_detect_bitmap_jobs_equivalence =
  QCheck.Test.make ~name:"Detector.detect_bitmap identical at jobs=1 vs jobs=4"
    ~count:15
    (QCheck.make (packets_gen 1 40))
    (fun packets ->
      (* Sign a fixed, deterministic sample so only detection varies. *)
      let sample =
        [|
          mk ~rline:"GET /ad?imei=355021930123456&size=320x50 HTTP/1.1" ();
          mk ~host:"mm.admob.com"
            ~rline:"GET /ad?imei=355021930123456&size=640x100 HTTP/1.1" ();
          mk ~host:"data.flurry.com" ~rline:"POST /aap.do HTTP/1.1"
            ~body:"ak=aabb&u=9f8e7d" ();
        |]
      in
      let gen = Siggen.generate (Distance.create ()) sample in
      let det = Detector.create gen.Siggen.signatures in
      let seq = Detector.detect_bitmap det packets in
      let par = Pool.with_pool 4 (fun pool -> Detector.detect_bitmap ?pool det packets) in
      seq = par
      && Detector.count_detected det packets
         = Pool.with_pool 4 (fun pool -> Detector.count_detected ?pool det packets))

let suite =
  [
    ( "parallel",
      [
        Alcotest.test_case "parallel_for covers all indices" `Quick
          test_parallel_for_covers_all;
        Alcotest.test_case "sequential fallback" `Quick
          test_parallel_for_sequential_fallback;
        Alcotest.test_case "with_pool sizes" `Quick test_with_pool_sizes;
        Alcotest.test_case "map_array / init match sequential" `Quick
          test_parallel_map_array_matches_sequential;
        Alcotest.test_case "per-domain scratch" `Quick test_parallel_for_with_scratch;
        Alcotest.test_case "exception propagation" `Quick
          test_exception_propagates_and_pool_survives;
        Alcotest.test_case "guided claims are coarse" `Quick
          test_guided_claims_are_coarse;
        Alcotest.test_case "warm pool reused across calls" `Quick
          test_warm_pool_reused;
        Alcotest.test_case "shutdown idempotent" `Quick test_shutdown_idempotent;
        Alcotest.test_case "frozen compressor cache degrades" `Quick
          test_frozen_compressor_cache_degrades;
        Alcotest.test_case "frozen trigram cache degrades" `Quick
          test_frozen_trigram_cache_degrades;
        Alcotest.test_case "shadow cache" `Quick test_shadow_cache;
        qtest prop_matrix_jobs_equivalence;
        qtest prop_detect_bitmap_jobs_equivalence;
      ] );
  ]
