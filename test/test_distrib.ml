(* Tests for the distribution tier (Leakdetect_distrib): changelog
   algebra and codec, authority HTTP protocol and k-anonymous promotion,
   journal crash-point sweeps, the delta client's fallback ladder, and a
   miniature end-to-end fault soak. *)

module Crc32 = Leakdetect_util.Crc32
module Fault = Leakdetect_fault.Fault
module Wal = Leakdetect_store.Wal
module Http = Leakdetect_http
module Signature = Leakdetect_core.Signature
module Signature_io = Leakdetect_core.Signature_io
module Signature_client = Leakdetect_monitor.Signature_client
module Changelog = Leakdetect_distrib.Changelog
module Authority = Leakdetect_distrib.Authority
module Delta_client = Leakdetect_distrib.Delta_client
module Shard_map = Leakdetect_distrib.Shard_map
module Relay = Leakdetect_distrib.Relay
module Soak = Leakdetect_distrib.Soak
module Topology = Leakdetect_distrib.Topology

let qtest = QCheck_alcotest.to_alcotest

(* --- scratch directories --- *)

let fresh_dir () =
  let f = Filename.temp_file "ld_distrib_test" "" in
  Sys.remove f;
  Sys.mkdir f 0o700;
  f

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let with_dir f =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let sig_ ?(mode = Signature.Conjunction) ?(cluster_size = 2) id tokens =
  Signature.make ~id ~mode ~cluster_size tokens

let s1 = sig_ 1 [ "imei=355021930123456"; "loc=35.6" ]
let s2 = sig_ 2 ~mode:Signature.Ordered [ "GET"; "/track"; "id=9774d56d" ]
let s3 = sig_ 3 [ "mac=00:11:22:33:44:55" ]

let lines set = String.concat "\n" (List.map Signature_io.to_line set)

let check_set msg expected got =
  Alcotest.(check string) msg (lines expected) (lines got)

(* --- changelog --- *)

let test_changelog_ops () =
  let log = Changelog.create () in
  Alcotest.(check int) "fresh version" 0 (Changelog.version log);
  let e1 = Changelog.append log (Changelog.Add s1) in
  Alcotest.(check int) "first entry at v1" 1 e1.Changelog.version;
  ignore (Changelog.append log (Changelog.Add s3));
  ignore (Changelog.append log (Changelog.Add s2));
  check_set "id-ascending regardless of append order" [ s1; s2; s3 ]
    (Changelog.current log);
  (* Add with an existing id replaces. *)
  let s1' = sig_ 1 [ "imei=355021930123456"; "loc=51.5" ] in
  ignore (Changelog.append log (Changelog.Add s1'));
  check_set "replace by id" [ s1'; s2; s3 ] (Changelog.current log);
  ignore (Changelog.append log (Changelog.Retire 2));
  check_set "retire removes" [ s1'; s3 ] (Changelog.current log);
  Alcotest.(check int) "version counts every change" 5 (Changelog.version log);
  (* Retire of an absent id is a no-op on the set but still a version. *)
  ignore (Changelog.append log (Changelog.Retire 99));
  check_set "absent retire no-op" [ s1'; s3 ] (Changelog.current log);
  Alcotest.(check int) "next id above every add" 4 (Changelog.next_id log);
  (* checksum_at answers at every retained version. *)
  (match Changelog.checksum_at log 2 with
  | Some sum ->
    Alcotest.(check int) "checksum_at matches replay" sum
      (Changelog.checksum_set [ s1; s3 ])
  | None -> Alcotest.fail "checksum_at must answer above the horizon");
  Alcotest.(check (option int)) "checksum beyond head" None
    (Changelog.checksum_at log 7)

let test_changelog_since_and_compact () =
  let log = Changelog.create () in
  ignore (Changelog.append log (Changelog.Add s1));
  ignore (Changelog.append log (Changelog.Add s2));
  ignore (Changelog.append log (Changelog.Add s3));
  ignore (Changelog.append log (Changelog.Retire 1));
  (match Changelog.since log 2 with
  | Some [ e3; e4 ] ->
    Alcotest.(check (list int)) "suffix versions" [ 3; 4 ]
      [ e3.Changelog.version; e4.Changelog.version ]
  | _ -> Alcotest.fail "since 2 must be the two newest entries");
  (match Changelog.since log 4 with
  | Some [] -> ()
  | _ -> Alcotest.fail "since head must be the empty delta");
  (match Changelog.since log 5 with
  | None -> ()
  | Some _ -> Alcotest.fail "since beyond head must be None");
  Changelog.compact log ~keep:1;
  Alcotest.(check int) "horizon advanced" 3 (Changelog.horizon log);
  Alcotest.(check int) "head unchanged" 4 (Changelog.version log);
  check_set "set unchanged by compaction" [ s2; s3 ] (Changelog.current log);
  (match Changelog.since log 1 with
  | None -> ()
  | Some _ -> Alcotest.fail "sub-horizon since must be None");
  (match Changelog.since log 3 with
  | Some [ e ] -> Alcotest.(check int) "servable suffix" 4 e.Changelog.version
  | _ -> Alcotest.fail "since horizon must serve the kept entry");
  Alcotest.(check (option int)) "checksum below horizon" None
    (Changelog.checksum_at log 1);
  (* next_id survives compaction: retired id 1 is never reissued. *)
  Alcotest.(check int) "next_id preserved" 4 (Changelog.next_id log)

let test_changelog_codec () =
  let entries =
    [ { Changelog.version = 1; change = Changelog.Add s2 };
      { Changelog.version = 2; change = Changelog.Retire 7 };
      { Changelog.version = 3;
        change = Changelog.Add (sig_ 9 [ "tab\tin"; "line\nbreak" ]) } ]
  in
  List.iter
    (fun e ->
      match Changelog.entry_of_line (Changelog.entry_to_line e) with
      | Ok e' ->
        Alcotest.(check string) "line-stable roundtrip"
          (Changelog.entry_to_line e) (Changelog.entry_to_line e')
      | Error err -> Alcotest.fail err)
    entries;
  List.iter
    (fun bad ->
      match Changelog.entry_of_line bad with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "%S must not decode" bad)
    [ ""; "x\t1\tjunk"; "a\tnope\t"; "r\t1\tnotanid"; "a\t1"; "r\t-1\t3" ]

let test_changelog_restore_rejects_gaps () =
  let ok =
    Changelog.restore ~base_version:2 ~base:[ s1 ] ~next_id:5
      ~entries:[ { Changelog.version = 3; change = Changelog.Add s2 } ]
  in
  (match ok with
  | Ok log ->
    Alcotest.(check int) "restored head" 3 (Changelog.version log);
    check_set "restored set" [ s1; s2 ] (Changelog.current log)
  | Error e -> Alcotest.fail e);
  match
    Changelog.restore ~base_version:2 ~base:[ s1 ] ~next_id:5
      ~entries:[ { Changelog.version = 5; change = Changelog.Add s2 } ]
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "a version gap must not restore"

(* Any interleaving of adds/retires, compacted anywhere: the delta served
   from every servable [since] lands exactly on the full set. *)
let prop_delta_equals_snapshot =
  let gen =
    QCheck.make
      ~print:(fun (ops, keep) ->
        Printf.sprintf "%d ops, keep %d" (List.length ops) keep)
      QCheck.Gen.(
        pair
          (list_size (1 -- 25)
             (pair (int_range 0 1) (pair (int_range 1 8) (int_range 0 999))))
          (int_range 0 10))
  in
  QCheck.Test.make ~name:"delta from any since equals the full download"
    ~count:200 gen
    (fun (ops, keep) ->
      let log = Changelog.create () in
      List.iter
        (fun (kind, (id, tok)) ->
          let change =
            if kind = 0 then
              Changelog.Add (sig_ id [ Printf.sprintf "t%d" tok ])
            else Changelog.Retire id
          in
          ignore (Changelog.append log change))
        ops;
      Changelog.compact log ~keep;
      let full = Changelog.current log in
      let ok = ref true in
      for since = 0 to Changelog.version log do
        match Changelog.since log since with
        | None -> if since >= Changelog.horizon log then ok := false
        | Some entries ->
          (* Rebuild the client-side set at [since] by replaying the log
             from scratch — then apply the delta. *)
          let at_since =
            let log' = Changelog.create () in
            List.iter
              (fun (kind, (id, tok)) ->
                if Changelog.version log' < since then
                  ignore
                    (Changelog.append log'
                       (if kind = 0 then
                          Changelog.Add (sig_ id [ Printf.sprintf "t%d" tok ])
                        else Changelog.Retire id)))
              ops;
            Changelog.current log'
          in
          let landed =
            List.fold_left
              (fun set (e : Changelog.entry) ->
                Changelog.apply_change set e.Changelog.change)
              at_since entries
          in
          if lines landed <> lines full then ok := false
      done;
      !ok)

(* --- authority: protocol --- *)

let get target =
  Http.Request.make
    ~headers:(Http.Headers.of_list [ ("Host", "authority.test") ])
    Http.Request.GET target

let post target body =
  Http.Request.make
    ~headers:(Http.Headers.of_list [ ("Host", "authority.test") ])
    ~body Http.Request.POST target

let header r name = Http.Headers.get r.Http.Response.headers name

let test_authority_http_statuses () =
  let auth = Authority.create () in
  let (_ : int) = Authority.publish auth ~tenant:"t0" [ s1; s2 ] in
  let check_status msg expected request =
    Alcotest.(check int) msg expected
      (Authority.handle auth request).Http.Response.status
  in
  check_status "unknown path" 404 (get "/nope");
  check_status "POST on /signatures" 405 (post "/signatures?tenant=t0" "");
  check_status "GET on /candidates" 405 (get "/candidates?tenant=t0&reporter=r");
  check_status "missing tenant" 400 (get "/signatures");
  check_status "bad tenant id" 400 (get "/signatures?tenant=bad%20id");
  check_status "unparseable since" 400 (get "/signatures?tenant=t0&since=banana");
  check_status "negative since" 400 (get "/signatures?tenant=t0&since=-1");
  check_status "bad reporter id" 400 (post "/candidates?tenant=t0&reporter=a%20b" "x");
  check_status "empty candidate body" 400 (post "/candidates?tenant=t0&reporter=r" "");
  (* 304 carries version and checksum headers. *)
  let r = Authority.handle auth (get "/signatures?tenant=t0&since=2") in
  Alcotest.(check int) "up-to-date is 304" 304 r.Http.Response.status;
  Alcotest.(check (option string)) "304 version header" (Some "2")
    (header r "X-Signature-Version");
  Alcotest.(check (option string)) "304 checksum header"
    (Some (Crc32.to_hex (Changelog.wire_checksum ~version:2 [ s1; s2 ])))
    (header r "X-Signature-Checksum");
  (* Delta mode for a servable suffix. *)
  let r = Authority.handle auth (get "/signatures?tenant=t0&since=1") in
  Alcotest.(check int) "delta is 200" 200 r.Http.Response.status;
  Alcotest.(check (option string)) "delta mode" (Some "delta")
    (header r "X-Signature-Mode");
  Alcotest.(check (option string)) "since echoed" (Some "1")
    (header r "X-Signature-Since");
  Alcotest.(check string) "delta body is the suffix"
    (Changelog.entry_to_line { Changelog.version = 2; change = Changelog.Add s2 })
    r.Http.Response.body;
  (* Snapshot when forced, and for an unknown (empty) tenant. *)
  let r = Authority.handle auth (get "/signatures?tenant=t0&since=1&full=1") in
  Alcotest.(check (option string)) "full=1 forces snapshot" (Some "snapshot")
    (header r "X-Signature-Mode");
  Alcotest.(check string) "snapshot body" (lines [ s1; s2 ]) r.Http.Response.body;
  let r = Authority.handle auth (get "/signatures?tenant=ghost&full=1") in
  Alcotest.(check int) "unknown tenant serves empty snapshot" 200
    r.Http.Response.status;
  Alcotest.(check string) "empty body" "" r.Http.Response.body

let test_authority_snapshot_below_horizon () =
  let auth = Authority.create ~config:{ Authority.default_config with compact_keep = 1 } () in
  let publish set = ignore (Authority.publish auth ~tenant:"t0" set) in
  publish [ s1 ];
  publish [ s1; s2 ];
  publish [ s1; s2; s3 ];
  Authority.compact auth;
  Alcotest.(check int) "horizon after compaction" 2
    (Authority.horizon auth ~tenant:"t0");
  let r = Authority.handle auth (get "/signatures?tenant=t0&since=1") in
  Alcotest.(check (option string)) "sub-horizon since falls back to snapshot"
    (Some "snapshot")
    (header r "X-Signature-Mode");
  let r = Authority.handle auth (get "/signatures?tenant=t0&since=2") in
  Alcotest.(check (option string)) "at-horizon since still serves delta"
    (Some "delta")
    (header r "X-Signature-Mode")

(* --- authority: k-anonymous promotion --- *)

let candidate tokens = sig_ 0 ~cluster_size:1 tokens

let test_promotion_at_k () =
  let auth = Authority.create () in
  let (_ : int) = Authority.publish auth ~tenant:"t0" [ s1 ] in
  let c = candidate [ "cand"; "imsi=240080000000001" ] in
  let report r = Authority.report_candidate auth ~tenant:"t0" ~reporter:r c in
  (match report "alice" with
  | Authority.Accepted 1 -> ()
  | o -> Alcotest.failf "first report: %s" (Authority.candidate_outcome_to_string o));
  (* The same reporter again is a duplicate, never double-counted. *)
  (match report "alice" with
  | Authority.Duplicate -> ()
  | o -> Alcotest.failf "same reporter: %s" (Authority.candidate_outcome_to_string o));
  (match report "bob" with
  | Authority.Accepted 2 -> ()
  | o -> Alcotest.failf "second report: %s" (Authority.candidate_outcome_to_string o));
  Alcotest.(check int) "nothing published below k" 1
    (Authority.version auth ~tenant:"t0");
  (match report "carol" with
  | Authority.Promoted 2 -> ()
  | o -> Alcotest.failf "k-th report: %s" (Authority.candidate_outcome_to_string o));
  (match Authority.signatures auth ~tenant:"t0" with
  | [ _; s ] ->
    Alcotest.(check int) "cluster_size is the reporter count" 3
      s.Signature.cluster_size;
    Alcotest.(check bool) "fresh id past the published set" true
      (s.Signature.id > s1.Signature.id)
  | _ -> Alcotest.fail "published set plus the promotion");
  (match Authority.promotions auth with
  | [ p ] ->
    Alcotest.(check int) "audit trail records k reporters" 3
      p.Authority.reporters
  | _ -> Alcotest.fail "exactly one promotion audited");
  (* Reporting an already-published signature is a duplicate. *)
  match report "dave" with
  | Authority.Duplicate -> ()
  | o -> Alcotest.failf "published: %s" (Authority.candidate_outcome_to_string o)

let test_reporter_cap () =
  let auth =
    Authority.create
      ~config:{ Authority.default_config with reporter_cap = 2 } ()
  in
  let flood j =
    Authority.report_candidate auth ~tenant:"t0" ~reporter:"byz"
      (candidate [ "flood"; Printf.sprintf "z%d" j ])
  in
  (match flood 0 with Authority.Accepted 1 -> () | _ -> Alcotest.fail "first");
  (match flood 1 with Authority.Accepted 1 -> () | _ -> Alcotest.fail "second");
  (match flood 2 with
  | Authority.Capped -> ()
  | o -> Alcotest.failf "over cap: %s" (Authority.candidate_outcome_to_string o));
  Alcotest.(check int) "pending stuck at the cap" 2
    (Authority.pending_candidates auth ~tenant:"t0");
  (* Promotion frees cap room: k distinct reporters on one candidate. *)
  let c = candidate [ "flood"; "z0" ] in
  ignore (Authority.report_candidate auth ~tenant:"t0" ~reporter:"r2" c);
  (match Authority.report_candidate auth ~tenant:"t0" ~reporter:"r3" c with
  | Authority.Promoted _ -> ()
  | o -> Alcotest.failf "promotion: %s" (Authority.candidate_outcome_to_string o));
  match flood 3 with
  | Authority.Accepted 1 -> ()
  | o ->
    Alcotest.failf "cap must free after promotion: %s"
      (Authority.candidate_outcome_to_string o)

let test_candidates_endpoint_tally () =
  let auth = Authority.create () in
  let body =
    String.concat "\n"
      (List.map Signature_io.to_line
         [ candidate [ "a"; "one" ]; candidate [ "a"; "two" ] ])
  in
  let r =
    Authority.handle auth (post "/candidates?tenant=t0&reporter=r0" body)
  in
  Alcotest.(check int) "tally is 200" 200 r.Http.Response.status;
  Alcotest.(check string) "tally body"
    "accepted\t2\nduplicate\t0\npromoted\t0\ncapped\t0" r.Http.Response.body

(* --- authority: durability and crash points --- *)

let publish_sets auth =
  ignore (Authority.publish auth ~tenant:"t0" [ s1 ]);
  ignore (Authority.publish auth ~tenant:"t0" [ s1; s2 ]);
  ignore (Authority.publish auth ~tenant:"t1" [ s3 ])

let reopen ~dir =
  match Authority.open_ ~dir () with
  | Ok (t, rep) -> (t, rep)
  | Error e -> Alcotest.fail e

let test_authority_reopen () =
  with_dir (fun dir ->
      let auth, rep = reopen ~dir in
      Alcotest.(check bool) "fresh dir has no snapshot" true
        (rep.Authority.snapshot = Authority.Absent);
      publish_sets auth;
      ignore
        (Authority.report_candidate auth ~tenant:"t0" ~reporter:"r0"
           (candidate [ "pending"; "one" ]));
      let v0 = Authority.version auth ~tenant:"t0" in
      let set0 = Authority.signatures auth ~tenant:"t0" in
      Authority.close auth;
      let auth', rep' = reopen ~dir in
      Alcotest.(check bool) "clean tail" true (rep'.Authority.tail = Wal.Clean);
      Alcotest.(check int) "version recovered" v0
        (Authority.version auth' ~tenant:"t0");
      check_set "set recovered byte-identically" set0
        (Authority.signatures auth' ~tenant:"t0");
      Alcotest.(check (list string)) "tenants recovered" [ "t0"; "t1" ]
        (Authority.tenants auth');
      Alcotest.(check int) "pending candidate recovered" 1
        (Authority.pending_candidates auth' ~tenant:"t0");
      Authority.close auth')

(* Crash before each journal append of a multi-change publish: recovery
   must land on exactly the committed prefix, and re-issuing the publish
   must finish the job. *)
let test_publish_crash_point_sweep () =
  let desired = [ s1; s2; s3 ] in
  (* The publish diffs an empty set into three adds: 3 crash points. *)
  for crash_at = 0 to 2 do
    with_dir (fun dir ->
        let auth, _ = reopen ~dir in
        (try
           ignore
             (Authority.publish auth
                ~inject:(fun i ->
                  if i = crash_at then raise (Authority.Crashed "boom"))
                ~tenant:"t0" desired)
         with Authority.Crashed _ -> ());
        Authority.close auth;
        let auth', _ = reopen ~dir in
        Alcotest.(check int)
          (Printf.sprintf "crash at %d: committed prefix only" crash_at)
          crash_at
          (Authority.version auth' ~tenant:"t0");
        check_set
          (Printf.sprintf "crash at %d: prefix of adds" crash_at)
          (List.filteri (fun i _ -> i < crash_at) desired)
          (Authority.signatures auth' ~tenant:"t0");
        (* Re-issuing completes; the diff re-derives the missing tail. *)
        ignore (Authority.publish auth' ~tenant:"t0" desired);
        check_set
          (Printf.sprintf "crash at %d: re-publish completes" crash_at)
          desired
          (Authority.signatures auth' ~tenant:"t0");
        Authority.close auth')
  done

let test_compaction_crash_windows () =
  List.iter
    (fun window ->
      with_dir (fun dir ->
          let auth, _ = reopen ~dir in
          publish_sets auth;
          let v0 = Authority.version auth ~tenant:"t0" in
          let sum0 = Authority.checksum auth ~tenant:"t0" in
          (try
             Authority.compact
               ~inject:(fun p ->
                 if p = window then raise (Authority.Crashed window))
               auth
           with Authority.Crashed _ -> ());
          Authority.close auth;
          let auth', _ = reopen ~dir in
          Alcotest.(check int)
            (window ^ ": version survives")
            v0
            (Authority.version auth' ~tenant:"t0");
          Alcotest.(check int)
            (window ^ ": checksum survives")
            sum0
            (Authority.checksum auth' ~tenant:"t0");
          (* The recovered instance keeps working: mutate and recover again. *)
          ignore (Authority.publish auth' ~tenant:"t0" [ s1 ]);
          let v1 = Authority.version auth' ~tenant:"t0" in
          Authority.close auth';
          let auth'', _ = reopen ~dir in
          Alcotest.(check int)
            (window ^ ": post-recovery publish survives")
            v1
            (Authority.version auth'' ~tenant:"t0");
          Authority.close auth''))
    [ "pre_snapshot"; "post_snapshot" ]

let test_promotion_crash_recovers () =
  with_dir (fun dir ->
      let auth, _ = reopen ~dir in
      let c = candidate [ "cand"; "crashy" ] in
      ignore (Authority.report_candidate auth ~tenant:"t0" ~reporter:"a" c);
      ignore (Authority.report_candidate auth ~tenant:"t0" ~reporter:"b" c);
      ignore (Authority.report_candidate auth ~tenant:"t0" ~reporter:"c" c);
      Alcotest.(check int) "promoted live" 1 (Authority.version auth ~tenant:"t0");
      Authority.close auth;
      (* Replay sees three reports and the promotion's Add: the candidate
         must not resurrect (it is already in the published set). *)
      let auth', rep = reopen ~dir in
      Alcotest.(check int) "no ghost candidate" 0
        (Authority.pending_candidates auth' ~tenant:"t0");
      Alcotest.(check int) "no re-promotion" 0 rep.Authority.promoted_on_recovery;
      Alcotest.(check int) "version stable" 1
        (Authority.version auth' ~tenant:"t0");
      Authority.close auth')

let test_torn_journal_tail () =
  with_dir (fun dir ->
      let auth, _ = reopen ~dir in
      publish_sets auth;
      let v0 = Authority.version auth ~tenant:"t0" in
      Authority.close auth;
      let path = Filename.concat dir "journal.log" in
      let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
      output_string oc "torn garbage that is not a frame";
      close_out oc;
      let auth', rep = reopen ~dir in
      (match rep.Authority.tail with
      | Wal.Torn _ -> ()
      | Wal.Clean -> Alcotest.fail "garbage tail must be reported torn");
      Alcotest.(check int) "committed versions survive the tear" v0
        (Authority.version auth' ~tenant:"t0");
      Authority.close auth')

(* --- delta client --- *)

let loss_free auth raw = Authority.wire_transport auth raw

let new_client tenant = Delta_client.create ~seed:7 ~tenant ()

let sync_updated msg client transport =
  match (Delta_client.sync client ~transport).Signature_client.outcome with
  | Signature_client.Updated v -> v
  | Signature_client.Unchanged -> Alcotest.failf "%s: unchanged" msg
  | Signature_client.Failed e -> Alcotest.failf "%s: failed: %s" msg e

let test_delta_client_happy_path () =
  let auth = Authority.create () in
  let c = new_client "t0" in
  ignore (Authority.publish auth ~tenant:"t0" [ s1 ]);
  let v = sync_updated "bootstrap" c (loss_free auth) in
  Alcotest.(check int) "bootstrap lands on head" 1 v;
  ignore (Authority.publish auth ~tenant:"t0" [ s1; s2 ]);
  ignore (sync_updated "incremental" c (loss_free auth));
  check_set "delta-assembled set" [ s1; s2 ] (Delta_client.signatures c);
  let k = Delta_client.counters c in
  (* The bootstrap from since=0 is itself a servable suffix: both syncs
     count as deltas. *)
  Alcotest.(check int) "both syncs were deltas" 2 k.Delta_client.delta_updates;
  Alcotest.(check int) "no forced fulls" 0 k.Delta_client.forced_full;
  match (Delta_client.sync c ~transport:(loss_free auth)).Signature_client.outcome with
  | Signature_client.Unchanged -> ()
  | _ -> Alcotest.fail "up-to-date sync must be Unchanged"

let test_delta_client_gap_forces_full () =
  let auth =
    Authority.create ~config:{ Authority.default_config with compact_keep = 1 } ()
  in
  let c = new_client "t0" in
  ignore (Authority.publish auth ~tenant:"t0" [ s1 ]);
  ignore (sync_updated "bootstrap" c (loss_free auth));
  ignore (Authority.publish auth ~tenant:"t0" [ s1; s2 ]);
  ignore (Authority.publish auth ~tenant:"t0" [ s1; s2; s3 ]);
  Authority.compact auth;
  (* since=1 is now below the horizon: the server answers snapshot. *)
  ignore (sync_updated "catch-up" c (loss_free auth));
  check_set "snapshot catch-up" [ s1; s2; s3 ] (Delta_client.signatures c);
  let k = Delta_client.counters c in
  Alcotest.(check int) "counted as snapshot" 1 k.Delta_client.snapshot_updates

let test_delta_client_rejects_corrupt_body () =
  let auth = Authority.create () in
  ignore (Authority.publish auth ~tenant:"t0" [ s1; s2 ]);
  let c = new_client "t0" in
  (* Corrupt a signature token in transit, leaving the frame parseable:
     the wire checksum must catch it and the same attempt must recover
     via full=1 (which we serve uncorrupted). *)
  let find_sub s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = if i + m > n then None
      else if String.sub s i m = sub then Some i
      else go (i + 1)
    in
    go 0
  in
  let transport raw =
    match Authority.wire_transport auth raw with
    | Error _ as e -> e
    | Ok response ->
      if find_sub raw "full=1" <> None then Ok response
      else (
        match find_sub response "imei" with
        | None -> Ok response
        | Some i ->
          let b = Bytes.of_string response in
          Bytes.set b (i + 2) 'X';
          Ok (Bytes.to_string b))
  in
  ignore (sync_updated "corrupt delta falls back" c transport);
  check_set "landed on the true set" [ s1; s2 ] (Delta_client.signatures c);
  let k = Delta_client.counters c in
  Alcotest.(check int) "forced full counted" 1 k.Delta_client.forced_full

let test_delta_client_refuses_regression () =
  let auth = Authority.create () in
  ignore (Authority.publish auth ~tenant:"t0" [ s1; s2 ]);
  let c = new_client "t0" in
  ignore (sync_updated "bootstrap" c (loss_free auth));
  (* A rolled-back authority now serves version 1 < client's 2. *)
  let rolled = Authority.create () in
  ignore (Authority.publish rolled ~tenant:"t0" [ s3 ]);
  (match (Delta_client.sync c ~transport:(loss_free rolled)).Signature_client.outcome with
  | Signature_client.Failed _ -> ()
  | _ -> Alcotest.fail "regression must fail the sync");
  Alcotest.(check int) "client version untouched" 2 (Delta_client.version c);
  check_set "client set untouched" [ s1; s2 ] (Delta_client.signatures c);
  let k = Delta_client.counters c in
  Alcotest.(check bool) "refusals counted" true
    (k.Delta_client.regressions_refused > 0)

(* --- mini soak: end-to-end, faults and crash points on --- *)

let test_mini_soak () =
  with_dir (fun dir ->
      let config =
        {
          Soak.default_config with
          Soak.clients = 24;
          ticks = 240;
          sync_period = 12;
          publishes = 10;
          compact_every = 4;
          candidates = 3;
          byzantine = 1;
          drain_rounds = 30;
          seed = 5;
        }
      in
      let report = Soak.run ~dir config in
      let inv = report.Soak.invariants in
      Alcotest.(check int) "no divergence" 0 inv.Soak.divergences;
      Alcotest.(check int) "no regressions" 0 inv.Soak.regressions;
      Alcotest.(check int) "no sub-k promotions" 0 inv.Soak.sub_k_promotions;
      Alcotest.(check int) "no recovery mismatches" 0 inv.Soak.recovery_mismatches;
      Alcotest.(check int) "everyone converged" 0 inv.Soak.unconverged;
      Alcotest.(check bool) "ok" true (Soak.ok report);
      Alcotest.(check bool) "faults actually fired" true
        (List.exists (fun (_, n) -> n > 0) report.Soak.fault_events);
      Alcotest.(check bool) "deltas dominate snapshots" true
        (report.Soak.steady_delta_ratio >= 1.0))

(* --- changelog: the compaction boundary, keep = 0 included --- *)

let test_changelog_compact_keep_zero () =
  let log = Changelog.create () in
  ignore (Changelog.append log (Changelog.Add s1));
  ignore (Changelog.append log (Changelog.Add s2));
  Changelog.compact log ~keep:0;
  Alcotest.(check int) "horizon at head" 2 (Changelog.horizon log);
  (match Changelog.since log 2 with
  | Some [] -> ()
  | Some _ -> Alcotest.fail "at-horizon delta must be empty"
  | None -> Alcotest.fail "a client exactly at the horizon gets the empty delta, not a snapshot");
  (match Changelog.since log 1 with
  | None -> ()
  | Some _ -> Alcotest.fail "one version behind keep:0 must fall back to snapshot");
  check_set "set survives keep:0" [ s1; s2 ] (Changelog.current log);
  Alcotest.(check (option int)) "checksum still answers at the horizon"
    (Some (Changelog.checksum_set [ s1; s2 ]))
    (Changelog.checksum_at log 2)

let test_changelog_digest () =
  let log = Changelog.create () in
  for i = 1 to 10 do
    ignore (Changelog.append log (Changelog.Add (sig_ i [ Printf.sprintf "t%d" i ])))
  done;
  let d = Changelog.digest log ~since:0 ~interval:4 in
  (* Structure: ascending checkpoints, head always last, every line one
     the log itself vouches for. *)
  let versions = List.map fst d in
  Alcotest.(check bool) "ascending" true
    (List.sort_uniq compare versions = versions);
  (match List.rev d with
  | (v, sum) :: _ ->
    Alcotest.(check int) "head checkpoint" 10 v;
    Alcotest.(check int) "head sum" (Changelog.current_checksum log) sum
  | [] -> Alcotest.fail "digest must carry the head");
  List.iter
    (fun (v, sum) ->
      Alcotest.(check (option int)) "checkpoint agrees with checksum_at"
        (Some sum) (Changelog.checksum_at log v))
    d;
  (* Head-only freshness probe. *)
  Alcotest.(check (list (pair int int))) "head-only probe"
    [ (10, Changelog.current_checksum log) ]
    (Changelog.digest log ~since:max_int ~interval:1);
  (* Codec roundtrip, and the empty digest. *)
  (match Changelog.digest_of_body (Changelog.digest_to_body d) with
  | Ok d' -> Alcotest.(check (list (pair int int))) "codec roundtrip" d d'
  | Error e -> Alcotest.failf "digest roundtrip: %s" e);
  (match Changelog.digest_of_body "" with
  | Ok [] -> ()
  | _ -> Alcotest.fail "empty body is the empty digest");
  List.iter
    (fun body ->
      match Changelog.digest_of_body body with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "must reject %S" body)
    [ "garbage"; "5\tnothex"; "5\t00ff00ff\n3\t00ff00ff" ];
  (try
     ignore (Changelog.digest log ~since:0 ~interval:0);
     Alcotest.fail "interval 0 must raise"
   with Invalid_argument _ -> ());
  (* Compaction moves the horizon: no checkpoint below it survives, so a
     diverged-below-horizon mirror correctly finds nothing to agree with
     and falls back to a rebuild. *)
  Changelog.compact log ~keep:4;
  let d = Changelog.digest log ~since:0 ~interval:1 in
  Alcotest.(check bool) "no checkpoint below the horizon" true
    (List.for_all (fun (v, _) -> v >= Changelog.horizon log) d)

let prop_compact_since_boundary =
  let gen =
    QCheck.make
      ~print:(fun (n, keep) -> Printf.sprintf "%d entries, keep %d" n keep)
      QCheck.Gen.(pair (int_range 1 30) (int_range 0 12))
  in
  QCheck.Test.make
    ~name:"since is servable exactly on [horizon, head] after compaction"
    ~count:200 gen
    (fun (n, keep) ->
      let log = Changelog.create () in
      for i = 1 to n do
        ignore
          (Changelog.append log (Changelog.Add (sig_ i [ Printf.sprintf "t%d" i ])))
      done;
      Changelog.compact log ~keep;
      let head = Changelog.version log and horizon = Changelog.horizon log in
      let ok = ref (horizon = head - min keep n) in
      for since = 0 to head + 1 do
        match Changelog.since log since with
        | None -> if since >= horizon && since <= head then ok := false
        | Some entries ->
          if since < horizon || since > head then ok := false
          else if List.length entries <> head - since then ok := false
      done;
      !ok)

(* --- shard map --- *)

let mk_map ~epoch origins =
  match Shard_map.create ~epoch ~origins () with
  | Ok m -> m
  | Error e -> Alcotest.failf "shard map: %s" e

let test_shard_map_basics () =
  (match Shard_map.create ~epoch:(-1) ~origins:[ "a" ] () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "negative epoch must be rejected");
  (match Shard_map.create ~epoch:0 ~origins:[] () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty origin set must be rejected");
  (match Shard_map.create ~epoch:0 ~origins:[ "a"; "a" ] () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "duplicate origins must be rejected");
  (match Shard_map.create ~epoch:0 ~origins:[ "bad id" ] () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad origin id must be rejected");
  let m = mk_map ~epoch:3 [ "b"; "a" ] in
  Alcotest.(check int) "epoch" 3 (Shard_map.epoch m);
  Alcotest.(check (list string)) "origins sorted" [ "a"; "b" ]
    (Shard_map.origins m);
  let tenants = List.init 50 (fun i -> Printf.sprintf "t%d" i) in
  List.iter
    (fun t ->
      let o = Shard_map.owner m ~tenant:t in
      Alcotest.(check bool) "owner from the set" true (List.mem o [ "a"; "b" ]);
      Alcotest.(check string) "ownership is deterministic" o
        (Shard_map.owner m ~tenant:t))
    tenants;
  (* Advancing the epoch over the same origin set moves nothing: the
     rendezvous score ignores the epoch. *)
  let m' =
    match Shard_map.advance m ~origins:[ "a"; "b" ] with
    | Ok m -> m
    | Error e -> Alcotest.failf "advance: %s" e
  in
  Alcotest.(check int) "epoch advanced" 4 (Shard_map.epoch m');
  Alcotest.(check int) "same origins move nothing" 0
    (List.length (Shard_map.moved ~before:m ~after:m' ~tenants))

let test_shard_map_codec () =
  let m = mk_map ~epoch:7 [ "origin1"; "origin0"; "standby" ] in
  (match Shard_map.of_line (Shard_map.to_line m) with
  | Ok m' ->
    Alcotest.(check int) "epoch survives" 7 (Shard_map.epoch m');
    Alcotest.(check (list string)) "origins survive" (Shard_map.origins m)
      (Shard_map.origins m');
    List.iter
      (fun i ->
        let t = Printf.sprintf "t%d" i in
        Alcotest.(check string) "ownership survives"
          (Shard_map.owner m ~tenant:t)
          (Shard_map.owner m' ~tenant:t))
      (List.init 20 Fun.id)
  | Error e -> Alcotest.failf "roundtrip: %s" e);
  List.iter
    (fun line ->
      match Shard_map.of_line line with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "must reject %S" line)
    [ ""; "nope"; "-1\ta"; "3\t"; "3\ta,a"; "x\ta,b" ]

let test_shard_map_edges () =
  let tenants = List.init 60 (fun i -> Printf.sprintf "t%d" i) in
  let mk ?(weights = []) ?(proximity = []) ~epoch origins =
    match Shard_map.create ~weights ~proximity ~epoch ~origins () with
    | Ok m -> m
    | Error e -> Alcotest.failf "shard map: %s" e
  in
  (* A single-origin map routes everything to it. *)
  let solo = mk ~epoch:0 [ "only" ] in
  List.iter
    (fun t ->
      Alcotest.(check string) "solo origin owns all" "only"
        (Shard_map.owner solo ~tenant:t))
    tenants;
  (* An identical-origin-set epoch flip moves zero tenants even when the
     map carries weights and proximity. *)
  let m =
    mk ~weights:[ ("a", 3) ]
      ~proximity:[ ("r0", "a", 1); ("r0", "r1", 2) ]
      ~epoch:0 [ "a"; "b" ]
  in
  (match Shard_map.advance m ~origins:[ "a"; "b" ] with
  | Error e -> Alcotest.failf "advance: %s" e
  | Ok m' ->
    Alcotest.(check int) "epoch flipped" 1 (Shard_map.epoch m');
    Alcotest.(check int) "identical set moves nothing" 0
      (List.length (Shard_map.moved ~before:m ~after:m' ~tenants));
    Alcotest.(check int) "weight carried" 3 (Shard_map.weight m' ~origin:"a");
    Alcotest.(check (option int)) "relay-to-relay distance carried" (Some 2)
      (Shard_map.distance m' ~node:"r0" ~origin:"r1"));
  (* All-weight-1 scoring reduces to unweighted HRW exactly. *)
  let unweighted = mk ~epoch:0 [ "a"; "b"; "c" ] in
  let w1 =
    mk ~weights:[ ("a", 1); ("b", 1); ("c", 1) ] ~epoch:0 [ "a"; "b"; "c" ]
  in
  List.iter
    (fun t ->
      Alcotest.(check string) "weight 1 = unweighted"
        (Shard_map.owner unweighted ~tenant:t)
        (Shard_map.owner w1 ~tenant:t))
    tenants;
  (* Raising one origin's weight only pulls tenants toward it — nobody
     moves between the other origins — and pulls a larger share. *)
  let heavy = mk ~weights:[ ("a", 4) ] ~epoch:0 [ "a"; "b"; "c" ] in
  List.iter
    (fun t ->
      let o = Shard_map.owner heavy ~tenant:t in
      Alcotest.(check bool) "weight only attracts" true
        (o = "a" || o = Shard_map.owner unweighted ~tenant:t))
    tenants;
  let count m o =
    List.length (List.filter (fun t -> Shard_map.owner m ~tenant:t = o) tenants)
  in
  Alcotest.(check bool) "heavier origin owns more" true
    (count heavy "a" > count unweighted "a");
  (* Rejections: unknown-origin weight, weight < 1, negative distance. *)
  List.iter
    (fun (weights, proximity) ->
      match Shard_map.create ~weights ~proximity ~epoch:0 ~origins:[ "a" ] () with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "bad weights/proximity must be rejected")
    [ ([ ("ghost", 2) ], []); ([ ("a", 0) ], []); ([], [ ("r0", "a", -1) ]) ];
  (* Codec roundtrip carries weights and proximity. *)
  (match Shard_map.of_line (Shard_map.to_line heavy) with
  | Error e -> Alcotest.failf "roundtrip: %s" e
  | Ok heavy' ->
    Alcotest.(check int) "weight survives" 4 (Shard_map.weight heavy' ~origin:"a");
    List.iter
      (fun t ->
        Alcotest.(check string) "weighted ownership survives"
          (Shard_map.owner heavy ~tenant:t)
          (Shard_map.owner heavy' ~tenant:t))
      tenants);
  match Shard_map.of_line (Shard_map.to_line m) with
  | Error e -> Alcotest.failf "roundtrip: %s" e
  | Ok m' ->
    Alcotest.(check (option int)) "proximity survives" (Some 1)
      (Shard_map.distance m' ~node:"r0" ~origin:"a")

let prop_shard_map_minimal_disruption =
  let gen =
    QCheck.make
      ~print:(fun (n, seed) -> Printf.sprintf "%d origins, seed %d" n seed)
      QCheck.Gen.(pair (int_range 1 6) (int_range 0 999))
  in
  QCheck.Test.make
    ~name:"adding an origin only moves tenants onto it (and removal back off)"
    ~count:150 gen
    (fun (n, seed) ->
      let origins = List.init n (fun i -> Printf.sprintf "o%d-%d" seed i) in
      let tenants = List.init 40 (fun i -> Printf.sprintf "t%d-%d" seed i) in
      let before = mk_map ~epoch:0 origins in
      let joined = Printf.sprintf "new-%d" seed in
      match Shard_map.advance before ~origins:(joined :: origins) with
      | Error _ -> false
      | Ok after -> (
        let inbound = Shard_map.moved ~before ~after ~tenants in
        List.for_all (fun (_, _, dst) -> dst = joined) inbound
        &&
        match Shard_map.advance after ~origins with
        | Error _ -> false
        | Ok rolled_back ->
          let outbound = Shard_map.moved ~before:after ~after:rolled_back ~tenants in
          List.for_all (fun (_, src, _) -> src = joined) outbound
          (* and everyone lands back exactly where they started *)
          && List.for_all
               (fun t ->
                 Shard_map.owner rolled_back ~tenant:t
                 = Shard_map.owner before ~tenant:t)
               tenants))

(* --- delta client: 304 fork smell (split-brain defense) --- *)

let test_delta_client_304_fork_smell () =
  let auth = Authority.create () in
  ignore (Authority.publish auth ~tenant:"t0" [ s1 ]);
  ignore (Authority.publish auth ~tenant:"t0" [ s1; s2 ]);
  (* A forked authority at the same version holding a different history. *)
  let forked = Authority.create () in
  ignore (Authority.publish forked ~tenant:"t0" [ s3 ]);
  ignore (Authority.publish forked ~tenant:"t0" [ s3; s2 ]);
  let c = new_client "t0" in
  ignore (sync_updated "bootstrap from origin" c (loss_free auth));
  Alcotest.(check int) "at the origin head" 2 (Delta_client.version c);
  (* The forked relay answers our since=2 with a 304 whose checksum does
     not match our set at version 2.  Accepting it would silently pin us
     to the fork; the client must refuse and resync in full against the
     origin — never against the relay that smelled forked. *)
  let origin_fulls = ref 0 in
  let origin_transport raw =
    incr origin_fulls;
    loss_free auth raw
  in
  (match
     (Delta_client.sync_via c ~relays:[ loss_free forked ]
        ~origin:origin_transport)
       .Signature_client.outcome
   with
  | Signature_client.Updated _ | Signature_client.Unchanged -> ()
  | Signature_client.Failed e -> Alcotest.failf "fork recovery failed: %s" e);
  let k = Delta_client.counters c in
  Alcotest.(check bool) "fork smell counted" true (k.Delta_client.fork_smells > 0);
  Alcotest.(check bool) "recovered via the origin" true (!origin_fulls > 0);
  Alcotest.(check bool) "escalation counted" true (k.Delta_client.escalations > 0);
  check_set "landed on the origin's set, not the fork" [ s1; s2 ]
    (Delta_client.signatures c);
  Alcotest.(check int) "checksum agrees with the origin"
    (Authority.checksum auth ~tenant:"t0")
    (Delta_client.checksum c)

(* --- authority: shard gate and tenant migration --- *)

(* Find one tenant the map assigns to each origin. *)
let tenant_owned_by map name =
  let rec go i =
    if i > 10_000 then Alcotest.failf "no tenant hashes to %s" name
    else
      let t = Printf.sprintf "t%d" i in
      if Shard_map.owner map ~tenant:t = name then t else go (i + 1)
  in
  go 0

let test_authority_shard_gate () =
  let auth = Authority.create () in
  let map = mk_map ~epoch:2 [ "me"; "other" ] in
  let mine = tenant_owned_by map "me"
  and foreign = tenant_owned_by map "other" in
  ignore (Authority.publish auth ~tenant:mine [ s1 ]);
  ignore (Authority.publish auth ~tenant:foreign [ s3 ]);
  Authority.set_shard auth ~self:"me" map;
  Alcotest.(check bool) "owns its tenant" true (Authority.owns auth ~tenant:mine);
  Alcotest.(check bool) "does not own the foreign one" false
    (Authority.owns auth ~tenant:foreign);
  (* Owned tenants are served as before. *)
  let r = Authority.handle auth (get ("/signatures?tenant=" ^ mine ^ "&since=1")) in
  Alcotest.(check int) "owned tenant still serves" 304 r.Http.Response.status;
  (* Unowned tenants draw 421 naming the owner and epoch — even though we
     still hold their state. *)
  let r = Authority.handle auth (get ("/signatures?tenant=" ^ foreign ^ "&since=0")) in
  Alcotest.(check int) "unowned tenant misdirected" 421 r.Http.Response.status;
  Alcotest.(check (option string)) "owner advertised" (Some "other")
    (header r "X-Shard-Owner");
  Alcotest.(check (option string)) "epoch advertised" (Some "2")
    (header r "X-Shard-Epoch");
  let r =
    Authority.handle auth (post ("/candidates?tenant=" ^ foreign ^ "&reporter=r") "x")
  in
  Alcotest.(check int) "candidates misdirected too" 421 r.Http.Response.status;
  (* An owned tenant we have not adopted yet draws a retryable 503 —
     never a fresh empty set a synced client would read as a rollback. *)
  let unborn =
    let rec go i =
      let t = Printf.sprintf "u%d" i in
      if Shard_map.owner map ~tenant:t = "me" then t else go (i + 1)
    in
    go 0
  in
  let r = Authority.handle auth (get ("/signatures?tenant=" ^ unborn ^ "&since=0")) in
  Alcotest.(check int) "owned but not adopted is retryable" 503
    r.Http.Response.status;
  Alcotest.(check (option string)) "retry hinted" (Some "1")
    (header r "Retry-After")

let test_export_adopt_release () =
  let a = Authority.create () and b = Authority.create () in
  ignore (Authority.publish a ~tenant:"t0" [ s1 ]);
  ignore (Authority.publish a ~tenant:"t0" [ s1; s2 ]);
  (* A candidate one reporter short of promotion travels with the tenant. *)
  let c = candidate [ "cand"; "imsi=240080000000002" ] in
  (match Authority.report_candidate a ~tenant:"t0" ~reporter:"r1" c with
  | Authority.Accepted 1 -> ()
  | o -> Alcotest.failf "report: %s" (Authority.candidate_outcome_to_string o));
  (match Authority.report_candidate a ~tenant:"t0" ~reporter:"r2" c with
  | Authority.Accepted 2 -> ()
  | o -> Alcotest.failf "report: %s" (Authority.candidate_outcome_to_string o));
  let payload =
    match Authority.export_tenant a ~tenant:"t0" with
    | Ok p -> p
    | Error e -> Alcotest.failf "export: %s" e
  in
  (match Authority.adopt_tenant b payload with
  | Ok t -> Alcotest.(check string) "tenant name returned" "t0" t
  | Error e -> Alcotest.failf "adopt: %s" e);
  Alcotest.(check int) "version preserved across the handoff" 2
    (Authority.version b ~tenant:"t0");
  check_set "set preserved" [ s1; s2 ] (Authority.signatures b ~tenant:"t0");
  Alcotest.(check int) "checksum preserved"
    (Authority.checksum a ~tenant:"t0")
    (Authority.checksum b ~tenant:"t0");
  (* The new owner continues the committed version line, not a fresh one. *)
  ignore (Authority.publish b ~tenant:"t0" [ s1; s2; s3 ]);
  Alcotest.(check int) "monotonic across migration" 3
    (Authority.version b ~tenant:"t0");
  (* The travelled tally finishes promotion on the new owner. *)
  (match Authority.report_candidate b ~tenant:"t0" ~reporter:"r3" c with
  | Authority.Promoted _ -> ()
  | o ->
    Alcotest.failf "k-th reporter on the new owner: %s"
      (Authority.candidate_outcome_to_string o));
  (match Authority.release_tenant a ~tenant:"t0" with
  | Ok v -> Alcotest.(check int) "released at its head" 2 v
  | Error e -> Alcotest.failf "release: %s" e);
  Alcotest.(check int) "released tenant gone" 0 (Authority.version a ~tenant:"t0");
  (match Authority.release_tenant a ~tenant:"t0" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "double release must error");
  (* Adopting a payload older than local state is refused. *)
  match Authority.adopt_tenant b payload with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "stale adopt must be refused"

let test_shard_state_replays () =
  with_dir (fun dir ->
      let map = mk_map ~epoch:5 [ "me"; "other" ] in
      let src = Authority.create () in
      ignore (Authority.publish src ~tenant:"mig" [ s1 ]);
      ignore (Authority.publish src ~tenant:"mig" [ s1; s2 ]);
      let payload =
        match Authority.export_tenant src ~tenant:"mig" with
        | Ok p -> p
        | Error e -> Alcotest.failf "export: %s" e
      in
      let auth, _ = reopen ~dir in
      Authority.set_shard auth ~self:"me" map;
      (match Authority.adopt_tenant auth payload with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "adopt: %s" e);
      Authority.close auth;
      (* Both the shard assignment and the adopted tenant ride the WAL. *)
      let auth, _ = reopen ~dir in
      (match Authority.shard auth with
      | Some (self, m) ->
        Alcotest.(check string) "self replayed" "me" self;
        Alcotest.(check int) "epoch replayed" 5 (Shard_map.epoch m)
      | None -> Alcotest.fail "shard map must survive reopen");
      Alcotest.(check int) "adopted version replayed" 2
        (Authority.version auth ~tenant:"mig");
      check_set "adopted set replayed" [ s1; s2 ]
        (Authority.signatures auth ~tenant:"mig");
      (* Compaction folds the snapshot but re-journals the assignment. *)
      Authority.compact auth;
      Authority.close auth;
      let auth, _ = reopen ~dir in
      (match Authority.shard auth with
      | Some (self, m) ->
        Alcotest.(check string) "self survives compaction" "me" self;
        Alcotest.(check int) "epoch survives compaction" 5 (Shard_map.epoch m)
      | None -> Alcotest.fail "shard map must survive compaction");
      Alcotest.(check int) "tenant survives compaction" 2
        (Authority.version auth ~tenant:"mig");
      Authority.close auth)

(* --- relay: fail-static serving, staleness, forwarding --- *)

let test_relay_serves_and_fail_static () =
  let auth = Authority.create () in
  ignore (Authority.publish auth ~tenant:"t0" [ s1 ]);
  let relay = Relay.create ~id:"r0" ~tenants:[ "t0" ] () in
  (* Before any verified sync the relay refuses to serve: a 503, never an
     empty set that reads as a rollback. *)
  let r = Relay.handle relay (get "/signatures?tenant=t0&since=0") in
  Alcotest.(check int) "unsynced relay refuses" 503 r.Http.Response.status;
  Alcotest.(check (option string)) "retry hinted" (Some "1") (header r "Retry-After");
  let r = Relay.handle relay (get "/signatures?tenant=nope&since=0") in
  Alcotest.(check int) "unconfigured tenant" 404 r.Http.Response.status;
  (* One verified sync and it serves the origin's bytes. *)
  (match
     (Relay.sync_tenant relay ~tenant:"t0" ~transport:(loss_free auth))
       .Signature_client.outcome
   with
  | Signature_client.Updated 1 -> ()
  | _ -> Alcotest.fail "relay sync must land on v1");
  let c = new_client "t0" in
  ignore (sync_updated "client via relay" c (Relay.wire_transport relay));
  check_set "relay-served set" [ s1 ] (Delta_client.signatures c);
  Alcotest.(check int) "checksums agree through the relay"
    (Authority.checksum auth ~tenant:"t0")
    (Delta_client.checksum c);
  (* The origin moves on; the relay is partitioned: it keeps serving the
     last verified version, advertising how stale it is. *)
  ignore (Authority.publish auth ~tenant:"t0" [ s1; s2 ]);
  (match
     (Relay.sync_tenant relay ~tenant:"t0" ~transport:(fun _ -> Error "partitioned"))
       .Signature_client.outcome
   with
  | Signature_client.Failed _ -> ()
  | _ -> Alcotest.fail "partitioned sync must fail");
  Alcotest.(check int) "staleness counted" 1 (Relay.staleness relay ~tenant:"t0");
  let r = Relay.handle relay (get "/signatures?tenant=t0&since=0") in
  Alcotest.(check int) "fail-static still serves" 200 r.Http.Response.status;
  Alcotest.(check (option string)) "staleness advertised" (Some "1")
    (header r "X-Relay-Staleness");
  Alcotest.(check (option string)) "relay identifies itself" (Some "r0")
    (header r "X-Relay-Id");
  Alcotest.(check (option string)) "old version, honestly" (Some "1")
    (header r "X-Signature-Version");
  (* Partition heals: catch up, staleness resets, clients get the delta. *)
  (match
     (Relay.sync_tenant relay ~tenant:"t0" ~transport:(loss_free auth))
       .Signature_client.outcome
   with
  | Signature_client.Updated 2 -> ()
  | _ -> Alcotest.fail "healed sync must land on v2");
  Alcotest.(check int) "staleness reset" 0 (Relay.staleness relay ~tenant:"t0");
  ignore (sync_updated "client catches up via relay" c (Relay.wire_transport relay));
  check_set "delta through the mirror" [ s1; s2 ] (Delta_client.signatures c);
  let k = Delta_client.counters c in
  Alcotest.(check int) "served as a delta, not a snapshot" 2
    k.Delta_client.delta_updates

let test_relay_forwards_candidates () =
  let auth = Authority.create () in
  ignore (Authority.publish auth ~tenant:"t0" [ s1 ]);
  let relay = Relay.create ~id:"r0" ~tenants:[ "t0" ] () in
  let body = lines [ candidate [ "cand"; "imsi=240080000000003" ] ] in
  (* No upstream configured: reports are refused retryably, not dropped. *)
  let r = Relay.handle relay (post "/candidates?tenant=t0&reporter=r1" body) in
  Alcotest.(check int) "no upstream is 503" 503 r.Http.Response.status;
  Relay.set_upstream relay (loss_free auth);
  let r = Relay.handle relay (post "/candidates?tenant=t0&reporter=r1" body) in
  Alcotest.(check int) "forwarded upstream" 200 r.Http.Response.status;
  Alcotest.(check int) "candidate landed on the origin" 1
    (Authority.pending_candidates auth ~tenant:"t0");
  let k = Relay.counters relay in
  Alcotest.(check int) "forward counted" 1 k.Relay.forwarded;
  Alcotest.(check int) "failure counted" 1 k.Relay.forward_failures

let test_relay_fork_repair () =
  let auth = Authority.create () in
  ignore (Authority.publish auth ~tenant:"t0" [ s1 ]);
  ignore (Authority.publish auth ~tenant:"t0" [ s1; s2 ]);
  ignore (Authority.publish auth ~tenant:"t0" [ s1; s2; s3 ]);
  let relay =
    Relay.create
      ~config:{ Relay.compact_keep = 64; digest_interval = 1 }
      ~id:"r0" ~tenants:[ "t0" ] ()
  in
  (match
     (Relay.sync_tenant relay ~tenant:"t0" ~transport:(loss_free auth))
       .Signature_client.outcome
   with
  | Signature_client.Updated 3 -> ()
  | _ -> Alcotest.fail "relay sync must land on v3");
  Alcotest.(check bool) "consistent after sync" true
    (Relay.consistent relay ~tenant:"t0");
  let r = Relay.handle relay (get "/digest?tenant=t0&since=0&interval=1") in
  Alcotest.(check int) "digest served" 200 r.Http.Response.status;
  Alcotest.(check (option string)) "digest mode" (Some "digest")
    (header r "X-Signature-Mode");
  (* Fork the mirror: the serving guard must trip on both endpoints. *)
  Relay.inject_fork relay ~tenant:"t0";
  Alcotest.(check bool) "fork detected" false
    (Relay.consistent relay ~tenant:"t0");
  let r = Relay.handle relay (get "/signatures?tenant=t0&since=0") in
  Alcotest.(check int) "diverged mirror refuses" 503 r.Http.Response.status;
  let r = Relay.handle relay (get "/digest?tenant=t0&since=0&interval=1") in
  Alcotest.(check int) "diverged digest refuses too" 503 r.Http.Response.status;
  (* The origin is idle, so the next sync is a verified 304 — which must
     still notice the divergence and heal it by ranged repair, never a
     rebuild: the prefix up to head - 1 is intact. *)
  (match
     (Relay.sync_tenant relay ~tenant:"t0" ~transport:(loss_free auth))
       .Signature_client.outcome
   with
  | Signature_client.Unchanged -> ()
  | _ -> Alcotest.fail "idle origin must answer 304");
  Alcotest.(check bool) "consistent again" true
    (Relay.consistent relay ~tenant:"t0");
  let k = Relay.counters relay in
  Alcotest.(check int) "healed by ranged repair" 1 k.Relay.repairs;
  Alcotest.(check int) "no resnapshot" 0 k.Relay.resnapshots;
  Alcotest.(check bool) "repair bytes accounted" true (k.Relay.repair_bytes > 0);
  Alcotest.(check bool) "refusals counted" true
    (k.Relay.served_inconsistent >= 2);
  let c = new_client "t0" in
  ignore (sync_updated "client after repair" c (Relay.wire_transport relay));
  check_set "repaired mirror serves the true set" [ s1; s2; s3 ]
    (Delta_client.signatures c);
  (* Fork again with the origin moving underneath: the delta-absorb
     mismatch takes the same repair path. *)
  ignore (Authority.publish auth ~tenant:"t0" [ s2; s3 ]);
  Relay.inject_fork relay ~tenant:"t0";
  (match
     (Relay.sync_tenant relay ~tenant:"t0" ~transport:(loss_free auth))
       .Signature_client.outcome
   with
  | Signature_client.Updated 4 -> ()
  | _ -> Alcotest.fail "sync must land on v4");
  let k = Relay.counters relay in
  Alcotest.(check int) "second fork also repaired" 2 k.Relay.repairs;
  Alcotest.(check int) "still no resnapshot" 0 k.Relay.resnapshots;
  ignore (sync_updated "client follows" c (Relay.wire_transport relay));
  check_set "post-retire set through the mirror" [ s2; s3 ]
    (Delta_client.signatures c)

let test_relay_gossip_catchup () =
  let auth = Authority.create () in
  ignore (Authority.publish auth ~tenant:"t0" [ s1 ]);
  let ra = Relay.create ~id:"ra" ~tenants:[ "t0" ] () in
  let rb = Relay.create ~id:"rb" ~tenants:[ "t0" ] () in
  List.iter
    (fun r ->
      match
        (Relay.sync_tenant r ~tenant:"t0" ~transport:(loss_free auth))
          .Signature_client.outcome
      with
      | Signature_client.Updated 1 -> ()
      | _ -> Alcotest.fail "both relays must sync to v1")
    [ ra; rb ];
  (* The origin advances; only ra sees it before rb is partitioned. *)
  ignore (Authority.publish auth ~tenant:"t0" [ s1; s2 ]);
  (match
     (Relay.sync_tenant ra ~tenant:"t0" ~transport:(loss_free auth))
       .Signature_client.outcome
   with
  | Signature_client.Updated 2 -> ()
  | _ -> Alcotest.fail "ra must reach v2");
  Relay.set_peers rb
    [ ("ra", Relay.wire_transport ra);
      ("rb", fun _ -> Alcotest.fail "an entry matching self must be dropped") ];
  (* Gossip with the origin unreachable: rb catches up from its sibling
     through the full verification ladder. *)
  let origin_dead ~tenant:_ _ = Error "origin partitioned" in
  Relay.gossip rb ~upstream:origin_dead;
  Alcotest.(check int) "rb caught up sideways" 2 (Relay.version rb ~tenant:"t0");
  Alcotest.(check bool) "rb consistent" true (Relay.consistent rb ~tenant:"t0");
  let k = Relay.counters rb in
  Alcotest.(check int) "catch-up counted" 1 k.Relay.gossip_catchups;
  Alcotest.(check int) "round counted" 1 k.Relay.gossip_rounds;
  let c = new_client "t0" in
  ignore (sync_updated "client via the caught-up relay" c (Relay.wire_transport rb));
  check_set "sibling-sourced set" [ s1; s2 ] (Delta_client.signatures c);
  Alcotest.(check int) "checksums agree end to end"
    (Authority.checksum auth ~tenant:"t0")
    (Delta_client.checksum c);
  (* Nothing fresher anywhere: the next round moves nothing. *)
  Relay.gossip rb ~upstream:origin_dead;
  let k = Relay.counters rb in
  Alcotest.(check int) "no-op round" 1 k.Relay.gossip_catchups;
  Alcotest.(check int) "but still counted" 2 k.Relay.gossip_rounds

let test_relay_version_age_and_metrics () =
  let obs = Leakdetect_obs.Obs.create () in
  let auth = Authority.create () in
  ignore (Authority.publish auth ~tenant:"t0" [ s1 ]);
  let relay = Relay.create ~obs ~id:"r0" ~tenants:[ "t0" ] () in
  Relay.set_clock relay 3;
  (match
     (Relay.sync_tenant relay ~tenant:"t0" ~transport:(loss_free auth))
       .Signature_client.outcome
   with
  | Signature_client.Updated 1 -> ()
  | _ -> Alcotest.fail "sync must land");
  Relay.set_clock relay 10;
  Alcotest.(check int) "version age tracks the clock" 7
    (Relay.version_age relay ~tenant:"t0");
  let r = Relay.handle relay (get "/signatures?tenant=t0&since=1") in
  Alcotest.(check int) "up to date" 304 r.Http.Response.status;
  Alcotest.(check (option string)) "age advertised" (Some "7")
    (header r "X-Relay-Version-Age");
  Alcotest.(check (option string)) "fresh upstream" (Some "0")
    (header r "X-Relay-Staleness");
  (* A failed sync bumps staleness (transport health) but version age
     keeps measuring the clock alone. *)
  (match
     (Relay.sync_tenant relay ~tenant:"t0" ~transport:(fun _ -> Error "down"))
       .Signature_client.outcome
   with
  | Signature_client.Failed _ -> ()
  | _ -> Alcotest.fail "dead transport must fail");
  let r = Relay.handle relay (get "/signatures?tenant=t0&since=1") in
  Alcotest.(check (option string)) "staleness bumped" (Some "1")
    (header r "X-Relay-Staleness");
  Alcotest.(check (option string)) "age unchanged" (Some "7")
    (header r "X-Relay-Version-Age");
  let m = Relay.handle relay (get "/metrics") in
  Alcotest.(check int) "metrics served" 200 m.Http.Response.status;
  let contains body needle =
    let n = String.length body and m = String.length needle in
    let rec go i =
      i + m <= n && (String.sub body i m = needle || go (i + 1))
    in
    go 0
  in
  List.iter
    (fun family ->
      Alcotest.(check bool) (family ^ " exported") true
        (contains m.Http.Response.body family))
    [ "leakdetect_relay_staleness";
      "leakdetect_relay_version_age";
      "leakdetect_relay_version";
      "leakdetect_relay_sync_rounds";
      "leakdetect_relay_gossip_rounds";
      "leakdetect_relay_repairs";
      "leakdetect_relay_resnapshots";
      "leakdetect_relay_served_inconsistent" ]

(* --- sync_via: escalation ladder and relay failover --- *)

let test_sync_via_escalates_past_byzantine_relay () =
  let auth = Authority.create () in
  ignore (Authority.publish auth ~tenant:"t0" [ s1; s2 ]);
  (* Every relay serves corrupted bytes: flip a character inside the
     payload, leaving the frame parseable so only verification catches it. *)
  let corrupting raw =
    match loss_free auth raw with
    | Error _ as e -> e
    | Ok response -> (
      let find_sub s sub =
        let n = String.length s and m = String.length sub in
        let rec go i =
          if i + m > n then None
          else if String.sub s i m = sub then Some i
          else go (i + 1)
        in
        go 0
      in
      match find_sub response "imei" with
      | None -> Ok response
      | Some i ->
        let b = Bytes.of_string response in
        Bytes.set b (i + 2) 'X';
        Ok (Bytes.to_string b))
  in
  let origin_calls = ref 0 in
  let origin raw =
    incr origin_calls;
    loss_free auth raw
  in
  let c = new_client "t0" in
  (match
     (Delta_client.sync_via c ~relays:[ corrupting; corrupting ] ~origin)
       .Signature_client.outcome
   with
  | Signature_client.Updated 2 -> ()
  | Signature_client.Failed e -> Alcotest.failf "escalation failed: %s" e
  | _ -> Alcotest.fail "must install the head, not skip");
  Alcotest.(check bool) "origin reached" true (!origin_calls > 0);
  check_set "true set installed despite the byzantine tier" [ s1; s2 ]
    (Delta_client.signatures c);
  let k = Delta_client.counters c in
  Alcotest.(check bool) "escalation counted" true (k.Delta_client.escalations > 0)

let test_sync_via_rotates_past_dead_relay () =
  let auth = Authority.create () in
  ignore (Authority.publish auth ~tenant:"t0" [ s1 ]);
  let relay = Relay.create ~id:"r1" ~tenants:[ "t0" ] () in
  (match
     (Relay.sync_tenant relay ~tenant:"t0" ~transport:(loss_free auth))
       .Signature_client.outcome
   with
  | Signature_client.Updated 1 -> ()
  | _ -> Alcotest.fail "relay must sync");
  let dead _ = Error "connection refused" in
  let c = new_client "t0" in
  (* The preferred relay is dead; the next attempt rotates to the live
     sibling without ever touching the origin. *)
  let origin _ = Alcotest.fail "origin must not be needed for a dead relay" in
  (match
     (Delta_client.sync_via c ~relays:[ dead; Relay.wire_transport relay ] ~origin)
       .Signature_client.outcome
   with
  | Signature_client.Updated 1 -> ()
  | _ -> Alcotest.fail "failover sync must land");
  check_set "served by the live relay" [ s1 ] (Delta_client.signatures c);
  let k = Delta_client.counters c in
  Alcotest.(check int) "no escalation for a mere dead relay" 0
    k.Delta_client.escalations

(* --- mini topology soak: the full tier end to end --- *)

let test_mini_topology () =
  with_dir (fun dir ->
      let config =
        {
          Topology.default_config with
          Topology.clients = 40;
          tenants = 3;
          ticks = 400;
          sync_period = 16;
          publishes = 12;
          candidates = 2;
          partitions = 2;
          partition_ticks = 50;
          relay_crashes = 1;
          epoch_flips = 1;
          min_offload = 0.5;
          drain_rounds = 40;
          seed = 11;
        }
      in
      let report = Topology.run ~dir config in
      let inv = report.Topology.invariants in
      Alcotest.(check int) "no divergence" 0 inv.Topology.divergences;
      Alcotest.(check int) "no regressions" 0 inv.Topology.regressions;
      Alcotest.(check int) "no sub-k promotions" 0 inv.Topology.sub_k_promotions;
      Alcotest.(check int) "no recovery mismatches" 0
        inv.Topology.recovery_mismatches;
      Alcotest.(check int) "everyone converged" 0 inv.Topology.unconverged;
      Alcotest.(check bool) "ok" true (Topology.ok report);
      Alcotest.(check int) "the epoch flipped" 1 report.Topology.epoch_flips_done;
      Alcotest.(check int) "partitions ran" 2 report.Topology.partitions_done;
      Alcotest.(check int) "the relay crashed" 1 report.Topology.relay_crashes_done;
      Alcotest.(check bool) "relays carried most of the load" true
        (report.Topology.offload > 0.5);
      Alcotest.(check bool) "faults actually fired" true
        (List.exists (fun (_, n) -> n > 0) report.Topology.fault_events))

let suite =
  [ ( "distrib.changelog",
      [ Alcotest.test_case "ops" `Quick test_changelog_ops;
        Alcotest.test_case "since + compact" `Quick
          test_changelog_since_and_compact;
        Alcotest.test_case "entry codec" `Quick test_changelog_codec;
        Alcotest.test_case "restore rejects gaps" `Quick
          test_changelog_restore_rejects_gaps;
        Alcotest.test_case "compact keep:0 boundary" `Quick
          test_changelog_compact_keep_zero;
        Alcotest.test_case "ranged digest" `Quick test_changelog_digest;
        qtest prop_delta_equals_snapshot;
        qtest prop_compact_since_boundary ] );
    ( "distrib.shard_map",
      [ Alcotest.test_case "validation + stability" `Quick test_shard_map_basics;
        Alcotest.test_case "line codec" `Quick test_shard_map_codec;
        Alcotest.test_case "weights + proximity edges" `Quick
          test_shard_map_edges;
        qtest prop_shard_map_minimal_disruption ] );
    ( "distrib.authority",
      [ Alcotest.test_case "http statuses" `Quick test_authority_http_statuses;
        Alcotest.test_case "snapshot below horizon" `Quick
          test_authority_snapshot_below_horizon;
        Alcotest.test_case "promotion at k" `Quick test_promotion_at_k;
        Alcotest.test_case "reporter cap" `Quick test_reporter_cap;
        Alcotest.test_case "candidates tally" `Quick
          test_candidates_endpoint_tally ] );
    ( "distrib.durability",
      [ Alcotest.test_case "reopen replays" `Quick test_authority_reopen;
        Alcotest.test_case "publish crash-point sweep" `Quick
          test_publish_crash_point_sweep;
        Alcotest.test_case "compaction crash windows" `Quick
          test_compaction_crash_windows;
        Alcotest.test_case "promotion crash recovers" `Quick
          test_promotion_crash_recovers;
        Alcotest.test_case "torn journal tail" `Quick test_torn_journal_tail ] );
    ( "distrib.delta_client",
      [ Alcotest.test_case "happy path" `Quick test_delta_client_happy_path;
        Alcotest.test_case "horizon gap falls back" `Quick
          test_delta_client_gap_forces_full;
        Alcotest.test_case "corrupt body falls back" `Quick
          test_delta_client_rejects_corrupt_body;
        Alcotest.test_case "regression refused" `Quick
          test_delta_client_refuses_regression;
        Alcotest.test_case "304 fork smell" `Quick
          test_delta_client_304_fork_smell;
        Alcotest.test_case "escalates past byzantine relays" `Quick
          test_sync_via_escalates_past_byzantine_relay;
        Alcotest.test_case "rotates past a dead relay" `Quick
          test_sync_via_rotates_past_dead_relay ] );
    ( "distrib.sharding",
      [ Alcotest.test_case "shard gate" `Quick test_authority_shard_gate;
        Alcotest.test_case "export / adopt / release" `Quick
          test_export_adopt_release;
        Alcotest.test_case "shard state replays" `Quick
          test_shard_state_replays ] );
    ( "distrib.relay",
      [ Alcotest.test_case "serves + fail-static" `Quick
          test_relay_serves_and_fail_static;
        Alcotest.test_case "forwards candidates" `Quick
          test_relay_forwards_candidates;
        Alcotest.test_case "fork heals by ranged repair" `Quick
          test_relay_fork_repair;
        Alcotest.test_case "gossip catch-up from a sibling" `Quick
          test_relay_gossip_catchup;
        Alcotest.test_case "version age + metrics" `Quick
          test_relay_version_age_and_metrics ] );
    ( "distrib.soak",
      [ Alcotest.test_case "mini soak" `Quick test_mini_soak;
        Alcotest.test_case "mini topology" `Quick test_mini_topology ] ) ]
