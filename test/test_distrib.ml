(* Tests for the distribution tier (Leakdetect_distrib): changelog
   algebra and codec, authority HTTP protocol and k-anonymous promotion,
   journal crash-point sweeps, the delta client's fallback ladder, and a
   miniature end-to-end fault soak. *)

module Crc32 = Leakdetect_util.Crc32
module Fault = Leakdetect_fault.Fault
module Wal = Leakdetect_store.Wal
module Http = Leakdetect_http
module Signature = Leakdetect_core.Signature
module Signature_io = Leakdetect_core.Signature_io
module Signature_client = Leakdetect_monitor.Signature_client
module Changelog = Leakdetect_distrib.Changelog
module Authority = Leakdetect_distrib.Authority
module Delta_client = Leakdetect_distrib.Delta_client
module Soak = Leakdetect_distrib.Soak

let qtest = QCheck_alcotest.to_alcotest

(* --- scratch directories --- *)

let fresh_dir () =
  let f = Filename.temp_file "ld_distrib_test" "" in
  Sys.remove f;
  Sys.mkdir f 0o700;
  f

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let with_dir f =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let sig_ ?(mode = Signature.Conjunction) ?(cluster_size = 2) id tokens =
  Signature.make ~id ~mode ~cluster_size tokens

let s1 = sig_ 1 [ "imei=355021930123456"; "loc=35.6" ]
let s2 = sig_ 2 ~mode:Signature.Ordered [ "GET"; "/track"; "id=9774d56d" ]
let s3 = sig_ 3 [ "mac=00:11:22:33:44:55" ]

let lines set = String.concat "\n" (List.map Signature_io.to_line set)

let check_set msg expected got =
  Alcotest.(check string) msg (lines expected) (lines got)

(* --- changelog --- *)

let test_changelog_ops () =
  let log = Changelog.create () in
  Alcotest.(check int) "fresh version" 0 (Changelog.version log);
  let e1 = Changelog.append log (Changelog.Add s1) in
  Alcotest.(check int) "first entry at v1" 1 e1.Changelog.version;
  ignore (Changelog.append log (Changelog.Add s3));
  ignore (Changelog.append log (Changelog.Add s2));
  check_set "id-ascending regardless of append order" [ s1; s2; s3 ]
    (Changelog.current log);
  (* Add with an existing id replaces. *)
  let s1' = sig_ 1 [ "imei=355021930123456"; "loc=51.5" ] in
  ignore (Changelog.append log (Changelog.Add s1'));
  check_set "replace by id" [ s1'; s2; s3 ] (Changelog.current log);
  ignore (Changelog.append log (Changelog.Retire 2));
  check_set "retire removes" [ s1'; s3 ] (Changelog.current log);
  Alcotest.(check int) "version counts every change" 5 (Changelog.version log);
  (* Retire of an absent id is a no-op on the set but still a version. *)
  ignore (Changelog.append log (Changelog.Retire 99));
  check_set "absent retire no-op" [ s1'; s3 ] (Changelog.current log);
  Alcotest.(check int) "next id above every add" 4 (Changelog.next_id log);
  (* checksum_at answers at every retained version. *)
  (match Changelog.checksum_at log 2 with
  | Some sum ->
    Alcotest.(check int) "checksum_at matches replay" sum
      (Changelog.checksum_set [ s1; s3 ])
  | None -> Alcotest.fail "checksum_at must answer above the horizon");
  Alcotest.(check (option int)) "checksum beyond head" None
    (Changelog.checksum_at log 7)

let test_changelog_since_and_compact () =
  let log = Changelog.create () in
  ignore (Changelog.append log (Changelog.Add s1));
  ignore (Changelog.append log (Changelog.Add s2));
  ignore (Changelog.append log (Changelog.Add s3));
  ignore (Changelog.append log (Changelog.Retire 1));
  (match Changelog.since log 2 with
  | Some [ e3; e4 ] ->
    Alcotest.(check (list int)) "suffix versions" [ 3; 4 ]
      [ e3.Changelog.version; e4.Changelog.version ]
  | _ -> Alcotest.fail "since 2 must be the two newest entries");
  (match Changelog.since log 4 with
  | Some [] -> ()
  | _ -> Alcotest.fail "since head must be the empty delta");
  (match Changelog.since log 5 with
  | None -> ()
  | Some _ -> Alcotest.fail "since beyond head must be None");
  Changelog.compact log ~keep:1;
  Alcotest.(check int) "horizon advanced" 3 (Changelog.horizon log);
  Alcotest.(check int) "head unchanged" 4 (Changelog.version log);
  check_set "set unchanged by compaction" [ s2; s3 ] (Changelog.current log);
  (match Changelog.since log 1 with
  | None -> ()
  | Some _ -> Alcotest.fail "sub-horizon since must be None");
  (match Changelog.since log 3 with
  | Some [ e ] -> Alcotest.(check int) "servable suffix" 4 e.Changelog.version
  | _ -> Alcotest.fail "since horizon must serve the kept entry");
  Alcotest.(check (option int)) "checksum below horizon" None
    (Changelog.checksum_at log 1);
  (* next_id survives compaction: retired id 1 is never reissued. *)
  Alcotest.(check int) "next_id preserved" 4 (Changelog.next_id log)

let test_changelog_codec () =
  let entries =
    [ { Changelog.version = 1; change = Changelog.Add s2 };
      { Changelog.version = 2; change = Changelog.Retire 7 };
      { Changelog.version = 3;
        change = Changelog.Add (sig_ 9 [ "tab\tin"; "line\nbreak" ]) } ]
  in
  List.iter
    (fun e ->
      match Changelog.entry_of_line (Changelog.entry_to_line e) with
      | Ok e' ->
        Alcotest.(check string) "line-stable roundtrip"
          (Changelog.entry_to_line e) (Changelog.entry_to_line e')
      | Error err -> Alcotest.fail err)
    entries;
  List.iter
    (fun bad ->
      match Changelog.entry_of_line bad with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "%S must not decode" bad)
    [ ""; "x\t1\tjunk"; "a\tnope\t"; "r\t1\tnotanid"; "a\t1"; "r\t-1\t3" ]

let test_changelog_restore_rejects_gaps () =
  let ok =
    Changelog.restore ~base_version:2 ~base:[ s1 ] ~next_id:5
      ~entries:[ { Changelog.version = 3; change = Changelog.Add s2 } ]
  in
  (match ok with
  | Ok log ->
    Alcotest.(check int) "restored head" 3 (Changelog.version log);
    check_set "restored set" [ s1; s2 ] (Changelog.current log)
  | Error e -> Alcotest.fail e);
  match
    Changelog.restore ~base_version:2 ~base:[ s1 ] ~next_id:5
      ~entries:[ { Changelog.version = 5; change = Changelog.Add s2 } ]
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "a version gap must not restore"

(* Any interleaving of adds/retires, compacted anywhere: the delta served
   from every servable [since] lands exactly on the full set. *)
let prop_delta_equals_snapshot =
  let gen =
    QCheck.make
      ~print:(fun (ops, keep) ->
        Printf.sprintf "%d ops, keep %d" (List.length ops) keep)
      QCheck.Gen.(
        pair
          (list_size (1 -- 25)
             (pair (int_range 0 1) (pair (int_range 1 8) (int_range 0 999))))
          (int_range 0 10))
  in
  QCheck.Test.make ~name:"delta from any since equals the full download"
    ~count:200 gen
    (fun (ops, keep) ->
      let log = Changelog.create () in
      List.iter
        (fun (kind, (id, tok)) ->
          let change =
            if kind = 0 then
              Changelog.Add (sig_ id [ Printf.sprintf "t%d" tok ])
            else Changelog.Retire id
          in
          ignore (Changelog.append log change))
        ops;
      Changelog.compact log ~keep;
      let full = Changelog.current log in
      let ok = ref true in
      for since = 0 to Changelog.version log do
        match Changelog.since log since with
        | None -> if since >= Changelog.horizon log then ok := false
        | Some entries ->
          (* Rebuild the client-side set at [since] by replaying the log
             from scratch — then apply the delta. *)
          let at_since =
            let log' = Changelog.create () in
            List.iter
              (fun (kind, (id, tok)) ->
                if Changelog.version log' < since then
                  ignore
                    (Changelog.append log'
                       (if kind = 0 then
                          Changelog.Add (sig_ id [ Printf.sprintf "t%d" tok ])
                        else Changelog.Retire id)))
              ops;
            Changelog.current log'
          in
          let landed =
            List.fold_left
              (fun set (e : Changelog.entry) ->
                Changelog.apply_change set e.Changelog.change)
              at_since entries
          in
          if lines landed <> lines full then ok := false
      done;
      !ok)

(* --- authority: protocol --- *)

let get target =
  Http.Request.make
    ~headers:(Http.Headers.of_list [ ("Host", "authority.test") ])
    Http.Request.GET target

let post target body =
  Http.Request.make
    ~headers:(Http.Headers.of_list [ ("Host", "authority.test") ])
    ~body Http.Request.POST target

let header r name = Http.Headers.get r.Http.Response.headers name

let test_authority_http_statuses () =
  let auth = Authority.create () in
  let (_ : int) = Authority.publish auth ~tenant:"t0" [ s1; s2 ] in
  let check_status msg expected request =
    Alcotest.(check int) msg expected
      (Authority.handle auth request).Http.Response.status
  in
  check_status "unknown path" 404 (get "/nope");
  check_status "POST on /signatures" 405 (post "/signatures?tenant=t0" "");
  check_status "GET on /candidates" 405 (get "/candidates?tenant=t0&reporter=r");
  check_status "missing tenant" 400 (get "/signatures");
  check_status "bad tenant id" 400 (get "/signatures?tenant=bad%20id");
  check_status "unparseable since" 400 (get "/signatures?tenant=t0&since=banana");
  check_status "negative since" 400 (get "/signatures?tenant=t0&since=-1");
  check_status "bad reporter id" 400 (post "/candidates?tenant=t0&reporter=a%20b" "x");
  check_status "empty candidate body" 400 (post "/candidates?tenant=t0&reporter=r" "");
  (* 304 carries version and checksum headers. *)
  let r = Authority.handle auth (get "/signatures?tenant=t0&since=2") in
  Alcotest.(check int) "up-to-date is 304" 304 r.Http.Response.status;
  Alcotest.(check (option string)) "304 version header" (Some "2")
    (header r "X-Signature-Version");
  Alcotest.(check (option string)) "304 checksum header"
    (Some (Crc32.to_hex (Changelog.wire_checksum ~version:2 [ s1; s2 ])))
    (header r "X-Signature-Checksum");
  (* Delta mode for a servable suffix. *)
  let r = Authority.handle auth (get "/signatures?tenant=t0&since=1") in
  Alcotest.(check int) "delta is 200" 200 r.Http.Response.status;
  Alcotest.(check (option string)) "delta mode" (Some "delta")
    (header r "X-Signature-Mode");
  Alcotest.(check (option string)) "since echoed" (Some "1")
    (header r "X-Signature-Since");
  Alcotest.(check string) "delta body is the suffix"
    (Changelog.entry_to_line { Changelog.version = 2; change = Changelog.Add s2 })
    r.Http.Response.body;
  (* Snapshot when forced, and for an unknown (empty) tenant. *)
  let r = Authority.handle auth (get "/signatures?tenant=t0&since=1&full=1") in
  Alcotest.(check (option string)) "full=1 forces snapshot" (Some "snapshot")
    (header r "X-Signature-Mode");
  Alcotest.(check string) "snapshot body" (lines [ s1; s2 ]) r.Http.Response.body;
  let r = Authority.handle auth (get "/signatures?tenant=ghost&full=1") in
  Alcotest.(check int) "unknown tenant serves empty snapshot" 200
    r.Http.Response.status;
  Alcotest.(check string) "empty body" "" r.Http.Response.body

let test_authority_snapshot_below_horizon () =
  let auth = Authority.create ~config:{ Authority.default_config with compact_keep = 1 } () in
  let publish set = ignore (Authority.publish auth ~tenant:"t0" set) in
  publish [ s1 ];
  publish [ s1; s2 ];
  publish [ s1; s2; s3 ];
  Authority.compact auth;
  Alcotest.(check int) "horizon after compaction" 2
    (Authority.horizon auth ~tenant:"t0");
  let r = Authority.handle auth (get "/signatures?tenant=t0&since=1") in
  Alcotest.(check (option string)) "sub-horizon since falls back to snapshot"
    (Some "snapshot")
    (header r "X-Signature-Mode");
  let r = Authority.handle auth (get "/signatures?tenant=t0&since=2") in
  Alcotest.(check (option string)) "at-horizon since still serves delta"
    (Some "delta")
    (header r "X-Signature-Mode")

(* --- authority: k-anonymous promotion --- *)

let candidate tokens = sig_ 0 ~cluster_size:1 tokens

let test_promotion_at_k () =
  let auth = Authority.create () in
  let (_ : int) = Authority.publish auth ~tenant:"t0" [ s1 ] in
  let c = candidate [ "cand"; "imsi=240080000000001" ] in
  let report r = Authority.report_candidate auth ~tenant:"t0" ~reporter:r c in
  (match report "alice" with
  | Authority.Accepted 1 -> ()
  | o -> Alcotest.failf "first report: %s" (Authority.candidate_outcome_to_string o));
  (* The same reporter again is a duplicate, never double-counted. *)
  (match report "alice" with
  | Authority.Duplicate -> ()
  | o -> Alcotest.failf "same reporter: %s" (Authority.candidate_outcome_to_string o));
  (match report "bob" with
  | Authority.Accepted 2 -> ()
  | o -> Alcotest.failf "second report: %s" (Authority.candidate_outcome_to_string o));
  Alcotest.(check int) "nothing published below k" 1
    (Authority.version auth ~tenant:"t0");
  (match report "carol" with
  | Authority.Promoted 2 -> ()
  | o -> Alcotest.failf "k-th report: %s" (Authority.candidate_outcome_to_string o));
  (match Authority.signatures auth ~tenant:"t0" with
  | [ _; s ] ->
    Alcotest.(check int) "cluster_size is the reporter count" 3
      s.Signature.cluster_size;
    Alcotest.(check bool) "fresh id past the published set" true
      (s.Signature.id > s1.Signature.id)
  | _ -> Alcotest.fail "published set plus the promotion");
  (match Authority.promotions auth with
  | [ p ] ->
    Alcotest.(check int) "audit trail records k reporters" 3
      p.Authority.reporters
  | _ -> Alcotest.fail "exactly one promotion audited");
  (* Reporting an already-published signature is a duplicate. *)
  match report "dave" with
  | Authority.Duplicate -> ()
  | o -> Alcotest.failf "published: %s" (Authority.candidate_outcome_to_string o)

let test_reporter_cap () =
  let auth =
    Authority.create
      ~config:{ Authority.default_config with reporter_cap = 2 } ()
  in
  let flood j =
    Authority.report_candidate auth ~tenant:"t0" ~reporter:"byz"
      (candidate [ "flood"; Printf.sprintf "z%d" j ])
  in
  (match flood 0 with Authority.Accepted 1 -> () | _ -> Alcotest.fail "first");
  (match flood 1 with Authority.Accepted 1 -> () | _ -> Alcotest.fail "second");
  (match flood 2 with
  | Authority.Capped -> ()
  | o -> Alcotest.failf "over cap: %s" (Authority.candidate_outcome_to_string o));
  Alcotest.(check int) "pending stuck at the cap" 2
    (Authority.pending_candidates auth ~tenant:"t0");
  (* Promotion frees cap room: k distinct reporters on one candidate. *)
  let c = candidate [ "flood"; "z0" ] in
  ignore (Authority.report_candidate auth ~tenant:"t0" ~reporter:"r2" c);
  (match Authority.report_candidate auth ~tenant:"t0" ~reporter:"r3" c with
  | Authority.Promoted _ -> ()
  | o -> Alcotest.failf "promotion: %s" (Authority.candidate_outcome_to_string o));
  match flood 3 with
  | Authority.Accepted 1 -> ()
  | o ->
    Alcotest.failf "cap must free after promotion: %s"
      (Authority.candidate_outcome_to_string o)

let test_candidates_endpoint_tally () =
  let auth = Authority.create () in
  let body =
    String.concat "\n"
      (List.map Signature_io.to_line
         [ candidate [ "a"; "one" ]; candidate [ "a"; "two" ] ])
  in
  let r =
    Authority.handle auth (post "/candidates?tenant=t0&reporter=r0" body)
  in
  Alcotest.(check int) "tally is 200" 200 r.Http.Response.status;
  Alcotest.(check string) "tally body"
    "accepted\t2\nduplicate\t0\npromoted\t0\ncapped\t0" r.Http.Response.body

(* --- authority: durability and crash points --- *)

let publish_sets auth =
  ignore (Authority.publish auth ~tenant:"t0" [ s1 ]);
  ignore (Authority.publish auth ~tenant:"t0" [ s1; s2 ]);
  ignore (Authority.publish auth ~tenant:"t1" [ s3 ])

let reopen ~dir =
  match Authority.open_ ~dir () with
  | Ok (t, rep) -> (t, rep)
  | Error e -> Alcotest.fail e

let test_authority_reopen () =
  with_dir (fun dir ->
      let auth, rep = reopen ~dir in
      Alcotest.(check bool) "fresh dir has no snapshot" true
        (rep.Authority.snapshot = Authority.Absent);
      publish_sets auth;
      ignore
        (Authority.report_candidate auth ~tenant:"t0" ~reporter:"r0"
           (candidate [ "pending"; "one" ]));
      let v0 = Authority.version auth ~tenant:"t0" in
      let set0 = Authority.signatures auth ~tenant:"t0" in
      Authority.close auth;
      let auth', rep' = reopen ~dir in
      Alcotest.(check bool) "clean tail" true (rep'.Authority.tail = Wal.Clean);
      Alcotest.(check int) "version recovered" v0
        (Authority.version auth' ~tenant:"t0");
      check_set "set recovered byte-identically" set0
        (Authority.signatures auth' ~tenant:"t0");
      Alcotest.(check (list string)) "tenants recovered" [ "t0"; "t1" ]
        (Authority.tenants auth');
      Alcotest.(check int) "pending candidate recovered" 1
        (Authority.pending_candidates auth' ~tenant:"t0");
      Authority.close auth')

(* Crash before each journal append of a multi-change publish: recovery
   must land on exactly the committed prefix, and re-issuing the publish
   must finish the job. *)
let test_publish_crash_point_sweep () =
  let desired = [ s1; s2; s3 ] in
  (* The publish diffs an empty set into three adds: 3 crash points. *)
  for crash_at = 0 to 2 do
    with_dir (fun dir ->
        let auth, _ = reopen ~dir in
        (try
           ignore
             (Authority.publish auth
                ~inject:(fun i ->
                  if i = crash_at then raise (Authority.Crashed "boom"))
                ~tenant:"t0" desired)
         with Authority.Crashed _ -> ());
        Authority.close auth;
        let auth', _ = reopen ~dir in
        Alcotest.(check int)
          (Printf.sprintf "crash at %d: committed prefix only" crash_at)
          crash_at
          (Authority.version auth' ~tenant:"t0");
        check_set
          (Printf.sprintf "crash at %d: prefix of adds" crash_at)
          (List.filteri (fun i _ -> i < crash_at) desired)
          (Authority.signatures auth' ~tenant:"t0");
        (* Re-issuing completes; the diff re-derives the missing tail. *)
        ignore (Authority.publish auth' ~tenant:"t0" desired);
        check_set
          (Printf.sprintf "crash at %d: re-publish completes" crash_at)
          desired
          (Authority.signatures auth' ~tenant:"t0");
        Authority.close auth')
  done

let test_compaction_crash_windows () =
  List.iter
    (fun window ->
      with_dir (fun dir ->
          let auth, _ = reopen ~dir in
          publish_sets auth;
          let v0 = Authority.version auth ~tenant:"t0" in
          let sum0 = Authority.checksum auth ~tenant:"t0" in
          (try
             Authority.compact
               ~inject:(fun p ->
                 if p = window then raise (Authority.Crashed window))
               auth
           with Authority.Crashed _ -> ());
          Authority.close auth;
          let auth', _ = reopen ~dir in
          Alcotest.(check int)
            (window ^ ": version survives")
            v0
            (Authority.version auth' ~tenant:"t0");
          Alcotest.(check int)
            (window ^ ": checksum survives")
            sum0
            (Authority.checksum auth' ~tenant:"t0");
          (* The recovered instance keeps working: mutate and recover again. *)
          ignore (Authority.publish auth' ~tenant:"t0" [ s1 ]);
          let v1 = Authority.version auth' ~tenant:"t0" in
          Authority.close auth';
          let auth'', _ = reopen ~dir in
          Alcotest.(check int)
            (window ^ ": post-recovery publish survives")
            v1
            (Authority.version auth'' ~tenant:"t0");
          Authority.close auth''))
    [ "pre_snapshot"; "post_snapshot" ]

let test_promotion_crash_recovers () =
  with_dir (fun dir ->
      let auth, _ = reopen ~dir in
      let c = candidate [ "cand"; "crashy" ] in
      ignore (Authority.report_candidate auth ~tenant:"t0" ~reporter:"a" c);
      ignore (Authority.report_candidate auth ~tenant:"t0" ~reporter:"b" c);
      ignore (Authority.report_candidate auth ~tenant:"t0" ~reporter:"c" c);
      Alcotest.(check int) "promoted live" 1 (Authority.version auth ~tenant:"t0");
      Authority.close auth;
      (* Replay sees three reports and the promotion's Add: the candidate
         must not resurrect (it is already in the published set). *)
      let auth', rep = reopen ~dir in
      Alcotest.(check int) "no ghost candidate" 0
        (Authority.pending_candidates auth' ~tenant:"t0");
      Alcotest.(check int) "no re-promotion" 0 rep.Authority.promoted_on_recovery;
      Alcotest.(check int) "version stable" 1
        (Authority.version auth' ~tenant:"t0");
      Authority.close auth')

let test_torn_journal_tail () =
  with_dir (fun dir ->
      let auth, _ = reopen ~dir in
      publish_sets auth;
      let v0 = Authority.version auth ~tenant:"t0" in
      Authority.close auth;
      let path = Filename.concat dir "journal.log" in
      let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
      output_string oc "torn garbage that is not a frame";
      close_out oc;
      let auth', rep = reopen ~dir in
      (match rep.Authority.tail with
      | Wal.Torn _ -> ()
      | Wal.Clean -> Alcotest.fail "garbage tail must be reported torn");
      Alcotest.(check int) "committed versions survive the tear" v0
        (Authority.version auth' ~tenant:"t0");
      Authority.close auth')

(* --- delta client --- *)

let loss_free auth raw = Authority.wire_transport auth raw

let new_client tenant = Delta_client.create ~seed:7 ~tenant ()

let sync_updated msg client transport =
  match (Delta_client.sync client ~transport).Signature_client.outcome with
  | Signature_client.Updated v -> v
  | Signature_client.Unchanged -> Alcotest.failf "%s: unchanged" msg
  | Signature_client.Failed e -> Alcotest.failf "%s: failed: %s" msg e

let test_delta_client_happy_path () =
  let auth = Authority.create () in
  let c = new_client "t0" in
  ignore (Authority.publish auth ~tenant:"t0" [ s1 ]);
  let v = sync_updated "bootstrap" c (loss_free auth) in
  Alcotest.(check int) "bootstrap lands on head" 1 v;
  ignore (Authority.publish auth ~tenant:"t0" [ s1; s2 ]);
  ignore (sync_updated "incremental" c (loss_free auth));
  check_set "delta-assembled set" [ s1; s2 ] (Delta_client.signatures c);
  let k = Delta_client.counters c in
  (* The bootstrap from since=0 is itself a servable suffix: both syncs
     count as deltas. *)
  Alcotest.(check int) "both syncs were deltas" 2 k.Delta_client.delta_updates;
  Alcotest.(check int) "no forced fulls" 0 k.Delta_client.forced_full;
  match (Delta_client.sync c ~transport:(loss_free auth)).Signature_client.outcome with
  | Signature_client.Unchanged -> ()
  | _ -> Alcotest.fail "up-to-date sync must be Unchanged"

let test_delta_client_gap_forces_full () =
  let auth =
    Authority.create ~config:{ Authority.default_config with compact_keep = 1 } ()
  in
  let c = new_client "t0" in
  ignore (Authority.publish auth ~tenant:"t0" [ s1 ]);
  ignore (sync_updated "bootstrap" c (loss_free auth));
  ignore (Authority.publish auth ~tenant:"t0" [ s1; s2 ]);
  ignore (Authority.publish auth ~tenant:"t0" [ s1; s2; s3 ]);
  Authority.compact auth;
  (* since=1 is now below the horizon: the server answers snapshot. *)
  ignore (sync_updated "catch-up" c (loss_free auth));
  check_set "snapshot catch-up" [ s1; s2; s3 ] (Delta_client.signatures c);
  let k = Delta_client.counters c in
  Alcotest.(check int) "counted as snapshot" 1 k.Delta_client.snapshot_updates

let test_delta_client_rejects_corrupt_body () =
  let auth = Authority.create () in
  ignore (Authority.publish auth ~tenant:"t0" [ s1; s2 ]);
  let c = new_client "t0" in
  (* Corrupt a signature token in transit, leaving the frame parseable:
     the wire checksum must catch it and the same attempt must recover
     via full=1 (which we serve uncorrupted). *)
  let find_sub s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = if i + m > n then None
      else if String.sub s i m = sub then Some i
      else go (i + 1)
    in
    go 0
  in
  let transport raw =
    match Authority.wire_transport auth raw with
    | Error _ as e -> e
    | Ok response ->
      if find_sub raw "full=1" <> None then Ok response
      else (
        match find_sub response "imei" with
        | None -> Ok response
        | Some i ->
          let b = Bytes.of_string response in
          Bytes.set b (i + 2) 'X';
          Ok (Bytes.to_string b))
  in
  ignore (sync_updated "corrupt delta falls back" c transport);
  check_set "landed on the true set" [ s1; s2 ] (Delta_client.signatures c);
  let k = Delta_client.counters c in
  Alcotest.(check int) "forced full counted" 1 k.Delta_client.forced_full

let test_delta_client_refuses_regression () =
  let auth = Authority.create () in
  ignore (Authority.publish auth ~tenant:"t0" [ s1; s2 ]);
  let c = new_client "t0" in
  ignore (sync_updated "bootstrap" c (loss_free auth));
  (* A rolled-back authority now serves version 1 < client's 2. *)
  let rolled = Authority.create () in
  ignore (Authority.publish rolled ~tenant:"t0" [ s3 ]);
  (match (Delta_client.sync c ~transport:(loss_free rolled)).Signature_client.outcome with
  | Signature_client.Failed _ -> ()
  | _ -> Alcotest.fail "regression must fail the sync");
  Alcotest.(check int) "client version untouched" 2 (Delta_client.version c);
  check_set "client set untouched" [ s1; s2 ] (Delta_client.signatures c);
  let k = Delta_client.counters c in
  Alcotest.(check bool) "refusals counted" true
    (k.Delta_client.regressions_refused > 0)

(* --- mini soak: end-to-end, faults and crash points on --- *)

let test_mini_soak () =
  with_dir (fun dir ->
      let config =
        {
          Soak.default_config with
          Soak.clients = 24;
          ticks = 240;
          sync_period = 12;
          publishes = 10;
          compact_every = 4;
          candidates = 3;
          byzantine = 1;
          drain_rounds = 30;
          seed = 5;
        }
      in
      let report = Soak.run ~dir config in
      let inv = report.Soak.invariants in
      Alcotest.(check int) "no divergence" 0 inv.Soak.divergences;
      Alcotest.(check int) "no regressions" 0 inv.Soak.regressions;
      Alcotest.(check int) "no sub-k promotions" 0 inv.Soak.sub_k_promotions;
      Alcotest.(check int) "no recovery mismatches" 0 inv.Soak.recovery_mismatches;
      Alcotest.(check int) "everyone converged" 0 inv.Soak.unconverged;
      Alcotest.(check bool) "ok" true (Soak.ok report);
      Alcotest.(check bool) "faults actually fired" true
        (List.exists (fun (_, n) -> n > 0) report.Soak.fault_events);
      Alcotest.(check bool) "deltas dominate snapshots" true
        (report.Soak.steady_delta_ratio >= 1.0))

let suite =
  [ ( "distrib.changelog",
      [ Alcotest.test_case "ops" `Quick test_changelog_ops;
        Alcotest.test_case "since + compact" `Quick
          test_changelog_since_and_compact;
        Alcotest.test_case "entry codec" `Quick test_changelog_codec;
        Alcotest.test_case "restore rejects gaps" `Quick
          test_changelog_restore_rejects_gaps;
        qtest prop_delta_equals_snapshot ] );
    ( "distrib.authority",
      [ Alcotest.test_case "http statuses" `Quick test_authority_http_statuses;
        Alcotest.test_case "snapshot below horizon" `Quick
          test_authority_snapshot_below_horizon;
        Alcotest.test_case "promotion at k" `Quick test_promotion_at_k;
        Alcotest.test_case "reporter cap" `Quick test_reporter_cap;
        Alcotest.test_case "candidates tally" `Quick
          test_candidates_endpoint_tally ] );
    ( "distrib.durability",
      [ Alcotest.test_case "reopen replays" `Quick test_authority_reopen;
        Alcotest.test_case "publish crash-point sweep" `Quick
          test_publish_crash_point_sweep;
        Alcotest.test_case "compaction crash windows" `Quick
          test_compaction_crash_windows;
        Alcotest.test_case "promotion crash recovers" `Quick
          test_promotion_crash_recovers;
        Alcotest.test_case "torn journal tail" `Quick test_torn_journal_tail ] );
    ( "distrib.delta_client",
      [ Alcotest.test_case "happy path" `Quick test_delta_client_happy_path;
        Alcotest.test_case "horizon gap falls back" `Quick
          test_delta_client_gap_forces_full;
        Alcotest.test_case "corrupt body falls back" `Quick
          test_delta_client_rejects_corrupt_body;
        Alcotest.test_case "regression refused" `Quick
          test_delta_client_refuses_regression ] );
    ("distrib.soak", [ Alcotest.test_case "mini soak" `Quick test_mini_soak ]) ]
