type t = (string * string) list
(* Invariant: wire order preserved; lookups are case-insensitive. *)

let empty = []
let of_list l = l
let to_list t = t
let add t name value = t @ [ (name, value) ]

let same a b = String.lowercase_ascii a = String.lowercase_ascii b

let remove t name = List.filter (fun (n, _) -> not (same n name)) t

let replace t name value =
  let rec loop replaced acc = function
    | [] -> List.rev (if replaced then acc else (name, value) :: acc)
    | (n, _) :: rest when same n name ->
      if replaced then loop true acc rest else loop true ((name, value) :: acc) rest
    | kv :: rest -> loop replaced (kv :: acc) rest
  in
  loop false [] t

let get t name = List.find_map (fun (n, v) -> if same n name then Some v else None) t
let get_all t name = List.filter_map (fun (n, v) -> if same n name then Some v else None) t
let mem t name = Option.is_some (get t name)
let length = List.length
