lib/http/headers.ml: List Option String
