lib/http/wire.ml: Buffer Headers Leakdetect_util List Printf Request String
