lib/http/cookie.ml: Leakdetect_util List String
