lib/http/trace_compressed.mli: Trace
