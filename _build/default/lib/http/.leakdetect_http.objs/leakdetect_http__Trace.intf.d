lib/http/trace.mli: Packet
