lib/http/packet.mli: Format Leakdetect_net Request
