lib/http/trace_compressed.ml: Fun Leakdetect_compress String Trace_binary
