lib/http/request.ml: Headers Leakdetect_net Option String
