lib/http/response.ml: Buffer Headers Leakdetect_util List Printf String
