lib/http/trace_binary.mli: Trace
