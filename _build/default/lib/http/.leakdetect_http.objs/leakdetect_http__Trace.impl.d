lib/http/trace.ml: Buffer Fun Leakdetect_net List Packet Printf Result String
