lib/http/cookie.mli:
