lib/http/headers.mli:
