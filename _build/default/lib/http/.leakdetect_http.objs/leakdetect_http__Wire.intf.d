lib/http/wire.mli: Request
