lib/http/response.mli: Headers
