lib/http/trace_binary.ml: Buffer Char Fun Leakdetect_net List Packet Printf String Trace
