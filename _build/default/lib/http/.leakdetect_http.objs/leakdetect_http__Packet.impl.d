lib/http/packet.ml: Format Int Leakdetect_net Request String
