lib/http/request.mli: Headers
