type destination = { ip : Leakdetect_net.Ipv4.t; port : int; host : string }
type content = { request_line : string; cookie : string; body : string }
type t = { dst : destination; content : content }

let make ~dst ~request =
  {
    dst;
    content =
      {
        request_line = Request.request_line request;
        cookie = Request.cookie request;
        body = request.Request.body;
      };
  }

let v ~ip ~port ~host ~request_line ~cookie ~body =
  { dst = { ip; port; host }; content = { request_line; cookie; body } }

let content_string t =
  String.concat "\n" [ t.content.request_line; t.content.cookie; t.content.body ]

let compare_dst a b =
  match Leakdetect_net.Ipv4.compare a.ip b.ip with
  | 0 -> ( match Int.compare a.port b.port with 0 -> String.compare a.host b.host | c -> c)
  | c -> c

let pp ppf t =
  Format.fprintf ppf "@[<v>%s:%d (%s)@ %s@]"
    (Leakdetect_net.Ipv4.to_string t.dst.ip)
    t.dst.port t.dst.host t.content.request_line
