let parse s =
  if s = "" then []
  else
    String.split_on_char ';' s
    |> List.filter_map (fun part ->
           let part = Leakdetect_util.Strutil.trim_spaces part in
           if part = "" then None
           else
             match String.index_opt part '=' with
             | None -> Some (part, "")
             | Some i ->
               Some
                 ( String.sub part 0 i,
                   String.sub part (i + 1) (String.length part - i - 1) ))

let to_string pairs =
  String.concat "; "
    (List.map (fun (k, v) -> if v = "" then k else k ^ "=" ^ v) pairs)

let get cookie_string name =
  List.find_map (fun (k, v) -> if k = name then Some v else None) (parse cookie_string)
