(** Compressed trace files: the binary format of {!Trace_binary} wrapped in
    the repository's own LZ77 coder.  Full-scale traces compress roughly
    5x thanks to the highly repetitive ad-module templates.

    Layout: magic ["LDTZ"], then the LZ77 stream of a complete
    {!Trace_binary} document. *)

val magic : string

val save : string -> Trace.record list -> unit
val load : string -> (Trace.record list, string) result

val encode : Trace.record list -> string
val decode : string -> (Trace.record list, string) result
