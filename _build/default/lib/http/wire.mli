(** Raw HTTP/1.1 request bytes: printing for the traffic generator and a
    strict parser for round-trip testing and for feeding externally captured
    requests into the pipeline. *)

val print : Request.t -> string
(** Request line, headers, CRLF CRLF, body.  A [Content-Length] header is
    added for non-empty bodies when absent. *)

val parse : string -> (Request.t, string) result
(** Parses exactly one request.  The body is everything after the blank
    line (no chunked encoding).  Errors describe the first offending
    line. *)
