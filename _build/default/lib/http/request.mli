(** HTTP/1.1 requests (GET and POST only — the paper's trace consists of
    GET/POST packets, Sec. III-B). *)

type meth = GET | POST

val meth_to_string : meth -> string
val meth_of_string : string -> meth option

type t = {
  meth : meth;
  target : string;  (** Path plus optional [?query], as on the wire. *)
  version : string;  (** e.g. ["HTTP/1.1"]. *)
  headers : Headers.t;
  body : string;
}

val make :
  ?version:string -> ?headers:Headers.t -> ?body:string -> meth -> string -> t

val request_line : t -> string
(** ["GET /path?q HTTP/1.1"], without the terminating CRLF. *)

val cookie : t -> string
(** The [Cookie] header value, or [""]. *)

val host : t -> string option

val query_params : t -> (string * string) list
(** Decoded query-string parameters of the target (GET) — does not look at
    the body. *)
