let print (r : Request.t) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Request.request_line r);
  Buffer.add_string buf "\r\n";
  let headers =
    if r.body <> "" && not (Headers.mem r.headers "Content-Length") then
      Headers.add r.headers "Content-Length" (string_of_int (String.length r.body))
    else r.headers
  in
  List.iter
    (fun (name, value) ->
      Buffer.add_string buf name;
      Buffer.add_string buf ": ";
      Buffer.add_string buf value;
      Buffer.add_string buf "\r\n")
    (Headers.to_list headers);
  Buffer.add_string buf "\r\n";
  Buffer.add_string buf r.body;
  Buffer.contents buf

let parse raw =
  match Leakdetect_util.Strutil.split_on_string ~sep:"\r\n\r\n" raw with
  | [] -> Error "empty input"
  | head :: rest ->
    let body = String.concat "\r\n\r\n" rest in
    (match Leakdetect_util.Strutil.split_on_string ~sep:"\r\n" head with
    | [] | [ "" ] -> Error "missing request line"
    | rline :: header_lines ->
      (match String.split_on_char ' ' rline with
      | [ meth_s; target; version ] -> (
        match Request.meth_of_string meth_s with
        | None -> Error (Printf.sprintf "unsupported method %S" meth_s)
        | Some meth ->
          let parse_header acc line =
            match acc with
            | Error _ as e -> e
            | Ok headers -> (
              match String.index_opt line ':' with
              | None -> Error (Printf.sprintf "malformed header line %S" line)
              | Some i ->
                let name = String.sub line 0 i in
                let value =
                  Leakdetect_util.Strutil.trim_spaces
                    (String.sub line (i + 1) (String.length line - i - 1))
                in
                Ok (Headers.add headers name value))
          in
          (match List.fold_left parse_header (Ok Headers.empty) header_lines with
          | Error _ as e -> e
          | Ok headers -> Ok (Request.make ~version ~headers ~body meth target)))
      | _ -> Error (Printf.sprintf "malformed request line %S" rline)))
