(** Cookie request-header values ([k1=v1; k2=v2]).  The paper's content
    distance treats the cookie field as one of the three compared strings
    (Sec. IV-C), and several simulated ad modules carry identifiers there. *)

val parse : string -> (string * string) list
(** Lenient split on [';']; pairs without [=] become [(name, "")]. *)

val to_string : (string * string) list -> string

val get : string -> string -> string option
(** [get cookie_string name]. *)
