(** HTTP header fields.  Names are case-insensitive per RFC 7230; insertion
    order is preserved for wire output so that generated packets are
    byte-stable. *)

type t

val empty : t
val of_list : (string * string) list -> t
val to_list : t -> (string * string) list
val add : t -> string -> string -> t
(** Appends; does not replace an existing field of the same name. *)

val replace : t -> string -> string -> t
val get : t -> string -> string option
(** First field with that (case-insensitive) name. *)

val get_all : t -> string -> string list
val remove : t -> string -> t
val mem : t -> string -> bool
val length : t -> int
