type meth = GET | POST

let meth_to_string = function GET -> "GET" | POST -> "POST"

let meth_of_string = function
  | "GET" -> Some GET
  | "POST" -> Some POST
  | _ -> None

type t = {
  meth : meth;
  target : string;
  version : string;
  headers : Headers.t;
  body : string;
}

let make ?(version = "HTTP/1.1") ?(headers = Headers.empty) ?(body = "") meth target =
  { meth; target; version; headers; body }

let request_line t =
  String.concat " " [ meth_to_string t.meth; t.target; t.version ]

let cookie t = Option.value ~default:"" (Headers.get t.headers "Cookie")
let host t = Headers.get t.headers "Host"

let query_params t =
  let _, q = Leakdetect_net.Url.split_path_query t.target in
  Option.value ~default:[] (Leakdetect_net.Url.decode_query q)
