(** The unit the paper's whole pipeline operates on (Sec. IV-B/IV-C): an
    observed HTTP packet, i.e. a destination
    [{ip; port; host}] plus the content triple
    [{request-line; cookie; message-body}]. *)

type destination = {
  ip : Leakdetect_net.Ipv4.t;
  port : int;
  host : string;  (** FQDN from the Host header. *)
}

type content = {
  request_line : string;
  cookie : string;
  body : string;
}

type t = { dst : destination; content : content }

val make : dst:destination -> request:Request.t -> t
(** Projects the request onto the content triple the distances compare. *)

val v :
  ip:Leakdetect_net.Ipv4.t -> port:int -> host:string ->
  request_line:string -> cookie:string -> body:string -> t

val content_string : t -> string
(** The canonical flattened content used for token extraction and signature
    matching: request-line, cookie and body joined with ['\n'] (a byte that
    occurs in none of the three fields). *)

val compare_dst : destination -> destination -> int
val pp : Format.formatter -> t -> unit
