(** Labeled packet traces — the dataset format of the reproduction.

    A record carries the packet, the id of the application that produced it
    and its ground-truth labels (which sensitive-information kinds the
    payload carries; empty for benign packets).  Labels are opaque strings
    here so the format does not depend on the Android model.

    The on-disk format is line-oriented: one record per line, tab-separated
    fields, with backslash escaping for tab / newline / backslash, making
    traces greppable and diff-friendly. *)

type record = {
  packet : Packet.t;
  app_id : int;
  labels : string list;
}

val escape_field : string -> string
val unescape_field : string -> string option

val record_to_line : record -> string
val record_of_line : string -> (record, string) result

val save : string -> record list -> unit
(** Writes a trace file (overwrites). *)

val load : string -> (record list, string) result
(** Reads a trace file; reports the first malformed line with its number. *)

val fold : string -> init:'a -> f:('a -> record -> 'a) -> ('a, string) result
(** Streaming left fold over a trace file — constant memory, for traces too
    large to materialize.  Stops at the first malformed line. *)

val iter : string -> f:(record -> unit) -> (unit, string) result
