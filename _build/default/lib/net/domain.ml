let labels s = String.split_on_char '.' (String.lowercase_ascii s)

let valid_label l =
  let n = String.length l in
  n >= 1 && n <= 63
  && String.for_all (fun c -> (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c = '-') l
  && l.[0] <> '-'
  && l.[n - 1] <> '-'

let is_valid s =
  match labels s with
  | [] | [ _ ] -> false
  | ls -> List.for_all valid_label ls

(* Enough of the public-suffix list for this domain of traffic: generic
   TLDs, [jp], and the Japanese second-level registrations that appear in
   Table II (co.jp, ne.jp, or.jp, ac.jp, go.jp). *)
let two_label_suffixes = [ [ "co"; "jp" ]; [ "ne"; "jp" ]; [ "or"; "jp" ]; [ "ac"; "jp" ]; [ "go"; "jp" ] ]

let registrable host =
  let ls = labels host in
  let rev = List.rev ls in
  match rev with
  | tld :: second :: third :: _ when List.mem [ second; tld ] two_label_suffixes ->
    String.concat "." [ third; second; tld ]
  | tld :: second :: _ -> String.concat "." [ second; tld ]
  | _ -> host

let normalized_edit_distance a b =
  Leakdetect_text.Edit_distance.normalized (String.lowercase_ascii a) (String.lowercase_ascii b)
