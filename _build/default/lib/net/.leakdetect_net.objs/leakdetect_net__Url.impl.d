lib/net/url.ml: Buffer Char List Option Printf String
