lib/net/registry.ml: Ipv4 List String
