lib/net/ipv4.ml: Int Printf String
