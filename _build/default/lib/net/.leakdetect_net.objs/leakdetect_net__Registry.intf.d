lib/net/registry.mli: Ipv4
