lib/net/domain.ml: Leakdetect_text List String
