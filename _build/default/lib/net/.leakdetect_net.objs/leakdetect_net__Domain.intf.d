lib/net/domain.mli:
