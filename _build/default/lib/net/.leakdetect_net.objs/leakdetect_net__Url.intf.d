lib/net/url.mli:
