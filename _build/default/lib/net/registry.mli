(** Address-allocation registry — the WHOIS refinement of Sec. VI.

    The paper notes a weakness of the IP-prefix distance: "two HTTP packets
    may have close IP addresses but be owned [by] different organizations",
    and suggests consulting registration information (WHOIS) to confirm the
    distance.  This module is that registry: a longest-prefix-match table
    from address blocks to owning organizations, which the distance layer
    can consult to snap [d_ip] to 0 (same owner) or 1 (different owners)
    when ownership is known. *)

type t

val empty : t

val register : t -> org:string -> base:Ipv4.t -> prefix:int -> t
(** Adds an allocation.  Later registrations of the same block override
    earlier ones; more-specific allocations win at lookup.
    @raise Invalid_argument on a prefix outside [\[0, 32\]]. *)

val lookup : t -> Ipv4.t -> string option
(** Owning organization under longest-prefix match. *)

val same_organization : t -> Ipv4.t -> Ipv4.t -> bool option
(** [Some true] / [Some false] when both addresses are registered, [None]
    when either is unknown. *)

val size : t -> int
(** Number of registered allocations. *)

val organizations : t -> string list
(** Distinct owners, sorted. *)
