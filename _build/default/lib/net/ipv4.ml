type t = int

let max_addr = (1 lsl 32) - 1

let of_int v =
  if v < 0 || v > max_addr then invalid_arg "Ipv4.of_int: out of range";
  v

let to_int t = t

let of_octets a b c d =
  let check o = if o < 0 || o > 255 then invalid_arg "Ipv4.of_octets: bad octet" in
  check a;
  check b;
  check c;
  check d;
  (a lsl 24) lor (b lsl 16) lor (c lsl 8) lor d

let of_string s =
  match String.split_on_char '.' s with
  | [ a; b; c; d ] -> (
    let parse o =
      match int_of_string_opt o with
      | Some v when v >= 0 && v <= 255 && String.length o <= 3 && o <> "" -> Some v
      | _ -> None
    in
    match (parse a, parse b, parse c, parse d) with
    | Some a, Some b, Some c, Some d -> Some (of_octets a b c d)
    | _ -> None)
  | _ -> None

let to_string t =
  Printf.sprintf "%d.%d.%d.%d" ((t lsr 24) land 0xff) ((t lsr 16) land 0xff)
    ((t lsr 8) land 0xff) (t land 0xff)

let equal = Int.equal
let compare = Int.compare

let lmatch a b =
  let diff = a lxor b in
  if diff = 0 then 32
  else
    (* Index of the highest set bit of a 32-bit value. *)
    let rec scan bit count = if diff land (1 lsl bit) <> 0 then count else scan (bit - 1) (count + 1) in
    scan 31 0

let similarity a b = float_of_int (lmatch a b) /. 32.

let in_block ~base ~prefix k =
  if prefix < 0 || prefix > 32 then invalid_arg "Ipv4.in_block: bad prefix";
  let host_bits = 32 - prefix in
  let mask = if host_bits = 0 then 0 else (1 lsl host_bits) - 1 in
  (base land lnot mask land max_addr) lor (k land mask)
