(** IPv4 addresses and the longest-matching-prefix operation used by the
    destination distance (Sec. IV-B).

    Note on the paper's formula: the text defines
    [d_ip(px, py) = lmatch(ip_x, ip_y) / 32], which would make identical
    addresses {e maximally} distant — contradicting the stated motivation
    ("if the upper bits of IP addresses match ... the two destinations are
    managed by the same organization").  We treat this as a transcription
    error and expose {!similarity} = lmatch/32 so the distance layer can use
    [1 - similarity]; see [Leakdetect_core.Distance]. *)

type t
(** An IPv4 address.  Total order is numeric. *)

val of_int : int -> t
(** [of_int v] for [v] in [\[0, 2^32)].  @raise Invalid_argument otherwise. *)

val to_int : t -> int

val of_octets : int -> int -> int -> int -> t
(** @raise Invalid_argument when any octet is outside [\[0, 255\]]. *)

val of_string : string -> t option
(** Dotted quad. *)

val to_string : t -> string
val equal : t -> t -> bool
val compare : t -> t -> int

val lmatch : t -> t -> int
(** Number of common leading bits, in [\[0, 32\]]; 32 iff equal. *)

val similarity : t -> t -> float
(** [lmatch a b / 32] in [\[0, 1\]]. *)

val in_block : base:t -> prefix:int -> int -> t
(** [in_block ~base ~prefix k] is the [k]-th address of the /[prefix] block
    containing [base] (host bits taken from [k], wrapping).  Used by the
    workload generator to place an ad service's servers in one allocation. *)
