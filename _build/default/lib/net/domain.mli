(** Fully-qualified domain names.  The host component of the destination
    distance is a normalized edit distance over FQDN strings; this module
    additionally knows enough public-suffix structure to group hosts by
    registrable domain, which the trace-analysis tables (Table II) report. *)

val labels : string -> string list
(** Dot-separated labels, lowercased. *)

val is_valid : string -> bool
(** Letters, digits and hyphens per label; 1..63 chars; at least two
    labels; no empty labels. *)

val registrable : string -> string
(** [registrable "cache1.ads.example.co.jp"] is ["example.co.jp"]; a host
    that is itself a public suffix (or invalid) is returned unchanged.
    Knows the generic suffixes plus the Japanese second-level suffixes that
    dominate the paper's Table II. *)

val normalized_edit_distance : string -> string -> float
(** The paper's [d_host]: Levenshtein distance divided by the longer
    length, in [\[0, 1\]]. *)
