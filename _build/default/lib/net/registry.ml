type allocation = { masked : int; prefix : int; org : string }

type t = allocation list
(* Invariant: sorted by prefix length, most specific first, so the first
   matching allocation is the longest-prefix match. *)

let empty = []

let mask_of prefix = if prefix = 0 then 0 else -1 lsl (32 - prefix) land 0xffffffff

let register t ~org ~base ~prefix =
  if prefix < 0 || prefix > 32 then invalid_arg "Registry.register: bad prefix";
  let masked = Ipv4.to_int base land mask_of prefix in
  let without =
    List.filter (fun a -> not (a.prefix = prefix && a.masked = masked)) t
  in
  List.stable_sort
    (fun a b -> compare b.prefix a.prefix)
    ({ masked; prefix; org } :: without)

let lookup t ip =
  let addr = Ipv4.to_int ip in
  List.find_map
    (fun a -> if addr land mask_of a.prefix = a.masked then Some a.org else None)
    t

let same_organization t a b =
  match (lookup t a, lookup t b) with
  | Some x, Some y -> Some (String.equal x y)
  | _ -> None

let size = List.length

let organizations t =
  List.map (fun a -> a.org) t |> List.sort_uniq compare
