let min_match = 3
let max_match = 258
let window_size = 32768
let hash_bits = 15
let hash_size = 1 lsl hash_bits
let max_chain = 64

let hash3 s i =
  let a = Char.code s.[i] and b = Char.code s.[i + 1] and c = Char.code s.[i + 2] in
  ((a * 2654435761) lxor (b * 40503) lxor (c * 65599)) land (hash_size - 1)

type token = Literal of char | Match of int * int (* distance, length *)

(* Greedy parse with a hash-chain over 3-byte prefixes. *)
let tokenize s =
  let n = String.length s in
  let head = Array.make hash_size (-1) in
  let prev = Array.make (max n 1) (-1) in
  let tokens = ref [] in
  let insert i =
    if i + min_match <= n then begin
      let h = hash3 s i in
      prev.(i) <- head.(h);
      head.(h) <- i
    end
  in
  let match_length i j =
    (* Length of the common run starting at candidate [j] and cursor [i]. *)
    let limit = min max_match (n - i) in
    let rec loop k = if k < limit && s.[j + k] = s.[i + k] then loop (k + 1) else k in
    loop 0
  in
  let best_match i =
    if i + min_match > n then None
    else begin
      let h = hash3 s i in
      let best_len = ref 0 and best_pos = ref (-1) in
      let rec walk j depth =
        if j >= 0 && depth < max_chain then begin
          if i - j <= window_size then begin
            let len = match_length i j in
            if len > !best_len then begin
              best_len := len;
              best_pos := j
            end;
            if !best_len < max_match then walk prev.(j) (depth + 1)
          end
        end
      in
      walk head.(h) 0;
      if !best_len >= min_match then Some (i - !best_pos, !best_len) else None
    end
  in
  let i = ref 0 in
  while !i < n do
    (match best_match !i with
    | Some (dist, len) ->
      tokens := Match (dist, len) :: !tokens;
      (* Register every covered position so later matches can point here. *)
      for k = 0 to len - 1 do insert (!i + k) done;
      i := !i + len
    | None ->
      tokens := Literal s.[!i] :: !tokens;
      insert !i;
      incr i)
  done;
  List.rev !tokens

let emit writer tokens =
  List.iter
    (fun t ->
      match t with
      | Literal c ->
        Bitio.Writer.add_bit writer false;
        Bitio.Writer.add_bits writer (Char.code c) 8
      | Match (dist, len) ->
        Bitio.Writer.add_bit writer true;
        Bitio.Writer.add_bits writer (dist - 1) 15;
        Bitio.Writer.add_bits writer (len - min_match) 8)
    tokens

let compress s =
  let w = Bitio.Writer.create () in
  Bitio.Writer.add_bits w (String.length s) 32;
  emit w (tokenize s);
  Bitio.Writer.contents w

let compressed_length_bits s =
  let w = Bitio.Writer.create () in
  Bitio.Writer.add_bits w (String.length s) 32;
  emit w (tokenize s);
  Bitio.Writer.bit_length w

let decompress data =
  let r = Bitio.Reader.of_string data in
  try
    let total = Bitio.Reader.read_bits r 32 in
    let out = Buffer.create total in
    while Buffer.length out < total do
      if Bitio.Reader.read_bit r then begin
        let dist = Bitio.Reader.read_bits r 15 + 1 in
        let len = Bitio.Reader.read_bits r 8 + min_match in
        let start = Buffer.length out - dist in
        if start < 0 then invalid_arg "Lz77.decompress: distance before start";
        (* Byte-at-a-time copy: overlapping matches replicate correctly. *)
        for k = 0 to len - 1 do
          Buffer.add_char out (Buffer.nth out (start + k))
        done
      end
      else Buffer.add_char out (Char.chr (Bitio.Reader.read_bits r 8))
    done;
    Buffer.contents out
  with Bitio.Reader.End_of_input -> invalid_arg "Lz77.decompress: truncated stream"
