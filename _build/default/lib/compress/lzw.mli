(** LZW with growing code widths (9..16 bits) and dictionary reset, provided
    as an alternative compressor for the NCD ablation: the paper's distance
    only requires {e some} real compressor, and comparing LZ77 / LZW / Huffman
    shows how sensitive the pipeline is to that choice. *)

val compress : string -> string
val decompress : string -> string
(** @raise Invalid_argument on a corrupt stream. *)

val compressed_length_bits : string -> int
