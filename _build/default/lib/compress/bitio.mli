(** Bit-level I/O used by the compressors.  Bits are written and read
    LSB-first within each byte. *)

module Writer : sig
  type t

  val create : unit -> t
  val add_bit : t -> bool -> unit

  val add_bits : t -> int -> int -> unit
  (** [add_bits w value width] writes the low [width] bits of [value],
      LSB first.  [width] must be in [\[0, 62\]]. *)

  val bit_length : t -> int
  (** Exact number of bits written so far (before byte padding). *)

  val contents : t -> string
  (** Byte string; the final partial byte is zero-padded. *)
end

module Reader : sig
  type t

  exception End_of_input

  val of_string : string -> t
  val read_bit : t -> bool
  val read_bits : t -> int -> int
  val bits_remaining : t -> int
end
