module Writer = struct
  type t = { buf : Buffer.t; mutable acc : int; mutable used : int; mutable bits : int }

  let create () = { buf = Buffer.create 64; acc = 0; used = 0; bits = 0 }

  let flush_byte t =
    Buffer.add_char t.buf (Char.chr (t.acc land 0xff));
    t.acc <- 0;
    t.used <- 0

  let add_bit t b =
    if b then t.acc <- t.acc lor (1 lsl t.used);
    t.used <- t.used + 1;
    t.bits <- t.bits + 1;
    if t.used = 8 then flush_byte t

  let add_bits t value width =
    if width < 0 || width > 62 then invalid_arg "Bitio.add_bits: bad width";
    for i = 0 to width - 1 do
      add_bit t ((value lsr i) land 1 = 1)
    done

  let bit_length t = t.bits

  let contents t =
    let body = Buffer.contents t.buf in
    if t.used = 0 then body else body ^ String.make 1 (Char.chr (t.acc land 0xff))
end

module Reader = struct
  type t = { data : string; mutable pos : int }

  exception End_of_input

  let of_string data = { data; pos = 0 }

  let read_bit t =
    let byte = t.pos lsr 3 in
    if byte >= String.length t.data then raise End_of_input;
    let bit = (Char.code t.data.[byte] lsr (t.pos land 7)) land 1 in
    t.pos <- t.pos + 1;
    bit = 1

  let read_bits t width =
    if width < 0 || width > 62 then invalid_arg "Bitio.read_bits: bad width";
    let v = ref 0 in
    for i = 0 to width - 1 do
      if read_bit t then v := !v lor (1 lsl i)
    done;
    !v

  let bits_remaining t = (String.length t.data * 8) - t.pos
end
