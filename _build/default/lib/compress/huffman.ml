let max_code_len = 31

(* Build code lengths by the standard two-queue merge over a sorted leaf
   list; inputs here are small enough that a simple sorted-list priority
   queue is fine. *)
let code_lengths s =
  let freq = Array.make 256 0 in
  String.iter (fun c -> freq.(Char.code c) <- freq.(Char.code c) + 1) s;
  let lengths = Array.make 256 0 in
  let leaves =
    Array.to_list freq
    |> List.mapi (fun sym f -> (f, `Leaf sym))
    |> List.filter (fun (f, _) -> f > 0)
  in
  match leaves with
  | [] -> lengths
  | [ (_, `Leaf sym) ] ->
    (* A single distinct symbol still needs one bit per occurrence. *)
    lengths.(sym) <- 1;
    lengths
  | _ ->
    let module Pq = struct
      type tree = Leaf of int | Node of tree * tree

      let rec deepen lengths depth = function
        | Leaf sym -> lengths.(sym) <- min depth max_code_len
        | Node (l, r) ->
          deepen lengths (depth + 1) l;
          deepen lengths (depth + 1) r
    end in
    let heap =
      List.map (fun (f, `Leaf sym) -> (f, Pq.Leaf sym)) leaves
      |> List.sort (fun (a, _) (b, _) -> compare a b)
    in
    let rec insert x = function
      | [] -> [ x ]
      | y :: rest -> if fst x <= fst y then x :: y :: rest else y :: insert x rest
    in
    let rec merge = function
      | [] -> assert false
      | [ (_, t) ] -> t
      | (f1, t1) :: (f2, t2) :: rest -> merge (insert (f1 + f2, Pq.Node (t1, t2)) rest)
    in
    Pq.deepen lengths 0 (merge heap);
    lengths

(* Canonical codes from lengths: symbols sorted by (length, value). *)
let canonical_codes lengths =
  let codes = Array.make 256 0 in
  let by_len =
    List.init 256 (fun sym -> sym)
    |> List.filter (fun sym -> lengths.(sym) > 0)
    |> List.sort (fun a b ->
           match compare lengths.(a) lengths.(b) with 0 -> compare a b | c -> c)
  in
  let code = ref 0 and last_len = ref 0 in
  List.iter
    (fun sym ->
      code := !code lsl (lengths.(sym) - !last_len);
      last_len := lengths.(sym);
      codes.(sym) <- !code;
      incr code)
    by_len;
  codes

let header_bits = 32 + (256 * 5)

let payload_bits lengths s =
  let total = ref 0 in
  String.iter (fun c -> total := !total + lengths.(Char.code c)) s;
  !total

let compressed_length_bits s =
  header_bits + payload_bits (code_lengths s) s

let compress s =
  let lengths = code_lengths s in
  let codes = canonical_codes lengths in
  let w = Bitio.Writer.create () in
  Bitio.Writer.add_bits w (String.length s) 32;
  Array.iter (fun len -> Bitio.Writer.add_bits w len 5) lengths;
  String.iter
    (fun c ->
      let sym = Char.code c in
      let len = lengths.(sym) and code = codes.(sym) in
      (* Canonical codes are MSB-first by construction. *)
      for i = len - 1 downto 0 do
        Bitio.Writer.add_bit w ((code lsr i) land 1 = 1)
      done)
    s;
  Bitio.Writer.contents w

let decompress data =
  let r = Bitio.Reader.of_string data in
  try
    let total = Bitio.Reader.read_bits r 32 in
    let lengths = Array.init 256 (fun _ -> Bitio.Reader.read_bits r 5) in
    let codes = canonical_codes lengths in
    (* Decode bit-by-bit against the canonical table; table is tiny. *)
    let entries =
      List.init 256 (fun sym -> sym)
      |> List.filter (fun sym -> lengths.(sym) > 0)
      |> List.map (fun sym -> (lengths.(sym), codes.(sym), sym))
    in
    let out = Buffer.create total in
    while Buffer.length out < total do
      let rec walk len acc =
        if len > max_code_len then invalid_arg "Huffman.decompress: bad code";
        let acc = (acc lsl 1) lor (if Bitio.Reader.read_bit r then 1 else 0) in
        let len = len + 1 in
        match
          List.find_opt (fun (l, c, _) -> l = len && c = acc) entries
        with
        | Some (_, _, sym) -> sym
        | None -> walk len acc
      in
      Buffer.add_char out (Char.chr (walk 0 0))
    done;
    Buffer.contents out
  with Bitio.Reader.End_of_input -> invalid_arg "Huffman.decompress: truncated stream"
