let start_width = 9
let max_width = 16
let dict_limit = 1 lsl max_width

(* Encoder dictionary: map from (prefix code, next byte) to code. *)
module Pair_tbl = Hashtbl.Make (struct
  type t = int * int

  let equal (a1, b1) (a2, b2) = a1 = a2 && b1 = b2
  let hash (a, b) = (a * 257) + b
end)

let encode_tokens s =
  (* Returns the code list; each element is (code, width-at-emission). *)
  let dict = Pair_tbl.create 4096 in
  let next = ref 256 and width = ref start_width in
  let out = ref [] in
  let reset () =
    Pair_tbl.reset dict;
    next := 256;
    width := start_width
  in
  let emit code =
    out := (code, !width) :: !out
  in
  let n = String.length s in
  let i = ref 0 in
  let current = ref (-1) in
  while !i < n do
    let c = Char.code s.[!i] in
    if !current < 0 then current := c
    else begin
      match Pair_tbl.find_opt dict (!current, c) with
      | Some code -> current := code
      | None ->
        emit !current;
        Pair_tbl.add dict (!current, c) !next;
        incr next;
        (* Grow the code width when the next code would not fit. *)
        if !next > 1 lsl !width && !width < max_width then incr width;
        if !next >= dict_limit then reset ();
        current := c
    end;
    incr i
  done;
  if !current >= 0 then emit !current;
  List.rev !out

let compress s =
  let w = Bitio.Writer.create () in
  Bitio.Writer.add_bits w (String.length s) 32;
  List.iter (fun (code, width) -> Bitio.Writer.add_bits w code width) (encode_tokens s);
  Bitio.Writer.contents w

let compressed_length_bits s =
  List.fold_left (fun acc (_, width) -> acc + width) 32 (encode_tokens s)

let decompress data =
  let r = Bitio.Reader.of_string data in
  try
    let total = Bitio.Reader.read_bits r 32 in
    let out = Buffer.create total in
    (* Decoder dictionary: code -> string. *)
    let dict = Hashtbl.create 4096 in
    let next = ref 256 and width = ref start_width in
    let reset () =
      Hashtbl.reset dict;
      next := 256;
      width := start_width
    in
    let lookup code =
      if code < 256 then String.make 1 (Char.chr code)
      else
        match Hashtbl.find_opt dict code with
        | Some s -> s
        | None -> invalid_arg "Lzw.decompress: undefined code"
    in
    let prev = ref "" in
    while Buffer.length out < total do
      let code = Bitio.Reader.read_bits r !width in
      let entry =
        if code < !next && (code < 256 || Hashtbl.mem dict code) then lookup code
        else if code = !next && !prev <> "" then
          (* KwKwK case: the code being defined right now. *)
          !prev ^ String.make 1 !prev.[0]
        else invalid_arg "Lzw.decompress: invalid code"
      in
      Buffer.add_string out entry;
      if !prev <> "" then begin
        Hashtbl.add dict !next (!prev ^ String.make 1 entry.[0]);
        incr next;
        if !next + 1 > 1 lsl !width && !width < max_width then incr width;
        if !next >= dict_limit - 1 then begin
          reset ();
          prev := "";
          (* continue with empty prev: next code starts a fresh phrase *)
        end
        else prev := entry
      end
      else prev := entry
    done;
    Buffer.contents out
  with Bitio.Reader.End_of_input -> invalid_arg "Lzw.decompress: truncated stream"
