(** Unified compressor interface.

    The normalized compression distance (Sec. IV-C) treats the compressor as
    a parameter [C].  The paper does not name its compressor; LZ77 is the
    default here (same family as the zlib/gzip coders normally used for NCD)
    and LZW / Huffman are kept for the ablation benchmark. *)

type algorithm = Lz77 | Lzw | Huffman

val all : algorithm list
val name : algorithm -> string
val of_name : string -> algorithm option

val compress : algorithm -> string -> string
val decompress : algorithm -> string -> string

val length_bits : algorithm -> string -> int
(** [length_bits algo s] is [C(s)] in bits — the quantity fed to the NCD
    formula.  Bits rather than bytes: packets are short and byte rounding
    would quantize the distance visibly. *)

module Cache : sig
  (** Memoizes [C(x)] per input string.  The clustering stage evaluates
      C(x), C(y) and C(xy) for every pair in an NxN matrix; caching the
      singleton lengths removes half the work. *)

  type t

  val create : algorithm -> t
  val algorithm : t -> algorithm
  val length_bits : t -> string -> int
  val ncd : t -> string -> string -> float
  (** [ncd t x y] is [(C(xy) - min(C(x),C(y))) / max(C(x),C(y))], clamped to
      [\[0, 1\]]; by convention 0 when both strings are empty.  The
      concatenation is formed in canonical (lexicographic) order so the
      distance is exactly symmetric. *)

  val stats : t -> int * int
  (** (hits, misses) — exposed for tests and the benchmark report. *)
end
