(** Order-0 canonical Huffman coding.

    Included as the weakest compressor in the NCD ablation: a memoryless
    coder cannot see the shared structure between two concatenated packets,
    so NCD built on it degrades — the benchmark quantifies by how much.
    The stream stores a 32-bit original length, 256 five-bit code lengths,
    then the payload bits. *)

val code_lengths : string -> int array
(** Per-byte canonical code lengths (0 for absent symbols), capped at 31. *)

val compress : string -> string
val decompress : string -> string
(** @raise Invalid_argument on a corrupt stream. *)

val compressed_length_bits : string -> int
