type algorithm = Lz77 | Lzw | Huffman

let all = [ Lz77; Lzw; Huffman ]

let name = function Lz77 -> "lz77" | Lzw -> "lzw" | Huffman -> "huffman"

let of_name = function
  | "lz77" -> Some Lz77
  | "lzw" -> Some Lzw
  | "huffman" -> Some Huffman
  | _ -> None

let compress = function
  | Lz77 -> Lz77.compress
  | Lzw -> Lzw.compress
  | Huffman -> Huffman.compress

let decompress = function
  | Lz77 -> Lz77.decompress
  | Lzw -> Lzw.decompress
  | Huffman -> Huffman.decompress

let length_bits = function
  | Lz77 -> Lz77.compressed_length_bits
  | Lzw -> Lzw.compressed_length_bits
  | Huffman -> Huffman.compressed_length_bits

let algo_length_bits = length_bits

module Cache = struct
  type t = {
    algo : algorithm;
    table : (string, int) Hashtbl.t;
    mutable hits : int;
    mutable misses : int;
  }

  let create algo = { algo; table = Hashtbl.create 1024; hits = 0; misses = 0 }
  let algorithm t = t.algo

  let length_bits t s =
    match Hashtbl.find_opt t.table s with
    | Some v ->
      t.hits <- t.hits + 1;
      v
    | None ->
      t.misses <- t.misses + 1;
      let v = algo_length_bits t.algo s in
      Hashtbl.add t.table s v;
      v

  let ncd t x y =
    if String.length x = 0 && String.length y = 0 then 0.
    else begin
      let cx = length_bits t x and cy = length_bits t y in
      (* C(xy) and C(yx) differ slightly; canonical ordering keeps the
         distance exactly symmetric.  The pair length is not cached — it is
         pair-specific. *)
      let x, y = if String.compare x y <= 0 then (x, y) else (y, x) in
      let cxy = algo_length_bits t.algo (x ^ y) in
      let lo = min cx cy and hi = max cx cy in
      let d = float_of_int (cxy - lo) /. float_of_int hi in
      Float.min 1. (Float.max 0. d)
    end

  let stats t = (t.hits, t.misses)
end
