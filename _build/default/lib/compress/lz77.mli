(** LZ77 with a hash-chain match finder — the workhorse compressor behind the
    normalized compression distance (Sec. IV-C).  The format is a simple
    bit-packed token stream (not DEFLATE-compatible), chosen so that the
    compressed length reflects repeated structure the same way zlib would:

    - header: original length as a 32-bit little-endian bit field;
    - literal token: a [0] bit then 8 bits of the byte;
    - match token: a [1] bit, 15 bits of backwards distance (1-based) and
      8 bits of [length - min_match].

    Window 32 KiB, match lengths 3..258 (as in DEFLATE). *)

val min_match : int
val max_match : int
val window_size : int

val compress : string -> string
val decompress : string -> string
(** @raise Invalid_argument on a corrupt stream. *)

val compressed_length_bits : string -> int
(** Exact output size in bits, without materializing the padded byte
    string. *)
