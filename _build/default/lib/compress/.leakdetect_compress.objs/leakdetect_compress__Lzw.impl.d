lib/compress/lzw.ml: Bitio Buffer Char Hashtbl List String
