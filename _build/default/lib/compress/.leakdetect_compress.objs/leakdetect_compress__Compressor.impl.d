lib/compress/compressor.ml: Float Hashtbl Huffman Lz77 Lzw String
