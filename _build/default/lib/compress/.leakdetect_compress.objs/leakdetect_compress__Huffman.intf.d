lib/compress/huffman.mli:
