lib/compress/lz77.ml: Array Bitio Buffer Char List String
