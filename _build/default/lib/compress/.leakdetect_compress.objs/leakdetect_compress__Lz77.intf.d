lib/compress/lz77.mli:
