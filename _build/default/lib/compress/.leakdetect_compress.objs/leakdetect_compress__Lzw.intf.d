lib/compress/lzw.mli:
