lib/compress/bitio.ml: Buffer Char String
