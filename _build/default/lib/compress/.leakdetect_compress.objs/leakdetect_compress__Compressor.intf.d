lib/compress/compressor.mli:
