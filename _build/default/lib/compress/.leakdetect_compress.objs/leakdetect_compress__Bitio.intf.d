lib/compress/bitio.mli:
