(** Hamsa-style greedy signature generation (Li et al., S&P 2006 — cited by
    the paper as [30] among the probabilistic approaches it considers
    adopting).

    Hamsa builds a multiset signature greedily: starting from the candidate
    token pool, repeatedly add the token that maximizes coverage of the
    suspicious pool while keeping the false-positive rate on a benign pool
    under a bound that tightens with each added token ([u(k) = u0 * ur^k]).
    The resulting token set matches a packet when {e all} selected tokens
    occur (conjunction semantics), so it is directly comparable with the
    paper's cluster signatures.

    This implementation generates one such signature per iteration against
    the still-uncovered suspicious pool, until coverage stops improving —
    Hamsa's outer loop for polymorphic mixes. *)

type config = {
  u0 : float;  (** Initial benign false-positive bound (default 0.04). *)
  ur : float;  (** Per-token tightening factor (default 0.5). *)
  max_tokens : int;  (** Per-signature token budget (default 8). *)
  max_signatures : int;  (** Outer-loop budget (default 32). *)
  min_coverage : int;  (** Stop when a signature covers fewer packets. *)
}

val default : config

val generate :
  ?config:config ->
  tokens:string list ->
  suspicious:Leakdetect_http.Packet.t array ->
  benign:Leakdetect_http.Packet.t array ->
  unit ->
  Leakdetect_core.Signature.t list
(** Greedy signature set over the candidate [tokens].  Signature ids are
    assigned in generation order. *)

val evaluate :
  ?config:config ->
  rng:Leakdetect_util.Prng.t ->
  n:int ->
  ?benign_train:int ->
  suspicious:Leakdetect_http.Packet.t array ->
  normal:Leakdetect_http.Packet.t array ->
  unit ->
  Leakdetect_core.Metrics.t
(** End-to-end comparator: sample N suspicious packets, cluster them with
    the paper's pipeline to obtain candidate tokens, run Hamsa's greedy
    selection against a benign sample, evaluate with the paper's metrics. *)
