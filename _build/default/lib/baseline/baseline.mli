(** Baseline detectors the benchmark compares against the paper's pipeline.

    - {!exact}: the sampled packets themselves are the signature set; a
      packet is detected only if its content equals a sample byte-for-byte.
      No generalization at all — the floor any clustering method must beat.
    - {!sample_substring}: each sampled packet's whole content becomes a
      one-token signature matched by substring.  Mild generalization
      (prefix/suffix noise tolerated), no clustering.
    - {!random_cluster}: the paper's token-extraction and matching, but over
      a uniformly random partition of the sample instead of the hierarchical
      clustering — isolates the contribution of the distance function.

    Each returns the evaluation {!Leakdetect_core.Metrics.t} computed with
    the paper's formulas, so rows are directly comparable. *)

val exact :
  sample:Leakdetect_http.Packet.t array ->
  suspicious:Leakdetect_http.Packet.t array ->
  normal:Leakdetect_http.Packet.t array ->
  Leakdetect_core.Metrics.t

val sample_substring :
  sample:Leakdetect_http.Packet.t array ->
  suspicious:Leakdetect_http.Packet.t array ->
  normal:Leakdetect_http.Packet.t array ->
  Leakdetect_core.Metrics.t

val signatures_of_partition :
  ?config:Leakdetect_core.Siggen.config ->
  Leakdetect_http.Packet.t list list ->
  Leakdetect_core.Signature.t list
(** Token extraction + degeneracy filtering over an {e arbitrary} partition
    of packets — the signature half of the paper's pipeline without its
    clustering half.  Used to plug alternative clusterers (k-medoids,
    DBSCAN, random) into the same evaluation. *)

val partition_metrics :
  ?config:Leakdetect_core.Siggen.config ->
  n:int ->
  clusters:Leakdetect_http.Packet.t list list ->
  suspicious:Leakdetect_http.Packet.t array ->
  normal:Leakdetect_http.Packet.t array ->
  unit ->
  Leakdetect_core.Metrics.t
(** Evaluate {!signatures_of_partition} with the paper's metrics. *)

val random_cluster :
  rng:Leakdetect_util.Prng.t ->
  ?n_clusters:int ->
  ?config:Leakdetect_core.Siggen.config ->
  sample:Leakdetect_http.Packet.t array ->
  suspicious:Leakdetect_http.Packet.t array ->
  normal:Leakdetect_http.Packet.t array ->
  unit ->
  Leakdetect_core.Metrics.t
(** [n_clusters] defaults to [length sample / 8], matching the cluster
    granularity the hierarchical cut typically produces. *)
