module Packet = Leakdetect_http.Packet
module Metrics = Leakdetect_core.Metrics
module Signature = Leakdetect_core.Signature
module Detector = Leakdetect_core.Detector
module Tokens = Leakdetect_text.Tokens

let metrics_of ~n ~suspicious ~normal ~detect =
  let count arr = Array.fold_left (fun acc p -> if detect p then acc + 1 else acc) 0 arr in
  Metrics.compute
    {
      Metrics.n;
      sensitive_total = Array.length suspicious;
      sensitive_detected = count suspicious;
      normal_total = Array.length normal;
      normal_detected = count normal;
    }

let exact ~sample ~suspicious ~normal =
  let known = Hashtbl.create (Array.length sample) in
  Array.iter (fun p -> Hashtbl.replace known (Packet.content_string p) ()) sample;
  metrics_of ~n:(Array.length sample) ~suspicious ~normal ~detect:(fun p ->
      Hashtbl.mem known (Packet.content_string p))

let sample_substring ~sample ~suspicious ~normal =
  let signatures =
    Array.to_list sample
    |> List.mapi (fun i p ->
           Signature.make ~id:i ~mode:Signature.Conjunction ~cluster_size:1
             [ Packet.content_string p ])
  in
  let detector = Detector.create signatures in
  metrics_of ~n:(Array.length sample) ~suspicious ~normal
    ~detect:(Detector.detects detector)

let signatures_of_partition ?(config = Leakdetect_core.Siggen.default) clusters =
  let next_id = ref 0 in
  List.filter_map
    (fun members ->
      match members with
      | [] -> None
      | members ->
        let contents = List.map Packet.content_string members in
        (match
           Tokens.extract ~min_len:config.Leakdetect_core.Siggen.min_token_len contents
         with
        | [] -> None
        | tokens ->
          let candidate =
            Signature.make ~id:!next_id ~mode:config.Leakdetect_core.Siggen.mode
              ~cluster_size:(List.length members) tokens
          in
          if Signature.specificity candidate < config.Leakdetect_core.Siggen.min_specificity
          then None
          else begin
            incr next_id;
            Some candidate
          end))
    clusters

let partition_metrics ?(config = Leakdetect_core.Siggen.default) ~n ~clusters
    ~suspicious ~normal () =
  let detector = Detector.create (signatures_of_partition ~config clusters) in
  metrics_of ~n ~suspicious ~normal ~detect:(Detector.detects detector)

let random_cluster ~rng ?n_clusters ?(config = Leakdetect_core.Siggen.default)
    ~sample ~suspicious ~normal () =
  let n = Array.length sample in
  let k = match n_clusters with Some k -> max 1 k | None -> max 1 (n / 8) in
  (* Uniform random assignment of sample packets to k buckets. *)
  let buckets = Array.make k [] in
  Array.iter
    (fun p ->
      let b = Leakdetect_util.Prng.int rng k in
      buckets.(b) <- p :: buckets.(b))
    sample;
  partition_metrics ~config ~n ~clusters:(Array.to_list buckets) ~suspicious ~normal ()
