lib/baseline/baseline.ml: Array Hashtbl Leakdetect_core Leakdetect_http Leakdetect_text Leakdetect_util List
