lib/baseline/hamsa.ml: Array Bytes Leakdetect_core Leakdetect_http Leakdetect_text Leakdetect_util List Seq
