lib/baseline/hamsa.mli: Leakdetect_core Leakdetect_http Leakdetect_util
