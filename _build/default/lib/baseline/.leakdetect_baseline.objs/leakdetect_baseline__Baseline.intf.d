lib/baseline/baseline.mli: Leakdetect_core Leakdetect_http Leakdetect_util
