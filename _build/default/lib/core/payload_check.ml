module Search = Leakdetect_text.Search
module Packet = Leakdetect_http.Packet

type t = {
  needles : (Sensitive.kind * string) list;
  compiled : (Sensitive.kind * Search.compiled) list;
}

let create needles =
  List.iter
    (fun (_, n) ->
      if n = "" then invalid_arg "Payload_check.create: empty needle")
    needles;
  { needles; compiled = List.map (fun (k, n) -> (k, Search.compile n)) needles }

let needles t = t.needles

let scan t packet =
  let content = Packet.content_string packet in
  List.fold_left
    (fun acc (kind, pat) ->
      if Search.matches pat content && not (List.exists (Sensitive.equal kind) acc)
      then kind :: acc
      else acc)
    [] t.compiled
  |> List.sort Sensitive.compare

let is_sensitive t packet =
  let content = Packet.content_string packet in
  List.exists (fun (_, pat) -> Search.matches pat content) t.compiled

let split t packets =
  let suspicious = ref [] and normal = ref [] in
  Array.iter
    (fun p ->
      if is_sensitive t p then suspicious := p :: !suspicious
      else normal := p :: !normal)
    packets;
  (Array.of_list (List.rev !suspicious), Array.of_list (List.rev !normal))
