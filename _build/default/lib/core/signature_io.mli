(** Signature-set persistence.

    The Figure 3 architecture separates the generation server from the
    on-device application, which periodically fetches the signature set;
    this module defines the interchange format.  Line-oriented:

      id TAB mode TAB cluster_size TAB token1 TAB token2 ...

    with backslash escaping of tab/newline/backslash inside tokens. *)

val to_line : Signature.t -> string
val of_line : string -> (Signature.t, string) result

val save : string -> Signature.t list -> unit
val load : string -> (Signature.t list, string) result
