(** The detection engine: applies a generated signature set to packets.
    This is what the paper's on-device information-flow-control application
    runs against intercepted traffic (Fig. 3b). *)

type t

val create : Signature.t list -> t
val signatures : t -> Signature.t list
val signature_count : t -> int

val first_match : t -> Leakdetect_http.Packet.t -> Signature.t option
(** The first signature (in id order) matching the packet. *)

val all_matches : t -> Leakdetect_http.Packet.t -> Signature.t list

val detects : t -> Leakdetect_http.Packet.t -> bool

val count_detected : t -> Leakdetect_http.Packet.t array -> int

val detect_bitmap : t -> Leakdetect_http.Packet.t array -> bool array
(** Per-packet detection flags, aligned with the input array. *)
