(** The sensitive-information taxonomy of the paper (Table III): the four
    unique device identifiers, their MD5/SHA1 hex digests as transmitted by
    advertisement modules, and the carrier name. *)

type kind =
  | Android_id
  | Android_id_md5
  | Android_id_sha1
  | Carrier
  | Imei
  | Imei_md5
  | Imei_sha1
  | Imsi
  | Sim_serial

val all : kind list
(** In Table III row order. *)

val to_string : kind -> string
(** Stable machine-readable name, used in trace labels. *)

val of_string : string -> kind option

val paper_name : kind -> string
(** The row label as printed in Table III (e.g. ["ANDROID ID MD5"]). *)

val compare : kind -> kind -> int
val equal : kind -> kind -> bool

module Set : Set.S with type elt = kind
