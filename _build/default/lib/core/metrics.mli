(** The paper's evaluation measures, exactly as defined in Sec. V-B.

    With [n] the signature-generation sample size, [S] the number of
    sensitive packets in the whole dataset, [B] the number of non-sensitive
    packets, [dS] the number of detected sensitive packets and [dB] the
    number of detected non-sensitive packets:

      TP = (dS - n) / (S - n)
      FN = (S - dS) / (S - n)
      FP = dB / (B - n)

    The [- n] terms discount the sampled packets, which signatures match by
    construction.  (The paper subtracts [n] in the FP denominator as well;
    we follow it literally.)  TP + FN = 1 by construction; both are reported
    because the paper plots both. *)

type counts = {
  n : int;  (** Sample size used for generation. *)
  sensitive_total : int;
  sensitive_detected : int;
  normal_total : int;
  normal_detected : int;
}

type t = {
  counts : counts;
  true_positive : float;
  false_negative : float;
  false_positive : float;
}

val compute : counts -> t
(** @raise Invalid_argument when totals are inconsistent (detected counts
    exceeding totals, or [n] larger than the sensitive total). *)

val pp : Format.formatter -> t -> unit

val to_row : t -> string list
(** [N; TP%; FN%; FP%] formatted for table output. *)
