type counts = {
  n : int;
  sensitive_total : int;
  sensitive_detected : int;
  normal_total : int;
  normal_detected : int;
}

type t = {
  counts : counts;
  true_positive : float;
  false_negative : float;
  false_positive : float;
}

let compute counts =
  let { n; sensitive_total; sensitive_detected; normal_total; normal_detected } =
    counts
  in
  if
    n < 0 || sensitive_detected < 0 || normal_detected < 0
    || sensitive_detected > sensitive_total
    || normal_detected > normal_total
    || n > sensitive_total
  then invalid_arg "Metrics.compute: inconsistent counts";
  let ratio num den = if den = 0 then 0. else float_of_int num /. float_of_int den in
  {
    counts;
    true_positive = ratio (sensitive_detected - n) (sensitive_total - n);
    false_negative = ratio (sensitive_total - sensitive_detected) (sensitive_total - n);
    false_positive = ratio normal_detected (normal_total - n);
  }

let pp ppf t =
  Format.fprintf ppf "N=%d TP=%.1f%% FN=%.1f%% FP=%.2f%%" t.counts.n
    (100. *. t.true_positive) (100. *. t.false_negative)
    (100. *. t.false_positive)

let to_row t =
  [
    string_of_int t.counts.n;
    Printf.sprintf "%.1f" (100. *. t.true_positive);
    Printf.sprintf "%.1f" (100. *. t.false_negative);
    Printf.sprintf "%.2f" (100. *. t.false_positive);
  ]
