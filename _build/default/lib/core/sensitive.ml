type kind =
  | Android_id
  | Android_id_md5
  | Android_id_sha1
  | Carrier
  | Imei
  | Imei_md5
  | Imei_sha1
  | Imsi
  | Sim_serial

let all =
  [ Android_id; Android_id_md5; Android_id_sha1; Carrier; Imei; Imei_md5;
    Imei_sha1; Imsi; Sim_serial ]

let to_string = function
  | Android_id -> "android_id"
  | Android_id_md5 -> "android_id_md5"
  | Android_id_sha1 -> "android_id_sha1"
  | Carrier -> "carrier"
  | Imei -> "imei"
  | Imei_md5 -> "imei_md5"
  | Imei_sha1 -> "imei_sha1"
  | Imsi -> "imsi"
  | Sim_serial -> "sim_serial"

let of_string = function
  | "android_id" -> Some Android_id
  | "android_id_md5" -> Some Android_id_md5
  | "android_id_sha1" -> Some Android_id_sha1
  | "carrier" -> Some Carrier
  | "imei" -> Some Imei
  | "imei_md5" -> Some Imei_md5
  | "imei_sha1" -> Some Imei_sha1
  | "imsi" -> Some Imsi
  | "sim_serial" -> Some Sim_serial
  | _ -> None

let paper_name = function
  | Android_id -> "ANDROID ID"
  | Android_id_md5 -> "ANDROID ID MD5"
  | Android_id_sha1 -> "ANDROID ID SHA1"
  | Carrier -> "CARRIER"
  | Imei -> "IMEI (Device ID)"
  | Imei_md5 -> "IMEI MD5"
  | Imei_sha1 -> "IMEI SHA1"
  | Imsi -> "IMSI (Subscriber ID)"
  | Sim_serial -> "SIM Serial ID"

let rank = function
  | Android_id -> 0
  | Android_id_md5 -> 1
  | Android_id_sha1 -> 2
  | Carrier -> 3
  | Imei -> 4
  | Imei_md5 -> 5
  | Imei_sha1 -> 6
  | Imsi -> 7
  | Sim_serial -> 8

let compare a b = Int.compare (rank a) (rank b)
let equal a b = rank a = rank b

module Set = Set.Make (struct
  type t = kind

  let compare = compare
end)
