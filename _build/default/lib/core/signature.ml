module Search = Leakdetect_text.Search
module Tokens = Leakdetect_text.Tokens
module Packet = Leakdetect_http.Packet

type mode = Conjunction | Ordered

type t = { id : int; tokens : string list; mode : mode; cluster_size : int }

let make ~id ~mode ~cluster_size tokens =
  if tokens = [] then invalid_arg "Signature.make: no tokens";
  if List.exists (fun t -> t = "") tokens then
    invalid_arg "Signature.make: empty token";
  { id; tokens; mode; cluster_size }

type compiled = { sig_ : t; ordered : Search.compiled list; by_len : Search.compiled list }

let compile sig_ =
  let ordered = List.map Search.compile sig_.tokens in
  (* For conjunction matching, test the longest (most selective) token
     first: almost every non-matching packet is rejected on that probe. *)
  let by_len =
    List.sort
      (fun a b ->
        compare
          (String.length (Search.compiled_needle b))
          (String.length (Search.compiled_needle a)))
      ordered
  in
  { sig_; ordered; by_len }

let signature c = c.sig_

let matches_content c content =
  match c.sig_.mode with
  | Conjunction -> List.for_all (fun pat -> Search.matches pat content) c.by_len
  | Ordered ->
    let rec loop from = function
      | [] -> true
      | pat :: rest -> (
        match Search.find pat ~from content with
        | None -> false
        | Some i -> loop (i + String.length (Search.compiled_needle pat)) rest)
    in
    loop 0 c.ordered

let matches c packet = matches_content c (Packet.content_string packet)

(* Generic HTTP scaffolding: any token that is a substring of one of these
   fragments matches sensitive and benign packets alike. *)
let boilerplate_corpus =
  [
    "GET /"; "POST /"; " HTTP/1.1"; " HTTP/1.0"; "http://"; "https://";
    "Content-Type: application/x-www-form-urlencoded"; "Cookie: ";
    "?=&;,. /:_-"; "id="; "=1&"; "=0&"; "json"; "&v="; "&t=";
  ]

let is_boilerplate_token token =
  (* Tokens extracted from flattened packet contents carry the '\n' field
     separators; strip them before comparing against the corpus. *)
  let stripped = String.trim token in
  stripped = ""
  || List.exists (fun frag -> Search.contains ~needle:stripped frag) boilerplate_corpus

let specificity t =
  List.fold_left
    (fun acc tok -> if is_boilerplate_token tok then acc else acc + String.length tok)
    0 t.tokens

let pp ppf t =
  Format.fprintf ppf "@[<hov 2>#%d (%s, %d pkts):@ %a@]" t.id
    (match t.mode with Conjunction -> "conj" | Ordered -> "ord")
    t.cluster_size
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf " ++@ ")
       (fun ppf tok -> Format.fprintf ppf "%S" tok))
    t.tokens
