module Packet = Leakdetect_http.Packet
module Aho_corasick = Leakdetect_text.Aho_corasick

(* One automaton over the distinct tokens of every signature: detection is
   a single pass per packet followed by per-signature set membership.
   Ordered signatures use the set test as a prefilter, then verify order
   with the compiled KMP matcher. *)

type entry = {
  signature : Signature.t;
  compiled : Signature.compiled;
  token_ids : int array;  (* indices into the automaton's pattern list *)
  ordered : bool;
}

type t = {
  signatures : Signature.t list;
  entries : entry array;
  automaton : Aho_corasick.t option;  (* None when there are no signatures *)
}

let create signatures =
  let token_index = Hashtbl.create 64 in
  let patterns = ref [] and n_patterns = ref 0 in
  let intern token =
    match Hashtbl.find_opt token_index token with
    | Some id -> id
    | None ->
      let id = !n_patterns in
      Hashtbl.add token_index token id;
      patterns := token :: !patterns;
      incr n_patterns;
      id
  in
  let entries =
    List.map
      (fun s ->
        {
          signature = s;
          compiled = Signature.compile s;
          token_ids = Array.of_list (List.map intern s.Signature.tokens);
          ordered = (s.Signature.mode = Signature.Ordered);
        })
      signatures
    |> Array.of_list
  in
  let automaton =
    if !n_patterns = 0 then None
    else Some (Aho_corasick.build (List.rev !patterns))
  in
  { signatures; entries; automaton }

let signatures t = t.signatures
let signature_count t = Array.length t.entries

let entry_matches entry matched content =
  Array.for_all (fun id -> matched.(id)) entry.token_ids
  && ((not entry.ordered) || Signature.matches_content entry.compiled content)

let first_match_content t content =
  match t.automaton with
  | None -> None
  | Some automaton ->
    let matched = Aho_corasick.matched_set automaton content in
    let n = Array.length t.entries in
    let rec loop i =
      if i = n then None
      else if entry_matches t.entries.(i) matched content then
        Some t.entries.(i).signature
      else loop (i + 1)
    in
    loop 0

let first_match t packet = first_match_content t (Packet.content_string packet)

let all_matches t packet =
  match t.automaton with
  | None -> []
  | Some automaton ->
    let content = Packet.content_string packet in
    let matched = Aho_corasick.matched_set automaton content in
    Array.to_list t.entries
    |> List.filter_map (fun e ->
           if entry_matches e matched content then Some e.signature else None)

let detects t packet = Option.is_some (first_match t packet)

let detect_bitmap t packets =
  Array.map (fun p -> Option.is_some (first_match t p)) packets

let count_detected t packets =
  Array.fold_left (fun acc p -> if detects t p then acc + 1 else acc) 0 packets
