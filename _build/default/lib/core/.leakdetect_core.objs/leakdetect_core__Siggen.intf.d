lib/core/siggen.mli: Distance Leakdetect_cluster Leakdetect_http Signature
