lib/core/signature.ml: Format Leakdetect_http Leakdetect_text List String
