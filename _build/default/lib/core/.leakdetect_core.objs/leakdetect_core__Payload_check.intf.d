lib/core/payload_check.mli: Leakdetect_http Sensitive
