lib/core/sensitive.mli: Set
