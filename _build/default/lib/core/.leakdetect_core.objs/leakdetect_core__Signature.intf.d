lib/core/signature.mli: Format Leakdetect_http
