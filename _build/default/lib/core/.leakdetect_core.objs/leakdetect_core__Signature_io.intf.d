lib/core/signature_io.mli: Signature
