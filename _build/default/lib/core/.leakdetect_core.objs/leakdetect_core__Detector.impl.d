lib/core/detector.ml: Array Hashtbl Leakdetect_http Leakdetect_text List Option Signature
