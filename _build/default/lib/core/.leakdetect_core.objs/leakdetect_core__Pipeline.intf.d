lib/core/pipeline.mli: Distance Leakdetect_compress Leakdetect_http Leakdetect_net Leakdetect_util Metrics Siggen Signature
