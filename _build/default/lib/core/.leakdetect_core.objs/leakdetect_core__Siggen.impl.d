lib/core/siggen.ml: Array Distance Hashtbl Leakdetect_cluster Leakdetect_http Leakdetect_text List Logs Signature
