lib/core/signature_io.ml: Buffer Fun List Printf Signature String
