lib/core/detector.mli: Leakdetect_http Signature
