lib/core/bayes.ml: Array Distance Float Hashtbl Leakdetect_http Leakdetect_text Leakdetect_util List Metrics Pipeline Siggen Signature
