lib/core/sensitive.ml: Int Set
