lib/core/bayes.mli: Leakdetect_http Leakdetect_util Metrics Pipeline
