lib/core/payload_check.ml: Array Leakdetect_http Leakdetect_text List Sensitive
