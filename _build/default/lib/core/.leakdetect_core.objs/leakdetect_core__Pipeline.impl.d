lib/core/pipeline.ml: Array Detector Distance Leakdetect_compress Leakdetect_net Leakdetect_util List Logs Metrics Siggen Signature
