(** Conjunction signatures (Sec. IV-E).

    A signature is the set of invariant tokens extracted from one cluster of
    suspicious packets; a packet matches when every token occurs in its
    content ([`Conjunction], the paper's semantics, after Polygraph) or when
    the tokens occur in order ([`Ordered], the stricter Polygraph variant
    kept for comparison).

    The paper warns (Sec. VI) that careless generation yields signatures
    such as ["GET *"] or ["* HTTP/1.1"] that match most packets.  The
    {!specificity} measure ignores tokens made of protocol boilerplate;
    generation rejects signatures below a specificity floor. *)

type mode = Conjunction | Ordered

type t = {
  id : int;
  tokens : string list;  (** Non-empty, in extraction order. *)
  mode : mode;
  cluster_size : int;  (** Packets in the generating cluster. *)
}

val make : id:int -> mode:mode -> cluster_size:int -> string list -> t
(** @raise Invalid_argument on an empty token list or an empty token. *)

type compiled

val compile : t -> compiled
val signature : compiled -> t

val matches : compiled -> Leakdetect_http.Packet.t -> bool
val matches_content : compiled -> string -> bool
(** Match against a pre-flattened {!Leakdetect_http.Packet.content_string}. *)

val is_boilerplate_token : string -> bool
(** True for substrings of generic HTTP scaffolding ("GET ", " HTTP/1.1",
    "Cookie: ", separators...) that carry no leak-specific information. *)

val specificity : t -> int
(** Total length of the non-boilerplate tokens. *)

val pp : Format.formatter -> t -> unit
