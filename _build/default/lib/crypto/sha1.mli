(** SHA-1 (RFC 3174), implemented from scratch.

    Table III of the paper lists SHA1-hashed Android IDs and IMEIs among the
    sensitive information observed on the wire; this module lets the payload
    check and the workload generator produce and recognize those digests.
    Verified against the RFC / FIPS-180 test vectors in the test suite. *)

val digest : string -> string
(** 20-byte raw digest. *)

val hex : string -> string
(** 40-character lowercase hex digest. *)
