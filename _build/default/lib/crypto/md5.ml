(* Straightforward RFC 1321 implementation over Int32. *)

let s_table =
  [| 7; 12; 17; 22; 7; 12; 17; 22; 7; 12; 17; 22; 7; 12; 17; 22;
     5; 9; 14; 20; 5; 9; 14; 20; 5; 9; 14; 20; 5; 9; 14; 20;
     4; 11; 16; 23; 4; 11; 16; 23; 4; 11; 16; 23; 4; 11; 16; 23;
     6; 10; 15; 21; 6; 10; 15; 21; 6; 10; 15; 21; 6; 10; 15; 21 |]

(* K.(i) = floor(2^32 * |sin(i+1)|), precomputed at startup to avoid a wall
   of literals; verified against the RFC values by the test suite. *)
let k_table =
  Array.init 64 (fun i ->
      (* Values reach 2^32-1, so truncate through Int64 to wrap into int32. *)
      Int64.to_int32
        (Int64.of_float (4294967296.0 *. Float.abs (sin (float_of_int (i + 1))))))

let rotl32 x n = Int32.logor (Int32.shift_left x n) (Int32.shift_right_logical x (32 - n))

let pad msg =
  let len = String.length msg in
  let bitlen = Int64.of_int (len * 8) in
  let padlen =
    let r = (len + 1) mod 64 in
    if r <= 56 then 56 - r else 120 - r
  in
  let buf = Buffer.create (len + padlen + 9) in
  Buffer.add_string buf msg;
  Buffer.add_char buf '\x80';
  Buffer.add_string buf (String.make padlen '\x00');
  for i = 0 to 7 do
    Buffer.add_char buf
      (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical bitlen (8 * i)) 0xFFL)))
  done;
  Buffer.contents buf

let word_le s off =
  let b i = Int32.of_int (Char.code s.[off + i]) in
  Int32.logor (b 0)
    (Int32.logor (Int32.shift_left (b 1) 8)
       (Int32.logor (Int32.shift_left (b 2) 16) (Int32.shift_left (b 3) 24)))

let digest msg =
  let data = pad msg in
  let a0 = ref 0x67452301l and b0 = ref 0xefcdab89l in
  let c0 = ref 0x98badcfel and d0 = ref 0x10325476l in
  let nblocks = String.length data / 64 in
  let m = Array.make 16 0l in
  for block = 0 to nblocks - 1 do
    for j = 0 to 15 do m.(j) <- word_le data ((block * 64) + (j * 4)) done;
    let a = ref !a0 and b = ref !b0 and c = ref !c0 and d = ref !d0 in
    for i = 0 to 63 do
      let f, g =
        if i < 16 then
          (Int32.logor (Int32.logand !b !c) (Int32.logand (Int32.lognot !b) !d), i)
        else if i < 32 then
          (Int32.logor (Int32.logand !d !b) (Int32.logand (Int32.lognot !d) !c),
           ((5 * i) + 1) mod 16)
        else if i < 48 then (Int32.logxor !b (Int32.logxor !c !d), ((3 * i) + 5) mod 16)
        else (Int32.logxor !c (Int32.logor !b (Int32.lognot !d)), (7 * i) mod 16)
      in
      let tmp = !d in
      d := !c;
      c := !b;
      let sum = Int32.add (Int32.add !a f) (Int32.add k_table.(i) m.(g)) in
      b := Int32.add !b (rotl32 sum s_table.(i));
      a := tmp
    done;
    a0 := Int32.add !a0 !a;
    b0 := Int32.add !b0 !b;
    c0 := Int32.add !c0 !c;
    d0 := Int32.add !d0 !d
  done;
  let out = Bytes.create 16 in
  let put off v =
    for i = 0 to 3 do
      Bytes.set out (off + i)
        (Char.chr (Int32.to_int (Int32.logand (Int32.shift_right_logical v (8 * i)) 0xFFl)))
    done
  in
  put 0 !a0;
  put 4 !b0;
  put 8 !c0;
  put 12 !d0;
  Bytes.unsafe_to_string out

let hex msg = Leakdetect_util.Hex.encode (digest msg)
