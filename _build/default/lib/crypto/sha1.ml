let rotl32 x n = Int32.logor (Int32.shift_left x n) (Int32.shift_right_logical x (32 - n))

let pad msg =
  let len = String.length msg in
  let bitlen = Int64.of_int (len * 8) in
  let padlen =
    let r = (len + 1) mod 64 in
    if r <= 56 then 56 - r else 120 - r
  in
  let buf = Buffer.create (len + padlen + 9) in
  Buffer.add_string buf msg;
  Buffer.add_char buf '\x80';
  Buffer.add_string buf (String.make padlen '\x00');
  (* Length appended big-endian, unlike MD5. *)
  for i = 7 downto 0 do
    Buffer.add_char buf
      (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical bitlen (8 * i)) 0xFFL)))
  done;
  Buffer.contents buf

let word_be s off =
  let b i = Int32.of_int (Char.code s.[off + i]) in
  Int32.logor (Int32.shift_left (b 0) 24)
    (Int32.logor (Int32.shift_left (b 1) 16)
       (Int32.logor (Int32.shift_left (b 2) 8) (b 3)))

let digest msg =
  let data = pad msg in
  let h0 = ref 0x67452301l and h1 = ref 0xEFCDAB89l and h2 = ref 0x98BADCFEl in
  let h3 = ref 0x10325476l and h4 = ref 0xC3D2E1F0l in
  let w = Array.make 80 0l in
  let nblocks = String.length data / 64 in
  for block = 0 to nblocks - 1 do
    for t = 0 to 15 do w.(t) <- word_be data ((block * 64) + (t * 4)) done;
    for t = 16 to 79 do
      w.(t) <-
        rotl32 (Int32.logxor (Int32.logxor w.(t - 3) w.(t - 8)) (Int32.logxor w.(t - 14) w.(t - 16))) 1
    done;
    let a = ref !h0 and b = ref !h1 and c = ref !h2 and d = ref !h3 and e = ref !h4 in
    for t = 0 to 79 do
      let f, k =
        if t < 20 then
          (Int32.logor (Int32.logand !b !c) (Int32.logand (Int32.lognot !b) !d), 0x5A827999l)
        else if t < 40 then (Int32.logxor !b (Int32.logxor !c !d), 0x6ED9EBA1l)
        else if t < 60 then
          (Int32.logor
             (Int32.logor (Int32.logand !b !c) (Int32.logand !b !d))
             (Int32.logand !c !d),
           0x8F1BBCDCl)
        else (Int32.logxor !b (Int32.logxor !c !d), 0xCA62C1D6l)
      in
      let tmp =
        Int32.add (Int32.add (rotl32 !a 5) f) (Int32.add !e (Int32.add k w.(t)))
      in
      e := !d;
      d := !c;
      c := rotl32 !b 30;
      b := !a;
      a := tmp
    done;
    h0 := Int32.add !h0 !a;
    h1 := Int32.add !h1 !b;
    h2 := Int32.add !h2 !c;
    h3 := Int32.add !h3 !d;
    h4 := Int32.add !h4 !e
  done;
  let out = Bytes.create 20 in
  let put off v =
    for i = 0 to 3 do
      Bytes.set out (off + i)
        (Char.chr (Int32.to_int (Int32.logand (Int32.shift_right_logical v (8 * (3 - i))) 0xFFl)))
    done
  in
  put 0 !h0;
  put 4 !h1;
  put 8 !h2;
  put 12 !h3;
  put 16 !h4;
  Bytes.unsafe_to_string out

let hex msg = Leakdetect_util.Hex.encode (digest msg)
