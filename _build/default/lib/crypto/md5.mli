(** MD5 (RFC 1321), implemented from scratch.

    Advertisement modules observed by the paper transmit MD5 hashes of device
    identifiers (Table III lists "ANDROID ID MD5" and "IMEI MD5" rows); the
    payload check must therefore recognize these digests on the wire.  The
    implementation is cross-checked against OCaml's stdlib [Digest] in the
    test suite. *)

val digest : string -> string
(** 16-byte raw digest. *)

val hex : string -> string
(** 32-character lowercase hex digest, the wire format ad modules use. *)
