(** Per-application transmission policy for the information-flow-control
    application (Fig. 3b).  The paper's goal is that a user can let an
    application's benign traffic through uninterrupted but be prompted when
    it is about to transmit sensitive information. *)

type action = Allow | Block | Prompt

val action_to_string : action -> string

type rule = {
  on_sensitive : action;  (** Applied when a signature matches. *)
  on_benign : action;  (** Applied otherwise; normally [Allow]. *)
}

val default_rule : rule
(** Prompt on sensitive, allow benign — the paper's intended user
    experience. *)

type t

val create : ?default:rule -> unit -> t
val set_rule : t -> app_id:int -> rule -> unit
val rule_for : t -> app_id:int -> rule
val remove_rule : t -> app_id:int -> unit
val app_ids : t -> int list
(** Apps with an explicit (non-default) rule. *)

val action_of_string : string -> action option

val save : t -> string -> unit
(** Persist the default rule and every per-app rule to a file (the device
    keeps its policy across reboots). *)

val load : string -> (t, string) result
