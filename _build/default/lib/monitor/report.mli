(** Audit reporting over the flow-control log — what the paper's user would
    review to decide per-application policy ("manage suspicious
    applications' network behavior in a fine grained manner"). *)

type app_summary = {
  app_id : int;
  packets : int;  (** Packets inspected for this app. *)
  flagged : int;  (** Packets that matched a signature. *)
  allowed : int;
  blocked : int;
  prompted : int;
  destinations : string list;  (** Distinct hosts of flagged packets. *)
  signature_ids : int list;  (** Distinct matching signatures. *)
}

val per_app : Flow_control.t -> app_summary list
(** One summary per application seen in the log, ordered by flagged count
    (most suspicious first), ties by app id. *)

val most_suspicious : ?limit:int -> Flow_control.t -> app_summary list

val render : ?limit:int -> Flow_control.t -> string
(** Plain-text table of {!most_suspicious} (default limit 20). *)
