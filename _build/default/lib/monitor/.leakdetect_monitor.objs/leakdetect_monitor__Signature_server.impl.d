lib/monitor/signature_server.ml: Leakdetect_core Leakdetect_http Leakdetect_net List Option Printf String
