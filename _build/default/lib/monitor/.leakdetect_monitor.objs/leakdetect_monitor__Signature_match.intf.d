lib/monitor/signature_match.mli: Format Leakdetect_core
