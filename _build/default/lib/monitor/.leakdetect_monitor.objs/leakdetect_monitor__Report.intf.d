lib/monitor/report.mli: Flow_control
