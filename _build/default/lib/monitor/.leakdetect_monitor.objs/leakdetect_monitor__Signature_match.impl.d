lib/monitor/signature_match.ml: Format Leakdetect_core List
