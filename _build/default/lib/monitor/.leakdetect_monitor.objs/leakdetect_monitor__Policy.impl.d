lib/monitor/policy.ml: Fun Hashtbl List Option Printf String
