lib/monitor/report.ml: Flow_control Int Leakdetect_http Leakdetect_util List Map Option Set Signature_match String
