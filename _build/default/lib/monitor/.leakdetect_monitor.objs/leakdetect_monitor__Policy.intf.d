lib/monitor/policy.mli:
