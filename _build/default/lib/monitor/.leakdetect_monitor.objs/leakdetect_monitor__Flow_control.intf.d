lib/monitor/flow_control.mli: Leakdetect_core Leakdetect_http Policy Signature_match
