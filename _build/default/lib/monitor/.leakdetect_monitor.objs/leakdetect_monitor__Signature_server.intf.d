lib/monitor/signature_server.mli: Leakdetect_core Leakdetect_http
