lib/monitor/flow_control.ml: Hashtbl Leakdetect_core Leakdetect_http List Option Policy Signature_match
