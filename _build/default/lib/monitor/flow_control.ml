module Detector = Leakdetect_core.Detector

type decision = Allowed | Blocked | Prompted of bool

let decision_to_string = function
  | Allowed -> "allowed"
  | Blocked -> "blocked"
  | Prompted true -> "prompted:sent"
  | Prompted false -> "prompted:stopped"

type event = {
  seq : int;
  app_id : int;
  packet : Leakdetect_http.Packet.t;
  matched : Signature_match.t option;
  decision : decision;
}

type t = {
  policy : Policy.t;
  prompt_budget : int option;
  on_prompt : app_id:int -> Leakdetect_http.Packet.t -> Signature_match.t -> bool;
  prompt_counts : (int, int) Hashtbl.t;
  last_answers : (int, bool) Hashtbl.t;
  mutable detector : Detector.t;
  mutable events : event list;  (* newest first *)
  mutable next_seq : int;
}

let deny_all ~app_id:_ _packet _match = false

let create ?(policy = Policy.create ()) ?prompt_budget ?(on_prompt = deny_all) signatures =
  {
    policy;
    prompt_budget;
    on_prompt;
    prompt_counts = Hashtbl.create 16;
    last_answers = Hashtbl.create 16;
    detector = Detector.create signatures;
    events = [];
    next_seq = 0;
  }

let prompts_for t ~app_id =
  Option.value ~default:0 (Hashtbl.find_opt t.prompt_counts app_id)

let update_signatures t signatures = t.detector <- Detector.create signatures

let process t ~app_id packet =
  let matched =
    Option.map Signature_match.of_signature (Detector.first_match t.detector packet)
  in
  let rule = Policy.rule_for t.policy ~app_id in
  let action =
    match matched with
    | Some _ -> rule.Policy.on_sensitive
    | None -> rule.Policy.on_benign
  in
  let decision =
    match (action, matched) with
    | Policy.Allow, _ -> Allowed
    | Policy.Block, _ -> Blocked
    | Policy.Prompt, Some m -> (
      let over_budget =
        match t.prompt_budget with
        | Some budget -> prompts_for t ~app_id >= budget
        | None -> false
      in
      if over_budget then
        (* Apply the user's sticky answer without interrupting again. *)
        match Hashtbl.find_opt t.last_answers app_id with
        | Some true -> Allowed
        | Some false | None -> Blocked
      else begin
        Hashtbl.replace t.prompt_counts app_id (prompts_for t ~app_id + 1);
        let answer = t.on_prompt ~app_id packet m in
        Hashtbl.replace t.last_answers app_id answer;
        Prompted answer
      end)
    | Policy.Prompt, None ->
      (* Prompting without a match gives the user nothing to judge;
         treat as allow. *)
      Allowed
  in
  t.events <- { seq = t.next_seq; app_id; packet; matched; decision } :: t.events;
  t.next_seq <- t.next_seq + 1;
  decision

let log t = List.rev t.events

let stats t =
  List.fold_left
    (fun (a, b, p) e ->
      match e.decision with
      | Allowed -> (a + 1, b, p)
      | Blocked -> (a, b + 1, p)
      | Prompted _ -> (a, b, p + 1))
    (0, 0, 0) t.events
