type t = { signature_id : int; tokens : string list; cluster_size : int }

let of_signature (s : Leakdetect_core.Signature.t) =
  {
    signature_id = s.Leakdetect_core.Signature.id;
    tokens = s.Leakdetect_core.Signature.tokens;
    cluster_size = s.Leakdetect_core.Signature.cluster_size;
  }

let pp ppf t =
  Format.fprintf ppf "signature #%d (%d tokens, cluster of %d)" t.signature_id
    (List.length t.tokens) t.cluster_size
