module Packet = Leakdetect_http.Packet

type app_summary = {
  app_id : int;
  packets : int;
  flagged : int;
  allowed : int;
  blocked : int;
  prompted : int;
  destinations : string list;
  signature_ids : int list;
}

module Int_map = Map.Make (Int)
module Str_set = Set.Make (String)
module Int_set = Set.Make (Int)

type acc = {
  a_packets : int;
  a_flagged : int;
  a_allowed : int;
  a_blocked : int;
  a_prompted : int;
  a_dests : Str_set.t;
  a_sigs : Int_set.t;
}

let empty_acc =
  { a_packets = 0; a_flagged = 0; a_allowed = 0; a_blocked = 0; a_prompted = 0;
    a_dests = Str_set.empty; a_sigs = Int_set.empty }

let per_app monitor =
  let table =
    List.fold_left
      (fun acc (e : Flow_control.event) ->
        let current = Option.value ~default:empty_acc (Int_map.find_opt e.Flow_control.app_id acc) in
        let current = { current with a_packets = current.a_packets + 1 } in
        let current =
          match e.Flow_control.decision with
          | Flow_control.Allowed -> { current with a_allowed = current.a_allowed + 1 }
          | Flow_control.Blocked -> { current with a_blocked = current.a_blocked + 1 }
          | Flow_control.Prompted _ -> { current with a_prompted = current.a_prompted + 1 }
        in
        let current =
          match e.Flow_control.matched with
          | None -> current
          | Some m ->
            {
              current with
              a_flagged = current.a_flagged + 1;
              a_dests =
                Str_set.add e.Flow_control.packet.Packet.dst.Packet.host current.a_dests;
              a_sigs = Int_set.add m.Signature_match.signature_id current.a_sigs;
            }
        in
        Int_map.add e.Flow_control.app_id current acc)
      Int_map.empty (Flow_control.log monitor)
  in
  Int_map.bindings table
  |> List.map (fun (app_id, a) ->
         {
           app_id;
           packets = a.a_packets;
           flagged = a.a_flagged;
           allowed = a.a_allowed;
           blocked = a.a_blocked;
           prompted = a.a_prompted;
           destinations = Str_set.elements a.a_dests;
           signature_ids = Int_set.elements a.a_sigs;
         })
  |> List.sort (fun x y ->
         match compare y.flagged x.flagged with
         | 0 -> compare x.app_id y.app_id
         | c -> c)

let most_suspicious ?(limit = 20) monitor =
  List.filteri (fun i _ -> i < limit) (per_app monitor)

let render ?limit monitor =
  let rows =
    List.map
      (fun s ->
        [
          string_of_int s.app_id;
          string_of_int s.packets;
          string_of_int s.flagged;
          string_of_int s.prompted;
          string_of_int s.blocked;
          String.concat ", "
            (List.filteri (fun i _ -> i < 3) s.destinations
            @ if List.length s.destinations > 3 then [ "..." ] else []);
        ])
      (most_suspicious ?limit monitor)
  in
  Leakdetect_util.Table.render ~title:"Most suspicious applications"
    ~columns:
      [ ("app", Leakdetect_util.Table.Right); ("pkts", Leakdetect_util.Table.Right);
        ("flagged", Leakdetect_util.Table.Right); ("prompted", Leakdetect_util.Table.Right);
        ("blocked", Leakdetect_util.Table.Right); ("flagged destinations", Leakdetect_util.Table.Left) ]
    rows
