(** What the monitor knows about why a packet was flagged. *)

type t = {
  signature_id : int;
  tokens : string list;
  cluster_size : int;
}

val of_signature : Leakdetect_core.Signature.t -> t
val pp : Format.formatter -> t -> unit
