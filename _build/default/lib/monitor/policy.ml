type action = Allow | Block | Prompt

let action_to_string = function
  | Allow -> "allow"
  | Block -> "block"
  | Prompt -> "prompt"

type rule = { on_sensitive : action; on_benign : action }

let default_rule = { on_sensitive = Prompt; on_benign = Allow }

type t = { default : rule; rules : (int, rule) Hashtbl.t }

let create ?(default = default_rule) () = { default; rules = Hashtbl.create 16 }
let set_rule t ~app_id rule = Hashtbl.replace t.rules app_id rule
let rule_for t ~app_id = Option.value ~default:t.default (Hashtbl.find_opt t.rules app_id)
let remove_rule t ~app_id = Hashtbl.remove t.rules app_id

let app_ids t =
  Hashtbl.fold (fun id _ acc -> id :: acc) t.rules [] |> List.sort compare

let action_of_string = function
  | "allow" -> Some Allow
  | "block" -> Some Block
  | "prompt" -> Some Prompt
  | _ -> None

let rule_fields r = [ action_to_string r.on_sensitive; action_to_string r.on_benign ]

let save t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (String.concat "\t" ("default" :: rule_fields t.default));
      output_char oc '\n';
      List.iter
        (fun app_id ->
          let r = rule_for t ~app_id in
          output_string oc (String.concat "\t" (string_of_int app_id :: rule_fields r));
          output_char oc '\n')
        (app_ids t))

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let parse_rule s_act b_act =
        match (action_of_string s_act, action_of_string b_act) with
        | Some on_sensitive, Some on_benign -> Ok { on_sensitive; on_benign }
        | _ -> Error "bad action"
      in
      let rec loop lineno policy =
        match input_line ic with
        | exception End_of_file -> (
          match policy with
          | Some p -> Ok p
          | None -> Error "missing default rule line")
        | line -> (
          match (String.split_on_char '\t' line, policy) with
          | [ "default"; s_act; b_act ], None -> (
            match parse_rule s_act b_act with
            | Ok default -> loop (lineno + 1) (Some (create ~default ()))
            | Error e -> Error (Printf.sprintf "line %d: %s" lineno e))
          | [ "default"; _; _ ], Some _ ->
            Error (Printf.sprintf "line %d: duplicate default" lineno)
          | [ id_s; s_act; b_act ], Some p -> (
            match (int_of_string_opt id_s, parse_rule s_act b_act) with
            | Some app_id, Ok rule ->
              set_rule p ~app_id rule;
              loop (lineno + 1) policy
            | None, _ -> Error (Printf.sprintf "line %d: bad app id" lineno)
            | _, Error e -> Error (Printf.sprintf "line %d: %s" lineno e))
          | _, None -> Error (Printf.sprintf "line %d: expected default rule first" lineno)
          | _ -> Error (Printf.sprintf "line %d: expected 3 fields" lineno))
      in
      loop 1 None)
