(** The trace generator — the stand-in for the paper's proprietary corpus of
    1,188 free Japanese Google Play applications run manually on a handset
    (Sec. V-A).

    A dataset is fully determined by its seed.  The generator is calibrated
    against the paper's published marginals:
    - permission combinations exactly as Table I;
    - per-service application counts and per-application packet intensities
      from Table II;
    - sensitive-parameter pairings from Sec. III-B / Table III;
    - destinations-per-application from the Figure 2 summary statistics
      (7% one destination, 74% within 10, 90% within 16, mean 7.9, max 84),
      fit with a discretized lognormal (mu = 1.64, sigma = 0.9);
    - total trace size targeting the paper's 107,859 packets at scale 1.

    Ground-truth labels are assigned by scanning each generated packet with
    the payload check, so a label always agrees with what a detector could
    in principle observe on the wire. *)

type dataset = {
  seed : int;
  scale : float;
  device : Device.t;
  apps : App.t array;
  records : Leakdetect_http.Trace.record array;
  payload_check : Leakdetect_core.Payload_check.t;
}

val generate : ?seed:int -> ?scale:float -> ?n_apps:int -> unit -> dataset
(** [generate ()] builds the full-size dataset (seed 42, scale 1.0, 1,188
    apps).  [scale] multiplies per-application packet intensities — use
    [~scale:0.05] for fast tests.  [n_apps] truncates the population while
    keeping Table I proportions. *)

val packets : dataset -> Leakdetect_http.Packet.t array

val split : dataset -> Leakdetect_http.Packet.t array * Leakdetect_http.Packet.t array
(** [(suspicious, normal)] by ground-truth label. *)

val labels_of_record : Leakdetect_http.Trace.record -> Leakdetect_core.Sensitive.kind list

val sensitive_count : dataset -> int
