(** A simulated application: its permission combination, embedded
    advertisement/analytics modules, and its own backend destinations (the
    long tail of Figure 2). *)

type backend = {
  host : string;
  ip : Leakdetect_net.Ipv4.t;
  weight : float;  (** Relative share of the app's backend traffic. *)
}

type t = {
  id : int;
  package : string;
  permissions : Permissions.combo;
  modules : (Ad_module.family * string) list;
      (** Embedded module families, each with the sticky host this app's
          copy of the SDK talks to. *)
  backends : backend list;
  target_destinations : int;
      (** Destination-count draw from the Figure 2 fit; modules plus
          backends realize it. *)
  leaks_android_id : bool;
      (** The app reports the Android ID to its own backends (first-party
          leak), spreading sensitive traffic over long-tail destinations as
          Table III's destination counts show. *)
  leaks_imei : bool;  (** Same for the IMEI; requires READ_PHONE_STATE. *)
}

val destination_count : t -> int
(** Distinct destinations the app can touch: module hosts plus backends. *)

val render_backend_packet :
  Leakdetect_util.Prng.t -> Device.t -> t -> backend -> Leakdetect_http.Packet.t
(** A first-party request (API call, image fetch, feed poll); carries
    identifiers only when the app's leak flags say so. *)
