module Http = Leakdetect_http
module Domain = Leakdetect_net.Domain
module Sensitive = Leakdetect_core.Sensitive

module Str_map = Map.Make (String)
module Int_set = Set.Make (Int)
module Str_set = Set.Make (String)

type dest_row = { domain : string; packets : int; apps : int }

let table2 (ds : Workload.dataset) =
  let acc =
    Array.fold_left
      (fun acc (r : Http.Trace.record) ->
        let domain = Domain.registrable r.packet.Http.Packet.dst.Http.Packet.host in
        Str_map.update domain
          (function
            | None -> Some (1, Int_set.singleton r.app_id)
            | Some (p, apps) -> Some (p + 1, Int_set.add r.app_id apps))
          acc)
      Str_map.empty ds.records
  in
  Str_map.bindings acc
  |> List.map (fun (domain, (packets, apps)) ->
         { domain; packets; apps = Int_set.cardinal apps })
  |> List.sort (fun a b ->
         match compare b.apps a.apps with 0 -> compare b.packets a.packets | c -> c)

let table2_top ?(n = 26) ds = List.filteri (fun i _ -> i < n) (table2 ds)

type kind_row = {
  kind : Sensitive.kind;
  packets : int;
  apps : int;
  destinations : int;
}

let table3 (ds : Workload.dataset) =
  List.map
    (fun kind ->
      let name = Sensitive.to_string kind in
      let packets = ref 0 and apps = ref Int_set.empty and dests = ref Str_set.empty in
      Array.iter
        (fun (r : Http.Trace.record) ->
          if List.mem name r.labels then begin
            incr packets;
            apps := Int_set.add r.app_id !apps;
            dests := Str_set.add r.packet.Http.Packet.dst.Http.Packet.host !dests
          end)
        ds.records;
      {
        kind;
        packets = !packets;
        apps = Int_set.cardinal !apps;
        destinations = Str_set.cardinal !dests;
      })
    Sensitive.all

type permission_row = { pattern : string; count : int; dangerous : bool }

let table1 (ds : Workload.dataset) =
  let acc =
    Array.fold_left
      (fun acc (app : App.t) ->
        let key = Permissions.pattern app.permissions in
        Str_map.update key
          (function
            | None -> Some (1, Permissions.dangerous app.permissions)
            | Some (c, d) -> Some (c + 1, d))
          acc)
      Str_map.empty ds.apps
  in
  Str_map.bindings acc
  |> List.map (fun (pattern, (count, dangerous)) -> { pattern; count; dangerous })
  |> List.sort (fun a b -> compare b.count a.count)

let destinations_per_app (ds : Workload.dataset) =
  let per_app = Hashtbl.create (Array.length ds.apps) in
  Array.iter
    (fun (r : Http.Trace.record) ->
      let host = r.packet.Http.Packet.dst.Http.Packet.host in
      let current =
        Option.value ~default:Str_set.empty (Hashtbl.find_opt per_app r.app_id)
      in
      Hashtbl.replace per_app r.app_id (Str_set.add host current))
    ds.records;
  Hashtbl.fold (fun _ hosts acc -> Str_set.cardinal hosts :: acc) per_app []
  |> Array.of_list

type figure2_summary = {
  total_apps : int;
  one_destination : int;
  within_10 : int;
  within_16 : int;
  mean : float;
  max : int;
}

let figure2 ds =
  let counts = destinations_per_app ds in
  let count_le k = Array.fold_left (fun acc c -> if c <= k then acc + 1 else acc) 0 counts in
  {
    total_apps = Array.length counts;
    one_destination = count_le 1;
    within_10 = count_le 10;
    within_16 = count_le 16;
    mean = Leakdetect_util.Stats.mean_int counts;
    max = (if Array.length counts = 0 then 0 else Leakdetect_util.Stats.max_int_arr counts);
  }

let totals (ds : Workload.dataset) =
  let sensitive = Workload.sensitive_count ds in
  let total = Array.length ds.records in
  (total, sensitive, total - sensitive)

type dangerous_summary = {
  dangerous_apps : int;
  leaking_apps : int;
  leaking_without_dangerous : int;
}

let dangerous (ds : Workload.dataset) =
  let leakers = Hashtbl.create 256 in
  Array.iter
    (fun (r : Http.Trace.record) ->
      if r.labels <> [] then Hashtbl.replace leakers r.app_id ())
    ds.records;
  let dangerous_apps = ref 0 and leaking_without = ref 0 in
  Array.iter
    (fun (app : App.t) ->
      let d = Permissions.dangerous app.permissions in
      if d then incr dangerous_apps;
      if (not d) && Hashtbl.mem leakers app.App.id then incr leaking_without)
    ds.apps;
  {
    dangerous_apps = !dangerous_apps;
    leaking_apps = Hashtbl.length leakers;
    leaking_without_dangerous = !leaking_without;
  }
