module Prng = Leakdetect_util.Prng
module Sensitive = Leakdetect_core.Sensitive
module Ipv4 = Leakdetect_net.Ipv4
module Url = Leakdetect_net.Url
module Http = Leakdetect_http

type category = Ad | Analytics | Content

type value_spec =
  | Sens of Sensitive.kind
  | Opt_sens of Sensitive.kind * float
  | Random_hex of int
  | Random_digits of int
  | Fixed of string
  | App_package
  | Seq
  | Model
  | Screen
  | Locale

type meth = Get | Post

type family = {
  name : string;
  category : category;
  hosts : string array;
  ip_octets : int * int;
  port : int;
  paths : string array;
  meth : meth;
  ad_params : (string * value_spec) list;
  ad_variants : (float * (string * value_spec) list) list;
  beacon_params : (string * value_spec) list;
  cookie_params : (string * value_spec) list;
  sensitive_rate : float;
  target_apps : int;
  packets_per_app : float;
  needs_phone_state : bool;
}

let ad ?(hosts = [||]) ?(port = 80) ?(paths = [| "/ad" |]) ?(meth = Get)
    ?(ad_params = []) ?(ad_variants = []) ?(beacon_params = []) ?(cookie_params = [])
    ?(sensitive_rate = 0.8) ?(needs_phone_state = false) ~category ~ip ~apps
    ~ppa name =
  {
    name;
    category;
    hosts = (if Array.length hosts = 0 then [| "www." ^ name |] else hosts);
    ip_octets = ip;
    port;
    paths;
    meth;
    ad_params;
    ad_variants;
    beacon_params;
    cookie_params;
    sensitive_rate;
    target_apps = apps;
    packets_per_app = ppa;
    needs_phone_state;
  }

(* The catalog.  [apps] and [ppa] come from Table II (#Apps and
   #Packets / #Apps); sensitive parameters follow the associations named in
   Sec. III-B; [sensitive_rate] is tuned so the whole-trace sensitive-packet
   share approaches the paper's 22%. *)
let catalog =
  [
    (* --- Google ad stack: MD5 of the Android ID. --- *)
    ad "doubleclick.net" ~category:Ad ~ip:(173, 194) ~apps:407 ~ppa:14.2
      ~hosts:
        [| "ad.doubleclick.net"; "googleads.g.doubleclick.net";
           "googleads2.g.doubleclick.net"; "ad-apac.doubleclick.net" |]
      ~paths:[| "/mads/gma"; "/pagead/ads" |]
      ~sensitive_rate:0.95
      ~ad_params:
        [
          ("preqs", Fixed "0"); ("u_sd", Fixed "1.5"); ("u_w", Fixed "320");
          ("u_h", Fixed "480"); ("hl", Locale); ("submodel", Model);
          ("udid", Sens Sensitive.Android_id_md5); ("format", Fixed "html");
          ("output", Fixed "html"); ("region", Fixed "mobile_app");
          ("u_tz", Fixed "540"); ("client_sdk", Fixed "1");
          ("app_name", App_package); ("seq_num", Seq); ("eid", Random_digits 8);
        ]
      ~beacon_params:
        [
          ("gads", Fixed "creative"); ("format", Fixed "html");
          ("output", Fixed "html"); ("region", Fixed "mobile_app");
          ("slotname", Random_hex 10); ("u_w", Fixed "320"); ("u_h", Fixed "480");
        ];
    ad "admob.com" ~category:Ad ~ip:(74, 125) ~apps:401 ~ppa:3.2
      ~hosts:[| "r.admob.com"; "mm.admob.com"; "analytics.admob.com" |]
      ~paths:[| "/ad_source.php"; "/imp" |]
      ~sensitive_rate:0.95
      ~ad_params:
        [
          ("rt", Fixed "0"); ("z", Random_digits 10); ("u", Sens Sensitive.Android_id_md5);
          ("d[coord]", Opt_sens (Sensitive.Carrier, 0.1)); ("f", Fixed "jsonp");
          ("v", Fixed "20110915-ANDROID-53e372"); ("s", Random_hex 40);
          ("i", Fixed "ja"); ("e", App_package); ("seq", Seq);
        ]
      ~beacon_params:
        [ ("rt", Fixed "2"); ("z", Random_digits 10); ("f", Fixed "jsonp");
          ("v", Fixed "20110915-ANDROID-53e372"); ("evt", Fixed "imp") ];
    ad "googlesyndication.com" ~category:Ad ~ip:(74, 125) ~apps:244 ~ppa:3.8
      ~hosts:[| "pagead2.googlesyndication.com"; "pagead1.googlesyndication.com" |]
      ~paths:[| "/pagead/ads"; "/simgad" |]
      ~sensitive_rate:0.9
      ~ad_params:
        [
          ("client", Fixed "ca-mb-app-pub"); ("format", Fixed "320x50_mb");
          ("output", Fixed "html"); ("udid", Sens Sensitive.Android_id_md5);
          ("markup", Fixed "xhtml"); ("dt", Random_digits 13); ("app", App_package);
        ]
      ~beacon_params:
        [ ("client", Fixed "ca-mb-app-pub"); ("format", Fixed "320x50_mb");
          ("simid", Random_digits 12) ];
    (* --- Japanese ad networks: raw identifiers (Sec. III-B pairings). --- *)
    ad "ad-maker.info" ~category:Ad ~ip:(203, 104) ~apps:195 ~ppa:17.4
      ~hosts:[| "r.ad-maker.info"; "img.ad-maker.info"; "cnt.ad-maker.info" |]
      ~paths:[| "/ad/sdk/img"; "/ad/sdk/click" |]
      ~sensitive_rate:0.95 ~needs_phone_state:true
      ~ad_params:
        [
          ("aid", App_package); ("imei", Sens Sensitive.Imei);
          ("andid", Sens Sensitive.Android_id); ("size", Fixed "320x50");
          ("os", Fixed "android"); ("osver", Fixed "2.3.4"); ("model", Model);
          ("t", Random_digits 13);
        ]
      ~beacon_params:
        [ ("aid", App_package); ("size", Fixed "320x50"); ("os", Fixed "android");
          ("creative", Random_hex 12) ];
    ad "mydas.mobi" ~category:Ad ~ip:(216, 157) ~apps:164 ~ppa:2.0
      ~hosts:[| "androidsdk.ads.mydas.mobi" |]
      ~paths:[| "/getAd.php5" |]
      ~sensitive_rate:0.95 ~needs_phone_state:true
      ~ad_params:
        [
          ("apid", Random_digits 5); ("auid", Sens Sensitive.Imei);
          ("uuid", Sens Sensitive.Android_id); ("ua", Model);
          ("mmisdk", Fixed "4.5.1-12"); ("density", Fixed "1.5");
          ("hsht", Fixed "480"); ("hswd", Fixed "320");
        ]
      ~beacon_params:[ ("apid", Random_digits 5); ("evt", Fixed "fetch") ];
    ad "medibaad.com" ~category:Ad ~ip:(125, 6) ~apps:49 ~ppa:23.7
      ~hosts:[| "sh.medibaad.com" |]
      ~paths:[| "/sh/ad" |]
      ~sensitive_rate:0.95 ~needs_phone_state:true
      ~ad_params:
        [
          ("sid", Random_digits 6); ("imei", Sens Sensitive.Imei);
          ("aid", Sens Sensitive.Android_id); ("c", Fixed "sp");
          ("ver", Fixed "1.2.0"); ("rnd", Random_digits 10);
        ]
      ~beacon_params:[ ("sid", Random_digits 6); ("c", Fixed "sp"); ("evt", Fixed "view") ];
    ad "adlantis.jp" ~category:Ad ~ip:(219, 94) ~apps:98 ~ppa:2.4
      ~hosts:[| "sp.ad.adlantis.jp" |]
      ~paths:[| "/sp/load_app_ads" |]
      ~sensitive_rate:0.95 ~needs_phone_state:true
      ~ad_params:
        [
          ("publisher", Random_hex 16); ("udid", Sens Sensitive.Imei);
          ("android_id", Sens Sensitive.Android_id); ("format", Fixed "json");
          ("sdk", Fixed "2.2.1");
        ]
      ~beacon_params:[ ("publisher", Random_hex 16); ("format", Fixed "json") ];
    ad "adimg.net" ~category:Ad ~ip:(210, 140) ~apps:72 ~ppa:4.4
      ~hosts:[| "img.adimg.net"; "ad.adimg.net" |]
      ~paths:[| "/adp/img"; "/adp/req" |]
      ~sensitive_rate:0.9
      ~ad_params:
        [
          ("zone", Random_digits 4); ("did", Sens Sensitive.Android_id);
          ("fmt", Fixed "banner"); ("sdkver", Fixed "1.8");
        ]
      ~beacon_params:[ ("zone", Random_digits 4); ("fmt", Fixed "banner") ];
    (* --- Hash-transmitting networks (Table III MD5/SHA1 rows). --- *)
    ad "flurry.com" ~category:Analytics ~ip:(74, 6) ~apps:119 ~ppa:2.8
      ~hosts:[| "data.flurry.com"; "ads.flurry.com" |]
      ~paths:[| "/aap.do" |] ~meth:Post ~sensitive_rate:0.9
      ~ad_params:
        [
          ("ak", Random_hex 20); ("pk", App_package);
          ("u", Sens Sensitive.Android_id_sha1); ("v", Fixed "FL_2.2");
          ("st", Random_digits 13); ("seq", Seq);
        ]
      ~beacon_params:[ ("ak", Random_hex 20); ("v", Fixed "FL_2.2"); ("hb", Fixed "1") ];
    ad "mobclix.com" ~category:Ad ~ip:(204, 93) ~apps:48 ~ppa:5.4
      ~hosts:[| "ads.mobclix.com" |]
      ~paths:[| "/1/vc/20" |] ~sensitive_rate:0.8 ~needs_phone_state:true
      ~ad_params:
        [
          ("p", Fixed "android"); ("an", App_package);
          ("hwdid", Sens Sensitive.Imei_sha1); ("s", Random_hex 8);
          ("sz", Fixed "320x50");
        ]
      ~beacon_params:[ ("p", Fixed "android"); ("sz", Fixed "320x50"); ("ev", Fixed "cc") ];
    ad "adwhirl.com" ~category:Ad ~ip:(184, 73) ~apps:102 ~ppa:5.4
      ~hosts:[| "met.adwhirl.com"; "mob.adwhirl.com" |]
      ~paths:[| "/exmet.php"; "/getInfo.php" |]
      ~sensitive_rate:0.95 ~needs_phone_state:true
      ~ad_params:
        [
          ("appid", Random_hex 32); ("nid", Random_hex 16);
          ("uuid", Sens Sensitive.Imei_sha1); ("type", Fixed "9");
          ("client", Fixed "2");
        ]
      ~beacon_params:[ ("appid", Random_hex 32); ("type", Fixed "16") ];
    ad "amoad.com" ~category:Ad ~ip:(54, 248) ~apps:116 ~ppa:5.0
      ~hosts:[| "d.amoad.com" |]
      ~paths:[| "/ad/json" |] ~sensitive_rate:0.8 ~needs_phone_state:true
      ~ad_params:
        [
          ("sid", Random_hex 24); ("uid", Sens Sensitive.Imei_md5);
          ("lang", Locale); ("rot", Fixed "1"); ("n", Random_digits 8);
        ]
      ~beacon_params:[ ("sid", Random_hex 24); ("rot", Fixed "1"); ("imp", Fixed "1") ];
    ad "mediba.jp" ~category:Ad ~ip:(125, 6) ~apps:48 ~ppa:8.9
      ~hosts:[| "adm.mediba.jp" |]
      ~paths:[| "/admp/load" |] ~sensitive_rate:0.6 ~needs_phone_state:true
      ~ad_params:
        [
          ("auid", Random_hex 12); ("ifa", Sens Sensitive.Imei_md5);
          ("w", Fixed "320"); ("h", Fixed "50"); ("cb", Random_digits 10);
        ]
      ~beacon_params:[ ("auid", Random_hex 12); ("w", Fixed "320"); ("h", Fixed "50") ];
    (* --- Carrier-reporting networks; mixed optional identifiers make the
       false-positive-prone clusters the paper discusses (Sec. VI). --- *)
    ad "nend.net" ~category:Ad ~ip:(175, 41) ~apps:192 ~ppa:7.1
      ~hosts:[| "output.nend.net"; "img.nend.net" |]
      ~paths:[| "/na.php" |] ~sensitive_rate:0.6
      ~ad_variants:
        [
          ( 0.95,
            [
              ("apikey", Random_hex 32); ("spot", Random_digits 6);
              ("carrier", Sens Sensitive.Carrier); ("model", Model);
              ("os", Fixed "android"); ("sdkver", Fixed "nend300");
            ] );
          ( 0.05,
            [
              ("apikey", Random_hex 32); ("spot", Random_digits 6);
              ("gaid", Sens Sensitive.Android_id); ("model", Model);
              ("os", Fixed "android"); ("sdkver", Fixed "nend300");
            ] );
        ]
      ~beacon_params:
        [ ("apikey", Random_hex 32); ("spot", Random_digits 6); ("model", Model);
          ("os", Fixed "android"); ("sdkver", Fixed "nend300") ];
    ad "i-mobile.co.jp" ~category:Ad ~ip:(210, 129) ~apps:100 ~ppa:37.3
      ~hosts:[| "spad.i-mobile.co.jp"; "spimg.i-mobile.co.jp"; "spv.i-mobile.co.jp" |]
      ~paths:[| "/ad/spot"; "/img/creative" |]
      ~sensitive_rate:0.45 ~needs_phone_state:true
      ~cookie_params:[ ("imsession", Random_hex 16) ]
      ~ad_variants:
        [
          ( 0.96,
            [
              ("pid", Random_digits 5); ("asid", Random_digits 6);
              ("carrier", Sens Sensitive.Carrier); ("w", Fixed "320");
              ("h", Fixed "50"); ("sdk", Fixed "im120"); ("cb", Random_digits 12);
            ] );
          ( 0.04,
            [
              ("pid", Random_digits 5); ("asid", Random_digits 6);
              ("dnum", Sens Sensitive.Imei); ("w", Fixed "320");
              ("h", Fixed "50"); ("sdk", Fixed "im120"); ("cb", Random_digits 12);
            ] );
        ]
      ~beacon_params:
        [ ("pid", Random_digits 5); ("asid", Random_digits 6); ("w", Fixed "320");
          ("h", Fixed "50"); ("sdk", Fixed "im120"); ("cb", Random_digits 12) ];
    ad "microad.jp" ~category:Ad ~ip:(27, 110) ~apps:103 ~ppa:8.4
      ~hosts:[| "sender.microad.jp" |]
      ~paths:[| "/spotreq" |] ~sensitive_rate:0.5
      ~ad_params:
        [
          ("spot", Random_hex 24); ("carrier", Sens Sensitive.Carrier);
          ("aid", Sens Sensitive.Android_id); ("vsn", Fixed "1.3.2");
          ("url", App_package);
        ]
      ~beacon_params:
        [ ("spot", Random_hex 24); ("vsn", Fixed "1.3.2"); ("url", App_package) ];
    (* --- Services named only in the running text. --- *)
    ad "zqapk.com" ~category:Ad ~ip:(61, 145) ~apps:13 ~ppa:23.0
      ~hosts:[| "stat.zqapk.com" |]
      ~paths:[| "/s/collect" |] ~meth:Post ~sensitive_rate:0.9
      ~needs_phone_state:true
      ~ad_params:
        [
          ("imei", Sens Sensitive.Imei); ("iccid", Sens Sensitive.Sim_serial);
          ("op", Sens Sensitive.Carrier); ("chan", Random_digits 4);
          ("sv", Fixed "3.1");
        ]
      ~beacon_params:[ ("chan", Random_digits 4); ("sv", Fixed "3.1") ];
    ad "cnsdk.net" ~category:Analytics ~ip:(114, 80) ~apps:16 ~ppa:41.0
      ~hosts:[| "c.cnsdk.net" |]
      ~paths:[| "/t/u.gif" |] ~sensitive_rate:0.9 ~needs_phone_state:true
      ~ad_params:
        [
          ("si", Sens Sensitive.Imsi); ("ei", Sens Sensitive.Imei);
          ("av", Fixed "1.0.7"); ("r", Random_digits 9);
        ]
      ~beacon_params:[ ("av", Fixed "1.0.7"); ("hb", Fixed "1") ];
    (* --- Analytics without device identifiers. --- *)
    ad "google-analytics.com" ~category:Analytics ~ip:(74, 125) ~apps:353 ~ppa:8.8
      ~hosts:[| "www.google-analytics.com"; "ssl.google-analytics.com" |]
      ~paths:[| "/__utm.gif" |] ~sensitive_rate:0.
      ~beacon_params:
        [
          ("utmwv", Fixed "4.8.1ma"); ("utmn", Random_digits 10);
          ("utme", Random_hex 8); ("utmcs", Fixed "UTF-8");
          ("utmsr", Screen); ("utmul", Locale); ("utmac", Fixed "UA-00000000-1");
          ("utmcc", Random_digits 12);
        ];
    (* --- Content / platform / CDN traffic (benign). --- *)
    ad "gstatic.com" ~category:Content ~ip:(74, 125) ~apps:333 ~ppa:4.2
      ~hosts:[| "t0.gstatic.com"; "csi.gstatic.com" |]
      ~paths:[| "/images"; "/csi" |] ~sensitive_rate:0.
      ~beacon_params:[ ("q", Random_hex 14); ("s", Fixed "static") ];
    ad "google.com" ~category:Content ~ip:(74, 125) ~apps:308 ~ppa:11.7
      ~hosts:[| "www.google.com"; "clients3.google.com" |]
      ~paths:[| "/m/search"; "/complete/search" |] ~sensitive_rate:0.
      ~beacon_params:[ ("q", Random_hex 9); ("hl", Locale); ("client", Fixed "ms-android") ];
    ad "yahoo.co.jp" ~category:Content ~ip:(183, 79) ~apps:287 ~ppa:6.1
      ~hosts:[| "search.yahoo.co.jp"; "image.search.yahoo.co.jp" |]
      ~paths:[| "/search"; "/images/top" |] ~sensitive_rate:0.
      ~beacon_params:[ ("p", Random_hex 8); ("ei", Fixed "UTF-8"); ("fr", Fixed "applp2") ];
    ad "ggpht.com" ~category:Content ~ip:(74, 125) ~apps:281 ~ppa:3.3
      ~hosts:[| "lh3.ggpht.com"; "lh5.ggpht.com" |]
      ~paths:[| "/photos" |] ~sensitive_rate:0.
      ~beacon_params:[ ("img", Random_hex 20); ("sz", Fixed "w124") ];
    ad "naver.jp" ~category:Content ~ip:(125, 209) ~apps:82 ~ppa:41.3
      ~hosts:[| "api.naver.jp"; "cache.naver.jp" |]
      ~paths:[| "/api/json"; "/cache/body" |] ~sensitive_rate:0.
      ~beacon_params:[ ("q", Random_hex 10); ("st", Fixed "100"); ("r_format", Fixed "json") ];
    ad "mbga.jp" ~category:Content ~ip:(202, 238) ~apps:63 ~ppa:16.6
      ~hosts:[| "sp.mbga.jp" |]
      ~paths:[| "/_grp_view"; "/_game_top" |] ~sensitive_rate:0.8
      ~cookie_params:[ ("sess", Random_hex 26) ]
      ~ad_params:
        [ ("gid", Random_digits 8); ("did", Sens Sensitive.Android_id_sha1);
          ("v", Fixed "sp1") ]
      ~beacon_params:[ ("gid", Random_digits 8); ("v", Fixed "sp1") ];
    ad "rakuten.co.jp" ~category:Content ~ip:(133, 237) ~apps:56 ~ppa:9.0
      ~hosts:[| "app.rakuten.co.jp"; "image.rakuten.co.jp" |]
      ~paths:[| "/api/item/search"; "/img" |] ~sensitive_rate:0.
      ~beacon_params:[ ("keyword", Random_hex 7); ("format", Fixed "json"); ("page", Random_digits 2) ];
    ad "fc2.com" ~category:Content ~ip:(208, 71) ~apps:52 ~ppa:3.1
      ~hosts:[| "blog.fc2.com" |]
      ~paths:[| "/feed" |] ~sensitive_rate:0.
      ~beacon_params:[ ("uid", Random_hex 6); ("mode", Fixed "rss") ];
    ad "gree.jp" ~category:Content ~ip:(210, 172) ~apps:45 ~ppa:5.1
      ~hosts:[| "os-sp.gree.jp" |]
      ~paths:[| "/api/rest" |] ~sensitive_rate:0.7
      ~cookie_params:[ ("grid", Random_hex 22) ]
      ~ad_params:
        [ ("app_id", Random_digits 5); ("uid", Sens Sensitive.Android_id);
          ("fmt", Fixed "json") ]
      ~beacon_params:[ ("app_id", Random_digits 5); ("fmt", Fixed "json") ];
  ]

let find name = List.find_opt (fun f -> f.name = name) catalog

(* Deterministic host -> address mapping inside the family's /16: hash the
   FQDN into the low 16 bits.  Stable across runs, distinct per host. *)
let host_ip family host =
  let h = Hashtbl.hash host land 0xffff in
  let a, b = family.ip_octets in
  Ipv4.of_octets a b ((h lsr 8) land 0xff) (max 1 (h land 0xff))

(* WHOIS organization per family: the Google properties share allocations
   and really are one registrant; likewise the mediba brands. *)
let organization family =
  match family.name with
  | "doubleclick.net" | "admob.com" | "googlesyndication.com" | "google.com"
  | "gstatic.com" | "ggpht.com" | "google-analytics.com" ->
    "Google Inc."
  | "mediba.jp" | "medibaad.com" -> "mediba Inc."
  | name -> name

let registry () =
  List.fold_left
    (fun acc f ->
      let a, b = f.ip_octets in
      Leakdetect_net.Registry.register acc ~org:(organization f)
        ~base:(Ipv4.of_octets a b 0 0) ~prefix:16)
    Leakdetect_net.Registry.empty catalog

type app_context = {
  package : string;
  permissions : Permissions.combo;
  counter : int ref;
}

let render_value rng device app spec =
  match spec with
  | Sens kind | Opt_sens (kind, _) -> Device.value device kind
  | Random_hex n ->
    String.init n (fun _ ->
        let v = Prng.int rng 16 in
        if v < 10 then Char.chr (Char.code '0' + v)
        else Char.chr (Char.code 'a' + v - 10))
  | Random_digits n -> String.init n (fun _ -> Char.chr (Char.code '0' + Prng.int rng 10))
  | Fixed s -> s
  | App_package -> app.package
  | Seq ->
    incr app.counter;
    string_of_int !(app.counter)
  | Model -> device.Device.model
  | Screen -> "320x480"
  | Locale -> "ja_JP"

(* Drop sensitive parameters the app cannot read, and optional ones that
   lose their coin flip. *)
let select_params rng app params =
  List.filter
    (fun (_, spec) ->
      match spec with
      | Sens kind -> Permissions.allows_kind app.permissions kind
      | Opt_sens (kind, p) ->
        Permissions.allows_kind app.permissions kind && Prng.chance rng p
      | _ -> true)
    params

let render ?host rng device app family =
  let is_ad_request =
    (family.ad_params <> [] || family.ad_variants <> [])
    && Prng.chance rng family.sensitive_rate
  in
  let form =
    if not is_ad_request then family.beacon_params
    else
      match family.ad_variants with
      | [] -> family.ad_params
      | variants ->
        let weights = Array.of_list (List.map fst variants) in
        snd (List.nth variants (Leakdetect_util.Sample.weighted_index rng weights))
  in
  let params = select_params rng app form in
  let query = Url.encode_query (List.map (fun (k, s) -> (k, render_value rng device app s)) params) in
  let host = match host with Some h -> h | None -> Prng.pick rng family.hosts in
  let path = Prng.pick rng family.paths in
  let headers =
    Http.Headers.of_list
      [
        ("Host", host);
        ("User-Agent",
         Printf.sprintf "Dalvik/1.4.0 (Linux; U; Android 2.3.4; %s Build/GRJ22)"
           device.Device.model);
        ("Connection", "Keep-Alive");
      ]
  in
  let headers =
    match family.cookie_params with
    | [] -> headers
    | items ->
      let cookie =
        Http.Cookie.to_string
          (List.map (fun (k, s) -> (k, render_value rng device app s)) items)
      in
      Http.Headers.add headers "Cookie" cookie
  in
  let request =
    match family.meth with
    | Get ->
      let target = if query = "" then path else path ^ "?" ^ query in
      Http.Request.make ~headers Http.Request.GET target
    | Post ->
      let headers =
        Http.Headers.add headers "Content-Type" "application/x-www-form-urlencoded"
      in
      Http.Request.make ~headers ~body:query Http.Request.POST path
  in
  let dst =
    { Http.Packet.ip = host_ip family host; port = family.port; host }
  in
  Http.Packet.make ~dst ~request
