module Sensitive = Leakdetect_core.Sensitive

type permission = Internet | Location | Read_phone_state | Read_contacts

let permission_name = function
  | Internet -> "INTERNET"
  | Location -> "ACCESS_FINE_LOCATION"
  | Read_phone_state -> "READ_PHONE_STATE"
  | Read_contacts -> "READ_CONTACTS"

type combo = {
  internet : bool;
  location : bool;
  phone_state : bool;
  contacts : bool;
}

let has c = function
  | Internet -> c.internet
  | Location -> c.location
  | Read_phone_state -> c.phone_state
  | Read_contacts -> c.contacts

let requires_sensitive c = c.location || c.phone_state || c.contacts
let dangerous c = c.internet && requires_sensitive c

let pattern c =
  let mark b = if b then "X" else "-" in
  String.concat " " [ mark c.internet; mark c.location; mark c.phone_state; mark c.contacts ]

let combo ~internet ~location ~phone_state ~contacts =
  { internet; location; phone_state; contacts }

let table1_rows =
  [
    (combo ~internet:true ~location:false ~phone_state:false ~contacts:false, 302);
    (combo ~internet:true ~location:false ~phone_state:true ~contacts:false, 329);
    (combo ~internet:true ~location:true ~phone_state:true ~contacts:false, 153);
    (combo ~internet:true ~location:true ~phone_state:false ~contacts:false, 148);
    (combo ~internet:true ~location:true ~phone_state:true ~contacts:true, 23);
    (* Not printed in Table I; fills the population to 1,188. *)
    (combo ~internet:true ~location:false ~phone_state:false ~contacts:true, 233);
  ]

let population rng =
  let combos =
    List.concat_map (fun (c, count) -> List.init count (fun _ -> c)) table1_rows
  in
  let arr = Array.of_list combos in
  Leakdetect_util.Sample.shuffle rng arr;
  arr

let allows_kind c kind =
  match kind with
  | Sensitive.Imei | Sensitive.Imei_md5 | Sensitive.Imei_sha1 | Sensitive.Imsi
  | Sensitive.Sim_serial ->
    c.phone_state
  | Sensitive.Android_id | Sensitive.Android_id_md5 | Sensitive.Android_id_sha1
  | Sensitive.Carrier ->
    true
