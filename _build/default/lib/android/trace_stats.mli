(** Corpus statistics over a generated dataset — the quantities behind
    Tables I-III and Figure 2 of the paper. *)

type dest_row = { domain : string; packets : int; apps : int }

val table2 : Workload.dataset -> dest_row list
(** Packets and distinct applications per registrable destination domain,
    sorted by application count (Table II's ordering), all domains. *)

val table2_top : ?n:int -> Workload.dataset -> dest_row list

type kind_row = {
  kind : Leakdetect_core.Sensitive.kind;
  packets : int;
  apps : int;
  destinations : int;
}

val table3 : Workload.dataset -> kind_row list
(** Per sensitive-information kind: packets carrying it, applications
    sending it, distinct destination hosts receiving it (Table III). *)

type permission_row = { pattern : string; count : int; dangerous : bool }

val table1 : Workload.dataset -> permission_row list
(** Application counts per permission combination, descending. *)

val destinations_per_app : Workload.dataset -> int array
(** Distinct destination hosts actually contacted, per application (only
    applications that produced traffic). *)

type figure2_summary = {
  total_apps : int;
  one_destination : int;
  within_10 : int;
  within_16 : int;
  mean : float;
  max : int;
}

val figure2 : Workload.dataset -> figure2_summary

val totals : Workload.dataset -> int * int * int
(** (total packets, sensitive packets, normal packets). *)

type dangerous_summary = {
  dangerous_apps : int;
      (** Apps holding INTERNET plus at least one sensitive permission (the
          61% figure of Sec. III-A). *)
  leaking_apps : int;  (** Apps that actually sent sensitive information. *)
  leaking_without_dangerous : int;
      (** Leaking apps outside the dangerous set (Android ID and carrier
          need no permission, so this is non-empty by design). *)
}

val dangerous : Workload.dataset -> dangerous_summary
