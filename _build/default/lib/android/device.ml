module Prng = Leakdetect_util.Prng
module Sensitive = Leakdetect_core.Sensitive

type t = {
  imei : string;
  imsi : string;
  sim_serial : string;
  android_id : string;
  carrier : string;
  model : string;
}

let carriers = [| "NTTdocomo"; "KDDI"; "SoftBank" |]
let models = [| "Nexus S"; "SC-02C"; "IS11S"; "SH-12C"; "P-07C" |]

let digits rng n = String.init n (fun _ -> Char.chr (Char.code '0' + Prng.int rng 10))

let hex_digits rng n =
  String.init n (fun _ ->
      let v = Prng.int rng 16 in
      if v < 10 then Char.chr (Char.code '0' + v) else Char.chr (Char.code 'a' + v - 10))

(* Luhn check digit over a digit string (doubling from the rightmost
   position of the full number, i.e. the check digit itself is position 1). *)
let luhn_check_digit payload =
  let n = String.length payload in
  let sum = ref 0 in
  for i = 0 to n - 1 do
    let d = Char.code payload.[n - 1 - i] - Char.code '0' in
    let d = if i mod 2 = 0 then let x = d * 2 in if x > 9 then x - 9 else x else d in
    sum := !sum + d
  done;
  (10 - (!sum mod 10)) mod 10

let luhn_valid s =
  String.length s >= 2
  && String.for_all (fun c -> c >= '0' && c <= '9') s
  && luhn_check_digit (String.sub s 0 (String.length s - 1))
     = Char.code s.[String.length s - 1] - Char.code '0'

let create rng =
  let carrier = Prng.pick rng carriers in
  (* Type allocation codes of 2011-era handsets. *)
  let tac = Prng.pick rng [| "35502193"; "35851004"; "35896704"; "01215200" |] in
  let imei_payload = tac ^ digits rng 6 in
  let imei = imei_payload ^ string_of_int (luhn_check_digit imei_payload) in
  let mnc = match carrier with "NTTdocomo" -> "10" | "KDDI" -> "50" | _ -> "20" in
  let imsi = "440" ^ mnc ^ digits rng 10 in
  let sim_serial = "8981" ^ digits rng 15 in
  let android_id = hex_digits rng 16 in
  let model = Prng.pick rng models in
  { imei; imsi; sim_serial; android_id; carrier; model }

let value t kind =
  match kind with
  | Sensitive.Android_id -> t.android_id
  | Sensitive.Android_id_md5 -> Leakdetect_crypto.Md5.hex t.android_id
  | Sensitive.Android_id_sha1 -> Leakdetect_crypto.Sha1.hex t.android_id
  | Sensitive.Carrier -> t.carrier
  | Sensitive.Imei -> t.imei
  | Sensitive.Imei_md5 -> Leakdetect_crypto.Md5.hex t.imei
  | Sensitive.Imei_sha1 -> Leakdetect_crypto.Sha1.hex t.imei
  | Sensitive.Imsi -> t.imsi
  | Sensitive.Sim_serial -> t.sim_serial

let needles t = List.map (fun kind -> (kind, value t kind)) Sensitive.all
