(** The slice of the Android permission model the paper analyzes (Sec. II-B,
    III-A): the [INTERNET] permission plus the three sensitive-information
    permissions of Table I, with the full Table I population breakdown. *)

type permission = Internet | Location | Read_phone_state | Read_contacts

val permission_name : permission -> string
(** The Android manifest constant, e.g. ["READ_PHONE_STATE"]. *)

type combo = {
  internet : bool;
  location : bool;
  phone_state : bool;
  contacts : bool;
}

val has : combo -> permission -> bool
val requires_sensitive : combo -> bool
(** At least one of the three sensitive permissions. *)

val dangerous : combo -> bool
(** The paper's "dangerous combination": [INTERNET] together with at least
    one sensitive permission. *)

val pattern : combo -> string
(** Table I row pattern, e.g. ["X"; "X"; ""; ""] rendered as ["X X - -"]. *)

(** Table I population.  The five printed rows (302 / 329 / 153 / 148 / 23)
    are reproduced exactly; the 233 applications the table omits are modeled
    as [INTERNET]+[READ_CONTACTS], the nearest unlisted combination (the
    paper's own marginals are inconsistent — see EXPERIMENTS.md). *)

val table1_rows : (combo * int) list
(** (combination, application count), in Table I order, plus the extra
    row.  Counts sum to 1188. *)

val population : Leakdetect_util.Prng.t -> combo array
(** A shuffled 1188-element population drawn exactly from
    {!table1_rows}. *)

val allows_kind : combo -> Leakdetect_core.Sensitive.kind -> bool
(** Which sensitive kinds an application holding [combo] can read:
    IMEI/IMSI/SIM serial (and their hashes) need [READ_PHONE_STATE]; the
    Android ID and carrier name are readable without any permission. *)
