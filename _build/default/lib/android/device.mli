(** The simulated handset.

    The paper ran all 1,188 applications on one Galaxy Nexus S, so a single
    device instance backs a whole trace.  Identifiers are structurally valid
    — IMEI with a correct Luhn check digit, IMSI with a Japanese MCC/MNC,
    ICCID-format SIM serial, 16-hex-digit Android ID — because the payload
    check and the signature tokens operate on the literal wire strings. *)

type t = {
  imei : string;  (** 15 digits, Luhn-checked. *)
  imsi : string;  (** 15 digits, MCC 440 (Japan). *)
  sim_serial : string;  (** 19 digits, 8981-prefixed ICCID. *)
  android_id : string;  (** 16 lowercase hex digits. *)
  carrier : string;  (** One of the three Japanese carriers. *)
  model : string;  (** Handset model string sent by ad modules. *)
}

val create : Leakdetect_util.Prng.t -> t

val luhn_valid : string -> bool
(** Check-digit validation for digit strings (used for IMEI). *)

val value : t -> Leakdetect_core.Sensitive.kind -> string
(** The wire representation of each sensitive-information kind: raw strings
    for identifiers and the carrier, MD5/SHA1 lowercase hex for the hashed
    kinds. *)

val needles : t -> (Leakdetect_core.Sensitive.kind * string) list
(** Payload-check needle table: every kind paired with its wire string. *)

val carriers : string array
