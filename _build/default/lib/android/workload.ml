module Prng = Leakdetect_util.Prng
module Sample = Leakdetect_util.Sample
module Http = Leakdetect_http
module Ipv4 = Leakdetect_net.Ipv4
module Payload_check = Leakdetect_core.Payload_check
module Sensitive = Leakdetect_core.Sensitive

let log_src = Logs.Src.create "leakdetect.workload" ~doc:"Synthetic trace generation"

module Log = (val Logs.src_log log_src)

type dataset = {
  seed : int;
  scale : float;
  device : Device.t;
  apps : App.t array;
  records : Http.Trace.record array;
  payload_check : Payload_check.t;
}

(* Figure 2 fit: destinations per app ~ round(LogNormal(1.64, 0.9)),
   clamped to [1, 84]. *)
let draw_destination_target rng =
  let d = int_of_float (Float.round (Sample.lognormal rng ~mu:1.64 ~sigma:0.9)) in
  max 1 (min 84 d)

(* Mean first-party packets per app at scale 1, sized so the whole trace
   approaches the paper's 107,859 packets once module traffic (~38k
   expected from the Table II calibration) is added. *)
let backend_mean = 76.0

let app_words =
  [| "game"; "news"; "tool"; "photo"; "music"; "book"; "fun"; "navi"; "cook";
     "train"; "weather"; "manga"; "quiz"; "chat"; "coupon"; "camera" |]

let shared_cdn_hosts rng =
  (* A wide pool keeps any single shared host out of the Table II top
     rows while still letting apps share infrastructure. *)
  Array.init 1200 (fun i ->
      let provider = Prng.pick rng [| "jcdn"; "spcloud"; "mobimg"; "apphost" |] in
      Printf.sprintf "img%d.%s.jp" i provider)

let random_ip rng =
  (* Avoid low/reserved first octets so addresses look routable. *)
  Ipv4.of_octets (Prng.int_in rng 20 220) (Prng.int rng 256) (Prng.int rng 256)
    (1 + Prng.int rng 254)

let make_backends rng ~package ~count ~cdn_pool =
  let mk_host i =
    if i = 0 || Prng.chance rng 0.75 then
      let sub = Prng.pick rng [| "api"; "img"; "cdn"; "app"; "dl"; "feed"; "s" |] in
      Printf.sprintf "%s.%s%04d.jp" sub package i
    else Prng.pick rng cdn_pool
  in
  if count = 0 then []
  else begin
    (* Zipf-ish traffic split: first backend dominates. *)
    let weights = Sample.zipf_weights ~n:count ~s:1.2 in
    List.init count (fun i ->
        { App.host = mk_host i; ip = random_ip rng; weight = weights.(i) })
  end

let build_apps rng ~n_apps =
  let combos = Permissions.population rng in
  let combos = Array.sub combos 0 (min n_apps (Array.length combos)) in
  let n = Array.length combos in
  let targets = Array.init n (fun _ -> draw_destination_target rng) in
  (* One application embeds a browser and tops Figure 2 at 84 hosts. *)
  if n > 0 then targets.(Prng.int rng n) <- 84;
  let packages =
    Array.init n (fun i -> Printf.sprintf "%s%04d" (Prng.pick rng app_words) i)
  in
  (* Module assignment: Bernoulli per family with probability chosen so the
     expected embed count matches the Table II target among eligible apps
     (apps with more than one destination and the required permission). *)
  let eligible family i =
    targets.(i) >= 2
    && ((not family.Ad_module.needs_phone_state) || combos.(i).Permissions.phone_state)
  in
  let family_prob =
    List.map
      (fun family ->
        let count = ref 0 in
        for i = 0 to n - 1 do
          if eligible family i then incr count
        done;
        let p =
          if !count = 0 then 0.
          else
            Float.min 1.
              (float_of_int family.Ad_module.target_apps
              *. (float_of_int n /. 1188.)
              /. float_of_int !count)
        in
        (family, p))
      Ad_module.catalog
  in
  let cdn_pool = shared_cdn_hosts rng in
  Array.init n (fun i ->
      let modules =
        List.filter_map
          (fun (family, p) ->
            if eligible family i && Prng.chance rng p then
              Some (family, Prng.pick rng family.Ad_module.hosts)
            else None)
          family_prob
      in
      let module_hosts = List.length modules in
      let backend_count =
        if module_hosts = 0 then max 1 targets.(i)
        else max 0 (targets.(i) - module_hosts)
      in
      let package = Printf.sprintf "jp.co.%s" packages.(i) in
      {
        App.id = i;
        package;
        permissions = combos.(i);
        modules;
        backends = make_backends rng ~package:packages.(i) ~count:backend_count ~cdn_pool;
        target_destinations = targets.(i);
        leaks_android_id = Prng.chance rng 0.06;
        leaks_imei = combos.(i).Permissions.phone_state && Prng.chance rng 0.03;
      })

let generate_app_records rng ~scale ~device ~check (app : App.t) =
  let records = ref [] in
  let ctx =
    {
      Ad_module.package = app.App.package;
      permissions = app.App.permissions;
      counter = ref 0;
    }
  in
  let emit packet =
    let labels = List.map Sensitive.to_string (Payload_check.scan check packet) in
    records := { Http.Trace.packet; app_id = app.App.id; labels } :: !records
  in
  (* Module traffic, pinned to the app's sticky host per family. *)
  List.iter
    (fun (family, host) ->
      let mean = Float.max 0.2 (family.Ad_module.packets_per_app *. scale) in
      let count = max 1 (Sample.poisson rng mean) in
      for _ = 1 to count do
        emit (Ad_module.render ~host rng device ctx family)
      done)
    app.App.modules;
  (* First-party traffic: touch every backend once (a destination exists
     because it was contacted), then split the rest by weight. *)
  let backends = Array.of_list app.App.backends in
  if Array.length backends > 0 then begin
    Array.iter (fun b -> emit (App.render_backend_packet rng device app b)) backends;
    let backend_total = Sample.poisson rng (Float.max 0.5 (backend_mean *. scale)) in
    let weights = Array.map (fun b -> b.App.weight) backends in
    for _ = 1 to backend_total do
      let b = backends.(Sample.weighted_index rng weights) in
      emit (App.render_backend_packet rng device app b)
    done
  end;
  List.rev !records

let generate ?(seed = 42) ?(scale = 1.0) ?(n_apps = 1188) () =
  let rng = Prng.create seed in
  let device = Device.create rng in
  let check = Payload_check.create (Device.needles device) in
  let apps = build_apps rng ~n_apps in
  let records =
    Array.to_list apps
    |> List.concat_map (fun app ->
           generate_app_records (Prng.split rng) ~scale ~device ~check app)
    |> Array.of_list
  in
  Log.info (fun m ->
      m "generated %d packets (%d sensitive) from %d apps, seed %d, scale %.2f"
        (Array.length records)
        (Array.fold_left (fun acc r -> if r.Http.Trace.labels = [] then acc else acc + 1) 0 records)
        (Array.length apps) seed scale);
  { seed; scale; device; apps; records; payload_check = check }

let packets dataset = Array.map (fun r -> r.Http.Trace.packet) dataset.records

let split dataset =
  let suspicious = ref [] and normal = ref [] in
  Array.iter
    (fun r ->
      if r.Http.Trace.labels = [] then normal := r.Http.Trace.packet :: !normal
      else suspicious := r.Http.Trace.packet :: !suspicious)
    dataset.records;
  (Array.of_list (List.rev !suspicious), Array.of_list (List.rev !normal))

let labels_of_record r =
  List.filter_map Sensitive.of_string r.Http.Trace.labels

let sensitive_count dataset =
  Array.fold_left
    (fun acc r -> if r.Http.Trace.labels = [] then acc else acc + 1)
    0 dataset.records
