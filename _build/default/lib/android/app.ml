module Prng = Leakdetect_util.Prng
module Http = Leakdetect_http
module Url = Leakdetect_net.Url

type backend = { host : string; ip : Leakdetect_net.Ipv4.t; weight : float }

type t = {
  id : int;
  package : string;
  permissions : Permissions.combo;
  modules : (Ad_module.family * string) list;
  backends : backend list;
  target_destinations : int;
  leaks_android_id : bool;
  leaks_imei : bool;
}

let destination_count t = List.length t.modules + List.length t.backends

let backend_paths =
  [| "/api/v1/list"; "/api/v1/detail"; "/news/latest"; "/images/thumb";
     "/rank/daily"; "/update/check"; "/feed.json"; "/assets/pack"; "/user/sync" |]

let render_backend_packet rng device t backend =
  let path = Prng.pick rng backend_paths in
  let params =
    List.filteri
      (fun i _ -> i = 0 || Prng.bool rng)
      [
        ("page", string_of_int (1 + Prng.int rng 30));
        ("lang", "ja");
        ("v", Printf.sprintf "%d.%d.%d" (1 + Prng.int rng 3) (Prng.int rng 10) (Prng.int rng 10));
        ("t", string_of_int (1325376000 + Prng.int rng 10000000));
      ]
  in
  (* Some applications report device identifiers to their own servers —
     the long tail of Table III's destination counts. *)
  let params =
    if t.leaks_android_id && Prng.chance rng 0.5 then
      params @ [ ("aid", device.Device.android_id) ]
    else params
  in
  let params =
    if t.leaks_imei && Prng.chance rng 0.5 then
      params @ [ ("dnum", device.Device.imei) ]
    else params
  in
  let query = Url.encode_query params in
  let headers =
    Http.Headers.of_list
      [
        ("Host", backend.host);
        ("User-Agent", Printf.sprintf "%s/1.0 (Android 2.3.4)" t.package);
        ("Connection", "Keep-Alive");
      ]
  in
  let headers =
    if Prng.chance rng 0.3 then
      Http.Headers.add headers "Cookie"
        (Http.Cookie.to_string
           [ ("session", String.init 24 (fun _ ->
                  let v = Prng.int rng 16 in
                  if v < 10 then Char.chr (Char.code '0' + v)
                  else Char.chr (Char.code 'a' + v - 10))) ])
    else headers
  in
  let request = Http.Request.make ~headers Http.Request.GET (path ^ "?" ^ query) in
  let dst = { Http.Packet.ip = backend.ip; port = 80; host = backend.host } in
  Http.Packet.make ~dst ~request
