(** Advertisement / analytics / content module families.

    Each family models one of the services of Table II (plus the two minor
    services named only in the text, zqapk and an IMSI-collecting SDK): its
    HTTP hosts, the IP block those hosts resolve into, a request template
    with fixed parameter order and optional polymorphic parameters, the
    sensitive-information kinds it transmits, and per-population calibration
    targets (how many of the 1,188 applications embed it, how many packets
    per application it emits).

    Families render two request forms, mirroring real ad SDKs:
    - the {e ad request} carrying the module's sensitive parameters, and
    - the {e beacon} (creative fetch / impression ping) that carries none.
    [sensitive_rate] is the probability a packet is an ad request. *)

type category = Ad | Analytics | Content

type value_spec =
  | Sens of Leakdetect_core.Sensitive.kind
  | Opt_sens of Leakdetect_core.Sensitive.kind * float
      (** Included with the given probability — and only when the embedding
          application's permissions allow reading the kind. *)
  | Random_hex of int
  | Random_digits of int
  | Fixed of string
  | App_package
  | Seq  (** Per-application request counter. *)
  | Model
  | Screen
  | Locale

type meth = Get | Post

type family = {
  name : string;  (** Registrable domain, e.g. ["admob.com"]. *)
  category : category;
  hosts : string array;  (** FQDNs under the domain. *)
  ip_octets : int * int;  (** First two octets of the service's /16. *)
  port : int;
  paths : string array;
  meth : meth;
  ad_params : (string * value_spec) list;
  ad_variants : (float * (string * value_spec) list) list;
      (** Alternative ad-request forms with selection weights.  When
          non-empty, each ad request draws one form; modules that transmit
          different identifier kinds in different (rare) forms produce the
          mixed clusters behind the paper's false positives, whose rate
          therefore grows with the sample size N (Sec. VI). *)
  beacon_params : (string * value_spec) list;
  cookie_params : (string * value_spec) list;
  sensitive_rate : float;
  target_apps : int;  (** Table II "# Apps" calibration target. *)
  packets_per_app : float;  (** Table II packets / apps. *)
  needs_phone_state : bool;
      (** The module reads IMEI/IMSI/SIM and is only embedded by
          applications holding READ_PHONE_STATE. *)
}

val catalog : family list
(** All families, Table II order first, then the text-only services, then
    the content/CDN services. *)

val find : string -> family option
(** Lookup by {!family.name}. *)

val host_ip : family -> string -> Leakdetect_net.Ipv4.t
(** Deterministic address of one of the family's hosts, inside the family's
    /16 block. *)

val organization : family -> string
(** The family's registrant organization (Google and mediba properties are
    grouped under their real owners). *)

val registry : unit -> Leakdetect_net.Registry.t
(** A WHOIS-like registry of every catalog family's /16 allocation, keyed
    by {!organization}, for the Sec. VI registry-verified destination
    distance. *)

type app_context = {
  package : string;
  permissions : Permissions.combo;
  counter : int ref;  (** Shared per-app request counter. *)
}

val render :
  ?host:string ->
  Leakdetect_util.Prng.t ->
  Device.t ->
  app_context ->
  family ->
  Leakdetect_http.Packet.t
(** One packet from this family on behalf of the given application.
    Whether it is an ad request or a beacon is drawn from
    [sensitive_rate]; sensitive parameters the application's permissions do
    not allow are omitted (the module degrades gracefully, as real SDKs
    do).  [host] pins the endpoint (the workload keeps one sticky host per
    application and family, as a resolved SDK endpoint would be); default is
    a uniform pick among the family's hosts. *)
