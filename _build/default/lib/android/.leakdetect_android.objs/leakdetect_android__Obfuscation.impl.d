lib/android/obfuscation.ml: Char Device Leakdetect_core Leakdetect_http Leakdetect_net Leakdetect_util List Option Printf String
