lib/android/app.ml: Ad_module Char Device Leakdetect_http Leakdetect_net Leakdetect_util List Permissions Printf String
