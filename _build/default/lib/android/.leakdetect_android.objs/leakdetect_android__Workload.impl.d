lib/android/workload.ml: Ad_module App Array Device Float Leakdetect_core Leakdetect_http Leakdetect_net Leakdetect_util List Logs Permissions Printf
