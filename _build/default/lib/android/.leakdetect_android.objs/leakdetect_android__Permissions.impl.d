lib/android/permissions.ml: Array Leakdetect_core Leakdetect_util List String
