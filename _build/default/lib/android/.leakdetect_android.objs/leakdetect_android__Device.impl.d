lib/android/device.ml: Char Leakdetect_core Leakdetect_crypto Leakdetect_util List String
