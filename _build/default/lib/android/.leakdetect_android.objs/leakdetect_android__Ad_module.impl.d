lib/android/ad_module.ml: Array Char Device Hashtbl Leakdetect_core Leakdetect_http Leakdetect_net Leakdetect_util List Permissions Printf String
