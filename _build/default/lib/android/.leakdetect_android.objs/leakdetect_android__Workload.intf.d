lib/android/workload.mli: App Device Leakdetect_core Leakdetect_http
