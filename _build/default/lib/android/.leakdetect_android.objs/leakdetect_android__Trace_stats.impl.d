lib/android/trace_stats.ml: App Array Hashtbl Int Leakdetect_core Leakdetect_http Leakdetect_net Leakdetect_util List Map Option Permissions Set String Workload
