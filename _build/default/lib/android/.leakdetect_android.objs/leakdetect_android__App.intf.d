lib/android/app.mli: Ad_module Device Leakdetect_http Leakdetect_net Leakdetect_util Permissions
