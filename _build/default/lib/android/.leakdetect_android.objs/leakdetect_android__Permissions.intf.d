lib/android/permissions.mli: Leakdetect_core Leakdetect_util
