lib/android/trace_stats.mli: Leakdetect_core Workload
