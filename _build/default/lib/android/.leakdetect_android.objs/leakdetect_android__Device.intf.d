lib/android/device.mli: Leakdetect_core Leakdetect_util
