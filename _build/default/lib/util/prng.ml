type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

(* SplitMix64, used only to expand the user seed into xoshiro state. *)
let splitmix64 state =
  let ( +% ) = Int64.add and ( *% ) = Int64.mul in
  let ( ^^ ) = Int64.logxor and ( >>> ) = Int64.shift_right_logical in
  state := !state +% 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = (z ^^ (z >>> 30)) *% 0xBF58476D1CE4E5B9L in
  let z = (z ^^ (z >>> 27)) *% 0x94D049BB133111EBL in
  z ^^ (z >>> 31)

let create seed =
  let st = ref (Int64.of_int seed) in
  let s0 = splitmix64 st in
  let s1 = splitmix64 st in
  let s2 = splitmix64 st in
  let s3 = splitmix64 st in
  { s0; s1; s2; s3 }

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let int64 t =
  let ( *% ) = Int64.mul and ( ^^ ) = Int64.logxor in
  let result = Int64.mul (rotl (t.s1 *% 5L) 7) 9L in
  let tmp = Int64.shift_left t.s1 17 in
  t.s2 <- t.s2 ^^ t.s0;
  t.s3 <- t.s3 ^^ t.s1;
  t.s1 <- t.s1 ^^ t.s2;
  t.s0 <- t.s0 ^^ t.s3;
  t.s2 <- t.s2 ^^ tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t =
  let st = ref (int64 t) in
  let s0 = splitmix64 st in
  let s1 = splitmix64 st in
  let s2 = splitmix64 st in
  let s3 = splitmix64 st in
  { s0; s1; s2; s3 }

let bits30 t = Int64.to_int (Int64.shift_right_logical (int64 t) 34)

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  if bound <= 1 lsl 30 then begin
    (* Rejection sampling over 30 bits keeps the draw unbiased. *)
    let mask_draws () =
      let rec loop () =
        let r = bits30 t in
        if r >= (1 lsl 30) / bound * bound then loop () else r mod bound
      in
      loop ()
    in
    mask_draws ()
  end
  else
    (* Large bounds: fold 60 bits; bias is negligible for simulation use. *)
    let hi = bits30 t and lo = bits30 t in
    ((hi lsl 30) lor lo) mod bound

let int_in t lo hi =
  if hi < lo then invalid_arg "Prng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t =
  (* 53 uniform bits scaled to [0,1). *)
  let bits = Int64.to_int (Int64.shift_right_logical (int64 t) 11) in
  float_of_int bits *. 0x1p-53

let bool t = Int64.compare (Int64.logand (int64 t) 1L) 0L <> 0
let chance t p = float t < p

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Prng.pick: empty array";
  arr.(int t (Array.length arr))

let pick_list t l =
  match l with
  | [] -> invalid_arg "Prng.pick_list: empty list"
  | _ -> List.nth l (int t (List.length l))
