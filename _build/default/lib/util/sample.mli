(** Sampling primitives used by the workload generator and the evaluation
    harness (the paper samples N suspicious packets uniformly at random for
    signature generation, Sec. V-A). *)

val shuffle : Prng.t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val without_replacement : Prng.t -> int -> 'a array -> 'a array
(** [without_replacement rng n arr] draws [min n (Array.length arr)] distinct
    elements uniformly, preserving no particular order. *)

val weighted_index : Prng.t -> float array -> int
(** [weighted_index rng w] draws index [i] with probability proportional to
    [w.(i)].  @raise Invalid_argument on empty or non-positive total weight. *)

val zipf : Prng.t -> n:int -> s:float -> int
(** [zipf rng ~n ~s] draws a rank in [\[1, n\]] from a Zipf distribution with
    exponent [s].  Destination popularity in real app traffic is heavy-tailed
    (Table II), which this models. *)

val zipf_weights : n:int -> s:float -> float array
(** The (unnormalized) Zipf pmf over ranks [1..n], as weights. *)

val gaussian : Prng.t -> float
(** Standard normal deviate (Box-Muller). *)

val lognormal : Prng.t -> mu:float -> sigma:float -> float
(** [exp (mu + sigma * gaussian)].  The destinations-per-application
    distribution of Figure 2 is fit with a discretized lognormal. *)

val poisson : Prng.t -> float -> int
(** Poisson deviate with the given mean (Knuth's method below mean 30, a
    rounded normal approximation above).  @raise Invalid_argument on a
    non-positive mean. *)
