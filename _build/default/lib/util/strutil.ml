let find_from s pos sub =
  (* Naive scan is fine here: separators are short and strings small. *)
  let n = String.length s and m = String.length sub in
  if m = 0 then invalid_arg "Strutil: empty separator";
  let rec loop i =
    if i + m > n then None
    else if String.sub s i m = sub then Some i
    else loop (i + 1)
  in
  loop pos

let split_on_string ~sep s =
  let m = String.length sep in
  let rec loop pos acc =
    match find_from s pos sep with
    | None -> List.rev (String.sub s pos (String.length s - pos) :: acc)
    | Some i -> loop (i + m) (String.sub s pos (i - pos) :: acc)
  in
  loop 0 []

let chop_prefix ~prefix s =
  let lp = String.length prefix in
  if String.length s >= lp && String.sub s 0 lp = prefix then
    Some (String.sub s lp (String.length s - lp))
  else None

let chop_suffix ~suffix s =
  let ls = String.length suffix and l = String.length s in
  if l >= ls && String.sub s (l - ls) ls = suffix then
    Some (String.sub s 0 (l - ls))
  else None

let trim_spaces s =
  let n = String.length s in
  let is_sp c = c = ' ' || c = '\t' in
  let i = ref 0 and j = ref (n - 1) in
  while !i < n && is_sp s.[!i] do incr i done;
  while !j >= !i && is_sp s.[!j] do decr j done;
  String.sub s !i (!j - !i + 1)

let take n s = if String.length s <= n then s else String.sub s 0 (max n 0)

let repeat s n =
  let buf = Buffer.create (String.length s * max n 0) in
  for _ = 1 to n do Buffer.add_string buf s done;
  Buffer.contents buf

let common_prefix_len a b =
  let n = min (String.length a) (String.length b) in
  let rec loop i = if i < n && a.[i] = b.[i] then loop (i + 1) else i in
  loop 0

let is_printable_ascii s =
  String.for_all (fun c -> c >= '\x20' && c <= '\x7e') s

let truncate_middle width s =
  if String.length s <= width then s
  else if width <= 3 then String.sub s 0 (max width 0)
  else
    let keep = width - 3 in
    let left = (keep + 1) / 2 and right = keep / 2 in
    String.sub s 0 left ^ "..." ^ String.sub s (String.length s - right) right
