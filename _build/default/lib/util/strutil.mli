(** Small string helpers shared across the codebase. *)

val split_on_string : sep:string -> string -> string list
(** [split_on_string ~sep s] splits [s] on every non-overlapping occurrence of
    the non-empty separator [sep].  [split_on_string ~sep ""] is [[""]]. *)

val chop_prefix : prefix:string -> string -> string option
(** [chop_prefix ~prefix s] removes a leading [prefix], if present. *)

val chop_suffix : suffix:string -> string -> string option

val trim_spaces : string -> string
(** Trim ASCII space and tab from both ends. *)

val take : int -> string -> string
(** [take n s] is the first [min n (length s)] characters. *)

val repeat : string -> int -> string
(** [repeat s n] concatenates [n] copies of [s]. *)

val common_prefix_len : string -> string -> int
(** Length of the longest common prefix. *)

val is_printable_ascii : string -> bool
(** True when every byte is in [\[0x20, 0x7e\]]. *)

val truncate_middle : int -> string -> string
(** [truncate_middle width s] shortens [s] to at most [width] characters,
    eliding the middle with ["..."], for display purposes. *)
