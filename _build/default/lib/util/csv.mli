(** Minimal RFC-4180 CSV writing, for exporting reproduced tables and series
    (EXPERIMENTS.md references these exports). *)

val escape_field : string -> string
(** Quote the field if it contains a comma, quote or newline. *)

val line : string list -> string
(** One CSV record, without trailing newline. *)

val render : header:string list -> string list list -> string
(** Full document with header row; rows separated by ['\n']. *)
