(** Minimal JSON emission (no parsing) — the benchmark harness exports its
    measured results in machine-readable form alongside the plain-text
    tables, so EXPERIMENTS.md can be regenerated and diffed. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact rendering; strings are escaped per RFC 8259, non-finite floats
    become [null]. *)

val to_string_pretty : t -> string
(** Two-space indented rendering. *)
