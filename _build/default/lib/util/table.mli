(** Plain-text table rendering for the benchmark harness.  Every reproduced
    paper table is printed through this module so the output is uniform and
    diffable. *)

type align = Left | Right

val render :
  ?title:string -> columns:(string * align) list -> string list list -> string
(** [render ~title ~columns rows] lays the rows out with padded columns, a
    header rule, and an optional title line.  Rows shorter than the header are
    right-padded with empty cells; longer rows are truncated. *)

val render_kv : ?title:string -> (string * string) list -> string
(** Two-column key/value table. *)
