let shuffle rng arr =
  for i = Array.length arr - 1 downto 1 do
    let j = Prng.int rng (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let without_replacement rng n arr =
  let len = Array.length arr in
  let n = min n len in
  if n = 0 then [||]
  else begin
    (* Partial Fisher-Yates on a copy: only the first n slots are needed. *)
    let a = Array.copy arr in
    for i = 0 to n - 1 do
      let j = i + Prng.int rng (len - i) in
      let tmp = a.(i) in
      a.(i) <- a.(j);
      a.(j) <- tmp
    done;
    Array.sub a 0 n
  end

let weighted_index rng w =
  let total = Array.fold_left ( +. ) 0. w in
  if Array.length w = 0 || total <= 0. then
    invalid_arg "Sample.weighted_index: empty or non-positive weights";
  let target = Prng.float rng *. total in
  let rec loop i acc =
    if i = Array.length w - 1 then i
    else
      let acc = acc +. w.(i) in
      if target < acc then i else loop (i + 1) acc
  in
  loop 0 0.

let zipf_weights ~n ~s =
  if n <= 0 then invalid_arg "Sample.zipf_weights: n must be positive";
  Array.init n (fun i -> 1. /. Float.pow (float_of_int (i + 1)) s)

let zipf rng ~n ~s = 1 + weighted_index rng (zipf_weights ~n ~s)

let gaussian rng =
  (* Box-Muller; guard against log 0. *)
  let u1 = Float.max 1e-300 (Prng.float rng) in
  let u2 = Prng.float rng in
  sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2)

let lognormal rng ~mu ~sigma = exp (mu +. (sigma *. gaussian rng))

let poisson rng mean =
  if mean <= 0. then invalid_arg "Sample.poisson: mean must be positive";
  if mean < 30. then begin
    let limit = exp (-.mean) in
    let rec loop k p =
      let p = p *. Prng.float rng in
      if p <= limit then k else loop (k + 1) p
    in
    loop 0 1.
  end
  else
    (* Normal approximation is ample for workload sizing. *)
    max 0 (int_of_float (Float.round (mean +. (sqrt mean *. gaussian rng))))
