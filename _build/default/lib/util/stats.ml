let mean xs =
  if Array.length xs = 0 then 0.
  else Array.fold_left ( +. ) 0. xs /. float_of_int (Array.length xs)

let mean_int xs = mean (Array.map float_of_int xs)

let percentile xs p =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.percentile: empty input";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let rank = int_of_float (ceil (p /. 100. *. float_of_int n)) in
  sorted.(max 0 (min (n - 1) (rank - 1)))

let fraction_le xs k =
  if Array.length xs = 0 then 0.
  else
    let c = Array.fold_left (fun acc x -> if x <= k then acc + 1 else acc) 0 xs in
    float_of_int c /. float_of_int (Array.length xs)

let max_int_arr xs =
  if Array.length xs = 0 then invalid_arg "Stats.max_int_arr: empty input";
  Array.fold_left max xs.(0) xs

let histogram xs =
  let tbl = Hashtbl.create 64 in
  Array.iter
    (fun x -> Hashtbl.replace tbl x (1 + Option.value ~default:0 (Hashtbl.find_opt tbl x)))
    xs;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

type cdf_point = { value : int; count : int; cumulative : int; fraction : float }

let cdf xs =
  let total = Array.length xs in
  let _, points =
    List.fold_left
      (fun (cum, acc) (value, count) ->
        let cumulative = cum + count in
        let fraction =
          if total = 0 then 0. else float_of_int cumulative /. float_of_int total
        in
        (cumulative, { value; count; cumulative; fraction } :: acc))
      (0, []) (histogram xs)
  in
  List.rev points
