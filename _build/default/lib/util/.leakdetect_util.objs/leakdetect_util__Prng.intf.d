lib/util/prng.mli:
