lib/util/hex.mli:
