lib/util/csv.mli:
