lib/util/base64.ml: Buffer Char String
