lib/util/table.mli:
