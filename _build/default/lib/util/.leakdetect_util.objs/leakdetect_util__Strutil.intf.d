lib/util/strutil.mli:
