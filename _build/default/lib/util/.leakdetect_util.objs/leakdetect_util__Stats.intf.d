lib/util/stats.mli:
