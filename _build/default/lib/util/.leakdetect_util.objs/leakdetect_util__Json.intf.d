lib/util/json.mli:
