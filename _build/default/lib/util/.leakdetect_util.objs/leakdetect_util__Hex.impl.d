lib/util/hex.ml: Bytes Char Option String
