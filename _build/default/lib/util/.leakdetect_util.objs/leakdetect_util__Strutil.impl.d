lib/util/strutil.ml: Buffer List String
