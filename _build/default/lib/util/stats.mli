(** Descriptive statistics and cumulative-distribution summaries used to
    report Figure 2 (destinations-per-app CDF) and the evaluation tables. *)

val mean : float array -> float
(** Arithmetic mean; 0 on empty input. *)

val mean_int : int array -> float

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [\[0,100\]], nearest-rank method on a sorted
    copy.  @raise Invalid_argument on empty input. *)

val fraction_le : int array -> int -> float
(** [fraction_le xs k] is the fraction of values [<= k]. *)

val max_int_arr : int array -> int
(** Maximum; @raise Invalid_argument on empty input. *)

val histogram : int array -> (int * int) list
(** [histogram xs] is the sorted association list (value, count). *)

type cdf_point = { value : int; count : int; cumulative : int; fraction : float }

val cdf : int array -> cdf_point list
(** Cumulative frequency distribution over distinct values, ascending. *)
