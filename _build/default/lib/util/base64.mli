(** RFC 4648 Base64, implemented from scratch (the sealed toolchain has no
    base64 package).  Used by the obfuscated-traffic experiment: ad modules
    that encrypt their payload with a fixed key still produce invariant
    ciphertext tokens, which the paper argues its signatures can catch
    (Sec. VI). *)

val encode : string -> string
(** Standard alphabet, with [=] padding. *)

val decode : string -> string option
(** [None] on bad characters, bad padding or bad length. *)
