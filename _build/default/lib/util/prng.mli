(** Deterministic pseudo-random number generation.

    Every stochastic component of the reproduction draws from this module so
    that a workload is fully determined by its seed.  The generator is
    xoshiro256** (Blackman & Vigna), seeded through SplitMix64 as its authors
    recommend.  States are mutable but never shared implicitly: use {!split}
    to derive independent streams for sub-components. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] builds a generator from an integer seed.  Equal seeds give
    equal streams. *)

val copy : t -> t
(** [copy t] is an independent generator starting at [t]'s current state. *)

val split : t -> t
(** [split t] advances [t] and returns a fresh generator whose stream is
    statistically independent of [t]'s subsequent output.  Used to give every
    simulated application its own stream regardless of generation order. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val bits30 : t -> int
(** 30 uniform bits as a non-negative [int]. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  @raise Invalid_argument if
    [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val float : t -> float
(** Uniform float in [\[0, 1)]. *)

val bool : t -> bool

val chance : t -> float -> bool
(** [chance t p] is true with probability [p]. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val pick_list : t -> 'a list -> 'a
(** Uniform element of a non-empty list. *)
