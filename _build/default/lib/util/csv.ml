let needs_quoting s =
  String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s

let escape_field s =
  if needs_quoting s then
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  else s

let line fields = String.concat "," (List.map escape_field fields)

let render ~header rows =
  String.concat "\n" (line header :: List.map line rows) ^ "\n"
