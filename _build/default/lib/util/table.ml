type align = Left | Right

let pad align width s =
  let gap = width - String.length s in
  if gap <= 0 then s
  else
    match align with
    | Left -> s ^ String.make gap ' '
    | Right -> String.make gap ' ' ^ s

let normalize ncols row =
  let len = List.length row in
  if len = ncols then row
  else if len > ncols then List.filteri (fun i _ -> i < ncols) row
  else row @ List.init (ncols - len) (fun _ -> "")

let render ?title ~columns rows =
  let ncols = List.length columns in
  let rows = List.map (normalize ncols) rows in
  let headers = List.map fst columns in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left (fun w row -> max w (String.length (List.nth row i)))
          (String.length h) rows)
      headers
  in
  let line cells =
    String.concat "  "
      (List.map2 (fun (w, (_, align)) c -> pad align w c)
         (List.combine widths columns) cells)
  in
  let rule =
    String.concat "  " (List.map (fun w -> String.make w '-') widths)
  in
  let buf = Buffer.create 256 in
  (match title with
  | Some t ->
    Buffer.add_string buf t;
    Buffer.add_char buf '\n'
  | None -> ());
  Buffer.add_string buf (line headers);
  Buffer.add_char buf '\n';
  Buffer.add_string buf rule;
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (line row);
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let render_kv ?title kvs =
  render ?title
    ~columns:[ ("key", Left); ("value", Right) ]
    (List.map (fun (k, v) -> [ k; v ]) kvs)
