let alphabet = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/"

let encode s =
  let n = String.length s in
  let out = Buffer.create ((n + 2) / 3 * 4) in
  let emit_group b0 b1 b2 count =
    let triple = (b0 lsl 16) lor (b1 lsl 8) lor b2 in
    Buffer.add_char out alphabet.[(triple lsr 18) land 0x3f];
    Buffer.add_char out alphabet.[(triple lsr 12) land 0x3f];
    if count > 1 then Buffer.add_char out alphabet.[(triple lsr 6) land 0x3f]
    else Buffer.add_char out '=';
    if count > 2 then Buffer.add_char out alphabet.[triple land 0x3f]
    else Buffer.add_char out '='
  in
  let i = ref 0 in
  while !i + 3 <= n do
    emit_group (Char.code s.[!i]) (Char.code s.[!i + 1]) (Char.code s.[!i + 2]) 3;
    i := !i + 3
  done;
  (match n - !i with
  | 1 -> emit_group (Char.code s.[!i]) 0 0 1
  | 2 -> emit_group (Char.code s.[!i]) (Char.code s.[!i + 1]) 0 2
  | _ -> ());
  Buffer.contents out

let value c =
  match c with
  | 'A' .. 'Z' -> Some (Char.code c - Char.code 'A')
  | 'a' .. 'z' -> Some (Char.code c - Char.code 'a' + 26)
  | '0' .. '9' -> Some (Char.code c - Char.code '0' + 52)
  | '+' -> Some 62
  | '/' -> Some 63
  | _ -> None

let decode s =
  let n = String.length s in
  if n mod 4 <> 0 then None
  else if n = 0 then Some ""
  else begin
    let padding =
      if s.[n - 2] = '=' then 2 else if s.[n - 1] = '=' then 1 else 0
    in
    let out = Buffer.create (n / 4 * 3) in
    let ok = ref true in
    let i = ref 0 in
    while !ok && !i < n do
      let group_padding = if !i + 4 = n then padding else 0 in
      let digit k =
        if k >= 4 - group_padding then Some 0
        else value s.[!i + k]
      in
      (match (digit 0, digit 1, digit 2, digit 3) with
      | Some a, Some b, Some c, Some d ->
        let triple = (a lsl 18) lor (b lsl 12) lor (c lsl 6) lor d in
        Buffer.add_char out (Char.chr ((triple lsr 16) land 0xff));
        if group_padding < 2 then Buffer.add_char out (Char.chr ((triple lsr 8) land 0xff));
        if group_padding < 1 then Buffer.add_char out (Char.chr (triple land 0xff))
      | _ -> ok := false);
      i := !i + 4
    done;
    (* '=' may only appear in the final group. *)
    let early_pad =
      n > 4 && String.exists (fun c -> c = '=') (String.sub s 0 (n - 4))
    in
    if !ok && not early_pad then Some (Buffer.contents out) else None
  end
