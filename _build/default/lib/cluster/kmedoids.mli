(** K-medoids (PAM: BUILD + SWAP) over a precomputed distance matrix.

    A partitional alternative to the paper's hierarchical clustering,
    included in the ablation benchmark: it needs [k] fixed up front — the
    very parameter the dendrogram cut avoids choosing — which is the
    qualitative argument for the paper's design. *)

type result = {
  medoids : int array;  (** Item indices, one per cluster, sorted. *)
  assignment : int array;  (** For each item, the index into [medoids]. *)
  cost : float;  (** Sum of distances to assigned medoids. *)
}

val cluster :
  rng:Leakdetect_util.Prng.t ->
  k:int ->
  ?max_iterations:int ->
  Dist_matrix.t ->
  result
(** [cluster ~rng ~k m] with greedy BUILD initialization and first-
    improvement SWAP refinement (at most [max_iterations] passes,
    default 30).  [k] is clamped to the item count.
    @raise Invalid_argument when [k < 1] or the matrix is empty. *)

val clusters : result -> int list list
(** Member lists per medoid, each sorted ascending. *)
