type result = { clusters : int list list; noise : int list }

let cluster ~eps ~min_points m =
  if eps < 0. then invalid_arg "Dbscan.cluster: negative eps";
  if min_points < 1 then invalid_arg "Dbscan.cluster: min_points must be >= 1";
  let n = Dist_matrix.size m in
  let neighbours i =
    let out = ref [] in
    for j = n - 1 downto 0 do
      if Dist_matrix.get m i j <= eps then out := j :: !out
    done;
    !out
  in
  let labels = Array.make n `Unvisited in
  let clusters = ref [] in
  for i = 0 to n - 1 do
    if labels.(i) = `Unvisited then begin
      let nbrs = neighbours i in
      if List.length nbrs < min_points then labels.(i) <- `Noise
      else begin
        (* Grow a new cluster from core point [i] by BFS over core points. *)
        let members = ref [] in
        let queue = Queue.create () in
        Queue.add i queue;
        labels.(i) <- `Clustered;
        members := i :: !members;
        while not (Queue.is_empty queue) do
          let p = Queue.pop queue in
          let p_nbrs = neighbours p in
          if List.length p_nbrs >= min_points then
            List.iter
              (fun q ->
                match labels.(q) with
                | `Clustered -> ()
                | `Unvisited | `Noise ->
                  labels.(q) <- `Clustered;
                  members := q :: !members;
                  Queue.add q queue)
              p_nbrs
        done;
        clusters := List.sort compare !members :: !clusters
      end
    end
  done;
  let noise = ref [] in
  for i = n - 1 downto 0 do
    if labels.(i) = `Noise then noise := i :: !noise
  done;
  { clusters = List.rev !clusters; noise = !noise }
