(** DBSCAN over a precomputed distance matrix.

    Density-based alternative for the clustering ablation: it discovers the
    number of clusters itself (like the dendrogram cut) and additionally
    marks sparse packets as noise instead of forcing them into clusters —
    which maps nicely onto signature generation, where singleton "clusters"
    only ever produce exact-match signatures. *)

type result = {
  clusters : int list list;  (** Members per cluster, ascending. *)
  noise : int list;  (** Items in no cluster. *)
}

val cluster : eps:float -> min_points:int -> Dist_matrix.t -> result
(** Classic DBSCAN: a core point has at least [min_points] neighbours
    (including itself) within [eps]; clusters are the transitive closure of
    core points plus their border points.
    @raise Invalid_argument when [eps < 0] or [min_points < 1]. *)
