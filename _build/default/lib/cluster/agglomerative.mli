(** Hierarchical agglomerative clustering.

    The paper (Sec. IV-D) assigns each packet to its own cluster and
    repeatedly merges the two nearest clusters under the group-average
    distance

      d_group(Cx, Cy) = (1 / |Cx||Cy|) * sum over pairs of d_pkt

    until one cluster remains.  This module implements that procedure with
    the Lance-Williams update, which maintains the exact group-average
    between merged clusters without re-summing pairs.  Single and complete
    linkage are provided for the ablation benchmark. *)

type linkage = Group_average | Single | Complete

val linkage_name : linkage -> string
val linkage_of_name : string -> linkage option

val cluster : ?linkage:linkage -> Dist_matrix.t -> Dendrogram.t option
(** [cluster m] is [None] only for an empty matrix.  With [n] items it
    performs exactly [n - 1] merges; each merge records its linkage distance
    as the dendrogram height.  O(n^2) memory, O(n^3) time — the paper's
    sample sizes (N <= 500) keep this well under a second. *)

val merge_sequence : ?linkage:linkage -> Dist_matrix.t -> (int * int * float) list
(** The successive merges as (cluster-a, cluster-b, distance), using the
    scipy-style convention that original items are [0..n-1] and the cluster
    created by merge [k] gets index [n + k].  Exposed for tests. *)
