(** Cophenetic analysis: how faithfully a dendrogram preserves the original
    pairwise distances.  The cophenetic distance between two items is the
    height of their lowest common ancestor; the cophenetic correlation
    coefficient (Pearson correlation between original and cophenetic
    distances) is the standard figure of merit for a hierarchical
    clustering — reported by the benchmark for each linkage. *)

val matrix : Dendrogram.t -> Dist_matrix.t
(** Cophenetic distances over the dendrogram's leaves.  Leaf indices must
    be [0 .. n-1] (as produced by the clustering algorithms).
    @raise Invalid_argument otherwise. *)

val correlation : Dist_matrix.t -> Dendrogram.t -> float
(** Cophenetic correlation coefficient against the original matrix; 0 when
    either side has zero variance (e.g. fewer than 3 items). *)
