(* Nearest-neighbor chain: grow a chain a -> nn(a) -> nn(nn(a)) ... until two
   clusters are mutual nearest neighbors, merge them, and continue from the
   chain's remainder.  Correct for reducible linkages because merging two
   mutual nearest neighbors can never create a closer pair involving them. *)

let update = fun linkage ~ni ~nj dki dkj ->
  match linkage with
  | Agglomerative.Group_average ->
    let ni = float_of_int ni and nj = float_of_int nj in
    ((ni *. dki) +. (nj *. dkj)) /. (ni +. nj)
  | Agglomerative.Single -> Float.min dki dkj
  | Agglomerative.Complete -> Float.max dki dkj

type state = {
  dist : float array array;
  active : bool array;
  sizes : int array;
  trees : Dendrogram.t option array;
}

let nearest st exclude i =
  let n = Array.length st.active in
  let best = ref (-1) and best_d = ref infinity in
  for k = 0 to n - 1 do
    if st.active.(k) && k <> i && k <> exclude && st.dist.(i).(k) < !best_d then begin
      best := k;
      best_d := st.dist.(i).(k)
    end
  done;
  (!best, !best_d)

let cluster ?(linkage = Agglomerative.Group_average) m =
  let n = Dist_matrix.size m in
  if n = 0 then None
  else begin
    let st =
      {
        dist = Array.init n (fun i -> Array.init n (fun j -> Dist_matrix.get m i j));
        active = Array.make n true;
        sizes = Array.make n 1;
        trees = Array.init n (fun i -> Some (Dendrogram.Leaf i));
      }
    in
    let remaining = ref n in
    let chain = ref [] in
    let any_active () =
      let rec find i = if st.active.(i) then i else find (i + 1) in
      find 0
    in
    while !remaining > 1 do
      (match !chain with
      | [] -> chain := [ any_active () ]
      | top :: _ when not st.active.(top) ->
        (* top was merged away in a previous step; restart *)
        chain := [ any_active () ]
      | _ -> ());
      (* Extend the chain until we find mutual nearest neighbors. *)
      let merged = ref false in
      while not !merged do
        match !chain with
        | [] -> chain := [ any_active () ]
        | top :: rest ->
          let prev = match rest with [] -> -1 | p :: _ -> p in
          let next, d_next = nearest st (-1) top in
          assert (next >= 0);
          (* Prefer returning to the chain's predecessor on ties: then top
             and prev are mutual nearest neighbors. *)
          let next, d_next =
            if prev >= 0 && st.dist.(top).(prev) <= d_next then (prev, st.dist.(top).(prev))
            else (next, d_next)
          in
          if next = prev then begin
            (* Mutual nearest neighbors: merge top and prev. *)
            let i = top and j = prev in
            let ti = Option.get st.trees.(i) and tj = Option.get st.trees.(j) in
            st.trees.(i) <- Some (Dendrogram.node ti tj d_next);
            st.trees.(j) <- None;
            let ni = st.sizes.(i) and nj = st.sizes.(j) in
            st.sizes.(i) <- ni + nj;
            st.active.(j) <- false;
            for k = 0 to n - 1 do
              if st.active.(k) && k <> i then begin
                let d = update linkage ~ni ~nj st.dist.(k).(i) st.dist.(k).(j) in
                st.dist.(k).(i) <- d;
                st.dist.(i).(k) <- d
              end
            done;
            decr remaining;
            (* Drop top and prev from the chain; continue from the rest. *)
            chain := (match rest with [] -> [] | _ :: tail -> tail);
            merged := true
          end
          else chain := next :: !chain
      done
    done;
    st.trees.(any_active ())
  end
