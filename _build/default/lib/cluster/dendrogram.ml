type t =
  | Leaf of int
  | Node of { left : t; right : t; height : float; size : int }

let size = function Leaf _ -> 1 | Node { size; _ } -> size
let height = function Leaf _ -> 0. | Node { height; _ } -> height

let node left right height =
  Node { left; right; height; size = size left + size right }

let members t =
  let rec collect acc = function
    | Leaf i -> i :: acc
    | Node { left; right; _ } -> collect (collect acc left) right
  in
  List.sort compare (collect [] t)

let cut ~threshold t =
  let rec loop acc = function
    | Leaf _ as l -> l :: acc
    | Node { height; left; right; _ } as n ->
      if height <= threshold then n :: acc else loop (loop acc left) right
  in
  List.rev (loop [] t)

let cut_into k t =
  if k < 1 then invalid_arg "Dendrogram.cut_into: k must be >= 1";
  (* Repeatedly split the subtree with the highest merge. *)
  let rec loop forest =
    if List.length forest >= k then forest
    else
      let best =
        List.fold_left
          (fun acc t ->
            match (acc, t) with
            | None, Node _ -> Some t
            | Some b, Node _ when height t > height b -> Some t
            | _ -> acc)
          None forest
      in
      match best with
      | None -> forest (* only leaves remain *)
      | Some (Node { left; right; _ } as n) ->
        loop (left :: right :: List.filter (fun x -> x != n) forest)
      | Some (Leaf _) -> assert false
  in
  loop [ t ]

let heights t =
  let rec loop acc = function
    | Leaf _ -> acc
    | Node { height; left; right; _ } -> height :: loop (loop acc right) left
  in
  loop [] t

let rec pp ppf = function
  | Leaf i -> Format.fprintf ppf "%d" i
  | Node { left; right; height; _ } ->
    Format.fprintf ppf "@[<hov 1>(%a@ %a@ @@%.3f)@]" pp left pp right height

let to_newick ?(label = string_of_int) t =
  let buf = Buffer.create 128 in
  let rec walk parent_height node =
    let branch = parent_height -. height node in
    (match node with
    | Leaf i -> Buffer.add_string buf (label i)
    | Node { left; right; height; _ } ->
      Buffer.add_char buf '(';
      walk height left;
      Buffer.add_char buf ',';
      walk height right;
      Buffer.add_char buf ')');
    Buffer.add_string buf (Printf.sprintf ":%.6g" (Float.max branch 0.))
  in
  (match t with
  | Leaf i -> Buffer.add_string buf (label i)
  | Node { left; right; height; _ } ->
    Buffer.add_char buf '(';
    walk height left;
    Buffer.add_char buf ',';
    walk height right;
    Buffer.add_char buf ')');
  Buffer.add_char buf ';';
  Buffer.contents buf
