lib/cluster/dbscan.mli: Dist_matrix
