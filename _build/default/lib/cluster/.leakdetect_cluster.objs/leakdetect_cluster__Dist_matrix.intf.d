lib/cluster/dist_matrix.mli:
