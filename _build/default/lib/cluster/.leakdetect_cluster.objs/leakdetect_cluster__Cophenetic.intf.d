lib/cluster/cophenetic.mli: Dendrogram Dist_matrix
