lib/cluster/agglomerative.ml: Array Dendrogram Dist_matrix Float List Option
