lib/cluster/nn_chain.mli: Agglomerative Dendrogram Dist_matrix
