lib/cluster/dendrogram.mli: Format
