lib/cluster/dbscan.ml: Array Dist_matrix List Queue
