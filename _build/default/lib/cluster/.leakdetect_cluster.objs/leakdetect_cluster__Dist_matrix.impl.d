lib/cluster/dist_matrix.ml: Array Float
