lib/cluster/dendrogram.ml: Buffer Float Format List Printf
