lib/cluster/cophenetic.ml: Array Dendrogram Dist_matrix Fun List
