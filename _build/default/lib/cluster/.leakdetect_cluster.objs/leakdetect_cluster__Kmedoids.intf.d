lib/cluster/kmedoids.mli: Dist_matrix Leakdetect_util
