lib/cluster/nn_chain.ml: Agglomerative Array Dendrogram Dist_matrix Float Option
