lib/cluster/agglomerative.mli: Dendrogram Dist_matrix
