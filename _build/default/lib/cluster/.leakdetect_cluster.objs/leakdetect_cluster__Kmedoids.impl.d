lib/cluster/kmedoids.ml: Array Dist_matrix Float Int List
