type linkage = Group_average | Single | Complete

let linkage_name = function
  | Group_average -> "group-average"
  | Single -> "single"
  | Complete -> "complete"

let linkage_of_name = function
  | "group-average" | "average" | "upgma" -> Some Group_average
  | "single" -> Some Single
  | "complete" -> Some Complete
  | _ -> None

(* Lance-Williams coefficients: distance from cluster k to the merge of i
   and j, given d(k,i), d(k,j) and the cluster sizes. *)
let update linkage ~ni ~nj dki dkj =
  match linkage with
  | Group_average ->
    let ni = float_of_int ni and nj = float_of_int nj in
    ((ni *. dki) +. (nj *. dkj)) /. (ni +. nj)
  | Single -> Float.min dki dkj
  | Complete -> Float.max dki dkj

type state = {
  dist : float array array; (* full symmetric working copy *)
  active : bool array;
  sizes : int array;
  trees : Dendrogram.t option array;
  ids : int array; (* scipy-style cluster ids for merge_sequence *)
}

let init m =
  let n = Dist_matrix.size m in
  {
    dist = Array.init n (fun i -> Array.init n (fun j -> Dist_matrix.get m i j));
    active = Array.make n true;
    sizes = Array.make n 1;
    trees = Array.init n (fun i -> Some (Dendrogram.Leaf i));
    ids = Array.init n (fun i -> i);
  }

let nearest_pair st =
  let n = Array.length st.active in
  let best = ref None in
  for i = 0 to n - 1 do
    if st.active.(i) then
      for j = i + 1 to n - 1 do
        if st.active.(j) then
          match !best with
          | Some (_, _, d) when st.dist.(i).(j) >= d -> ()
          | _ -> best := Some (i, j, st.dist.(i).(j))
      done
  done;
  !best

let run linkage m =
  let n = Dist_matrix.size m in
  if n = 0 then (None, [])
  else begin
    let st = init m in
    let merges = ref [] in
    let next_id = ref n in
    let steps = n - 1 in
    for _ = 1 to steps do
      match nearest_pair st with
      | None -> assert false
      | Some (i, j, d) ->
        (* Merge j into slot i; deactivate j. *)
        let ti = Option.get st.trees.(i) and tj = Option.get st.trees.(j) in
        merges := (st.ids.(i), st.ids.(j), d) :: !merges;
        st.trees.(i) <- Some (Dendrogram.node ti tj d);
        st.trees.(j) <- None;
        st.ids.(i) <- !next_id;
        incr next_id;
        let ni = st.sizes.(i) and nj = st.sizes.(j) in
        st.sizes.(i) <- ni + nj;
        st.active.(j) <- false;
        for k = 0 to n - 1 do
          if st.active.(k) && k <> i then begin
            let dnew = update linkage ~ni ~nj st.dist.(k).(i) st.dist.(k).(j) in
            st.dist.(k).(i) <- dnew;
            st.dist.(i).(k) <- dnew
          end
        done
    done;
    let root =
      let rec find i = if st.active.(i) then st.trees.(i) else find (i + 1) in
      find 0
    in
    (root, List.rev !merges)
  end

let cluster ?(linkage = Group_average) m = fst (run linkage m)
let merge_sequence ?(linkage = Group_average) m = snd (run linkage m)
