type t = { n : int; cells : float array }

let npairs n = n * (n - 1) / 2

let create n =
  if n < 0 then invalid_arg "Dist_matrix.create: negative size";
  { n; cells = Array.make (max (npairs n) 1) 0. }

let index t i j =
  let i, j = if i < j then (i, j) else (j, i) in
  if i < 0 || j >= t.n then invalid_arg "Dist_matrix: index out of range";
  (i * t.n) - (i * (i + 1) / 2) + (j - i - 1)

let size t = t.n

let get t i j = if i = j then 0. else t.cells.(index t i j)

let set t i j v =
  if i = j then invalid_arg "Dist_matrix.set: diagonal is fixed at zero";
  t.cells.(index t i j) <- v

let build n f =
  let t = create n in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      set t i j (f i j)
    done
  done;
  t

let fold f acc t =
  let acc = ref acc in
  for i = 0 to t.n - 1 do
    for j = i + 1 to t.n - 1 do
      acc := f !acc (get t i j)
    done
  done;
  !acc

let max_value t = fold Float.max 0. t

let mean_value t =
  let pairs = npairs t.n in
  if pairs = 0 then 0. else fold ( +. ) 0. t /. float_of_int pairs
