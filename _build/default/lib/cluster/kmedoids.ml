type result = { medoids : int array; assignment : int array; cost : float }

let assignment_cost m medoids =
  let n = Dist_matrix.size m in
  let assignment = Array.make n 0 in
  let cost = ref 0. in
  for i = 0 to n - 1 do
    let best = ref 0 and best_d = ref infinity in
    Array.iteri
      (fun mi medoid ->
        let d = Dist_matrix.get m i medoid in
        if d < !best_d then begin
          best := mi;
          best_d := d
        end)
      medoids;
    assignment.(i) <- !best;
    cost := !cost +. !best_d
  done;
  (assignment, !cost)

(* Greedy BUILD: first medoid minimizes total distance; each next medoid
   maximizes cost reduction. *)
let build m k =
  let n = Dist_matrix.size m in
  let chosen = ref [] in
  let current_d = Array.make n infinity in
  for _ = 1 to k do
    let best = ref (-1) and best_gain = ref neg_infinity in
    for cand = 0 to n - 1 do
      if not (List.mem cand !chosen) then begin
        let gain = ref 0. in
        for i = 0 to n - 1 do
          let d = Dist_matrix.get m i cand in
          if d < current_d.(i) then gain := !gain +. (current_d.(i) -. d)
        done;
        (* For the first medoid current_d is inf; use negative total. *)
        let gain =
          if !chosen = [] then
            -.Float.of_int 0 -. (let t = ref 0. in
                                 for i = 0 to n - 1 do t := !t +. Dist_matrix.get m i cand done;
                                 !t)
          else !gain
        in
        if gain > !best_gain then begin
          best_gain := gain;
          best := cand
        end
      end
    done;
    chosen := !best :: !chosen;
    for i = 0 to n - 1 do
      let d = Dist_matrix.get m i !best in
      if d < current_d.(i) then current_d.(i) <- d
    done
  done;
  Array.of_list (List.rev !chosen)

let cluster ~rng ~k ?(max_iterations = 30) m =
  ignore rng;
  let n = Dist_matrix.size m in
  if n = 0 then invalid_arg "Kmedoids.cluster: empty matrix";
  if k < 1 then invalid_arg "Kmedoids.cluster: k must be >= 1";
  let k = min k n in
  let medoids = ref (build m k) in
  let _, cost0 = assignment_cost m !medoids in
  let cost = ref cost0 in
  let improved = ref true in
  let iterations = ref 0 in
  while !improved && !iterations < max_iterations do
    improved := false;
    incr iterations;
    (* First-improvement SWAP. *)
    (try
       for mi = 0 to k - 1 do
         for cand = 0 to n - 1 do
           if not (Array.exists (Int.equal cand) !medoids) then begin
             let trial = Array.copy !medoids in
             trial.(mi) <- cand;
             let _, c = assignment_cost m trial in
             if c +. 1e-12 < !cost then begin
               medoids := trial;
               cost := c;
               improved := true;
               raise Exit
             end
           end
         done
       done
     with Exit -> ())
  done;
  let medoids = Array.copy !medoids in
  Array.sort compare medoids;
  let assignment, cost = assignment_cost m medoids in
  { medoids; assignment; cost }

let clusters r =
  let buckets = Array.make (Array.length r.medoids) [] in
  Array.iteri (fun i mi -> buckets.(mi) <- i :: buckets.(mi)) r.assignment;
  Array.to_list (Array.map (List.sort compare) buckets)
