(** Nearest-neighbor-chain agglomerative clustering.

    Produces the same hierarchy as {!Agglomerative.cluster} for {e reducible}
    linkages (group-average, single, complete — all three here) in O(n^2)
    time instead of the naive O(n^3) global-minimum scan.  The paper's N is
    small enough for either; this implementation exists so the library
    scales to larger samples, and the test suite uses the naive version as
    its oracle. *)

val cluster :
  ?linkage:Agglomerative.linkage -> Dist_matrix.t -> Dendrogram.t option
(** Same contract as {!Agglomerative.cluster}.  The dendrogram can differ
    from the naive algorithm's in tie-breaking and child order, but the
    multiset of merge heights is identical for reducible linkages. *)
