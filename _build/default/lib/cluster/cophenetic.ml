let matrix tree =
  let members = Dendrogram.members tree in
  let n = List.length members in
  if members <> List.init n Fun.id then
    invalid_arg "Cophenetic.matrix: leaves must be 0..n-1";
  let m = Dist_matrix.create n in
  (* Post-order walk: the LCA of any pair split across a node's children is
     that node, so fill their cophenetic distance with its height. *)
  let rec walk = function
    | Dendrogram.Leaf i -> [ i ]
    | Dendrogram.Node { left; right; height; _ } ->
      let ls = walk left and rs = walk right in
      List.iter (fun i -> List.iter (fun j -> Dist_matrix.set m i j height) rs) ls;
      ls @ rs
  in
  ignore (walk tree);
  m

let correlation original tree =
  let coph = matrix tree in
  let n = Dist_matrix.size original in
  if n <> Dist_matrix.size coph then
    invalid_arg "Cophenetic.correlation: size mismatch";
  let pairs = n * (n - 1) / 2 in
  if pairs < 2 then 0.
  else begin
    let xs = Array.make pairs 0. and ys = Array.make pairs 0. in
    let k = ref 0 in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        xs.(!k) <- Dist_matrix.get original i j;
        ys.(!k) <- Dist_matrix.get coph i j;
        incr k
      done
    done;
    let mean a = Array.fold_left ( +. ) 0. a /. float_of_int pairs in
    let mx = mean xs and my = mean ys in
    let sxy = ref 0. and sxx = ref 0. and syy = ref 0. in
    for i = 0 to pairs - 1 do
      let dx = xs.(i) -. mx and dy = ys.(i) -. my in
      sxy := !sxy +. (dx *. dy);
      sxx := !sxx +. (dx *. dx);
      syy := !syy +. (dy *. dy)
    done;
    if !sxx = 0. || !syy = 0. then 0. else !sxy /. sqrt (!sxx *. !syy)
  end
