(** Dendrograms — the nested-cluster structure produced by hierarchical
    clustering (the paper generates one signature per cluster of this tree,
    Sec. IV-E). *)

type t =
  | Leaf of int  (** Index of the clustered item. *)
  | Node of { left : t; right : t; height : float; size : int }
      (** [height] is the linkage distance at which the children merged. *)

val node : t -> t -> float -> t
val size : t -> int
val height : t -> float
(** 0 for leaves. *)

val members : t -> int list
(** Item indices, ascending. *)

val cut : threshold:float -> t -> t list
(** Maximal subtrees whose merge height is [<= threshold].  A higher
    threshold gives fewer, larger clusters; [cut ~threshold:infinity] is the
    whole tree. *)

val cut_into : int -> t -> t list
(** [cut_into k t] splits the highest merges until at least [k] subtrees
    exist (or only leaves remain). *)

val heights : t -> float list
(** All internal merge heights, root-first (pre-order). *)

val pp : Format.formatter -> t -> unit

val to_newick : ?label:(int -> string) -> t -> string
(** Newick serialization with branch lengths, e.g.
    [((0:0.50,1:0.50):1.25,2:1.75);] — loadable by standard tree viewers.
    Branch length of a child is the parent height minus the child height;
    [label] renders leaf names (default: the index). *)
