(** Longest common substrings.  Conjunction-signature generation (Sec. IV-E)
    needs the longest substring shared by {e every} packet in a cluster. *)

val pair : string -> string -> (int * int * int) option
(** [pair a b] is [Some (pos_a, pos_b, len)] describing a longest common
    substring of [a] and [b], or [None] when the strings share no character.
    Dynamic programming, O(|a|*|b|) time. *)

val pair_string : string -> string -> string
(** The longest common substring itself; [""] when there is none.  Uses a
    suffix automaton of the first string (O(|a| + |b|)); {!pair} is the
    quadratic dynamic program kept as the oracle. *)

val of_set : string list -> string
(** [of_set strings] is a longest substring common to every string in the
    list; [""] when the list is empty, any string is empty, or nothing is
    shared.  Implemented by binary search on the answer length with a rolling
    hash, verified with exact comparison, so hash collisions cannot produce a
    wrong answer. *)
