let pair a b =
  let m = String.length a and n = String.length b in
  if m = 0 || n = 0 then None
  else begin
    let prev = Array.make (n + 1) 0 in
    let cur = Array.make (n + 1) 0 in
    let best_len = ref 0 and best_i = ref 0 and best_j = ref 0 in
    for i = 1 to m do
      for j = 1 to n do
        if a.[i - 1] = b.[j - 1] then begin
          cur.(j) <- prev.(j - 1) + 1;
          if cur.(j) > !best_len then begin
            best_len := cur.(j);
            best_i := i - cur.(j);
            best_j := j - cur.(j)
          end
        end
        else cur.(j) <- 0
      done;
      Array.blit cur 0 prev 0 (n + 1)
    done;
    if !best_len = 0 then None else Some (!best_i, !best_j, !best_len)
  end

let pair_string a b =
  (* Suffix-automaton fast path: O(|a| + |b|) against the DP's O(|a|*|b|).
     The DP [pair] remains the oracle in the test suite. *)
  if a = "" || b = "" then ""
  else begin
    let sa = Suffix_automaton.build a in
    let pos, len = Suffix_automaton.longest_common_substring sa b in
    String.sub b pos len
  end

(* Rolling (polynomial) hash of every length-[len] window of [s].  The base
   is odd and the modulus is the native 63-bit int wraparound; collisions are
   possible but harmless because callers verify candidates exactly. *)
let window_hashes s len =
  let base = 1000003 in
  let n = String.length s in
  if len <= 0 || len > n then []
  else begin
    (* base^(len-1) for removing the outgoing character. *)
    let top = ref 1 in
    for _ = 2 to len do top := !top * base done;
    let h = ref 0 in
    for i = 0 to len - 1 do h := (!h * base) + Char.code s.[i] done;
    let out = ref [ (!h, 0) ] in
    for i = len to n - 1 do
      h := ((!h - (Char.code s.[i - len] * !top)) * base) + Char.code s.[i];
      out := (!h, i - len + 1) :: !out
    done;
    !out
  end

module Int_map = Map.Make (Int)

(* Is there a substring of length [len] common to all strings?  Returns a
   verified witness. *)
let common_of_length strings len =
  match strings with
  | [] -> None
  | first :: rest ->
    (* Candidate windows of the first string, keyed by hash. *)
    let candidates =
      List.fold_left
        (fun acc (h, pos) ->
          Int_map.update h
            (function None -> Some [ pos ] | Some l -> Some (pos :: l))
            acc)
        Int_map.empty (window_hashes first len)
    in
    let surviving =
      List.fold_left
        (fun cands s ->
          if Int_map.is_empty cands then cands
          else begin
            let seen = Hashtbl.create 256 in
            List.iter (fun (h, _) -> Hashtbl.replace seen h ()) (window_hashes s len);
            Int_map.filter (fun h _ -> Hashtbl.mem seen h) cands
          end)
        candidates rest
    in
    (* Hash survival is necessary but not sufficient: verify exactly. *)
    let verify pos =
      let w = String.sub first pos len in
      if List.for_all (fun s -> Search.contains ~needle:w s) rest then Some w
      else None
    in
    Int_map.fold
      (fun _ positions acc ->
        match acc with
        | Some _ -> acc
        | None -> List.find_map verify positions)
      surviving None

let of_set strings =
  match strings with
  | [] -> ""
  | _ when List.exists (fun s -> String.length s = 0) strings -> ""
  | strings ->
    let shortest = List.fold_left (fun m s -> min m (String.length s)) max_int strings in
    (* Binary search on the answer length: if a common substring of length L
       exists, one of every shorter length exists too. *)
    let best = ref "" in
    let lo = ref 1 and hi = ref shortest in
    while !lo <= !hi do
      let mid = (!lo + !hi) / 2 in
      match common_of_length strings mid with
      | Some w ->
        best := w;
        lo := mid + 1
      | None -> hi := mid - 1
    done;
    !best
