(** Suffix automaton (Blumer et al. / Crochemore's DAWG construction).

    Recognizes exactly the substrings of the string it was built from, in
    time linear in the query.  Token extraction computes longest common
    substrings over cluster contents; the automaton gives an O(|a| + |b|)
    pairwise LCS that {!Lcs} uses as a fast path, with the dynamic-programming
    implementation kept as the test oracle. *)

type t

val build : string -> t
(** Online construction, O(n) states and transitions over the byte
    alphabet. *)

val source_length : t -> int

val is_substring : t -> string -> bool
(** [is_substring t s] iff [s] occurs in the source string. *)

val longest_common_substring : t -> string -> int * int
(** [longest_common_substring t s] is [(pos_in_s, len)] of a longest
    substring of [s] that also occurs in the source; [(0, 0)] when they
    share nothing. *)

val count_distinct_substrings : t -> int
(** Number of distinct non-empty substrings of the source (a classic
    automaton corollary, exposed for testing the construction). *)
