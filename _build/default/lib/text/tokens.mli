(** Invariant-token extraction (Polygraph-style, Newsome et al. S&P'05, which
    the paper cites as the source of its conjunction signatures).

    Given the packets of one cluster, [extract] returns the ordered sequence
    of maximal substrings present in every packet: it finds the longest
    common substring, splits every packet around its first occurrence, and
    recurses on the left and right fragments.  The resulting token sequence
    is used both as a conjunction signature (unordered: all tokens must be
    present) and as an ordered token-subsequence signature. *)

val extract : ?min_len:int -> string list -> string list
(** [extract ~min_len strings] is the ordered invariant token sequence.
    Tokens shorter than [min_len] (default 2) are discarded, which prunes the
    1-byte noise tokens that would otherwise match everything.  Result is
    [[]] when [strings] is empty or shares nothing long enough. *)

val matches_all : tokens:string list -> string -> bool
(** Conjunction semantics: every token occurs somewhere in the packet. *)

val matches_ordered : tokens:string list -> string -> bool
(** Token-subsequence semantics: tokens occur in order, at non-overlapping
    positions. *)
