lib/text/search.ml: Array Option String
