lib/text/aho_corasick.mli:
