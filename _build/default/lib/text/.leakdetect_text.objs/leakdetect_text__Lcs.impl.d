lib/text/lcs.ml: Array Char Hashtbl Int List Map Search String Suffix_automaton
