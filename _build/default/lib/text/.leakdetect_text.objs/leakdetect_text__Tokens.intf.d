lib/text/tokens.mli:
