lib/text/trigram.ml: Char Float Hashtbl Int Map String
