lib/text/search.mli:
