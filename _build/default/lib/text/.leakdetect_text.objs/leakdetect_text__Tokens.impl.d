lib/text/tokens.ml: Lcs List Search String
