lib/text/suffix_automaton.mli:
