lib/text/trigram.mli:
