lib/text/lcs.mli:
