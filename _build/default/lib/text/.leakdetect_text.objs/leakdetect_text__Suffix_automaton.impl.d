lib/text/suffix_automaton.ml: Array Hashtbl String
