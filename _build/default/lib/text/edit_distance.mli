(** Levenshtein edit distance.  The paper defines the HTTP-host component of
    the destination distance as [ed(host_x, host_y) / max(len x, len y)]
    (Sec. IV-B). *)

val distance : string -> string -> int
(** Unit-cost insert/delete/substitute Levenshtein distance, O(|a|*|b|) time,
    O(min(|a|,|b|)) space. *)

val distance_bounded : cutoff:int -> string -> string -> int option
(** [distance_bounded ~cutoff a b] is [Some d] when [d <= cutoff], [None]
    otherwise; computed with a diagonal band so it costs
    O(cutoff * min(|a|,|b|)). *)

val normalized : string -> string -> float
(** [distance a b / max (len a) (len b)], the paper's [d_host].  Defined as 0
    when both strings are empty.  Result lies in [\[0, 1\]]. *)
