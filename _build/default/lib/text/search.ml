let failure_function needle =
  let m = String.length needle in
  let f = Array.make (max m 1) 0 in
  let k = ref 0 in
  for i = 1 to m - 1 do
    while !k > 0 && needle.[!k] <> needle.[i] do
      k := f.(!k - 1)
    done;
    if needle.[!k] = needle.[i] then incr k;
    f.(i) <- !k
  done;
  f

type compiled = { needle : string; fail : int array }

let compile needle = { needle; fail = failure_function needle }
let compiled_needle c = c.needle

let find { needle; fail } ?(from = 0) hay =
  let m = String.length needle and n = String.length hay in
  let from = max from 0 in
  if m = 0 then if from <= n then Some (min from n) else None
  else if from + m > n then None
  else begin
    let k = ref 0 in
    let result = ref None in
    (try
       for i = from to n - 1 do
         while !k > 0 && needle.[!k] <> hay.[i] do
           k := fail.(!k - 1)
         done;
         if needle.[!k] = hay.[i] then incr k;
         if !k = m then begin
           result := Some (i - m + 1);
           raise Exit
         end
       done
     with Exit -> ());
    !result
  end

let matches c hay = Option.is_some (find c hay)
let index ?from ~needle hay = find (compile needle) ?from hay
let contains ~needle hay = Option.is_some (index ~needle hay)

let count_occurrences ~needle hay =
  let m = String.length needle in
  if m = 0 then 0
  else
    let c = compile needle in
    let rec loop from acc =
      match find c ~from hay with
      | None -> acc
      | Some i -> loop (i + m) (acc + 1)
    in
    loop 0 0
