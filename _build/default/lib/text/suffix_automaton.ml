(* Standard online suffix-automaton construction.  States carry [len] (the
   longest string of the state), [link] (suffix link) and a byte-indexed
   transition table stored as a Hashtbl (the automata are built per cluster
   member, so sparse storage wins over 256-entry arrays). *)

type state = {
  mutable len : int;
  mutable link : int;
  trans : (char, int) Hashtbl.t;
}

type t = { mutable states : state array; mutable n_states : int; mutable last : int; src_len : int }

let mk_state len link = { len; link; trans = Hashtbl.create 4 }

let add_state t st =
  if t.n_states = Array.length t.states then begin
    let grown = Array.make (2 * t.n_states) st in
    Array.blit t.states 0 grown 0 t.n_states;
    t.states <- grown
  end;
  t.states.(t.n_states) <- st;
  t.n_states <- t.n_states + 1;
  t.n_states - 1

let extend t c =
  let cur = add_state t (mk_state (t.states.(t.last).len + 1) (-1)) in
  let p = ref t.last in
  while !p >= 0 && not (Hashtbl.mem t.states.(!p).trans c) do
    Hashtbl.replace t.states.(!p).trans c cur;
    p := t.states.(!p).link
  done;
  if !p < 0 then t.states.(cur).link <- 0
  else begin
    let q = Hashtbl.find t.states.(!p).trans c in
    if t.states.(q).len = t.states.(!p).len + 1 then t.states.(cur).link <- q
    else begin
      (* Clone q with the shorter length. *)
      let clone =
        add_state t
          { len = t.states.(!p).len + 1;
            link = t.states.(q).link;
            trans = Hashtbl.copy t.states.(q).trans }
      in
      while !p >= 0 && Hashtbl.find_opt t.states.(!p).trans c = Some q do
        Hashtbl.replace t.states.(!p).trans c clone;
        p := t.states.(!p).link
      done;
      t.states.(q).link <- clone;
      t.states.(cur).link <- clone
    end
  end;
  t.last <- cur

let build s =
  let t =
    { states = Array.make 16 (mk_state 0 (-1)); n_states = 0; last = 0;
      src_len = String.length s }
  in
  ignore (add_state t (mk_state 0 (-1)));
  String.iter (fun c -> extend t c) s;
  t

let source_length t = t.src_len

let is_substring t s =
  let state = ref 0 in
  let ok = ref true in
  String.iter
    (fun c ->
      if !ok then
        match Hashtbl.find_opt t.states.(!state).trans c with
        | Some next -> state := next
        | None -> ok := false)
    s;
  !ok

let longest_common_substring t s =
  (* Classic walk: keep the current match length; on a miss follow suffix
     links until a transition exists. *)
  let best_len = ref 0 and best_end = ref 0 in
  let state = ref 0 and len = ref 0 in
  String.iteri
    (fun i c ->
      let rec step () =
        match Hashtbl.find_opt t.states.(!state).trans c with
        | Some next ->
          state := next;
          incr len
        | None ->
          if t.states.(!state).link < 0 then len := 0
          else begin
            state := t.states.(!state).link;
            len := t.states.(!state).len;
            step ()
          end
      in
      step ();
      if !len > !best_len then begin
        best_len := !len;
        best_end := i + 1
      end)
    s;
  if !best_len = 0 then (0, 0) else (!best_end - !best_len, !best_len)

let count_distinct_substrings t =
  (* Sum over non-initial states of len(v) - len(link(v)). *)
  let total = ref 0 in
  for v = 1 to t.n_states - 1 do
    total := !total + t.states.(v).len - t.states.(t.states.(v).link).len
  done;
  !total
