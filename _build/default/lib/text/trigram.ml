module Int_map = Map.Make (Int)

type profile = { counts : int Int_map.t; norm : float }

let key s i =
  (Char.code s.[i] lsl 16) lor (Char.code s.[i + 1] lsl 8) lor Char.code s.[i + 2]

let profile s =
  let n = String.length s in
  let counts = ref Int_map.empty in
  for i = 0 to n - 3 do
    counts :=
      Int_map.update (key s i)
        (function None -> Some 1 | Some c -> Some (c + 1))
        !counts
  done;
  let norm =
    sqrt
      (Int_map.fold (fun _ c acc -> acc +. (float_of_int c *. float_of_int c)) !counts 0.)
  in
  { counts = !counts; norm }

let cardinality p = Int_map.cardinal p.counts

let cosine_similarity a b =
  if a.norm = 0. || b.norm = 0. then 0.
  else begin
    (* Iterate the smaller map. *)
    let small, large = if cardinality a <= cardinality b then (a, b) else (b, a) in
    let dot =
      Int_map.fold
        (fun k c acc ->
          match Int_map.find_opt k large.counts with
          | Some c' -> acc +. (float_of_int c *. float_of_int c')
          | None -> acc)
        small.counts 0.
    in
    dot /. (a.norm *. b.norm)
  end

let cosine_distance x y =
  let px = profile x and py = profile y in
  if px.norm = 0. && py.norm = 0. then 0.
  else if px.norm = 0. || py.norm = 0. then 1.
  else Float.max 0. (Float.min 1. (1. -. cosine_similarity px py))

module Cache = struct
  type t = (string, profile) Hashtbl.t

  let create () = Hashtbl.create 256

  let get t s =
    match Hashtbl.find_opt t s with
    | Some p -> p
    | None ->
      let p = profile s in
      Hashtbl.add t s p;
      p

  let distance t x y =
    let px = get t x and py = get t y in
    if px.norm = 0. && py.norm = 0. then 0.
    else if px.norm = 0. || py.norm = 0. then 1.
    else Float.max 0. (Float.min 1. (1. -. cosine_similarity px py))
end
