(** Exact substring search (Knuth-Morris-Pratt).  Signature matching scans
    every packet in the trace for every token of every signature, so this is
    the hottest primitive in the detector. *)

val index : ?from:int -> needle:string -> string -> int option
(** [index ?from ~needle hay] is the position of the first occurrence of
    [needle] in [hay] at or after [from].  The empty needle matches at
    [from] (clamped to the haystack length). *)

val contains : needle:string -> string -> bool

val count_occurrences : needle:string -> string -> int
(** Number of non-overlapping occurrences; 0 for the empty needle. *)

val failure_function : string -> int array
(** KMP failure function, exposed for testing.  [f.(i)] is the length of the
    longest proper border of [needle\[0..i\]]. *)

type compiled
(** A pre-processed needle, reusable across many haystacks. *)

val compile : string -> compiled
val compiled_needle : compiled -> string
val find : compiled -> ?from:int -> string -> int option
val matches : compiled -> string -> bool
