let split_around needle s =
  match Search.index ~needle s with
  | None -> None
  | Some i ->
    let l = String.sub s 0 i in
    let rpos = i + String.length needle in
    let r = String.sub s rpos (String.length s - rpos) in
    Some (l, r)

let rec extract_rec ~min_len ~depth strings =
  if depth > 64 then []
  else
    match strings with
    | [] -> []
    | _ ->
      let t = Lcs.of_set strings in
      if String.length t < min_len then []
      else begin
        let parts = List.filter_map (split_around t) strings in
        (* [Lcs.of_set] guarantees the token occurs in every string, so the
           split never loses a member. *)
        assert (List.length parts = List.length strings);
        let lefts = List.map fst parts and rights = List.map snd parts in
        extract_rec ~min_len ~depth:(depth + 1) lefts
        @ (t :: extract_rec ~min_len ~depth:(depth + 1) rights)
      end

let extract ?(min_len = 2) strings =
  if min_len < 1 then invalid_arg "Tokens.extract: min_len must be >= 1";
  extract_rec ~min_len ~depth:0 strings

let matches_all ~tokens s =
  List.for_all (fun t -> Search.contains ~needle:t s) tokens

let matches_ordered ~tokens s =
  let rec loop from = function
    | [] -> true
    | t :: rest -> (
      match Search.index ~from ~needle:t s with
      | None -> false
      | Some i -> loop (i + String.length t) rest)
  in
  loop 0 tokens
