let distance a b =
  (* Keep the shorter string as the row to bound memory. *)
  let a, b = if String.length a <= String.length b then (a, b) else (b, a) in
  let m = String.length a and n = String.length b in
  if m = 0 then n
  else begin
    let prev = Array.init (m + 1) (fun i -> i) in
    let cur = Array.make (m + 1) 0 in
    for j = 1 to n do
      cur.(0) <- j;
      for i = 1 to m do
        let cost = if a.[i - 1] = b.[j - 1] then 0 else 1 in
        cur.(i) <- min (min (cur.(i - 1) + 1) (prev.(i) + 1)) (prev.(i - 1) + cost)
      done;
      Array.blit cur 0 prev 0 (m + 1)
    done;
    prev.(m)
  end

let distance_bounded ~cutoff a b =
  if cutoff < 0 then invalid_arg "Edit_distance.distance_bounded: negative cutoff";
  let a, b = if String.length a <= String.length b then (a, b) else (b, a) in
  let m = String.length a and n = String.length b in
  if n - m > cutoff then None
  else begin
    let inf = max_int / 2 in
    let prev = Array.make (m + 1) inf in
    let cur = Array.make (m + 1) inf in
    for i = 0 to min m cutoff do prev.(i) <- i done;
    let exceeded = ref false in
    let j = ref 1 in
    while (not !exceeded) && !j <= n do
      Array.fill cur 0 (m + 1) inf;
      if !j <= cutoff then cur.(0) <- !j;
      let lo = max 1 (!j - cutoff) and hi = min m (!j + cutoff) in
      let row_min = ref inf in
      for i = lo to hi do
        let cost = if a.[i - 1] = b.[!j - 1] then 0 else 1 in
        let v = min (min (cur.(i - 1) + 1) (prev.(i) + 1)) (prev.(i - 1) + cost) in
        cur.(i) <- v;
        if v < !row_min then row_min := v
      done;
      if !j <= cutoff && cur.(0) < !row_min then row_min := cur.(0);
      if !row_min > cutoff then exceeded := true;
      Array.blit cur 0 prev 0 (m + 1);
      incr j
    done;
    if !exceeded then None
    else if prev.(m) <= cutoff then Some prev.(m)
    else None
  end

let normalized a b =
  let la = String.length a and lb = String.length b in
  if la = 0 && lb = 0 then 0.
  else float_of_int (distance a b) /. float_of_int (max la lb)
