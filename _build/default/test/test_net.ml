(* Tests for Leakdetect_net: IPv4, domains, URLs. *)

open Leakdetect_net

let qtest = QCheck_alcotest.to_alcotest

(* --- Ipv4 --- *)

let test_ipv4_parse_print () =
  Alcotest.(check (option string)) "roundtrip" (Some "10.20.30.40")
    (Option.map Ipv4.to_string (Ipv4.of_string "10.20.30.40"));
  Alcotest.(check bool) "bad octet" true (Ipv4.of_string "256.1.1.1" = None);
  Alcotest.(check bool) "too few parts" true (Ipv4.of_string "1.2.3" = None);
  Alcotest.(check bool) "garbage" true (Ipv4.of_string "a.b.c.d" = None);
  Alcotest.(check bool) "empty part" true (Ipv4.of_string "1..2.3" = None)

let prop_ipv4_roundtrip =
  QCheck.Test.make ~name:"ipv4 of_int/to_string/of_string roundtrip" ~count:500
    QCheck.(int_bound ((1 lsl 32) - 1))
    (fun v ->
      let ip = Ipv4.of_int v in
      Ipv4.of_string (Ipv4.to_string ip) = Some ip)

let test_ipv4_of_int_bounds () =
  Alcotest.check_raises "negative" (Invalid_argument "Ipv4.of_int: out of range")
    (fun () -> ignore (Ipv4.of_int (-1)))

let test_lmatch_known () =
  let ip = Ipv4.of_octets in
  Alcotest.(check int) "identical" 32 (Ipv4.lmatch (ip 1 2 3 4) (ip 1 2 3 4));
  Alcotest.(check int) "first bit differs" 0 (Ipv4.lmatch (ip 128 0 0 0) (ip 0 0 0 0));
  Alcotest.(check int) "same /24" 24 (Ipv4.lmatch (ip 10 0 0 1) (ip 10 0 0 129));
  Alcotest.(check int) "same /16" 16 (Ipv4.lmatch (ip 10 0 1 0) (ip 10 0 129 0))

let prop_lmatch_symmetry =
  let gen = QCheck.Gen.(pair (int_bound ((1 lsl 32) - 1)) (int_bound ((1 lsl 32) - 1))) in
  QCheck.Test.make ~name:"lmatch symmetric and bounded" ~count:500 (QCheck.make gen)
    (fun (a, b) ->
      let x = Ipv4.of_int a and y = Ipv4.of_int b in
      let m = Ipv4.lmatch x y in
      m = Ipv4.lmatch y x && m >= 0 && m <= 32 && (m = 32) = Ipv4.equal x y)

let test_similarity () =
  let ip = Ipv4.of_octets in
  Alcotest.(check (float 1e-9)) "identical" 1. (Ipv4.similarity (ip 1 1 1 1) (ip 1 1 1 1));
  Alcotest.(check (float 1e-9)) "same /16" 0.5 (Ipv4.similarity (ip 10 1 0 0) (ip 10 1 255 0))

let test_in_block () =
  let base = Ipv4.of_octets 74 125 0 0 in
  let a = Ipv4.in_block ~base ~prefix:16 5 in
  Alcotest.(check bool) "stays in block" true (Ipv4.lmatch base a >= 16);
  Alcotest.(check string) "host bits" "74.125.0.5" (Ipv4.to_string a)

(* --- Domain --- *)

let test_registrable () =
  Alcotest.(check string) "co.jp" "example.co.jp" (Domain.registrable "ads.example.co.jp");
  Alcotest.(check string) "plain com" "admob.com" (Domain.registrable "r.admob.com");
  Alcotest.(check string) "deep com" "doubleclick.net"
    (Domain.registrable "googleads.g.doubleclick.net");
  Alcotest.(check string) "already registrable" "nend.net" (Domain.registrable "nend.net");
  Alcotest.(check string) "single label unchanged" "localhost" (Domain.registrable "localhost")

let test_domain_validity () =
  Alcotest.(check bool) "valid" true (Domain.is_valid "r.ad-maker.info");
  Alcotest.(check bool) "single label" false (Domain.is_valid "localhost");
  Alcotest.(check bool) "empty label" false (Domain.is_valid "a..b");
  Alcotest.(check bool) "leading hyphen" false (Domain.is_valid "-x.com")

let test_domain_distance () =
  Alcotest.(check (float 1e-9)) "same host, case folded" 0.
    (Domain.normalized_edit_distance "AdMob.com" "admob.com");
  let near = Domain.normalized_edit_distance "r.admob.com" "mm.admob.com" in
  let far = Domain.normalized_edit_distance "r.admob.com" "sp.ad.adlantis.jp" in
  Alcotest.(check bool) "related hosts closer" true (near < far)

(* --- Url --- *)

let test_percent_encode () =
  Alcotest.(check string) "space" "a%20b" (Url.percent_encode "a b");
  Alcotest.(check string) "unreserved kept" "a-b_c.d~e" (Url.percent_encode "a-b_c.d~e");
  Alcotest.(check string) "reserved" "a%2Fb%3Dc%26d" (Url.percent_encode "a/b=c&d")

let test_percent_decode () =
  Alcotest.(check (option string)) "plus" (Some "a b") (Url.percent_decode "a+b");
  Alcotest.(check (option string)) "truncated escape" None (Url.percent_decode "abc%2");
  Alcotest.(check (option string)) "bad hex" None (Url.percent_decode "%zz")

let prop_url_roundtrip =
  QCheck.Test.make ~name:"percent encode/decode roundtrip" ~count:500
    QCheck.(string_of_size Gen.(0 -- 60))
    (fun s -> Url.percent_decode (Url.percent_encode s) = Some s)

let prop_query_roundtrip =
  let key_gen = QCheck.Gen.(string_size ~gen:(oneofl [ 'a'; 'b'; 'k' ]) (1 -- 5)) in
  let val_gen = QCheck.Gen.(string_size ~gen:(map Char.chr (int_range 32 126)) (0 -- 12)) in
  QCheck.Test.make ~name:"query string roundtrip" ~count:300
    (QCheck.make QCheck.Gen.(list_size (0 -- 6) (pair key_gen val_gen)))
    (fun params ->
      match Url.decode_query (Url.encode_query params) with
      | Some decoded -> decoded = params
      | None -> params = [] && Url.encode_query params = "")

let test_query_edge_cases () =
  Alcotest.(check (option (list (pair string string)))) "empty" (Some [])
    (Url.decode_query "");
  Alcotest.(check (option (list (pair string string)))) "bare key"
    (Some [ ("k", "") ])
    (Url.decode_query "k");
  Alcotest.(check (option (list (pair string string)))) "two pairs"
    (Some [ ("a", "1"); ("b", "2") ])
    (Url.decode_query "a=1&b=2")

let test_split_path_query () =
  Alcotest.(check (pair string string)) "with query" ("/a/b", "x=1&y=2")
    (Url.split_path_query "/a/b?x=1&y=2");
  Alcotest.(check (pair string string)) "no query" ("/a", "") (Url.split_path_query "/a")

let suite =
  [
    ( "net.ipv4",
      [
        Alcotest.test_case "parse/print" `Quick test_ipv4_parse_print;
        Alcotest.test_case "of_int bounds" `Quick test_ipv4_of_int_bounds;
        Alcotest.test_case "lmatch known" `Quick test_lmatch_known;
        Alcotest.test_case "similarity" `Quick test_similarity;
        Alcotest.test_case "in_block" `Quick test_in_block;
        qtest prop_ipv4_roundtrip;
        qtest prop_lmatch_symmetry;
      ] );
    ( "net.domain",
      [
        Alcotest.test_case "registrable" `Quick test_registrable;
        Alcotest.test_case "validity" `Quick test_domain_validity;
        Alcotest.test_case "distance" `Quick test_domain_distance;
      ] );
    ( "net.url",
      [
        Alcotest.test_case "percent encode" `Quick test_percent_encode;
        Alcotest.test_case "percent decode" `Quick test_percent_decode;
        Alcotest.test_case "query edge cases" `Quick test_query_edge_cases;
        Alcotest.test_case "split path/query" `Quick test_split_path_query;
        qtest prop_url_roundtrip;
        qtest prop_query_roundtrip;
      ] );
  ]
