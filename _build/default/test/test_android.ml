(* Tests for Leakdetect_android: device model, permissions, ad-module
   catalog, workload generator and trace statistics. *)

open Leakdetect_android
module Sensitive = Leakdetect_core.Sensitive
module Packet = Leakdetect_http.Packet
module Prng = Leakdetect_util.Prng

let qtest = QCheck_alcotest.to_alcotest

(* --- Device --- *)

let test_device_formats () =
  let d = Device.create (Prng.create 1) in
  Alcotest.(check int) "imei 15 digits" 15 (String.length d.Device.imei);
  Alcotest.(check bool) "imei digits" true
    (String.for_all (fun c -> c >= '0' && c <= '9') d.Device.imei);
  Alcotest.(check bool) "imei luhn valid" true (Device.luhn_valid d.Device.imei);
  Alcotest.(check int) "imsi 15 digits" 15 (String.length d.Device.imsi);
  Alcotest.(check string) "imsi japanese mcc" "440" (String.sub d.Device.imsi 0 3);
  Alcotest.(check int) "sim serial 19 digits" 19 (String.length d.Device.sim_serial);
  Alcotest.(check string) "iccid prefix" "8981" (String.sub d.Device.sim_serial 0 4);
  Alcotest.(check int) "android id 16 hex" 16 (String.length d.Device.android_id);
  Alcotest.(check bool) "android id is hex" true (Leakdetect_util.Hex.is_hex d.Device.android_id);
  Alcotest.(check bool) "carrier known" true
    (Array.exists (String.equal d.Device.carrier) Device.carriers)

let test_luhn () =
  Alcotest.(check bool) "valid number" true (Device.luhn_valid "79927398713");
  Alcotest.(check bool) "invalid number" false (Device.luhn_valid "79927398714");
  Alcotest.(check bool) "non-digits" false (Device.luhn_valid "7992739871a")

let test_device_values () =
  let d = Device.create (Prng.create 2) in
  Alcotest.(check string) "raw imei" d.Device.imei (Device.value d Sensitive.Imei);
  Alcotest.(check string) "md5 of imei"
    (Leakdetect_crypto.Md5.hex d.Device.imei)
    (Device.value d Sensitive.Imei_md5);
  Alcotest.(check string) "sha1 of android id"
    (Leakdetect_crypto.Sha1.hex d.Device.android_id)
    (Device.value d Sensitive.Android_id_sha1);
  Alcotest.(check string) "carrier" d.Device.carrier (Device.value d Sensitive.Carrier)

let test_device_needles_complete () =
  let d = Device.create (Prng.create 3) in
  let ns = Device.needles d in
  Alcotest.(check int) "all nine kinds" 9 (List.length ns);
  List.iter (fun (_, needle) -> Alcotest.(check bool) "non-empty" true (needle <> "")) ns

let test_device_determinism () =
  let d1 = Device.create (Prng.create 7) and d2 = Device.create (Prng.create 7) in
  Alcotest.(check string) "same seed, same imei" d1.Device.imei d2.Device.imei

(* --- Permissions --- *)

let test_table1_rows () =
  let total = List.fold_left (fun acc (_, c) -> acc + c) 0 Permissions.table1_rows in
  Alcotest.(check int) "sums to population" 1188 total;
  let counts = List.map snd Permissions.table1_rows in
  Alcotest.(check (list int)) "paper counts first" [ 302; 329; 153; 148; 23; 233 ] counts

let test_population_exact () =
  let pop = Permissions.population (Prng.create 11) in
  Alcotest.(check int) "size" 1188 (Array.length pop);
  let count combo = Array.fold_left (fun acc c -> if c = combo then acc + 1 else acc) 0 pop in
  List.iter
    (fun (combo, expected) -> Alcotest.(check int) "row count exact" expected (count combo))
    Permissions.table1_rows

let test_dangerous () =
  let c = { Permissions.internet = true; location = false; phone_state = true; contacts = false } in
  Alcotest.(check bool) "internet+phone_state" true (Permissions.dangerous c);
  let benign = { c with Permissions.phone_state = false } in
  Alcotest.(check bool) "internet only" false (Permissions.dangerous benign)

let test_allows_kind () =
  let ps = { Permissions.internet = true; location = false; phone_state = true; contacts = false } in
  let no_ps = { ps with Permissions.phone_state = false } in
  Alcotest.(check bool) "imei with PS" true (Permissions.allows_kind ps Sensitive.Imei);
  Alcotest.(check bool) "imei without PS" false (Permissions.allows_kind no_ps Sensitive.Imei);
  Alcotest.(check bool) "imei hash follows imei" false
    (Permissions.allows_kind no_ps Sensitive.Imei_md5);
  Alcotest.(check bool) "android id free" true (Permissions.allows_kind no_ps Sensitive.Android_id);
  Alcotest.(check bool) "carrier free" true (Permissions.allows_kind no_ps Sensitive.Carrier)

let test_pattern () =
  let c = { Permissions.internet = true; location = true; phone_state = false; contacts = false } in
  Alcotest.(check string) "pattern" "X X - -" (Permissions.pattern c)

(* --- Ad_module --- *)

let test_catalog_invariants () =
  let names = List.map (fun f -> f.Ad_module.name) Ad_module.catalog in
  Alcotest.(check int) "unique names" (List.length names)
    (List.length (List.sort_uniq compare names));
  List.iter
    (fun f ->
      Alcotest.(check bool) (f.Ad_module.name ^ " has hosts") true
        (Array.length f.Ad_module.hosts > 0);
      Alcotest.(check bool) (f.Ad_module.name ^ " apps target positive") true
        (f.Ad_module.target_apps > 0);
      Alcotest.(check bool) (f.Ad_module.name ^ " rate in [0,1]") true
        (f.Ad_module.sensitive_rate >= 0. && f.Ad_module.sensitive_rate <= 1.);
      Array.iter
        (fun h ->
          Alcotest.(check bool) (h ^ " valid fqdn") true (Leakdetect_net.Domain.is_valid h))
        f.Ad_module.hosts)
    Ad_module.catalog

let test_catalog_covers_table2 () =
  (* Every Table II service the paper names must be in the catalog. *)
  List.iter
    (fun name ->
      Alcotest.(check bool) name true (Option.is_some (Ad_module.find name)))
    [
      "doubleclick.net"; "admob.com"; "google-analytics.com"; "gstatic.com";
      "google.com"; "yahoo.co.jp"; "ggpht.com"; "googlesyndication.com";
      "ad-maker.info"; "nend.net"; "mydas.mobi"; "amoad.com"; "flurry.com";
      "microad.jp"; "adwhirl.com"; "i-mobile.co.jp"; "adlantis.jp"; "naver.jp";
      "adimg.net"; "mbga.jp"; "rakuten.co.jp"; "fc2.com"; "medibaad.com";
      "mediba.jp"; "mobclix.com"; "gree.jp"; "zqapk.com";
    ]

let test_host_ip_in_block () =
  let f = Option.get (Ad_module.find "admob.com") in
  Array.iter
    (fun host ->
      let ip = Ad_module.host_ip f host in
      let a, b = f.Ad_module.ip_octets in
      let base = Leakdetect_net.Ipv4.of_octets a b 0 0 in
      Alcotest.(check bool) (host ^ " in /16") true (Leakdetect_net.Ipv4.lmatch base ip >= 16))
    f.Ad_module.hosts;
  (* deterministic *)
  Alcotest.(check bool) "stable mapping" true
    (Leakdetect_net.Ipv4.equal
       (Ad_module.host_ip f "r.admob.com")
       (Ad_module.host_ip f "r.admob.com"))

let full_permissions =
  { Permissions.internet = true; location = true; phone_state = true; contacts = true }

let render_ctx () =
  { Ad_module.package = "jp.co.testapp"; permissions = full_permissions; counter = ref 0 }

let test_render_basic () =
  let rng = Prng.create 5 in
  let device = Device.create rng in
  let f = Option.get (Ad_module.find "ad-maker.info") in
  let p = Ad_module.render rng device (render_ctx ()) f in
  Alcotest.(check bool) "host from family" true
    (Array.exists (String.equal p.Packet.dst.Packet.host) f.Ad_module.hosts);
  Alcotest.(check int) "port" 80 p.Packet.dst.Packet.port;
  Alcotest.(check bool) "request line wellformed" true
    (Leakdetect_text.Search.contains ~needle:" HTTP/1.1" p.Packet.content.Packet.request_line)

let test_render_sticky_host () =
  let rng = Prng.create 6 in
  let device = Device.create rng in
  let f = Option.get (Ad_module.find "doubleclick.net") in
  for _ = 1 to 20 do
    let p = Ad_module.render ~host:"ad.doubleclick.net" rng device (render_ctx ()) f in
    Alcotest.(check string) "pinned host" "ad.doubleclick.net" p.Packet.dst.Packet.host
  done

let test_render_respects_permissions () =
  let rng = Prng.create 7 in
  let device = Device.create rng in
  let no_ps = { full_permissions with Permissions.phone_state = false } in
  let ctx = { Ad_module.package = "jp.co.x"; permissions = no_ps; counter = ref 0 } in
  let f = Option.get (Ad_module.find "ad-maker.info") in
  (* Render many packets: the IMEI must never appear without phone-state. *)
  for _ = 1 to 50 do
    let p = Ad_module.render rng device ctx f in
    Alcotest.(check bool) "no imei leak" false
      (Leakdetect_text.Search.contains ~needle:device.Device.imei
         (Packet.content_string p))
  done

let test_render_sensitive_rate_extremes () =
  let rng = Prng.create 8 in
  let device = Device.create rng in
  let f = Option.get (Ad_module.find "google-analytics.com") in
  (* sensitive_rate is 0: no identifier may ever appear. *)
  for _ = 1 to 30 do
    let p = Ad_module.render rng device (render_ctx ()) f in
    Alcotest.(check bool) "analytics stays clean" false
      (Leakdetect_text.Search.contains ~needle:device.Device.android_id
         (Packet.content_string p))
  done

let test_render_post_body () =
  let rng = Prng.create 9 in
  let device = Device.create rng in
  let f = Option.get (Ad_module.find "flurry.com") in
  let seen_body = ref false in
  for _ = 1 to 20 do
    let p = Ad_module.render rng device (render_ctx ()) f in
    if String.length p.Packet.content.Packet.body > 0 then seen_body := true;
    Alcotest.(check bool) "POST request line" true
      (String.length p.Packet.content.Packet.request_line >= 4
      && String.sub p.Packet.content.Packet.request_line 0 4 = "POST")
  done;
  Alcotest.(check bool) "bodies produced" true !seen_body

(* --- Workload --- *)

let small_dataset = lazy (Workload.generate ~seed:21 ~scale:0.02 ())

let test_workload_app_count () =
  let ds = Lazy.force small_dataset in
  Alcotest.(check int) "1188 apps" 1188 (Array.length ds.Workload.apps)

let test_workload_labels_consistent () =
  (* Labels stored in the trace must equal a fresh payload-check scan. *)
  let ds = Lazy.force small_dataset in
  Array.iteri
    (fun i r ->
      if i mod 37 = 0 then
        let fresh =
          List.map Sensitive.to_string
            (Leakdetect_core.Payload_check.scan ds.Workload.payload_check
               r.Leakdetect_http.Trace.packet)
        in
        Alcotest.(check (list string)) "labels match rescan" fresh
          r.Leakdetect_http.Trace.labels)
    ds.Workload.records

let test_workload_split_partition () =
  let ds = Lazy.force small_dataset in
  let suspicious, normal = Workload.split ds in
  Alcotest.(check int) "partition"
    (Array.length ds.Workload.records)
    (Array.length suspicious + Array.length normal);
  Alcotest.(check int) "sensitive count agrees"
    (Workload.sensitive_count ds) (Array.length suspicious)

let test_workload_determinism () =
  let a = Workload.generate ~seed:33 ~scale:0.01 () in
  let b = Workload.generate ~seed:33 ~scale:0.01 () in
  Alcotest.(check int) "same record count" (Array.length a.Workload.records)
    (Array.length b.Workload.records);
  Array.iteri
    (fun i r ->
      Alcotest.(check string) "same content"
        (Packet.content_string r.Leakdetect_http.Trace.packet)
        (Packet.content_string b.Workload.records.(i).Leakdetect_http.Trace.packet))
    a.Workload.records

let test_workload_seed_changes_trace () =
  let a = Workload.generate ~seed:1 ~scale:0.01 () in
  let b = Workload.generate ~seed:2 ~scale:0.01 () in
  Alcotest.(check bool) "different devices" true
    (a.Workload.device.Device.imei <> b.Workload.device.Device.imei)

let test_workload_n_apps () =
  let ds = Workload.generate ~seed:3 ~scale:0.02 ~n_apps:100 () in
  Alcotest.(check int) "truncated population" 100 (Array.length ds.Workload.apps)

let test_workload_app_ids_valid () =
  let ds = Lazy.force small_dataset in
  Array.iter
    (fun r ->
      let id = r.Leakdetect_http.Trace.app_id in
      if id < 0 || id >= Array.length ds.Workload.apps then
        Alcotest.failf "app id out of range: %d" id)
    ds.Workload.records

let test_workload_sensitive_share () =
  (* At tiny scale the sensitive share runs higher than the full-trace 22%
     because module traffic has a per-module floor of one packet; just pin
     it to a sane band. *)
  let ds = Lazy.force small_dataset in
  let total, sens, _ = Trace_stats.totals ds in
  let share = float_of_int sens /. float_of_int total in
  Alcotest.(check bool) "share within band" true (share > 0.05 && share < 0.6)

(* --- Trace_stats --- *)

let test_stats_table1 () =
  let ds = Lazy.force small_dataset in
  let rows = Trace_stats.table1 ds in
  let total = List.fold_left (fun acc r -> acc + r.Trace_stats.count) 0 rows in
  Alcotest.(check int) "all apps counted" 1188 total;
  let top = List.hd rows in
  Alcotest.(check int) "largest row is I+PS" 329 top.Trace_stats.count

let test_stats_table2 () =
  let ds = Lazy.force small_dataset in
  let rows : Trace_stats.dest_row list = Trace_stats.table2 ds in
  let total_pkts =
    List.fold_left (fun acc (r : Trace_stats.dest_row) -> acc + r.Trace_stats.packets) 0 rows
  in
  Alcotest.(check int) "every packet attributed" (Array.length ds.Workload.records) total_pkts;
  List.iter
    (fun (r : Trace_stats.dest_row) ->
      Alcotest.(check bool) "apps positive" true (r.Trace_stats.apps > 0);
      Alcotest.(check bool) "apps bounded" true (r.Trace_stats.apps <= 1188))
    rows;
  let top = Trace_stats.table2_top ~n:5 ds in
  Alcotest.(check int) "top-n size" 5 (List.length top)

let test_stats_table3 () =
  let ds = Lazy.force small_dataset in
  let rows : Trace_stats.kind_row list = Trace_stats.table3 ds in
  Alcotest.(check int) "nine rows" 9 (List.length rows);
  List.iter
    (fun (r : Trace_stats.kind_row) ->
      if r.Trace_stats.packets > 0 then begin
        Alcotest.(check bool) "apps positive when packets exist" true (r.Trace_stats.apps > 0);
        Alcotest.(check bool) "dests positive when packets exist" true
          (r.Trace_stats.destinations > 0)
      end)
    rows;
  (* The headline kinds must actually occur. *)
  let packets_of kind =
    (List.find (fun r -> r.Trace_stats.kind = kind) rows).Trace_stats.packets
  in
  Alcotest.(check bool) "android id seen" true (packets_of Sensitive.Android_id > 0);
  Alcotest.(check bool) "android id md5 seen" true (packets_of Sensitive.Android_id_md5 > 0);
  Alcotest.(check bool) "imei seen" true (packets_of Sensitive.Imei > 0);
  Alcotest.(check bool) "carrier seen" true (packets_of Sensitive.Carrier > 0)

let test_stats_dangerous () =
  let ds = Lazy.force small_dataset in
  let d = Trace_stats.dangerous ds in
  (* 886 apps carry INTERNET plus a sensitive permission by construction of
     Table I (329 + 153 + 148 + 23 + 233). *)
  Alcotest.(check int) "dangerous combination count" 886 d.Trace_stats.dangerous_apps;
  Alcotest.(check bool) "some apps leak" true (d.Trace_stats.leaking_apps > 0);
  Alcotest.(check bool) "permission auditing misses some leakers" true
    (d.Trace_stats.leaking_without_dangerous > 0);
  Alcotest.(check bool) "leakers bounded by population" true
    (d.Trace_stats.leaking_apps <= 1188)

let test_stats_figure2 () =
  let ds = Lazy.force small_dataset in
  let f2 = Trace_stats.figure2 ds in
  Alcotest.(check bool) "apps with traffic" true (f2.Trace_stats.total_apps > 1000);
  Alcotest.(check bool) "mean in plausible band" true
    (f2.Trace_stats.mean > 4. && f2.Trace_stats.mean < 12.);
  Alcotest.(check bool) "max below cap" true (f2.Trace_stats.max <= 84);
  Alcotest.(check bool) "cdf monotone" true
    (f2.Trace_stats.one_destination <= f2.Trace_stats.within_10
    && f2.Trace_stats.within_10 <= f2.Trace_stats.within_16)

let suite =
  [
    ( "android.device",
      [
        Alcotest.test_case "identifier formats" `Quick test_device_formats;
        Alcotest.test_case "luhn" `Quick test_luhn;
        Alcotest.test_case "kind values" `Quick test_device_values;
        Alcotest.test_case "needles complete" `Quick test_device_needles_complete;
        Alcotest.test_case "determinism" `Quick test_device_determinism;
      ] );
    ( "android.permissions",
      [
        Alcotest.test_case "table1 rows" `Quick test_table1_rows;
        Alcotest.test_case "population exact" `Quick test_population_exact;
        Alcotest.test_case "dangerous combos" `Quick test_dangerous;
        Alcotest.test_case "allows_kind" `Quick test_allows_kind;
        Alcotest.test_case "pattern" `Quick test_pattern;
      ] );
    ( "android.ad_module",
      [
        Alcotest.test_case "catalog invariants" `Quick test_catalog_invariants;
        Alcotest.test_case "covers Table II services" `Quick test_catalog_covers_table2;
        Alcotest.test_case "host ip in block" `Quick test_host_ip_in_block;
        Alcotest.test_case "render basic" `Quick test_render_basic;
        Alcotest.test_case "sticky host" `Quick test_render_sticky_host;
        Alcotest.test_case "respects permissions" `Quick test_render_respects_permissions;
        Alcotest.test_case "rate-zero module stays clean" `Quick test_render_sensitive_rate_extremes;
        Alcotest.test_case "POST bodies" `Quick test_render_post_body;
      ] );
    ( "android.workload",
      [
        Alcotest.test_case "app count" `Quick test_workload_app_count;
        Alcotest.test_case "labels consistent" `Quick test_workload_labels_consistent;
        Alcotest.test_case "split partition" `Quick test_workload_split_partition;
        Alcotest.test_case "determinism" `Quick test_workload_determinism;
        Alcotest.test_case "seed sensitivity" `Quick test_workload_seed_changes_trace;
        Alcotest.test_case "n_apps" `Quick test_workload_n_apps;
        Alcotest.test_case "app ids valid" `Quick test_workload_app_ids_valid;
        Alcotest.test_case "sensitive share" `Quick test_workload_sensitive_share;
      ] );
    ( "android.trace_stats",
      [
        Alcotest.test_case "table1" `Quick test_stats_table1;
        Alcotest.test_case "table2" `Quick test_stats_table2;
        Alcotest.test_case "table3" `Quick test_stats_table3;
        Alcotest.test_case "dangerous combinations" `Quick test_stats_dangerous;
        Alcotest.test_case "figure2" `Quick test_stats_figure2;
      ] );
  ]

let _ = qtest
