(* Tests for Leakdetect_crypto: MD5 against the stdlib implementation and
   SHA-1 against the RFC 3174 / FIPS-180 vectors. *)

open Leakdetect_crypto

let qtest = QCheck_alcotest.to_alcotest

let test_md5_vectors () =
  (* RFC 1321 appendix A.5 test suite. *)
  let cases =
    [
      ("", "d41d8cd98f00b204e9800998ecf8427e");
      ("a", "0cc175b9c0f1b6a831c399e269772661");
      ("abc", "900150983cd24fb0d6963f7d28e17f72");
      ("message digest", "f96b697d7cb7938d525a2f31aaf161d0");
      ("abcdefghijklmnopqrstuvwxyz", "c3fcd3d76192e4007dfb496cca67e13b");
      ( "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789",
        "d174ab98d277d9f5a5611c2c9f419d9f" );
      ( "12345678901234567890123456789012345678901234567890123456789012345678901234567890",
        "57edf4a22be3c955ac49da2e2107b67a" );
    ]
  in
  List.iter (fun (input, expected) -> Alcotest.(check string) input expected (Md5.hex input)) cases

let prop_md5_matches_stdlib =
  QCheck.Test.make ~name:"MD5 agrees with stdlib Digest" ~count:500
    QCheck.(string_of_size Gen.(0 -- 200))
    (fun s -> Md5.hex s = Digest.to_hex (Digest.string s))

let test_md5_block_boundaries () =
  (* Lengths around the 64-byte block and 56-byte padding boundaries. *)
  List.iter
    (fun n ->
      let s = String.make n 'x' in
      Alcotest.(check string)
        (Printf.sprintf "len %d" n)
        (Digest.to_hex (Digest.string s))
        (Md5.hex s))
    [ 0; 1; 55; 56; 57; 63; 64; 65; 119; 120; 121; 128; 1000 ]

let test_sha1_vectors () =
  let cases =
    [
      ("", "da39a3ee5e6b4b0d3255bfef95601890afd80709");
      ("abc", "a9993e364706816aba3e25717850c26c9cd0d89d");
      ( "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
        "84983e441c3bd26ebaae4aa1f95129e5e54670f1" );
      ("The quick brown fox jumps over the lazy dog",
       "2fd4e1c67a2d28fced849ee1bb76e7391b93eb12");
    ]
  in
  List.iter (fun (input, expected) -> Alcotest.(check string) input expected (Sha1.hex input)) cases

let test_sha1_million_a () =
  (* FIPS 180 long vector: one million 'a' characters. *)
  Alcotest.(check string) "1e6 x a" "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
    (Sha1.hex (String.make 1_000_000 'a'))

let test_sha1_block_boundaries () =
  (* The digest must differ across close lengths (regression guard for
     padding bugs that collapse nearby inputs). *)
  let digests = List.map (fun n -> Sha1.hex (String.make n 'y')) [ 55; 56; 57; 63; 64; 65 ] in
  let distinct = List.sort_uniq compare digests in
  Alcotest.(check int) "all distinct" (List.length digests) (List.length distinct)

let prop_digest_lengths =
  QCheck.Test.make ~name:"digest lengths are fixed" ~count:200
    QCheck.(string_of_size Gen.(0 -- 100))
    (fun s ->
      String.length (Md5.digest s) = 16
      && String.length (Sha1.digest s) = 20
      && String.length (Md5.hex s) = 32
      && String.length (Sha1.hex s) = 40)

let prop_sha1_injective_sample =
  QCheck.Test.make ~name:"SHA-1 distinguishes distinct short strings" ~count:300
    QCheck.(pair (string_of_size Gen.(0 -- 30)) (string_of_size Gen.(0 -- 30)))
    (fun (a, b) -> a = b || Sha1.hex a <> Sha1.hex b)

let suite =
  [
    ( "crypto.md5",
      [
        Alcotest.test_case "RFC 1321 vectors" `Quick test_md5_vectors;
        Alcotest.test_case "block boundaries" `Quick test_md5_block_boundaries;
        qtest prop_md5_matches_stdlib;
      ] );
    ( "crypto.sha1",
      [
        Alcotest.test_case "RFC 3174 vectors" `Quick test_sha1_vectors;
        Alcotest.test_case "million a" `Slow test_sha1_million_a;
        Alcotest.test_case "block boundaries" `Quick test_sha1_block_boundaries;
        qtest prop_digest_lengths;
        qtest prop_sha1_injective_sample;
      ] );
  ]
