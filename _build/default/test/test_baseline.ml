(* Tests for Leakdetect_baseline and an integration comparison against the
   paper pipeline. *)

module Baseline = Leakdetect_baseline.Baseline
module Metrics = Leakdetect_core.Metrics
module Packet = Leakdetect_http.Packet
module Ipv4 = Leakdetect_net.Ipv4
module Prng = Leakdetect_util.Prng

let mk ?(host = "r.ad-maker.info") rline =
  Packet.v
    ~ip:(Option.get (Ipv4.of_string "203.104.5.5"))
    ~port:80 ~host ~request_line:rline ~cookie:"" ~body:""

let leak i =
  mk (Printf.sprintf "GET /ad?imei=355021930123456&app=a%d&size=320x50 HTTP/1.1" i)

let benign i = mk ~host:"api.example.jp" (Printf.sprintf "GET /feed/%d HTTP/1.1" i)

let test_exact_detects_only_sample () =
  let suspicious = Array.init 20 leak in
  let normal = Array.init 20 benign in
  let sample = Array.sub suspicious 0 5 in
  let m = Baseline.exact ~sample ~suspicious ~normal in
  (* Exact matching finds only the 5 sampled packets: TP = (5-5)/(20-5) = 0. *)
  Alcotest.(check (float 1e-9)) "no generalization" 0. m.Metrics.true_positive;
  Alcotest.(check (float 1e-9)) "no false positives" 0. m.Metrics.false_positive;
  Alcotest.(check int) "detected = sample" 5 m.Metrics.counts.Metrics.sensitive_detected

let test_substring_generalizes_no_better_here () =
  (* Distinct app ids make whole-content substrings match only themselves. *)
  let suspicious = Array.init 20 leak in
  let normal = Array.init 20 benign in
  let sample = Array.sub suspicious 0 5 in
  let m = Baseline.sample_substring ~sample ~suspicious ~normal in
  Alcotest.(check int) "still only the sample" 5 m.Metrics.counts.Metrics.sensitive_detected

let test_random_cluster_runs () =
  let suspicious = Array.init 30 leak in
  let normal = Array.init 30 benign in
  let rng = Prng.create 17 in
  let sample = Array.sub suspicious 0 16 in
  let m = Baseline.random_cluster ~rng ~sample ~suspicious ~normal () in
  (* All leaks share the IMEI token, so random clusters still find it. *)
  Alcotest.(check bool) "finds shared identifier" true (m.Metrics.true_positive > 0.9);
  Alcotest.(check (float 1e-9)) "clean benign traffic" 0. m.Metrics.false_positive

let test_pipeline_beats_exact () =
  (* Integration: on a workload slice, the paper pipeline must dominate the
     exact-match baseline on true positives. *)
  let ds = Leakdetect_android.Workload.generate ~seed:5 ~scale:0.02 () in
  let suspicious, normal = Leakdetect_android.Workload.split ds in
  let rng = Prng.create 23 in
  let sample = Leakdetect_util.Sample.without_replacement rng 60 suspicious in
  let exact = Baseline.exact ~sample ~suspicious ~normal in
  let outcome =
    Leakdetect_core.Pipeline.run ~rng:(Prng.create 23) ~n:60 ~suspicious ~normal ()
  in
  Alcotest.(check bool) "pipeline TP above exact TP" true
    (outcome.Leakdetect_core.Pipeline.metrics.Metrics.true_positive
    > exact.Metrics.true_positive +. 0.2)

(* --- Hamsa --- *)

module Hamsa = Leakdetect_baseline.Hamsa
module Signature = Leakdetect_core.Signature

let test_hamsa_picks_discriminating_token () =
  let suspicious = Array.init 20 leak in
  let normal = Array.init 40 benign in
  let tokens = [ "imei=355021930123456"; "lang=ja"; "GET /" ] in
  let sigs = Hamsa.generate ~tokens ~suspicious ~benign:normal () in
  Alcotest.(check bool) "one signature suffices" true (List.length sigs >= 1);
  let all_tokens = List.concat_map (fun s -> s.Signature.tokens) sigs in
  Alcotest.(check bool) "identifier chosen" true
    (List.mem "imei=355021930123456" all_tokens);
  Alcotest.(check bool) "benign marker not chosen" false (List.mem "lang=ja" all_tokens);
  let d = Leakdetect_core.Detector.create sigs in
  Alcotest.(check int) "covers all suspicious" 20
    (Leakdetect_core.Detector.count_detected d suspicious);
  Alcotest.(check int) "clean on benign" 0
    (Leakdetect_core.Detector.count_detected d normal)

let test_hamsa_respects_fp_bound () =
  (* A token present in most benign traffic must be rejected by the u-bound
     even though it covers every suspicious packet. *)
  let suspicious = Array.init 10 (fun i -> mk (Printf.sprintf "GET /x?common=1&i=%d HTTP/1.1" i)) in
  let normal = Array.init 50 (fun i -> mk ~host:"api.example.jp" (Printf.sprintf "GET /y?common=1&i=%d HTTP/1.1" i)) in
  let sigs = Hamsa.generate ~tokens:[ "common=1" ] ~suspicious ~benign:normal () in
  Alcotest.(check int) "nothing selectable" 0 (List.length sigs)

let test_hamsa_multiple_signatures () =
  (* Two disjoint leak families need two signatures. *)
  let fam_a i = mk (Printf.sprintf "GET /a?ida=AAAAAA&i=%d HTTP/1.1" i) in
  let fam_b i = mk (Printf.sprintf "GET /b?idb=BBBBBB&i=%d HTTP/1.1" i) in
  let suspicious = Array.init 20 (fun i -> if i < 10 then fam_a i else fam_b i) in
  let normal = Array.init 30 benign in
  let sigs =
    Hamsa.generate ~tokens:[ "ida=AAAAAA"; "idb=BBBBBB" ] ~suspicious ~benign:normal ()
  in
  Alcotest.(check int) "two signatures" 2 (List.length sigs);
  let d = Leakdetect_core.Detector.create sigs in
  Alcotest.(check int) "full coverage" 20
    (Leakdetect_core.Detector.count_detected d suspicious)

let test_hamsa_empty_tokens () =
  let suspicious = Array.init 3 leak and normal = Array.init 3 benign in
  Alcotest.(check int) "no candidates, no signatures" 0
    (List.length (Hamsa.generate ~tokens:[] ~suspicious ~benign:normal ()))

let test_hamsa_end_to_end () =
  let ds = Leakdetect_android.Workload.generate ~seed:11 ~scale:0.03 () in
  let suspicious, normal = Leakdetect_android.Workload.split ds in
  let m = Hamsa.evaluate ~rng:(Prng.create 4) ~n:150 ~suspicious ~normal () in
  Alcotest.(check bool) "reasonable TP" true (m.Metrics.true_positive > 0.5);
  Alcotest.(check bool) "bounded FP" true (m.Metrics.false_positive < 0.1)

let suite =
  [
    ( "baseline.hamsa",
      [
        Alcotest.test_case "picks discriminating token" `Quick
          test_hamsa_picks_discriminating_token;
        Alcotest.test_case "respects FP bound" `Quick test_hamsa_respects_fp_bound;
        Alcotest.test_case "multiple signatures" `Quick test_hamsa_multiple_signatures;
        Alcotest.test_case "empty tokens" `Quick test_hamsa_empty_tokens;
        Alcotest.test_case "end to end" `Slow test_hamsa_end_to_end;
      ] );
    ( "baseline",
      [
        Alcotest.test_case "exact detects only sample" `Quick test_exact_detects_only_sample;
        Alcotest.test_case "substring on distinct contents" `Quick
          test_substring_generalizes_no_better_here;
        Alcotest.test_case "random clustering" `Quick test_random_cluster_runs;
        Alcotest.test_case "pipeline beats exact (integration)" `Slow test_pipeline_beats_exact;
      ] );
  ]
