test/test_net.ml: Alcotest Char Domain Gen Ipv4 Leakdetect_net Option QCheck QCheck_alcotest Url
