test/test_util.ml: Alcotest Array Csv Float Fun Gen Hashtbl Hex Int64 Json Leakdetect_text Leakdetect_util List Prng QCheck QCheck_alcotest Sample Stats String Strutil Table
