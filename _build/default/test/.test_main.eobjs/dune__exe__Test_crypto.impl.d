test/test_crypto.ml: Alcotest Digest Gen Leakdetect_crypto List Md5 Printf QCheck QCheck_alcotest Sha1 String
