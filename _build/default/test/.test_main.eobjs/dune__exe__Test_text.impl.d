test/test_text.ml: Aho_corasick Alcotest Array Edit_distance Float Gen Hashtbl Lcs Leakdetect_text List Printf QCheck QCheck_alcotest Search String Suffix_automaton Tokens Trigram
