test/test_integration.ml: Alcotest Array Filename Fun Lazy Leakdetect_android Leakdetect_core Leakdetect_http Leakdetect_monitor Leakdetect_util List Sys
