test/test_compress.ml: Alcotest Array Bitio Char Compressor Huffman Leakdetect_compress Leakdetect_util List Lz77 Lzw Option Printf QCheck QCheck_alcotest String
