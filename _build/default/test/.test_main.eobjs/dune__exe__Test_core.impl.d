test/test_core.ml: Alcotest Array Float Leakdetect_cluster Leakdetect_core Leakdetect_http Leakdetect_net Leakdetect_util List Option Printf QCheck QCheck_alcotest String
