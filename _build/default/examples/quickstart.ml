(* Quickstart: the whole pipeline in ~40 lines.

     dune exec examples/quickstart.exe

   Generates a small synthetic Android traffic trace, splits it with the
   payload check, learns signatures from 200 sampled suspicious packets and
   evaluates them on the full trace with the paper's metrics. *)

module Workload = Leakdetect_android.Workload
module Pipeline = Leakdetect_core.Pipeline
module Metrics = Leakdetect_core.Metrics
module Signature = Leakdetect_core.Signature

let () =
  (* 1. A deterministic workload: 1,188 simulated apps at 10% traffic scale. *)
  let dataset = Workload.generate ~seed:7 ~scale:0.1 () in
  let suspicious, normal = Workload.split dataset in
  Printf.printf "trace: %d sensitive packets, %d normal packets\n"
    (Array.length suspicious) (Array.length normal);

  (* 2. Sample N suspicious packets, cluster them, extract signatures and
        evaluate on the whole dataset — one call. *)
  let rng = Leakdetect_util.Prng.create 7 in
  let outcome = Pipeline.run ~rng ~n:200 ~suspicious ~normal () in

  Printf.printf "generated %d signatures from %d clusters\n"
    (List.length outcome.Pipeline.signatures)
    outcome.Pipeline.n_clusters;

  (* 3. The paper's evaluation measures (Sec. V-B). *)
  let m = outcome.Pipeline.metrics in
  Printf.printf "true positives:  %.1f%%\n" (100. *. m.Metrics.true_positive);
  Printf.printf "false negatives: %.1f%%\n" (100. *. m.Metrics.false_negative);
  Printf.printf "false positives: %.2f%%\n" (100. *. m.Metrics.false_positive);

  (* 4. Peek at one signature: a conjunction of invariant tokens. *)
  match outcome.Pipeline.signatures with
  | [] -> print_endline "no signatures (try a larger sample)"
  | s :: _ ->
    Format.printf "example signature: %a@." Signature.pp s
