(* Device monitor: the Figure 3(b) information-flow-control application.

     dune exec examples/device_monitor.exe

   Plays the complete loop of the paper's architecture:
     1. the server side collects traffic, clusters it and generates
        signatures (Figure 3a);
     2. the on-device application fetches those signatures and starts
        inspecting outgoing packets;
     3. the user answers prompts and tightens per-app policy over time. *)

module Workload = Leakdetect_android.Workload
module Pipeline = Leakdetect_core.Pipeline
module Flow_control = Leakdetect_monitor.Flow_control
module Policy = Leakdetect_monitor.Policy
module Signature_match = Leakdetect_monitor.Signature_match
module Trace = Leakdetect_http.Trace
module Packet = Leakdetect_http.Packet
module Prng = Leakdetect_util.Prng

let () =
  (* --- server side (Figure 3a) --- *)
  let ds = Workload.generate ~seed:99 ~scale:0.08 () in
  let suspicious, normal = Workload.split ds in
  let outcome = Pipeline.run ~rng:(Prng.create 99) ~n:250 ~suspicious ~normal () in
  Printf.printf "server: generated %d signatures from %d sampled packets\n\n"
    (List.length outcome.Pipeline.signatures)
    outcome.Pipeline.sample_size;

  (* --- device side (Figure 3b) --- *)
  (* The user's prompt behaviour: deny the first transmission from each app
     and remember the decision; this models a cautious user. *)
  let decisions : (int, bool) Hashtbl.t = Hashtbl.create 16 in
  let prompts = ref 0 in
  let on_prompt ~app_id _packet (m : Signature_match.t) =
    incr prompts;
    match Hashtbl.find_opt decisions app_id with
    | Some answer -> answer
    | None ->
      (* First time this app tries to leak: show the user what matched. *)
      if !prompts <= 5 then
        Printf.printf "  [prompt] app %d wants to transmit data matching signature #%d -> user says NO\n"
          app_id m.Signature_match.signature_id;
      Hashtbl.add decisions app_id false;
      false
  in
  let policy = Policy.create () in
  (* At most 3 interruptions per app; afterwards the last answer sticks. *)
  let monitor =
    Flow_control.create ~policy ~prompt_budget:3 ~on_prompt outcome.Pipeline.signatures
  in

  Printf.printf "device: replaying the first 4000 packets through the monitor\n";
  Array.iteri
    (fun i (r : Trace.record) ->
      if i < 4000 then
        ignore (Flow_control.process monitor ~app_id:r.Trace.app_id r.Trace.packet))
    ds.Workload.records;

  let allowed, blocked, prompted = Flow_control.stats monitor in
  Printf.printf "\nsession summary: %d allowed, %d blocked, %d prompted\n\n" allowed blocked
    prompted;
  print_string (Leakdetect_monitor.Report.render ~limit:8 monitor);

  (* The user got tired of one noisy app and blocks it outright. *)
  let noisiest =
    let counts = Hashtbl.create 16 in
    List.iter
      (fun (e : Flow_control.event) ->
        match e.Flow_control.decision with
        | Flow_control.Prompted _ ->
          Hashtbl.replace counts e.Flow_control.app_id
            (1 + Option.value ~default:0 (Hashtbl.find_opt counts e.Flow_control.app_id))
        | _ -> ())
      (Flow_control.log monitor);
    Hashtbl.fold
      (fun app n acc -> match acc with Some (_, m) when m >= n -> acc | _ -> Some (app, n))
      counts None
  in
  match noisiest with
  | None -> print_endline "no app ever prompted — nothing to block"
  | Some (app_id, n) ->
    Printf.printf "\napp %d prompted %d times; user sets its policy to BLOCK\n" app_id n;
    Policy.set_rule policy ~app_id
      { Policy.on_sensitive = Policy.Block; on_benign = Policy.Allow };
    (* Replay a few of that app's sensitive packets: now silently dropped. *)
    let replayed = ref 0 in
    Array.iter
      (fun (r : Trace.record) ->
        if r.Trace.app_id = app_id && r.Trace.labels <> [] && !replayed < 3 then begin
          incr replayed;
          let d = Flow_control.process monitor ~app_id r.Trace.packet in
          Printf.printf "  packet to %s: %s\n" r.Trace.packet.Packet.dst.Packet.host
            (Flow_control.decision_to_string d)
        end)
      ds.Workload.records
