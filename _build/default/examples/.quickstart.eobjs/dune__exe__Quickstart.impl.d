examples/quickstart.ml: Array Format Leakdetect_android Leakdetect_core Leakdetect_util List Printf
