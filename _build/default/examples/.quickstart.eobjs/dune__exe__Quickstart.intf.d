examples/quickstart.mli:
