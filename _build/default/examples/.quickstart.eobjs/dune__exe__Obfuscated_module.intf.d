examples/obfuscated_module.mli:
