examples/ad_module_study.mli:
