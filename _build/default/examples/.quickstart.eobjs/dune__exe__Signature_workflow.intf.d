examples/signature_workflow.mli:
