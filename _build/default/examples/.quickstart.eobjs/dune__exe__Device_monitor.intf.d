examples/device_monitor.mli:
