(* Advertisement-module study: the Sec. III analysis of the paper.

     dune exec examples/ad_module_study.exe

   Generates a full-population trace (at reduced per-app traffic), then
   answers the questions of Sec. III: which services receive the most
   traffic, which identifier kinds flow to which destinations, and what a
   leaking request actually looks like on the wire. *)

module Workload = Leakdetect_android.Workload
module Trace_stats = Leakdetect_android.Trace_stats
module Ad_module = Leakdetect_android.Ad_module
module Device = Leakdetect_android.Device
module Sensitive = Leakdetect_core.Sensitive
module Payload_check = Leakdetect_core.Payload_check
module Packet = Leakdetect_http.Packet
module Trace = Leakdetect_http.Trace
module Domain = Leakdetect_net.Domain
module Table = Leakdetect_util.Table

let () =
  let ds = Workload.generate ~seed:2013 ~scale:0.25 () in
  let total, sens, _ = Trace_stats.totals ds in
  Printf.printf "corpus: %d apps, %d packets, %d (%.0f%%) carrying sensitive information\n\n"
    (Array.length ds.Workload.apps) total sens
    (100. *. float_of_int sens /. float_of_int total);

  (* Who gets the traffic? (Table II view) *)
  print_string
    (Table.render ~title:"Top 12 destination services"
       ~columns:
         [ ("service", Table.Left); ("packets", Table.Right); ("apps", Table.Right) ]
       (List.map
          (fun (r : Trace_stats.dest_row) ->
            [ r.Trace_stats.domain; string_of_int r.Trace_stats.packets;
              string_of_int r.Trace_stats.apps ])
          (Trace_stats.table2_top ~n:12 ds)));

  (* Which identifiers leak, and how far do they spread? (Table III view) *)
  print_newline ();
  print_string
    (Table.render ~title:"Sensitive information kinds on the wire"
       ~columns:
         [ ("kind", Table.Left); ("packets", Table.Right); ("apps", Table.Right);
           ("destinations", Table.Right) ]
       (List.map
          (fun (r : Trace_stats.kind_row) ->
            [ Sensitive.paper_name r.Trace_stats.kind;
              string_of_int r.Trace_stats.packets;
              string_of_int r.Trace_stats.apps;
              string_of_int r.Trace_stats.destinations ])
          (Trace_stats.table3 ds)));

  (* Per-service leak profile: which kinds does each ad service collect?
     This reproduces the associations the paper calls out in Sec. III-B
     ("ad-maker.info ... expect IMEI and Android ID", etc). *)
  print_newline ();
  let profile = Hashtbl.create 32 in
  Array.iter
    (fun (r : Trace.record) ->
      let domain = Domain.registrable r.Trace.packet.Packet.dst.Packet.host in
      let kinds = Workload.labels_of_record r in
      if kinds <> [] then begin
        let current =
          Option.value ~default:Sensitive.Set.empty (Hashtbl.find_opt profile domain)
        in
        Hashtbl.replace profile domain
          (List.fold_left (fun acc k -> Sensitive.Set.add k acc) current kinds)
      end)
    ds.Workload.records;
  let rows =
    Hashtbl.fold (fun domain kinds acc -> (domain, kinds) :: acc) profile []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
    |> List.filter (fun (_, kinds) -> not (Sensitive.Set.is_empty kinds))
    |> List.filteri (fun i _ -> i < 18)
    |> List.map (fun (domain, kinds) ->
           [ domain;
             String.concat ", "
               (List.map Sensitive.to_string (Sensitive.Set.elements kinds)) ])
  in
  print_string
    (Table.render ~title:"Leak profile per destination service"
       ~columns:[ ("service", Table.Left); ("identifier kinds received", Table.Left) ]
       rows);

  (* Finally, show one leaking request byte-for-byte. *)
  print_newline ();
  let device = ds.Workload.device in
  Printf.printf "the device under test: IMEI=%s  Android ID=%s  carrier=%s\n\n"
    device.Device.imei device.Device.android_id device.Device.carrier;
  let leaking =
    Array.to_list ds.Workload.records
    |> List.find (fun (r : Trace.record) ->
           List.mem Sensitive.Imei (Workload.labels_of_record r))
  in
  Printf.printf "an actual leaking request (to %s):\n"
    leaking.Trace.packet.Packet.dst.Packet.host;
  let c = leaking.Trace.packet.Packet.content in
  Printf.printf "  %s\n" c.Packet.request_line;
  if c.Packet.cookie <> "" then Printf.printf "  Cookie: %s\n" c.Packet.cookie;
  if c.Packet.body <> "" then Printf.printf "  body: %s\n" c.Packet.body;
  let kinds = Payload_check.scan ds.Workload.payload_check leaking.Trace.packet in
  Printf.printf "  -> payload check flags: %s\n"
    (String.concat ", " (List.map Sensitive.paper_name kinds))
