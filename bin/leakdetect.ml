(* leakdetect — command-line front end for the reproduction.

   Subcommands mirror the paper's workflow (Fig. 3):
     generate   build a synthetic application trace and write it to disk
     stats      corpus statistics (Tables I-III, Figure 2 summary)
     sign       cluster a sample of suspicious packets, emit signatures
     detect     apply a signature file to a trace
     evaluate   full pipeline with the paper's TP/FN/FP metrics
     monitor    replay a trace through the on-device flow-control app
     chaos      fault-injection soak over the ingest/distribute/enforce path,
                including crash/recover trials against the durable store
     store      recover and inspect a durable signature-state directory
     evade      adversarial mutation replay: per-mutator recall with and
                without the canonicalization lattice
     soak       multi-client delta-sync soak against the journaled signature
                authority, with crash points and convergence invariants *)

open Cmdliner

module Workload = Leakdetect_android.Workload
module Trace_stats = Leakdetect_android.Trace_stats
module Trace = Leakdetect_http.Trace
module Packet = Leakdetect_http.Packet
module Pipeline = Leakdetect_core.Pipeline
module Metrics = Leakdetect_core.Metrics
module Siggen = Leakdetect_core.Siggen
module Signature = Leakdetect_core.Signature
module Signature_io = Leakdetect_core.Signature_io
module Distance = Leakdetect_core.Distance
module Detector = Leakdetect_core.Detector
module Sensitive = Leakdetect_core.Sensitive
module Compressor = Leakdetect_compress.Compressor
module Agglomerative = Leakdetect_cluster.Agglomerative
module Cluster = Leakdetect_cluster.Cluster
module Clustering = Leakdetect_core.Clustering
module Sketch = Leakdetect_sketch.Sketch
module Table = Leakdetect_util.Table
module Prng = Leakdetect_util.Prng
module Sample = Leakdetect_util.Sample
module Fault = Leakdetect_fault.Fault
module Flow_control = Leakdetect_monitor.Flow_control
module Signature_client = Leakdetect_monitor.Signature_client
module Signature_server = Leakdetect_monitor.Signature_server
module Store = Leakdetect_store.Store
module Wal = Leakdetect_store.Wal
module Pool = Leakdetect_parallel.Pool
module Payload_check = Leakdetect_core.Payload_check
module Request = Leakdetect_http.Request
module Response = Leakdetect_http.Response
module Obs = Leakdetect_obs.Obs
module Normalize = Leakdetect_normalize.Normalize
module Mutator = Leakdetect_adversary.Mutator
module Harness = Leakdetect_adversary.Harness
module Json = Leakdetect_util.Json
module Soak = Leakdetect_distrib.Soak
module Topology = Leakdetect_distrib.Topology

let exit_err fmt = Printf.ksprintf (fun m -> prerr_endline ("leakdetect: " ^ m); exit 1) fmt

(* --- logging --- *)

let setup_log style_renderer level =
  Fmt_tty.setup_std_outputs ?style_renderer ();
  Logs.set_level level;
  Logs.set_reporter (Logs_fmt.reporter ())

let setup_log_t =
  Term.(const setup_log $ Fmt_cli.style_renderer () $ Logs_cli.level ())

(* --- common options --- *)

let seed_t =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Workload generator seed.")

let scale_t =
  Arg.(value
      & opt float 1.0
      & info [ "scale" ] ~docv:"SCALE"
          ~doc:"Traffic scale factor; 1.0 reproduces the paper-sized trace.")

let trace_t =
  Arg.(value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:"Read packets from a trace file instead of generating a workload.")

let jobs_t =
  Arg.(value
      & opt int (Pool.recommended_jobs ())
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Worker domains for the parallel phases (distance matrix, whole-trace \
             detection).  1 forces the sequential path; results are identical for \
             every value.  Default: the machine's recommended domain count.")

let normalize_t =
  Arg.(value & flag
      & info [ "normalize" ]
          ~doc:
            "Match over the bounded canonicalization lattice (percent / base64 / \
             hex / case-fold / chunked decoded views) in addition to the raw \
             bytes, so re-encoded leaks are still caught.")

let normalize_of ?obs flag = if flag then Some (Normalize.create ?obs ()) else None

let sniff_binary path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      try really_input_string ic 4 = Leakdetect_http.Trace_binary.magic
      with End_of_file -> false)

let load_records ~trace ~seed ~scale =
  match trace with
  | Some path -> (
    let result =
      if sniff_binary path then Leakdetect_http.Trace_binary.load path
      else Trace.load path
    in
    match result with
    | Ok (records, _) -> Array.of_list records
    | Error e -> exit_err "cannot load %s: %s" path e)
  | None -> (Workload.generate ~seed ~scale ()).Workload.records

let load_signatures path =
  match Signature_io.load ~on_error:`Skip path with
  | Error e -> exit_err "cannot load %s: %s" path e
  | Ok (signatures, skips) ->
    if skips.Trace.skipped > 0 then begin
      Printf.eprintf "leakdetect: %s: skipped %d malformed signature line(s)\n" path
        skips.Trace.skipped;
      List.iter
        (fun (lineno, e) -> Printf.eprintf "  line %d: %s\n" lineno e)
        skips.Trace.sample
    end;
    signatures

let split_records records =
  let suspicious = ref [] and normal = ref [] in
  Array.iter
    (fun r ->
      if r.Trace.labels = [] then normal := r.Trace.packet :: !normal
      else suspicious := r.Trace.packet :: !suspicious)
    records;
  (Array.of_list (List.rev !suspicious), Array.of_list (List.rev !normal))

(* --- generate --- *)

let generate_cmd =
  let run () seed scale output binary =
    let ds = Workload.generate ~seed ~scale () in
    let records = Array.to_list ds.Workload.records in
    if binary then Leakdetect_http.Trace_binary.save output records
    else Trace.save output records;
    let total, sens, norm = Trace_stats.totals ds in
    Printf.printf "wrote %s (%s): %d packets (%d sensitive, %d normal) from %d apps\n"
      output (if binary then "binary" else "text") total sens norm
      (Array.length ds.Workload.apps)
  in
  let output =
    Arg.(value & opt string "trace.tsv"
        & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output trace file.")
  in
  let binary =
    Arg.(value & flag
        & info [ "binary" ] ~doc:"Write the compact binary format instead of text.")
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Generate a synthetic application trace.")
    Term.(const run $ setup_log_t $ seed_t $ scale_t $ output $ binary)

(* --- stats --- *)

let stats_cmd =
  let run seed scale trace top =
    match trace with
    | Some _ ->
      (* From a trace file: destination and label statistics only (the
         permission table needs the app population, which traces do not
         carry). *)
      let records = load_records ~trace ~seed ~scale in
      let total = Array.length records in
      let sens =
        Array.fold_left
          (fun acc r -> if r.Trace.labels = [] then acc else acc + 1)
          0 records
      in
      Printf.printf "packets: %d total, %d sensitive, %d normal\n\n" total sens
        (total - sens);
      let module SM = Map.Make (String) in
      let dests =
        Array.fold_left
          (fun acc (r : Trace.record) ->
            let d =
              Leakdetect_net.Domain.registrable r.Trace.packet.Packet.dst.Packet.host
            in
            SM.update d (function None -> Some 1 | Some c -> Some (c + 1)) acc)
          SM.empty records
      in
      let rows =
        SM.bindings dests
        |> List.sort (fun (_, a) (_, b) -> compare b a)
        |> List.filteri (fun i _ -> i < top)
        |> List.map (fun (d, c) -> [ d; string_of_int c ])
      in
      print_string
        (Table.render ~title:"Top destination domains"
           ~columns:[ ("destination", Table.Left); ("packets", Table.Right) ]
           rows);
      let labels = Hashtbl.create 16 in
      Array.iter
        (fun (r : Trace.record) ->
          List.iter
            (fun l ->
              Hashtbl.replace labels l
                (1 + Option.value ~default:0 (Hashtbl.find_opt labels l)))
            r.Trace.labels)
        records;
      print_newline ();
      print_string
        (Table.render ~title:"Sensitive labels"
           ~columns:[ ("label", Table.Left); ("packets", Table.Right) ]
           (Hashtbl.fold (fun l c acc -> [ l; string_of_int c ] :: acc) labels []
           |> List.sort compare))
    | None ->
      let ds = Workload.generate ~seed ~scale () in
      let total, sens, norm = Trace_stats.totals ds in
      Printf.printf "packets: %d total, %d sensitive, %d normal\n\n" total sens norm;
      print_string
        (Table.render ~title:"Permission combinations (Table I)"
           ~columns:[ ("I L P C", Table.Left); ("apps", Table.Right) ]
           (List.map
              (fun r -> [ r.Trace_stats.pattern; string_of_int r.Trace_stats.count ])
              (Trace_stats.table1 ds)));
      print_newline ();
      print_string
        (Table.render ~title:"Top destinations (Table II)"
           ~columns:
             [ ("destination", Table.Left); ("packets", Table.Right); ("apps", Table.Right) ]
           (List.map
              (fun (r : Trace_stats.dest_row) ->
                [ r.Trace_stats.domain; string_of_int r.Trace_stats.packets;
                  string_of_int r.Trace_stats.apps ])
              (Trace_stats.table2_top ~n:top ds)));
      print_newline ();
      print_string
        (Table.render ~title:"Sensitive information (Table III)"
           ~columns:
             [ ("kind", Table.Left); ("packets", Table.Right); ("apps", Table.Right);
               ("destinations", Table.Right) ]
           (List.map
              (fun (r : Trace_stats.kind_row) ->
                [ Sensitive.paper_name r.Trace_stats.kind;
                  string_of_int r.Trace_stats.packets;
                  string_of_int r.Trace_stats.apps;
                  string_of_int r.Trace_stats.destinations ])
              (Trace_stats.table3 ds)));
      let f2 = Trace_stats.figure2 ds in
      Printf.printf
        "\nFigure 2 summary: %d apps, mean %.1f destinations, max %d; %d with one destination\n"
        f2.Trace_stats.total_apps f2.Trace_stats.mean f2.Trace_stats.max
        f2.Trace_stats.one_destination
  in
  let top =
    Arg.(value & opt int 26 & info [ "top" ] ~docv:"N" ~doc:"Destinations to list.")
  in
  Cmd.v
    (Cmd.info "stats" ~doc:"Print corpus statistics (Tables I-III, Figure 2).")
    Term.(const run $ seed_t $ scale_t $ trace_t $ top)

(* --- shared pipeline configuration flags --- *)

let n_t =
  Arg.(value & opt int 500
      & info [ "n"; "sample" ] ~docv:"N" ~doc:"Suspicious packets sampled for signature generation.")

let compressor_t =
  let parse s =
    match Compressor.of_name s with
    | Some c -> Ok c
    | None -> Error (`Msg (Printf.sprintf "unknown compressor %S (lz77|lzw|huffman)" s))
  in
  let print ppf c = Format.pp_print_string ppf (Compressor.name c) in
  Arg.(value
      & opt (conv (parse, print)) Compressor.Lz77
      & info [ "compressor" ] ~docv:"ALGO" ~doc:"NCD compressor: lz77, lzw or huffman.")

let linkage_t =
  let parse s =
    match Agglomerative.linkage_of_name s with
    | Some l -> Ok l
    | None -> Error (`Msg (Printf.sprintf "unknown linkage %S" s))
  in
  let print ppf l = Format.pp_print_string ppf (Agglomerative.linkage_name l) in
  Arg.(value
      & opt (conv (parse, print)) Agglomerative.Group_average
      & info [ "linkage" ] ~docv:"LINKAGE"
          ~doc:"Cluster linkage: group-average (paper), single or complete.")

let cut_t =
  Arg.(value
      & opt (some float) None
      & info [ "cut" ] ~docv:"DIST"
          ~doc:"Dendrogram cut threshold; default: a quarter of the maximum distance.")

let clustering_t =
  Arg.(value
      & opt (enum [ ("exact", `Exact); ("sketch", `Sketch) ]) `Exact
      & info [ "clustering" ] ~docv:"BACKEND"
          ~doc:"Clustering backend: $(b,exact) builds the full O(N^2) NCD matrix \
                (the paper's procedure); $(b,sketch) buckets near-duplicate payloads \
                with minhash/LSH first and runs exact NCD only inside buckets.")

let lsh_bands_t =
  Arg.(value
      & opt int Clustering.default_sketch.Sketch.bands
      & info [ "lsh-bands" ] ~docv:"B"
          ~doc:"LSH bands for --clustering sketch; more bands lower the similarity \
                needed to share a bucket.")

let lsh_rows_t =
  Arg.(value
      & opt int Clustering.default_sketch.Sketch.rows
      & info [ "lsh-rows" ] ~docv:"R"
          ~doc:"Minhash slots per LSH band; more rows raise the similarity needed \
                to share a bucket.")

let backend_of ~clustering ~lsh_bands ~lsh_rows =
  match clustering with
  | `Exact -> Clustering.Exact
  | `Sketch ->
    let params =
      { Clustering.default_sketch with Sketch.bands = lsh_bands; rows = lsh_rows }
    in
    (match Sketch.validate params with
    | Ok () -> Clustering.Sketch params
    | Error msg -> exit_err "invalid sketch parameters: %s" msg)

let pp_bucket_stats (stats : Clustering.stats) =
  if stats.Clustering.backend = "sketch" then
    Printf.printf
      "sketch prefilter: %d buckets (largest %d), %d of %d exact pairs (%.1f%% avoided)\n"
      stats.Clustering.buckets stats.Clustering.largest_bucket
      stats.Clustering.exact_pairs stats.Clustering.total_pairs
      (if stats.Clustering.total_pairs = 0 then 0.
       else
         100.
         *. float_of_int (stats.Clustering.total_pairs - stats.Clustering.exact_pairs)
         /. float_of_int stats.Clustering.total_pairs)

let config_of ?(clustering = Clustering.Exact) ~compressor ~linkage ~cut () =
  let siggen =
    { Siggen.default with
      Siggen.algorithm = Cluster.Agglomerative linkage;
      cut = (match cut with Some v -> Siggen.Threshold v | None -> Siggen.Auto);
    }
  in
  { Pipeline.default_config with Pipeline.compressor; siggen; clustering }

(* --- sign --- *)

let sign_cmd =
  let run seed scale trace n compressor linkage cut clustering lsh_bands lsh_rows jobs
      output =
    let records = load_records ~trace ~seed ~scale in
    let suspicious, _ = split_records records in
    if Array.length suspicious = 0 then exit_err "trace has no sensitive packets";
    let rng = Prng.create seed in
    let sample = Sample.without_replacement rng n suspicious in
    let clustering = backend_of ~clustering ~lsh_bands ~lsh_rows in
    let config = config_of ~clustering ~compressor ~linkage ~cut () in
    let dist =
      Distance.create ~components:config.Pipeline.components
        ~compressor:config.Pipeline.compressor ()
    in
    let result =
      let pool = Pool.warm jobs in
      Siggen.generate ~config:{ config with Pipeline.pool } dist sample
    in
    Signature_io.save output result.Siggen.signatures;
    Printf.printf "sampled %d suspicious packets -> %d clusters, %d signatures (%d rejected)\n"
      (Array.length sample)
      (List.length result.Siggen.clusters)
      (List.length result.Siggen.signatures)
      result.Siggen.rejected;
    Option.iter pp_bucket_stats result.Siggen.stats;
    Printf.printf "wrote %s\n" output
  in
  let output =
    Arg.(value & opt string "signatures.tsv"
        & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output signature file.")
  in
  Cmd.v
    (Cmd.info "sign" ~doc:"Cluster suspicious packets and generate signatures.")
    Term.(const run $ seed_t $ scale_t $ trace_t $ n_t $ compressor_t $ linkage_t $ cut_t
          $ clustering_t $ lsh_bands_t $ lsh_rows_t $ jobs_t $ output)

(* --- cluster --- *)

let cluster_cmd =
  let run () seed scale trace n compressor linkage cut clustering lsh_bands lsh_rows
      jobs newick =
    let records = load_records ~trace ~seed ~scale in
    let suspicious, _ = split_records records in
    if Array.length suspicious = 0 then exit_err "trace has no sensitive packets";
    let rng = Prng.create seed in
    let sample = Sample.without_replacement rng n suspicious in
    let backend = backend_of ~clustering ~lsh_bands ~lsh_rows in
    let config = config_of ~clustering:backend ~compressor ~linkage ~cut () in
    let dist =
      Distance.create ~components:config.Pipeline.components
        ~compressor:config.Pipeline.compressor ()
    in
    let pool = Pool.warm jobs in
    let algorithm = Cluster.Agglomerative linkage in
    (* The exact path keeps its own matrix so the cophenetic correlation can
       be reported; sketch mode never materializes the full matrix, so the
       bucket statistics stand in for it. *)
    let tree, cophenetic, stats =
      match backend with
      | Clustering.Exact -> (
        let matrix = Distance.matrix ?pool dist sample in
        match Cluster.run algorithm matrix with
        | Cluster.Hierarchy tree ->
          (tree, Some (Leakdetect_cluster.Cophenetic.correlation matrix tree), None)
        | Cluster.Empty | Cluster.Partition _ -> exit_err "empty sample")
      | Clustering.Sketch _ -> (
        let r = Clustering.run ?pool ~backend ~algorithm dist sample in
        match r.Clustering.output with
        | Cluster.Hierarchy tree -> (tree, None, Some r.Clustering.stats)
        | Cluster.Empty | Cluster.Partition _ -> exit_err "empty sample")
    in
    begin
      let threshold =
        match cut with
        | Some v -> v
        | None -> 0.25 *. Distance.max_possible dist
      in
      let forest = Leakdetect_cluster.Dendrogram.cut ~threshold tree in
      Printf.printf "clustered %d packets at threshold %.2f -> %d clusters\n\n"
        (Array.length sample) threshold (List.length forest);
      List.iteri
        (fun i subtree ->
          let members = Leakdetect_cluster.Dendrogram.members subtree in
          let hosts =
            List.sort_uniq compare
              (List.map (fun j -> sample.(j).Packet.dst.Packet.host) members)
          in
          Printf.printf "cluster %2d: %3d packets, height %.3f, hosts: %s\n" i
            (List.length members)
            (Leakdetect_cluster.Dendrogram.height subtree)
            (String.concat ", " hosts))
        forest;
      Option.iter
        (fun c -> Printf.printf "\ncophenetic correlation: %.3f\n" c)
        cophenetic;
      Option.iter pp_bucket_stats stats;
      match newick with
      | None -> ()
      | Some path ->
        let oc = open_out path in
        output_string oc
          (Leakdetect_cluster.Dendrogram.to_newick
             ~label:(fun i ->
               Printf.sprintf "p%d_%s" i
                 (String.map
                    (fun c -> if c = '.' then '_' else c)
                    sample.(i).Packet.dst.Packet.host))
             tree);
        output_char oc '\n';
        close_out oc;
        Printf.printf "wrote %s\n" path
    end
  in
  let n_small =
    Arg.(value & opt int 60
        & info [ "n"; "sample" ] ~docv:"N" ~doc:"Packets to sample and cluster.")
  in
  let newick =
    Arg.(value
        & opt (some string) None
        & info [ "newick" ] ~docv:"FILE" ~doc:"Write the dendrogram in Newick format.")
  in
  Cmd.v
    (Cmd.info "cluster"
       ~doc:"Cluster a sample of suspicious packets and report the dendrogram.")
    Term.(const run $ setup_log_t $ seed_t $ scale_t $ trace_t $ n_small $ compressor_t
          $ linkage_t $ cut_t $ clustering_t $ lsh_bands_t $ lsh_rows_t $ jobs_t
          $ newick)

(* --- detect --- *)

let detect_cmd =
  let run seed scale trace sig_file jobs verbose normalize =
    let records = load_records ~trace ~seed ~scale in
    let signatures = load_signatures sig_file in
    let detector = Detector.create signatures in
    let normalize = normalize_of normalize in
    let packets = Array.map (fun r -> r.Trace.packet) records in
    let stream = Detector.Stream.create ?pool:(Pool.warm jobs) ?normalize detector in
    let t0 = Unix.gettimeofday () in
    let bitmap = Detector.Stream.detect_batch stream packets in
    let elapsed = Unix.gettimeofday () -. t0 in
    let detected = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 bitmap in
    if verbose then
      Array.iteri
        (fun i r ->
          if bitmap.(i) then
            match Detector.first_match_normalized ?normalize detector r.Trace.packet with
            | Some (s, steps) ->
              Printf.printf "app %d -> %s matched signature #%d%s\n" r.Trace.app_id
                r.Trace.packet.Packet.dst.Packet.host s.Signature.id
                (match steps with
                | [] -> ""
                | steps ->
                  " via " ^ String.concat "+" (List.map Normalize.step_name steps))
            | None -> ())
        records;
    Printf.printf "%d of %d packets matched %d signatures\n" detected
      (Array.length records) (List.length signatures);
    let st = Detector.Stream.stats stream in
    if elapsed > 0. then
      Printf.printf "scanned %d bytes in %.3fs (%.0f packets/s, %.1f MiB/s)\n"
        st.Detector.Stream.bytes elapsed
        (float_of_int st.Detector.Stream.packets /. elapsed)
        (float_of_int st.Detector.Stream.bytes /. elapsed /. 1048576.)
  in
  let sig_file =
    Arg.(required
        & opt (some string) None
        & info [ "signatures" ] ~docv:"FILE" ~doc:"Signature file from `sign`.")
  in
  let verbose =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print each matching packet.")
  in
  Cmd.v
    (Cmd.info "detect" ~doc:"Apply a signature file to a trace.")
    Term.(const run $ seed_t $ scale_t $ trace_t $ sig_file $ jobs_t $ verbose
          $ normalize_t)

(* --- evaluate --- *)

let evaluate_cmd =
  let run () seed scale trace ns compressor linkage cut clustering lsh_bands lsh_rows
      jobs bayes normalize =
    let records = load_records ~trace ~seed ~scale in
    let suspicious, normal = split_records records in
    Printf.printf "dataset: %d suspicious, %d normal%s\n\n" (Array.length suspicious)
      (Array.length normal)
      (if bayes then " (probabilistic signatures)" else "");
    let clustering = backend_of ~clustering ~lsh_bands ~lsh_rows in
    let config =
      Pipeline.Config.with_normalize (normalize_of normalize)
        (config_of ~clustering ~compressor ~linkage ~cut ())
    in
    let rows =
      let pool = Pool.warm jobs in
      List.map
        (fun n ->
          let rng = Prng.create (seed + n) in
          if bayes then begin
            let o =
              Leakdetect_core.Bayes.run ~config ?pool ~rng ~n ~suspicious ~normal ()
            in
            Metrics.to_row o.Leakdetect_core.Bayes.metrics
            @ [ string_of_int o.Leakdetect_core.Bayes.n_tokens ^ " tokens" ]
          end
          else begin
            let o = Pipeline.run ~config ?pool ~rng ~n ~suspicious ~normal () in
            Metrics.to_row o.Pipeline.metrics
            @ [ string_of_int (List.length o.Pipeline.signatures) ^ " sigs" ]
          end)
        ns
    in
    print_string
      (Table.render
         ~columns:
           [ ("N", Table.Right); ("TP%", Table.Right); ("FN%", Table.Right);
             ("FP%", Table.Right); ("detail", Table.Right) ]
         rows)
  in
  let ns =
    Arg.(value
        & opt (list int) [ 100; 200; 300; 400; 500 ]
        & info [ "ns" ] ~docv:"N1,N2,..." ~doc:"Sample sizes to evaluate (Figure 4 sweep).")
  in
  let bayes =
    Arg.(value & flag
        & info [ "bayes" ]
            ~doc:"Use probabilistic (Bayes) signatures instead of conjunctions.")
  in
  Cmd.v
    (Cmd.info "evaluate"
       ~doc:"Run the full pipeline and report the paper's TP/FN/FP metrics.")
    Term.(const run $ setup_log_t $ seed_t $ scale_t $ trace_t $ ns $ compressor_t
          $ linkage_t $ cut_t $ clustering_t $ lsh_bands_t $ lsh_rows_t $ jobs_t
          $ bayes $ normalize_t)

(* --- monitor --- *)

let monitor_cmd =
  let run seed scale trace sig_file limit normalize =
    let records = load_records ~trace ~seed ~scale in
    let signatures = load_signatures sig_file in
    let monitor =
      Leakdetect_monitor.Flow_control.create ?normalize:(normalize_of normalize)
        signatures
    in
    let n = min limit (Array.length records) in
    for i = 0 to n - 1 do
      let r = records.(i) in
      ignore
        (Leakdetect_monitor.Flow_control.process monitor ~app_id:r.Trace.app_id
           r.Trace.packet)
    done;
    let allowed, blocked, prompted = Leakdetect_monitor.Flow_control.stats monitor in
    Printf.printf "processed %d packets: %d allowed, %d blocked, %d prompted\n\n" n allowed
      blocked prompted;
    print_string (Leakdetect_monitor.Report.render ~limit:15 monitor)
  in
  let sig_file =
    Arg.(required
        & opt (some string) None
        & info [ "signatures" ] ~docv:"FILE" ~doc:"Signature file from `sign`.")
  in
  let limit =
    Arg.(value & opt int 10_000
        & info [ "limit" ] ~docv:"N" ~doc:"Packets to replay through the monitor.")
  in
  Cmd.v
    (Cmd.info "monitor"
       ~doc:"Replay a trace through the on-device information-flow-control application.")
    Term.(const run $ seed_t $ scale_t $ trace_t $ sig_file $ limit $ normalize_t)

(* --- chaos --- *)

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let slurp path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let spit path contents =
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc

let chaos_cmd =
  let run () seed scale n corrupt truncate drop duplicate delay server_error syncs
      fail_closed limit crash_points crash_rate torn_write_rate state_dir =
    let fault_config =
      { Fault.default with
        Fault.corrupt_rate = corrupt;
        truncate_rate = truncate;
        drop_rate = drop;
        duplicate_rate = duplicate;
        delay_rate = delay;
        server_error_rate = server_error;
        crash_rate;
        torn_write_rate;
      }
    in
    let soak () =
      (* Fault-free baseline: workload, signatures, whole-trace detection. *)
      let ds = Workload.generate ~seed ~scale () in
      let records = Array.to_list ds.Workload.records in
      let suspicious, normal = split_records ds.Workload.records in
      if Array.length suspicious = 0 then exit_err "trace has no sensitive packets";
      let baseline =
        Pipeline.run ~rng:(Prng.create seed) ~n ~suspicious ~normal ()
      in
      let base_detector = Detector.create baseline.Pipeline.signatures in
      let base_detected =
        Detector.count_detected base_detector (Workload.packets ds)
      in
      let total = List.length records in
      Printf.printf "baseline: %d packets, %d signatures, %d detected (%.2f%%)\n" total
        (List.length baseline.Pipeline.signatures)
        base_detected
        (100. *. float_of_int base_detected /. float_of_int total);
      Format.printf "baseline metrics: %a@." Metrics.pp baseline.Pipeline.metrics;

      (* Ingest soak: every record rides the wire through the fault plan,
         then the lenient reader recovers what it can. *)
      let ingest_plan = Fault.create ~seed:(seed + 1) fault_config in
      let delivered = Fault.apply_stream ingest_plan records in
      let path = Filename.temp_file "leakdetect_chaos" ".trace" in
      let recovered, skips =
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            let oc = open_out path in
            List.iter
              (fun r ->
                output_string oc (Fault.corrupt_string ingest_plan (Trace.record_to_line r));
                output_char oc '\n')
              delivered;
            close_out oc;
            match Trace.load ~on_error:`Skip path with
            | Ok x -> x
            | Error e -> exit_err "lenient load still failed: %s" e)
      in
      let damaged =
        Fault.count ingest_plan Fault.Corrupt + Fault.count ingest_plan Fault.Truncate
      in
      let n_delivered = List.length delivered in
      let n_recovered = List.length recovered in
      Printf.printf
        "\ningest: %d sent, %d delivered, %d recovered, %d skipped (intact lower bound %d)\n"
        total n_delivered n_recovered skips.Trace.skipped (n_delivered - damaged);
      List.iter
        (fun (lineno, e) -> Printf.printf "  skipped line %d: %s\n" lineno e)
        skips.Trace.sample;
      if n_recovered < n_delivered - damaged then
        exit_err "recovered %d < intact lower bound %d" n_recovered (n_delivered - damaged);

      (* Signature-sync soak: the server publishes growing signature sets
         while the resilient client syncs over a faulty transport. *)
      let server = Signature_server.create () in
      let client = Signature_client.create ~seed:(seed + 2) () in
      let sync_plan = Fault.create ~seed:(seed + 3) fault_config in
      let delayed_ticks = ref 0 in
      let transport raw =
        let through raw =
          match
            Signature_server.wire_transport server (Fault.corrupt_string sync_plan raw)
          with
          | Ok response -> Ok (Fault.corrupt_string sync_plan response)
          | Error _ as e -> e
        in
        match Fault.server_fate sync_plan with
        | Fault.Fail status -> Error (Printf.sprintf "transient server error %d" status)
        | Fault.Respond_delayed t ->
          delayed_ticks := !delayed_ticks + t;
          through raw
        | Fault.Respond -> through raw
      in
      let fetch = Signature_server.fetch_via ~transport in
      let all_signatures = Array.of_list baseline.Pipeline.signatures in
      let n_sigs = Array.length all_signatures in
      let total_attempts = ref 0 and total_waited = ref 0 and failed_syncs = ref 0 in
      let record_report (r : Signature_client.sync_report) =
        total_attempts := !total_attempts + r.Signature_client.attempts;
        total_waited := !total_waited + r.Signature_client.waited;
        match r.Signature_client.outcome with
        | Signature_client.Failed _ -> incr failed_syncs
        | _ -> ()
      in
      Printf.printf "\nsync: %d rounds against %d signatures\n" syncs n_sigs;
      for round = 1 to syncs do
        let upto = max 1 (n_sigs * round / syncs) in
        let chunk = Array.to_list (Array.sub all_signatures 0 upto) in
        ignore (Signature_server.publish server chunk);
        record_report (Signature_client.sync client ~fetch)
      done;
      (* Catch-up: keep syncing until the client holds the latest version. *)
      let extra = ref 0 in
      while
        Signature_client.version client < Signature_server.current_version server
        && !extra < 50
      do
        incr extra;
        record_report (Signature_client.sync client ~fetch)
      done;
      let st = Signature_client.staleness client in
      Printf.printf
        "sync done: client v%d / server v%d after %d extra syncs; %d attempts, %d failed syncs, %d backoff + %d delay ticks, health %s\n"
        (Signature_client.version client)
        (Signature_server.current_version server)
        !extra !total_attempts !failed_syncs !total_waited !delayed_ticks
        (Signature_client.health_to_string (Signature_client.health client));
      Printf.printf "staleness: %d failed syncs, %d failed attempts, version gap %d\n"
        st.Signature_client.failed_syncs st.Signature_client.failed_attempts
        st.Signature_client.version_gap;
      if Signature_client.version client <> Signature_server.current_version server then
        exit_err "client failed to converge to the latest signature version";

      (* Enforcement under the synced set: replay recovered packets through
         the monitor with the client's health driving the fail mode. *)
      let monitor =
        Flow_control.create
          ~fail_mode:(if fail_closed then Flow_control.Fail_closed else Flow_control.Fail_open)
          (Signature_client.signatures client)
      in
      Flow_control.set_health monitor (Signature_client.health client);
      let replay = List.filteri (fun i _ -> i < limit) recovered in
      List.iter
        (fun (r : Trace.record) ->
          ignore (Flow_control.process monitor ~app_id:r.Trace.app_id r.Trace.packet))
        replay;
      let allowed, blocked, prompted = Flow_control.stats monitor in
      Printf.printf
        "\nenforcement (%s, health %s): %d replayed, %d allowed, %d blocked, %d prompted\n"
        (Flow_control.fail_mode_to_string (Flow_control.fail_mode monitor))
        (Signature_client.health_to_string (Flow_control.health monitor))
        (List.length replay) allowed blocked prompted;

      (* Detection delta: the synced signatures over the recovered records
         against the fault-free detection rate. *)
      let detector = Detector.create (Signature_client.signatures client) in
      let chaos_detected =
        Detector.count_detected detector
          (Array.of_list (List.map (fun r -> r.Trace.packet) recovered))
      in
      let rate detected count =
        if count = 0 then 0. else 100. *. float_of_int detected /. float_of_int count
      in
      let base_rate = rate base_detected total in
      let chaos_rate = rate chaos_detected n_recovered in
      Printf.printf
        "\ndetection: baseline %d/%d (%.2f%%) vs chaos %d/%d (%.2f%%), delta %+.2f points\n"
        base_detected total base_rate chaos_detected n_recovered chaos_rate
        (chaos_rate -. base_rate);

      (* Durability soak: replay the publish/sync history through the WAL,
         then crash the log at plan-chosen byte offsets (with torn-write
         damage on the committed image), recover each time, and check the
         recovered state against the committed history. *)
      let state_root, cleanup_root =
        match state_dir with
        | Some d ->
          if not (Sys.file_exists d) then Sys.mkdir d 0o755;
          (d, false)
        | None ->
          let d = Filename.temp_file "leakdetect_state" "" in
          Sys.remove d;
          Sys.mkdir d 0o755;
          (d, true)
      in
      let dur_plan = Fault.create ~seed:(seed + 4) fault_config in
      Fun.protect
        ~finally:(fun () -> if cleanup_root then rm_rf state_root)
        (fun () ->
          let history_dir = Filename.concat state_root "history" in
          if Sys.file_exists history_dir then rm_rf history_dir;
          let store, _report =
            match Store.open_ ~dir:history_dir () with
            | Ok x -> x
            | Error e -> exit_err "cannot open store %s: %s" history_dir e
          in
          (* Committed history: state after every logged entry, keyed by the
             WAL size at which it became durable.  Offset 0 covers crash
             points inside the log header itself. *)
          let dur_server = Signature_server.create () in
          let dur_client = Signature_client.create ~seed:(seed + 5) () in
          let history = ref [ (0, Store.state store) ] in
          let checkpoint () =
            if fst (List.hd !history) <> Store.wal_size store then
              history := (Store.wal_size store, Store.state store) :: !history
          in
          for round = 1 to syncs do
            let upto = max 1 (n_sigs * round / syncs) in
            ignore
              (Signature_server.publish dur_server
                 (Array.to_list (Array.sub all_signatures 0 upto)));
            Store.record_publish store dur_server;
            checkpoint ();
            ignore
              (Signature_client.sync dur_client
                 ~fetch:(Signature_server.fetch dur_server));
            Store.record_sync store dur_client;
            checkpoint ()
          done;
          let final_state = Store.state store in
          let boundaries = List.rev_map fst !history in
          Store.close store;
          let wal_image = slurp (Store.wal_path ~dir:history_dir) in

          (* Uninterrupted recovery must restore the exact final state and
             a byte-identical signature set. *)
          let recovered_sigs =
            match Store.open_ ~dir:history_dir () with
            | Error e -> exit_err "clean recovery failed: %s" e
            | Ok (store', report) ->
              if report.Store.tail <> Wal.Clean then
                exit_err "clean log reported a torn tail: %s"
                  (Store.report_to_string report);
              if not (Store.state_equal (Store.state store') final_state) then
                exit_err "clean recovery diverged from the pre-restart state";
              let sigs = Signature_client.signatures (Store.restore_client store') in
              Store.close store';
              sigs
          in
          let serialize sigs = String.concat "\n" (List.map Signature_io.to_line sigs) in
          if serialize recovered_sigs <> serialize (Signature_client.signatures dur_client)
          then exit_err "recovered signature set is not byte-identical";
          let recovered_detected =
            Detector.count_detected (Detector.create recovered_sigs) (Workload.packets ds)
          in
          Printf.printf
            "\ndurability: %d committed checkpoints (%d WAL bytes); clean recovery detects %d/%d (baseline %d)\n"
            (List.length !history - 1)
            (String.length wal_image) recovered_detected total base_detected;
          if recovered_detected <> base_detected then
            exit_err "post-recovery detection diverged from the fault-free baseline";

          (* Crash-point loop: every trial must recover to a committed
             state — the exact pre-crash one unless torn-write damage
             forced an earlier truncation. *)
          let last_record_start =
            match boundaries with
            | _ :: _ ->
              List.fold_left
                (fun acc b -> if b < String.length wal_image then max acc b else acc)
                0 boundaries
            | [] -> 0
          in
          let exact = ref 0 and earlier = ref 0 in
          for trial = 1 to crash_points do
            let torn_before = Fault.count dur_plan Fault.Torn_write in
            let damaged =
              Fault.torn_write dur_plan ~protect:(String.length Wal.magic)
                ~tail_start:last_record_start wal_image
            in
            let torn_fired = Fault.count dur_plan Fault.Torn_write > torn_before in
            let cut =
              match Fault.crash_point dur_plan ~len:(String.length damaged) with
              | Some off -> off
              | None -> String.length damaged
            in
            let damaged = String.sub damaged 0 cut in
            let crash_dir = Filename.concat state_root (Printf.sprintf "crash%d" trial) in
            if Sys.file_exists crash_dir then rm_rf crash_dir;
            Sys.mkdir crash_dir 0o755;
            spit (Store.wal_path ~dir:crash_dir) damaged;
            (match Store.open_ ~dir:crash_dir () with
            | Error e -> exit_err "trial %d: recovery failed: %s" trial e
            | Ok (store', _report) ->
              let recovered = Store.state store' in
              Store.close store';
              let expected =
                List.fold_left
                  (fun acc (off, st) ->
                    match acc with
                    | Some (best, _) when best >= off -> acc
                    | _ when off <= cut -> Some (off, st)
                    | _ -> acc)
                  None !history
                |> Option.map snd
                |> Option.value ~default:Store.empty_state
              in
              if (not torn_fired) && not (Store.state_equal recovered expected) then
                exit_err "trial %d: crash at byte %d did not restore the committed state"
                  trial cut;
              if Store.state_equal recovered expected then incr exact
              else if List.exists (fun (_, st) -> Store.state_equal recovered st) !history
              then incr earlier
              else
                exit_err "trial %d: recovery produced a state that was never committed"
                  trial);
            rm_rf crash_dir
          done;
          Printf.printf
            "durability: %d crash trials — %d exact pre-crash restores, %d truncated to an earlier committed state\n"
            crash_points !exact !earlier;

          (* Compaction: snapshot + log reset must preserve the state. *)
          match Store.open_ ~dir:history_dir () with
          | Error e -> exit_err "reopen for compaction failed: %s" e
          | Ok (store', _) ->
            Store.compact store';
            Store.close store';
            (match Store.open_ ~dir:history_dir () with
            | Error e -> exit_err "post-compaction recovery failed: %s" e
            | Ok (store'', report) ->
              if not (Store.state_equal (Store.state store'') final_state) then
                exit_err "compaction changed the recovered state";
              Printf.printf "durability: compaction ok (%s)\n"
                (Store.report_to_string report);
              Store.close store''));

      Printf.printf "\nfaults injected:\n";
      List.iter
        (fun (plan_name, plan) ->
          Printf.printf "  %-7s" (plan_name ^ ":");
          List.iter
            (fun (k, c) -> Printf.printf " %s=%d" (Fault.kind_name k) c)
            (Fault.summary plan);
          print_newline ())
        [ ("ingest", ingest_plan); ("sync", sync_plan); ("store", dur_plan) ]
    in
    match soak () with
    | () -> Printf.printf "uncaught exceptions: 0\n"
    | exception e -> exit_err "uncaught exception: %s" (Printexc.to_string e)
  in
  let rate ~names ~doc ~default =
    Arg.(value & opt float default & info names ~docv:"RATE" ~doc)
  in
  let corrupt = rate ~names:[ "corrupt-rate" ] ~doc:"Byte-corruption rate." ~default:0.1 in
  let truncate = rate ~names:[ "truncate-rate" ] ~doc:"Payload truncation rate." ~default:0.03 in
  let drop = rate ~names:[ "drop-rate" ] ~doc:"Record drop rate." ~default:0.03 in
  let duplicate = rate ~names:[ "duplicate-rate" ] ~doc:"Record duplication rate." ~default:0.03 in
  let delay = rate ~names:[ "delay-rate" ] ~doc:"Response delay rate." ~default:0.1 in
  let server_error =
    rate ~names:[ "server-error-rate" ] ~doc:"Transient server error rate." ~default:0.2
  in
  let syncs =
    Arg.(value & opt int 5
        & info [ "syncs" ] ~docv:"N" ~doc:"Publish/sync rounds in the signature soak.")
  in
  let fail_closed =
    Arg.(value & flag
        & info [ "fail-closed" ]
            ~doc:"Block everything while the signature feed is stale (default: fail-open).")
  in
  let limit =
    Arg.(value & opt int 5_000
        & info [ "limit" ] ~docv:"N" ~doc:"Recovered packets to replay through the monitor.")
  in
  let scale_small =
    Arg.(value & opt float 0.05
        & info [ "scale" ] ~docv:"SCALE" ~doc:"Traffic scale factor (soak default 0.05).")
  in
  let n_small =
    Arg.(value & opt int 150
        & info [ "n"; "sample" ] ~docv:"N" ~doc:"Suspicious packets sampled for signatures.")
  in
  let crash_points =
    Arg.(value & opt int 8
        & info [ "crash-points" ] ~docv:"N"
            ~doc:"Crash/recover trials in the durability soak.")
  in
  let crash_rate =
    rate ~names:[ "crash-rate" ]
      ~doc:"Probability a durability trial cuts the log at a crash point." ~default:0.75
  in
  let torn_write_rate =
    rate ~names:[ "torn-write-rate" ]
      ~doc:"Probability a durability trial damages committed log bytes." ~default:0.25
  in
  let state_dir =
    Arg.(value
        & opt (some string) None
        & info [ "state-dir" ] ~docv:"DIR"
            ~doc:
              "Durable state directory for the soak (kept afterwards; inspect with \
               $(b,leakdetect store)).  Default: a temporary directory, removed at exit.")
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "End-to-end fault-injection soak: generate a workload, ship it through a \
          faulty wire, sync signatures through the resilient client, crash and \
          recover the durable signature store, and report recovery.")
    Term.(const run $ setup_log_t $ seed_t $ scale_small $ n_small $ corrupt $ truncate
          $ drop $ duplicate $ delay $ server_error $ syncs $ fail_closed $ limit
          $ crash_points $ crash_rate $ torn_write_rate $ state_dir)

(* --- store --- *)

let store_cmd =
  let run () dir compact =
    match Store.open_ ~dir () with
    | Error e -> exit_err "cannot open store %s: %s" dir e
    | Ok (store, report) ->
      Printf.printf "state dir: %s\nrecovery:  %s\n" dir (Store.report_to_string report);
      let st = Store.state store in
      Printf.printf "server:    v%d, %d signature(s)\n" st.Store.server_version
        (List.length st.Store.server_signatures);
      Printf.printf "client:    v%d, %d signature(s), health %s\n" st.Store.client_version
        (List.length st.Store.client_signatures)
        (Signature_client.health_to_string st.Store.client_health);
      Printf.printf "wal:       %d byte(s) at %s\n" (Store.wal_size store)
        (Store.wal_path ~dir);
      if compact then begin
        Store.compact store;
        Printf.printf "compacted: snapshot written, log reset to %d byte(s)\n"
          (Store.wal_size store)
      end;
      Store.close store
  in
  let dir =
    Arg.(required
        & opt (some string) None
        & info [ "state-dir" ] ~docv:"DIR" ~doc:"Durable state directory.")
  in
  let compact =
    Arg.(value & flag
        & info [ "compact" ]
            ~doc:"Fold the recovered state into an atomic snapshot and reset the log.")
  in
  Cmd.v
    (Cmd.info "store"
       ~doc:
         "Recover a durable signature-state directory and report what was salvaged; \
          optionally compact the write-ahead log into a snapshot.")
    Term.(const run $ setup_log_t $ dir $ compact)

(* --- trace --- *)

(* Hand-rolled JSON writers for the --stats-json dump (no JSON dependency;
   the shapes are fixed, only strings need escaping). *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let rec span_json span =
  Printf.sprintf "{\"name\":\"%s\",\"start_ns\":%d,\"duration_ns\":%d,\"children\":[%s]}"
    (json_escape (Obs.Span.name span))
    (Obs.Span.start_ns span) (Obs.Span.duration_ns span)
    (String.concat "," (List.map span_json (Obs.Span.children span)))

let sample_json (s : Obs.sample) =
  let labels =
    String.concat ","
      (List.map
         (fun (k, v) ->
           Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v))
         s.Obs.labels)
  in
  let value =
    match s.Obs.value with
    | Obs.Counter_value v -> Printf.sprintf "\"type\":\"counter\",\"value\":%d" v
    | Obs.Gauge_value v -> Printf.sprintf "\"type\":\"gauge\",\"value\":%d" v
    | Obs.Histogram_value { buckets; sum; count } ->
      Printf.sprintf "\"type\":\"histogram\",\"sum\":%.17g,\"count\":%d,\"buckets\":[%s]"
        sum count
        (String.concat ","
           (List.map
              (fun (le, c) -> Printf.sprintf "{\"le\":%.17g,\"count\":%d}" le c)
              buckets))
  in
  Printf.sprintf "{\"family\":\"%s\",\"help\":\"%s\",\"labels\":{%s},%s}"
    (json_escape s.Obs.family) (json_escape s.Obs.help) labels value

let stats_json_string obs =
  Printf.sprintf "{\"spans\":[%s],\"metrics\":[%s]}\n"
    (String.concat "," (List.map span_json (Obs.root_spans obs)))
    (String.concat "," (List.map sample_json (Obs.samples obs)))

let trace_cmd =
  let run () seed scale trace n compressor linkage cut jobs limit syncs metrics_out
      stats_json normalize =
    let obs = Obs.create () in
    let normalize = normalize_of ~obs normalize in
    (* When generating the workload we also hold the ground-truth payload
       checker, so the payload_check family populates; a loaded trace file
       carries labels instead and skips that stage. *)
    let ds, records =
      match trace with
      | None ->
        let ds = Workload.generate ~seed ~scale () in
        (Some ds, ds.Workload.records)
      | Some _ -> (None, load_records ~trace ~seed ~scale)
    in
    (match ds with
    | Some ds ->
      ignore
        (Payload_check.split ~obs ds.Workload.payload_check
           (Array.map (fun r -> r.Trace.packet) records))
    | None -> ());
    let suspicious, normal = split_records records in
    if Array.length suspicious = 0 then exit_err "trace has no sensitive packets";
    let config =
      Pipeline.Config.with_normalize normalize
        (Pipeline.Config.with_obs obs (config_of ~compressor ~linkage ~cut ()))
    in
    let outcome =
      Pipeline.run
        ~config:(Pipeline.Config.with_jobs ~obs jobs config)
        ~rng:(Prng.create seed) ~n ~suspicious ~normal ()
    in
    let signatures = outcome.Pipeline.signatures in
    Printf.printf "pipeline: %d suspicious / %d normal packets -> %d signatures\n"
      (Array.length suspicious) (Array.length normal) (List.length signatures);

    (* Distribution: publish the set in growing chunks while an instrumented
       client follows, journaling every step through an instrumented store so
       the server/client/store families move too. *)
    let server = Signature_server.create ~obs () in
    let client = Signature_client.create ~obs ~seed:(seed + 1) () in
    let state_dir = Filename.temp_file "leakdetect_trace" "" in
    Sys.remove state_dir;
    Sys.mkdir state_dir 0o755;
    Fun.protect
      ~finally:(fun () -> rm_rf state_dir)
      (fun () ->
        let store, _report =
          match Store.open_ ~obs ~dir:state_dir () with
          | Ok x -> x
          | Error e -> exit_err "cannot open store %s: %s" state_dir e
        in
        let all = Array.of_list signatures in
        let n_sigs = Array.length all in
        for round = 1 to syncs do
          let upto = if n_sigs = 0 then 0 else max 1 (n_sigs * round / syncs) in
          ignore
            (Signature_server.publish server (Array.to_list (Array.sub all 0 upto)));
          Store.record_publish store server;
          ignore (Signature_client.sync client ~fetch:(Signature_server.fetch server));
          Store.record_sync store client
        done;
        (* One sync against an unchanged server, for the `unchanged` outcome. *)
        ignore (Signature_client.sync client ~fetch:(Signature_server.fetch server));
        Store.compact store;
        Store.close store);
    Printf.printf "distribution: server v%d, client v%d (%d publish/sync rounds)\n"
      (Signature_server.current_version server)
      (Signature_client.version client)
      syncs;

    (* Enforcement: replay through the monitor, then cross-check the O(1)
       stats against the event log and the obs counters. *)
    let monitor =
      Flow_control.create ~obs ?normalize (Signature_client.signatures client)
    in
    let replayed = min limit (Array.length records) in
    for i = 0 to replayed - 1 do
      let r = records.(i) in
      ignore (Flow_control.process monitor ~app_id:r.Trace.app_id r.Trace.packet)
    done;
    (match Flow_control.reconcile monitor with
    | Ok () -> ()
    | Error e -> exit_err "monitor stats reconciliation failed: %s" e);
    let allowed, blocked, prompted = Flow_control.stats monitor in
    Printf.printf
      "enforcement: %d replayed, %d allowed, %d blocked, %d prompted (stats reconciled)\n"
      replayed allowed blocked prompted;

    (* Scrape through the server's real /metrics endpoint. *)
    let response =
      Signature_server.handle server
        (Request.make Request.GET Signature_server.metrics_endpoint)
    in
    if response.Response.status <> 200 then
      exit_err "GET %s answered %d" Signature_server.metrics_endpoint
        response.Response.status;
    let scrape = response.Response.body in
    (match metrics_out with
    | Some "-" -> print_string scrape
    | Some path ->
      spit path scrape;
      Printf.printf "wrote %s (%d bytes)\n" path (String.length scrape)
    | None -> ());
    (match stats_json with
    | Some path ->
      spit path (stats_json_string obs);
      Printf.printf "wrote %s\n" path
    | None -> ());
    let families =
      List.length
        (List.sort_uniq compare (List.map (fun s -> s.Obs.family) (Obs.samples obs)))
    in
    Printf.printf "\nscrape: %d metric families\n\nspans:\n" families;
    List.iter (fun span -> print_string (Obs.Span.render span)) (Obs.root_spans obs)
  in
  let scale_small =
    Arg.(value & opt float 0.05
        & info [ "scale" ] ~docv:"SCALE" ~doc:"Traffic scale factor (trace default 0.05).")
  in
  let n_small =
    Arg.(value & opt int 150
        & info [ "n"; "sample" ] ~docv:"N" ~doc:"Suspicious packets sampled for signatures.")
  in
  let limit =
    Arg.(value & opt int 5_000
        & info [ "limit" ] ~docv:"N" ~doc:"Packets to replay through the monitor.")
  in
  let syncs =
    Arg.(value & opt int 3
        & info [ "syncs" ] ~docv:"N" ~doc:"Publish/sync rounds against the signature server.")
  in
  let metrics_out =
    Arg.(value
        & opt (some string) None
        & info [ "metrics-out" ] ~docv:"FILE"
            ~doc:
              "Write the Prometheus text scrape (served by the in-process \
               $(b,GET /metrics) endpoint) to FILE; $(b,-) prints it to stdout.")
  in
  let stats_json =
    Arg.(value
        & opt (some string) None
        & info [ "stats-json" ] ~docv:"FILE"
            ~doc:"Write the span tree and every metric sample as JSON to FILE.")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run the full pipeline (generation, distribution, enforcement, durable \
          store) with an active metrics registry, print the span tree, and scrape \
          the /metrics endpoint.")
    Term.(const run $ setup_log_t $ seed_t $ scale_small $ trace_t $ n_small
          $ compressor_t $ linkage_t $ cut_t $ jobs_t $ limit $ syncs $ metrics_out
          $ stats_json $ normalize_t)

(* --- evade --- *)

let evade_cmd =
  let run () seed scale rates mutators depth sample_n json_out recall_floor metrics_out
      =
    let mutators =
      match mutators with
      | [] -> Mutator.all
      | names ->
        List.map
          (fun name ->
            match Mutator.by_name name with
            | Some m -> m
            | None ->
              exit_err "unknown mutator %S (known: %s)" name
                (String.concat ", " (Mutator.names ())))
          names
    in
    if rates = [] then exit_err "need at least one --rates value";
    List.iter
      (fun r -> if r < 0.0 || r > 1.0 then exit_err "rate %g outside [0, 1]" r)
      rates;
    let obs = if metrics_out = None then Obs.noop else Obs.create () in
    let budgets = { Normalize.default_budgets with Normalize.max_depth = depth } in
    let report = Harness.run ~obs ~budgets ~mutators ~rates ~seed ~scale ~sample_n () in
    print_string (Harness.render report);
    (match json_out with
    | Some "-" -> print_endline (Json.to_string_pretty (Harness.to_json report))
    | Some path ->
      spit path (Json.to_string_pretty (Harness.to_json report));
      Printf.printf "wrote %s\n" path
    | None -> ());
    (match metrics_out with
    | Some "-" -> print_string (Obs.to_prometheus obs)
    | Some path ->
      spit path (Obs.to_prometheus obs);
      Printf.printf "wrote %s\n" path
    | None -> ());
    match recall_floor with
    | Some floor when Harness.floor_recall report < floor ->
      exit_err "recall floor violated: %.3f < %.3f over decodable mutations"
        (Harness.floor_recall report) floor
    | _ -> ()
  in
  let scale_small =
    Arg.(value & opt float 0.05
        & info [ "scale" ] ~docv:"SCALE" ~doc:"Traffic scale factor (evade default 0.05).")
  in
  let rates =
    Arg.(value
        & opt (list float) [ 0.5; 1.0 ]
        & info [ "rates" ] ~docv:"R1,R2,..."
            ~doc:"Mutation rates: fraction of leak packets rewritten per cell.")
  in
  let mutators =
    Arg.(value
        & opt (list string) []
        & info [ "mutators" ] ~docv:"NAME,..."
            ~doc:"Mutators to replay (default: the full catalogue).")
  in
  let depth =
    Arg.(value & opt int Normalize.default_budgets.Normalize.max_depth
        & info [ "depth" ] ~docv:"N" ~doc:"Lattice decode-depth budget.")
  in
  let sample_n =
    Arg.(value & opt int 300
        & info [ "sample" ] ~docv:"N"
            ~doc:"Suspicious packets sampled for signature generation.")
  in
  let json_out =
    Arg.(value
        & opt (some string) None
        & info [ "json" ] ~docv:"FILE"
            ~doc:"Write the full report as JSON to FILE; $(b,-) prints to stdout.")
  in
  let recall_floor =
    Arg.(value
        & opt (some float) None
        & info [ "recall-floor" ] ~docv:"R"
            ~doc:
              "Exit non-zero unless every single-layer decodable mutation keeps \
               normalized recall >= R.")
  in
  let metrics_out =
    Arg.(value
        & opt (some string) None
        & info [ "metrics-out" ] ~docv:"FILE"
            ~doc:
              "Run with an active metrics registry and write the Prometheus scrape \
               to FILE; $(b,-) prints to stdout.")
  in
  Cmd.v
    (Cmd.info "evade"
       ~doc:
         "Replay ground-truth leaks through the evasion-mutator catalogue and \
          report per-mutator recall with and without canonicalization.")
    Term.(const run $ setup_log_t $ seed_t $ scale_small $ rates $ mutators $ depth
          $ sample_n $ json_out $ recall_floor $ metrics_out)

let soak_cmd =
  let run () seed clients tenants ticks sync_period publishes compact_every k
      reporter_cap candidates byzantine drop corrupt server_error
      server_crash_rate client_restart_rate drain_rounds min_delta_ratio
      topology origins standby_origins relays byzantine_relays
      byzantine_corrupt relay_sync_period partitions partition_ticks
      relay_crashes epoch_flips gossip_period fork_injections origin_weight
      min_offload state_dir json_out metrics_out =
    let config =
      {
        Soak.default_config with
        Soak.clients;
        tenants;
        ticks;
        sync_period;
        publishes;
        compact_every;
        k;
        reporter_cap;
        candidates;
        byzantine;
        fault =
          {
            Fault.default with
            Fault.drop_rate = drop;
            corrupt_rate = corrupt;
            server_error_rate = server_error;
          };
        server_crash_rate;
        client_restart_rate;
        drain_rounds;
        seed;
      }
    in
    let obs = if metrics_out <> None then Obs.create () else Obs.noop in
    let state_root, cleanup_root =
      match state_dir with
      | Some d ->
        if not (Sys.file_exists d) then Sys.mkdir d 0o755;
        (d, false)
      | None ->
        let d = Filename.temp_file "leakdetect_soak" "" in
        Sys.remove d;
        Sys.mkdir d 0o755;
        (d, true)
    in
    let emit_metrics () =
      match metrics_out with
      | None -> ()
      | Some "-" -> print_string (Obs.to_prometheus obs)
      | Some path ->
        spit path (Obs.to_prometheus obs);
        Printf.printf "metrics written to %s\n" path
    in
    if topology then begin
      let tconfig =
        {
          Topology.default_config with
          Topology.origins;
          standby_origins;
          relays;
          byzantine_relays;
          byzantine_corrupt_rate = byzantine_corrupt;
          clients;
          tenants;
          ticks;
          sync_period;
          relay_sync_period;
          publishes;
          compact_every;
          k;
          reporter_cap;
          candidates;
          byzantine;
          fault = config.Soak.fault;
          partitions;
          partition_ticks;
          relay_crashes;
          epoch_flips;
          origin_crash_rate = server_crash_rate;
          client_restart_rate;
          min_offload;
          drain_rounds;
          gossip_period;
          fork_injections;
          origin_weight;
          seed;
        }
      in
      let report =
        Fun.protect
          ~finally:(fun () -> if cleanup_root then rm_rf state_root)
          (fun () ->
            let dir = Filename.concat state_root "topology" in
            if Sys.file_exists dir then rm_rf dir;
            try Topology.run ~obs ~dir tconfig
            with Invalid_argument m -> exit_err "%s" m)
      in
      print_endline (Topology.summary report);
      (match json_out with
      | None -> ()
      | Some "-" ->
        print_endline (Json.to_string_pretty (Topology.report_to_json report))
      | Some path ->
        spit path (Json.to_string_pretty (Topology.report_to_json report));
        Printf.printf "topology report written to %s\n" path);
      emit_metrics ();
      if not (Topology.ok report) then
        exit_err "topology soak failed: invariant violation or offload floor"
    end
    else begin
      let report =
        Fun.protect
          ~finally:(fun () -> if cleanup_root then rm_rf state_root)
          (fun () ->
            let dir = Filename.concat state_root "authority" in
            if Sys.file_exists dir then rm_rf dir;
            try Soak.run ~obs ~dir config
            with Invalid_argument m -> exit_err "%s" m)
      in
      print_endline (Soak.summary report);
      (match json_out with
      | None -> ()
      | Some "-" ->
        print_endline (Json.to_string_pretty (Soak.report_to_json report))
      | Some path ->
        spit path (Json.to_string_pretty (Soak.report_to_json report));
        Printf.printf "soak report written to %s\n" path);
      emit_metrics ();
      if not (Soak.ok report) then exit_err "soak invariants violated";
      if report.Soak.steady_delta_ratio < min_delta_ratio then
        exit_err "steady-state delta ratio %.1f below floor %.1f"
          report.Soak.steady_delta_ratio min_delta_ratio
    end
  in
  let flag_int name v doc =
    Arg.(value & opt int v & info [ name ] ~docv:"N" ~doc)
  in
  let flag_rate name v doc =
    Arg.(value & opt float v & info [ name ] ~docv:"RATE" ~doc)
  in
  let clients = flag_int "clients" 500 "Simulated delta-sync clients." in
  let tenants = flag_int "tenants" 2 "Tenants (clients assigned round-robin)." in
  let ticks = flag_int "ticks" 2000 "Scheduler ticks (ramp is the first 2/3)." in
  let sync_period = flag_int "sync-period" 20 "Ticks between one client's syncs." in
  let publishes = flag_int "publishes" 40 "Signature-set publishes over the ramp." in
  let compact_every =
    flag_int "compact-every" 5 "Compact the changelog every N publishes (0 = never)."
  in
  let k = flag_int "k" 3 "Distinct reporters required to promote a candidate." in
  let reporter_cap =
    flag_int "reporter-cap" 16 "Pending candidates one reporter may be party to."
  in
  let candidates = flag_int "candidates" 6 "Honest candidate signatures per tenant." in
  let byzantine = flag_int "byzantine" 2 "Hostile reporters flooding candidates." in
  let drop = flag_rate "drop" 0.10 "Transport record-drop rate." in
  let corrupt = flag_rate "corrupt" 0.10 "Transport byte-corruption rate." in
  let server_error = flag_rate "server-error" 0.2 "Transient server-error rate." in
  let server_crash_rate =
    flag_rate "server-crash-rate" 0.25
      "Crash-point probability per publish / compaction."
  in
  let client_restart_rate =
    flag_rate "client-restart-rate" 0.01 "Per-sync client state-loss probability."
  in
  let drain_rounds =
    flag_int "drain-rounds" 40 "Extra sync rounds for stragglers after the run."
  in
  let min_delta_ratio =
    Arg.(value
        & opt float 5.0
        & info [ "min-delta-ratio" ] ~docv:"R"
            ~doc:
              "Exit non-zero unless steady-state delta syncs outnumber full \
               downloads by at least R.")
  in
  let topology =
    Arg.(value
        & flag
        & info [ "topology" ]
            ~doc:
              "Run the multi-node topology soak instead: sharded origins, a \
               relay tier with partitions, crashes and a byzantine member, \
               and mid-soak epoch flips migrating tenants.")
  in
  let origins = flag_int "origins" 2 "Origins in the initial shard map (topology)." in
  let standby_origins =
    flag_int "standby-origins" 1
      "Standby origins joining the map at odd epoch flips (topology)."
  in
  let relays = flag_int "relays" 3 "Relay nodes between clients and origins (topology)." in
  let byzantine_relays =
    flag_int "byzantine-relays" 1 "Relays serving corrupted bytes (topology)."
  in
  let byzantine_corrupt =
    flag_rate "byzantine-corrupt" 0.5
      "Per-response corruption rate of a byzantine relay (topology)."
  in
  let relay_sync_period =
    flag_int "relay-sync-period" 4 "Ticks between relay upstream syncs (topology)."
  in
  let partitions =
    flag_int "partitions" 3 "Relay-from-origin partitions scheduled (topology)."
  in
  let partition_ticks =
    flag_int "partition-ticks" 150 "Duration of each partition (topology)."
  in
  let relay_crashes =
    flag_int "relay-crashes" 2 "Relay crashes (total state loss) scheduled (topology)."
  in
  let epoch_flips =
    flag_int "epoch-flips" 1 "Mid-soak shard-map advances migrating tenants (topology)."
  in
  let gossip_period =
    flag_int "gossip-period" 8
      "Ticks between relay gossip rounds, 0 to disable (topology)."
  in
  let fork_injections =
    flag_int "fork-injections" 2
      "Adversarial relay-mirror forks injected mid-soak (topology)."
  in
  let origin_weight =
    flag_int "origin-weight" 1
      "Shard-map capacity weight of origin 0; 1 keeps the map unweighted \
       (topology)."
  in
  let min_offload =
    flag_rate "min-offload" 0.8
      "Exit non-zero unless relays absorb at least this share of client sync \
       requests (topology)."
  in
  let state_dir =
    Arg.(value
        & opt (some string) None
        & info [ "state-dir" ] ~docv:"DIR"
            ~doc:
              "Directory for the authority journal/snapshot (default: a \
               temporary directory, removed afterwards).")
  in
  let json_out =
    Arg.(value
        & opt (some string) None
        & info [ "json" ] ~docv:"FILE"
            ~doc:"Write the soak report as JSON to FILE; $(b,-) prints to stdout.")
  in
  let metrics_out =
    Arg.(value
        & opt (some string) None
        & info [ "metrics-out" ] ~docv:"FILE"
            ~doc:
              "Run with an active metrics registry and write the Prometheus \
               scrape to FILE; $(b,-) prints to stdout.")
  in
  Cmd.v
    (Cmd.info "soak"
       ~doc:
         "Drive hundreds of simulated clients against the journaled multi-tenant \
          signature authority through faulty transports, with server crash \
          points, and check the convergence invariants.")
    Term.(const run $ setup_log_t $ seed_t $ clients $ tenants $ ticks
          $ sync_period $ publishes $ compact_every $ k $ reporter_cap
          $ candidates $ byzantine $ drop $ corrupt $ server_error
          $ server_crash_rate $ client_restart_rate $ drain_rounds
          $ min_delta_ratio $ topology $ origins $ standby_origins $ relays
          $ byzantine_relays $ byzantine_corrupt $ relay_sync_period
          $ partitions $ partition_ticks $ relay_crashes $ epoch_flips
          $ gossip_period $ fork_injections $ origin_weight
          $ min_offload $ state_dir $ json_out $ metrics_out)

let main_cmd =
  let doc = "signature generation for sensitive information leakage (ICDE 2013 reproduction)" in
  Cmd.group
    (Cmd.info "leakdetect" ~version:"1.0.0" ~doc)
    [ generate_cmd; stats_cmd; cluster_cmd; sign_cmd; detect_cmd; evaluate_cmd;
      monitor_cmd; chaos_cmd; store_cmd; trace_cmd; evade_cmd; soak_cmd ]

let () = exit (Cmd.eval main_cmd)
