(** Obfuscated-traffic experiment (Sec. VI).

    The paper argues that its signatures still work when "an advertisement
    module uses one encryption key among applications or applies a
    cryptographic hash function to sensitive information": with a fixed key
    and fixed plaintext fields (the device identifiers), the ciphertext
    itself contains invariant substrings for the clustering to find.

    This module simulates such a service: a module that XOR-encrypts its
    reporting payload with a keystream shared across all embedding
    applications and ships it base64-encoded in a POST body.  The payload
    check cannot see the raw identifiers in these packets — the experiment
    measures how much of the leak the signature pipeline still catches. *)

val host : string
val service_ip : Leakdetect_net.Ipv4.t

val keystream : int -> string
(** [keystream n] is the first [n] bytes of the service's fixed keystream
    (derived deterministically from the module's embedded key). *)

val xor_crypt : string -> string
(** XOR with {!keystream}; an involution ([xor_crypt (xor_crypt s) = s]). *)

val leak_packet :
  Leakdetect_util.Prng.t -> Device.t -> package:string -> Leakdetect_http.Packet.t
(** An encrypted report carrying IMEI, SIM serial and Android ID:
    [POST /c/report] with body [v=2&d=<base64(xor(fields))>&r=<nonce>].
    The identifier fields precede the nonce, so every leak packet shares a
    constant ciphertext prefix. *)

val leak_packet_b64url :
  Leakdetect_util.Prng.t -> Device.t -> package:string -> Leakdetect_http.Packet.t
(** {!leak_packet} with the ciphertext in URL-safe unpadded base64 (the
    [android.util.Base64.URL_SAFE|NO_PADDING] flavour).  {!decode_leak}
    recovers either variant. *)

val leaked_kinds : Leakdetect_core.Sensitive.kind list
(** Ground truth for {!leak_packet} (invisible to the payload check). *)

val beacon_packet :
  Leakdetect_util.Prng.t -> Device.t -> package:string -> Leakdetect_http.Packet.t
(** The same service's heartbeat, carrying nothing sensitive. *)

val decode_leak : Leakdetect_http.Packet.t -> string option
(** Recovers the plaintext report from a leak packet (what the analyst's
    reverse engineering would see); [None] if the body does not parse. *)
