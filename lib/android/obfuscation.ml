module Prng = Leakdetect_util.Prng
module Base64 = Leakdetect_util.Base64
module Http = Leakdetect_http
module Url = Leakdetect_net.Url
module Sensitive = Leakdetect_core.Sensitive

let host = "c.zqcrypt.cn"
let service_ip = Leakdetect_net.Ipv4.of_octets 61 147 8 21

(* The module's embedded key, identical in every application build — the
   property the paper's argument relies on. *)
let embedded_key = 0x5EC12E7

let keystream n =
  let rng = Prng.create embedded_key in
  String.init n (fun _ -> Char.chr (Prng.int rng 256))

let xor_crypt s =
  let ks = keystream (String.length s) in
  String.init (String.length s) (fun i ->
      Char.chr (Char.code s.[i] lxor Char.code ks.[i]))

let leaked_kinds = [ Sensitive.Android_id; Sensitive.Imei; Sensitive.Sim_serial ]

let headers package =
  Http.Headers.of_list
    [
      ("Host", host);
      ("User-Agent", Printf.sprintf "%s/1.0 (Linux; Android 2.3.4)" package);
      ("Content-Type", "application/x-www-form-urlencoded");
      ("Connection", "Keep-Alive");
    ]

let post package body =
  let request = Http.Request.make ~headers:(headers package) ~body Http.Request.POST "/c/report" in
  let dst = { Http.Packet.ip = service_ip; port = 80; host } in
  Http.Packet.make ~dst ~request

let leak_packet rng device ~package =
  (* Identifier fields first: the ciphertext prefix is constant across all
     packets of all applications; only the nonce tail varies. *)
  let plaintext =
    Printf.sprintf "imei=%s&iccid=%s&aid=%s&n=%d" device.Device.imei
      device.Device.sim_serial device.Device.android_id
      (Prng.int rng 1_000_000_000)
  in
  let body =
    Url.encode_query [ ("v", "2"); ("d", Base64.encode (xor_crypt plaintext)) ]
  in
  post package body

let leak_packet_b64url rng device ~package =
  let plaintext =
    Printf.sprintf "imei=%s&iccid=%s&aid=%s&n=%d" device.Device.imei
      device.Device.sim_serial device.Device.android_id
      (Prng.int rng 1_000_000_000)
  in
  (* URL-safe, unpadded: what a module calling android.util.Base64 with
     URL_SAFE|NO_PADDING emits.  Same keystream, so the invariant
     ciphertext prefix still re-encodes to an invariant substring. *)
  let body =
    Url.encode_query [ ("v", "2"); ("d", Base64.encode_url (xor_crypt plaintext)) ]
  in
  post package body

let beacon_packet rng device ~package =
  ignore device;
  let body =
    Url.encode_query [ ("v", "2"); ("hb", "1"); ("t", string_of_int (Prng.int rng 100000)) ]
  in
  post package body

let decode_leak (packet : Http.Packet.t) =
  match Url.decode_query packet.Http.Packet.content.Http.Packet.body with
  | None -> None
  | Some params -> (
    match List.assoc_opt "d" params with
    | None -> None
    | Some encoded -> Option.map xor_crypt (Base64.decode encoded))
