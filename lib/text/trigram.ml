module Int_map = Map.Make (Int)

type profile = { counts : int Int_map.t; norm : float }

let key s i =
  (Char.code s.[i] lsl 16) lor (Char.code s.[i + 1] lsl 8) lor Char.code s.[i + 2]

let profile s =
  let n = String.length s in
  let counts = ref Int_map.empty in
  for i = 0 to n - 3 do
    counts :=
      Int_map.update (key s i)
        (function None -> Some 1 | Some c -> Some (c + 1))
        !counts
  done;
  let norm =
    sqrt
      (Int_map.fold (fun _ c acc -> acc +. (float_of_int c *. float_of_int c)) !counts 0.)
  in
  { counts = !counts; norm }

let cardinality p = Int_map.cardinal p.counts

let cosine_similarity a b =
  if a.norm = 0. || b.norm = 0. then 0.
  else begin
    (* Iterate the smaller map. *)
    let small, large = if cardinality a <= cardinality b then (a, b) else (b, a) in
    let dot =
      Int_map.fold
        (fun k c acc ->
          match Int_map.find_opt k large.counts with
          | Some c' -> acc +. (float_of_int c *. float_of_int c')
          | None -> acc)
        small.counts 0.
    in
    dot /. (a.norm *. b.norm)
  end

let cosine_distance x y =
  let px = profile x and py = profile y in
  if px.norm = 0. && py.norm = 0. then 0.
  else if px.norm = 0. || py.norm = 0. then 1.
  else Float.max 0. (Float.min 1. (1. -. cosine_similarity px py))

module Cache = struct
  type t = {
    table : (string, profile) Hashtbl.t;
    parent : t option;  (* frozen cache consulted read-only on misses *)
    mutable frozen : bool;
    frozen_misses : int Atomic.t;
  }

  let create () =
    { table = Hashtbl.create 256; parent = None; frozen = false;
      frozen_misses = Atomic.make 0 }

  let freeze t = t.frozen <- true
  let thaw t = t.frozen <- false
  let frozen t = t.frozen
  let frozen_misses t = Atomic.get t.frozen_misses

  let shadow parent =
    if not parent.frozen then invalid_arg "Trigram.Cache.shadow: parent must be frozen";
    { table = Hashtbl.create 64; parent = Some parent; frozen = false;
      frozen_misses = Atomic.make 0 }

  let get t s =
    match Hashtbl.find_opt t.table s with
    | Some p -> p
    | None -> (
      match t.parent with
      | Some p when Hashtbl.mem p.table s -> Hashtbl.find p.table s
      | _ when t.frozen ->
        (* Read-only mode for cross-domain sharing: compute without
           inserting. *)
        Atomic.incr t.frozen_misses;
        profile s
      | _ ->
        let p = profile s in
        Hashtbl.add t.table s p;
        p)

  let preload t s =
    if t.frozen then invalid_arg "Trigram.Cache.preload: cache is frozen";
    if not (Hashtbl.mem t.table s) then Hashtbl.add t.table s (profile s)

  let size t = Hashtbl.length t.table

  let distance t x y =
    let px = get t x and py = get t y in
    if px.norm = 0. && py.norm = 0. then 0.
    else if px.norm = 0. || py.norm = 0. then 1.
    else Float.max 0. (Float.min 1. (1. -. cosine_similarity px py))
end
