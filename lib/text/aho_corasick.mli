(** Aho-Corasick multi-pattern matching.

    The detector checks every packet against every token of every signature;
    scanning each token separately makes whole-trace detection quadratic in
    practice.  This automaton finds all occurrences of all patterns in one
    pass over the packet, after which conjunction signatures reduce to set
    membership. *)

type t

val build : string list -> t
(** [build patterns] compiles the automaton.  Pattern ids are positions in
    the list.  Duplicate patterns are allowed (each id reports separately).
    @raise Invalid_argument on an empty pattern. *)

val pattern_count : t -> int

val matched_set : t -> string -> bool array
(** [matched_set t text] has [true] at index [i] iff pattern [i] occurs in
    [text].  One pass over [text]. *)

val matched_set_into : t -> bool array -> string -> unit
(** [matched_set_into t buf text] is {!matched_set} writing into a caller
    -owned buffer of length {!pattern_count} (cleared first).  The automaton
    is immutable after {!build}, so one automaton may serve many domains as
    long as each brings its own buffer — this is the per-domain scratch used
    by parallel whole-trace detection.
    @raise Invalid_argument on a buffer of the wrong length. *)

val iter_matches : t -> string -> (int -> int -> unit) -> unit
(** [iter_matches t text f] calls [f id end_pos] for every occurrence of
    every pattern, where [end_pos] is the index one past the occurrence. *)

val iter_matches_sub : t -> off:int -> len:int -> string -> (int -> int -> unit) -> unit
(** [iter_matches_sub t ~off ~len text f] is [iter_matches] over the slice
    [text.[off .. off+len-1]] without copying it; [end_pos] is counted from
    [off].  @raise Invalid_argument on an out-of-bounds slice. *)

val matches_any : t -> string -> bool
(** Early-exit occurrence test. *)

(** Resumable matching for streaming detection.

    A {!Stream.state} is the automaton node reached so far plus the number
    of bytes consumed — everything needed to continue a scan across
    fragment boundaries.  Feeding fragments [f1, f2, ...] reports exactly
    the matches of scanning [f1 ^ f2 ^ ...] in one pass, including
    occurrences that span fragment seams, because the carried node encodes
    every live partial match.  No fragment is ever copied or concatenated:
    [?off]/[?len] scan slices of a caller-owned buffer (e.g. chunk payloads
    inside a raw HTTP body) in place. *)
module Stream : sig
  type state

  val create : unit -> state
  (** A fresh scan positioned at the automaton root, zero bytes consumed. *)

  val reset : state -> unit
  (** Rewind to the root so the state can be reused for the next stream —
      streaming detection keeps one state per flow and resets it instead of
      allocating. *)

  val consumed : state -> int
  (** Total bytes fed so far; match end positions are reported in this
      coordinate space. *)

  val feed : t -> state -> ?off:int -> ?len:int -> string -> (int -> int -> unit) -> unit
  (** [feed t st text f] scans the next fragment ([?off]/[?len] delimit a
      slice, default the whole string) and calls [f id end_pos] for every
      match that completes inside it, [end_pos] counted from the start of
      the stream.  @raise Invalid_argument on an out-of-bounds slice. *)

  val feed_into : t -> state -> bool array -> ?off:int -> ?len:int -> string -> unit
  (** [feed_into t st seen text] is {!feed} recording pattern ids into
      [seen] (length {!pattern_count}) {e without clearing it} — the
      per-flow matched set accumulates across fragments; clear it between
      flows.  @raise Invalid_argument on a buffer of the wrong length. *)
end
