(** Aho-Corasick multi-pattern matching.

    The detector checks every packet against every token of every signature;
    scanning each token separately makes whole-trace detection quadratic in
    practice.  This automaton finds all occurrences of all patterns in one
    pass over the packet, after which conjunction signatures reduce to set
    membership. *)

type t

val build : string list -> t
(** [build patterns] compiles the automaton.  Pattern ids are positions in
    the list.  Duplicate patterns are allowed (each id reports separately).
    @raise Invalid_argument on an empty pattern. *)

val pattern_count : t -> int

val matched_set : t -> string -> bool array
(** [matched_set t text] has [true] at index [i] iff pattern [i] occurs in
    [text].  One pass over [text]. *)

val matched_set_into : t -> bool array -> string -> unit
(** [matched_set_into t buf text] is {!matched_set} writing into a caller
    -owned buffer of length {!pattern_count} (cleared first).  The automaton
    is immutable after {!build}, so one automaton may serve many domains as
    long as each brings its own buffer — this is the per-domain scratch used
    by parallel whole-trace detection.
    @raise Invalid_argument on a buffer of the wrong length. *)

val iter_matches : t -> string -> (int -> int -> unit) -> unit
(** [iter_matches t text f] calls [f id end_pos] for every occurrence of
    every pattern, where [end_pos] is the index one past the occurrence. *)

val matches_any : t -> string -> bool
(** Early-exit occurrence test. *)
