(** Byte-trigram profiles and cosine distance.

    The traffic-clustering literature the paper builds on (BotMiner,
    Perdisci et al.) commonly compares payloads by n-gram statistics rather
    than compression.  This module provides that comparator for the content
    -distance ablation: it is an order of magnitude cheaper than NCD but
    blind to long-range structure. *)

type profile
(** Sparse trigram frequency vector. *)

val profile : string -> profile
(** Profile of all overlapping 3-byte windows; strings shorter than 3 bytes
    produce the empty profile. *)

val cardinality : profile -> int
(** Number of distinct trigrams. *)

val cosine_similarity : profile -> profile -> float
(** In [\[0, 1\]]; 0 when either profile is empty. *)

val cosine_distance : string -> string -> float
(** [1 - cosine_similarity] over fresh profiles, in [\[0, 1\]].  By
    convention 0 when both strings are shorter than 3 bytes, 1 when exactly
    one is. *)

module Cache : sig
  (** Memoizes profiles per string, mirroring the NCD cache's role during
      matrix construction.  Shares the compressor cache's freezing
      protocol: {!preload} or warm sequentially, {!freeze}, then read from
      any number of domains; frozen misses compute a throwaway profile and
      are counted. *)

  type t

  val create : unit -> t
  val distance : t -> string -> string -> float

  val shadow : t -> t
  (** Fresh unfrozen cache reading through to a frozen parent on misses;
      one per domain in a parallel loop.  Never writes to the parent.
      @raise Invalid_argument if the parent is not frozen. *)

  val preload : t -> string -> unit
  (** Compute and store the profile now (sequential warm phase).
      @raise Invalid_argument when the cache is frozen. *)

  val freeze : t -> unit
  val thaw : t -> unit
  val frozen : t -> bool

  val frozen_misses : t -> int
  (** Lookups that missed while frozen (each recomputed its profile). *)

  val size : t -> int
end
