(* Classic Aho-Corasick over the byte alphabet.  Transitions are stored in
   per-node 256-entry arrays: the automata built here are small (signature
   tokens), so the memory trade for O(1) transitions is cheap. *)

type node = {
  next : int array;  (* goto; -1 = undefined during build *)
  mutable fail : int;
  mutable outputs : int list;  (* pattern ids ending here *)
}

(* Minimal growable vector (Dynarray arrives only in OCaml 5.2). *)
module Vec = struct
  type 'a t = { mutable data : 'a array; mutable len : int; dummy : 'a }

  let create dummy = { data = Array.make 16 dummy; len = 0; dummy }

  let push t x =
    if t.len = Array.length t.data then begin
      let grown = Array.make (2 * t.len) t.dummy in
      Array.blit t.data 0 grown 0 t.len;
      t.data <- grown
    end;
    t.data.(t.len) <- x;
    t.len <- t.len + 1

  let get t i = t.data.(i)
  let length t = t.len
end

type t = { nodes : node Vec.t; n_patterns : int }

let new_node () = { next = Array.make 256 (-1); fail = 0; outputs = [] }

let build patterns =
  List.iter (fun p -> if p = "" then invalid_arg "Aho_corasick.build: empty pattern") patterns;
  let nodes = Vec.create (new_node ()) in
  Vec.push nodes (new_node ());
  (* Trie construction. *)
  List.iteri
    (fun id pattern ->
      let state = ref 0 in
      String.iter
        (fun c ->
          let b = Char.code c in
          let node = Vec.get nodes !state in
          if node.next.(b) < 0 then begin
            Vec.push nodes (new_node ());
            node.next.(b) <- Vec.length nodes - 1
          end;
          state := node.next.(b))
        pattern;
      let final = Vec.get nodes !state in
      final.outputs <- id :: final.outputs)
    patterns;
  (* BFS for failure links; also complete the goto function so that every
     transition is defined (next.(b) >= 0 everywhere after this pass). *)
  let queue = Queue.create () in
  let root = Vec.get nodes 0 in
  Array.iteri
    (fun b target ->
      if target < 0 then root.next.(b) <- 0
      else begin
        (Vec.get nodes target).fail <- 0;
        Queue.add target queue
      end)
    root.next;
  while not (Queue.is_empty queue) do
    let s = Queue.pop queue in
    let node = Vec.get nodes s in
    let fail_node = Vec.get nodes node.fail in
    node.outputs <- node.outputs @ fail_node.outputs;
    Array.iteri
      (fun b target ->
        if target < 0 then node.next.(b) <- fail_node.next.(b)
        else begin
          (Vec.get nodes target).fail <- fail_node.next.(b);
          Queue.add target queue
        end)
      node.next
  done;
  { nodes; n_patterns = List.length patterns }

let pattern_count t = t.n_patterns

let check_slice name text off len =
  if off < 0 || len < 0 || off > String.length text - len then
    invalid_arg (name ^ ": slice out of bounds")

(* The one scanning loop everything else is built on: runs the automaton
   from [node0] over [len] bytes of [text] starting at [off], reporting
   matches as [f id end_pos] with [end_pos] counted from [pos0], and
   returns the node reached — which is exactly the state a later fragment
   resumes from.  The goto function is total after [build], so there is no
   failure chasing in here: one array load per byte. *)
let scan_range t node0 ~pos0 ~off ~len text f =
  let data = t.nodes.Vec.data in
  let node = ref node0 in
  for k = off to off + len - 1 do
    let c = Char.code (String.unsafe_get text k) in
    node := Array.unsafe_get (Array.unsafe_get data !node).next c;
    match (Array.unsafe_get data !node).outputs with
    | [] -> ()
    | outputs -> List.iter (fun id -> f id (pos0 + (k - off) + 1)) outputs
  done;
  !node

let iter_matches t text f =
  ignore (scan_range t 0 ~pos0:0 ~off:0 ~len:(String.length text) text f)

let iter_matches_sub t ~off ~len text f =
  check_slice "Aho_corasick.iter_matches_sub" text off len;
  ignore (scan_range t 0 ~pos0:0 ~off ~len text f)

let matched_set_into t seen text =
  if Array.length seen <> t.n_patterns then
    invalid_arg "Aho_corasick.matched_set_into: buffer size mismatch";
  Array.fill seen 0 (Array.length seen) false;
  iter_matches t text (fun id _ -> seen.(id) <- true)

module Stream = struct
  type state = { mutable node : int; mutable consumed : int }

  let create () = { node = 0; consumed = 0 }

  let reset st =
    st.node <- 0;
    st.consumed <- 0

  let consumed st = st.consumed

  (* Defaults resolved inline (not via a slice-returning helper) so the
     per-fragment hot path allocates no tuple. *)
  let feed t st ?off ?len text f =
    let off = match off with None -> 0 | Some o -> o in
    let len = match len with None -> String.length text - off | Some l -> l in
    check_slice "Aho_corasick.Stream.feed" text off len;
    st.node <- scan_range t st.node ~pos0:st.consumed ~off ~len text f;
    st.consumed <- st.consumed + len

  let feed_into t st seen ?off ?len text =
    if Array.length seen <> t.n_patterns then
      invalid_arg "Aho_corasick.Stream.feed_into: buffer size mismatch";
    let off = match off with None -> 0 | Some o -> o in
    let len = match len with None -> String.length text - off | Some l -> l in
    check_slice "Aho_corasick.Stream.feed_into" text off len;
    st.node <-
      scan_range t st.node ~pos0:st.consumed ~off ~len text (fun id _ ->
          Array.unsafe_set seen id true);
    st.consumed <- st.consumed + len
end

let matched_set t text =
  let seen = Array.make t.n_patterns false in
  iter_matches t text (fun id _ -> seen.(id) <- true);
  seen

exception Found

let matches_any t text =
  try
    iter_matches t text (fun _ _ -> raise Found);
    false
  with Found -> true
