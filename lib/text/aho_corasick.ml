(* Classic Aho-Corasick over the byte alphabet.  Transitions are stored in
   per-node 256-entry arrays: the automata built here are small (signature
   tokens), so the memory trade for O(1) transitions is cheap. *)

type node = {
  next : int array;  (* goto; -1 = undefined during build *)
  mutable fail : int;
  mutable outputs : int list;  (* pattern ids ending here *)
}

(* Minimal growable vector (Dynarray arrives only in OCaml 5.2). *)
module Vec = struct
  type 'a t = { mutable data : 'a array; mutable len : int; dummy : 'a }

  let create dummy = { data = Array.make 16 dummy; len = 0; dummy }

  let push t x =
    if t.len = Array.length t.data then begin
      let grown = Array.make (2 * t.len) t.dummy in
      Array.blit t.data 0 grown 0 t.len;
      t.data <- grown
    end;
    t.data.(t.len) <- x;
    t.len <- t.len + 1

  let get t i = t.data.(i)
  let length t = t.len
end

type t = { nodes : node Vec.t; n_patterns : int }

let new_node () = { next = Array.make 256 (-1); fail = 0; outputs = [] }

let build patterns =
  List.iter (fun p -> if p = "" then invalid_arg "Aho_corasick.build: empty pattern") patterns;
  let nodes = Vec.create (new_node ()) in
  Vec.push nodes (new_node ());
  (* Trie construction. *)
  List.iteri
    (fun id pattern ->
      let state = ref 0 in
      String.iter
        (fun c ->
          let b = Char.code c in
          let node = Vec.get nodes !state in
          if node.next.(b) < 0 then begin
            Vec.push nodes (new_node ());
            node.next.(b) <- Vec.length nodes - 1
          end;
          state := node.next.(b))
        pattern;
      let final = Vec.get nodes !state in
      final.outputs <- id :: final.outputs)
    patterns;
  (* BFS for failure links; also complete the goto function so that every
     transition is defined (next.(b) >= 0 everywhere after this pass). *)
  let queue = Queue.create () in
  let root = Vec.get nodes 0 in
  Array.iteri
    (fun b target ->
      if target < 0 then root.next.(b) <- 0
      else begin
        (Vec.get nodes target).fail <- 0;
        Queue.add target queue
      end)
    root.next;
  while not (Queue.is_empty queue) do
    let s = Queue.pop queue in
    let node = Vec.get nodes s in
    let fail_node = Vec.get nodes node.fail in
    node.outputs <- node.outputs @ fail_node.outputs;
    Array.iteri
      (fun b target ->
        if target < 0 then node.next.(b) <- fail_node.next.(b)
        else begin
          (Vec.get nodes target).fail <- fail_node.next.(b);
          Queue.add target queue
        end)
      node.next
  done;
  { nodes; n_patterns = List.length patterns }

let pattern_count t = t.n_patterns

let iter_matches t text f =
  let state = ref 0 in
  String.iteri
    (fun i c ->
      let node = Vec.get t.nodes !state in
      state := node.next.(Char.code c);
      match (Vec.get t.nodes !state).outputs with
      | [] -> ()
      | outputs -> List.iter (fun id -> f id (i + 1)) outputs)
    text

let matched_set_into t seen text =
  if Array.length seen <> t.n_patterns then
    invalid_arg "Aho_corasick.matched_set_into: buffer size mismatch";
  Array.fill seen 0 (Array.length seen) false;
  iter_matches t text (fun id _ -> seen.(id) <- true)

let matched_set t text =
  let seen = Array.make t.n_patterns false in
  iter_matches t text (fun id _ -> seen.(id) <- true);
  seen

exception Found

let matches_any t text =
  try
    iter_matches t text (fun _ _ -> raise Found);
    false
  with Found -> true
