(** URL paths and query strings, as transmitted by advertisement modules.
    Only the pieces HTTP GET/POST requests need: percent-encoding and
    [application/x-www-form-urlencoded] query handling. *)

val percent_encode : string -> string
(** Encode everything outside the RFC 3986 unreserved set.  Space becomes
    [%20] (not [+]). *)

val percent_decode : string -> string option
(** Inverse of {!percent_encode}; also accepts [+] for space.  [None] on a
    malformed escape. *)

val percent_decode_strict : string -> string option
(** Like {!percent_decode} but leaves [+] untouched (path components, where
    [+] is literal).  [None] on a malformed escape. *)

val percent_decode_lenient : string -> string * int
(** Best-effort decoding for the canonicalization lattice: every valid
    [%XX] escape is decoded, malformed ones pass through literally, [+] is
    left alone.  Returns the decoded string and the number of escapes
    decoded (0 means the input came back unchanged). *)

val encode_query : (string * string) list -> string
(** [k1=v1&k2=v2...] with percent-encoded keys and values. *)

val decode_query : string -> (string * string) list option
(** Inverse of {!encode_query}.  A bare key decodes to [(key, "")]. *)

val split_path_query : string -> string * string
(** [split_path_query "/a/b?x=1"] is [("/a/b", "x=1")]; no [?] gives an
    empty query. *)
