let unreserved c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
  || c = '-' || c = '_' || c = '.' || c = '~'

let percent_encode s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      if unreserved c then Buffer.add_char buf c
      else Buffer.add_string buf (Printf.sprintf "%%%02X" (Char.code c)))
    s;
  Buffer.contents buf

let hex_val c =
  match c with
  | '0' .. '9' -> Some (Char.code c - Char.code '0')
  | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
  | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
  | _ -> None

let percent_decode s =
  let n = String.length s in
  let buf = Buffer.create n in
  let rec loop i =
    if i = n then Some (Buffer.contents buf)
    else
      match s.[i] with
      | '%' ->
        if i + 2 >= n then None
        else (
          match (hex_val s.[i + 1], hex_val s.[i + 2]) with
          | Some hi, Some lo ->
            Buffer.add_char buf (Char.chr ((hi lsl 4) lor lo));
            loop (i + 3)
          | _ -> None)
      | '+' ->
        Buffer.add_char buf ' ';
        loop (i + 1)
      | c ->
        Buffer.add_char buf c;
        loop (i + 1)
  in
  loop 0

let percent_decode_strict s =
  let n = String.length s in
  let buf = Buffer.create n in
  let rec loop i =
    if i = n then Some (Buffer.contents buf)
    else
      match s.[i] with
      | '%' ->
        if i + 2 >= n then None
        else (
          match (hex_val s.[i + 1], hex_val s.[i + 2]) with
          | Some hi, Some lo ->
            Buffer.add_char buf (Char.chr ((hi lsl 4) lor lo));
            loop (i + 3)
          | _ -> None)
      | c ->
        Buffer.add_char buf c;
        loop (i + 1)
  in
  loop 0

let percent_decode_lenient s =
  let n = String.length s in
  let buf = Buffer.create n in
  let decoded = ref 0 in
  let rec loop i =
    if i = n then (Buffer.contents buf, !decoded)
    else
      match s.[i] with
      | '%' when i + 2 < n -> (
        match (hex_val s.[i + 1], hex_val s.[i + 2]) with
        | Some hi, Some lo ->
          Buffer.add_char buf (Char.chr ((hi lsl 4) lor lo));
          incr decoded;
          loop (i + 3)
        | _ ->
          Buffer.add_char buf '%';
          loop (i + 1))
      | c ->
        Buffer.add_char buf c;
        loop (i + 1)
  in
  loop 0

let encode_query params =
  String.concat "&"
    (List.map (fun (k, v) -> percent_encode k ^ "=" ^ percent_encode v) params)

let decode_query q =
  if q = "" then Some []
  else
    let decode_pair pair =
      match String.index_opt pair '=' with
      | None -> Option.map (fun k -> (k, "")) (percent_decode pair)
      | Some i -> (
        let k = String.sub pair 0 i in
        let v = String.sub pair (i + 1) (String.length pair - i - 1) in
        match (percent_decode k, percent_decode v) with
        | Some k, Some v -> Some (k, v)
        | _ -> None)
    in
    let pairs = String.split_on_char '&' q in
    let decoded = List.filter_map decode_pair pairs in
    if List.length decoded = List.length pairs then Some decoded else None

let split_path_query s =
  match String.index_opt s '?' with
  | None -> (s, "")
  | Some i -> (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
