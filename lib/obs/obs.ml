(* Observability registry.

   Design constraints, in order: the noop path must cost one branch; the
   hot update paths (counter add, histogram observe) must be lock-free so
   pool workers never serialize on instrumentation; exposition must be
   deterministic (sorted families, sorted series) so it can be golden
   tested.  Registration takes a per-registry mutex — it is rare and its
   cost is irrelevant.

   Spans use a domain-local stack: each domain nests its own spans, and a
   span finishing with an empty stack is a root.  Completed roots are the
   only span state shared across domains, appended under the mutex. *)

(* --- clock --- *)

module Clock = struct
  let last = Atomic.make 0

  let now_ns () =
    let t = int_of_float (Unix.gettimeofday () *. 1e9) in
    let rec max_into () =
      let prev = Atomic.get last in
      if t <= prev then prev
      else if Atomic.compare_and_set last prev t then t
      else max_into ()
    in
    max_into ()
end

(* --- spans --- *)

module Span = struct
  type t = {
    sname : string;
    sstart_ns : int;
    mutable sduration_ns : int;
    mutable schildren : t list;  (* newest first while building *)
  }

  let name s = s.sname
  let start_ns s = s.sstart_ns
  let duration_ns s = s.sduration_ns
  let children s = List.rev s.schildren

  let render span =
    let buf = Buffer.create 256 in
    let rec go indent s =
      Buffer.add_string buf
        (Printf.sprintf "%s%-*s %10.3f ms\n" indent
           (max 1 (32 - String.length indent))
           s.sname
           (float_of_int s.sduration_ns /. 1e6));
      List.iter (go (indent ^ "  ")) (children s)
    in
    go "" span;
    Buffer.contents buf
end

(* --- metric cells --- *)

(* Atomic float accumulation: read the boxed value, CAS it against the
   replacement.  compare_and_set uses physical equality, and we always pass
   back the exact box we read, so the loop is ABA-safe. *)
let float_add cell v =
  let rec loop () =
    let cur = Atomic.get cell in
    if not (Atomic.compare_and_set cell cur (cur +. v)) then loop ()
  in
  loop ()

module Counter = struct
  type t = int Atomic.t option

  let inc = function None -> () | Some c -> Atomic.incr c

  let add t n =
    if n < 0 then invalid_arg "Obs.Counter.add: negative increment";
    match t with None -> () | Some c -> ignore (Atomic.fetch_and_add c n)

  let value = function None -> 0 | Some c -> Atomic.get c
end

module Gauge = struct
  type t = int Atomic.t option

  let set t v = match t with None -> () | Some c -> Atomic.set c v
  let value = function None -> 0 | Some c -> Atomic.get c
end

type hist = {
  upper : float array;  (* finite bounds, strictly increasing *)
  bucket_counts : int Atomic.t array;  (* same length as [upper] *)
  hsum : float Atomic.t;
  hcount : int Atomic.t;
}

module Histogram = struct
  type t = hist option

  let observe t v =
    match t with
    | None -> ()
    | Some h ->
      let n = Array.length h.upper in
      let rec bump i =
        if i < n then
          if v <= h.upper.(i) then Atomic.incr h.bucket_counts.(i) else bump (i + 1)
      in
      bump 0;
      float_add h.hsum v;
      Atomic.incr h.hcount

  let count = function None -> 0 | Some h -> Atomic.get h.hcount
  let sum = function None -> 0. | Some h -> Atomic.get h.hsum
end

let duration_buckets =
  [ 0.0001; 0.0005; 0.001; 0.005; 0.01; 0.05; 0.1; 0.5; 1.; 5.; 10. ]

let size_buckets = [ 64.; 256.; 1024.; 4096.; 16384.; 65536.; 262144.; 1048576.; 4194304. ]

let ratio_buckets = [ 0.1; 0.25; 0.5; 0.75; 0.9; 0.95; 0.99; 1.0 ]

(* --- registry --- *)

type kind = K_counter | K_gauge | K_histogram

type series =
  | S_scalar of int Atomic.t  (* counter or gauge *)
  | S_hist of hist

type family = {
  fname : string;
  fhelp : string;
  fkind : kind;
  fbuckets : float array;  (* histogram families only *)
  mutable fseries : ((string * string) list * series) list;  (* label set -> cell *)
}

type active = {
  mutex : Mutex.t;
  families : (string, family) Hashtbl.t;
  mutable roots : Span.t list;  (* completed root spans, newest first *)
}

type t = Noop | Active of active

let noop = Noop
let create () = Active { mutex = Mutex.create (); families = Hashtbl.create 32; roots = [] }
let is_noop = function Noop -> true | Active _ -> false

let kind_name = function
  | K_counter -> "counter"
  | K_gauge -> "gauge"
  | K_histogram -> "histogram"

let valid_name s =
  s <> ""
  && (match s.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true | _ -> false)
       s

(* ':' is legal in metric names but not label names. *)
let valid_label_name s = valid_name s && not (String.contains s ':')

let check_labels labels =
  List.iter
    (fun (k, _) ->
      if not (valid_label_name k) then
        invalid_arg (Printf.sprintf "Obs: bad label name %S" k))
    labels;
  let sorted = List.sort (fun (a, _) (b, _) -> compare a b) labels in
  let rec dup = function
    | (a, _) :: ((b, _) :: _ as rest) -> if a = b then true else dup rest
    | _ -> false
  in
  if dup sorted then invalid_arg "Obs: duplicate label name";
  sorted

let intern reg ~kind ~help ~labels ~buckets name =
  if not (valid_name name) then invalid_arg (Printf.sprintf "Obs: bad metric name %S" name);
  let labels = check_labels labels in
  Mutex.lock reg.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock reg.mutex)
    (fun () ->
      let family =
        match Hashtbl.find_opt reg.families name with
        | Some f ->
          if f.fkind <> kind then
            invalid_arg
              (Printf.sprintf "Obs: %s already registered as a %s, not a %s" name
                 (kind_name f.fkind) (kind_name kind));
          f
        | None ->
          let f =
            { fname = name; fhelp = help; fkind = kind; fbuckets = buckets; fseries = [] }
          in
          Hashtbl.add reg.families name f;
          f
      in
      match List.assoc_opt labels family.fseries with
      | Some s -> s
      | None ->
        let s =
          match kind with
          | K_counter | K_gauge -> S_scalar (Atomic.make 0)
          | K_histogram ->
            S_hist
              {
                upper = family.fbuckets;
                bucket_counts = Array.init (Array.length family.fbuckets) (fun _ -> Atomic.make 0);
                hsum = Atomic.make 0.;
                hcount = Atomic.make 0;
              }
        in
        family.fseries <- (labels, s) :: family.fseries;
        s)

let scalar_cell reg ~kind ~help ~labels name =
  match intern reg ~kind ~help ~labels ~buckets:[||] name with
  | S_scalar c -> c
  | S_hist _ -> assert false

let counter t ?(help = "") ?(labels = []) name : Counter.t =
  match t with
  | Noop -> None
  | Active reg -> Some (scalar_cell reg ~kind:K_counter ~help ~labels name)

let gauge t ?(help = "") ?(labels = []) name : Gauge.t =
  match t with
  | Noop -> None
  | Active reg -> Some (scalar_cell reg ~kind:K_gauge ~help ~labels name)

let histogram t ?(help = "") ?(labels = []) ~buckets name : Histogram.t =
  match t with
  | Noop -> None
  | Active reg ->
    let b = Array.of_list buckets in
    if Array.length b = 0 then invalid_arg "Obs.histogram: no buckets";
    Array.iteri
      (fun i v ->
        if not (Float.is_finite v) then invalid_arg "Obs.histogram: non-finite bucket";
        if i > 0 && v <= b.(i - 1) then
          invalid_arg "Obs.histogram: buckets must be strictly increasing")
      b;
    (match intern reg ~kind:K_histogram ~help ~labels ~buckets:b name with
    | S_hist h -> Some h
    | S_scalar _ -> assert false)

(* --- spans --- *)

let span_stack : Span.t list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let with_span t name f =
  match t with
  | Noop -> f ()
  | Active reg ->
    let stack = Domain.DLS.get span_stack in
    let span =
      { Span.sname = name; sstart_ns = Clock.now_ns (); sduration_ns = 0; schildren = [] }
    in
    stack := span :: !stack;
    Fun.protect
      ~finally:(fun () ->
        span.Span.sduration_ns <- Clock.now_ns () - span.Span.sstart_ns;
        (match !stack with
        | top :: rest when top == span -> stack := rest
        | _ ->
          (* A child span leaked past its parent's close (should be
             impossible with Fun.protect); drop down to self-repair. *)
          stack := List.filter (fun s -> s != span) !stack);
        match !stack with
        | parent :: _ -> parent.Span.schildren <- span :: parent.Span.schildren
        | [] ->
          Mutex.lock reg.mutex;
          reg.roots <- span :: reg.roots;
          Mutex.unlock reg.mutex)
      f

let root_spans = function
  | Noop -> []
  | Active reg ->
    Mutex.lock reg.mutex;
    let roots = reg.roots in
    Mutex.unlock reg.mutex;
    List.rev roots

let reset_spans = function
  | Noop -> ()
  | Active reg ->
    Mutex.lock reg.mutex;
    reg.roots <- [];
    Mutex.unlock reg.mutex

(* --- introspection --- *)

type value =
  | Counter_value of int
  | Gauge_value of int
  | Histogram_value of { buckets : (float * int) list; sum : float; count : int }

type sample = {
  family : string;
  help : string;
  labels : (string * string) list;
  value : value;
}

let samples = function
  | Noop -> []
  | Active reg ->
    Mutex.lock reg.mutex;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock reg.mutex)
      (fun () ->
        Hashtbl.fold (fun _ f acc -> f :: acc) reg.families []
        |> List.sort (fun a b -> compare a.fname b.fname)
        |> List.concat_map (fun f ->
               List.sort (fun (a, _) (b, _) -> compare a b) f.fseries
               |> List.map (fun (labels, series) ->
                      let value =
                        match (f.fkind, series) with
                        | K_counter, S_scalar c -> Counter_value (Atomic.get c)
                        | K_gauge, S_scalar c -> Gauge_value (Atomic.get c)
                        | K_histogram, S_hist h ->
                          Histogram_value
                            {
                              buckets =
                                Array.to_list
                                  (Array.mapi
                                     (fun i u -> (u, Atomic.get h.bucket_counts.(i)))
                                     h.upper);
                              sum = Atomic.get h.hsum;
                              count = Atomic.get h.hcount;
                            }
                        | _ -> assert false
                      in
                      { family = f.fname; help = f.fhelp; labels; value })))

(* --- Prometheus text exposition --- *)

let escape_label_value s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let escape_help s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let float_str f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.12g" f

let label_block labels =
  match labels with
  | [] -> ""
  | labels ->
    "{"
    ^ String.concat ","
        (List.map (fun (k, v) -> k ^ "=\"" ^ escape_label_value v ^ "\"") labels)
    ^ "}"

let to_prometheus t =
  let buf = Buffer.create 1024 in
  let seen_header = Hashtbl.create 16 in
  List.iter
    (fun s ->
      if not (Hashtbl.mem seen_header s.family) then begin
        Hashtbl.add seen_header s.family ();
        if s.help <> "" then
          Buffer.add_string buf
            (Printf.sprintf "# HELP %s %s\n" s.family (escape_help s.help));
        let kind =
          match s.value with
          | Counter_value _ -> "counter"
          | Gauge_value _ -> "gauge"
          | Histogram_value _ -> "histogram"
        in
        Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" s.family kind)
      end;
      match s.value with
      | Counter_value v | Gauge_value v ->
        Buffer.add_string buf
          (Printf.sprintf "%s%s %d\n" s.family (label_block s.labels) v)
      | Histogram_value { buckets; sum; count } ->
        let cumulative = ref 0 in
        List.iter
          (fun (upper, c) ->
            cumulative := !cumulative + c;
            Buffer.add_string buf
              (Printf.sprintf "%s_bucket%s %d\n" s.family
                 (label_block (s.labels @ [ ("le", float_str upper) ]))
                 !cumulative))
          buckets;
        Buffer.add_string buf
          (Printf.sprintf "%s_bucket%s %d\n" s.family
             (label_block (s.labels @ [ ("le", "+Inf") ]))
             count);
        Buffer.add_string buf
          (Printf.sprintf "%s_sum%s %s\n" s.family (label_block s.labels) (float_str sum));
        Buffer.add_string buf
          (Printf.sprintf "%s_count%s %d\n" s.family (label_block s.labels) count))
    (samples t);
  Buffer.contents buf
