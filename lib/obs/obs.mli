(** Lightweight, zero-dependency observability: monotonic-clock spans with
    parent/child nesting, atomic counters and gauges, fixed-bucket
    histograms, and a Prometheus-style text exposition.

    Everything is domain-safe so instrumentation composes with the domain
    pool: counter/gauge/histogram updates are lock-free atomics, metric
    registration is serialized by a per-registry mutex, and the span stack
    is domain-local, so spans opened on different domains never interleave.

    The {!noop} registry turns every operation into a cheap branch —
    instrumented code paths pay one tag test and nothing else — so
    observability is opt-out-able without touching call sites.  Handles
    ({!Counter.t}, {!Gauge.t}, {!Histogram.t}) interned from [noop] are
    permanently inert. *)

type t
(** A metric registry: either the shared inert {!noop} or an active
    registry created with {!create}. *)

val noop : t
(** The inert registry: registration returns no-op handles, spans run their
    body with zero bookkeeping, the exposition is empty. *)

val create : unit -> t
(** A fresh, empty, active registry. *)

val is_noop : t -> bool

(** {1 Clock} *)

module Clock : sig
  val now_ns : unit -> int
  (** Wall clock in integer nanoseconds, forced monotonically non-decreasing
      across all domains (an atomic max guards against clock steps), so span
      durations are never negative. *)
end

(** {1 Scalar metrics} *)

module Counter : sig
  type t

  val inc : t -> unit
  val add : t -> int -> unit
  (** @raise Invalid_argument on a negative increment. *)

  val value : t -> int
  (** Always 0 for a handle from the noop registry. *)
end

module Gauge : sig
  type t

  val set : t -> int -> unit
  val value : t -> int
end

module Histogram : sig
  type t

  val observe : t -> float -> unit
  val count : t -> int
  val sum : t -> float
end

val counter : t -> ?help:string -> ?labels:(string * string) list -> string -> Counter.t
(** [counter reg name] interns (or finds) the counter series [name] with the
    given labels.  The same (name, labels) pair always yields the same
    underlying cell, so handles can be re-interned freely.
    @raise Invalid_argument on a malformed metric/label name or when [name]
    is already registered with a different metric kind. *)

val gauge : t -> ?help:string -> ?labels:(string * string) list -> string -> Gauge.t

val histogram :
  t ->
  ?help:string ->
  ?labels:(string * string) list ->
  buckets:float list ->
  string ->
  Histogram.t
(** [buckets] are finite upper bounds, strictly increasing; a [+Inf] bucket
    is implicit.  All series of one family share the first-registered bucket
    layout. *)

val duration_buckets : float list
(** Default latency buckets, in seconds: 100us .. 10s. *)

val size_buckets : float list
(** Default size buckets, in bytes: 64 B .. 4 MiB. *)

val ratio_buckets : float list
(** Buckets for rates in [0, 1] (recall, hit ratios): 0.1 .. 1.0. *)

(** {1 Spans} *)

module Span : sig
  type t

  val name : t -> string
  val start_ns : t -> int
  val duration_ns : t -> int
  val children : t -> t list
  (** Completed children, oldest first. *)

  val render : t -> string
  (** Multi-line indented tree with durations, for the CLI trace view. *)
end

val with_span : t -> string -> (unit -> 'a) -> 'a
(** [with_span reg name f] runs [f ()] inside a span.  Spans opened while
    another span of the same domain is open become its children; spans that
    finish with no open parent are recorded as roots.  The span is closed
    (and attached) even when [f] raises.  On the noop registry this is
    exactly [f ()]. *)

val root_spans : t -> Span.t list
(** Completed root spans, oldest first. *)

val reset_spans : t -> unit
(** Drop recorded root spans (metrics are untouched). *)

(** {1 Introspection and exposition} *)

type value =
  | Counter_value of int
  | Gauge_value of int
  | Histogram_value of { buckets : (float * int) list; sum : float; count : int }
      (** [buckets] pair each finite upper bound with its (non-cumulative)
          count; observations above the last bound are in [count] minus the
          bucket total. *)

type sample = {
  family : string;
  help : string;
  labels : (string * string) list;  (** Sorted by label name. *)
  value : value;
}

val samples : t -> sample list
(** Every registered series, families sorted by name, series within a
    family sorted by label set. *)

val to_prometheus : t -> string
(** Prometheus text exposition (format version 0.0.4): [# HELP] / [# TYPE]
    per family, one line per series, label values escaped, histogram
    emitted as cumulative [_bucket{le=...}] plus [_sum] and [_count].
    Deterministic: families and series are sorted. *)
