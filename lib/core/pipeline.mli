(** End-to-end experiment driver: the full Figure 3(a) server pipeline —
    payload-check split, uniform sample of N suspicious packets, clustering,
    signature generation, whole-trace detection, paper metrics. *)

type config = {
  components : Distance.components;
  compressor : Leakdetect_compress.Compressor.algorithm;
  content_metric : Distance.content_metric;
  registry : Leakdetect_net.Registry.t option;
      (** WHOIS refinement of the destination distance (Sec. VI). *)
  siggen : Siggen.config;
}

val default_config : config

type outcome = {
  config : config;
  sample_size : int;  (** Actual N drawn (capped by the suspicious count). *)
  signatures : Signature.t list;
  n_clusters : int;
  rejected_clusters : int;
  metrics : Metrics.t;
}

val run :
  ?config:config ->
  ?pool:Leakdetect_parallel.Pool.t ->
  rng:Leakdetect_util.Prng.t ->
  n:int ->
  suspicious:Leakdetect_http.Packet.t array ->
  normal:Leakdetect_http.Packet.t array ->
  unit ->
  outcome
(** [run ~rng ~n ~suspicious ~normal ()] samples [min n |suspicious|]
    packets, generates signatures and evaluates them on the whole dataset
    (both groups).  The groups are the ground-truth split the paper prepared
    manually (Sec. V-A); obtain them from {!Payload_check.split} or from
    trace labels.

    [?pool] parallelizes the two hot phases — the NCD distance matrix and
    whole-trace detection — over its domains.  Sampling, clustering and
    signature extraction are unchanged and the outcome is bit-identical
    for every pool size. *)

val sweep :
  ?config:config ->
  ?pool:Leakdetect_parallel.Pool.t ->
  rng:Leakdetect_util.Prng.t ->
  ns:int list ->
  suspicious:Leakdetect_http.Packet.t array ->
  normal:Leakdetect_http.Packet.t array ->
  unit ->
  outcome list
(** The Figure 4 experiment: one {!run} per N, each on a fresh sample drawn
    from a split of the given generator.  One pool serves every run. *)
