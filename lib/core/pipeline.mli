(** End-to-end experiment driver: the full Figure 3(a) server pipeline —
    payload-check split, uniform sample of N suspicious packets, clustering,
    signature generation, whole-trace detection, paper metrics. *)

module Config = Pipeline_config
(** The unified configuration record shared by {!run}, {!Siggen.generate},
    {!Bayes.run} and the CLI — see {!Pipeline_config}. *)

type config = Pipeline_config.t = {
  components : Distance.components;
  compressor : Leakdetect_compress.Compressor.algorithm;
  content_metric : Distance.content_metric;
  registry : Leakdetect_net.Registry.t option;
      (** WHOIS refinement of the destination distance (Sec. VI). *)
  siggen : Siggen.config;
  clustering : Clustering.backend;
      (** Exact O(N²) clustering or the minhash/LSH sketch prefilter. *)
  pool : Leakdetect_parallel.Pool.t option;
  on_error : Config.on_error;
  sample_n : int;
  obs : Leakdetect_obs.Obs.t;
  normalize : Leakdetect_normalize.Normalize.t option;
      (** Canonicalization lattice applied during detection (evasion
          robustness); [None] is the legacy raw-byte path. *)
}
(** Equation on {!Pipeline_config.t}: pre-existing [Pipeline.default_config]
    record updates and [config.Pipeline.field] accesses keep compiling. *)

val default_config : config
(** Alias of {!Config.default}. *)

type outcome = {
  config : config;
  sample_size : int;  (** Actual N drawn (capped by the suspicious count). *)
  signatures : Signature.t list;
  n_clusters : int;
  rejected_clusters : int;
  metrics : Metrics.t;
}

val run :
  ?config:config ->
  ?pool:Leakdetect_parallel.Pool.t ->
  ?n:int ->
  rng:Leakdetect_util.Prng.t ->
  suspicious:Leakdetect_http.Packet.t array ->
  normal:Leakdetect_http.Packet.t array ->
  unit ->
  outcome
(** [run ~rng ~suspicious ~normal ()] samples [min n |suspicious|]
    packets, generates signatures and evaluates them on the whole dataset
    (both groups).  The groups are the ground-truth split the paper prepared
    manually (Sec. V-A); obtain them from {!Payload_check.split} or from
    trace labels.

    [n] defaults to [config.sample_n]; [?pool], kept as a deprecated
    convenience, overrides [config.pool].  Prefer threading both through
    the config.  When [config.obs] is active, the run is wrapped in a
    [pipeline.run] span and records the [leakdetect_pipeline_*] metric
    families on top of the per-stage instrumentation.

    A pool parallelizes the two hot phases — the NCD distance matrix and
    whole-trace detection — over its domains.  Sampling, clustering and
    signature extraction are unchanged and the outcome is bit-identical
    for every pool size. *)

val sweep :
  ?config:config ->
  ?pool:Leakdetect_parallel.Pool.t ->
  rng:Leakdetect_util.Prng.t ->
  ns:int list ->
  suspicious:Leakdetect_http.Packet.t array ->
  normal:Leakdetect_http.Packet.t array ->
  unit ->
  outcome list
(** The Figure 4 experiment: one {!run} per N, each on a fresh sample drawn
    from a split of the given generator.  One pool serves every run. *)
