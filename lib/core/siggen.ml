module Dendrogram = Leakdetect_cluster.Dendrogram
module Cluster = Leakdetect_cluster.Cluster
module Tokens = Leakdetect_text.Tokens
module Packet = Leakdetect_http.Packet
module Obs = Leakdetect_obs.Obs

let log_src = Logs.Src.create "leakdetect.siggen" ~doc:"Signature generation"

module Log = (val Logs.src_log log_src)

type cut = Pipeline_config.cut = Auto | Threshold of float | Count of int | Every_merge

type config = Pipeline_config.siggen = {
  algorithm : Cluster.algorithm;
  cut : cut;
  min_token_len : int;
  min_specificity : int;
  mode : Signature.mode;
}

let default = Pipeline_config.default_siggen

type result = {
  signatures : Signature.t list;
  dendrogram : Dendrogram.t option;
  clusters : int list list;
  rejected : int;
  stats : Clustering.stats option;
}

let cut_threshold_value config dist =
  match config.cut with
  | Threshold v -> v
  | Auto | Count _ | Every_merge -> 0.25 *. Distance.max_possible dist

(* All internal subtrees, largest first, for the Every_merge policy. *)
let rec internal_subtrees = function
  | Dendrogram.Leaf _ -> []
  | Dendrogram.Node { left; right; _ } as node ->
    (node :: internal_subtrees left) @ internal_subtrees right

let generate ?(config = Pipeline_config.default) dist sample =
  let obs = config.Pipeline_config.obs in
  let sg = config.Pipeline_config.siggen in
  if Array.length sample = 0 then
    { signatures = []; dendrogram = None; clusters = []; rejected = 0; stats = None }
  else
    Obs.with_span obs "siggen.generate" @@ fun () ->
    let clustered =
      Obs.with_span obs "siggen.cluster" (fun () ->
          Clustering.run ?pool:config.Pipeline_config.pool ~obs
            ~backend:config.Pipeline_config.clustering ~algorithm:sg.algorithm dist
            sample)
    in
    let dendrogram =
      match clustered.Clustering.output with
      | Cluster.Hierarchy tree -> Some tree
      | Cluster.Empty | Cluster.Partition _ -> None
    in
    let clusters =
      match clustered.Clustering.output with
      | Cluster.Empty -> []
      | Cluster.Hierarchy tree ->
        let forest =
          match sg.cut with
          | Count k -> Dendrogram.cut_into k tree
          | Every_merge -> internal_subtrees tree
          | Auto | Threshold _ ->
            Dendrogram.cut ~threshold:(cut_threshold_value sg dist) tree
        in
        List.map Dendrogram.members forest
      | Cluster.Partition _ as p ->
        (* Partitional algorithms fix their cluster structure themselves;
           the cut policy has nothing to act on.  Noise items become
           singletons (exact-match signatures at most). *)
        Cluster.flat_clusters p
    in
    let next_id = ref 0 and rejected = ref 0 in
    let seen_tokens = Hashtbl.create 64 in
    let signatures =
      Obs.with_span obs "siggen.tokens" @@ fun () ->
      List.filter_map
        (fun members ->
          let contents =
            List.map (fun i -> Packet.content_string sample.(i)) members
          in
          let tokens = Tokens.extract ~min_len:sg.min_token_len contents in
          match tokens with
          | [] ->
            incr rejected;
            None
          | tokens ->
            let candidate =
              Signature.make ~id:!next_id ~mode:sg.mode
                ~cluster_size:(List.length members) tokens
            in
            if Signature.specificity candidate < sg.min_specificity then begin
              incr rejected;
              None
            end
            else if Hashtbl.mem seen_tokens tokens then begin
              (* Nested clusters can repeat a token list (Every_merge). *)
              incr rejected;
              None
            end
            else begin
              Hashtbl.add seen_tokens tokens ();
              incr next_id;
              Some candidate
            end)
        clusters
    in
    Obs.Counter.add
      (Obs.counter obs ~help:"Clusters produced by the dendrogram cut."
         "leakdetect_siggen_clusters_total")
      (List.length clusters);
    Obs.Counter.add
      (Obs.counter obs ~help:"Signatures by filter outcome."
         ~labels:[ ("status", "accepted") ]
         "leakdetect_siggen_signatures_total")
      (List.length signatures);
    Obs.Counter.add
      (Obs.counter obs ~help:"Signatures by filter outcome."
         ~labels:[ ("status", "rejected") ]
         "leakdetect_siggen_signatures_total")
      !rejected;
    Log.info (fun m ->
        m "sample of %d -> %d clusters, %d signatures (%d rejected) [%s/%s]"
          (Array.length sample) (List.length clusters) (List.length signatures)
          !rejected
          clustered.Clustering.stats.Clustering.backend
          (Cluster.name sg.algorithm));
    List.iter
      (fun s -> Log.debug (fun m -> m "signature: %a" Signature.pp s))
      signatures;
    { signatures; dendrogram; clusters; rejected = !rejected;
      stats = Some clustered.Clustering.stats }
