(** The paper's HTTP packet distance (Sec. IV-B and IV-C).

    Destination distance between packets [p_x], [p_y]:

      d_dst = d_ip + d_port + d_host

    - [d_ip]: the paper prints [lmatch/32], which would make identical
      addresses maximally distant and contradicts its own motivation; we
      implement the evident intent, [1 - lmatch/32].
    - [d_port]: likewise implemented as 0 for equal ports and 1 otherwise
      (the paper's [match] returns 1 on equality).
    - [d_host]: normalized Levenshtein distance over the FQDNs, exactly as
      printed.

    Content distance:

      d_header = ncd(request-line) + ncd(cookie) + ncd(body)

    with [ncd(x,y) = (C(xy) - min(C x, C y)) / max(C x, C y)] for a real
    compressor [C] (LZ77 by default).

    Overall packet distance: d_pkt = d_dst + d_header, so d_pkt ranges over
    [0, 6].  Component toggles support the ablation experiments. *)

type components = {
  use_ip : bool;
  use_port : bool;
  use_host : bool;
  use_rline : bool;
  use_cookie : bool;
  use_body : bool;
}

val all_components : components
val destination_only : components
val content_only : components

type content_metric = Ncd | Trigram
(** Content comparator: the paper's NCD (default), or cosine distance over
    byte-trigram profiles — the cheaper statistical comparator common in
    the traffic-clustering literature, kept for the ablation. *)

type t
(** Distance context: component configuration plus the NCD compressor
    cache.  Reuse one context across a whole clustering run so singleton
    compressed lengths are computed once. *)

val create :
  ?components:components ->
  ?compressor:Leakdetect_compress.Compressor.algorithm ->
  ?content_metric:content_metric ->
  ?registry:Leakdetect_net.Registry.t ->
  unit ->
  t
(** [registry] enables the WHOIS refinement of Sec. VI: when both packet
    destinations have a registered owner, [d_ip] becomes 0 (same owner) or
    1 (different owners) instead of the prefix heuristic. *)

val components : t -> components
val registry : t -> Leakdetect_net.Registry.t option

val d_ip : Leakdetect_net.Ipv4.t -> Leakdetect_net.Ipv4.t -> float
(** The registry-free prefix heuristic. *)

val d_ip_registry :
  Leakdetect_net.Registry.t ->
  Leakdetect_net.Ipv4.t -> Leakdetect_net.Ipv4.t -> float
(** Registry-verified address distance: 0 / 1 when ownership of both
    addresses is known, the prefix heuristic otherwise. *)

val d_port : int -> int -> float
val d_host : string -> string -> float

val d_dst : t -> Leakdetect_http.Packet.t -> Leakdetect_http.Packet.t -> float
val ncd : t -> string -> string -> float
val d_header : t -> Leakdetect_http.Packet.t -> Leakdetect_http.Packet.t -> float
val d_pkt : t -> Leakdetect_http.Packet.t -> Leakdetect_http.Packet.t -> float

val matrix :
  ?pool:Leakdetect_parallel.Pool.t ->
  ?obs:Leakdetect_obs.Obs.t ->
  t -> Leakdetect_http.Packet.t array -> Leakdetect_cluster.Dist_matrix.t
(** Pairwise [d_pkt] over the sample — the input to clustering.

    [?obs] (default noop) records a [distance.matrix] span, the
    [leakdetect_distance_pairs_total] counter and the
    [leakdetect_distance_matrix_seconds] histogram — once per build, so the
    pair loop itself carries no instrumentation.

    With [?pool] (size > 1) the O(N^2) pair loop fans out across domains.
    Domain safety follows a two-phase protocol: every per-string compressed
    length (or trigram profile) is computed in a sealed read-only prewarm
    pass, both caches are frozen, the pair loop runs with lookups only,
    and the caches are thawed afterwards.  Pair-concatenation lengths are
    pair-specific work and are computed inside the loop either way.  The
    resulting matrix is bit-identical to the sequential build. *)

val with_frozen :
  ?pool:Leakdetect_parallel.Pool.t ->
  t ->
  Leakdetect_http.Packet.t array ->
  (init:(unit -> t) -> 'a) ->
  'a
(** [with_frozen ?pool t packets f] runs [f] inside the two-phase freeze
    window that makes this context safe to share across domains: every
    per-string compressed length (or trigram profile) over [packets] is
    computed in a sealed prewarm pass, both caches are frozen, and [f]
    receives an [init] factory producing per-domain contexts (shadow
    overlays over the frozen tables, or [t] itself when the caches were
    already frozen by an enclosing call).  Caches are thawed when [f]
    returns or raises.  [Distance.matrix] uses this internally; the
    sketch-bucketed clustering driver uses it to fan whole buckets out
    across domains while building each bucket's matrix sequentially. *)

val ncd_cache : t -> Leakdetect_compress.Compressor.Cache.t
(** The NCD cache backing this context — exposed for cache statistics in
    benchmarks and for tests of the freezing protocol. *)

val trigram_cache : t -> Leakdetect_text.Trigram.Cache.t

val max_possible : t -> float
(** Upper bound of [d_pkt] under the enabled components (each enabled
    component contributes at most 1). *)
