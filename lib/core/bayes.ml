module Packet = Leakdetect_http.Packet
module Tokens = Leakdetect_text.Tokens
module Aho_corasick = Leakdetect_text.Aho_corasick
module Prng = Leakdetect_util.Prng
module Sample = Leakdetect_util.Sample

type scored_token = { token : string; weight : float }
type t = { tokens : scored_token list; threshold : float }

let candidate_tokens ?(min_token_len = 3) clusters =
  let seen = Hashtbl.create 64 in
  List.concat_map
    (fun members ->
      Tokens.extract ~min_len:min_token_len (List.map Packet.content_string members))
    clusters
  |> List.filter (fun tok ->
         if Signature.is_boilerplate_token tok || Hashtbl.mem seen tok then false
         else begin
           Hashtbl.add seen tok ();
           true
         end)

type compiled = {
  sig_ : t;
  automaton : Aho_corasick.t option;
  weights : float array;
}

let compile sig_ =
  match sig_.tokens with
  | [] -> { sig_; automaton = None; weights = [||] }
  | tokens ->
    {
      sig_;
      automaton = Some (Aho_corasick.build (List.map (fun s -> s.token) tokens));
      weights = Array.of_list (List.map (fun s -> s.weight) tokens);
    }

let signature c = c.sig_

let score c content =
  match c.automaton with
  | None -> 0.
  | Some automaton ->
    let matched = Aho_corasick.matched_set automaton content in
    let total = ref 0. in
    Array.iteri (fun i hit -> if hit then total := !total +. c.weights.(i)) matched;
    !total

let matches c packet = score c (Packet.content_string packet) >= c.sig_.threshold

let count_detected c packets =
  Array.fold_left (fun acc p -> if matches c p then acc + 1 else acc) 0 packets

let train ?(target_fp = 0.005) ~tokens ~suspicious ~benign () =
  let n_susp = Array.length suspicious and n_ben = Array.length benign in
  if n_susp = 0 || n_ben = 0 then
    invalid_arg "Bayes.train: empty training sample";
  let tokens = List.filter (fun t -> t <> "") tokens in
  let weighted =
    match tokens with
    | [] -> []
    | tokens ->
      let automaton = Aho_corasick.build tokens in
      let occurrences packets =
        let counts = Array.make (List.length tokens) 0 in
        Array.iter
          (fun p ->
            let m = Aho_corasick.matched_set automaton (Packet.content_string p) in
            Array.iteri (fun i hit -> if hit then counts.(i) <- counts.(i) + 1) m)
          packets;
        counts
      in
      let susp_counts = occurrences suspicious in
      let ben_counts = occurrences benign in
      List.mapi
        (fun i token ->
          (* Add-one smoothed log likelihood ratio. *)
          let p_susp =
            float_of_int (susp_counts.(i) + 1) /. float_of_int (n_susp + 2)
          in
          let p_ben = float_of_int (ben_counts.(i) + 1) /. float_of_int (n_ben + 2) in
          { token; weight = log (p_susp /. p_ben) })
        tokens
      |> List.filter (fun s -> s.weight > 0.)
  in
  (* Threshold: the lowest score flagging at most [target_fp] of the benign
     training sample.  Computed from the benign training scores. *)
  let provisional = compile { tokens = weighted; threshold = 0. } in
  let benign_scores =
    Array.map (fun p -> score provisional (Packet.content_string p)) benign
  in
  Array.sort (fun a b -> compare b a) benign_scores;
  let allowed = int_of_float (target_fp *. float_of_int n_ben) in
  let threshold =
    if Array.length benign_scores = 0 then epsilon_float
    else if allowed >= Array.length benign_scores then epsilon_float
    else benign_scores.(allowed) +. 1e-9
  in
  (* A threshold of 0 would flag token-free packets; keep it positive. *)
  let threshold = Float.max threshold 1e-9 in
  { tokens = weighted; threshold }

type outcome = { signature_ : t; n_tokens : int; metrics : Metrics.t }

let run ?(config = Pipeline_config.default) ?pool ?(target_fp = 0.005)
    ?(benign_train = 2000) ~rng ?n ~suspicious ~normal () =
  let config =
    match pool with
    | Some _ -> { config with Pipeline_config.pool }
    | None -> config
  in
  let n = Option.value n ~default:config.Pipeline_config.sample_n in
  Leakdetect_obs.Obs.with_span config.Pipeline_config.obs "bayes.run"
  @@ fun () ->
  let sample = Sample.without_replacement rng n suspicious in
  let n = Array.length sample in
  let dist = Pipeline_config.distance config in
  let gen = Siggen.generate ~config dist sample in
  let clusters =
    List.map
      (fun members -> List.map (fun i -> sample.(i)) members)
      gen.Siggen.clusters
  in
  let tokens =
    candidate_tokens
      ~min_token_len:config.Pipeline_config.siggen.Siggen.min_token_len clusters
  in
  let benign_sample = Sample.without_replacement rng benign_train normal in
  let trained = train ~target_fp ~tokens ~suspicious:sample ~benign:benign_sample () in
  let compiled = compile trained in
  let metrics =
    Metrics.compute
      {
        Metrics.n;
        sensitive_total = Array.length suspicious;
        sensitive_detected = count_detected compiled suspicious;
        normal_total = Array.length normal;
        normal_detected = count_detected compiled normal;
      }
  in
  { signature_ = trained; n_tokens = List.length trained.tokens; metrics }
