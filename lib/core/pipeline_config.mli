(** The unified pipeline configuration ([Pipeline.Config]).

    Every knob the end-to-end pipeline reads lives here: distance
    components and compressor, the signature-generation sub-config, the
    domain pool, the parse-error policy, the default sample size N and the
    observability registry.  It replaces the loose [?pool] / [?on_error]
    optional arguments that had crept across [Pipeline], [Siggen], [Bayes]
    and the CLI; those arguments survive as deprecated thin wrappers.

    Build configurations from {!default} with the [with_*] builders:

    {[
      Pipeline.Config.(default |> with_pool pool |> with_obs registry)
    ]} *)

(** Where to cut the dendrogram into clusters (see {!Siggen.cut}). *)
type cut = Auto | Threshold of float | Count of int | Every_merge

type siggen = {
  algorithm : Leakdetect_cluster.Cluster.algorithm;
      (** Clustering algorithm, selected by value (default
          [Agglomerative Group_average], the paper's configuration). *)
  cut : cut;
  min_token_len : int;  (** Tokens shorter than this are dropped (default 3). *)
  min_specificity : int;
      (** Signatures whose non-boilerplate token mass is below this are
          rejected as degenerate (default 8). *)
  mode : Signature.mode;
}
(** The signature-generation sub-config; [Siggen.config] is an equation on
    this type, so the two are interchangeable. *)

val default_siggen : siggen

type on_error = [ `Fail | `Skip ]
(** Policy for malformed trace / signature lines: fail on the first, or
    salvage and count. *)

type t = {
  components : Distance.components;
  compressor : Leakdetect_compress.Compressor.algorithm;
  content_metric : Distance.content_metric;
  registry : Leakdetect_net.Registry.t option;
      (** WHOIS refinement of the destination distance (Sec. VI). *)
  siggen : siggen;
  clustering : Clustering.backend;
      (** Exact O(N²) clustering (default) or the minhash/LSH sketch
          prefilter — see {!Clustering}. *)
  pool : Leakdetect_parallel.Pool.t option;
      (** Domain pool for the parallel phases; [None] = sequential. *)
  on_error : on_error;  (** Parse-error policy for loaders (default [`Fail]). *)
  sample_n : int;  (** Default sample size N when a run does not pass one. *)
  obs : Leakdetect_obs.Obs.t;
      (** Observability registry; {!Leakdetect_obs.Obs.noop} (the default)
          disables instrumentation at one-branch cost. *)
  normalize : Leakdetect_normalize.Normalize.t option;
      (** Canonicalization lattice for evasion-robust matching; [None]
          (the default) is the byte-identical legacy raw-byte path. *)
}

val default : t

val with_components : Distance.components -> t -> t
val with_compressor : Leakdetect_compress.Compressor.algorithm -> t -> t
val with_content_metric : Distance.content_metric -> t -> t
val with_whois : Leakdetect_net.Registry.t option -> t -> t
val with_siggen : siggen -> t -> t

val with_clustering : Clustering.backend -> t -> t
(** Select the clustering backend: [Clustering.Exact] (the default) or
    [Clustering.Sketch params] for sub-quadratic LSH-bucketed runs. *)

val with_pool : Leakdetect_parallel.Pool.t option -> t -> t

val with_jobs : ?obs:Leakdetect_obs.Obs.t -> int -> t -> t
(** Attach the process-wide warm pool for [jobs] domains
    ({!Leakdetect_parallel.Pool.warm}): the domains are spun up once and
    reused by every phase and every subsequent configuration that asks for
    the same width, instead of paying domain spawn/teardown per run.
    [jobs <= 1] selects the sequential path ([pool = None]). *)

val with_on_error : on_error -> t -> t
val with_obs : Leakdetect_obs.Obs.t -> t -> t
val with_normalize : Leakdetect_normalize.Normalize.t option -> t -> t

val with_sample_n : int -> t -> t
(** @raise Invalid_argument when negative. *)

val with_algorithm : Leakdetect_cluster.Cluster.algorithm -> t -> t

val with_linkage : Leakdetect_cluster.Agglomerative.linkage -> t -> t
(** [with_linkage l] is [with_algorithm (Agglomerative l)] — kept because
    linkage is the knob the paper's ablation sweeps. *)

val with_cut : cut -> t -> t
val with_min_token_len : int -> t -> t
val with_min_specificity : int -> t -> t
val with_mode : Signature.mode -> t -> t

val distance : t -> Distance.t
(** A fresh {!Distance.t} built from the distance-related fields. *)
