module Leak_error = Leakdetect_util.Leak_error

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let unescape s =
  let n = String.length s in
  let buf = Buffer.create n in
  let rec loop i =
    if i = n then Some (Buffer.contents buf)
    else if s.[i] = '\\' then
      if i + 1 = n then None
      else (
        match s.[i + 1] with
        | '\\' -> Buffer.add_char buf '\\'; loop (i + 2)
        | 't' -> Buffer.add_char buf '\t'; loop (i + 2)
        | 'n' -> Buffer.add_char buf '\n'; loop (i + 2)
        | 'r' -> Buffer.add_char buf '\r'; loop (i + 2)
        | _ -> None)
    else begin
      Buffer.add_char buf s.[i];
      loop (i + 1)
    end
  in
  loop 0

let mode_to_string = function
  | Signature.Conjunction -> "conjunction"
  | Signature.Ordered -> "ordered"

let mode_of_string = function
  | "conjunction" -> Some Signature.Conjunction
  | "ordered" -> Some Signature.Ordered
  | _ -> None

let to_line (s : Signature.t) =
  String.concat "\t"
    (string_of_int s.Signature.id
    :: mode_to_string s.Signature.mode
    :: string_of_int s.Signature.cluster_size
    :: List.map escape s.Signature.tokens)

let of_line line =
  match String.split_on_char '\t' line with
  | id_s :: mode_s :: size_s :: tokens when tokens <> [] -> (
    match (int_of_string_opt id_s, mode_of_string mode_s, int_of_string_opt size_s) with
    | Some id, Some mode, Some cluster_size -> (
      match List.find_opt (fun t -> unescape t = None) tokens with
      | Some bad -> Error (Leak_error.Bad_escape bad)
      | None ->
        let unescaped = List.filter_map unescape tokens in
        (try Ok (Signature.make ~id ~mode ~cluster_size unescaped)
         with Invalid_argument m -> Error (Leak_error.Invalid m)))
    | None, _, _ -> Error (Leak_error.Bad_field ("id", id_s))
    | _, None, _ -> Error (Leak_error.Bad_field ("mode", mode_s))
    | _, _, None -> Error (Leak_error.Bad_field ("cluster size", size_s)))
  | _ -> Error (Leak_error.Syntax "expected at least 4 tab-separated fields")

let save path signatures =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iter
        (fun s ->
          output_string oc (to_line s);
          output_char oc '\n')
        signatures)

module Trace = Leakdetect_http.Trace

let load ?config ?on_error path =
  let on_error =
    match (on_error, config) with
    | Some policy, _ -> policy
    | None, Some config -> config.Pipeline_config.on_error
    | None, None -> `Fail
  in
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec loop lineno acc skips =
        match input_line ic with
        | exception End_of_file -> Ok (List.rev acc, skips)
        | line -> (
          match of_line line with
          | Ok s -> loop (lineno + 1) (s :: acc) skips
          | Error e ->
            let e = Leak_error.to_string e in
            (match on_error with
            | `Fail -> Error (Printf.sprintf "line %d: %s" lineno e)
            | `Skip -> loop (lineno + 1) acc (Trace.add_skip skips lineno e)))
      in
      loop 1 [] Trace.no_skips)
