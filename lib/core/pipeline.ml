module Prng = Leakdetect_util.Prng
module Sample = Leakdetect_util.Sample

let log_src = Logs.Src.create "leakdetect.pipeline" ~doc:"End-to-end evaluation pipeline"

module Log = (val Logs.src_log log_src)

type config = {
  components : Distance.components;
  compressor : Leakdetect_compress.Compressor.algorithm;
  content_metric : Distance.content_metric;
  registry : Leakdetect_net.Registry.t option;
  siggen : Siggen.config;
}

let default_config =
  {
    components = Distance.all_components;
    compressor = Leakdetect_compress.Compressor.Lz77;
    content_metric = Distance.Ncd;
    registry = None;
    siggen = Siggen.default;
  }

type outcome = {
  config : config;
  sample_size : int;
  signatures : Signature.t list;
  n_clusters : int;
  rejected_clusters : int;
  metrics : Metrics.t;
}

let run ?(config = default_config) ?pool ~rng ~n ~suspicious ~normal () =
  let sample = Sample.without_replacement rng n suspicious in
  let n = Array.length sample in
  let dist =
    Distance.create ~components:config.components ~compressor:config.compressor
      ~content_metric:config.content_metric ?registry:config.registry ()
  in
  let gen = Siggen.generate ?pool config.siggen dist sample in
  let detector = Detector.create gen.Siggen.signatures in
  let sensitive_detected = Detector.count_detected ?pool detector suspicious in
  let normal_detected = Detector.count_detected ?pool detector normal in
  let metrics =
    Metrics.compute
      {
        Metrics.n;
        sensitive_total = Array.length suspicious;
        sensitive_detected;
        normal_total = Array.length normal;
        normal_detected;
      }
  in
  Log.info (fun m -> m "%a" Metrics.pp metrics);
  {
    config;
    sample_size = n;
    signatures = gen.Siggen.signatures;
    n_clusters = List.length gen.Siggen.clusters;
    rejected_clusters = gen.Siggen.rejected;
    metrics;
  }

let sweep ?(config = default_config) ?pool ~rng ~ns ~suspicious ~normal () =
  List.map (fun n -> run ~config ?pool ~rng:(Prng.split rng) ~n ~suspicious ~normal ()) ns
