module Prng = Leakdetect_util.Prng
module Sample = Leakdetect_util.Sample
module Obs = Leakdetect_obs.Obs

let log_src = Logs.Src.create "leakdetect.pipeline" ~doc:"End-to-end evaluation pipeline"

module Log = (val Logs.src_log log_src)

module Config = Pipeline_config

type config = Pipeline_config.t = {
  components : Distance.components;
  compressor : Leakdetect_compress.Compressor.algorithm;
  content_metric : Distance.content_metric;
  registry : Leakdetect_net.Registry.t option;
  siggen : Siggen.config;
  clustering : Clustering.backend;
  pool : Leakdetect_parallel.Pool.t option;
  on_error : Config.on_error;
  sample_n : int;
  obs : Obs.t;
  normalize : Leakdetect_normalize.Normalize.t option;
}

let default_config = Config.default

type outcome = {
  config : config;
  sample_size : int;
  signatures : Signature.t list;
  n_clusters : int;
  rejected_clusters : int;
  metrics : Metrics.t;
}

let run_instrumented config ~rng ~n ~suspicious ~normal =
  let obs = config.obs and pool = config.pool in
  let sample = Sample.without_replacement rng n suspicious in
  let n = Array.length sample in
  Obs.Gauge.set
    (Obs.gauge obs ~help:"Suspicious packets sampled by the latest run."
       "leakdetect_pipeline_sample_size")
    n;
  let dist = Config.distance config in
  let gen = Siggen.generate ~config dist sample in
  let detector = Detector.create gen.Siggen.signatures in
  let normalize = config.normalize in
  let sensitive_detected =
    Detector.count_detected ?pool ~obs ?normalize detector suspicious
  in
  let normal_detected = Detector.count_detected ?pool ~obs ?normalize detector normal in
  let metrics =
    Metrics.compute
      {
        Metrics.n;
        sensitive_total = Array.length suspicious;
        sensitive_detected;
        normal_total = Array.length normal;
        normal_detected;
      }
  in
  Log.info (fun m -> m "%a" Metrics.pp metrics);
  {
    config;
    sample_size = n;
    signatures = gen.Siggen.signatures;
    n_clusters = List.length gen.Siggen.clusters;
    rejected_clusters = gen.Siggen.rejected;
    metrics;
  }

let run ?(config = Config.default) ?pool ?n ~rng ~suspicious ~normal () =
  let config =
    match pool with Some _ -> { config with pool } | None -> config
  in
  let n = Option.value n ~default:config.sample_n in
  let obs = config.obs in
  if Obs.is_noop obs then run_instrumented config ~rng ~n ~suspicious ~normal
  else
    Obs.with_span obs "pipeline.run" @@ fun () ->
    let t0 = Obs.Clock.now_ns () in
    let outcome = run_instrumented config ~rng ~n ~suspicious ~normal in
    Obs.Counter.inc
      (Obs.counter obs ~help:"Completed end-to-end pipeline runs."
         "leakdetect_pipeline_runs_total");
    Obs.Histogram.observe
      (Obs.histogram obs ~help:"End-to-end pipeline run latency."
         ~buckets:Obs.duration_buckets "leakdetect_pipeline_run_seconds")
      (float_of_int (Obs.Clock.now_ns () - t0) /. 1e9);
    outcome

let sweep ?(config = Config.default) ?pool ~rng ~ns ~suspicious ~normal () =
  List.map
    (fun n -> run ~config ?pool ~rng:(Prng.split rng) ~n ~suspicious ~normal ())
    ns
