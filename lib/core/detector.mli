(** The detection engine: applies a generated signature set to packets.
    This is what the paper's on-device information-flow-control application
    runs against intercepted traffic (Fig. 3b).

    The hot path is zero-copy: a packet's three content fields are fed
    through a resumable Aho-Corasick scan with the canonical ['\n']
    separators in between, so the automaton walks the exact bytes of
    {!Leakdetect_http.Packet.content_string} without that string ever being
    built.  It is materialized lazily, only when an ordered signature must
    verify token order or the canonicalization lattice needs input to
    decode.

    All entry points accept an optional {!Leakdetect_normalize.Normalize.t}:
    when present, every packet is matched against its raw content and then
    against each derived view of the bounded canonicalization lattice, so a
    re-encoded leak still hits the signature set.  The same shared
    Aho-Corasick automaton scans every view; omitting [?normalize] is the
    byte-identical legacy path. *)

type t

type detector = t
(** Alias so {!Stream}'s signature can name the detector unambiguously. *)

val create : Signature.t list -> t
val signatures : t -> Signature.t list
val signature_count : t -> int

val first_match :
  ?normalize:Leakdetect_normalize.Normalize.t ->
  t -> Leakdetect_http.Packet.t -> Signature.t option
(** The first signature (in id order) matching the packet; the raw content
    is tried before any derived view. *)

val first_match_normalized :
  ?normalize:Leakdetect_normalize.Normalize.t ->
  t ->
  Leakdetect_http.Packet.t ->
  (Signature.t * Leakdetect_normalize.Normalize.step list) option
(** Like {!first_match} but also reports the decode chain of the view that
    matched ([[]] for the raw content), for evasion attribution. *)

val all_matches :
  ?normalize:Leakdetect_normalize.Normalize.t ->
  t -> Leakdetect_http.Packet.t -> Signature.t list

val first_match_content : t -> string -> Signature.t option
(** {!first_match} over an already-materialized content string. *)

val all_matches_content : t -> string -> Signature.t list

val detects :
  ?normalize:Leakdetect_normalize.Normalize.t ->
  t -> Leakdetect_http.Packet.t -> bool

(** {2 Reusable scan scratch}

    One scan needs a matched-token set (one flag per automaton pattern) and
    a resumable matcher state.  A {!scratch} bundles both so long-lived
    callers — the sequential whole-trace loop, each pool domain, the
    on-device monitor — allocate once and reuse it per packet instead of
    allocating per packet.  A scratch must not be shared across domains;
    the detector itself is immutable and may be. *)

type scratch

val scratch : t -> scratch
(** A fresh scratch sized for this detector's automaton. *)

val first_match_with :
  ?normalize:Leakdetect_normalize.Normalize.t ->
  t -> scratch -> Leakdetect_http.Packet.t ->
  (Signature.t * Leakdetect_normalize.Normalize.step list) option
(** {!first_match_normalized} scanning through a caller-owned scratch:
    no per-packet allocation on the conjunction fast path. *)

val detects_with :
  ?normalize:Leakdetect_normalize.Normalize.t ->
  t -> scratch -> Leakdetect_http.Packet.t -> bool

val count_detected :
  ?pool:Leakdetect_parallel.Pool.t ->
  ?obs:Leakdetect_obs.Obs.t ->
  ?normalize:Leakdetect_normalize.Normalize.t ->
  t -> Leakdetect_http.Packet.t array -> int
(** Sequential runs ([?pool] absent) reuse one scratch across the whole
    trace — the same shared-automaton + private-buffer discipline as each
    parallel domain. *)

val detect_bitmap :
  ?pool:Leakdetect_parallel.Pool.t ->
  ?obs:Leakdetect_obs.Obs.t ->
  ?normalize:Leakdetect_normalize.Normalize.t ->
  t -> Leakdetect_http.Packet.t array -> bool array
(** Per-packet detection flags, aligned with the input array.  [?obs]
    (default noop) records a [detector.scan] span and the
    [leakdetect_detection_*] counters/histogram — per scan, not per packet,
    so the hot loop is untouched.  With [?pool], packets are sharded across
    domains: the Aho-Corasick automaton (and the normalizer, which holds no
    per-call state) is shared read-only and every domain reuses a private
    {!scratch}, so the bitmap is identical to the sequential scan. *)

(** {2 Streaming detection}

    The monitor path inspects packets as a transport produces them — often
    as chunked-body fragments — and must not pay reassembly-then-rescan.  A
    {!Stream.t} wraps a detector with shared hit/byte/packet counters; each
    {!Stream.flow} carries resumable matcher state across the fragments of
    one logical packet, so a token split across two chunk seams still
    matches, and every fragment is scanned in place ([?off]/[?len] slices
    of the transport's buffer, no copies).  Flows reset themselves on
    {!Stream.close} for reuse. *)
module Stream : sig
  type t

  val create :
    ?pool:Leakdetect_parallel.Pool.t ->
    ?normalize:Leakdetect_normalize.Normalize.t ->
    detector -> t
  (** The full fed content is retained per flow only when the signature set
      contains ordered signatures or [?normalize] is given — conjunction
      matching over raw traffic buffers nothing. *)

  type flow

  val open_flow : t -> flow
  (** A flow scans the canonical content stream of one packet: feed the
      request line, ["\n"], the cookie, ["\n"], then the body fragments in
      order, and the result equals whole-packet {!detects}/{!first_match}.
      Not domain-safe; open one flow per worker and reuse it. *)

  val feed : flow -> ?off:int -> ?len:int -> string -> unit
  (** Scan the next fragment ([?off]/[?len] delimit a slice of a
      caller-owned buffer, default the whole string) without copying it. *)

  val feed_chunked :
    flow ->
    ?limits:Leakdetect_http.Wire.limits ->
    string ->
    (int, Leakdetect_http.Wire.error) result
  (** Frame a raw chunked transfer-coded body
      ({!Leakdetect_http.Wire.chunked_fragments}) and feed each chunk
      payload slice in place; returns the decoded length.  Fragments before
      an error have been fed. *)

  val close : flow -> Signature.t option
  (** Finish the flow: test the accumulated matched set against every
      signature (forcing the buffered content only for ordered signatures
      or lattice views), update the stream's aggregate counters, and reset
      the flow for the next packet. *)

  val detect_batch : t -> Leakdetect_http.Packet.t array -> bool array
  (** {!detect_bitmap} through the stream's pool — packets sharded across
      per-domain workers, each with its own matched-set scratch — plus the
      aggregate packet/byte/hit accounting.  This is the line-rate batch
      entry the benchmark drives for packets/sec. *)

  type stats = { packets : int; bytes : int; hits : int }

  val stats : t -> stats
  (** Aggregate totals across every flow and batch since {!create};
      readable from any domain. *)
end
