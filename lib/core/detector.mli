(** The detection engine: applies a generated signature set to packets.
    This is what the paper's on-device information-flow-control application
    runs against intercepted traffic (Fig. 3b).

    All entry points accept an optional {!Leakdetect_normalize.Normalize.t}:
    when present, every packet is matched against its raw content and then
    against each derived view of the bounded canonicalization lattice, so a
    re-encoded leak still hits the signature set.  The same shared
    Aho-Corasick automaton scans every view; omitting [?normalize] is the
    byte-identical legacy path. *)

type t

val create : Signature.t list -> t
val signatures : t -> Signature.t list
val signature_count : t -> int

val first_match :
  ?normalize:Leakdetect_normalize.Normalize.t ->
  t -> Leakdetect_http.Packet.t -> Signature.t option
(** The first signature (in id order) matching the packet; the raw content
    is tried before any derived view. *)

val first_match_normalized :
  ?normalize:Leakdetect_normalize.Normalize.t ->
  t ->
  Leakdetect_http.Packet.t ->
  (Signature.t * Leakdetect_normalize.Normalize.step list) option
(** Like {!first_match} but also reports the decode chain of the view that
    matched ([[]] for the raw content), for evasion attribution. *)

val all_matches :
  ?normalize:Leakdetect_normalize.Normalize.t ->
  t -> Leakdetect_http.Packet.t -> Signature.t list

val first_match_content : t -> string -> Signature.t option
(** {!first_match} over an already-materialized content string; both
    packet-level entry points are thin wrappers that materialize the
    content (and its views) and delegate here. *)

val all_matches_content : t -> string -> Signature.t list

val detects :
  ?normalize:Leakdetect_normalize.Normalize.t ->
  t -> Leakdetect_http.Packet.t -> bool

val count_detected :
  ?pool:Leakdetect_parallel.Pool.t ->
  ?obs:Leakdetect_obs.Obs.t ->
  ?normalize:Leakdetect_normalize.Normalize.t ->
  t -> Leakdetect_http.Packet.t array -> int

val detect_bitmap :
  ?pool:Leakdetect_parallel.Pool.t ->
  ?obs:Leakdetect_obs.Obs.t ->
  ?normalize:Leakdetect_normalize.Normalize.t ->
  t -> Leakdetect_http.Packet.t array -> bool array
(** Per-packet detection flags, aligned with the input array.  [?obs]
    (default noop) records a [detector.scan] span and the
    [leakdetect_detection_*] counters/histogram — per scan, not per packet,
    so the hot loop is untouched.  With
    [?pool], packets are scanned from several domains: the Aho-Corasick
    automaton (and the normalizer, which holds no per-call state) is shared
    read-only and every domain reuses a private matched-set scratch buffer,
    so the bitmap is identical to the sequential scan. *)
