(** The detection engine: applies a generated signature set to packets.
    This is what the paper's on-device information-flow-control application
    runs against intercepted traffic (Fig. 3b). *)

type t

val create : Signature.t list -> t
val signatures : t -> Signature.t list
val signature_count : t -> int

val first_match : t -> Leakdetect_http.Packet.t -> Signature.t option
(** The first signature (in id order) matching the packet. *)

val all_matches : t -> Leakdetect_http.Packet.t -> Signature.t list

val first_match_content : t -> string -> Signature.t option
(** {!first_match} over an already-materialized content string; both
    packet-level entry points are thin wrappers that materialize the
    content once and delegate here. *)

val all_matches_content : t -> string -> Signature.t list

val detects : t -> Leakdetect_http.Packet.t -> bool

val count_detected :
  ?pool:Leakdetect_parallel.Pool.t ->
  ?obs:Leakdetect_obs.Obs.t ->
  t -> Leakdetect_http.Packet.t array -> int

val detect_bitmap :
  ?pool:Leakdetect_parallel.Pool.t ->
  ?obs:Leakdetect_obs.Obs.t ->
  t -> Leakdetect_http.Packet.t array -> bool array
(** Per-packet detection flags, aligned with the input array.  [?obs]
    (default noop) records a [detector.scan] span and the
    [leakdetect_detection_*] counters/histogram — per scan, not per packet,
    so the hot loop is untouched.  With
    [?pool], packets are scanned from several domains: the Aho-Corasick
    automaton is shared read-only and every domain reuses a private
    matched-set scratch buffer, so the bitmap is identical to the
    sequential scan. *)
