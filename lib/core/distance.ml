module Ipv4 = Leakdetect_net.Ipv4
module Domain = Leakdetect_net.Domain
module Packet = Leakdetect_http.Packet
module Compressor = Leakdetect_compress.Compressor

type components = {
  use_ip : bool;
  use_port : bool;
  use_host : bool;
  use_rline : bool;
  use_cookie : bool;
  use_body : bool;
}

let all_components =
  { use_ip = true; use_port = true; use_host = true;
    use_rline = true; use_cookie = true; use_body = true }

let destination_only =
  { all_components with use_rline = false; use_cookie = false; use_body = false }

let content_only =
  { all_components with use_ip = false; use_port = false; use_host = false }

type content_metric = Ncd | Trigram

type t = {
  comps : components;
  cache : Compressor.Cache.t;
  trigram_cache : Leakdetect_text.Trigram.Cache.t;
  metric : content_metric;
  registry : Leakdetect_net.Registry.t option;
}

let create ?(components = all_components) ?(compressor = Compressor.Lz77)
    ?(content_metric = Ncd) ?registry () =
  {
    comps = components;
    cache = Compressor.Cache.create compressor;
    trigram_cache = Leakdetect_text.Trigram.Cache.create ();
    metric = content_metric;
    registry;
  }

let components t = t.comps
let registry t = t.registry

let d_ip a b = 1. -. Ipv4.similarity a b

let d_ip_registry registry a b =
  match Leakdetect_net.Registry.same_organization registry a b with
  | Some true -> 0.
  | Some false -> 1.
  | None -> d_ip a b
let d_port a b = if a = b then 0. else 1.
let d_host a b = Domain.normalized_edit_distance a b

let d_dst t (px : Packet.t) (py : Packet.t) =
  let dx = px.dst and dy = py.dst in
  let acc = ref 0. in
  if t.comps.use_ip then begin
    let d =
      match t.registry with
      | Some registry -> d_ip_registry registry dx.Packet.ip dy.Packet.ip
      | None -> d_ip dx.Packet.ip dy.Packet.ip
    in
    acc := !acc +. d
  end;
  if t.comps.use_port then acc := !acc +. d_port dx.Packet.port dy.Packet.port;
  if t.comps.use_host then acc := !acc +. d_host dx.Packet.host dy.Packet.host;
  !acc

let ncd t x y = Compressor.Cache.ncd t.cache x y

let content_distance t x y =
  match t.metric with
  | Ncd -> ncd t x y
  | Trigram -> Leakdetect_text.Trigram.Cache.distance t.trigram_cache x y

let d_header t (px : Packet.t) (py : Packet.t) =
  let cx = px.content and cy = py.content in
  let acc = ref 0. in
  if t.comps.use_rline then
    acc := !acc +. content_distance t cx.Packet.request_line cy.Packet.request_line;
  if t.comps.use_cookie then
    acc := !acc +. content_distance t cx.Packet.cookie cy.Packet.cookie;
  if t.comps.use_body then acc := !acc +. content_distance t cx.Packet.body cy.Packet.body;
  !acc

let d_pkt t px py = d_dst t px py +. d_header t px py

module Pool = Leakdetect_parallel.Pool

let ncd_cache t = t.cache
let trigram_cache t = t.trigram_cache

(* Distinct content strings the enabled components will compare. *)
let content_strings t packets =
  let tbl = Hashtbl.create 256 in
  let add s = if not (Hashtbl.mem tbl s) then Hashtbl.add tbl s () in
  Array.iter
    (fun (p : Packet.t) ->
      let c = p.Packet.content in
      if t.comps.use_rline then add c.Packet.request_line;
      if t.comps.use_cookie then add c.Packet.cookie;
      if t.comps.use_body then add c.Packet.body)
    packets;
  Array.of_seq (Hashtbl.to_seq_keys tbl)

(* Sealed read-only warm pass: compute every per-string quantity the pair
   loop will look up, insert it while still single-domain, then freeze the
   caches so the loop can share them across domains. *)
let prewarm ~pool t packets =
  let strings = content_strings t packets in
  (match t.metric with
  | Ncd ->
    let algo = Compressor.Cache.algorithm t.cache in
    let lens = Pool.parallel_map_array ~pool (Compressor.length_bits algo) strings in
    Array.iteri (fun i s -> Compressor.Cache.preload t.cache s lens.(i)) strings
  | Trigram ->
    Array.iter (Leakdetect_text.Trigram.Cache.preload t.trigram_cache) strings);
  Compressor.Cache.freeze t.cache;
  Leakdetect_text.Trigram.Cache.freeze t.trigram_cache

module Obs = Leakdetect_obs.Obs

(* Freeze-window combinator shared by the full matrix build and the
   sketch-bucketed driver: prewarm every per-string quantity, freeze both
   caches, hand the body a per-domain context factory, thaw on the way out.
   When the caller arrives with already-frozen caches (a warm context
   reused across runs), every singleton — and any pair the previous runs
   populated — is served read-only from the shared tables, so layering a
   fresh shadow per domain would only add a probe of empty tables to every
   lookup.  Shadows are built just for this call's own freeze, where they
   restore the pair-level C(xy) dedup the sealed tables cannot absorb.
   Either way the values are identical: caching only skips recomputation. *)
let with_frozen ?pool t packets f =
  let was_frozen = Compressor.Cache.frozen t.cache in
  if not was_frozen then prewarm ~pool t packets;
  Fun.protect
    ~finally:(fun () ->
      if not was_frozen then begin
        Compressor.Cache.thaw t.cache;
        Leakdetect_text.Trigram.Cache.thaw t.trigram_cache
      end)
    (fun () ->
      let init =
        if was_frozen then fun () -> t
        else
          fun () ->
            { t with
              cache = Compressor.Cache.shadow t.cache;
              trigram_cache = Leakdetect_text.Trigram.Cache.shadow t.trigram_cache }
      in
      f ~init)

let build_matrix ?pool t packets =
  let n = Array.length packets in
  let parallel = match pool with Some p -> Pool.size p > 1 | None -> false in
  if not parallel then
    Leakdetect_cluster.Dist_matrix.build n (fun i j -> d_pkt t packets.(i) packets.(j))
  else
    with_frozen ?pool t packets (fun ~init ->
        let m = Leakdetect_cluster.Dist_matrix.create n in
        (* Row i owns a contiguous condensed range, so every cell is
           written exactly once; guided claiming hands out large row ranges
           first and shrinks toward the floor as the triangle drains. *)
        Pool.parallel_for_with ~pool ~init n (fun local i ->
            for j = i + 1 to n - 1 do
              Leakdetect_cluster.Dist_matrix.set m i j (d_pkt local packets.(i) packets.(j))
            done);
        m)

let matrix ?pool ?(obs = Obs.noop) t packets =
  if Obs.is_noop obs then build_matrix ?pool t packets
  else
    Obs.with_span obs "distance.matrix" @@ fun () ->
    let n = Array.length packets in
    let t0 = Obs.Clock.now_ns () in
    let m = build_matrix ?pool t packets in
    Obs.Histogram.observe
      (Obs.histogram obs ~help:"Distance-matrix build latency."
         ~buckets:Obs.duration_buckets "leakdetect_distance_matrix_seconds")
      (float_of_int (Obs.Clock.now_ns () - t0) /. 1e9);
    Obs.Counter.add
      (Obs.counter obs ~help:"Packet pairs compared while building matrices."
         "leakdetect_distance_pairs_total")
      (n * (n - 1) / 2);
    m

let max_possible t =
  let b flag = if flag then 1. else 0. in
  b t.comps.use_ip +. b t.comps.use_port +. b t.comps.use_host
  +. b t.comps.use_rline +. b t.comps.use_cookie +. b t.comps.use_body
