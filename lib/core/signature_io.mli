(** Signature-set persistence.

    The Figure 3 architecture separates the generation server from the
    on-device application, which periodically fetches the signature set;
    this module defines the interchange format.  Line-oriented:

      id TAB mode TAB cluster_size TAB token1 TAB token2 ...

    with backslash escaping of tab/newline/backslash inside tokens. *)

val to_line : Signature.t -> string

val of_line : string -> (Signature.t, Leakdetect_util.Leak_error.t) result
(** Parse errors use the unified {!Leakdetect_util.Leak_error.t} shared
    with the wire and response parsers; render with
    {!Leakdetect_util.Leak_error.to_string}. *)

val save : string -> Signature.t list -> unit

val load :
  ?config:Pipeline_config.t ->
  ?on_error:[ `Fail | `Skip ] ->
  string ->
  (Signature.t list * Leakdetect_http.Trace.skipped, string) result
(** Reads a signature file.  Like the trace readers, [`Fail] reports the
    first malformed line with its line number; [`Skip] salvages every
    parseable signature and counts the skipped lines, keeping a sample of
    the offending line numbers and errors.

    The policy comes from [?on_error] when given, else from
    [?config.on_error], else [`Fail]; the explicit argument survives as a
    deprecated override for pre-[Pipeline.Config] call sites. *)
