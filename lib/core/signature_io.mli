(** Signature-set persistence.

    The Figure 3 architecture separates the generation server from the
    on-device application, which periodically fetches the signature set;
    this module defines the interchange format.  Line-oriented:

      id TAB mode TAB cluster_size TAB token1 TAB token2 ...

    with backslash escaping of tab/newline/backslash inside tokens. *)

val to_line : Signature.t -> string
val of_line : string -> (Signature.t, string) result

val save : string -> Signature.t list -> unit

val load :
  ?on_error:[ `Fail | `Skip ] ->
  string ->
  (Signature.t list * Leakdetect_http.Trace.skipped, string) result
(** Reads a signature file.  Like the trace readers, [`Fail] (the default)
    reports the first malformed line with its line number; [`Skip]
    salvages every parseable signature and counts the skipped lines,
    keeping a sample of the offending line numbers and errors. *)
