module Search = Leakdetect_text.Search
module Packet = Leakdetect_http.Packet

type t = {
  needles : (Sensitive.kind * string) list;
  compiled : (Sensitive.kind * Search.compiled) list;
}

let create needles =
  List.iter
    (fun (_, n) ->
      if n = "" then invalid_arg "Payload_check.create: empty needle")
    needles;
  { needles; compiled = List.map (fun (k, n) -> (k, Search.compile n)) needles }

let needles t = t.needles

let scan t packet =
  let content = Packet.content_string packet in
  List.fold_left
    (fun acc (kind, pat) ->
      if Search.matches pat content && not (List.exists (Sensitive.equal kind) acc)
      then kind :: acc
      else acc)
    [] t.compiled
  |> List.sort Sensitive.compare

let is_sensitive t packet =
  let content = Packet.content_string packet in
  List.exists (fun (_, pat) -> Search.matches pat content) t.compiled

module Obs = Leakdetect_obs.Obs

let split ?(obs = Obs.noop) t packets =
  Obs.with_span obs "payload_check.split" @@ fun () ->
  let suspicious = ref [] and normal = ref [] in
  Array.iter
    (fun p ->
      if is_sensitive t p then suspicious := p :: !suspicious
      else normal := p :: !normal)
    packets;
  let suspicious = Array.of_list (List.rev !suspicious)
  and normal = Array.of_list (List.rev !normal) in
  let classified class_ n =
    Obs.Counter.add
      (Obs.counter obs ~help:"Packets classified by the payload check."
         ~labels:[ ("class", class_) ]
         "leakdetect_payload_check_packets_total")
      n
  in
  classified "sensitive" (Array.length suspicious);
  classified "normal" (Array.length normal);
  (suspicious, normal)
