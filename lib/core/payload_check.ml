module Search = Leakdetect_text.Search
module Packet = Leakdetect_http.Packet
module Hex = Leakdetect_util.Hex
module Normalize = Leakdetect_normalize.Normalize

type compiled_needle = {
  pattern : Search.compiled;
  fold : bool;  (* hex-digest needle, matched against folded content *)
}

type t = {
  needles : (Sensitive.kind * string) list;
  compiled : (Sensitive.kind * compiled_needle) list;
}

(* MD5/SHA1 hex digests are transmitted in whichever case the ad module's
   formatter picked, so digest-shaped needles match case-insensitively.
   Raw identifiers (IMEI, IMSI, Android ID, carrier) stay byte-exact. *)
let is_digest_needle n =
  (String.length n = 32 || String.length n = 40) && Hex.is_hex n

let create needles =
  List.iter
    (fun (_, n) ->
      if n = "" then invalid_arg "Payload_check.create: empty needle")
    needles;
  {
    needles;
    compiled =
      List.map
        (fun (k, n) ->
          if is_digest_needle n then
            (k, { pattern = Search.compile (String.lowercase_ascii n); fold = true })
          else (k, { pattern = Search.compile n; fold = false }))
        needles;
  }

let needles t = t.needles

let needle_in_content cn ~content ~folded =
  Search.matches cn.pattern (if cn.fold then Lazy.force folded else content)

type via = Raw | Folded | View of Normalize.step list

let via_to_string = function
  | Raw -> "raw"
  | Folded -> "folded"
  | View steps -> String.concat "+" (List.map Normalize.step_name steps)

type verdict = { kind : Sensitive.kind; via : via }

let content_views normalize content =
  match normalize with
  | None -> []
  | Some nz -> (Normalize.lattice nz content).Normalize.derived

let scan_verdicts ?normalize t packet =
  let content = Packet.content_string packet in
  let folded = lazy (String.lowercase_ascii content) in
  let views = lazy (content_views normalize content) in
  let verdict_for (kind, cn) =
    if Search.matches cn.pattern content then Some { kind; via = Raw }
    else if cn.fold && Search.matches cn.pattern (Lazy.force folded) then
      Some { kind; via = Folded }
    else
      List.find_map
        (fun (v : Normalize.view) ->
          let text = if cn.fold then String.lowercase_ascii v.Normalize.text else v.Normalize.text in
          if Search.matches cn.pattern text then
            Some { kind; via = View v.Normalize.steps }
          else None)
        (Lazy.force views)
  in
  List.filter_map verdict_for t.compiled
  |> List.sort_uniq (fun a b -> Sensitive.compare a.kind b.kind)

let scan ?normalize t packet =
  match normalize with
  | None ->
    let content = Packet.content_string packet in
    let folded = lazy (String.lowercase_ascii content) in
    List.fold_left
      (fun acc (kind, cn) ->
        if needle_in_content cn ~content ~folded
           && not (List.exists (Sensitive.equal kind) acc)
        then kind :: acc
        else acc)
      [] t.compiled
    |> List.sort Sensitive.compare
  | Some _ -> List.map (fun v -> v.kind) (scan_verdicts ?normalize t packet)

let is_sensitive ?normalize t packet =
  let content = Packet.content_string packet in
  let folded = lazy (String.lowercase_ascii content) in
  List.exists (fun (_, cn) -> needle_in_content cn ~content ~folded) t.compiled
  ||
  match normalize with
  | None -> false
  | Some nz ->
    List.exists
      (fun (v : Normalize.view) ->
        let folded = lazy (String.lowercase_ascii v.Normalize.text) in
        List.exists
          (fun (_, cn) -> needle_in_content cn ~content:v.Normalize.text ~folded)
          t.compiled)
      (Normalize.lattice nz content).Normalize.derived

module Obs = Leakdetect_obs.Obs

let split ?(obs = Obs.noop) ?normalize t packets =
  Obs.with_span obs "payload_check.split" @@ fun () ->
  let suspicious = ref [] and normal = ref [] in
  Array.iter
    (fun p ->
      if is_sensitive ?normalize t p then suspicious := p :: !suspicious
      else normal := p :: !normal)
    packets;
  let suspicious = Array.of_list (List.rev !suspicious)
  and normal = Array.of_list (List.rev !normal) in
  let classified class_ n =
    Obs.Counter.add
      (Obs.counter obs ~help:"Packets classified by the payload check."
         ~labels:[ ("class", class_) ]
         "leakdetect_payload_check_packets_total")
      n
  in
  classified "sensitive" (Array.length suspicious);
  classified "normal" (Array.length normal);
  (suspicious, normal)
