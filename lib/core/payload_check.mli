(** The payload check (Sec. IV-A): splits a trace into the suspicious group
    (packets carrying sensitive information) and the normal group.

    In the paper's setting all traffic comes from one handset, so the
    concrete identifier values are known; the check scans each packet for
    those values and for their MD5/SHA1 hex digests.  The needle table is
    supplied by the caller (the Android device model provides one via
    [Leakdetect_android.Device.needles]), keeping this module independent of
    how identifiers are obtained. *)

type t

val create : (Sensitive.kind * string) list -> t
(** [create needles] pre-compiles the search patterns.  Multiple needles per
    kind are allowed (e.g. a raw value and its URL-encoded form).  Empty
    needle strings are rejected with [Invalid_argument]. *)

val needles : t -> (Sensitive.kind * string) list

val scan : t -> Leakdetect_http.Packet.t -> Sensitive.kind list
(** The distinct kinds whose needle occurs in the packet content
    (request-line, cookie or body), in Table III order. *)

val is_sensitive : t -> Leakdetect_http.Packet.t -> bool

val split :
  ?obs:Leakdetect_obs.Obs.t ->
  t ->
  Leakdetect_http.Packet.t array ->
  Leakdetect_http.Packet.t array * Leakdetect_http.Packet.t array
(** [(suspicious, normal)] preserving input order within each group.
    [?obs] records a [payload_check.split] span and the per-class
    [leakdetect_payload_check_packets_total] counter. *)
