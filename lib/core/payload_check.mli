(** The payload check (Sec. IV-A): splits a trace into the suspicious group
    (packets carrying sensitive information) and the normal group.

    In the paper's setting all traffic comes from one handset, so the
    concrete identifier values are known; the check scans each packet for
    those values and for their MD5/SHA1 hex digests.  The needle table is
    supplied by the caller (the Android device model provides one via
    [Leakdetect_android.Device.needles]), keeping this module independent of
    how identifiers are obtained.

    Digest-shaped needles (32/40 hex characters) match case-insensitively —
    ad modules emit digests in either case — while raw identifiers stay
    byte-exact.  An optional {!Leakdetect_normalize.Normalize.t} extends
    the scan over the bounded lattice of decoded views, so re-encoded
    (percent/base64/hex/chunked) leaks are still classified as sensitive;
    without it, behavior is the legacy raw-byte scan. *)

type t

val create : (Sensitive.kind * string) list -> t
(** [create needles] pre-compiles the search patterns.  Multiple needles per
    kind are allowed (e.g. a raw value and its URL-encoded form).  Empty
    needle strings are rejected with [Invalid_argument]. *)

val needles : t -> (Sensitive.kind * string) list

(** How a needle was found: in the raw bytes, in the case-folded content
    (digest needles only), or in a derived view reached by a decode chain. *)
type via = Raw | Folded | View of Leakdetect_normalize.Normalize.step list

val via_to_string : via -> string
(** ["raw"], ["folded"], or the decode chain joined with [+]
    (e.g. ["percent+base64"]). *)

type verdict = { kind : Sensitive.kind; via : via }

val scan_verdicts :
  ?normalize:Leakdetect_normalize.Normalize.t ->
  t ->
  Leakdetect_http.Packet.t ->
  verdict list
(** Like {!scan} but each kind carries the view that matched it, so an
    evasion report can attribute detections to decode chains.  For a kind
    matched by several views, the earliest (raw first, then shallower
    decode chains) wins. *)

val scan :
  ?normalize:Leakdetect_normalize.Normalize.t ->
  t ->
  Leakdetect_http.Packet.t ->
  Sensitive.kind list
(** The distinct kinds whose needle occurs in the packet content
    (request-line, cookie or body), in Table III order. *)

val is_sensitive :
  ?normalize:Leakdetect_normalize.Normalize.t -> t -> Leakdetect_http.Packet.t -> bool

val split :
  ?obs:Leakdetect_obs.Obs.t ->
  ?normalize:Leakdetect_normalize.Normalize.t ->
  t ->
  Leakdetect_http.Packet.t array ->
  Leakdetect_http.Packet.t array * Leakdetect_http.Packet.t array
(** [(suspicious, normal)] preserving input order within each group.
    [?obs] records a [payload_check.split] span and the per-class
    [leakdetect_payload_check_packets_total] counter. *)
