(** Probabilistic (Bayes) signatures — the future-work extension the paper
    names in Sec. VI ("Probabilistic signatures [14], [30], [31] might
    improve detection of information leakage ... we hope to include them in
    our scheme in future work"), after Polygraph's Bayes signatures.

    Instead of a hard conjunction, every candidate token gets a weight

      w(t) = log P(t | suspicious) - log P(t | benign)

    estimated with add-one smoothing from a suspicious training sample and
    a benign training sample.  A packet's score is the sum of the weights
    of the tokens it contains; it is flagged when the score reaches a
    threshold chosen so that at most [target_fp] of the benign training
    sample is flagged.  This degrades gracefully where conjunctions are
    brittle: a packet missing one token of a signature can still be caught
    by the remaining evidence. *)

type scored_token = { token : string; weight : float }

type t = {
  tokens : scored_token list;  (** Positive-weight tokens only. *)
  threshold : float;
}

val candidate_tokens :
  ?min_token_len:int ->
  Leakdetect_http.Packet.t list list ->
  string list
(** Union of the invariant tokens of each cluster (deduplicated,
    boilerplate removed) — the candidate set Polygraph feeds its Bayes
    learner. *)

val train :
  ?target_fp:float ->
  tokens:string list ->
  suspicious:Leakdetect_http.Packet.t array ->
  benign:Leakdetect_http.Packet.t array ->
  unit ->
  t
(** [train ~tokens ~suspicious ~benign ()] estimates weights and picks the
    threshold ([target_fp] defaults to 0.005).  @raise Invalid_argument
    when either training sample is empty. *)

type compiled

val compile : t -> compiled
val signature : compiled -> t

val score : compiled -> string -> float
(** Score of a flattened packet content. *)

val matches : compiled -> Leakdetect_http.Packet.t -> bool
val count_detected : compiled -> Leakdetect_http.Packet.t array -> int

type outcome = {
  signature_ : t;
  n_tokens : int;
  metrics : Metrics.t;
}

val run :
  ?config:Pipeline_config.t ->
  ?pool:Leakdetect_parallel.Pool.t ->
  ?target_fp:float ->
  ?benign_train:int ->
  rng:Leakdetect_util.Prng.t ->
  ?n:int ->
  suspicious:Leakdetect_http.Packet.t array ->
  normal:Leakdetect_http.Packet.t array ->
  unit ->
  outcome
(** End-to-end Bayes variant of {!Pipeline.run}: sample N suspicious
    packets (default [config.sample_n]), cluster them exactly as the paper
    does, take the per-cluster invariant tokens as candidates, train
    weights against a benign sample of [benign_train] packets (default
    2000), and evaluate on the whole dataset with the paper's metrics.
    Like {!Pipeline.run}, the deprecated [?pool] overrides [config.pool]. *)
