module Packet = Leakdetect_http.Packet
module Wire = Leakdetect_http.Wire
module Aho_corasick = Leakdetect_text.Aho_corasick
module Normalize = Leakdetect_normalize.Normalize

(* One automaton over the distinct tokens of every signature: detection is
   a single pass per packet followed by per-signature set membership.
   Ordered signatures use the set test as a prefilter, then verify order
   with the compiled KMP matcher.

   The pass itself never materializes the packet's flattened content: the
   three fields are fed through the resumable matcher with the canonical
   ['\n'] separators in between, which scans the exact byte sequence of
   [Packet.content_string] without building it.  The string is only forced
   — lazily — when an ordered signature passes the set prefilter or the
   canonicalization lattice needs something to decode. *)

type entry = {
  signature : Signature.t;
  compiled : Signature.compiled;
  token_ids : int array;  (* indices into the automaton's pattern list *)
  ordered : bool;
}

type t = {
  signatures : Signature.t list;
  entries : entry array;
  automaton : Aho_corasick.t option;  (* None when there are no signatures *)
}

type detector = t

let create signatures =
  let token_index = Hashtbl.create 64 in
  let patterns = ref [] and n_patterns = ref 0 in
  let intern token =
    match Hashtbl.find_opt token_index token with
    | Some id -> id
    | None ->
      let id = !n_patterns in
      Hashtbl.add token_index token id;
      patterns := token :: !patterns;
      incr n_patterns;
      id
  in
  let entries =
    List.map
      (fun s ->
        {
          signature = s;
          compiled = Signature.compile s;
          token_ids = Array.of_list (List.map intern s.Signature.tokens);
          ordered = (s.Signature.mode = Signature.Ordered);
        })
      signatures
    |> Array.of_list
  in
  let automaton =
    if !n_patterns = 0 then None
    else Some (Aho_corasick.build (List.rev !patterns))
  in
  { signatures; entries; automaton }

let signatures t = t.signatures
let signature_count t = Array.length t.entries

(* Closure-free token-set test: this runs once per entry per packet, so a
   per-call [Array.for_all] closure would dominate the scan's allocation. *)
let rec tokens_matched ids matched i n =
  i = n
  || (Array.unsafe_get matched (Array.unsafe_get ids i)
     && tokens_matched ids matched (i + 1) n)

(* [content] is forced only for ordered signatures whose token set already
   matched — the conjunction fast path never builds the string. *)
let entry_matches entry matched content =
  tokens_matched entry.token_ids matched 0 (Array.length entry.token_ids)
  && ((not entry.ordered) || Signature.matches_content entry.compiled (Lazy.force content))

(* Both lookup flavours run the automaton once over the content and then
   test entries against the matched set; [matched] may be a reused
   per-domain scratch buffer. *)
let first_entry t matched content =
  let n = Array.length t.entries in
  let rec loop i =
    if i = n then None
    else if entry_matches t.entries.(i) matched content then Some t.entries.(i).signature
    else loop (i + 1)
  in
  loop 0

let first_match_content t content =
  match t.automaton with
  | None -> None
  | Some automaton ->
    first_entry t (Aho_corasick.matched_set automaton content) (Lazy.from_val content)

let all_matches_content t content =
  match t.automaton with
  | None -> []
  | Some automaton ->
    let matched = Aho_corasick.matched_set automaton content in
    let content = Lazy.from_val content in
    let acc = ref [] in
    for i = Array.length t.entries - 1 downto 0 do
      let e = t.entries.(i) in
      if entry_matches e matched content then acc := e.signature :: !acc
    done;
    !acc

(* --- reusable scan scratch ----------------------------------------------- *)

type scratch = {
  seen : bool array;  (* matched-token set, length = automaton pattern count *)
  mstate : Aho_corasick.Stream.state;
}

let scratch t =
  let n =
    match t.automaton with None -> 0 | Some a -> Aho_corasick.pattern_count a
  in
  { seen = Array.make n false; mstate = Aho_corasick.Stream.create () }

let sep = "\n"

(* Zero-copy scan of the packet's canonical content: feeding the three
   fields with the ['\n'] separators walks the automaton over the exact
   bytes of [Packet.content_string] without concatenating them. *)
let scan_packet_into automaton sc (p : Packet.t) =
  Array.fill sc.seen 0 (Array.length sc.seen) false;
  let st = sc.mstate in
  Aho_corasick.Stream.reset st;
  let c = p.Packet.content in
  Aho_corasick.Stream.feed_into automaton st sc.seen c.Packet.request_line;
  Aho_corasick.Stream.feed_into automaton st sc.seen sep;
  Aho_corasick.Stream.feed_into automaton st sc.seen c.Packet.cookie;
  Aho_corasick.Stream.feed_into automaton st sc.seen sep;
  Aho_corasick.Stream.feed_into automaton st sc.seen c.Packet.body

(* With a normalizer, the same shared automaton runs once per derived view;
   the raw content is always scanned first so legacy matches keep their
   attribution and the normalize-off path stays zero-copy. *)
let first_match_with ?normalize t sc packet =
  match t.automaton with
  | None -> None
  | Some automaton -> (
    scan_packet_into automaton sc packet;
    let content = lazy (Packet.content_string packet) in
    match first_entry t sc.seen content with
    | Some s -> Some (s, [])
    | None -> (
      match normalize with
      | None -> None
      | Some nz ->
        List.find_map
          (fun (v : Normalize.view) ->
            Aho_corasick.matched_set_into automaton sc.seen v.Normalize.text;
            Option.map
              (fun s -> (s, v.Normalize.steps))
              (first_entry t sc.seen (Lazy.from_val v.Normalize.text)))
          (Normalize.lattice nz (Lazy.force content)).Normalize.derived))

let detects_with ?normalize t sc packet =
  Option.is_some (first_match_with ?normalize t sc packet)

let first_match_normalized ?normalize t packet =
  match t.automaton with
  | None -> None
  | Some _ -> first_match_with ?normalize t (scratch t) packet

let first_match ?normalize t packet =
  Option.map fst (first_match_normalized ?normalize t packet)

let all_matches ?normalize t packet =
  let content = Packet.content_string packet in
  match normalize with
  | None -> all_matches_content t content
  | Some nz ->
    let seen = Hashtbl.create 8 in
    List.concat_map
      (fun text ->
        List.filter
          (fun (s : Signature.t) ->
            if Hashtbl.mem seen s.Signature.id then false
            else begin
              Hashtbl.add seen s.Signature.id ();
              true
            end)
          (all_matches_content t text))
      (content :: List.map (fun (v : Normalize.view) -> v.Normalize.text)
                    (Normalize.lattice nz content).Normalize.derived)

let detects ?normalize t packet = Option.is_some (first_match ?normalize t packet)

module Pool = Leakdetect_parallel.Pool
module Obs = Leakdetect_obs.Obs

let record_scan obs ~packets ~hits ~elapsed_ns =
  if not (Obs.is_noop obs) then begin
    Obs.Counter.add
      (Obs.counter obs ~help:"Packets scanned by whole-trace detection."
         "leakdetect_detection_packets_total")
      packets;
    Obs.Counter.add
      (Obs.counter obs ~help:"Packets matching at least one signature."
         "leakdetect_detection_hits_total")
      hits;
    Obs.Histogram.observe
      (Obs.histogram obs ~help:"Whole-trace detection scan latency."
         ~buckets:Obs.duration_buckets "leakdetect_detection_seconds")
      (float_of_int elapsed_ns /. 1e9)
  end

let detect_bitmap_raw ?pool ?normalize t packets =
  match t.automaton with
  | None -> Array.make (Array.length packets) false
  | Some _ ->
    let out = Array.make (Array.length packets) false in
    (* The automaton, compiled matchers and normalizer are immutable after
       creation; each domain brings its own scratch, so the only shared
       writes are to index-owned slots of [out]. *)
    Pool.parallel_for_with ~pool
      ~init:(fun () -> scratch t)
      (Array.length packets)
      (fun sc i -> out.(i) <- detects_with ?normalize t sc packets.(i));
    out

let count_bitmap bitmap =
  Array.fold_left (fun acc hit -> if hit then acc + 1 else acc) 0 bitmap

let detect_bitmap ?pool ?(obs = Obs.noop) ?normalize t packets =
  if Obs.is_noop obs then detect_bitmap_raw ?pool ?normalize t packets
  else
    Obs.with_span obs "detector.scan" @@ fun () ->
    let t0 = Obs.Clock.now_ns () in
    let bitmap = detect_bitmap_raw ?pool ?normalize t packets in
    record_scan obs ~packets:(Array.length packets) ~hits:(count_bitmap bitmap)
      ~elapsed_ns:(Obs.Clock.now_ns () - t0);
    bitmap

let count_detected ?pool ?(obs = Obs.noop) ?normalize t packets =
  match (pool, Obs.is_noop obs) with
  | None, true ->
    (* One scratch for the whole trace: the sequential path reuses the
       shared automaton and matched-set buffer exactly like each parallel
       domain does, instead of allocating both per packet. *)
    let sc = scratch t in
    Array.fold_left
      (fun acc p -> if detects_with ?normalize t sc p then acc + 1 else acc)
      0 packets
  | None, false ->
    Obs.with_span obs "detector.scan" @@ fun () ->
    let t0 = Obs.Clock.now_ns () in
    let sc = scratch t in
    let hits =
      Array.fold_left
        (fun acc p -> if detects_with ?normalize t sc p then acc + 1 else acc)
        0 packets
    in
    record_scan obs ~packets:(Array.length packets) ~hits
      ~elapsed_ns:(Obs.Clock.now_ns () - t0);
    hits
  | Some _, _ -> count_bitmap (detect_bitmap ?pool ~obs ?normalize t packets)

(* --- streaming engine ----------------------------------------------------- *)

module Stream = struct
  type stats = { packets : int; bytes : int; hits : int }

  type t = {
    det : detector;
    pool : Pool.t option;
    normalize : Normalize.t option;
    (* Per-flow verification needs the whole content only when an ordered
       signature must check token order or the lattice must decode it. *)
    keep_content : bool;
    n_packets : int Atomic.t;
    n_bytes : int Atomic.t;
    n_hits : int Atomic.t;
  }

  let create ?pool ?normalize det =
    {
      det;
      pool;
      normalize;
      keep_content =
        normalize <> None || Array.exists (fun e -> e.ordered) det.entries;
      n_packets = Atomic.make 0;
      n_bytes = Atomic.make 0;
      n_hits = Atomic.make 0;
    }

  let stats t =
    {
      packets = Atomic.get t.n_packets;
      bytes = Atomic.get t.n_bytes;
      hits = Atomic.get t.n_hits;
    }

  type flow = {
    stream : t;
    sc : scratch;
    buf : Buffer.t;  (* fed bytes, kept only when [keep_content] *)
  }

  let open_flow stream =
    { stream; sc = scratch stream.det; buf = Buffer.create 64 }

  let reset_flow flow =
    Array.fill flow.sc.seen 0 (Array.length flow.sc.seen) false;
    Aho_corasick.Stream.reset flow.sc.mstate;
    Buffer.clear flow.buf

  let feed flow ?off ?len fragment =
    (match flow.stream.det.automaton with
    | None -> ()
    | Some automaton ->
      Aho_corasick.Stream.feed_into automaton flow.sc.mstate flow.sc.seen ?off ?len
        fragment);
    if flow.stream.keep_content then begin
      let off = Option.value off ~default:0 in
      let len = Option.value len ~default:(String.length fragment - off) in
      Buffer.add_substring flow.buf fragment off len
    end

  let feed_chunked flow ?limits raw =
    Wire.chunked_fragments ?limits raw (fun raw ~pos ~len ->
        feed flow ~off:pos ~len raw)

  let close flow =
    let stream = flow.stream in
    let result =
      match stream.det.automaton with
      | None -> None
      | Some automaton -> (
        let content = lazy (Buffer.contents flow.buf) in
        match first_entry stream.det flow.sc.seen content with
        | Some _ as hit -> hit
        | None -> (
          match stream.normalize with
          | None -> None
          | Some nz ->
            List.find_map
              (fun (v : Normalize.view) ->
                Aho_corasick.matched_set_into automaton flow.sc.seen v.Normalize.text;
                first_entry stream.det flow.sc.seen (Lazy.from_val v.Normalize.text))
              (Normalize.lattice nz (Lazy.force content)).Normalize.derived))
    in
    Atomic.incr stream.n_packets;
    ignore
      (Atomic.fetch_and_add stream.n_bytes
         (Aho_corasick.Stream.consumed flow.sc.mstate));
    if Option.is_some result then Atomic.incr stream.n_hits;
    reset_flow flow;
    result

  let content_bytes (p : Packet.t) =
    let c = p.Packet.content in
    String.length c.Packet.request_line + String.length c.Packet.cookie
    + String.length c.Packet.body + 2

  let detect_batch stream packets =
    let bitmap =
      detect_bitmap_raw ?pool:stream.pool ?normalize:stream.normalize stream.det
        packets
    in
    let bytes = ref 0 in
    Array.iter (fun p -> bytes := !bytes + content_bytes p) packets;
    ignore (Atomic.fetch_and_add stream.n_packets (Array.length packets));
    ignore (Atomic.fetch_and_add stream.n_bytes !bytes);
    ignore (Atomic.fetch_and_add stream.n_hits (count_bitmap bitmap));
    bitmap
end
