module Packet = Leakdetect_http.Packet
module Aho_corasick = Leakdetect_text.Aho_corasick
module Normalize = Leakdetect_normalize.Normalize

(* One automaton over the distinct tokens of every signature: detection is
   a single pass per packet followed by per-signature set membership.
   Ordered signatures use the set test as a prefilter, then verify order
   with the compiled KMP matcher. *)

type entry = {
  signature : Signature.t;
  compiled : Signature.compiled;
  token_ids : int array;  (* indices into the automaton's pattern list *)
  ordered : bool;
}

type t = {
  signatures : Signature.t list;
  entries : entry array;
  automaton : Aho_corasick.t option;  (* None when there are no signatures *)
}

let create signatures =
  let token_index = Hashtbl.create 64 in
  let patterns = ref [] and n_patterns = ref 0 in
  let intern token =
    match Hashtbl.find_opt token_index token with
    | Some id -> id
    | None ->
      let id = !n_patterns in
      Hashtbl.add token_index token id;
      patterns := token :: !patterns;
      incr n_patterns;
      id
  in
  let entries =
    List.map
      (fun s ->
        {
          signature = s;
          compiled = Signature.compile s;
          token_ids = Array.of_list (List.map intern s.Signature.tokens);
          ordered = (s.Signature.mode = Signature.Ordered);
        })
      signatures
    |> Array.of_list
  in
  let automaton =
    if !n_patterns = 0 then None
    else Some (Aho_corasick.build (List.rev !patterns))
  in
  { signatures; entries; automaton }

let signatures t = t.signatures
let signature_count t = Array.length t.entries

let entry_matches entry matched content =
  Array.for_all (fun id -> matched.(id)) entry.token_ids
  && ((not entry.ordered) || Signature.matches_content entry.compiled content)

(* Both lookup flavours run the automaton once over the content and then
   test entries against the matched set; [matched] may be a reused
   per-domain scratch buffer. *)
let first_entry t matched content =
  let n = Array.length t.entries in
  let rec loop i =
    if i = n then None
    else if entry_matches t.entries.(i) matched content then Some t.entries.(i).signature
    else loop (i + 1)
  in
  loop 0

let first_match_content t content =
  match t.automaton with
  | None -> None
  | Some automaton ->
    first_entry t (Aho_corasick.matched_set automaton content) content

let all_matches_content t content =
  match t.automaton with
  | None -> []
  | Some automaton ->
    let matched = Aho_corasick.matched_set automaton content in
    let acc = ref [] in
    for i = Array.length t.entries - 1 downto 0 do
      let e = t.entries.(i) in
      if entry_matches e matched content then acc := e.signature :: !acc
    done;
    !acc

(* With a normalizer, the same shared automaton runs once per derived view;
   the raw content is always scanned first so legacy matches keep their
   attribution and the normalize-off path is untouched. *)
let first_match_normalized ?normalize t packet =
  let content = Packet.content_string packet in
  match first_match_content t content with
  | Some s -> Some (s, [])
  | None -> (
    match normalize with
    | None -> None
    | Some nz ->
      List.find_map
        (fun (v : Normalize.view) ->
          Option.map
            (fun s -> (s, v.Normalize.steps))
            (first_match_content t v.Normalize.text))
        (Normalize.lattice nz content).Normalize.derived)

let first_match ?normalize t packet =
  Option.map fst (first_match_normalized ?normalize t packet)

let all_matches ?normalize t packet =
  let content = Packet.content_string packet in
  match normalize with
  | None -> all_matches_content t content
  | Some nz ->
    let seen = Hashtbl.create 8 in
    List.concat_map
      (fun text ->
        List.filter
          (fun (s : Signature.t) ->
            if Hashtbl.mem seen s.Signature.id then false
            else begin
              Hashtbl.add seen s.Signature.id ();
              true
            end)
          (all_matches_content t text))
      (content :: List.map (fun (v : Normalize.view) -> v.Normalize.text)
                    (Normalize.lattice nz content).Normalize.derived)

let detects ?normalize t packet = Option.is_some (first_match ?normalize t packet)

module Pool = Leakdetect_parallel.Pool
module Obs = Leakdetect_obs.Obs

let record_scan obs ~packets ~hits ~elapsed_ns =
  if not (Obs.is_noop obs) then begin
    Obs.Counter.add
      (Obs.counter obs ~help:"Packets scanned by whole-trace detection."
         "leakdetect_detection_packets_total")
      packets;
    Obs.Counter.add
      (Obs.counter obs ~help:"Packets matching at least one signature."
         "leakdetect_detection_hits_total")
      hits;
    Obs.Histogram.observe
      (Obs.histogram obs ~help:"Whole-trace detection scan latency."
         ~buckets:Obs.duration_buckets "leakdetect_detection_seconds")
      (float_of_int elapsed_ns /. 1e9)
  end

let detect_bitmap_raw ?pool ?normalize t packets =
  match t.automaton with
  | None -> Array.make (Array.length packets) false
  | Some automaton ->
    let n_patterns = Aho_corasick.pattern_count automaton in
    let out = Array.make (Array.length packets) false in
    (* The automaton, compiled matchers and normalizer are immutable after
       creation; each domain brings its own matched-set buffer, so the only
       shared writes are to index-owned slots of [out]. *)
    let hit_in scratch content =
      Aho_corasick.matched_set_into automaton scratch content;
      Option.is_some (first_entry t scratch content)
    in
    Pool.parallel_for_with ~pool
      ~init:(fun () -> Array.make n_patterns false)
      (Array.length packets)
      (fun scratch i ->
        let content = Packet.content_string packets.(i) in
        out.(i) <-
          (hit_in scratch content
          ||
          match normalize with
          | None -> false
          | Some nz ->
            List.exists
              (fun (v : Normalize.view) -> hit_in scratch v.Normalize.text)
              (Normalize.lattice nz content).Normalize.derived));
    out

let count_bitmap bitmap =
  Array.fold_left (fun acc hit -> if hit then acc + 1 else acc) 0 bitmap

let detect_bitmap ?pool ?(obs = Obs.noop) ?normalize t packets =
  if Obs.is_noop obs then detect_bitmap_raw ?pool ?normalize t packets
  else
    Obs.with_span obs "detector.scan" @@ fun () ->
    let t0 = Obs.Clock.now_ns () in
    let bitmap = detect_bitmap_raw ?pool ?normalize t packets in
    record_scan obs ~packets:(Array.length packets) ~hits:(count_bitmap bitmap)
      ~elapsed_ns:(Obs.Clock.now_ns () - t0);
    bitmap

let count_detected ?pool ?(obs = Obs.noop) ?normalize t packets =
  match (pool, Obs.is_noop obs) with
  | None, true ->
    Array.fold_left
      (fun acc p -> if detects ?normalize t p then acc + 1 else acc)
      0 packets
  | None, false ->
    Obs.with_span obs "detector.scan" @@ fun () ->
    let t0 = Obs.Clock.now_ns () in
    let hits =
      Array.fold_left
        (fun acc p -> if detects ?normalize t p then acc + 1 else acc)
        0 packets
    in
    record_scan obs ~packets:(Array.length packets) ~hits
      ~elapsed_ns:(Obs.Clock.now_ns () - t0);
    hits
  | Some _, _ -> count_bitmap (detect_bitmap ?pool ~obs ?normalize t packets)
