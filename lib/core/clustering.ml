(* Clustering backend: the seam between signature generation and the
   cluster library.

   [Exact] is the paper's path — one O(N^2) NCD matrix, one clustering
   run.  [Sketch] is the sub-quadratic path: minhash/LSH buckets
   near-duplicate payloads first (lib/sketch), runs the exact matrix and
   the selected algorithm only inside each bucket, and stitches the
   per-bucket results back into one output.  Bucket contents never mix
   below the synthetic join height, so with one bucket the result is
   byte-identical to [Exact]. *)

module Packet = Leakdetect_http.Packet
module Pool = Leakdetect_parallel.Pool
module Obs = Leakdetect_obs.Obs
module Cluster = Leakdetect_cluster.Cluster
module Dist_matrix = Leakdetect_cluster.Dist_matrix
module Dendrogram = Leakdetect_cluster.Dendrogram
module Sketch = Leakdetect_sketch.Sketch

type backend = Exact | Sketch of Sketch.params

let default_sketch = Sketch.default

let backend_name = function Exact -> "exact" | Sketch _ -> "sketch"

type stats = {
  backend : string;
  buckets : int;
  largest_bucket : int;
  exact_pairs : int;  (** NCD pair distances actually computed *)
  total_pairs : int;  (** C(n,2): what [Exact] would compute *)
}

type result = { output : Cluster.output; stats : stats }

let pairs n = n * (n - 1) / 2

let exact_stats ~backend n =
  { backend; buckets = 1; largest_bucket = n; exact_pairs = pairs n; total_pairs = pairs n }

let run_exact ?pool ~obs algorithm dist sample =
  let matrix = Distance.matrix ?pool ~obs dist sample in
  { output = Cluster.run algorithm matrix;
    stats = exact_stats ~backend:"exact" (Array.length sample) }

(* Rewrite a per-bucket tree's leaf indices (positions within the bucket)
   to the global sample indices they stand for. *)
let rec remap members = function
  | Dendrogram.Leaf i -> Dendrogram.Leaf members.(i)
  | Dendrogram.Node { left; right; height; size } ->
      Dendrogram.Node { left = remap members left; right = remap members right; height; size }

(* Join bucket roots pairwise into a balanced tree at one synthetic height
   above any real linkage distance, so every sensible cut separates buckets
   and tree depth grows by log(#buckets), not #buckets. *)
let rec join_balanced ~height = function
  | [] -> None
  | [ t ] -> Some t
  | trees ->
      let rec pair_up = function
        | a :: b :: rest -> Dendrogram.node a b height :: pair_up rest
        | tail -> tail
      in
      join_balanced ~height (pair_up trees)

let bucket_obs obs ~buckets ~sizes ~exact_pairs ~total_pairs =
  if not (Obs.is_noop obs) then begin
    Obs.Counter.add
      (Obs.counter obs ~help:"LSH buckets produced by sketch clustering."
         "leakdetect_cluster_buckets_total")
      buckets;
    let h =
      Obs.histogram obs ~help:"Members per LSH bucket."
        ~buckets:[ 1.; 2.; 4.; 8.; 16.; 32.; 64.; 128.; 256.; 512.; 1024. ]
        "leakdetect_cluster_bucket_size"
    in
    Array.iter (fun s -> Obs.Histogram.observe h (float_of_int s)) sizes;
    Obs.Counter.add
      (Obs.counter obs ~help:"Exact NCD pairs computed inside buckets."
         "leakdetect_cluster_exact_pairs_total")
      exact_pairs;
    Obs.Counter.add
      (Obs.counter obs
         ~help:"Exact NCD pairs skipped relative to the full O(N^2) matrix."
         "leakdetect_cluster_pairs_avoided_total")
      (total_pairs - exact_pairs)
  end

let run_sketch ?pool ~obs algorithm params dist sample =
  let n = Array.length sample in
  let payloads = Array.map Packet.content_string sample in
  let buckets =
    Obs.with_span obs "clustering.sketch" (fun () -> Sketch.bucket ?pool params payloads)
  in
  match buckets with
  | [] -> { output = Cluster.Empty; stats = { (exact_stats ~backend:"sketch" 0) with buckets = 0; largest_bucket = 0 } }
  | [ _ ] ->
      (* Everything collided into one bucket, whose members are 0..n-1 in
         order: the exact path on the same matrix, byte for byte. *)
      bucket_obs obs ~buckets:1 ~sizes:[| n |] ~exact_pairs:(pairs n) ~total_pairs:(pairs n);
      { (run_exact ?pool ~obs algorithm dist sample) with
        stats = exact_stats ~backend:"sketch" n }
  | buckets ->
      let groups = Array.of_list (List.map Array.of_list buckets) in
      let nb = Array.length groups in
      let sizes = Array.map Array.length groups in
      let exact_pairs = Array.fold_left (fun acc s -> acc + pairs s) 0 sizes in
      let total_pairs = pairs n in
      bucket_obs obs ~buckets:nb ~sizes ~exact_pairs ~total_pairs;
      let outputs = Array.make nb Cluster.Empty in
      (* Fan whole buckets out across domains: caches are frozen once over
         the full sample, each domain works through its buckets with a
         private shadow overlay, and every bucket's matrix build stays
         sequential (pools must not nest).  Slot [bi] is owned by bucket
         [bi], so the result is identical at any pool size. *)
      Distance.with_frozen ?pool dist sample (fun ~init ->
          Pool.parallel_for_with ~pool ~init nb (fun local bi ->
              let members = groups.(bi) in
              let m =
                Dist_matrix.build (Array.length members) (fun i j ->
                    Distance.d_pkt local sample.(members.(i)) sample.(members.(j)))
              in
              outputs.(bi) <- Cluster.run algorithm m));
      let output =
        if Cluster.is_hierarchical algorithm then begin
          let trees =
            Array.to_list
              (Array.mapi
                 (fun bi o ->
                   match o with
                   | Cluster.Hierarchy t -> remap groups.(bi) t
                   | Cluster.Empty | Cluster.Partition _ ->
                       (* buckets are non-empty and the algorithm is
                          hierarchical, so per-bucket output is a
                          hierarchy (a singleton bucket yields Leaf). *)
                       assert false)
                 outputs)
          in
          let join_height = Distance.max_possible dist +. 1.0 in
          match join_balanced ~height:join_height trees with
          | None -> Cluster.Empty
          | Some t -> Cluster.Hierarchy t
        end
        else begin
          let clusters = ref [] and noise = ref [] in
          Array.iteri
            (fun bi o ->
              match o with
              | Cluster.Partition { clusters = cs; noise = ns } ->
                  let members = groups.(bi) in
                  clusters :=
                    !clusters @ List.map (List.map (fun i -> members.(i))) cs;
                  noise := !noise @ List.map (fun i -> members.(i)) ns
              | Cluster.Empty | Cluster.Hierarchy _ -> assert false)
            outputs;
          Cluster.Partition { clusters = !clusters; noise = !noise }
        end
      in
      { output;
        stats =
          {
            backend = "sketch";
            buckets = nb;
            largest_bucket = Array.fold_left max 0 sizes;
            exact_pairs;
            total_pairs;
          };
      }

let run ?pool ?(obs = Obs.noop) ~backend ~algorithm dist sample =
  if Array.length sample = 0 then
    { output = Cluster.Empty;
      stats =
        { backend = backend_name backend; buckets = 0; largest_bucket = 0;
          exact_pairs = 0; total_pairs = 0 } }
  else
    match backend with
    | Exact -> run_exact ?pool ~obs algorithm dist sample
    | Sketch params -> run_sketch ?pool ~obs algorithm params dist sample
