module Obs = Leakdetect_obs.Obs

type cut = Auto | Threshold of float | Count of int | Every_merge

type siggen = {
  algorithm : Leakdetect_cluster.Cluster.algorithm;
  cut : cut;
  min_token_len : int;
  min_specificity : int;
  mode : Signature.mode;
}

let default_siggen =
  {
    algorithm = Leakdetect_cluster.Cluster.default;
    cut = Auto;
    min_token_len = 3;
    min_specificity = 8;
    mode = Signature.Conjunction;
  }

type on_error = [ `Fail | `Skip ]

type t = {
  components : Distance.components;
  compressor : Leakdetect_compress.Compressor.algorithm;
  content_metric : Distance.content_metric;
  registry : Leakdetect_net.Registry.t option;
  siggen : siggen;
  clustering : Clustering.backend;
  pool : Leakdetect_parallel.Pool.t option;
  on_error : on_error;
  sample_n : int;
  obs : Obs.t;
  normalize : Leakdetect_normalize.Normalize.t option;
}

let default =
  {
    components = Distance.all_components;
    compressor = Leakdetect_compress.Compressor.Lz77;
    content_metric = Distance.Ncd;
    registry = None;
    siggen = default_siggen;
    clustering = Clustering.Exact;
    pool = None;
    on_error = `Fail;
    sample_n = 500;
    obs = Obs.noop;
    normalize = None;
  }

let with_components components t = { t with components }
let with_compressor compressor t = { t with compressor }
let with_content_metric content_metric t = { t with content_metric }
let with_whois registry t = { t with registry }
let with_siggen siggen t = { t with siggen }
let with_clustering clustering t = { t with clustering }
let with_pool pool t = { t with pool }

let with_jobs ?obs jobs t = { t with pool = Leakdetect_parallel.Pool.warm ?obs jobs }
let with_on_error on_error t = { t with on_error }
let with_obs obs t = { t with obs }
let with_normalize normalize t = { t with normalize }

let with_sample_n sample_n t =
  if sample_n < 0 then invalid_arg "Pipeline.Config.with_sample_n: negative N";
  { t with sample_n }

let with_algorithm algorithm t = { t with siggen = { t.siggen with algorithm } }

let with_linkage linkage t =
  with_algorithm (Leakdetect_cluster.Cluster.Agglomerative linkage) t
let with_cut cut t = { t with siggen = { t.siggen with cut } }
let with_min_token_len min_token_len t = { t with siggen = { t.siggen with min_token_len } }
let with_min_specificity min_specificity t =
  { t with siggen = { t.siggen with min_specificity } }
let with_mode mode t = { t with siggen = { t.siggen with mode } }

let distance t =
  Distance.create ~components:t.components ~compressor:t.compressor
    ~content_metric:t.content_metric ?registry:t.registry ()
