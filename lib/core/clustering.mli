(** Clustering backend selection — exact O(N²) or the minhash/LSH sketch
    prefilter.

    [Exact] builds the full pairwise NCD matrix and runs the selected
    {!Leakdetect_cluster.Cluster.algorithm} over it: the paper's
    procedure, quadratic in the sample.  [Sketch] first buckets
    near-duplicate payloads with {!Leakdetect_sketch.Sketch}, runs the
    exact matrix and algorithm only inside each bucket, and merges the
    per-bucket results: hierarchies are stitched under balanced synthetic
    joins one unit above the maximum possible packet distance (so any
    sensible dendrogram cut keeps buckets apart), partitions are
    concatenated.  When every payload lands in one bucket the sketch path
    degenerates to the exact path, byte for byte.

    Both backends are deterministic at any pool size: bucketing is a pure
    function of the payloads and sketch parameters, and per-bucket results
    are written to slots owned by their bucket index. *)

type backend = Exact | Sketch of Leakdetect_sketch.Sketch.params

val default_sketch : Leakdetect_sketch.Sketch.params
(** Re-export of {!Leakdetect_sketch.Sketch.default} so config call sites
    need not bind the sketch library. *)

val backend_name : backend -> string
(** ["exact"] or ["sketch"] — the CLI flag vocabulary. *)

type stats = {
  backend : string;
  buckets : int;  (** 1 for exact; LSH bucket count for sketch *)
  largest_bucket : int;
  exact_pairs : int;  (** NCD pair distances actually computed *)
  total_pairs : int;  (** C(n,2): what [Exact] would compute *)
}

type result = { output : Leakdetect_cluster.Cluster.output; stats : stats }

val run :
  ?pool:Leakdetect_parallel.Pool.t ->
  ?obs:Leakdetect_obs.Obs.t ->
  backend:backend ->
  algorithm:Leakdetect_cluster.Cluster.algorithm ->
  Distance.t ->
  Leakdetect_http.Packet.t array ->
  result
(** [run ~backend ~algorithm dist sample] clusters the sample.  With
    [?pool], [Exact] parallelizes the matrix pair loop and [Sketch]
    parallelizes signature computation and fans whole buckets across
    domains inside one {!Distance.with_frozen} window.  [?obs] (default
    noop) records the sketch bucket counters
    ([leakdetect_cluster_buckets_total], [leakdetect_cluster_bucket_size],
    [leakdetect_cluster_exact_pairs_total],
    [leakdetect_cluster_pairs_avoided_total]) plus whatever
    {!Distance.matrix} records on the exact path. *)
