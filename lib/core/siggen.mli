(** Signature generation: sample -> distance matrix -> hierarchical
    clustering -> per-cluster invariant tokens -> filtered signature set
    (Sec. IV-D and IV-E end to end). *)

type cut = Auto | Threshold of float | Count of int | Every_merge
(** Where to cut the dendrogram into clusters.  The paper iterates over "the
    top of cluster" without fixing a rule; [Auto] cuts at a quarter of the
    maximum possible packet distance under the active components, which
    empirically separates per-advertisement-module clusters.  [Every_merge]
    is the most literal reading of Sec. IV-E: every internal node of the
    dendrogram becomes a candidate cluster (signatures deduplicated by
    token list, degenerate ones rejected as usual). *)

type config = {
  linkage : Leakdetect_cluster.Agglomerative.linkage;
  cut : cut;
  min_token_len : int;  (** Tokens shorter than this are dropped (default 3). *)
  min_specificity : int;
      (** Signatures whose non-boilerplate token mass is below this are
          rejected as degenerate (default 8). *)
  mode : Signature.mode;
}

val default : config

type result = {
  signatures : Signature.t list;
  dendrogram : Leakdetect_cluster.Dendrogram.t option;
  clusters : int list list;  (** Sample indices per cluster, post-cut. *)
  rejected : int;  (** Clusters whose signature failed the filters. *)
}

val generate :
  ?pool:Leakdetect_parallel.Pool.t ->
  config -> Distance.t -> Leakdetect_http.Packet.t array -> result
(** [generate config dist sample].  Signature ids number accepted clusters
    from 0 in cut order.  [?pool] parallelizes the distance matrix (see
    {!Distance.matrix}); clustering itself stays sequential, so the result
    is identical for every pool size. *)

val cut_threshold_value : config -> Distance.t -> float
(** The concrete threshold [Auto] resolves to (exposed for reporting). *)
