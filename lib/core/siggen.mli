(** Signature generation: sample -> distance matrix -> hierarchical
    clustering -> per-cluster invariant tokens -> filtered signature set
    (Sec. IV-D and IV-E end to end). *)

type cut = Pipeline_config.cut = Auto | Threshold of float | Count of int | Every_merge
(** Where to cut the dendrogram into clusters.  The paper iterates over "the
    top of cluster" without fixing a rule; [Auto] cuts at a quarter of the
    maximum possible packet distance under the active components, which
    empirically separates per-advertisement-module clusters.  [Every_merge]
    is the most literal reading of Sec. IV-E: every internal node of the
    dendrogram becomes a candidate cluster (signatures deduplicated by
    token list, degenerate ones rejected as usual).

    (An equation on {!Pipeline_config.cut}: the definition moved into the
    unified config.) *)

type config = Pipeline_config.siggen = {
  algorithm : Leakdetect_cluster.Cluster.algorithm;
      (** Clustering algorithm, selected by value. *)
  cut : cut;
  min_token_len : int;  (** Tokens shorter than this are dropped (default 3). *)
  min_specificity : int;
      (** Signatures whose non-boilerplate token mass is below this are
          rejected as degenerate (default 8). *)
  mode : Signature.mode;
}
(** An equation on {!Pipeline_config.siggen}, so a siggen sub-config can be
    read out of (or spliced into) a unified [Pipeline.Config.t]. *)

val default : config

type result = {
  signatures : Signature.t list;
  dendrogram : Leakdetect_cluster.Dendrogram.t option;
      (** The (merged) dendrogram for hierarchical algorithms; [None] for
          partitional algorithms and empty samples. *)
  clusters : int list list;  (** Sample indices per cluster, post-cut. *)
  rejected : int;  (** Clusters whose signature failed the filters. *)
  stats : Clustering.stats option;
      (** Backend statistics (bucket counts, exact pairs computed);
          [None] only for the empty sample. *)
}

val generate :
  ?config:Pipeline_config.t -> Distance.t -> Leakdetect_http.Packet.t array -> result
(** [generate ~config dist sample] clusters the sample and extracts one
    signature per surviving cluster.  Signature ids number accepted
    clusters from 0 in cut order.  The clustering knobs come from
    [config.siggen], the backend ([Exact] or [Sketch]) from
    [config.clustering]; [config.pool] parallelizes the distance matrix /
    bucketed clustering (see {!Distance.matrix} and {!Clustering.run});
    the result is identical for every pool size.  [config.obs] records
    spans ([siggen.generate] > [siggen.cluster] / [siggen.tokens]) and
    the cluster / signature counters. *)

val cut_threshold_value : config -> Distance.t -> float
(** The concrete threshold [Auto] resolves to (exposed for reporting). *)
