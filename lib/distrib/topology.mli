(** Deterministic multi-node soak: N sharded origins × M relays ×
    hundreds of clients, driven tick by tick from one PRNG seed.

    The topology under test is the full horizontal tier:

    - origins partition tenants by a {!Shard_map} (rendezvous hashing at
      an explicit epoch); every origin journals to its own directory and
      crashes/recovers mid-publish and mid-compaction like the
      single-origin {!Soak};
    - relays ({!Relay}) sync each tenant from its owning origin through a
      faulty transport and re-serve the fleet, fail-static across
      partitions;
    - clients sync through the relay tier with origin escalation
      ({!Delta_client.sync_via}); candidate reports are POSTed to relays
      and forwarded upstream;
    - routing knowledge is deliberately stale: clients and relays follow
      [421 Misdirected] redirects to re-learn owners after a rebalance.

    Scheduled hostilities: network partitions cutting chosen relays from
    all origins for a stretch of ticks; relay crashes (total state loss —
    the replacement must refuse to serve until its first verified sync);
    one or more {e epoch flips} mid-soak, advancing the shard map to a
    larger (or back to the smaller) origin set so tenants migrate via the
    export/adopt/release protocol while clients keep syncing; a byzantine
    relay whose served responses are corrupted at a configurable rate;
    plus the usual transport faults, origin crash points, torn journal
    tails and client restarts.

    Zero-violation invariants, judged against an audit table of every
    committed (tenant, version) → checksum recorded at mutation time:
    no client ever installs a set differing from the committed one at
    that version (no checksum fork, across relay failover and migration);
    no client ever observes a version regression; every promotion carries
    [>= k] distinct reporters; origin recovery never loses or rewrites
    committed state; and after a bounded drain every client converges to
    its tenant's post-rebalance owner's head.  The origin-offload ratio
    (client sync requests absorbed by relays) is reported and gated at
    [min_offload]. *)

type config = {
  origins : int;  (** Origins in the initial shard map. *)
  standby_origins : int;
      (** Extra origins that join the map at odd epoch flips (and leave
          again at even ones) — the migration driver. *)
  relays : int;
  byzantine_relays : int;
      (** Of the relays, how many serve corrupted bytes (rate below). *)
  byzantine_corrupt_rate : float;
  clients : int;
  tenants : int;
  ticks : int;
  sync_period : int;  (** Client sync cadence, jittered per client. *)
  relay_sync_period : int;  (** Relay upstream sync cadence. *)
  publishes : int;
  compact_every : int;  (** Compact all origins every n-th publish. *)
  k : int;
  reporter_cap : int;
  compact_keep : int;
  candidates : int;  (** Honest candidates per tenant (k reporters each). *)
  byzantine : int;  (** Byzantine flooding reporters. *)
  fault : Leakdetect_fault.Fault.config;  (** Transport fault rates. *)
  partitions : int;
  partition_ticks : int;
  relay_crashes : int;
  epoch_flips : int;
  origin_crash_rate : float;
  client_restart_rate : float;
  min_offload : float;  (** Required relay share of client sync requests. *)
  drain_rounds : int;
  gossip_period : int;
      (** Relay gossip cadence in ticks (staggered per relay); 0 disables
          gossip entirely. *)
  fork_injections : int;
      (** Adversarial mirror forks injected mid-soak ({!Relay.inject_fork}
          on a chosen relay, every synced tenant) — ranged repair must
          heal each without a resnapshot. *)
  origin_weight : int;
      (** Capacity weight of origin 0 in the shard map (>= 1); 1 keeps
          the map unweighted and bit-exact with pre-weight journals. *)
  seed : int;
}

val default_config : config
(** 2 origins + 1 standby, 3 relays (1 byzantine at 0.5), 250 clients,
    4 tenants, 2000 ticks, 3 partitions × 150 ticks, 2 relay crashes,
    1 epoch flip, offload floor 0.8, seed 42. *)

type phase_counters = {
  delta : int;
  snapshot : int;
  unchanged : int;
  failed : int;
}

type invariants = {
  divergences : int;
  regressions : int;
  sub_k_promotions : int;
  recovery_mismatches : int;
  unconverged : int;
  relay_divergences : int;
      (** Ticks on which a relay served (was willing to serve) a tenant
          set whose canonical checksum differed from the committed
          checksum at its claimed version — the serving-guard invariant:
          a diverged mirror must refuse, not serve. *)
  staleness_lapses : int;
      (** Gossip rounds after which a partitioned relay remained behind
          the freshest reachable honest sibling — the bounded-staleness
          invariant: while siblings are reachable, a partition bounds
          staleness by the gossip period. *)
}

type report = {
  config : config;
  ramp : phase_counters;
  steady : phase_counters;
  drain : phase_counters;
  relay_requests : int;  (** Client sync requests sent to the relay tier. *)
  origin_requests : int;  (** Client sync requests sent to origins. *)
  offload : float;  (** relay_requests / (relay_requests + origin_requests). *)
  escalations : int;  (** Client syncs that abandoned the relay tier. *)
  fork_smells : int;  (** 304s refused for a checksum mismatch. *)
  forced_full : int;
  regressions_refused : int;
  misdirected_follows : int;  (** 421 redirects followed to a new owner. *)
  origin_crashes : int;
  torn_tails : int;
  recoveries : int;
  promoted_on_recovery : int;
  relay_crashes_done : int;
  partitions_done : int;
  epoch_flips_done : int;
  migrations : int;  (** Tenants moved across origins by flips. *)
  final_epoch : int;
  relay_sync_rounds : int;
  relay_sync_failures : int;
  relay_resnapshots : int;
  relay_served : int;
  relay_unready : int;  (** 503s served before a first verified sync. *)
  relay_inconsistent : int;
      (** 503s served while a relay's mirror diverged from its verified
          state (the serving guard refusing, as it must). *)
  gossip_rounds : int;
  gossip_catchups : int;
      (** Tenant catch-ups pulled from a sibling relay during gossip. *)
  repairs : int;  (** Ranged anti-entropy repairs (splice, no rebuild). *)
  repair_bytes : int;  (** Wire bytes paid by those repairs. *)
  resnapshot_bytes : int;
      (** Canonical snapshot bytes paid by full mirror rebuilds. *)
  forks_done : int;  (** Adversarial forks actually injected. *)
  forwarded_reports : int;
  forward_failures : int;
  client_restarts : int;
  compactions : int;
  promotions : int;
  accepted_reports : int;
  duplicate_reports : int;
  capped_reports : int;
  lost_reports : int;
  fault_events : (Leakdetect_fault.Fault.kind * int) list;
  final_versions : (string * int) list;
  tenant_owners : (string * string) list;  (** Post-rebalance owners. *)
  invariants : invariants;
}

val ok : report -> bool
(** All invariants zero {e and} [offload >= min_offload]. *)

val run : ?obs:Leakdetect_obs.Obs.t -> dir:string -> config -> report
(** Run the topology soak; [dir] gets one journal directory per origin.
    Deterministic in [config.seed].
    @raise Invalid_argument on a nonsensical config. *)

val report_to_json : report -> Leakdetect_util.Json.t
(** Self-contained artifact: the full config (every rate and the seed)
    plus all counters and invariants — reproducible from the JSON alone. *)

val summary : report -> string
