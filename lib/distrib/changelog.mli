(** Monotonically versioned signature changelog — the unit of state the
    multi-tenant authority keeps per tenant.

    Every mutation is an {!change} ([Add] installs-or-replaces a signature
    by id, [Retire] removes one) and bumps the version by exactly one, so
    the set at any version is determined by the entry prefix up to it.
    Delta sync is literally {!since}: the entry suffix newer than the
    client's version.  {!compact} folds old entries into the base set and
    advances the {!horizon}; a [since] below the horizon can no longer be
    served incrementally and the caller falls back to a full snapshot.

    The canonical serialization of a set (id-ascending {!Leakdetect_core.Signature_io}
    lines) doubles as the integrity witness: {!checksum_at} is the CRC-32
    of the canonical set at a version, and a client that applies a delta
    must land on the checksum the authority advertises. *)

module Signature = Leakdetect_core.Signature

type change =
  | Add of Signature.t  (** Install or replace the signature with this id. *)
  | Retire of int  (** Remove the signature with this id. *)

type entry = { version : int; change : change }

val change_to_string : change -> string

val entry_to_line : entry -> string
val entry_of_line : string -> (entry, string) result
(** Line codec shared by the WAL journal and the HTTP delta bodies:
    [a TAB version TAB sig-line] / [r TAB version TAB id].  Signature
    lines escape tabs and newlines, so splitting is unambiguous. *)

val apply_change : Signature.t list -> change -> Signature.t list
(** Pure application onto an id-ascending set; keeps the order invariant.
    [Add] replaces any existing signature with the same id; [Retire] of an
    absent id is a no-op (which makes re-application idempotent). *)

val checksum_set : Signature.t list -> int
(** CRC-32 of the canonical serialization (id-ascending lines joined with
    a newline).  Order-insensitive: the input is sorted first. *)

val wire_checksum : version:int -> Signature.t list -> int
(** The checksum carried in [X-Signature-Checksum]: CRC-32 over the
    version number followed by the canonical serialization.  Binding the
    version in means a transit-corrupted version header cannot pair with
    an otherwise-valid body — the client recomputes this against the
    version it was told and bails on mismatch. *)

type t

val create : unit -> t
(** Empty changelog at version 0, horizon 0. *)

val restore :
  base_version:int ->
  base:Signature.t list ->
  next_id:int ->
  entries:entry list ->
  (t, string) result
(** Rebuild from snapshot parts: the folded base set at [base_version]
    plus the retained entries, whose versions must be consecutive from
    [base_version + 1].  [Error] on a version gap or negative inputs. *)

val version : t -> int
val horizon : t -> int
(** Versions [<= horizon] are folded into the base: {!since} below it is
    [None] and {!checksum_at} only answers at or above it. *)

val next_id : t -> int
(** Smallest id never yet used by an [Add] — survives retires and
    compaction so promoted candidates cannot reuse a retired id. *)

val current : t -> Signature.t list
(** The live set, id-ascending. *)

val current_checksum : t -> int

val checksum_at : t -> int -> int option
(** Canonical-set CRC at an exact version; [None] below the horizon (or
    above the head). *)

val since : t -> int -> entry list option
(** [since t v]: the entries with version > [v], oldest first — the delta
    that carries a client at version [v] to the head.  [None] when [v] is
    below the horizon (compacted away) or beyond the head (a gap the
    caller must treat as a full-resync condition). *)

val digest : t -> since:int -> interval:int -> (int * int) list
(** Ranged anti-entropy digest: [(version, canonical-set CRC)] checkpoints
    ascending from [max since horizon] in [interval] steps, with the head
    always included last — so the result is never empty and
    [digest ~since:max_int ~interval:1] is a head-only freshness probe.
    A mirror that forked from this history compares its own
    {!checksum_at} against the checkpoints, takes the newest agreeing
    version as the splice point, and repairs just the suffix — the
    rebuild-from-scratch resnapshot stays the fallback for divergence
    below the horizon (no agreeing checkpoint survives compaction).
    @raise Invalid_argument when [interval < 1]. *)

val digest_to_body : (int * int) list -> string
val digest_of_body : string -> ((int * int) list, string) result
(** Wire codec for [GET /digest] bodies: one [version TAB crc-hex] line
    per checkpoint.  [digest_of_body] rejects non-ascending versions and
    malformed lines. *)

val entries : t -> entry list
(** All retained entries, oldest first. *)

val base : t -> Signature.t list
val append : t -> change -> entry
(** Apply and record one change at version [version t + 1]. *)

val compact : t -> keep:int -> unit
(** Fold all but the newest [keep] entries into the base, advancing the
    horizon.  [keep] is clamped to [0, entries]. *)
